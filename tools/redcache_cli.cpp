// redcache_cli — the swiss-army driver for one-off experiments.
//
//   redcache_cli --arch RedCache --workload LU
//   redcache_cli --arch Alloy --workload RDX --scale 0.5 --stats
//   redcache_cli --arch RedCache --ways 4 --workload FT
//   redcache_cli --footprint --workload HIST
//   redcache_cli --capture lu.rctr --workload LU        # snapshot a trace
//   redcache_cli --arch Bear --replay lu.rctr           # replay it
//   redcache_cli --arch RedCache --workload LU
//       --telemetry t.json --trace t.perfetto.json      # observability
//   redcache_cli --sweep --jobs 4                       # full eval matrix
//   redcache_cli --sweep --archs Alloy,RedCache --workloads LU,RDX
//   redcache_cli --list
//
// Exit code 0 on success; prints a one-line summary plus optional full
// counter dump.
#include <signal.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "dramcache/assoc_redcache.hpp"
#include "dramcache/footprint.hpp"
#include "dramcache/policy_registry.hpp"
#include "obs/epoch_sampler.hpp"
#include "obs/telemetry_sink.hpp"
#include "obs/trace.hpp"
#include "obs/trace_spill.hpp"
#include "sim/batch.hpp"
#include "sim/sampling.hpp"
#include "tenant/mix_trace.hpp"
#include "tenant/qos.hpp"
#include "tenant/stream_trace.hpp"
#include "verify/shadow_checker.hpp"
#include "workloads/trace_file.hpp"

namespace {

using namespace redcache;

struct CliOptions {
  std::string arch = "RedCache";
  std::string workload = "LU";
  std::optional<std::string> replay_path;
  std::optional<std::string> capture_path;
  std::optional<std::string> telemetry_path;  ///< epoch series ("-" = stdout
                                              ///< NDJSON, .ndjson stream,
                                              ///< .csv, else JSON)
  std::optional<std::string> trace_out_path;  ///< Chrome trace-event JSON
  std::optional<std::string> report_path;     ///< --sweep batch report JSON
  obs::EpochSpec epoch;                       ///< --epoch N | auto[:MIN:MAX]
  std::size_t trace_window = 0;  ///< --trace ring capacity; spill the rest
  std::string telemetry_dir;     ///< --sweep per-cell NDJSON directory
  double scale = 1.0;
  bool paper_preset = false;
  bool dump_stats = false;
  bool list = false;
  std::uint32_t ways = 0;         ///< >1 selects the associative RedCache
  bool footprint = false;         ///< coarse-grained baseline
  bool verify = false;            ///< shadow-check the run
  std::optional<std::uint64_t> hbm_mib;
  std::optional<std::uint32_t> alpha;
  std::optional<std::uint32_t> gamma;
  std::uint64_t seed = 1;
  std::string mix;                ///< --mix "LU:2,RDX:1@8" tenant list
  std::string mix_mode = "offset";  ///< address placement: offset|interleave
  std::uint32_t mix_window_bits = 0;  ///< 0 = planner default
  std::string serve_path;         ///< stream an RCTR trace ("-" = stdin)
  std::string checkpoint_path;    ///< --checkpoint blob destination
  Cycle checkpoint_at = 0;        ///< --checkpoint-at cycle (default 0)
  std::string restore_path;       ///< --restore blob to resume from
  std::string sample;             ///< --sample P[:INTERVAL] sampled run
  bool no_solo = false;           ///< skip the solo baselines for --mix QoS
  bool sweep = false;             ///< run an (arch x workload) matrix
  std::string sweep_archs;        ///< comma list; empty = evaluation archs
  std::string sweep_workloads;    ///< comma list; empty = all Table II
  unsigned jobs = 0;              ///< worker threads for --sweep (0 = auto)
};

void PrintUsage() {
  std::printf(
      "usage: redcache_cli [options]\n"
      "  --policy NAME      registered cache policy (--list shows them;\n"
      "                     default RedCache). --arch is an alias.\n"
      "  --workload LABEL   Table II label (default LU)\n"
      "  --replay FILE      replay a captured trace instead of a workload\n"
      "  --capture FILE     write the workload's trace to FILE and exit\n"
      "  --telemetry FILE   write per-epoch time series. \"-\" streams NDJSON\n"
      "                     records to stdout as epochs close (live); .ndjson\n"
      "                     streams to a file/FIFO; .csv => CSV; else JSON\n"
      "  --trace FILE       write a Chrome trace-event JSON (Perfetto /\n"
      "                     chrome://tracing) of DRAM commands + decisions\n"
      "  --trace-window N   keep an N-event ring and spill older events to\n"
      "                     the --trace file incrementally: full-run traces\n"
      "                     in bounded memory (default: ring only, last 256K)\n"
      "  --epoch SPEC       telemetry epoch pacing: N cycles, \"auto\"\n"
      "                     (variance-driven, clamped to [preset/8, 4x]),\n"
      "                     or \"auto:MIN:MAX\" (explicit clamp band)\n"
      "  --scale X          workload scale factor (default 1.0)\n"
      "  --paper            use the verbatim Table I preset (2 GiB HBM)\n"
      "  --hbm-mib N        override HBM cache capacity\n"
      "  --ways N           N-way associative RedCache (extension)\n"
      "  --footprint        coarse-grained footprint-cache baseline\n"
      "  --alpha N          pin alpha (disables adaptation)\n"
      "  --gamma N          pin gamma (disables adaptation)\n"
      "  --seed N           simulation seed\n"
      "  --mix SPEC         co-schedule tenants: LABEL[:WEIGHT[@MIN_GAP]]\n"
      "                     comma-separated, e.g. LU:2,RDX:1@8. The label\n"
      "                     \"serve\" streams from --serve. Prints per-tenant\n"
      "                     QoS lines (hit rate, bandwidth share, slowdown\n"
      "                     vs solo) after the run.\n"
      "  --mix-mode M       tenant address placement: offset (disjoint\n"
      "                     windows, default) or interleave (page-granular)\n"
      "  --mix-window-bits N  override the per-tenant window size (log2)\n"
      "  --no-solo          skip the solo baseline runs (QoS lines then\n"
      "                     omit the slowdown column)\n"
      "  --serve PATH       serve mode: ingest an RCTR trace stream from a\n"
      "                     pipe / FIFO / file (\"-\" = stdin); SIGTERM or\n"
      "                     EOF drains gracefully\n"
      "  --checkpoint FILE  write a full-state checkpoint blob to FILE\n"
      "  --checkpoint-at N  cycle for --checkpoint (default 0 = run start)\n"
      "  --restore FILE     resume from a checkpoint blob captured by a run\n"
      "                     with the same policy/workload/preset/seed;\n"
      "                     the resumed run is bit-identical to the\n"
      "                     uninterrupted one\n"
      "  --sample P[:INT]   SMARTS sampled run: fast-forward functionally,\n"
      "                     replay a fraction P of cycles in detail in\n"
      "                     parallel (interval INT cycles, default 200000)\n"
      "                     and report estimates with a 95%% CI\n"
      "  --verify           run under the shadow checker; exit 1 on any\n"
      "                     divergence from the reference memory model\n"
      "  --stats            dump every counter after the run\n"
      "  --sweep            run an (arch x workload) matrix on a worker pool\n"
      "  --report FILE      write a host-side profiling report of --sweep\n"
      "                     (per-cell wall time, cache layer, phases,\n"
      "                     per-cell telemetry paths + epoch counts)\n"
      "  --telemetry-dir D  with --sweep: stream each simulated cell's\n"
      "                     NDJSON series to D/<cell-key>.ndjson\n"
      "  --policies A,B,..  policies for --sweep (default: every policy\n"
      "                     registered with sweep=true). --archs is an alias.\n"
      "  --workloads X,Y,.. workloads for --sweep (default: all Table II)\n"
      "  --jobs N           worker threads for --sweep (default: \n"
      "                     REDCACHE_JOBS, then hardware concurrency)\n"
      "  --list             list registered policies and workloads\n");
}

bool ParseArgs(int argc, char** argv, CliOptions& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--policy" || arg == "--arch") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.arch = v;
    } else if (arg == "--workload") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.workload = v;
    } else if (arg == "--replay") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.replay_path = v;
    } else if (arg == "--telemetry") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.telemetry_path = v;
    } else if (arg == "--trace") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.trace_out_path = v;
    } else if (arg == "--report") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.report_path = v;
    } else if (arg == "--epoch") {
      const char* v = value();
      if (v == nullptr) return false;
      if (!obs::ParseEpochSpec(v, opt.epoch)) {
        std::fprintf(stderr,
                     "bad --epoch %s (want N, auto, or auto:MIN:MAX)\n", v);
        return false;
      }
    } else if (arg == "--trace-window") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.trace_window = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
      if (opt.trace_window == 0) {
        std::fprintf(stderr, "bad --trace-window %s (want N >= 1)\n", v);
        return false;
      }
    } else if (arg == "--telemetry-dir") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.telemetry_dir = v;
    } else if (arg == "--capture") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.capture_path = v;
    } else if (arg == "--scale") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.scale = std::atof(v);
    } else if (arg == "--paper") {
      opt.paper_preset = true;
    } else if (arg == "--hbm-mib") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.hbm_mib = std::strtoull(v, nullptr, 10);
    } else if (arg == "--ways") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.ways = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--footprint") {
      opt.footprint = true;
    } else if (arg == "--alpha") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.alpha = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--gamma") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.gamma = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--mix") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.mix = v;
    } else if (arg == "--mix-mode") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.mix_mode = v;
    } else if (arg == "--mix-window-bits") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.mix_window_bits = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--no-solo") {
      opt.no_solo = true;
    } else if (arg == "--serve") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.serve_path = v;
    } else if (arg == "--checkpoint") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.checkpoint_path = v;
    } else if (arg == "--checkpoint-at") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.checkpoint_at = std::strtoull(v, nullptr, 10);
    } else if (arg == "--restore") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.restore_path = v;
    } else if (arg == "--sample") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.sample = v;
    } else if (arg == "--verify") {
      opt.verify = true;
    } else if (arg == "--sweep") {
      opt.sweep = true;
    } else if (arg == "--policies" || arg == "--archs") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.sweep_archs = v;
    } else if (arg == "--workloads") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.sweep_workloads = v;
    } else if (arg == "--jobs") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.jobs = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--stats") {
      opt.dump_stats = true;
    } else if (arg == "--list") {
      opt.list = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

RedCacheOptions TunedOptions(const CliOptions& opt) {
  RedCacheOptions o = RedCacheOptions::Full();
  if (opt.alpha) {
    o.alpha.initial_alpha = *opt.alpha;
    o.alpha.min_alpha = *opt.alpha;
    o.alpha.max_alpha = *opt.alpha;
    o.alpha.adaptive = false;
  }
  if (opt.gamma) {
    o.gamma.initial_gamma = *opt.gamma;
    o.gamma.min_gamma = *opt.gamma;
    o.gamma.max_gamma = *opt.gamma;
  }
  return o;
}

/// Where human-readable run output goes: stderr when `--telemetry -` owns
/// stdout for the NDJSON stream, stdout otherwise.
FILE* HumanOut(const CliOptions& opt) {
  return opt.telemetry_path && *opt.telemetry_path == "-" ? stderr : stdout;
}

/// Canonical registry casing for `name`; extension labels (RedCache-4way,
/// footprint-2KB) pass through unchanged.
std::string CanonicalPolicy(const std::string& name) {
  return PolicyRegistry::Instance().Has(name)
             ? PolicyRegistry::Instance().Get(name).name
             : name;
}

/// Close the run's telemetry session (end record for streams, file write
/// otherwise) and print the one-line summary. Shared by both run paths.
bool FinishTelemetry(obs::TelemetrySession& session, obs::TelemetryMeta meta,
                     Cycle exec_cycles, FILE* out) {
  meta.exec_cycles = exec_cycles;
  if (!session.Close(meta)) {
    std::fprintf(stderr, "failed to write telemetry to %s\n",
                 session.path().c_str());
    return false;
  }
  std::fprintf(out, "telemetry: %s\n", session.Summary().c_str());
  return true;
}

/// Write the command trace: via the spill writer's Finish (windowed mode,
/// file already holds the spilled prefix) or the whole-buffer writer.
bool FinishTrace(const CliOptions& opt, obs::TraceBuffer& ring,
                 obs::TraceSpillWriter* spill, FILE* out) {
  const std::string& path = *opt.trace_out_path;
  if (spill != nullptr) {
    const std::uint64_t spilled = spill->spilled();
    if (!spill->Finish(ring)) {
      std::fprintf(stderr, "failed to write trace to %s\n", path.c_str());
      return false;
    }
    std::fprintf(out,
                 "trace: %llu events (%llu spilled, window %zu, 0 dropped) "
                 "-> %s (load in Perfetto / chrome://tracing)\n",
                 static_cast<unsigned long long>(ring.emitted()),
                 static_cast<unsigned long long>(spilled), ring.capacity(),
                 path.c_str());
    return true;
  }
  if (!obs::WriteChromeTrace(path, ring)) {
    std::fprintf(stderr, "failed to write trace to %s\n", path.c_str());
    return false;
  }
  std::fprintf(out,
               "trace: %llu events (%llu dropped, ring %zu) -> %s "
               "(load in Perfetto / chrome://tracing)\n",
               static_cast<unsigned long long>(ring.emitted()),
               static_cast<unsigned long long>(ring.dropped()),
               ring.capacity(), path.c_str());
  return true;
}

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : list) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// Parse --mix/--mix-mode/--mix-window-bits into `mix`. Returns 0, or 2 on
/// a bad mode (MixSpec::Parse throws its own error for bad tenant syntax).
int ParseMixOptions(const CliOptions& opt, tenant::MixSpec& mix) {
  mix = tenant::MixSpec::Parse(opt.mix);
  if (opt.mix_mode == "interleave") {
    mix.mode = tenant::TenantAddressMap::Mode::kInterleave;
  } else if (opt.mix_mode != "offset") {
    std::fprintf(stderr, "unknown --mix-mode %s (offset|interleave)\n",
                 opt.mix_mode.c_str());
    return 2;
  }
  mix.window_bits = opt.mix_window_bits;
  return 0;
}

/// "LU+RDX" — human-readable tenant list for cache keys and table rows.
std::string JoinedTenantLabels(const tenant::MixSpec& mix) {
  std::string joined;
  for (const tenant::TenantSpec& t : mix.tenants) {
    if (!joined.empty()) joined += "+";
    joined += t.workload;
  }
  return joined;
}

/// --sweep: the (arch x workload) evaluation matrix on the batch engine.
/// Cells go through the fingerprinted cache when REDCACHE_CACHE_DIR is set.
/// Default sweep columns: the paper's seven evaluation archs in their
/// canonical order, then every other registry policy with sweep=true
/// (rival families like Banshee and TicToc) in registry order.
std::vector<std::string> DefaultSweepPolicies() {
  std::vector<std::string> policies;
  for (const Arch a : EvaluationArchs()) policies.push_back(ToString(a));
  for (const std::string& name : PolicyRegistry::Instance().SweepNames()) {
    if (std::find(policies.begin(), policies.end(), name) == policies.end()) {
      policies.push_back(name);
    }
  }
  return policies;
}

int RunSweep(const CliOptions& opt) {
  const SimPreset preset = opt.paper_preset ? PaperPreset() : EvalPreset();
  std::vector<std::string> policies;
  if (opt.sweep_archs.empty()) {
    policies = DefaultSweepPolicies();
  } else {
    for (const std::string& name : SplitCommas(opt.sweep_archs)) {
      PolicyRegistry::Instance().Get(name);  // fail fast with the full list
      policies.push_back(name);
    }
  }
  // With --mix the matrix is (policy x one mix cell): every policy runs the
  // same co-schedule, plus each tenant's solo cell for the slowdown column.
  tenant::MixSpec mix;
  if (!opt.mix.empty()) {
    if (const int rc = ParseMixOptions(opt, mix); rc != 0) return rc;
  }
  const std::vector<std::string> workloads =
      mix.active() ? std::vector<std::string>{"mix:" + mix.Describe()}
      : opt.sweep_workloads.empty() ? WorkloadLabels()
                                    : SplitCommas(opt.sweep_workloads);

  std::vector<CellSpec> cells;
  cells.reserve(policies.size() * workloads.size());
  for (const std::string& wl : workloads) {
    for (const std::string& p : policies) {
      CellSpec cell;
      cell.spec.policy = p;
      cell.spec.workload = mix.active() ? JoinedTenantLabels(mix) : wl;
      cell.spec.scale = opt.scale;
      cell.spec.preset = preset;
      cell.spec.seed = opt.seed;
      cell.spec.mix = mix;
      cells.push_back(std::move(cell));
    }
  }
  const std::size_t num_mix_cells = cells.size();
  if (mix.active() && !opt.no_solo) {
    for (const std::string& p : policies) {
      for (const tenant::TenantSpec& t : mix.tenants) {
        CellSpec solo;
        solo.spec.policy = p;
        solo.spec.workload = t.workload;
        solo.spec.scale = opt.scale;
        solo.spec.preset = preset;
        solo.spec.seed = opt.seed;
        cells.push_back(std::move(solo));
      }
    }
  }

  BatchOptions bopts;
  bopts.jobs = opt.jobs;
  bopts.label = "sweep";
  bopts.telemetry_dir = opt.telemetry_dir;
  bopts.epoch = opt.epoch;
  BatchReport report;
  if (opt.report_path || !opt.telemetry_dir.empty()) bopts.report = &report;
  const std::vector<RunResult> results = RunCells(cells, bopts);
  if (!opt.telemetry_dir.empty()) {
    std::size_t streamed = 0;
    std::uint64_t epochs = 0;
    for (const CellProfile& c : report.cells) {
      if (c.telemetry_path.empty()) continue;
      streamed++;
      epochs += c.telemetry_epochs;
    }
    std::printf("telemetry: %zu/%zu cells streamed %llu epochs -> %s/ "
                "(cache hits carry no telemetry)\n",
                streamed, report.cells.size(),
                static_cast<unsigned long long>(epochs),
                opt.telemetry_dir.c_str());
  }
  if (opt.report_path) {
    if (!WriteBatchReportJson(*opt.report_path, report)) {
      std::fprintf(stderr, "failed to write report to %s\n",
                   opt.report_path->c_str());
      return 1;
    }
    std::printf("batch report written to %s\n", opt.report_path->c_str());
  }

  std::vector<std::string> header = {"workload"};
  for (const std::string& p : policies) header.push_back(p);
  TextTable table(header);
  std::size_t idx = 0;
  for (const std::string& wl : workloads) {
    std::vector<std::string> row = {wl};
    for (std::size_t a = 0; a < policies.size(); ++a) {
      row.push_back(TextTable::Num(
          static_cast<double>(results[idx++].exec_cycles) / 1e6, 1));
    }
    table.AddRow(std::move(row));
  }
  std::printf("execution time (Mcycles), %s preset, scale %.2f:\n%s\n",
              preset.name, opt.scale, table.Render().c_str());

  // Per-tenant QoS under every policy — printed only for a mix sweep;
  // classic sweeps emit exactly the table above, as before.
  if (mix.active()) {
    for (std::size_t p = 0; p < policies.size(); ++p) {
      std::vector<tenant::TenantQos> rows =
          tenant::QosFromStats(results[p].stats);
      if (!opt.no_solo) {
        for (std::size_t t = 0; t < mix.tenants.size(); ++t) {
          const RunResult& solo =
              results[num_mix_cells + p * mix.tenants.size() + t];
          tenant::ApplySoloBaseline(rows, static_cast<std::uint32_t>(t),
                                    solo.exec_cycles);
        }
      }
      std::printf("%s:\n", policies[p].c_str());
      for (const tenant::TenantQos& row : rows) {
        const std::string label = row.tenant < mix.tenants.size()
                                      ? mix.tenants[row.tenant].workload
                                      : "?";
        std::printf("  %s\n",
                    tenant::FormatQosLine(rows, row, label).c_str());
      }
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// --mix / --serve: co-scheduled tenants and long-run trace streaming.

volatile std::sig_atomic_t g_serve_stop = 0;

void OnServeStop(int) { g_serve_stop = 1; }

/// SIGTERM/SIGINT request a graceful drain: the handler only sets the flag,
/// and SA_RESTART is deliberately absent so a blocked stream read() returns
/// EINTR and notices the request instead of resuming forever.
void InstallServeSignalHandlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = OnServeStop;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

/// The StreamTraceSource feeding this run, if any: the trace itself in
/// plain serve mode, or the "serve" tenant inside a mix.
tenant::StreamTraceSource* FindStream(TraceSource& trace) {
  if (auto* s = dynamic_cast<tenant::StreamTraceSource*>(&trace)) return s;
  if (auto* m = dynamic_cast<tenant::MixTraceSource*>(&trace)) {
    for (std::size_t t = 0; t < m->num_children(); ++t) {
      if (auto* s = FindStream(m->child(t))) return s;
    }
  }
  return nullptr;
}

int RunMixServe(const CliOptions& opt) {
  if (opt.capture_path || opt.replay_path || opt.footprint || opt.ways > 1) {
    std::fprintf(stderr,
                 "--mix/--serve cannot be combined with --capture, --replay, "
                 "--footprint or --ways\n");
    return 2;
  }
  SimPreset preset = opt.paper_preset ? PaperPreset() : EvalPreset();
  if (opt.hbm_mib) preset.mem.hbm = HbmCacheConfig(*opt.hbm_mib << 20);

  RunSpec spec;
  spec.policy = opt.arch;
  spec.preset = preset;
  spec.scale = opt.scale;
  spec.seed = opt.seed;
  spec.verify = opt.verify;
  spec.serve_path = opt.serve_path;
  if (!opt.mix.empty()) {
    if (const int rc = ParseMixOptions(opt, spec.mix); rc != 0) return rc;
  }

  // Solo baselines for the slowdown column: each workload tenant first runs
  // alone (through the batch cache, so repeated invocations are free under
  // REDCACHE_CACHE_DIR). A streamed "serve" tenant has no synthetic solo
  // run; its slowdown stays unreported.
  if (spec.mix.active() && !opt.no_solo) {
    for (tenant::TenantSpec& t : spec.mix.tenants) {
      if (t.workload == "serve") continue;
      CellSpec solo;
      solo.spec.policy = spec.policy;
      solo.spec.workload = t.workload;
      solo.spec.preset = preset;
      solo.spec.scale = opt.scale;
      solo.spec.seed = opt.seed;
      const RunResult r = RunCellCached(solo);
      t.solo_exec_cycles = r.exec_cycles;
      t.solo_refs = r.stats.GetCounter("core.refs");
    }
  }

  auto system = BuildSystem(spec);
  FILE* out = HumanOut(opt);

  // Observability: live telemetry stream and/or (windowed) command trace —
  // a long serve run traces end-to-end through --trace-window in bounded
  // memory exactly like a single-shot run.
  std::unique_ptr<obs::TelemetrySession> telemetry;
  obs::TelemetryMeta meta = TelemetryMetaOf(spec);
  const std::string workload_label = system->trace().name();
  meta.workload = workload_label;
  if (opt.telemetry_path) {
    telemetry = std::make_unique<obs::TelemetrySession>(
        *opt.telemetry_path, opt.epoch, preset.telemetry_epoch_cycles);
    system->SetTelemetry(&telemetry->sampler());
    telemetry->Begin(meta);
  }
  obs::TraceBuffer trace_buffer(opt.trace_window != 0
                                    ? opt.trace_window
                                    : obs::TraceBuffer::kDefaultCapacity);
  std::unique_ptr<obs::TraceSpillWriter> spill;
  std::optional<obs::TraceScope> trace_scope;
  if (opt.trace_out_path) {
    if (opt.trace_window != 0) {
      spill = std::make_unique<obs::TraceSpillWriter>(*opt.trace_out_path);
      if (!spill->ok()) {
        std::fprintf(stderr, "cannot open trace file %s\n",
                     opt.trace_out_path->c_str());
        return 1;
      }
      trace_buffer.SetSpill(spill.get());
    }
    trace_scope.emplace(&trace_buffer);
  }

  tenant::StreamTraceSource* stream = FindStream(system->trace());
  if (stream != nullptr) {
    InstallServeSignalHandlers();
    stream->SetStopFlag(&g_serve_stop);
  }

  const RunResult r = system->Run();
  trace_scope.reset();

  if (!r.completed) {
    std::fprintf(stderr, "simulation did not complete\n");
    return 1;
  }
  if (spec.verify) {
    if (auto* checker = dynamic_cast<ShadowChecker*>(&system->controller())) {
      checker->CheckDrained();
      std::fprintf(out, "%s\n", checker->Summary().c_str());
    }
  }
  if (stream != nullptr) {
    std::fprintf(out, "stream: %llu records ingested%s\n",
                 static_cast<unsigned long long>(stream->total_records()),
                 g_serve_stop != 0 ? " (stopped by signal, drained)" : "");
  }

  const auto hits = r.stats.GetCounter("ctrl.cache_hits");
  const auto misses = r.stats.GetCounter("ctrl.cache_misses");
  std::fprintf(
      out,
      "%s on %s: %llu cycles (%.2f ms @3.2GHz), hit rate %.1f%%, "
      "HBM %.3f GB, DDR4 %.3f GB, system energy %.2f mJ\n",
      opt.arch.c_str(), workload_label.c_str(),
      static_cast<unsigned long long>(r.exec_cycles),
      static_cast<double>(r.exec_cycles) / 3.2e9 * 1e3,
      hits + misses == 0
          ? 0.0
          : 100.0 * static_cast<double>(hits) /
                static_cast<double>(hits + misses),
      static_cast<double>(r.HbmBytes()) / 1e9,
      static_cast<double>(r.MmBytes()) / 1e9, r.energy.SystemNj() / 1e6);

  // Per-tenant QoS: only a mix prints these (plain --serve runs stay
  // single-tenant and export no tenant counters at all).
  if (spec.mix.active()) {
    std::vector<tenant::TenantQos> rows = tenant::QosFromStats(r.stats);
    for (std::uint32_t t = 0; t < spec.mix.num_tenants(); ++t) {
      tenant::ApplySoloBaseline(rows, t, spec.mix.tenants[t].solo_exec_cycles);
    }
    for (const tenant::TenantQos& row : rows) {
      const std::string label = row.tenant < spec.mix.num_tenants()
                                    ? spec.mix.tenants[row.tenant].workload
                                    : "?";
      std::fprintf(out, "%s\n",
                   tenant::FormatQosLine(rows, row, label).c_str());
    }
  }

  if (telemetry != nullptr &&
      !FinishTelemetry(*telemetry, meta, r.exec_cycles, out)) {
    return 1;
  }
  if (opt.trace_out_path &&
      !FinishTrace(opt, trace_buffer, spill.get(), out)) {
    return 1;
  }
  if (opt.dump_stats) {
    std::fprintf(out, "%s", r.stats.ToString().c_str());
  }
  return 0;
}

/// --checkpoint / --restore / --sample: runs driven through RunSpec, so
/// the blob's compatibility key covers exactly the inputs that shape
/// results. Mixes are allowed (the blob captures tenant state); the
/// trace/extension flags that bypass the policy registry are not.
int RunSpecMode(const CliOptions& opt) {
  if (opt.capture_path || opt.replay_path || opt.footprint || opt.ways > 1 ||
      opt.alpha || opt.gamma || !opt.serve_path.empty() ||
      opt.trace_out_path) {
    std::fprintf(stderr,
                 "--checkpoint/--restore/--sample cannot be combined with "
                 "--capture, --replay, --footprint, --ways, --alpha, "
                 "--gamma, --serve or --trace\n");
    return 2;
  }
  SimPreset preset = opt.paper_preset ? PaperPreset() : EvalPreset();
  if (opt.hbm_mib) preset.mem.hbm = HbmCacheConfig(*opt.hbm_mib << 20);

  RunSpec spec;
  spec.policy = opt.arch;
  spec.workload = opt.workload;
  spec.preset = preset;
  spec.scale = opt.scale;
  spec.seed = opt.seed;
  spec.verify = opt.verify;
  if (!opt.mix.empty()) {
    if (const int rc = ParseMixOptions(opt, spec.mix); rc != 0) return rc;
  }
  if (opt.telemetry_path) spec.telemetry_path = *opt.telemetry_path;
  spec.epoch = opt.epoch;
  spec.checkpoint_path = opt.checkpoint_path;
  spec.checkpoint_at = opt.checkpoint_at;
  spec.restore_path = opt.restore_path;
  FILE* out = HumanOut(opt);

  if (!opt.sample.empty()) {
    if (!opt.checkpoint_path.empty() || !opt.restore_path.empty()) {
      std::fprintf(stderr,
                   "--sample manages its own checkpoints; drop "
                   "--checkpoint/--restore\n");
      return 2;
    }
    SamplingOptions sopts;
    sopts.jobs = opt.jobs;
    char* rest = nullptr;
    sopts.fraction = std::strtod(opt.sample.c_str(), &rest);
    if (rest != nullptr && *rest == ':') {
      sopts.interval_cycles = std::strtoull(rest + 1, nullptr, 10);
    }
    const SamplingEstimate est = RunSampled(spec, sopts);
    if (est.degenerate) {
      std::fprintf(out,
                   "sampling degenerated to one full detailed run (run "
                   "shorter than the first measurement interval)\n");
    }
    std::fprintf(
        out,
        "%s on %s (sampled %.1f%%): est %.0f cycles +/- %.0f "
        "(95%% CI, +/-%.2f%%), %llu intervals, %llu refs\n",
        opt.arch.c_str(), opt.workload.c_str(), sopts.fraction * 100.0,
        est.est_exec_cycles, est.ci_half_cycles, est.ci_pct,
        static_cast<unsigned long long>(est.intervals),
        static_cast<unsigned long long>(est.total_refs));
    std::fprintf(out,
                 "sampling passes: functional %.2fs + parallel replay "
                 "%.2fs\n",
                 est.functional_seconds, est.replay_seconds);
    if (opt.report_path) {
      BatchReport report;
      report.label = "sample";
      report.jobs = sopts.jobs;
      report.wall_seconds = est.functional_seconds + est.replay_seconds;
      CellProfile prof;
      prof.key = CellKey(CellSpec{spec, ""});
      prof.arch = opt.arch;
      prof.workload = opt.workload;
      prof.wall_seconds = report.wall_seconds;
      prof.sim_seconds = report.wall_seconds;
      prof.exec_cycles = est.est_stats.GetCounter("sys.exec_cycles");
      prof.sampled = true;
      prof.sampling_intervals = est.intervals;
      prof.sampling_ci_pct = est.ci_pct;
      report.cells.push_back(prof);
      if (!WriteBatchReportJson(*opt.report_path, report)) {
        std::fprintf(stderr, "cannot write report to %s\n",
                     opt.report_path->c_str());
        return 1;
      }
    }
    if (opt.dump_stats) {
      std::fprintf(out, "%s", est.est_stats.ToString().c_str());
    }
    return 0;
  }

  const RunResult r = RunOne(spec);
  if (!r.completed) {
    std::fprintf(stderr, "simulation did not complete\n");
    return 1;
  }
  if (!opt.checkpoint_path.empty() && opt.checkpoint_at >= r.exec_cycles) {
    std::fprintf(stderr,
                 "warning: --checkpoint-at %llu is past the end of the run "
                 "(%llu cycles); no checkpoint was written\n",
                 static_cast<unsigned long long>(opt.checkpoint_at),
                 static_cast<unsigned long long>(r.exec_cycles));
  }
  const auto hits = r.stats.GetCounter("ctrl.cache_hits");
  const auto misses = r.stats.GetCounter("ctrl.cache_misses");
  std::fprintf(
      out,
      "%s on %s: %llu cycles (%.2f ms @3.2GHz), hit rate %.1f%%, "
      "HBM %.3f GB, DDR4 %.3f GB, system energy %.2f mJ\n",
      opt.arch.c_str(), opt.workload.c_str(),
      static_cast<unsigned long long>(r.exec_cycles),
      static_cast<double>(r.exec_cycles) / 3.2e9 * 1e3,
      hits + misses == 0
          ? 0.0
          : 100.0 * static_cast<double>(hits) /
                static_cast<double>(hits + misses),
      static_cast<double>(r.HbmBytes()) / 1e9,
      static_cast<double>(r.MmBytes()) / 1e9, r.energy.SystemNj() / 1e6);
  if (opt.dump_stats) {
    std::fprintf(out, "%s", r.stats.ToString().c_str());
  }
  return 0;
}

int Run(const CliOptions& opt) {
  SimPreset preset = opt.paper_preset ? PaperPreset() : EvalPreset();
  if (opt.hbm_mib) {
    preset.mem.hbm = HbmCacheConfig(*opt.hbm_mib << 20);
  }

  // Trace source: captured file or synthetic workload.
  std::unique_ptr<TraceSource> trace;
  if (opt.replay_path) {
    trace = std::make_unique<FileTraceSource>(*opt.replay_path);
  } else {
    WorkloadBuildParams wp;
    wp.num_cores = preset.hierarchy.num_cores;
    wp.scale = EffectiveScale(opt.scale);
    trace = MakeWorkload(opt.workload, wp);
  }

  if (opt.capture_path) {
    TraceFileWriter writer(*opt.capture_path, trace->num_cores());
    writer.CaptureAll(*trace);
    writer.Flush();
    std::printf("captured %llu records to %s\n",
                static_cast<unsigned long long>(writer.records_written()),
                opt.capture_path->c_str());
    return 0;
  }

  // Controller: extension flags first, then the standard registry.
  std::unique_ptr<MemController> ctrl;
  std::string arch_label = opt.arch;
  if (opt.footprint) {
    ctrl = std::make_unique<FootprintCacheController>(preset.mem);
    arch_label = "footprint-2KB";
  } else if (opt.ways > 1) {
    ctrl = std::make_unique<AssocRedCacheController>(
        preset.mem, TunedOptions(opt), opt.ways);
    arch_label = "RedCache-" + std::to_string(opt.ways) + "way";
  } else if (opt.alpha || opt.gamma) {
    ctrl = std::make_unique<RedCacheController>(preset.mem, TunedOptions(opt),
                                                "redcache-pinned");
    arch_label = "RedCache-pinned";
  } else {
    // Unknown names fail here with a message listing every registered
    // policy (see PolicyRegistry::Get).
    ctrl = MakePolicy(opt.arch, preset.mem);
  }

  ShadowChecker* shadow = nullptr;
  if (opt.verify) {
    auto checked = std::make_unique<ShadowChecker>(std::move(ctrl));
    shadow = checked.get();
    ctrl = std::move(checked);
  }

  System system(preset.hierarchy, preset.core, std::move(ctrl),
                std::move(trace), opt.seed);
  FILE* out = HumanOut(opt);

  // Observability: epoch sampler and/or command trace, both opt-in and
  // inert (single branch per probe) when the flags are absent.
  std::unique_ptr<obs::TelemetrySession> telemetry;
  obs::TelemetryMeta meta;
  if (opt.telemetry_path) {
    meta.arch = arch_label;
    meta.workload = opt.replay_path ? *opt.replay_path : opt.workload;
    meta.preset = preset.name;
    meta.policy = CanonicalPolicy(arch_label);
    telemetry = std::make_unique<obs::TelemetrySession>(
        *opt.telemetry_path, opt.epoch, preset.telemetry_epoch_cycles);
    system.SetTelemetry(&telemetry->sampler());
    telemetry->Begin(meta);
  }
  obs::TraceBuffer trace_buffer(opt.trace_window != 0
                                    ? opt.trace_window
                                    : obs::TraceBuffer::kDefaultCapacity);
  std::unique_ptr<obs::TraceSpillWriter> spill;
  std::optional<obs::TraceScope> trace_scope;
  if (opt.trace_out_path) {
    if (opt.trace_window != 0) {
      spill = std::make_unique<obs::TraceSpillWriter>(*opt.trace_out_path);
      if (!spill->ok()) {
        std::fprintf(stderr, "cannot open trace file %s\n",
                     opt.trace_out_path->c_str());
        return 1;
      }
      trace_buffer.SetSpill(spill.get());
    }
    trace_scope.emplace(&trace_buffer);
  }

  const RunResult r = system.Run();
  trace_scope.reset();

  if (telemetry != nullptr &&
      !FinishTelemetry(*telemetry, meta, r.exec_cycles, out)) {
    return 1;
  }
  if (opt.trace_out_path &&
      !FinishTrace(opt, trace_buffer, spill.get(), out)) {
    return 1;
  }
  if (!r.completed) {
    std::fprintf(stderr, "simulation did not complete\n");
    return 1;
  }
  if (shadow != nullptr) {
    shadow->CheckDrained();
    std::fprintf(out, "%s\n", shadow->Summary().c_str());
    if (shadow->divergence_count() != 0) {
      for (const std::string& msg : shadow->divergence_messages()) {
        std::fprintf(stderr, "divergence: %s\n", msg.c_str());
      }
      return 1;
    }
  }

  const auto hits = r.stats.GetCounter("ctrl.cache_hits");
  const auto misses = r.stats.GetCounter("ctrl.cache_misses");
  std::fprintf(
      out,
      "%s on %s: %llu cycles (%.2f ms @3.2GHz), hit rate %.1f%%, "
      "HBM %.3f GB, DDR4 %.3f GB, system energy %.2f mJ\n",
      arch_label.c_str(),
      opt.replay_path ? opt.replay_path->c_str() : opt.workload.c_str(),
      static_cast<unsigned long long>(r.exec_cycles),
      static_cast<double>(r.exec_cycles) / 3.2e9 * 1e3,
      hits + misses == 0
          ? 0.0
          : 100.0 * static_cast<double>(hits) /
                static_cast<double>(hits + misses),
      static_cast<double>(r.HbmBytes()) / 1e9,
      static_cast<double>(r.MmBytes()) / 1e9, r.energy.SystemNj() / 1e6);
  const std::uint64_t span = r.ticks_executed + r.cycles_skipped;
  std::fprintf(out,
               "event loop: %llu ticks executed, %llu cycles skipped "
               "(%.1f%%)\n",
               static_cast<unsigned long long>(r.ticks_executed),
               static_cast<unsigned long long>(r.cycles_skipped),
               span == 0 ? 0.0
                         : 100.0 * static_cast<double>(r.cycles_skipped) /
                               static_cast<double>(span));

  if (opt.dump_stats) {
    std::fprintf(out, "%s", r.stats.ToString().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  if (!ParseArgs(argc, argv, opt)) {
    PrintUsage();
    return 2;
  }
  if (opt.list) {
    std::printf("registered policies:\n");
    TextTable table({"name", "family", "diff", "golden", "sweep", "summary"});
    for (const PolicyInfo& info : PolicyRegistry::Instance().Infos()) {
      table.AddRow({info.name, info.family, info.differential ? "y" : "-",
                    info.golden ? "y" : "-", info.sweep ? "y" : "-",
                    info.summary});
    }
    std::printf("%s", table.Render().c_str());
    std::printf("workloads:");
    for (const std::string& wl : WorkloadLabels()) {
      std::printf(" %s", wl.c_str());
    }
    std::printf("\nextensions: --ways N (associative RedCache), "
                "--footprint (coarse-grained baseline)\n");
    return 0;
  }
  try {
    if (opt.sweep) return RunSweep(opt);
    if (!opt.checkpoint_path.empty() || !opt.restore_path.empty() ||
        !opt.sample.empty()) {
      return RunSpecMode(opt);
    }
    if (!opt.mix.empty() || !opt.serve_path.empty()) return RunMixServe(opt);
    return Run(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
