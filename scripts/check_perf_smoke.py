#!/usr/bin/env python3
"""Perf-smoke gate: compare a google-benchmark JSON run of the loaded-queue
microbench against the checked-in baseline (bench/perf_smoke_baseline.json)
and fail if CPU ns/op regressed beyond the baseline's tolerance.

Usage:
  # after: ./build/bench/micro_components \
  #          --benchmark_filter=BM_DramChannelLoadedQueue \
  #          --benchmark_min_time=0.2 --benchmark_repetitions=5 \
  #          --benchmark_format=json > bench_out.json
  scripts/check_perf_smoke.py bench_out.json            # gate (CI)
  scripts/check_perf_smoke.py bench_out.json --update   # rewrite baseline

The measured value is the median across repetitions (the *_median aggregate
when present, else the median of the raw repetition samples), using CPU time
rather than wall time so background load on the runner matters less.
Cross-machine absolute ns/op is inherently coarse — the tolerance is wide
(default 15%) and the gate exists to catch order-of-magnitude mistakes
(e.g. reintroducing a per-bank pointer chase), not 2% drift.
"""

import argparse
import json
import statistics
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "bench" / "perf_smoke_baseline.json"


def measured_ns_per_op(bench_json: dict, name: str) -> float:
    """Median CPU ns/op for benchmark `name` from google-benchmark JSON."""
    entries = bench_json.get("benchmarks", [])
    for b in entries:
        if b.get("name") == f"{name}_median":
            if b.get("time_unit") != "ns":
                raise SystemExit(f"unexpected time_unit {b.get('time_unit')}")
            return float(b["cpu_time"])
    samples = [
        float(b["cpu_time"])
        for b in entries
        if b.get("name") == name and b.get("run_type", "iteration") == "iteration"
    ]
    if not samples:
        raise SystemExit(
            f"benchmark {name!r} not found in JSON (ran with the right "
            f"--benchmark_filter?)"
        )
    return statistics.median(samples)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench_json", help="google-benchmark --benchmark_format=json output")
    ap.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    ap.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline's ns/op to the measured value instead of gating",
    )
    args = ap.parse_args()

    baseline = json.loads(Path(args.baseline).read_text())
    name = baseline["benchmark"]
    measured = measured_ns_per_op(json.loads(Path(args.bench_json).read_text()), name)

    if args.update:
        baseline["baseline_ns_per_op"] = round(measured, 1)
        Path(args.baseline).write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"baseline updated: {name} = {measured:.1f} ns/op")
        return 0

    base = float(baseline["baseline_ns_per_op"])
    tol = float(baseline.get("tolerance_pct", 15)) / 100.0
    limit = base * (1.0 + tol)
    delta_pct = 100.0 * (measured - base) / base
    print(
        f"{name}: measured {measured:.1f} ns/op vs baseline {base:.1f} "
        f"({delta_pct:+.1f}%, limit {limit:.1f})"
    )
    if measured > limit:
        print(
            f"FAIL: regression beyond {baseline.get('tolerance_pct', 15)}% "
            f"tolerance. If intentional, rerun with --update and commit the "
            f"new baseline.",
            file=sys.stderr,
        )
        return 1
    if measured < base * (1.0 - tol):
        print(
            "note: measurement is far below baseline — consider refreshing "
            "the baseline with --update so the gate stays tight."
        )
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
