#!/usr/bin/env python3
"""Validate a RedCache NDJSON telemetry stream (schema 1).

The simulator emits one self-contained JSON object per line the moment an
epoch closes (`--telemetry -` / `--telemetry out.ndjson`, DESIGN.md
section 14). This validator is the consumer-side contract check, used by
tests and the `telemetry-live` CI job:

  header   first line; schema == 1, run identity, epoch pacing
  epoch    seq strictly increasing from 0; begin == previous end;
           end > begin; delta/derived/gauges objects present
  end      last line; num_epochs matches the epoch lines seen, and for
           every counter in `totals` the per-epoch deltas sum EXACTLY to
           the total (the telescoping invariant — regardless of epoch
           width, adaptive resizing, or an early-EOF residual epoch)

Checkpoint-restored runs (header carries `restored_at` + `baseline`):
the first epoch must begin at `restored_at`, and the telescoping target
becomes sum(deltas) + baseline[counter] == totals[counter] — the deltas
cover only post-restore progress while totals are cumulative over the
whole (original + resumed) run.

Usage:
  redcache_cli --workload LU --telemetry - | scripts/check_telemetry.py
  scripts/check_telemetry.py run.ndjson another.ndjson
  scripts/check_telemetry.py run.ndjson --summary   # per-run digest

Exit status: 0 when every stream validates, 1 otherwise.
"""

import argparse
import json
import sys


class StreamError(Exception):
    def __init__(self, lineno, message):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def _require(cond, lineno, message):
    if not cond:
        raise StreamError(lineno, message)


def validate_stream(lines, name="<stdin>"):
    """Validate one NDJSON stream; returns a summary dict or raises
    StreamError."""
    header = None
    end = None
    epochs = []
    sums = {}
    last_end = None

    lineno = 0
    for raw in lines:
        lineno += 1
        raw = raw.strip()
        if not raw:
            continue
        try:
            rec = json.loads(raw)
        except json.JSONDecodeError as e:
            raise StreamError(lineno, f"not valid JSON: {e}") from e
        _require(isinstance(rec, dict), lineno, "record is not an object")
        kind = rec.get("type")
        _require(end is None, lineno, "record after the end record")

        if header is None:
            _require(kind == "header", lineno,
                     f"first record must be a header, got {kind!r}")
            _require(rec.get("schema") == 1, lineno,
                     f"unsupported schema {rec.get('schema')!r}")
            for key in ("arch", "workload", "policy", "epoch_cycles"):
                _require(key in rec, lineno, f"header missing {key!r}")
            if rec.get("adaptive"):
                _require(
                    0 < rec.get("epoch_min", 0) <= rec.get("epoch_max", 0),
                    lineno, "adaptive header needs 0 < epoch_min <= epoch_max")
            if "restored_at" in rec:
                _require(isinstance(rec["restored_at"], int)
                         and rec["restored_at"] >= 0, lineno,
                         "restored_at must be a non-negative integer")
                _require(isinstance(rec.get("baseline"), dict), lineno,
                         "restored header missing baseline object")
                for counter, value in rec["baseline"].items():
                    _require(isinstance(value, int), lineno,
                             f"baseline[{counter!r}] is not an integer")
            header = rec
            continue

        if kind == "epoch":
            _require(rec.get("seq") == len(epochs), lineno,
                     f"seq {rec.get('seq')} != expected {len(epochs)}")
            begin, stop = rec.get("begin"), rec.get("end")
            _require(isinstance(begin, int) and isinstance(stop, int),
                     lineno, "begin/end must be integers")
            _require(stop > begin, lineno,
                     f"empty or inverted epoch [{begin}, {stop})")
            if last_end is not None:
                _require(begin == last_end, lineno,
                         f"gap: begin {begin} != previous end {last_end}")
            elif "restored_at" in header:
                # Restored runs resume epoch accounting at the checkpoint
                # cycle — a first epoch starting anywhere else means the
                # restore corrupted the epoch telescoping.
                _require(begin == header["restored_at"], lineno,
                         f"restored stream's first epoch begins at {begin}, "
                         f"not restored_at {header['restored_at']}")
            last_end = stop
            for key in ("delta", "derived", "gauges"):
                _require(isinstance(rec.get(key), dict), lineno,
                         f"epoch missing {key!r} object")
            for counter, value in rec["delta"].items():
                _require(isinstance(value, int), lineno,
                         f"delta[{counter!r}] is not an integer")
                sums[counter] = sums.get(counter, 0) + value
            if header.get("adaptive"):
                width = rec["gauges"].get("telemetry.epoch_cycles")
                _require(isinstance(width, int) and width > 0, lineno,
                         "adaptive epoch lacks telemetry.epoch_cycles gauge")
                _require(
                    header["epoch_min"] <= width <= header["epoch_max"],
                    lineno, f"width {width} outside the clamp band")
            epochs.append(rec)
        elif kind == "end":
            _require(rec.get("num_epochs") == len(epochs), lineno,
                     f"end says {rec.get('num_epochs')} epochs, "
                     f"stream has {len(epochs)}")
            totals = rec.get("totals")
            _require(isinstance(totals, dict), lineno,
                     "end record missing totals object")
            baseline = header.get("baseline", {})
            for counter, total in totals.items():
                got = sums.get(counter, 0) + baseline.get(counter, 0)
                _require(got == total, lineno,
                         f"telescoping broke for {counter!r}: "
                         f"deltas{'+baseline' if baseline else ''} sum to "
                         f"{got}, total is {total}")
            end = rec
        else:
            raise StreamError(lineno, f"unknown record type {kind!r}")

    _require(header is not None, max(lineno, 1), "empty stream (no header)")
    _require(end is not None, lineno, "stream has no end record (truncated?)")
    return {
        "name": name,
        "header": header,
        "end": end,
        "epochs": epochs,
        "counters": len(sums),
    }


def _width_runs(epochs):
    """Consecutive runs of the adaptive width gauge: [(width, count), ...]."""
    runs = []
    for e in epochs:
        width = e["gauges"].get("telemetry.epoch_cycles")
        if runs and runs[-1][0] == width:
            runs[-1][1] += 1
        else:
            runs.append([width, 1])
    return runs


def print_summary(result):
    header, end, epochs = (result["header"], result["end"], result["epochs"])
    mix = f" mix={header['mix']}" if header.get("mix") else ""
    print(f"{result['name']}: {header['policy']}/{header['workload']}"
          f"{mix} preset={header.get('preset', '?')}")
    print(f"  {end['num_epochs']} epochs over {end['exec_cycles']} cycles, "
          f"{result['counters']} counters, telescoping OK")
    if "restored_at" in header:
        print(f"  restored at cycle {header['restored_at']}, "
              f"{len(header.get('baseline', {}))} baseline counters")
    if header.get("adaptive"):
        print(f"  adaptive: band [{header['epoch_min']}, "
              f"{header['epoch_max']}], used "
              f"[{end['epoch_min_used']}, {end['epoch_max_used']}]")
        runs = ", ".join(f"{w}x{n}" for w, n in _width_runs(epochs))
        print(f"  width runs: {runs}")
    else:
        print(f"  fixed epoch width: {header['epoch_cycles']}")


def main():
    ap = argparse.ArgumentParser(
        description="Validate RedCache NDJSON telemetry streams")
    ap.add_argument("streams", nargs="*",
                    help="NDJSON files to validate (default: stdin)")
    ap.add_argument("--summary", action="store_true",
                    help="print a per-stream digest after validating")
    args = ap.parse_args()

    failures = 0
    inputs = args.streams or ["-"]
    for path in inputs:
        try:
            if path == "-":
                result = validate_stream(sys.stdin, "<stdin>")
            else:
                with open(path, encoding="utf-8") as f:
                    result = validate_stream(f, path)
        except StreamError as e:
            print(f"FAIL {path}: {e}", file=sys.stderr)
            failures += 1
            continue
        except OSError as e:
            print(f"FAIL {path}: {e}", file=sys.stderr)
            failures += 1
            continue
        if args.summary:
            print_summary(result)
        else:
            print(f"OK {result['name']}: {result['end']['num_epochs']} "
                  f"epochs, {result['counters']} counters, telescoping OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
