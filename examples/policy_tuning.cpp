// Policy tuning: sweep static alpha / gamma settings against the adaptive
// controller on one workload — the experiment an architect would run before
// taping out threshold registers.
//
//   ./build/examples/policy_tuning [workload] [scale]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/table.hpp"
#include "dramcache/redcache.hpp"
#include "sim/runner.hpp"

namespace {

using namespace redcache;

RunResult RunWithOptions(const std::string& workload, double scale,
                         const RedCacheOptions& opt) {
  const SimPreset preset = EvalPreset();
  WorkloadBuildParams wp;
  wp.num_cores = preset.hierarchy.num_cores;
  wp.scale = EffectiveScale(scale);
  auto trace = MakeWorkload(workload, wp);
  auto ctrl =
      std::make_unique<RedCacheController>(preset.mem, opt, "tuned");
  System system(preset.hierarchy, preset.core, std::move(ctrl),
                std::move(trace));
  return system.Run();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace redcache;

  const std::string workload = argc > 1 ? argv[1] : "LU";
  const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

  std::printf("Policy tuning on %s (scale %.2f)\n\n", workload.c_str(),
              scale);

  TextTable table({"policy", "exec (Mcycles)", "HBM hit rate",
                   "alpha bypasses", "gamma invalidations", "final a/g"});

  auto report = [&](const char* name, const RedCacheOptions& opt) {
    const RunResult r = RunWithOptions(workload, scale, opt);
    const auto hits = r.stats.GetCounter("ctrl.cache_hits");
    const auto misses = r.stats.GetCounter("ctrl.cache_misses");
    table.AddRow({
        name,
        TextTable::Num(static_cast<double>(r.exec_cycles) / 1e6, 1),
        TextTable::Pct(hits + misses == 0
                           ? 0.0
                           : static_cast<double>(hits) /
                                 static_cast<double>(hits + misses)),
        std::to_string(r.stats.GetCounter("ctrl.alpha_bypasses")),
        std::to_string(r.stats.GetCounter("ctrl.gamma_invalidations")),
        std::to_string(r.stats.GetCounter("ctrl.alpha_value")) + "/" +
            std::to_string(r.stats.GetCounter("ctrl.gamma_value")),
    });
  };

  for (std::uint32_t alpha = 1; alpha <= 3; ++alpha) {
    RedCacheOptions opt = RedCacheOptions::Full();
    opt.alpha.initial_alpha = alpha;
    opt.alpha.adaptive = false;
    char name[32];
    std::snprintf(name, sizeof(name), "static alpha=%u", alpha);
    report(name, opt);
  }
  for (std::uint32_t gamma : {4u, 16u, 64u}) {
    RedCacheOptions opt = RedCacheOptions::Full();
    opt.gamma.initial_gamma = gamma;
    opt.gamma.min_gamma = gamma;
    opt.gamma.max_gamma = gamma;
    char name[32];
    std::snprintf(name, sizeof(name), "static gamma=%u", gamma);
    report(name, opt);
  }
  report("adaptive (default)", RedCacheOptions::Full());

  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "The adaptive controller should land near the best static setting\n"
      "without knowing the workload in advance — that is the point of\n"
      "run-time alpha/gamma tuning.\n");
  return 0;
}
