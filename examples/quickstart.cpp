// Quickstart: run one workload on Alloy and RedCache and compare.
//
//   ./build/examples/quickstart [workload] [scale]
//
// Demonstrates the three-line public API: pick an architecture, pick a
// workload, run, read the metrics.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace redcache;

  // Scale 1.0 is the calibrated evaluation regime (takes a minute or two);
  // pass a smaller scale for a fast smoke run.
  const std::string workload = argc > 1 ? argv[1] : "RDX";
  const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

  std::printf("RedCache quickstart: workload %s (%s), scale %.2f\n\n",
              workload.c_str(), WorkloadDescription(workload).c_str(), scale);

  TextTable table({"architecture", "exec cycles", "speedup vs Alloy",
                   "HBM hit rate", "HBM GB moved", "DDR4 GB moved",
                   "system energy (mJ)"});

  double alloy_cycles = 0;
  for (const Arch arch : {Arch::kAlloy, Arch::kBear, Arch::kRedCache}) {
    RunSpec spec;
    spec.arch = arch;
    spec.workload = workload;
    spec.scale = scale;
    const RunResult r = RunOne(spec);

    const auto hits = r.stats.GetCounter("ctrl.cache_hits");
    const auto misses = r.stats.GetCounter("ctrl.cache_misses");
    const double hit_rate =
        hits + misses == 0
            ? 0.0
            : static_cast<double>(hits) / static_cast<double>(hits + misses);
    if (arch == Arch::kAlloy) {
      alloy_cycles = static_cast<double>(r.exec_cycles);
    }
    table.AddRow({
        ToString(arch),
        std::to_string(r.exec_cycles),
        TextTable::Num(alloy_cycles / static_cast<double>(r.exec_cycles), 2) +
            "x",
        TextTable::Pct(hit_rate),
        TextTable::Num(static_cast<double>(r.HbmBytes()) / 1e9, 3),
        TextTable::Num(static_cast<double>(r.MmBytes()) / 1e9, 3),
        TextTable::Num(r.energy.SystemNj() / 1e6, 2),
    });
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "RedCache should finish faster than both baselines by caching only\n"
      "bandwidth-hungry blocks (alpha), evicting on last writes (gamma)\n"
      "and hiding r-count update traffic (RCU).\n");
  return 0;
}
