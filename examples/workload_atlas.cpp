// Workload atlas: characterize every Table II workload's memory behaviour
// (the profile RedCache's mechanisms key on) without running any cache —
// useful when porting the suite or adding new synthetic applications.
//
//   ./build/examples/workload_atlas [scale]
#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "sim/runner.hpp"
#include "workloads/profiler.hpp"

int main(int argc, char** argv) {
  using namespace redcache;

  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  std::printf("Workload atlas (No-HBM profile, scale %.2f)\n\n", scale);

  TextTable table({"label", "mem requests (M)", "distinct blocks (K)",
                   "mean block reuse", "p90 reuse", "last-access=WB"});

  for (const std::string& wl : WorkloadLabels()) {
    RunSpec spec;
    spec.arch = Arch::kNoHbm;
    spec.workload = wl;
    spec.scale = scale;
    auto system = BuildSystem(spec);
    BlockProfiler profiler;
    system->SetRequestObserver(
        [&](Addr addr, bool is_wb) { profiler.OnRequest(addr, is_wb); });
    (void)system->Run();

    // Reuse distribution stats from the homo-reuse groups.
    const auto groups = profiler.Groups(1);
    double mean = 0;
    std::uint64_t blocks = 0;
    for (const auto& g : groups) {
      mean += static_cast<double>(g.reuses) * static_cast<double>(g.blocks);
      blocks += g.blocks;
    }
    mean /= std::max<std::uint64_t>(1, blocks);
    std::uint64_t acc = 0;
    std::uint32_t p90 = 0;
    for (const auto& g : groups) {
      acc += g.blocks;
      if (10 * acc >= 9 * blocks) {
        p90 = g.reuses;
        break;
      }
    }

    table.AddRow({
        wl,
        TextTable::Num(static_cast<double>(profiler.total_requests()) / 1e6,
                       2),
        TextTable::Num(static_cast<double>(profiler.distinct_blocks()) / 1e3,
                       0),
        TextTable::Num(mean, 1),
        std::to_string(p90),
        TextTable::Pct(profiler.LastAccessWritebackFraction()),
    });
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "mean/p90 reuse show each workload's homo-reuse structure; the\n"
      "last-access-writeback column is the signal gamma counting exploits\n"
      "(the paper reports >82%% for its suite).\n");
  return 0;
}
