// Topology explorer: reproduce the paper's Fig. 1/2(a) design-space walk on
// one workload — No-HBM vs IDEAL vs a real HBM cache vs RedCache — showing
// where the bandwidth goes on each interface.
//
//   ./build/examples/topology_explorer [workload] [scale]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace redcache;

  const std::string workload = argc > 1 ? argv[1] : "FT";
  const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

  std::printf("Topology explorer: %s (scale %.2f)\n", workload.c_str(),
              scale);
  std::printf("%s\n\n", WorkloadDescription(workload).c_str());

  TextTable table({"topology", "exec (Mcycles)", "speedup vs No-HBM",
                   "WideIO GB", "DDRx GB", "WideIO busy", "DDRx busy"});

  double base_exec = 0;
  for (const Arch arch :
       {Arch::kNoHbm, Arch::kIdeal, Arch::kAlloy, Arch::kBear,
        Arch::kRedCache}) {
    RunSpec spec;
    spec.arch = arch;
    spec.workload = workload;
    spec.scale = scale;
    const RunResult r = RunOne(spec);
    if (arch == Arch::kNoHbm) base_exec = static_cast<double>(r.exec_cycles);

    const double hbm_busy =
        static_cast<double>(r.stats.GetCounter("hbm.data_busy_cycles")) /
        (static_cast<double>(r.exec_cycles) *
         spec.preset.mem.hbm.geometry.channels);
    const double ddr_busy =
        static_cast<double>(r.stats.GetCounter("ddr4.data_busy_cycles")) /
        (static_cast<double>(r.exec_cycles) *
         spec.preset.mem.mainmem.geometry.channels);
    table.AddRow({
        ToString(arch),
        TextTable::Num(static_cast<double>(r.exec_cycles) / 1e6, 1),
        TextTable::Num(base_exec / static_cast<double>(r.exec_cycles), 2) +
            "x",
        TextTable::Num(static_cast<double>(r.HbmBytes()) / 1e9, 3),
        TextTable::Num(static_cast<double>(r.MmBytes()) / 1e9, 3),
        TextTable::Pct(hbm_busy),
        TextTable::Pct(ddr_busy),
    });
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Reading the table: IDEAL bounds what in-package bandwidth can buy;\n"
      "the gap between Alloy and IDEAL is what block transfers between the\n"
      "memories cost; RedCache narrows that gap by refusing to move data\n"
      "that will not pay for itself.\n");
  return 0;
}
