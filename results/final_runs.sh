#!/bin/bash
cd /root/repo
export REDCACHE_CACHE_DIR=/tmp/rcache
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt | tail -3
for b in build/bench/*; do $b; done 2>&1 | tee /root/repo/bench_output.txt > /dev/null
echo FINAL_DONE
