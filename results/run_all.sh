#!/bin/bash
# Full figure-reproduction sweep; results land in results/.
export REDCACHE_CACHE_DIR=/tmp/rcache
cd /root/repo
for b in table1_configs table2_workloads fig9_execution_time fig10_hbm_energy fig11_system_energy fig2a_topology fig2b_granularity fig3_reuse_histogram ablation_claims; do
  echo "=== $b ==="
  ./build/bench/$b > results/$b.txt 2>&1
  echo "done $b"
done
./build/bench/micro_components --benchmark_min_time=0.2s > results/micro_components.txt 2>&1
echo ALL_DONE
