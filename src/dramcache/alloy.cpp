#include "dramcache/alloy.hpp"

#include "dramcache/policy_registry.hpp"

namespace redcache {

REDCACHE_REGISTER_POLICY(
    alloy, {.name = "Alloy",
            .summary = "MICRO'12 Alloy cache: direct-mapped TAD, "
                       "always-install fills",
            .family = "alloy",
            .differential = true,
            .golden = true,
            .sweep = true,
            .make = [](const MemControllerConfig& cfg) {
              return std::make_unique<AlloyController>(cfg);
            }});

namespace {
enum State {
  kProbe = 0,    ///< waiting for the TAD read
  kMissFetch,    ///< waiting for the main-memory line
};
}  // namespace

AlloyController::AlloyController(MemControllerConfig cfg)
    : ControllerBase((cfg.has_hbm = true, cfg)),
      tags_(cfg.hbm.geometry.capacity_bytes, cfg.line_blocks) {}

void AlloyController::Fill(Addr addr, bool dirty, Cycle now) {
  const std::uint64_t set = tags_.SetOf(addr);
  DirectMappedTags::Line& line = tags_.line(set);
  if (line.valid) {
    evictions_++;
    if (line.dirty) {
      // The probe read already returned the victim block; wider lines need
      // the remaining blocks streamed out before the main-memory writeback.
      if (tags_.line_blocks() > 1) {
        SendHbm(kPostedOp, tags_.HbmAddr(set, addr), /*is_write=*/false, now,
                tags_.line_blocks() - 1);
      }
      NotifyVictimWriteback(tags_.VictimAddr(set));
      SendMm(kPostedOp, tags_.VictimAddr(set), /*is_write=*/true, now,
             tags_.line_blocks());
      victim_writebacks_++;
    } else {
      NotifyInvalidate(tags_.VictimAddr(set));
    }
  }
  NotifyFill(addr, dirty);
  line.valid = true;
  line.dirty = dirty;
  line.tag = tags_.TagOf(addr);
  line.r_count = 0;
  SendHbm(kPostedOp, tags_.HbmAddr(set, addr), /*is_write=*/true, now,
          tags_.line_blocks());
  fills_++;
}

void AlloyController::StartTxn(Txn& txn, Cycle now) {
  // Every request starts with the TAD probe read.
  txn.state = kProbe;
  const std::uint64_t set = tags_.SetOf(txn.addr);
  SendHbm(TxnIndex(txn), tags_.HbmAddr(set, txn.addr), /*is_write=*/false,
          now);
}

void AlloyController::OnDeviceComplete(Txn& txn, bool /*from_hbm*/,
                                       const DramCompletion& c, Cycle now) {
  const std::uint64_t set = tags_.SetOf(txn.addr);
  switch (txn.state) {
    case kProbe: {
      const bool hit = tags_.Hit(txn.addr);
      if (hit) {
        hits_++;
        if (txn.is_writeback) {
          write_hits_++;
          tags_.line(set).dirty = true;
          NotifyCacheWrite(txn.addr);
          SendHbm(kPostedOp, tags_.HbmAddr(set, txn.addr), /*is_write=*/true,
                  now);
          FreeTxn(txn);
        } else {
          read_hits_++;
          NotifyServeRead(txn, ServeSource::kCache);
          CompleteRead(txn, c.done);
          FreeTxn(txn);
        }
        return;
      }
      misses_++;
      if (txn.is_writeback) {
        // Write-allocate: the CPU supplied the block; wider lines fetch the
        // remainder from main memory (posted — approximation noted in docs).
        if (tags_.line_blocks() > 1) {
          SendMm(kPostedOp, txn.addr, /*is_write=*/false, now,
                 tags_.line_blocks() - 1);
        }
        Fill(txn.addr, /*dirty=*/true, now);
        FreeTxn(txn);
        return;
      }
      txn.state = kMissFetch;
      SendMm(TxnIndex(txn), txn.addr, /*is_write=*/false, now,
             tags_.line_blocks());
      return;
    }
    case kMissFetch: {
      NotifyServeRead(txn, ServeSource::kMainMemory);
      CompleteRead(txn, c.done);
      Fill(txn.addr, /*dirty=*/false, now);
      FreeTxn(txn);
      return;
    }
  }
}

std::uint64_t AlloyController::ResidentLines() const {
  std::uint64_t resident = 0;
  for (std::uint64_t s = 0; s < tags_.num_sets(); ++s) {
    resident += tags_.line(s).valid ? 1 : 0;
  }
  return resident;
}

void AlloyController::ExportOwnStats(StatSet& stats) const {
  stats.Counter("ctrl.cache_hits") = hits_;
  stats.Counter("ctrl.cache_misses") = misses_;
  stats.Counter("ctrl.read_hits") = read_hits_;
  stats.Counter("ctrl.write_hits") = write_hits_;
  stats.Counter("ctrl.fills") = fills_;
  stats.Counter("ctrl.victim_writebacks") = victim_writebacks_;
  stats.Counter("ctrl.evictions") = evictions_;
  stats.Counter("ctrl.resident_lines") = ResidentLines();
}

void AlloyController::SnapshotPolicy(ser::Writer& w) const {
  w.Section("alloy");
  tags_.Snapshot(w);
  w.U64(hits_);
  w.U64(misses_);
  w.U64(read_hits_);
  w.U64(write_hits_);
  w.U64(fills_);
  w.U64(victim_writebacks_);
  w.U64(evictions_);
}

void AlloyController::RestorePolicy(ser::Reader& r) {
  r.Section("alloy");
  tags_.Restore(r);
  hits_ = r.U64();
  misses_ = r.U64();
  read_hits_ = r.U64();
  write_hits_ = r.U64();
  fills_ = r.U64();
  victim_writebacks_ = r.U64();
  evictions_ = r.U64();
}

}  // namespace redcache
