// BEAR baseline (Chou, Jaleel & Qureshi, ISCA'15): Alloy plus techniques
// that cut DRAM-cache bandwidth bloat.
//
//  * Bandwidth-Aware Bypass (BAB): a fraction of miss fills is bypassed —
//    the demand data goes straight to the CPU from main memory without
//    installing the line. A 1-in-32 set sample always fills; comparing the
//    sampled sets' hit rate against the rest estimates what fills are
//    worth, and the bypass fraction adapts each epoch (BEAR's
//    sampling-based gain estimator), starting from the paper's 90%.
//  * DRAM Cache Presence (DCP): a counting Bloom filter on the controller
//    tracks installed lines; a definitely-absent read skips the tag-probe
//    read entirely and goes straight to main memory.
//  * Write-miss bypass: writebacks that miss are routed to main memory
//    rather than allocating, avoiding the fill round trip.
#pragma once

#include "common/rng.hpp"
#include "dramcache/alloy.hpp"

namespace redcache {

/// Counting Bloom filter sized for the DRAM-cache line population.
class PresenceFilter {
 public:
  PresenceFilter(std::size_t buckets, std::uint32_t hashes = 2);

  void Add(Addr line_addr);
  void Remove(Addr line_addr);
  bool MayContain(Addr line_addr) const;

  std::uint64_t checks() const { return checks_; }
  std::uint64_t definite_absences() const { return absences_; }

  void Snapshot(ser::Writer& w) const {
    w.Section("bloom");
    w.U8Seq(counters_);
    w.U64(checks_);
    w.U64(absences_);
  }
  void Restore(ser::Reader& r) {
    r.Section("bloom");
    if (r.SeqLen(1) != counters_.size()) {
      throw ser::SerializeError("presence filter size mismatch");
    }
    for (std::uint8_t& c : counters_) c = r.U8();
    checks_ = r.U64();
    absences_ = r.U64();
  }

 private:
  std::size_t Slot(Addr line_addr, std::uint32_t i) const;

  std::vector<std::uint8_t> counters_;
  std::uint32_t hashes_;
  mutable std::uint64_t checks_ = 0;
  mutable std::uint64_t absences_ = 0;
};

class BearController : public AlloyController {
 public:
  explicit BearController(MemControllerConfig cfg);

  const char* name() const override { return "bear"; }

 protected:
  void StartTxn(Txn& txn, Cycle now) override;
  void OnDeviceComplete(Txn& txn, bool from_hbm, const DramCompletion& c,
                        Cycle now) override;
  void ExportOwnStats(StatSet& stats) const override;
  void SnapshotPolicy(ser::Writer& w) const override;
  void RestorePolicy(ser::Reader& r) override;

 private:
  bool SampledSet(std::uint64_t set) const { return set % 32 == 0; }
  /// BAB decision for a miss to `set`.
  bool ShouldFill(std::uint64_t set);
  void FillTracked(Addr addr, bool dirty, Cycle now);
  void RecordOutcome(std::uint64_t set, bool hit);
  void MaybeRetuneBypass();

  PresenceFilter presence_;
  Rng rng_;
  double fill_probability_ = 0.10;  // BEAR's default: bypass ~90% of fills
  std::uint64_t fill_bypasses_ = 0;
  std::uint64_t probe_skips_ = 0;
  std::uint64_t write_miss_bypasses_ = 0;
  // Sampling-based gain estimator state (per epoch).
  std::uint64_t sample_hits_ = 0, sample_accesses_ = 0;
  std::uint64_t other_hits_ = 0, other_accesses_ = 0;
  std::uint64_t bypass_retunes_ = 0;
};

}  // namespace redcache
