// Set-associative RedCache (extension).
//
// Same alpha / gamma / RCU / bypass-on-refresh machinery as the paper's
// direct-mapped controller, on an N-way LRU organization. One probe read
// returns the set's tags (they live in the row's ECC lanes) together with
// the MRU way's data; a hit on any other way costs one extra data burst,
// and a miss fill targets the LRU victim. This quantifies how much of
// RedCache's benefit survives — or is subsumed by — associativity, the
// direction the authors explore in their R-Cache work.
#pragma once

#include <vector>

#include "core/alpha_table.hpp"
#include "core/gamma.hpp"
#include "core/rcu.hpp"
#include "dramcache/assoc_tags.hpp"
#include "dramcache/controller.hpp"
#include "dramcache/redcache.hpp"

namespace redcache {

class AssocRedCacheController : public ControllerBase {
 public:
  AssocRedCacheController(MemControllerConfig cfg, RedCacheOptions options,
                          std::uint32_t ways,
                          const char* display_name = "redcache-assoc");

  const char* name() const override { return display_name_; }

  const AssocTags& tags() const { return tags_; }

 protected:
  void StartTxn(Txn& txn, Cycle now) override;
  void OnDeviceComplete(Txn& txn, bool from_hbm, const DramCompletion& c,
                        Cycle now) override;
  void PolicyTick(Cycle now) override;
  Cycle PolicyWake(Cycle now) const override;
  void ExportOwnStats(StatSet& stats) const override;
  void OnColumnCommand(const IssuedColumnCommand& cmd) override;
  void SnapshotPolicy(ser::Writer& w) const override;
  void RestorePolicy(ser::Reader& r) override;

 private:
  void HandleProbeResult(Txn& txn, const DramCompletion& c, Cycle now);
  void Fill(Addr addr, bool dirty, Cycle now);
  void FlushRcuEntries(const std::vector<RcuManager::Entry>& entries,
                       Cycle now);
  void Depart(std::uint64_t set, std::uint32_t way, bool lifetime_sample);
  /// Way the probe's speculative data burst returns (the set's MRU way).
  std::uint32_t MruWay(std::uint64_t set) const;

  RedCacheOptions opt_;
  const char* display_name_;
  AssocTags tags_;
  AlphaTable alpha_;
  GammaController gamma_;
  RcuManager rcu_;
  std::vector<RcuManager::Entry> pending_rcu_flushes_;

  std::uint64_t epoch_request_count_ = 0;
  std::uint64_t epoch_departures_ = 0;
  std::uint64_t epoch_dead_departures_ = 0;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t mru_hits_ = 0;       ///< data arrived with the probe
  std::uint64_t non_mru_hits_ = 0;   ///< needed an extra data burst
  std::uint64_t fills_ = 0;
  std::uint64_t victim_writebacks_ = 0;
  std::uint64_t alpha_bypasses_ = 0;
  std::uint64_t gamma_invalidations_ = 0;
  std::uint64_t insitu_updates_ = 0;
  std::uint64_t immediate_updates_ = 0;
};

}  // namespace redcache
