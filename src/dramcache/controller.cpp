#include "dramcache/controller.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace redcache {

ControllerBase::ControllerBase(const MemControllerConfig& cfg) : cfg_(cfg) {
  if (cfg_.has_hbm) {
    hbm_ = std::make_unique<DramSystem>(cfg_.hbm);
    hbm_->SetObserver(this);
  }
  mm_ = std::make_unique<DramSystem>(cfg_.mainmem);
  txns_.resize(cfg_.txn_pool_size);
  free_txns_.reserve(cfg_.txn_pool_size);
  for (std::uint32_t i = 0; i < cfg_.txn_pool_size; ++i) {
    free_txns_.push_back(cfg_.txn_pool_size - 1 - i);
  }
}

void ControllerBase::SubmitRead(Addr addr, std::uint64_t tag, Cycle now) {
  (void)now;
  REDCACHE_CHECK(CanAcceptRead(), "read submitted to a full input queue");
  input_.push_back({BlockAlign(addr), tag, false});
  reads_seen_++;
  if (acct_ != nullptr) acct_->OnCtrlRead(addr);
}

void ControllerBase::SubmitWriteback(Addr addr, Cycle now) {
  (void)now;
  REDCACHE_CHECK(CanAcceptWriteback(),
                 "writeback submitted to a full input queue");
  input_.push_back({BlockAlign(addr), 0, true});
  writebacks_seen_++;
  if (acct_ != nullptr) acct_->OnCtrlWriteback(addr);
}

ControllerBase::Txn& ControllerBase::AllocTxn(const Input& in) {
  REDCACHE_CHECK(!free_txns_.empty(), "transaction pool exhausted");
  const std::uint32_t idx = free_txns_.back();
  free_txns_.pop_back();
  Txn& t = txns_[idx];
  t = Txn{};
  t.addr = in.addr;
  t.tag = in.tag;
  t.is_writeback = in.is_writeback;
  t.active = true;
  active_txns_++;
  return t;
}

void ControllerBase::FreeTxn(Txn& txn) {
  REDCACHE_CHECK(txn.active, "double free of a transaction");
  txn.active = false;
  active_txns_--;
  free_txns_.push_back(TxnIndex(txn));
}

void ControllerBase::CompleteRead(Txn& txn, Cycle done) {
  read_completions_.push_back({txn.addr, txn.tag, done});
  if (acct_ != nullptr) acct_->OnReadComplete(txn.addr, done);
}

void ControllerBase::SendHbm(std::uint32_t txn, Addr addr, bool is_write,
                             Cycle now, std::uint32_t bursts) {
  REDCACHE_CHECK(hbm_ != nullptr, "HBM operation on a controller without HBM");
  std::uint16_t tenant = 0;
  if (acct_ != nullptr) {
    tenant = ResolveTenant(txn, addr);
    // Attribute device bytes at Send time, when the causing tenant is in
    // hand: every queued op eventually transfers exactly bursts * (burst +
    // sideband) bytes, so cumulative totals match the device counters
    // (per-epoch series may lead them by the queueing delay).
    const DramGeometry& geo = hbm_->config().geometry;
    acct_->OnDeviceBytes(
        true, tenant,
        std::uint64_t{bursts} * (geo.burst_bytes + geo.sideband_bytes));
  }
  const std::uint32_t channel = hbm_->ChannelOf(addr);
  if (deferred_hbm_.empty() && hbm_->ChannelCanAccept(channel)) {
    hbm_->Enqueue(addr, is_write, now, txn, bursts, tenant);
  } else {
    deferred_hbm_.push_back({addr, is_write, bursts, txn, channel, tenant});
  }
}

void ControllerBase::SendMm(std::uint32_t txn, Addr addr, bool is_write,
                            Cycle now, std::uint32_t bursts) {
  std::uint16_t tenant = 0;
  if (acct_ != nullptr) {
    tenant = ResolveTenant(txn, addr);
    const DramGeometry& geo = mm_->config().geometry;
    acct_->OnDeviceBytes(
        false, tenant,
        std::uint64_t{bursts} * (geo.burst_bytes + geo.sideband_bytes));
  }
  const std::uint32_t channel = mm_->ChannelOf(addr);
  if (deferred_mm_.empty() && mm_->ChannelCanAccept(channel)) {
    mm_->Enqueue(addr, is_write, now, txn, bursts, tenant);
  } else {
    deferred_mm_.push_back({addr, is_write, bursts, txn, channel, tenant});
  }
}

void ControllerBase::PumpDeferred(Cycle now) {
  // Scan a small window so one blocked channel does not stall the rest.
  constexpr std::size_t kWindow = 8;
  auto pump = [&](std::deque<DevOp>& q, DramSystem& dev) {
    for (std::size_t i = 0; i < q.size() && i < kWindow;) {
      if (dev.ChannelCanAccept(q[i].channel)) {
        dev.Enqueue(q[i].addr, q[i].is_write, now, q[i].txn, q[i].bursts,
                    q[i].tenant);
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  };
  if (hbm_ != nullptr && !deferred_hbm_.empty()) pump(deferred_hbm_, *hbm_);
  if (!deferred_mm_.empty()) pump(deferred_mm_, *mm_);
}

void ControllerBase::RouteCompletions(DramSystem& dev, bool from_hbm,
                                      Cycle now) {
  auto& list = dev.completions();
  for (const DramCompletion& c : list) {
    if (c.user_tag == kPostedOp) continue;
    Txn& t = txns_[static_cast<std::uint32_t>(c.user_tag)];
    REDCACHE_CHECK(t.active, "device completion for a freed transaction");
    // Posted ops issued while handling this completion (fills, victim
    // writebacks) inherit the triggering transaction's tenant.
    TenantScope scope(*this, t.addr);
    OnDeviceComplete(t, from_hbm, c, now);
  }
  list.clear();
}

Cycle ControllerBase::Tick(Cycle now) {
  PumpDeferred(now);
  if (hbm_ != nullptr) hbm_->Tick(now);
  mm_->Tick(now);
  if (hbm_ != nullptr) RouteCompletions(*hbm_, true, now);
  RouteCompletions(*mm_, false, now);
  PolicyTick(now);
  PumpDeferred(now);
  while (!input_.empty() && HasFreeTxn()) {
    const Input in = input_.front();
    input_.pop_front();
    Txn& t = AllocTxn(in);
    TenantScope scope(*this, t.addr);
    StartTxn(t, now);
  }
  PumpDeferred(now);
  return NextEventHint(now);
}

Cycle ControllerBase::NextEventHint(Cycle now) const {
  Cycle next = kNeverWake;
  if (hbm_ != nullptr) next = std::min(next, hbm_->NextEventHint(now));
  next = std::min(next, mm_->NextEventHint(now));
  // Fresh input needs a prompt tick only while transaction slots are free;
  // deferred device ops can only progress on device events, which the
  // device hints above already cover.
  if (!input_.empty() && !free_txns_.empty()) {
    next = std::min(next, now + 1);
  }
  // Policy-registered work (e.g. parked RCU updates waiting for an idle
  // channel) is not visible through any device or input term.
  next = std::min(next, PolicyWake(now));
  return next;
}

bool ControllerBase::Idle() const {
  return input_.empty() && active_txns_ == 0 && deferred_hbm_.empty() &&
         deferred_mm_.empty() && (hbm_ == nullptr || hbm_->inflight() == 0) &&
         mm_->inflight() == 0;
}

void ControllerBase::SampleTelemetry(StatSet& out) const {
  out.Counter("gauge.input_queue_depth") = input_.size();
  out.Counter("gauge.active_txns") = active_txns_;
  out.Counter("gauge.deferred_device_ops") =
      deferred_hbm_.size() + deferred_mm_.size();
  const auto per_channel = [&out](const DramSystem& dev) {
    const std::string& dev_name = dev.config().name;
    for (std::uint32_t c = 0; c < dev.num_channels(); ++c) {
      const ChannelCounters& cc = dev.channel_counters(c);
      const std::string prefix =
          dev_name + ".chan" + std::to_string(c) + ".";
      out.Counter(prefix + "data_busy_cycles") = cc.data_busy_cycles;
      out.Counter(prefix + "bytes_transferred") = cc.bytes_transferred;
      out.Counter(prefix + "activates") = cc.activates;
      out.Counter(prefix + "row_hits") = cc.row_hits;
      out.Counter(prefix + "turnarounds") =
          cc.turnarounds_rw + cc.turnarounds_wr;
      out.Counter(prefix + "queue_wait_cycles") = cc.queue_wait_cycles;
    }
  };
  if (hbm_ != nullptr) per_channel(*hbm_);
  per_channel(*mm_);
}

void ControllerBase::Snapshot(ser::Writer& w) const {
  w.Section("ctrl");
  w.U64(input_.size());
  for (const Input& in : input_) {
    w.U64(in.addr);
    w.U64(in.tag);
    w.Bool(in.is_writeback);
  }
  w.U64(txns_.size());
  for (const Txn& t : txns_) {
    w.U64(t.addr);
    w.U64(t.tag);
    w.Bool(t.is_writeback);
    w.I64(t.state);
    w.U64(t.aux_addr);
    w.U32(t.aux);
    w.Bool(t.active);
  }
  w.U64Seq(free_txns_);
  auto dev_ops = [&w](const std::deque<DevOp>& q) {
    w.U64(q.size());
    for (const DevOp& op : q) {
      w.U64(op.addr);
      w.Bool(op.is_write);
      w.U32(op.bursts);
      w.U32(op.txn);
      w.U32(op.channel);
      w.U32(op.tenant);
    }
  };
  dev_ops(deferred_hbm_);
  dev_ops(deferred_mm_);
  w.U64(read_completions_.size());
  for (const ReadCompletion& c : read_completions_) {
    w.U64(c.addr);
    w.U64(c.tag);
    w.U64(c.done);
  }
  w.U64(active_txns_);
  w.U64(reads_seen_);
  w.U64(writebacks_seen_);
  if (hbm_ != nullptr) hbm_->Snapshot(w);
  mm_->Snapshot(w);
  SnapshotPolicy(w);
}

void ControllerBase::Restore(ser::Reader& r) {
  r.Section("ctrl");
  input_.clear();
  const std::size_t n_input = r.SeqLen(17);
  for (std::size_t i = 0; i < n_input; ++i) {
    Input in;
    in.addr = r.U64();
    in.tag = r.U64();
    in.is_writeback = r.Bool();
    input_.push_back(in);
  }
  if (r.SeqLen(30) != txns_.size()) {
    throw ser::SerializeError("transaction pool size mismatch");
  }
  for (Txn& t : txns_) {
    t.addr = r.U64();
    t.tag = r.U64();
    t.is_writeback = r.Bool();
    t.state = static_cast<int>(r.I64());
    t.aux_addr = r.U64();
    t.aux = r.U32();
    t.active = r.Bool();
  }
  const std::size_t n_free = r.SeqLen(8);
  free_txns_.clear();
  for (std::size_t i = 0; i < n_free; ++i) {
    free_txns_.push_back(static_cast<std::uint32_t>(r.U64()));
  }
  auto dev_ops = [&r](std::deque<DevOp>& q) {
    q.clear();
    const std::size_t n = r.SeqLen(25);
    for (std::size_t i = 0; i < n; ++i) {
      DevOp op;
      op.addr = r.U64();
      op.is_write = r.Bool();
      op.bursts = r.U32();
      op.txn = r.U32();
      op.channel = r.U32();
      op.tenant = static_cast<std::uint16_t>(r.U32());
      q.push_back(op);
    }
  };
  dev_ops(deferred_hbm_);
  dev_ops(deferred_mm_);
  read_completions_.clear();
  const std::size_t n_comp = r.SeqLen(24);
  for (std::size_t i = 0; i < n_comp; ++i) {
    ReadCompletion c;
    c.addr = r.U64();
    c.tag = r.U64();
    c.done = r.U64();
    read_completions_.push_back(c);
  }
  active_txns_ = r.U64();
  reads_seen_ = r.U64();
  writebacks_seen_ = r.U64();
  if (hbm_ != nullptr) hbm_->Restore(r);
  mm_->Restore(r);
  RestorePolicy(r);
}

void ControllerBase::ExportStats(StatSet& stats) const {
  if (hbm_ != nullptr) hbm_->ExportStats(stats);
  mm_->ExportStats(stats);
  stats.Counter("ctrl.reads") = reads_seen_;
  stats.Counter("ctrl.writebacks") = writebacks_seen_;
  ExportOwnStats(stats);
}

}  // namespace redcache
