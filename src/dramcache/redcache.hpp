// RedCache controller (the paper's contribution, §III).
//
// A fine-grained direct-mapped DRAM cache managed by:
//  * alpha counting — only blocks of pages that have proven bandwidth-hungry
//    (>= alpha average accesses per block) are ever installed; colder
//    traffic bypasses the cache straight to main memory;
//  * gamma counting — a write hitting a block whose r-count reached the
//    adaptive gamma is the block's last write: the block is invalidated and
//    the write routed to main memory, saving the HBM write, the future
//    victim writeback and a bus turnaround;
//  * the RCU manager — read-hit r-count updates are parked in a 32-entry
//    CAM+RAM and drained when they can piggyback on a same-row write, when
//    the channel idles, or when the queue fills; the RAM doubles as a tiny
//    block cache;
//  * bypass-on-refresh — requests to a rank mid-refresh go to main memory.
//
// Option flags turn individual mechanisms off to model the paper's
// Red-Alpha / Red-Gamma / Red-Basic / Red-InSitu ablation variants.
#pragma once

#include <deque>
#include <vector>

#include "core/alpha_table.hpp"
#include "core/gamma.hpp"
#include "core/rcu.hpp"
#include "dramcache/controller.hpp"
#include "dramcache/tag_store.hpp"

namespace redcache {

struct RedCacheOptions {
  bool alpha_enabled = true;
  bool gamma_enabled = true;
  enum class UpdateMode {
    kImmediate,  ///< Red-Basic: write the r-count back on every read hit
    kRcu,        ///< RedCache: park updates in the RCU manager
    kInSitu      ///< Red-InSitu: updated inside the DRAM dies, free of bus
  };
  UpdateMode update_mode = UpdateMode::kRcu;
  bool bypass_on_refresh = true;
  AlphaTable::Params alpha;
  GammaController::Params gamma;
  std::size_t rcu_entries = 32;
  /// Alpha retuning / decay epoch, in memory requests. Must sit between a
  /// hot working set's revisit interval (no decay between its passes) and a
  /// cold stream's (full decay between its passes); see alpha_table.hpp.
  std::uint64_t epoch_requests = 131072;
  /// Test-only fault injection: silently drop dirty victims at Fill instead
  /// of writing them back. Exists so negative tests can prove the
  /// ShadowChecker catches lost writes; never set outside tests/verify.
  bool testing_drop_victim_writeback = false;

  static RedCacheOptions Full() { return {}; }
  static RedCacheOptions Basic() {
    RedCacheOptions o;
    o.update_mode = UpdateMode::kImmediate;
    return o;
  }
  static RedCacheOptions InSitu() {
    RedCacheOptions o;
    o.update_mode = UpdateMode::kInSitu;
    return o;
  }
  static RedCacheOptions AlphaOnly() {
    RedCacheOptions o;
    o.gamma_enabled = false;
    o.update_mode = UpdateMode::kInSitu;  // r-counts unused without gamma
    o.bypass_on_refresh = false;
    return o;
  }
  static RedCacheOptions GammaOnly() {
    // "An in-DRAM version of gamma counting applied to the Alloy caches."
    RedCacheOptions o;
    o.alpha_enabled = false;
    o.update_mode = UpdateMode::kInSitu;
    o.bypass_on_refresh = false;
    return o;
  }
};

class RedCacheController : public ControllerBase {
 public:
  RedCacheController(MemControllerConfig cfg, RedCacheOptions options,
                     const char* display_name = "redcache");

  const char* name() const override { return display_name_; }

  const AlphaTable& alpha() const { return alpha_; }
  const GammaController& gamma() const { return gamma_; }
  const RcuManager& rcu() const { return rcu_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 protected:
  void StartTxn(Txn& txn, Cycle now) override;
  void OnDeviceComplete(Txn& txn, bool from_hbm, const DramCompletion& c,
                        Cycle now) override;
  void PolicyTick(Cycle now) override;
  Cycle PolicyWake(Cycle now) const override;
  void ExportOwnStats(StatSet& stats) const override;
  void OnColumnCommand(const IssuedColumnCommand& cmd) override;
  void SnapshotPolicy(ser::Writer& w) const override;
  void RestorePolicy(ser::Reader& r) override;

 public:
  void SampleTelemetry(StatSet& out) const override;

 private:
  void HandleProbeResult(Txn& txn, const DramCompletion& c, Cycle now);
  void RecordReadHitUpdate(Addr block, std::uint64_t set, Cycle now);
  /// `reason` is an obs::kRcuFlush* constant, recorded in the event trace.
  void FlushRcuEntries(const std::vector<RcuManager::Entry>& entries,
                       Cycle now, std::uint64_t reason);
  /// Drop the resident of `set`. `lifetime_sample` feeds the block's final
  /// r-count to gamma (true only for natural evictions — gamma's own kills
  /// are truncated lifetimes and must not be sampled).
  void InvalidateBlock(std::uint64_t set, bool lifetime_sample);
  void NoteGammaInvalidation(Addr block);
  void CheckPrematureInvalidation(Addr block);
  void Fill(Addr addr, bool dirty, Cycle now);
  void RouteToMainMemory(Txn& txn, Cycle now);
  /// Mean r-count of blocks that left the cache this epoch.
  void MaybeRetune(Cycle now);
  /// Valid lines currently resident (fills == departures + resident).
  std::uint64_t ResidentLines() const;

  RedCacheOptions opt_;
  const char* display_name_;
  DirectMappedTags tags_;
  AlphaTable alpha_;
  GammaController gamma_;
  RcuManager rcu_;

  /// Column-command matches seen during a device tick; drained in
  /// PolicyTick because enqueueing from inside the observer would mutate a
  /// channel queue mid-scheduling.
  std::vector<RcuManager::Entry> pending_rcu_flushes_;

  // Epoch feedback for alpha retuning.
  std::uint64_t epoch_request_count_ = 0;
  std::uint64_t epoch_departures_ = 0;
  std::uint64_t epoch_dead_departures_ = 0;  ///< left with r-count == 0

  /// Direct-mapped signature of blocks gamma recently invalidated; a miss
  /// landing on one is evidence the invalidation was premature.
  std::vector<Addr> recent_invalidations_;

  // Counters.
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t read_hits_ = 0;
  std::uint64_t write_hits_ = 0;
  std::uint64_t fills_ = 0;
  std::uint64_t victim_writebacks_ = 0;
  std::uint64_t departures_ = 0;  ///< valid lines dropped, any cause
  std::uint64_t alpha_bypasses_ = 0;
  std::uint64_t refresh_bypasses_ = 0;
  std::uint64_t gamma_invalidations_ = 0;
  std::uint64_t dirty_miss_bypasses_ = 0;
  std::uint64_t write_miss_bypasses_ = 0;
  std::uint64_t rcu_served_reads_ = 0;
  std::uint64_t immediate_updates_ = 0;
  std::uint64_t insitu_updates_ = 0;
};

}  // namespace redcache
