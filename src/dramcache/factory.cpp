#include "dramcache/factory.hpp"

#include <stdexcept>

#include "dramcache/alloy.hpp"
#include "dramcache/bear.hpp"
#include "dramcache/ideal.hpp"
#include "dramcache/no_hbm.hpp"
#include "dramcache/redcache.hpp"

namespace redcache {

const char* ToString(Arch arch) {
  switch (arch) {
    case Arch::kNoHbm: return "No-HBM";
    case Arch::kIdeal: return "IDEAL";
    case Arch::kAlloy: return "Alloy";
    case Arch::kBear: return "Bear";
    case Arch::kRedAlpha: return "Red-Alpha";
    case Arch::kRedGamma: return "Red-Gamma";
    case Arch::kRedBasic: return "Red-Basic";
    case Arch::kRedInSitu: return "Red-InSitu";
    case Arch::kRedCache: return "RedCache";
  }
  return "?";
}

Arch ArchFromString(const std::string& name) {
  for (Arch a : {Arch::kNoHbm, Arch::kIdeal, Arch::kAlloy, Arch::kBear,
                 Arch::kRedAlpha, Arch::kRedGamma, Arch::kRedBasic,
                 Arch::kRedInSitu, Arch::kRedCache}) {
    if (name == ToString(a)) return a;
  }
  throw std::invalid_argument("unknown architecture: " + name);
}

const std::vector<Arch>& EvaluationArchs() {
  static const std::vector<Arch> kArchs = {
      Arch::kAlloy,    Arch::kBear,      Arch::kRedAlpha,
      Arch::kRedGamma, Arch::kRedBasic,  Arch::kRedInSitu,
      Arch::kRedCache,
  };
  return kArchs;
}

std::unique_ptr<MemController> MakeController(Arch arch,
                                              const MemControllerConfig& cfg) {
  switch (arch) {
    case Arch::kNoHbm:
      return std::make_unique<NoHbmController>(cfg);
    case Arch::kIdeal:
      return std::make_unique<IdealController>(cfg);
    case Arch::kAlloy:
      return std::make_unique<AlloyController>(cfg);
    case Arch::kBear:
      return std::make_unique<BearController>(cfg);
    case Arch::kRedAlpha:
      return std::make_unique<RedCacheController>(
          cfg, RedCacheOptions::AlphaOnly(), "red-alpha");
    case Arch::kRedGamma:
      return std::make_unique<RedCacheController>(
          cfg, RedCacheOptions::GammaOnly(), "red-gamma");
    case Arch::kRedBasic:
      return std::make_unique<RedCacheController>(
          cfg, RedCacheOptions::Basic(), "red-basic");
    case Arch::kRedInSitu:
      return std::make_unique<RedCacheController>(
          cfg, RedCacheOptions::InSitu(), "red-insitu");
    case Arch::kRedCache:
      return std::make_unique<RedCacheController>(
          cfg, RedCacheOptions::Full(), "redcache");
  }
  throw std::invalid_argument("unhandled architecture");
}

}  // namespace redcache
