#include "dramcache/factory.hpp"

#include <stdexcept>

#include "dramcache/policy_registry.hpp"

namespace redcache {

const char* ToString(Arch arch) {
  switch (arch) {
    case Arch::kNoHbm: return "No-HBM";
    case Arch::kIdeal: return "IDEAL";
    case Arch::kAlloy: return "Alloy";
    case Arch::kBear: return "Bear";
    case Arch::kRedAlpha: return "Red-Alpha";
    case Arch::kRedGamma: return "Red-Gamma";
    case Arch::kRedBasic: return "Red-Basic";
    case Arch::kRedInSitu: return "Red-InSitu";
    case Arch::kRedCache: return "RedCache";
  }
  return "?";
}

Arch ArchFromString(const std::string& name) {
  for (Arch a : {Arch::kNoHbm, Arch::kIdeal, Arch::kAlloy, Arch::kBear,
                 Arch::kRedAlpha, Arch::kRedGamma, Arch::kRedBasic,
                 Arch::kRedInSitu, Arch::kRedCache}) {
    if (name == ToString(a)) return a;
  }
  throw std::invalid_argument("unknown architecture: " + name);
}

const std::vector<Arch>& EvaluationArchs() {
  static const std::vector<Arch> kArchs = {
      Arch::kAlloy,    Arch::kBear,      Arch::kRedAlpha,
      Arch::kRedGamma, Arch::kRedBasic,  Arch::kRedInSitu,
      Arch::kRedCache,
  };
  return kArchs;
}

std::unique_ptr<MemController> MakeController(Arch arch,
                                              const MemControllerConfig& cfg) {
  // Every enum arch is also a registered policy under its ToString name;
  // construction goes through the registry so both paths stay in sync.
  return MakePolicy(ToString(arch), cfg);
}

}  // namespace redcache
