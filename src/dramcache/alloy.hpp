// Alloy Cache baseline (Qureshi & Loh, MICRO'12).
//
// A direct-mapped DRAM cache that streams tag-and-data (TAD) together: one
// HBM read both checks the tag and fetches the candidate data. Misses fetch
// the line from main memory, fill it into HBM and write back a dirty
// victim. Write misses allocate (fetching the rest of the line when the
// line is wider than a block). The line width is configurable to drive the
// paper's Fig. 2(b) granularity study (64/128/256 B).
#pragma once

#include "dramcache/controller.hpp"
#include "dramcache/tag_store.hpp"

namespace redcache {

class AlloyController : public ControllerBase {
 public:
  explicit AlloyController(MemControllerConfig cfg);

  const char* name() const override { return "alloy"; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double HitRate() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
  }

 protected:
  void StartTxn(Txn& txn, Cycle now) override;
  void OnDeviceComplete(Txn& txn, bool from_hbm, const DramCompletion& c,
                        Cycle now) override;
  void ExportOwnStats(StatSet& stats) const override;
  void SnapshotPolicy(ser::Writer& w) const override;
  void RestorePolicy(ser::Reader& r) override;

  /// Install `addr`'s line into its set; evicts (and writes back) the
  /// current occupant if dirty. `dirty` marks the new line.
  void Fill(Addr addr, bool dirty, Cycle now);

  /// Valid lines currently resident (fills == evictions + resident).
  std::uint64_t ResidentLines() const;

  DirectMappedTags tags_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t read_hits_ = 0;
  std::uint64_t write_hits_ = 0;
  std::uint64_t fills_ = 0;
  std::uint64_t victim_writebacks_ = 0;
  std::uint64_t evictions_ = 0;  ///< valid lines displaced (clean or dirty)
};

}  // namespace redcache
