// Architecture registry: every system the paper evaluates, by name.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dramcache/controller.hpp"

namespace redcache {

/// The memory architectures evaluated in the paper (Figs. 2 and 9-11).
enum class Arch {
  kNoHbm,      ///< Fig. 1(a): off-chip DDR4 only
  kIdeal,      ///< Fig. 1(b): perfect HBM cache, 100% hit rate
  kAlloy,      ///< baseline: MICRO'12 Alloy cache
  kBear,       ///< baseline: ISCA'15 BEAR cache
  kRedAlpha,   ///< direct-mapped cache + alpha counting only
  kRedGamma,   ///< Alloy + in-DRAM gamma counting only
  kRedBasic,   ///< alpha + gamma, immediate r-count updates (no RCU)
  kRedInSitu,  ///< alpha + gamma, free in-DRAM updates (upper bound)
  kRedCache,   ///< the full proposal: alpha + gamma + RCU + refresh bypass
};

const char* ToString(Arch arch);
Arch ArchFromString(const std::string& name);

/// All architectures of the Fig. 9-11 comparison, in the paper's order.
const std::vector<Arch>& EvaluationArchs();

std::unique_ptr<MemController> MakeController(Arch arch,
                                              const MemControllerConfig& cfg);

}  // namespace redcache
