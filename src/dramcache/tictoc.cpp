#include "dramcache/tictoc.hpp"

#include "dramcache/policy_registry.hpp"

namespace redcache {

REDCACHE_REGISTER_POLICY(
    tictoc, {.name = "TicToc",
             .summary = "bandwidth-aware Alloy: duty-gated fills, deferred "
                        "metadata writes, last-write routing to MM",
             .family = "alloy",
             .differential = true,
             .golden = true,
             .sweep = true,
             .make = [](const MemControllerConfig& cfg) {
               return std::make_unique<TicTocController>(cfg);
             }});

namespace {
enum State {
  kProbe = 0,  ///< waiting for the TAD read (mirrors Alloy)
  kMissFetch,  ///< waiting for the main-memory line; txn.aux = install flag
};
}  // namespace

TicTocController::TicTocController(MemControllerConfig cfg)
    : AlloyController(std::move(cfg)) {}

void TicTocController::NoteRequest() {
  if (++window_requests_ < kWindow) return;
  // The side that moved more bursts this window is the pressured one: shed
  // optional HBM traffic (fills, metadata) when HBM is the bottleneck, add
  // it back when main memory is.
  if (hbm_bursts_ > mm_bursts_) {
    if (fill_duty_ > 1) {
      fill_duty_--;
      duty_drops_++;
    }
  } else {
    if (fill_duty_ < 8) {
      fill_duty_++;
      duty_raises_++;
    }
  }
  window_requests_ = 0;
  hbm_bursts_ = 0;
  mm_bursts_ = 0;
}

void TicTocController::StartTxn(Txn& txn, Cycle now) {
  NoteRequest();
  // Every request starts with the TAD probe read, exactly like Alloy.
  txn.state = kProbe;
  const std::uint64_t set = tags_.SetOf(txn.addr);
  hbm_bursts_++;
  SendHbm(TxnIndex(txn), tags_.HbmAddr(set, txn.addr), /*is_write=*/false,
          now);
}

void TicTocController::OnDeviceComplete(Txn& txn, bool /*from_hbm*/,
                                        const DramCompletion& c, Cycle now) {
  const std::uint64_t set = tags_.SetOf(txn.addr);
  switch (txn.state) {
    case kProbe: {
      const bool hit = tags_.Hit(txn.addr);
      DirectMappedTags::Line& line = tags_.line(set);
      if (hit) {
        hits_++;
        if (txn.is_writeback) {
          write_hits_++;
          if (line.r_count >= kLastWriteReuse) {
            // Predicted last write: route it to main memory and drop the
            // cached copy so the set stays clean. The MM write must be
            // reported before the invalidate — it carries the newest
            // version, making the dirty drop safe.
            last_write_routes_++;
            NotifyMmWrite(txn.addr);
            NotifyInvalidate(txn.addr);
            line.valid = false;
            line.dirty = false;
            evictions_++;
            mm_bursts_++;
            SendMm(kPostedOp, txn.addr, /*is_write=*/true, now);
          } else {
            absorbed_writes_++;
            line.dirty = true;
            NotifyCacheWrite(txn.addr);
            hbm_bursts_++;
            SendHbm(kPostedOp, tags_.HbmAddr(set, txn.addr),
                    /*is_write=*/true, now);
          }
          FreeTxn(txn);
        } else {
          read_hits_++;
          tags_.BumpRcount(set);
          // "Tic": pay the in-DRAM reuse-counter write only when the duty
          // says HBM has headroom; "toc": elide it under pressure.
          if (fill_duty_ >= 4) {
            metadata_updates_++;
            hbm_bursts_++;
            SendHbm(kPostedOp, tags_.HbmAddr(set, txn.addr),
                    /*is_write=*/true, now);
          } else {
            metadata_skips_++;
          }
          NotifyServeRead(txn, ServeSource::kCache);
          CompleteRead(txn, c.done);
          FreeTxn(txn);
        }
        return;
      }
      misses_++;
      if (txn.is_writeback) {
        // No write allocation: a clean cache means evictions stay free.
        write_bypasses_++;
        NotifyMmWrite(txn.addr);
        mm_bursts_++;
        SendMm(kPostedOp, txn.addr, /*is_write=*/true, now);
        FreeTxn(txn);
        return;
      }
      // Duty-gated fill decision, fixed at miss time so the completion
      // path needs no further cache state.
      txn.aux = (fill_seq_++ % 8) < fill_duty_ ? 1 : 0;
      txn.state = kMissFetch;
      mm_bursts_++;
      SendMm(TxnIndex(txn), txn.addr, /*is_write=*/false, now,
             tags_.line_blocks());
      return;
    }
    case kMissFetch: {
      NotifyServeRead(txn, ServeSource::kMainMemory);
      CompleteRead(txn, c.done);
      if (txn.aux != 0) {
        hbm_bursts_ += tags_.line_blocks();
        Fill(txn.addr, /*dirty=*/false, now);
      } else {
        bypassed_fills_++;
      }
      FreeTxn(txn);
      return;
    }
  }
}

void TicTocController::ExportOwnStats(StatSet& stats) const {
  AlloyController::ExportOwnStats(stats);
  stats.Counter("ctrl.bypassed_fills") = bypassed_fills_;
  stats.Counter("ctrl.last_write_routes") = last_write_routes_;
  stats.Counter("ctrl.absorbed_writes") = absorbed_writes_;
  stats.Counter("ctrl.write_bypasses") = write_bypasses_;
  stats.Counter("ctrl.metadata_updates") = metadata_updates_;
  stats.Counter("ctrl.metadata_skips") = metadata_skips_;
  stats.Counter("ctrl.fill_duty") = fill_duty_;
}

void TicTocController::SampleTelemetry(StatSet& out) const {
  ControllerBase::SampleTelemetry(out);
  out.Counter("gauge.fill_duty") = fill_duty_;
  out.Counter("gauge.resident_lines") = ResidentLines();
  out.Counter("bypassed_fills") = bypassed_fills_;
  out.Counter("last_write_routes") = last_write_routes_;
  out.Counter("metadata_skips") = metadata_skips_;
  out.Counter("duty_raises") = duty_raises_;
  out.Counter("duty_drops") = duty_drops_;
}

void TicTocController::SnapshotPolicy(ser::Writer& w) const {
  AlloyController::SnapshotPolicy(w);
  w.Section("tictoc");
  w.U64(window_requests_);
  w.U64(hbm_bursts_);
  w.U64(mm_bursts_);
  w.U32(fill_duty_);
  w.U64(fill_seq_);
  w.U64(bypassed_fills_);
  w.U64(last_write_routes_);
  w.U64(absorbed_writes_);
  w.U64(write_bypasses_);
  w.U64(metadata_updates_);
  w.U64(metadata_skips_);
  w.U64(duty_raises_);
  w.U64(duty_drops_);
}

void TicTocController::RestorePolicy(ser::Reader& r) {
  AlloyController::RestorePolicy(r);
  r.Section("tictoc");
  window_requests_ = r.U64();
  hbm_bursts_ = r.U64();
  mm_bursts_ = r.U64();
  fill_duty_ = r.U32();
  fill_seq_ = r.U64();
  bypassed_fills_ = r.U64();
  last_write_routes_ = r.U64();
  absorbed_writes_ = r.U64();
  write_bypasses_ = r.U64();
  metadata_updates_ = r.U64();
  metadata_skips_ = r.U64();
  duty_raises_ = r.U64();
  duty_drops_ = r.U64();
}

}  // namespace redcache
