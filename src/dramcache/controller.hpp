// Memory-controller interface below the L3, plus a base class with the
// shared plumbing every policy needs: input queueing, a transaction pool,
// deferred device operations with backpressure, and completion routing.
//
// Concrete policies (NoHBM, Ideal, Alloy, Bear, RedCache family) implement
// the per-transaction state machines on top.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/serialize.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "dram/dram_system.hpp"
#include "dramcache/verify_hooks.hpp"
#include "tenant/accounting.hpp"

namespace redcache {

/// Response delivered to the CPU side for a demand read.
struct ReadCompletion {
  Addr addr = 0;
  std::uint64_t tag = 0;
  Cycle done = 0;
};

struct MemControllerConfig {
  DramConfig hbm = HbmCacheConfig();
  DramConfig mainmem = MainMemoryConfig();
  bool has_hbm = true;
  std::uint32_t input_queue_cap = 64;
  std::uint32_t txn_pool_size = 256;
  /// DRAM-cache line size in 64 B blocks (1 => fine-grained; 2/4 model the
  /// Fig. 2(b) 128 B / 256 B granularity study).
  std::uint32_t line_blocks = 1;
};

/// Abstract controller the System drives.
class MemController {
 public:
  virtual ~MemController() = default;

  virtual const char* name() const = 0;
  virtual bool CanAcceptRead() const = 0;
  virtual bool CanAcceptWriteback() const = 0;
  virtual void SubmitRead(Addr addr, std::uint64_t tag, Cycle now) = 0;
  virtual void SubmitWriteback(Addr addr, Cycle now) = 0;
  /// Advance to `now` and return the controller's next wake: the earliest
  /// cycle at which a future Tick could have any effect, assuming no new
  /// input is submitted in between (a Submit* re-arms the caller's wake).
  /// Ticking earlier is harmless — wakes are lower bounds, not appointments.
  virtual Cycle Tick(Cycle now) = 0;
  virtual std::vector<ReadCompletion>& read_completions() = 0;
  /// The same wake, computed without advancing state (const query); equals
  /// the value the last Tick returned while no input arrived since.
  virtual Cycle NextEventHint(Cycle now) const = 0;
  virtual void ExportStats(StatSet& stats) const = 0;
  /// True when no transaction is in flight anywhere below the L3.
  virtual bool Idle() const = 0;

  /// Telemetry-only counters and gauges, kept separate from ExportStats so
  /// enabling the epoch sampler cannot perturb golden-stats results. Names
  /// with the "gauge." prefix are point-in-time values (queue depths, the
  /// current gamma); the rest are cumulative and get differenced per epoch.
  /// Called only when telemetry is enabled. Default: nothing.
  virtual void SampleTelemetry(StatSet& /*out*/) const {}

  /// Attach a verification sink (see verify_hooks.hpp). Policies without
  /// instrumentation may ignore it; nullptr detaches.
  virtual void SetVerifySink(VerifySink* /*sink*/) {}

  /// Attach per-tenant QoS accounting (multi-tenant mixes only; nullptr
  /// detaches). With no accounting attached — every single-tenant run —
  /// the controller's behaviour and exported stats are bit-identical to a
  /// build without the feature. Default: ignore.
  virtual void SetTenantAccounting(tenant::TenantAccounting* /*acct*/) {}

  /// The concrete policy behind any verification decorators (the System
  /// uses this to reach device geometry for the energy model).
  virtual const MemController* underlying() const { return this; }

  /// Checkpointing (common/serialize.hpp). The defaults refuse, so a
  /// controller that has not opted in — notably the ShadowChecker verify
  /// decorator, whose full shadow memory image is deliberately not
  /// serializable — fails a checkpoint request loudly instead of silently
  /// dropping state. ControllerBase implements the plumbing and gives each
  /// policy SnapshotPolicy/RestorePolicy hooks for its own state.
  virtual void Snapshot(ser::Writer& w) const {
    (void)w;
    throw ser::SerializeError(std::string("controller \"") + name() +
                              "\" does not support checkpointing");
  }
  virtual void Restore(ser::Reader& r) {
    (void)r;
    throw ser::SerializeError(std::string("controller \"") + name() +
                              "\" does not support checkpointing");
  }

  /// Switch the owned devices to fixed-latency functional timing (SMARTS
  /// fast-forward; 0 restores detailed timing). Default: ignore — only
  /// device-owning controllers have timing to approximate.
  virtual void SetFunctionalTiming(Cycle /*fixed_latency*/) {}
};

/// Shared machinery. Subclasses implement StartTxn / OnDeviceComplete.
class ControllerBase : public MemController, protected ColumnCommandObserver {
 public:
  explicit ControllerBase(const MemControllerConfig& cfg);

  bool CanAcceptRead() const override {
    return input_.size() < cfg_.input_queue_cap;
  }
  bool CanAcceptWriteback() const override {
    return input_.size() < cfg_.input_queue_cap;
  }
  void SubmitRead(Addr addr, std::uint64_t tag, Cycle now) override;
  void SubmitWriteback(Addr addr, Cycle now) override;
  Cycle Tick(Cycle now) override;
  std::vector<ReadCompletion>& read_completions() override {
    return read_completions_;
  }
  Cycle NextEventHint(Cycle now) const override;
  void ExportStats(StatSet& stats) const override;
  bool Idle() const override;
  void SetVerifySink(VerifySink* sink) override { verify_sink_ = sink; }
  void SetTenantAccounting(tenant::TenantAccounting* acct) override {
    acct_ = acct;
  }
  void SampleTelemetry(StatSet& out) const override;

  const DramSystem* hbm() const { return hbm_.get(); }
  const DramSystem* mainmem() const { return mm_.get(); }
  const MemControllerConfig& config() const { return cfg_; }

  /// Base-layer checkpointing: input queue, transaction pool (slot indices
  /// are identity — device user_tags reference them), deferred device ops,
  /// undelivered read completions, both devices, then the policy hooks.
  void Snapshot(ser::Writer& w) const override;
  void Restore(ser::Reader& r) override;

  void SetFunctionalTiming(Cycle fixed_latency) override {
    if (hbm_ != nullptr) hbm_->SetFunctionalTiming(fixed_latency);
    mm_->SetFunctionalTiming(fixed_latency);
  }

 protected:
  /// Policy-state checkpoint hooks, called after the base state. A policy
  /// whose only state is counters still implements these — the differential
  /// test (tests/sim/checkpoint_test.cpp) runs every registered policy.
  virtual void SnapshotPolicy(ser::Writer& /*w*/) const {}
  virtual void RestorePolicy(ser::Reader& /*r*/) {}

  struct Txn {
    Addr addr = 0;            ///< demand block address
    std::uint64_t tag = 0;    ///< CPU-side tag (reads only)
    bool is_writeback = false;
    int state = 0;            ///< policy-defined
    Addr aux_addr = 0;        ///< policy scratch (victim address etc.)
    std::uint32_t aux = 0;
    bool active = false;
  };

  static constexpr std::uint32_t kPostedOp = ~std::uint32_t{0};
  static constexpr Cycle kNeverWake = ~Cycle{0};

  /// Queue a device operation; issued to the device as channels free up.
  /// `txn` routes the completion back (kPostedOp = fire and forget).
  void SendHbm(std::uint32_t txn, Addr addr, bool is_write, Cycle now,
               std::uint32_t bursts = 1);
  void SendMm(std::uint32_t txn, Addr addr, bool is_write, Cycle now,
              std::uint32_t bursts = 1);

  /// Deliver the demand data to the CPU and release nothing (caller decides
  /// when the txn itself is finished via FreeTxn).
  void CompleteRead(Txn& txn, Cycle done);
  void FreeTxn(Txn& txn);

  std::uint32_t TxnIndex(const Txn& txn) const {
    return static_cast<std::uint32_t>(&txn - txns_.data());
  }

  // --- policy hooks -------------------------------------------------------
  /// Begin a new transaction (input already admitted).
  virtual void StartTxn(Txn& txn, Cycle now) = 0;
  /// A device operation belonging to `txn` completed.
  virtual void OnDeviceComplete(Txn& txn, bool from_hbm,
                                const DramCompletion& c, Cycle now) = 0;
  /// Per-tick policy work (RCU drain etc.). Default: nothing.
  virtual void PolicyTick(Cycle /*now*/) {}
  /// Wake the policy registers for PolicyTick work that is not driven by a
  /// device or input event — e.g. RCU entries parked until a channel goes
  /// idle. Folded into NextEventHint so the run loop keeps visiting while
  /// such state exists instead of polling every cycle. Default: never.
  virtual Cycle PolicyWake(Cycle /*now*/) const { return kNeverWake; }
  /// Extra counters under "ctrl.".
  virtual void ExportOwnStats(StatSet& /*stats*/) const {}
  /// Column-command observation (RedCache RCU). Default: ignore.
  void OnColumnCommand(const IssuedColumnCommand& /*cmd*/) override {}

  // --- verification event helpers (no-ops with no sink attached) ----------
  void NotifyFill(Addr block, bool dirty) {
    if (verify_sink_ != nullptr) verify_sink_->OnFill(block, dirty);
  }
  void NotifyCacheWrite(Addr block) {
    if (verify_sink_ != nullptr) verify_sink_->OnCacheWrite(block);
  }
  void NotifyMmWrite(Addr block) {
    if (verify_sink_ != nullptr) verify_sink_->OnMmWrite(block);
  }
  void NotifyVictimWriteback(Addr block) {
    if (verify_sink_ != nullptr) verify_sink_->OnVictimWriteback(block);
  }
  void NotifyInvalidate(Addr block) {
    if (verify_sink_ != nullptr) verify_sink_->OnInvalidate(block);
  }
  void NotifyServeRead(const Txn& txn, ServeSource src) {
    if (verify_sink_ != nullptr) {
      verify_sink_->OnServeRead(txn.addr, txn.tag, src);
    }
    // The serve notification is policy-independent, which makes it the one
    // reliable per-tenant hit/miss attribution point: kMainMemory is a miss,
    // everything else (cache, RCU RAM, IDEAL's "any") served on package.
    if (acct_ != nullptr) {
      acct_->OnServe(txn.addr, src != ServeSource::kMainMemory);
    }
  }

  // --- per-tenant accounting helpers --------------------------------------
  /// Scopes an "ambient" tenant for posted (fire-and-forget) device ops
  /// whose CPU-visible cause is known only to the policy — e.g. RedCache's
  /// RCU drains, where the HBM device address is a remapped set address
  /// that per-device attribution could never invert. `cpu_addr` must be a
  /// main-memory block address.
  class TenantScope {
   public:
    TenantScope(ControllerBase& c, Addr cpu_addr)
        : c_(c), prev_(c.ambient_tenant_), prev_valid_(c.ambient_valid_) {
      if (c_.acct_ != nullptr) {
        c_.ambient_tenant_ =
            static_cast<std::uint16_t>(c_.acct_->TenantOf(cpu_addr));
        c_.ambient_valid_ = true;
      }
    }
    ~TenantScope() {
      c_.ambient_tenant_ = prev_;
      c_.ambient_valid_ = prev_valid_;
    }
    TenantScope(const TenantScope&) = delete;
    TenantScope& operator=(const TenantScope&) = delete;

   private:
    ControllerBase& c_;
    std::uint16_t prev_;
    bool prev_valid_;
  };

  /// Count one RCU update drain against the tenant owning `cpu_block`.
  void CountRcuDrain(Addr cpu_block) {
    if (acct_ != nullptr) {
      acct_->OnRcuDrain(acct_->TenantOf(cpu_block));
    }
  }

  MemControllerConfig cfg_;
  std::unique_ptr<DramSystem> hbm_;  ///< null when has_hbm == false
  std::unique_ptr<DramSystem> mm_;

  // Base-level counters every policy shares.
  std::uint64_t reads_seen_ = 0;
  std::uint64_t writebacks_seen_ = 0;

  VerifySink* verify_sink_ = nullptr;
  tenant::TenantAccounting* acct_ = nullptr;

 private:
  struct Input {
    Addr addr;
    std::uint64_t tag;
    bool is_writeback;
  };
  struct DevOp {
    Addr addr;
    bool is_write;
    std::uint32_t bursts;
    std::uint32_t txn;
    std::uint32_t channel;  ///< cached mapping (avoids re-decoding per tick)
    std::uint16_t tenant;   ///< resolved at Send time
  };

  /// The tenant behind a device operation: the owning transaction's demand
  /// address when there is one, the ambient TenantScope for posted ops set
  /// up by the policy, else the device address itself (exact for main
  /// memory, whose addresses are CPU-visible).
  std::uint16_t ResolveTenant(std::uint32_t txn, Addr addr) const {
    if (txn != kPostedOp) {
      return static_cast<std::uint16_t>(acct_->TenantOf(txns_[txn].addr));
    }
    if (ambient_valid_) return ambient_tenant_;
    return static_cast<std::uint16_t>(acct_->TenantOf(addr));
  }

  bool HasFreeTxn() const { return !free_txns_.empty(); }
  Txn& AllocTxn(const Input& in);
  void PumpDeferred(Cycle now);
  void RouteCompletions(DramSystem& dev, bool from_hbm, Cycle now);

  std::deque<Input> input_;
  std::vector<Txn> txns_;
  std::vector<std::uint32_t> free_txns_;
  std::deque<DevOp> deferred_hbm_;
  std::deque<DevOp> deferred_mm_;
  std::vector<ReadCompletion> read_completions_;
  std::uint64_t active_txns_ = 0;
  std::uint16_t ambient_tenant_ = 0;
  bool ambient_valid_ = false;
};

}  // namespace redcache
