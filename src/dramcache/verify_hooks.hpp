// Verification hook points exposed by the memory controllers.
//
// The simulator carries no data payloads, so data correctness is expressed
// through *events*: every policy announces where demand data came from and
// where CPU write data went. A VerifySink (the ShadowChecker in src/verify)
// replays those events against a functional reference memory model and
// flags lost writes, stale serves and double completions at the cycle they
// happen.
//
// All events use main-memory block addresses (the CPU-visible address, not
// the remapped HBM device address). Policies that do not call the hooks
// (extensions) still get completion-level checking from the ShadowChecker;
// the semantic checks simply stay dormant.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace redcache {

/// Where a demand read's data came from.
enum class ServeSource : std::uint8_t {
  kCache,       ///< the HBM cache's resident copy
  kRcuRam,      ///< the RCU manager's block RAM (a copy of the cached block)
  kMainMemory,  ///< off-package main memory
  kAny,         ///< policy guarantees the authoritative copy (IDEAL)
};

inline const char* ToString(ServeSource src) {
  switch (src) {
    case ServeSource::kCache: return "cache";
    case ServeSource::kRcuRam: return "rcu-ram";
    case ServeSource::kMainMemory: return "main-memory";
    case ServeSource::kAny: return "any";
  }
  return "?";
}

class VerifySink {
 public:
  virtual ~VerifySink() = default;

  /// A block was installed into the DRAM cache. `dirty` fills carry CPU
  /// store data (they consume the oldest pending writeback for the block);
  /// clean fills copy the current main-memory version.
  virtual void OnFill(Addr block, bool dirty) = 0;

  /// A write hit was absorbed by the cached copy (consumes a writeback).
  virtual void OnCacheWrite(Addr block) = 0;

  /// A CPU writeback was routed to main memory (consumes a writeback).
  virtual void OnMmWrite(Addr block) = 0;

  /// A dirty victim was pushed to main memory; the block leaves the cache.
  virtual void OnVictimWriteback(Addr block) = 0;

  /// The cached copy was dropped without a writeback.
  virtual void OnInvalidate(Addr block) = 0;

  /// Demand read `tag` was served from `src`.
  virtual void OnServeRead(Addr block, std::uint64_t tag, ServeSource src) = 0;
};

}  // namespace redcache
