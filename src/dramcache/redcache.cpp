#include "dramcache/redcache.hpp"

#include <cassert>

#include "dramcache/policy_registry.hpp"
#include "obs/trace_macros.hpp"

namespace redcache {

REDCACHE_REGISTER_POLICY(
    red_alpha, {.name = "Red-Alpha",
                .summary = "direct-mapped cache + alpha admission only",
                .family = "redcache",
                .differential = false,
                .golden = false,
                .sweep = true,
                .make = [](const MemControllerConfig& cfg) {
                  return std::make_unique<RedCacheController>(
                      cfg, RedCacheOptions::AlphaOnly(), "red-alpha");
                }});

REDCACHE_REGISTER_POLICY(
    red_gamma, {.name = "Red-Gamma",
                .summary = "Alloy + in-DRAM gamma last-write counting only",
                .family = "redcache",
                .differential = false,
                .golden = false,
                .sweep = true,
                .make = [](const MemControllerConfig& cfg) {
                  return std::make_unique<RedCacheController>(
                      cfg, RedCacheOptions::GammaOnly(), "red-gamma");
                }});

REDCACHE_REGISTER_POLICY(
    red_basic, {.name = "Red-Basic",
                .summary = "alpha + gamma with immediate r-count updates "
                           "(no RCU)",
                .family = "redcache",
                .differential = true,
                .golden = false,
                .sweep = true,
                .make = [](const MemControllerConfig& cfg) {
                  return std::make_unique<RedCacheController>(
                      cfg, RedCacheOptions::Basic(), "red-basic");
                }});

REDCACHE_REGISTER_POLICY(
    red_insitu, {.name = "Red-InSitu",
                 .summary = "alpha + gamma with free in-DRAM updates "
                            "(upper bound)",
                 .family = "redcache",
                 .differential = false,
                 .golden = false,
                 .sweep = true,
                 .make = [](const MemControllerConfig& cfg) {
                   return std::make_unique<RedCacheController>(
                       cfg, RedCacheOptions::InSitu(), "red-insitu");
                 }});

REDCACHE_REGISTER_POLICY(
    redcache_full, {.name = "RedCache",
                    .summary = "full proposal: alpha + gamma + RCU + "
                               "bypass-on-refresh",
                    .family = "redcache",
                    .differential = true,
                    .golden = true,
                    .sweep = true,
                    .make = [](const MemControllerConfig& cfg) {
                      return std::make_unique<RedCacheController>(
                          cfg, RedCacheOptions::Full(), "redcache");
                    }});

namespace {
/// Policy-decision trace event (policy device renders on one track).
obs::TraceEvent PolicyEvent(Cycle now, obs::TraceEventType type, Addr addr,
                            std::uint64_t arg = 0) {
  return obs::TraceEvent{.cycle = now,
                         .type = type,
                         .device = obs::kTraceDevicePolicy,
                         .addr = addr,
                         .arg = arg};
}
}  // namespace

namespace {
enum State {
  kProbe = 0,    ///< waiting for the TAD probe read
  kMissFetch,    ///< waiting for main memory after a probe miss
  kDirectFetch,  ///< bypassed read served by main memory
};

/// Latency of a read served out of the RCU data RAM (SRAM on the
/// controller die; a handful of CPU cycles).
constexpr Cycle kRcuServeLatency = 6;
}  // namespace

RedCacheController::RedCacheController(MemControllerConfig cfg,
                                       RedCacheOptions options,
                                       const char* display_name)
    : ControllerBase((cfg.has_hbm = true, cfg)),
      opt_(options),
      display_name_(display_name),
      tags_(cfg.hbm.geometry.capacity_bytes, /*line_blocks=*/1),
      alpha_(options.alpha),
      gamma_(options.gamma),
      rcu_(options.rcu_entries),
      recent_invalidations_(16384, ~Addr{0}) {
  assert(cfg.line_blocks == 1 && "RedCache is a fine-grained (64 B) cache");
}

void RedCacheController::NoteGammaInvalidation(Addr block) {
  recent_invalidations_[BlockIndex(block) % recent_invalidations_.size()] =
      block;
}

void RedCacheController::CheckPrematureInvalidation(Addr block) {
  Addr& slot =
      recent_invalidations_[BlockIndex(block) % recent_invalidations_.size()];
  if (slot == block) {
    slot = ~Addr{0};
    gamma_.OnPrematureInvalidation();
  }
}

void RedCacheController::InvalidateBlock(std::uint64_t set,
                                         bool lifetime_sample) {
  DirectMappedTags::Line& line = tags_.line(set);
  if (!line.write_filled) {
    // Alpha's feedback judges demand admissions only; trailing write fills
    // would otherwise dominate the dead-fill statistic and push alpha up.
    epoch_departures_++;
    if (line.r_count == 0) epoch_dead_departures_++;
  }
  if (lifetime_sample && opt_.gamma_enabled && line.r_count > 0) {
    gamma_.OnLifetimeSample(line.r_count);
  }
  departures_++;
  line.valid = false;
  line.dirty = false;
}

void RedCacheController::Fill(Addr addr, bool dirty, Cycle now) {
  const std::uint64_t set = tags_.SetOf(addr);
  DirectMappedTags::Line& line = tags_.line(set);
  if (line.valid) {
    rcu_.Remove(tags_.VictimAddr(set));
    if (line.dirty && !opt_.testing_drop_victim_writeback) {
      // Victim data came back with the probe read; push it off-package.
      NotifyVictimWriteback(tags_.VictimAddr(set));
      REDCACHE_TRACE_EVENT(PolicyEvent(
          now, obs::TraceEventType::kVictimWriteback, tags_.VictimAddr(set)));
      SendMm(kPostedOp, tags_.VictimAddr(set), /*is_write=*/true, now);
      victim_writebacks_++;
    } else {
      NotifyInvalidate(tags_.VictimAddr(set));
    }
    InvalidateBlock(set, /*lifetime_sample=*/true);
  }
  NotifyFill(addr, dirty);
  line.valid = true;
  line.dirty = dirty;
  line.write_filled = dirty;  // fills carrying store data arrive dirty
  line.tag = tags_.TagOf(addr);
  line.r_count = 0;
  SendHbm(kPostedOp, tags_.HbmAddr(set, addr), /*is_write=*/true, now);
  fills_++;
  REDCACHE_TRACE_EVENT(
      PolicyEvent(now, obs::TraceEventType::kFill, addr, dirty ? 1 : 0));
}

void RedCacheController::RouteToMainMemory(Txn& txn, Cycle now) {
  if (txn.is_writeback) {
    NotifyMmWrite(txn.addr);
    SendMm(kPostedOp, txn.addr, /*is_write=*/true, now);
    FreeTxn(txn);
    return;
  }
  txn.state = kDirectFetch;
  SendMm(TxnIndex(txn), txn.addr, /*is_write=*/false, now);
}

void RedCacheController::StartTxn(Txn& txn, Cycle now) {
  epoch_request_count_++;
  MaybeRetune(now);

  // --- Alpha counting: cold pages never touch the HBM cache. -------------
  if (opt_.alpha_enabled && !alpha_.OnRequest(txn.addr)) {
    // A copy installed while the page was still hot must not go stale.
    // Presence comes from the controller-side tag mirror, like the refresh
    // bypass below.
    const std::uint64_t cold_set = tags_.SetOf(txn.addr);
    const DirectMappedTags::Line& cold_line = tags_.line(cold_set);
    const bool present =
        cold_line.valid && cold_line.tag == tags_.TagOf(txn.addr);
    if (txn.is_writeback && present) {
      // Main memory receives the newest data; the cached copy is stale now.
      rcu_.Remove(txn.addr);
      NotifyMmWrite(txn.addr);
      InvalidateBlock(cold_set, /*lifetime_sample=*/false);
      NotifyInvalidate(txn.addr);
      alpha_bypasses_++;
      REDCACHE_TRACE_EVENT(PolicyEvent(
          now, obs::TraceEventType::kAlphaBypass, txn.addr, alpha_.alpha()));
      SendMm(kPostedOp, txn.addr, /*is_write=*/true, now);
      FreeTxn(txn);
      return;
    }
    if (txn.is_writeback || !present || !cold_line.dirty) {
      alpha_bypasses_++;
      REDCACHE_TRACE_EVENT(PolicyEvent(
          now, obs::TraceEventType::kAlphaBypass, txn.addr, alpha_.alpha()));
      RouteToMainMemory(txn, now);
      return;
    }
    // Dirty resident copy: only the cache has the newest data — serve it
    // through the normal probe path despite the cold page.
  }

  const std::uint64_t set = tags_.SetOf(txn.addr);

  // --- RCU block cache: recently read blocks are still on the die. -------
  if (opt_.update_mode == RedCacheOptions::UpdateMode::kRcu &&
      !txn.is_writeback && rcu_.Contains(txn.addr)) {
    rcu_served_reads_++;
    hits_++;
    read_hits_++;
    const std::uint32_t r = tags_.BumpRcount(set);
    if (opt_.gamma_enabled) gamma_.OnHit(r);
    rcu_.Insert(txn.addr, hbm_->mapper().Map(tags_.HbmAddr(set, txn.addr)));
    NotifyServeRead(txn, ServeSource::kRcuRam);
    REDCACHE_TRACE_EVENT(
        PolicyEvent(now, obs::TraceEventType::kRcuServe, txn.addr, r));
    CompleteRead(txn, now + kRcuServeLatency);
    FreeTxn(txn);
    return;
  }

  // --- Bypass-on-refresh: don't queue behind a refreshing rank (only
  // worthwhile while the off-chip channel has headroom). ------------------
  if (opt_.bypass_on_refresh &&
      hbm_->Refreshing(tags_.HbmAddr(set, txn.addr), now) &&
      mm_->ChannelCanAccept(mm_->ChannelOf(txn.addr))) {
    const DirectMappedTags::Line& line = tags_.line(set);
    const bool present = line.valid && line.tag == tags_.TagOf(txn.addr);
    if (txn.is_writeback) {
      // Main memory receives the newest data; any cached copy is stale now.
      NotifyMmWrite(txn.addr);
      if (present) {
        rcu_.Remove(txn.addr);
        InvalidateBlock(set, /*lifetime_sample=*/false);
        NotifyInvalidate(txn.addr);
      }
      refresh_bypasses_++;
      REDCACHE_TRACE_EVENT(
          PolicyEvent(now, obs::TraceEventType::kRefreshBypass, txn.addr));
      SendMm(kPostedOp, txn.addr, /*is_write=*/true, now);
      FreeTxn(txn);
      return;
    }
    if (!present || !line.dirty) {
      // Clean or absent: the main-memory copy is current.
      refresh_bypasses_++;
      REDCACHE_TRACE_EVENT(
          PolicyEvent(now, obs::TraceEventType::kRefreshBypass, txn.addr));
      txn.state = kDirectFetch;
      SendMm(TxnIndex(txn), txn.addr, /*is_write=*/false, now);
      return;
    }
    // Dirty read hit: only the HBM copy is valid — fall through and wait.
  }

  txn.state = kProbe;
  SendHbm(TxnIndex(txn), tags_.HbmAddr(set, txn.addr), /*is_write=*/false,
          now);
}

void RedCacheController::RecordReadHitUpdate(Addr block, std::uint64_t set,
                                             Cycle now) {
  switch (opt_.update_mode) {
    case RedCacheOptions::UpdateMode::kInSitu:
      insitu_updates_++;
      return;
    case RedCacheOptions::UpdateMode::kImmediate:
      immediate_updates_++;
      SendHbm(kPostedOp, tags_.HbmAddr(set, block), /*is_write=*/true, now);
      return;
    case RedCacheOptions::UpdateMode::kRcu: {
      const auto evicted = rcu_.Insert(
          block, hbm_->mapper().Map(tags_.HbmAddr(set, block)));
      FlushRcuEntries(evicted, now, obs::kRcuFlushCapacity);
      return;
    }
  }
}

void RedCacheController::FlushRcuEntries(
    const std::vector<RcuManager::Entry>& entries, Cycle now,
    std::uint64_t reason) {
  for (const RcuManager::Entry& e : entries) {
    const std::uint64_t set = tags_.SetOf(e.block);
    REDCACHE_TRACE_EVENT(
        PolicyEvent(now, obs::TraceEventType::kRcuFlush, e.block, reason));
    // The drain write targets a remapped set address; only `e.block` (the
    // CPU-visible block) identifies the tenant whose update is draining.
    TenantScope scope(*this, e.block);
    CountRcuDrain(e.block);
    SendHbm(kPostedOp, tags_.HbmAddr(set, e.block), /*is_write=*/true, now);
  }
}

void RedCacheController::HandleProbeResult(Txn& txn, const DramCompletion& c,
                                           Cycle now) {
  const std::uint64_t set = tags_.SetOf(txn.addr);
  DirectMappedTags::Line& line = tags_.line(set);
  const bool hit = tags_.Hit(txn.addr);

  if (hit) {
    hits_++;
    const std::uint32_t r = tags_.BumpRcount(set);
    if (opt_.gamma_enabled) gamma_.OnHit(r);

    if (txn.is_writeback) {
      write_hits_++;
      if (opt_.gamma_enabled && gamma_.IsLastWrite(r)) {
        // Last write: invalidate and route the data off-package directly,
        // saving the HBM write, the future victim writeback and a bus
        // turnaround.
        gamma_invalidations_++;
        REDCACHE_TRACE_EVENT(PolicyEvent(
            now, obs::TraceEventType::kGammaInvalidate, txn.addr, r));
        rcu_.Remove(txn.addr);
        NotifyMmWrite(txn.addr);
        InvalidateBlock(set, /*lifetime_sample=*/false);
        NotifyInvalidate(txn.addr);
        NoteGammaInvalidation(txn.addr);
        SendMm(kPostedOp, txn.addr, /*is_write=*/true, now);
      } else {
        line.dirty = true;
        // A parked r-count update (and its RAM block copy) is superseded by
        // the write: drop it, or the RCU block cache would serve pre-write
        // data to the next read. The refreshed r-count rides inside the
        // data write's tag/ECC bits.
        rcu_.Remove(txn.addr);
        NotifyCacheWrite(txn.addr);
        SendHbm(kPostedOp, tags_.HbmAddr(set, txn.addr), /*is_write=*/true,
                now);
      }
      FreeTxn(txn);
      return;
    }

    read_hits_++;
    NotifyServeRead(txn, ServeSource::kCache);
    CompleteRead(txn, c.done);
    RecordReadHitUpdate(txn.addr, set, now);
    FreeTxn(txn);
    return;
  }

  misses_++;
  if (opt_.gamma_enabled) CheckPrematureInvalidation(txn.addr);
  if (txn.is_writeback) {
    if (line.valid && line.dirty) {
      // Fig. 7: miss with a dirty resident — send the write to main memory
      // directly; no fill, no victim round trip.
      dirty_miss_bypasses_++;
      write_miss_bypasses_++;
      NotifyMmWrite(txn.addr);
      SendMm(kPostedOp, txn.addr, /*is_write=*/true, now);
    } else {
      Fill(txn.addr, /*dirty=*/true, now);
    }
    FreeTxn(txn);
    return;
  }
  txn.state = kMissFetch;
  SendMm(TxnIndex(txn), txn.addr, /*is_write=*/false, now);
}

void RedCacheController::OnDeviceComplete(Txn& txn, bool /*from_hbm*/,
                                          const DramCompletion& c, Cycle now) {
  switch (txn.state) {
    case kProbe:
      HandleProbeResult(txn, c, now);
      return;
    case kMissFetch:
      NotifyServeRead(txn, ServeSource::kMainMemory);
      CompleteRead(txn, c.done);
      Fill(txn.addr, /*dirty=*/false, now);
      FreeTxn(txn);
      return;
    case kDirectFetch:
      NotifyServeRead(txn, ServeSource::kMainMemory);
      CompleteRead(txn, c.done);
      FreeTxn(txn);
      return;
  }
}

void RedCacheController::OnColumnCommand(const IssuedColumnCommand& cmd) {
  if (opt_.update_mode != RedCacheOptions::UpdateMode::kRcu || !cmd.is_write) {
    return;
  }
  // Condition 1: a data write to this (channel, rank, bank, row) just
  // issued; parked updates for the same row can piggyback at tCCD cost.
  auto matches = rcu_.MatchIndex(cmd.loc);
  pending_rcu_flushes_.insert(pending_rcu_flushes_.end(), matches.begin(),
                              matches.end());
}

void RedCacheController::PolicyTick(Cycle now) {
  if (opt_.update_mode != RedCacheOptions::UpdateMode::kRcu) return;
  if (!pending_rcu_flushes_.empty()) {
    FlushRcuEntries(pending_rcu_flushes_, now, obs::kRcuFlushMerged);
    pending_rcu_flushes_.clear();
  }
  // Condition 2: drain parked updates into idle channels.
  if (rcu_.size() != 0) {
    for (std::uint32_t ch = 0; ch < hbm_->num_channels(); ++ch) {
      if (hbm_->ChannelTransactionQueueEmpty(ch)) {
        FlushRcuEntries(rcu_.PopChannel(ch), now, obs::kRcuFlushIdle);
      }
    }
  }
}

Cycle RedCacheController::PolicyWake(Cycle now) const {
  if (opt_.update_mode != RedCacheOptions::UpdateMode::kRcu) {
    return kNeverWake;
  }
  // Updates parked after this tick's drain (RCU-served reads insert during
  // admission) can flush on the very next cycle if a channel is idle; keep
  // the run loop visiting while that condition holds. Merged flushes
  // (pending_rcu_flushes_) never persist across ticks — the observer fills
  // them during the device tick and PolicyTick drains them — but guard them
  // anyway so a future reordering cannot silently strand one.
  if (!pending_rcu_flushes_.empty()) return now + 1;
  if (rcu_.size() != 0) {
    for (std::uint32_t ch = 0; ch < hbm_->num_channels(); ++ch) {
      if (hbm_->ChannelTransactionQueueEmpty(ch)) return now + 1;
    }
  }
  return kNeverWake;
}

std::uint64_t RedCacheController::ResidentLines() const {
  std::uint64_t resident = 0;
  for (std::uint64_t s = 0; s < tags_.num_sets(); ++s) {
    resident += tags_.line(s).valid ? 1 : 0;
  }
  return resident;
}

void RedCacheController::MaybeRetune(Cycle now) {
  if (epoch_request_count_ < opt_.epoch_requests) return;
  epoch_request_count_ = 0;
  alpha_.AdvanceEpoch();
  if (opt_.alpha_enabled && epoch_departures_ > 0) {
    const double dead_fraction =
        static_cast<double>(epoch_dead_departures_) /
        static_cast<double>(epoch_departures_);
    alpha_.Retune(dead_fraction);
    REDCACHE_TRACE_EVENT(PolicyEvent(now, obs::TraceEventType::kRetune,
                                     /*addr=*/0, alpha_.alpha()));
  }
  epoch_departures_ = 0;
  epoch_dead_departures_ = 0;
}

void RedCacheController::SampleTelemetry(StatSet& out) const {
  ControllerBase::SampleTelemetry(out);
  out.Counter("gauge.gamma") = gamma_.gamma();
  out.Counter("gauge.alpha") = alpha_.alpha();
  out.Counter("gauge.alpha_pages_hot") = alpha_.pages_hot();
  out.Counter("gauge.alpha_pages_tracked") = alpha_.pages_tracked();
  out.Counter("gauge.rcu_depth") = rcu_.size();
  out.Counter("gauge.resident_lines") = ResidentLines();
}

void RedCacheController::ExportOwnStats(StatSet& stats) const {
  stats.Counter("ctrl.cache_hits") = hits_;
  stats.Counter("ctrl.cache_misses") = misses_;
  stats.Counter("ctrl.read_hits") = read_hits_;
  stats.Counter("ctrl.write_hits") = write_hits_;
  stats.Counter("ctrl.fills") = fills_;
  stats.Counter("ctrl.victim_writebacks") = victim_writebacks_;
  stats.Counter("ctrl.evictions") = departures_;
  stats.Counter("ctrl.resident_lines") = ResidentLines();
  stats.Counter("ctrl.alpha_bypasses") = alpha_bypasses_;
  stats.Counter("ctrl.refresh_bypasses") = refresh_bypasses_;
  stats.Counter("ctrl.gamma_invalidations") = gamma_invalidations_;
  stats.Counter("ctrl.dirty_miss_bypasses") = dirty_miss_bypasses_;
  stats.Counter("ctrl.write_miss_bypasses") = write_miss_bypasses_;
  stats.Counter("ctrl.rcu_served_reads") = rcu_served_reads_;
  stats.Counter("ctrl.immediate_updates") = immediate_updates_;
  stats.Counter("ctrl.insitu_updates") = insitu_updates_;
  stats.Counter("ctrl.alpha_lookups") = alpha_.lookups();
  stats.Counter("ctrl.alpha_buffer_misses") = alpha_.buffer_misses();
  stats.Counter("ctrl.alpha_value") = alpha_.alpha();
  stats.Counter("ctrl.alpha_pages_hot") = alpha_.pages_hot();
  stats.Counter("ctrl.alpha_pages_tracked") = alpha_.pages_tracked();
  stats.Counter("ctrl.gamma_value") = gamma_.gamma();
  stats.Counter("ctrl.gamma_updates") = gamma_.updates();
  stats.Counter("ctrl.gamma_premature") = gamma_.premature_invalidations();
  stats.Counter("ctrl.rcu_inserts") = rcu_.inserts();
  stats.Counter("ctrl.rcu_searches") = rcu_.searches();
  stats.Counter("ctrl.rcu_block_hits") = rcu_.block_hits();
  stats.Counter("ctrl.rcu_merged_flushes") = rcu_.merged_flushes();
  stats.Counter("ctrl.rcu_idle_flushes") = rcu_.idle_flushes();
  stats.Counter("ctrl.rcu_capacity_flushes") = rcu_.capacity_flushes();
  stats.Counter("ctrl.rcu_data_accesses") =
      rcu_.inserts() + rcu_.block_hits() + rcu_.merged_flushes() +
      rcu_.idle_flushes() + rcu_.capacity_flushes();
}

void RedCacheController::SnapshotPolicy(ser::Writer& w) const {
  w.Section("redc");
  tags_.Snapshot(w);
  alpha_.Snapshot(w);
  gamma_.Snapshot(w);
  rcu_.Snapshot(w);
  w.U64(pending_rcu_flushes_.size());
  for (const RcuManager::Entry& e : pending_rcu_flushes_) {
    RcuManager::SnapshotEntry(w, e);
  }
  w.U64(epoch_request_count_);
  w.U64(epoch_departures_);
  w.U64(epoch_dead_departures_);
  w.U64Seq(recent_invalidations_);
  w.U64(hits_);
  w.U64(misses_);
  w.U64(read_hits_);
  w.U64(write_hits_);
  w.U64(fills_);
  w.U64(victim_writebacks_);
  w.U64(departures_);
  w.U64(alpha_bypasses_);
  w.U64(refresh_bypasses_);
  w.U64(gamma_invalidations_);
  w.U64(dirty_miss_bypasses_);
  w.U64(write_miss_bypasses_);
  w.U64(rcu_served_reads_);
  w.U64(immediate_updates_);
  w.U64(insitu_updates_);
}

void RedCacheController::RestorePolicy(ser::Reader& r) {
  r.Section("redc");
  tags_.Restore(r);
  alpha_.Restore(r);
  gamma_.Restore(r);
  rcu_.Restore(r);
  pending_rcu_flushes_.clear();
  const std::size_t n = r.SeqLen(32);
  for (std::size_t i = 0; i < n; ++i) {
    pending_rcu_flushes_.push_back(RcuManager::RestoreEntry(r));
  }
  epoch_request_count_ = r.U64();
  epoch_departures_ = r.U64();
  epoch_dead_departures_ = r.U64();
  if (r.SeqLen(8) != recent_invalidations_.size()) {
    throw ser::SerializeError("invalidation signature size mismatch");
  }
  for (Addr& a : recent_invalidations_) a = r.U64();
  hits_ = r.U64();
  misses_ = r.U64();
  read_hits_ = r.U64();
  write_hits_ = r.U64();
  fills_ = r.U64();
  victim_writebacks_ = r.U64();
  departures_ = r.U64();
  alpha_bypasses_ = r.U64();
  refresh_bypasses_ = r.U64();
  gamma_invalidations_ = r.U64();
  dirty_miss_bypasses_ = r.U64();
  write_miss_bypasses_ = r.U64();
  rcu_served_reads_ = r.U64();
  immediate_updates_ = r.U64();
  insitu_updates_ = r.U64();
}

}  // namespace redcache
