// No-HBM baseline (Fig. 1a): every request is served by off-chip DDR4.
#pragma once

#include "dramcache/controller.hpp"

namespace redcache {

class NoHbmController : public ControllerBase {
 public:
  explicit NoHbmController(MemControllerConfig cfg);

  const char* name() const override { return "no-hbm"; }

 protected:
  void StartTxn(Txn& txn, Cycle now) override;
  void OnDeviceComplete(Txn& txn, bool from_hbm, const DramCompletion& c,
                        Cycle now) override;
};

}  // namespace redcache
