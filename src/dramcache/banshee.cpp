#include "dramcache/banshee.hpp"

#include <bit>
#include <cassert>

#include "dramcache/policy_registry.hpp"

namespace redcache {

REDCACHE_REGISTER_POLICY(
    banshee, {.name = "Banshee",
              .summary = "frequency-gated page cache: SRAM tags, footprint "
                         "bitmaps, challenger-based replacement",
              .family = "page",
              .differential = true,
              .golden = true,
              .sweep = true,
              .make = [](const MemControllerConfig& cfg) {
                return std::make_unique<BansheeController>(cfg);
              }});

namespace {
enum State {
  kHitRead = 0,   ///< block resident; data read in flight from HBM
  kFetchInstall,  ///< MM fetch in flight; install the block on completion
  kFetchBypass,   ///< MM fetch in flight; no slot, serve only
};

/// Requests between deterministic frequency-decay sweeps.
constexpr std::uint64_t kDecayPeriod = 8192;
}  // namespace

BansheeController::BansheeController(MemControllerConfig cfg,
                                     std::uint64_t page_bytes)
    : ControllerBase((cfg.has_hbm = true, cfg)),
      page_bytes_(page_bytes),
      blocks_per_page_(static_cast<std::uint32_t>(page_bytes / kBlockBytes)),
      sets_(cfg.hbm.geometry.capacity_bytes / page_bytes),
      pages_(sets_),
      challengers_(sets_),
      pins_(sets_, 0) {
  assert(blocks_per_page_ >= 1 && blocks_per_page_ <= 64);
  assert(sets_ >= 1);
}

bool BansheeController::ChallengerWins(std::uint64_t set, Addr addr) {
  Challenger& ch = challengers_[set];
  const std::uint64_t tag = TagOf(addr);
  if (ch.count == 0 || ch.tag == tag) {
    // Claim an empty slot or reinforce the incumbent challenger.
    ch.tag = tag;
    if (ch.count != 0xff) ++ch.count;
  } else {
    // CLOCK-style decay: a competing page weakens the current challenger.
    --ch.count;
    return false;
  }
  const PageEntry& resident = pages_[set];
  if (!resident.valid) return true;  // cold set: install immediately
  return ch.count > resident.freq;
}

void BansheeController::ReplacePage(std::uint64_t set, Addr addr, Cycle now) {
  PageEntry& e = pages_[set];
  if (e.valid) {
    page_replacements_++;
    for (std::uint32_t b = 0; b < blocks_per_page_; ++b) {
      const std::uint64_t bit = std::uint64_t{1} << b;
      if (!(e.present & bit)) continue;
      const Addr victim = PageAddr(e, set) + Addr{b} * kBlockBytes;
      if (e.dirty & bit) {
        // Stream the dirty block out of HBM and write it off-package.
        NotifyVictimWriteback(victim);
        SendHbm(kPostedOp, HbmAddr(set, b), /*is_write=*/false, now);
        SendMm(kPostedOp, victim, /*is_write=*/true, now);
        victim_writebacks_++;
      } else {
        NotifyInvalidate(victim);
      }
      evictions_++;
    }
  }
  e.valid = true;
  e.tag = TagOf(addr);
  e.present = 0;
  e.dirty = 0;
  // The winning challenger's evidence seeds the new resident's frequency.
  e.freq = challengers_[set].count;
  challengers_[set] = Challenger{};
}

void BansheeController::DecayFrequencies() {
  for (PageEntry& e : pages_) e.freq >>= 1;
  for (Challenger& ch : challengers_) ch.count >>= 1;
}

void BansheeController::StartTxn(Txn& txn, Cycle now) {
  if (++requests_since_decay_ >= kDecayPeriod) {
    requests_since_decay_ = 0;
    DecayFrequencies();
  }

  const std::uint64_t set = SetOf(txn.addr);
  const std::uint32_t block = BlockOf(txn.addr);
  const std::uint64_t bit = std::uint64_t{1} << block;
  PageEntry& e = pages_[set];
  const bool page_hit = e.valid && e.tag == TagOf(txn.addr);

  if (txn.is_writeback) {
    // SRAM tags: no probe traffic, the decision is immediate. Writes never
    // allocate a page and never feed the frequency gate.
    if (page_hit) {
      if (e.present & bit) {
        write_hits_++;
        NotifyCacheWrite(txn.addr);
      } else {
        misses_++;
        fills_++;
        NotifyFill(txn.addr, /*dirty=*/true);
        e.present |= bit;
      }
      e.dirty |= bit;
      SendHbm(kPostedOp, HbmAddr(set, block), /*is_write=*/true, now);
    } else {
      misses_++;
      write_bypasses_++;
      NotifyMmWrite(txn.addr);
      SendMm(kPostedOp, txn.addr, /*is_write=*/true, now);
    }
    FreeTxn(txn);
    return;
  }

  if (page_hit) {
    BumpFreq(e);
    if (e.present & bit) {
      read_hits_++;
      txn.state = kHitRead;
      pins_[set]++;
      SendHbm(TxnIndex(txn), HbmAddr(set, block), /*is_write=*/false, now);
      return;
    }
    // Footprint miss: fetch just this block and widen the page's footprint.
    misses_++;
    txn.state = kFetchInstall;
    pins_[set]++;
    SendMm(TxnIndex(txn), txn.addr, /*is_write=*/false, now);
    return;
  }

  // Page miss: consult the frequency gate before displacing the resident.
  misses_++;
  if (ChallengerWins(set, txn.addr)) {
    if (pins_[set] == 0) {
      ReplacePage(set, txn.addr, now);
      txn.state = kFetchInstall;
      pins_[set]++;
      SendMm(TxnIndex(txn), txn.addr, /*is_write=*/false, now);
      return;
    }
    replacements_blocked_++;
  }
  read_bypasses_++;
  txn.state = kFetchBypass;
  SendMm(TxnIndex(txn), txn.addr, /*is_write=*/false, now);
}

void BansheeController::OnDeviceComplete(Txn& txn, bool /*from_hbm*/,
                                         const DramCompletion& c, Cycle now) {
  const std::uint64_t set = SetOf(txn.addr);
  switch (txn.state) {
    case kHitRead: {
      NotifyServeRead(txn, ServeSource::kCache);
      CompleteRead(txn, c.done);
      assert(pins_[set] > 0);
      pins_[set]--;
      FreeTxn(txn);
      return;
    }
    case kFetchInstall: {
      NotifyServeRead(txn, ServeSource::kMainMemory);
      CompleteRead(txn, c.done);
      PageEntry& e = pages_[set];
      // The pin guarantees the page is still ours; the block may have been
      // installed meanwhile by a CPU writeback (then the fetch is wasted).
      assert(e.valid && e.tag == TagOf(txn.addr));
      const std::uint64_t bit = std::uint64_t{1} << BlockOf(txn.addr);
      if (e.present & bit) {
        install_races_++;
      } else {
        fills_++;
        NotifyFill(txn.addr, /*dirty=*/false);
        e.present |= bit;
        SendHbm(kPostedOp, HbmAddr(set, BlockOf(txn.addr)), /*is_write=*/true,
                now);
      }
      assert(pins_[set] > 0);
      pins_[set]--;
      FreeTxn(txn);
      return;
    }
    case kFetchBypass: {
      NotifyServeRead(txn, ServeSource::kMainMemory);
      CompleteRead(txn, c.done);
      FreeTxn(txn);
      return;
    }
  }
}

std::uint64_t BansheeController::ResidentBlocks() const {
  std::uint64_t resident = 0;
  for (const PageEntry& e : pages_) resident += std::popcount(e.present);
  return resident;
}

void BansheeController::ExportOwnStats(StatSet& stats) const {
  stats.Counter("ctrl.cache_hits") = read_hits_ + write_hits_;
  stats.Counter("ctrl.cache_misses") = misses_;
  stats.Counter("ctrl.read_hits") = read_hits_;
  stats.Counter("ctrl.write_hits") = write_hits_;
  stats.Counter("ctrl.fills") = fills_;
  stats.Counter("ctrl.victim_writebacks") = victim_writebacks_;
  stats.Counter("ctrl.evictions") = evictions_;
  stats.Counter("ctrl.resident_lines") = ResidentBlocks();
  stats.Counter("ctrl.page_replacements") = page_replacements_;
  stats.Counter("ctrl.replacements_blocked") = replacements_blocked_;
  stats.Counter("ctrl.read_bypasses") = read_bypasses_;
  stats.Counter("ctrl.write_bypasses") = write_bypasses_;
  stats.Counter("ctrl.install_races") = install_races_;
}

void BansheeController::SampleTelemetry(StatSet& out) const {
  ControllerBase::SampleTelemetry(out);
  out.Counter("gauge.resident_blocks") = ResidentBlocks();
  std::uint64_t valid_pages = 0;
  std::uint64_t freq_sum = 0;
  for (const PageEntry& e : pages_) {
    valid_pages += e.valid ? 1 : 0;
    freq_sum += e.freq;
  }
  out.Counter("gauge.valid_pages") = valid_pages;
  out.Counter("gauge.freq_sum") = freq_sum;
  out.Counter("page_replacements") = page_replacements_;
  out.Counter("read_bypasses") = read_bypasses_;
}

void BansheeController::SnapshotPolicy(ser::Writer& w) const {
  w.Section("banshee");
  w.U64(pages_.size());
  for (const PageEntry& e : pages_) {
    w.U64(e.tag);
    w.U64(e.present);
    w.U64(e.dirty);
    w.U8(e.freq);
    w.Bool(e.valid);
  }
  w.U64(challengers_.size());
  for (const Challenger& c : challengers_) {
    w.U64(c.tag);
    w.U8(c.count);
  }
  w.U64Seq(pins_);
  w.U64(requests_since_decay_);
  w.U64(read_hits_);
  w.U64(write_hits_);
  w.U64(misses_);
  w.U64(fills_);
  w.U64(evictions_);
  w.U64(victim_writebacks_);
  w.U64(page_replacements_);
  w.U64(replacements_blocked_);
  w.U64(read_bypasses_);
  w.U64(write_bypasses_);
  w.U64(install_races_);
}

void BansheeController::RestorePolicy(ser::Reader& r) {
  r.Section("banshee");
  if (r.SeqLen(26) != pages_.size()) {
    throw ser::SerializeError("banshee page table size mismatch");
  }
  for (PageEntry& e : pages_) {
    e.tag = r.U64();
    e.present = r.U64();
    e.dirty = r.U64();
    e.freq = r.U8();
    e.valid = r.Bool();
  }
  if (r.SeqLen(9) != challengers_.size()) {
    throw ser::SerializeError("banshee challenger table size mismatch");
  }
  for (Challenger& c : challengers_) {
    c.tag = r.U64();
    c.count = r.U8();
  }
  if (r.SeqLen(8) != pins_.size()) {
    throw ser::SerializeError("banshee pin table size mismatch");
  }
  for (std::uint32_t& p : pins_) p = static_cast<std::uint32_t>(r.U64());
  requests_since_decay_ = r.U64();
  read_hits_ = r.U64();
  write_hits_ = r.U64();
  misses_ = r.U64();
  fills_ = r.U64();
  evictions_ = r.U64();
  victim_writebacks_ = r.U64();
  page_replacements_ = r.U64();
  replacements_blocked_ = r.U64();
  read_bypasses_ = r.U64();
  write_bypasses_ = r.U64();
  install_races_ = r.U64();
}

}  // namespace redcache
