#include "dramcache/no_hbm.hpp"

#include "dramcache/policy_registry.hpp"

namespace redcache {

REDCACHE_REGISTER_POLICY(
    no_hbm, {.name = "No-HBM",
             .summary = "off-package DDR4 only (no DRAM cache)",
             .family = "bound",
             .differential = true,
             .golden = false,
             .sweep = false,
             .make = [](const MemControllerConfig& cfg) {
               return std::make_unique<NoHbmController>(cfg);
             }});

NoHbmController::NoHbmController(MemControllerConfig cfg)
    : ControllerBase((cfg.has_hbm = false, cfg)) {}

void NoHbmController::StartTxn(Txn& txn, Cycle now) {
  if (txn.is_writeback) {
    NotifyMmWrite(txn.addr);
    SendMm(kPostedOp, txn.addr, /*is_write=*/true, now);
    FreeTxn(txn);
    return;
  }
  SendMm(TxnIndex(txn), txn.addr, /*is_write=*/false, now);
}

void NoHbmController::OnDeviceComplete(Txn& txn, bool /*from_hbm*/,
                                       const DramCompletion& c, Cycle /*now*/) {
  NotifyServeRead(txn, ServeSource::kMainMemory);
  CompleteRead(txn, c.done);
  FreeTxn(txn);
}

}  // namespace redcache
