#include "dramcache/assoc_redcache.hpp"

#include <cassert>

#include "dramcache/policy_registry.hpp"

namespace redcache {

namespace {
PolicyInfo AssocInfo(std::string name, std::uint32_t ways,
                     const char* display) {
  return {.name = std::move(name),
          .summary = std::to_string(ways) +
                     "-way LRU RedCache (R-Cache direction extension)",
          .family = "redcache",
          .differential = false,
          .golden = false,
          .sweep = false,
          .make = [ways, display](const MemControllerConfig& cfg) {
            return std::make_unique<AssocRedCacheController>(
                cfg, RedCacheOptions::Full(), ways, display);
          }};
}
}  // namespace

REDCACHE_REGISTER_POLICY(redcache_2way,
                         (AssocInfo("RedCache-2way", 2, "redcache-2way")));
REDCACHE_REGISTER_POLICY(redcache_4way,
                         (AssocInfo("RedCache-4way", 4, "redcache-4way")));
REDCACHE_REGISTER_POLICY(redcache_8way,
                         (AssocInfo("RedCache-8way", 8, "redcache-8way")));

namespace {
enum State {
  kProbe = 0,     ///< waiting for the tag probe (+ MRU data) read
  kWayFetch,      ///< hit on a non-MRU way: extra data burst in flight
  kMissFetch,     ///< waiting for main memory
  kDirectFetch,   ///< bypassed read served by main memory
};
}  // namespace

AssocRedCacheController::AssocRedCacheController(MemControllerConfig cfg,
                                                 RedCacheOptions options,
                                                 std::uint32_t ways,
                                                 const char* display_name)
    : ControllerBase((cfg.has_hbm = true, cfg)),
      opt_(options),
      display_name_(display_name),
      tags_(cfg.hbm.geometry.capacity_bytes, ways),
      alpha_(options.alpha),
      gamma_(options.gamma),
      rcu_(options.rcu_entries) {
  assert(ways >= 1);
}

std::uint32_t AssocRedCacheController::MruWay(std::uint64_t set) const {
  std::uint32_t mru = 0;
  for (std::uint32_t w = 1; w < tags_.ways(); ++w) {
    if (tags_.line(set, w).valid &&
        (!tags_.line(set, mru).valid ||
         tags_.line(set, w).lru > tags_.line(set, mru).lru)) {
      mru = w;
    }
  }
  return mru;
}

void AssocRedCacheController::Depart(std::uint64_t set, std::uint32_t way,
                                     bool lifetime_sample) {
  AssocTags::Line& line = tags_.line(set, way);
  if (!line.write_filled) {
    epoch_departures_++;
    if (line.r_count == 0) epoch_dead_departures_++;
  }
  if (lifetime_sample && opt_.gamma_enabled && line.r_count > 0) {
    gamma_.OnLifetimeSample(line.r_count);
  }
  line.valid = false;
  line.dirty = false;
}

void AssocRedCacheController::Fill(Addr addr, bool dirty, Cycle now) {
  const std::uint64_t set = tags_.SetOf(addr);
  const std::uint32_t way = tags_.VictimWay(set);
  AssocTags::Line& line = tags_.line(set, way);
  if (line.valid) {
    rcu_.Remove(tags_.VictimAddr(set, way));
    if (line.dirty) {
      // Dirty victim needs its data streamed out before the writeback.
      SendHbm(kPostedOp, tags_.HbmAddr(set, way), /*is_write=*/false, now);
      SendMm(kPostedOp, tags_.VictimAddr(set, way), /*is_write=*/true, now);
      victim_writebacks_++;
    }
    Depart(set, way, /*lifetime_sample=*/true);
  }
  line.valid = true;
  line.dirty = dirty;
  line.write_filled = dirty;
  line.tag = tags_.TagOf(addr);
  line.r_count = 0;
  tags_.Touch(set, way);
  SendHbm(kPostedOp, tags_.HbmAddr(set, way), /*is_write=*/true, now);
  fills_++;
}

void AssocRedCacheController::StartTxn(Txn& txn, Cycle now) {
  epoch_request_count_++;
  if (epoch_request_count_ >= opt_.epoch_requests) {
    epoch_request_count_ = 0;
    alpha_.AdvanceEpoch();
    if (opt_.alpha_enabled && epoch_departures_ > 0) {
      alpha_.Retune(static_cast<double>(epoch_dead_departures_) /
                    static_cast<double>(epoch_departures_));
    }
    epoch_departures_ = 0;
    epoch_dead_departures_ = 0;
  }

  if (opt_.alpha_enabled && !alpha_.OnRequest(txn.addr)) {
    alpha_bypasses_++;
    if (txn.is_writeback) {
      SendMm(kPostedOp, txn.addr, /*is_write=*/true, now);
      FreeTxn(txn);
      return;
    }
    txn.state = kDirectFetch;
    SendMm(TxnIndex(txn), txn.addr, /*is_write=*/false, now);
    return;
  }

  txn.state = kProbe;
  const std::uint64_t set = tags_.SetOf(txn.addr);
  SendHbm(TxnIndex(txn), tags_.HbmAddr(set, MruWay(set)), /*is_write=*/false,
          now);
}

void AssocRedCacheController::HandleProbeResult(Txn& txn,
                                                const DramCompletion& c,
                                                Cycle now) {
  const std::uint64_t set = tags_.SetOf(txn.addr);
  const std::uint32_t way = tags_.FindWay(txn.addr);

  if (way != tags_.ways()) {
    hits_++;
    const std::uint32_t r = tags_.BumpRcount(set, way);
    if (opt_.gamma_enabled) gamma_.OnHit(r);
    AssocTags::Line& line = tags_.line(set, way);

    if (txn.is_writeback) {
      if (opt_.gamma_enabled && gamma_.IsLastWrite(r)) {
        gamma_invalidations_++;
        rcu_.Remove(txn.addr);
        Depart(set, way, /*lifetime_sample=*/false);
        SendMm(kPostedOp, txn.addr, /*is_write=*/true, now);
      } else {
        line.dirty = true;
        tags_.Touch(set, way);
        SendHbm(kPostedOp, tags_.HbmAddr(set, way), /*is_write=*/true, now);
      }
      FreeTxn(txn);
      return;
    }

    const bool was_mru = way == MruWay(set);
    tags_.Touch(set, way);
    if (was_mru) {
      mru_hits_++;
      NotifyServeRead(txn, ServeSource::kCache);
      CompleteRead(txn, c.done);
      switch (opt_.update_mode) {
        case RedCacheOptions::UpdateMode::kInSitu:
          insitu_updates_++;
          break;
        case RedCacheOptions::UpdateMode::kImmediate:
          immediate_updates_++;
          SendHbm(kPostedOp, tags_.HbmAddr(set, way), /*is_write=*/true, now);
          break;
        case RedCacheOptions::UpdateMode::kRcu:
          FlushRcuEntries(
              rcu_.Insert(txn.addr,
                          hbm_->mapper().Map(tags_.HbmAddr(set, way))),
              now);
          break;
      }
      FreeTxn(txn);
      return;
    }
    // Hit on a non-MRU way: the probe brought the wrong data; fetch the
    // right block with one more burst.
    non_mru_hits_++;
    txn.state = kWayFetch;
    txn.aux = way;
    SendHbm(TxnIndex(txn), tags_.HbmAddr(set, way), /*is_write=*/false, now);
    return;
  }

  misses_++;
  if (txn.is_writeback) {
    const std::uint32_t victim = tags_.VictimWay(set);
    if (tags_.line(set, victim).valid && tags_.line(set, victim).dirty) {
      SendMm(kPostedOp, txn.addr, /*is_write=*/true, now);
    } else {
      Fill(txn.addr, /*dirty=*/true, now);
    }
    FreeTxn(txn);
    return;
  }
  txn.state = kMissFetch;
  SendMm(TxnIndex(txn), txn.addr, /*is_write=*/false, now);
}

void AssocRedCacheController::OnDeviceComplete(Txn& txn, bool /*from_hbm*/,
                                               const DramCompletion& c,
                                               Cycle now) {
  switch (txn.state) {
    case kProbe:
      HandleProbeResult(txn, c, now);
      return;
    case kWayFetch: {
      NotifyServeRead(txn, ServeSource::kCache);
      CompleteRead(txn, c.done);
      if (opt_.update_mode == RedCacheOptions::UpdateMode::kRcu) {
        const std::uint64_t set = tags_.SetOf(txn.addr);
        FlushRcuEntries(
            rcu_.Insert(txn.addr,
                        hbm_->mapper().Map(tags_.HbmAddr(set, txn.aux))),
            now);
      } else if (opt_.update_mode ==
                 RedCacheOptions::UpdateMode::kImmediate) {
        immediate_updates_++;
        const std::uint64_t set = tags_.SetOf(txn.addr);
        SendHbm(kPostedOp, tags_.HbmAddr(set, txn.aux), /*is_write=*/true,
                now);
      } else {
        insitu_updates_++;
      }
      FreeTxn(txn);
      return;
    }
    case kMissFetch:
      NotifyServeRead(txn, ServeSource::kMainMemory);
      CompleteRead(txn, c.done);
      Fill(txn.addr, /*dirty=*/false, now);
      FreeTxn(txn);
      return;
    case kDirectFetch:
      NotifyServeRead(txn, ServeSource::kMainMemory);
      CompleteRead(txn, c.done);
      FreeTxn(txn);
      return;
  }
}

void AssocRedCacheController::FlushRcuEntries(
    const std::vector<RcuManager::Entry>& entries, Cycle now) {
  for (const RcuManager::Entry& e : entries) {
    const std::uint64_t set = tags_.SetOf(e.block);
    const std::uint32_t way = tags_.FindWay(e.block);
    if (way == tags_.ways()) continue;  // evicted meanwhile: update moot
    SendHbm(kPostedOp, tags_.HbmAddr(set, way), /*is_write=*/true, now);
  }
}

void AssocRedCacheController::OnColumnCommand(const IssuedColumnCommand& cmd) {
  if (opt_.update_mode != RedCacheOptions::UpdateMode::kRcu || !cmd.is_write) {
    return;
  }
  auto matches = rcu_.MatchIndex(cmd.loc);
  pending_rcu_flushes_.insert(pending_rcu_flushes_.end(), matches.begin(),
                              matches.end());
}

void AssocRedCacheController::PolicyTick(Cycle now) {
  if (opt_.update_mode != RedCacheOptions::UpdateMode::kRcu) return;
  if (!pending_rcu_flushes_.empty()) {
    FlushRcuEntries(pending_rcu_flushes_, now);
    pending_rcu_flushes_.clear();
  }
  if (rcu_.size() != 0) {
    for (std::uint32_t ch = 0; ch < hbm_->num_channels(); ++ch) {
      if (hbm_->ChannelTransactionQueueEmpty(ch)) {
        FlushRcuEntries(rcu_.PopChannel(ch), now);
      }
    }
  }
}

Cycle AssocRedCacheController::PolicyWake(Cycle now) const {
  if (opt_.update_mode != RedCacheOptions::UpdateMode::kRcu) {
    return kNeverWake;
  }
  // Same contract as RedCacheController::PolicyWake: parked updates with an
  // idle channel available must keep the run loop visiting.
  if (!pending_rcu_flushes_.empty()) return now + 1;
  if (rcu_.size() != 0) {
    for (std::uint32_t ch = 0; ch < hbm_->num_channels(); ++ch) {
      if (hbm_->ChannelTransactionQueueEmpty(ch)) return now + 1;
    }
  }
  return kNeverWake;
}

void AssocRedCacheController::ExportOwnStats(StatSet& stats) const {
  stats.Counter("ctrl.cache_hits") = hits_;
  stats.Counter("ctrl.cache_misses") = misses_;
  stats.Counter("ctrl.mru_hits") = mru_hits_;
  stats.Counter("ctrl.non_mru_hits") = non_mru_hits_;
  stats.Counter("ctrl.fills") = fills_;
  stats.Counter("ctrl.victim_writebacks") = victim_writebacks_;
  stats.Counter("ctrl.alpha_bypasses") = alpha_bypasses_;
  stats.Counter("ctrl.gamma_invalidations") = gamma_invalidations_;
  stats.Counter("ctrl.alpha_lookups") = alpha_.lookups();
  stats.Counter("ctrl.alpha_value") = alpha_.alpha();
  stats.Counter("ctrl.gamma_value") = gamma_.gamma();
  stats.Counter("ctrl.insitu_updates") = insitu_updates_;
  stats.Counter("ctrl.immediate_updates") = immediate_updates_;
  stats.Counter("ctrl.rcu_searches") = rcu_.searches();
  stats.Counter("ctrl.rcu_inserts") = rcu_.inserts();
  stats.Counter("ctrl.rcu_data_accesses") =
      rcu_.inserts() + rcu_.merged_flushes() + rcu_.idle_flushes() +
      rcu_.capacity_flushes();
}

void AssocRedCacheController::SnapshotPolicy(ser::Writer& w) const {
  w.Section("aredc");
  tags_.Snapshot(w);
  alpha_.Snapshot(w);
  gamma_.Snapshot(w);
  rcu_.Snapshot(w);
  w.U64(pending_rcu_flushes_.size());
  for (const RcuManager::Entry& e : pending_rcu_flushes_) {
    RcuManager::SnapshotEntry(w, e);
  }
  w.U64(epoch_request_count_);
  w.U64(epoch_departures_);
  w.U64(epoch_dead_departures_);
  w.U64(hits_);
  w.U64(misses_);
  w.U64(mru_hits_);
  w.U64(non_mru_hits_);
  w.U64(fills_);
  w.U64(victim_writebacks_);
  w.U64(alpha_bypasses_);
  w.U64(gamma_invalidations_);
  w.U64(insitu_updates_);
  w.U64(immediate_updates_);
}

void AssocRedCacheController::RestorePolicy(ser::Reader& r) {
  r.Section("aredc");
  tags_.Restore(r);
  alpha_.Restore(r);
  gamma_.Restore(r);
  rcu_.Restore(r);
  pending_rcu_flushes_.clear();
  const std::size_t n = r.SeqLen(32);
  for (std::size_t i = 0; i < n; ++i) {
    pending_rcu_flushes_.push_back(RcuManager::RestoreEntry(r));
  }
  epoch_request_count_ = r.U64();
  epoch_departures_ = r.U64();
  epoch_dead_departures_ = r.U64();
  hits_ = r.U64();
  misses_ = r.U64();
  mru_hits_ = r.U64();
  non_mru_hits_ = r.U64();
  fills_ = r.U64();
  victim_writebacks_ = r.U64();
  alpha_bypasses_ = r.U64();
  gamma_invalidations_ = r.U64();
  insitu_updates_ = r.U64();
  immediate_updates_ = r.U64();
}

}  // namespace redcache
