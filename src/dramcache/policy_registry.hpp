// Policy plugin registry: name-based construction of DRAM-cache policies.
//
// Every memory-controller policy registers itself under a stable name via
// REDCACHE_REGISTER_POLICY in its own translation unit; the rest of the
// system (runner, batch engine, CLI, differential fuzzer, golden-stats
// harness) looks policies up by name and never names a concrete class.
// Adding a policy is a one-file exercise:
//
//   // src/dramcache/mypolicy.cpp
//   REDCACHE_REGISTER_POLICY(mypolicy, {
//       .name = "MyPolicy",
//       .summary = "one-line description for --list and error messages",
//       .family = "mypolicy",
//       .differential = true,   // include in the N-policy differential set
//       .golden = true,         // pin Table II golden stats for it
//       .sweep = true,          // include in the default --sweep matrix
//       .make = [](const MemControllerConfig& cfg) {
//         return std::make_unique<MyPolicyController>(cfg);
//       }})
//
// plus one anchor line in policy_registry.cpp's builtin list (required
// because the policies live in a static library: an unreferenced
// translation unit would be dropped by the linker and its registration
// would never run; the anchor reference forces the member in). Policy
// translation units compiled directly into an executable (tests) need no
// anchor — their static registrar runs at load time.
//
// Registration obligations (DESIGN.md section 11): honor the MemController
// wake contract (conservative Tick/NextEventHint/PolicyWake), export
// "ctrl."-prefixed stats (and, where meaningful, the fill-conservation
// triple fills/evictions/resident_lines the differential fuzzer
// cross-checks), and call the VerifySink hooks so the reference memory
// model can replay the policy's data movement.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dramcache/controller.hpp"

namespace redcache {

struct PolicyInfo {
  std::string name;     ///< canonical lookup key (also the CellKey label)
  std::string summary;  ///< one line for --list and unknown-name errors
  std::string family;   ///< mechanism family ("alloy", "redcache", ...)
  /// Cross-checked against the reference memory model by the N-policy
  /// differential fuzzer (src/verify/differential.cpp).
  bool differential = false;
  /// Pinned by the Table II golden-stats regression (tests/verify/).
  bool golden = false;
  /// Part of the default `redcache_cli --sweep` evaluation matrix.
  bool sweep = false;
  std::function<std::unique_ptr<MemController>(const MemControllerConfig&)>
      make;
};

class PolicyRegistry {
 public:
  /// The process-wide registry (builtins are registered on first access).
  static PolicyRegistry& Instance();

  /// Throws std::invalid_argument on a duplicate name or a null factory.
  void Register(PolicyInfo info);

  bool Has(const std::string& name) const;
  /// Throws std::invalid_argument listing every registered name when
  /// `name` is unknown.
  PolicyInfo Get(const std::string& name) const;

  /// All registered names, sorted (deterministic across runs).
  std::vector<std::string> Names() const;
  /// All registered infos, sorted by name.
  std::vector<PolicyInfo> Infos() const;

  /// Sorted names with the given capability flag set.
  std::vector<std::string> DifferentialNames() const;
  std::vector<std::string> GoldenNames() const;
  std::vector<std::string> SweepNames() const;

 private:
  PolicyRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Construct the policy registered under `name`. Unknown names throw
/// std::invalid_argument with the full list of registered policies.
std::unique_ptr<MemController> MakePolicy(const std::string& name,
                                          const MemControllerConfig& cfg);

/// Registration helper used by REDCACHE_REGISTER_POLICY. Registration is
/// idempotent per call site (safe to run both via the static registrar and
/// via the builtin anchor list).
struct PolicyRegistrar {
  explicit PolicyRegistrar(void (*register_fn)()) { register_fn(); }
};

/// Self-registering policy translation unit. `ident` must be a unique C
/// identifier; the remaining arguments brace-initialize a PolicyInfo.
#define REDCACHE_REGISTER_POLICY(ident, ...)                             \
  void RedcachePolicyRegister_##ident() {                                \
    static const bool redcache_registered_once_ = [] {                   \
      ::redcache::PolicyRegistry::Instance().Register(                   \
          ::redcache::PolicyInfo __VA_ARGS__);                           \
      return true;                                                       \
    }();                                                                 \
    (void)redcache_registered_once_;                                     \
  }                                                                      \
  namespace {                                                            \
  const ::redcache::PolicyRegistrar redcache_policy_registrar_##ident{   \
      &RedcachePolicyRegister_##ident};                                  \
  }                                                                      \
  static_assert(true, "")

}  // namespace redcache
