#include "dramcache/bear.hpp"

#include <algorithm>

#include "dramcache/policy_registry.hpp"

namespace redcache {

REDCACHE_REGISTER_POLICY(
    bear, {.name = "Bear",
           .summary = "ISCA'15 BEAR: Alloy + bandwidth-aware bypass, "
                      "presence filter, write-miss bypass",
           .family = "alloy",
           .differential = true,
           .golden = true,
           .sweep = true,
           .make = [](const MemControllerConfig& cfg) {
             return std::make_unique<BearController>(cfg);
           }});

namespace {
enum State {
  kProbe = 0,      ///< waiting for the TAD read (matches AlloyController)
  kMissFetch,      ///< waiting for main memory after a probe miss
  kDirectFetch,    ///< DCP said absent: main-memory read, no probe
};
}  // namespace

PresenceFilter::PresenceFilter(std::size_t buckets, std::uint32_t hashes)
    : counters_(buckets < 64 ? 64 : buckets, 0), hashes_(hashes) {}

std::size_t PresenceFilter::Slot(Addr line_addr, std::uint32_t i) const {
  return static_cast<std::size_t>(Mix64(line_addr * 2654435761u + i * 40503u)) %
         counters_.size();
}

void PresenceFilter::Add(Addr line_addr) {
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    std::uint8_t& c = counters_[Slot(line_addr, i)];
    if (c != 0xff) ++c;
  }
}

void PresenceFilter::Remove(Addr line_addr) {
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    std::uint8_t& c = counters_[Slot(line_addr, i)];
    if (c != 0) --c;
  }
}

bool PresenceFilter::MayContain(Addr line_addr) const {
  checks_++;
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    if (counters_[Slot(line_addr, i)] == 0) {
      absences_++;
      return false;
    }
  }
  return true;
}

BearController::BearController(MemControllerConfig cfg)
    : AlloyController(cfg),
      presence_(static_cast<std::size_t>(
          tags_.num_sets() * 8)),  // ~8 counters per line: low FP rate
      rng_(0xbea7bea7bea7bea7ULL) {}

bool BearController::ShouldFill(std::uint64_t set) {
  if (SampledSet(set)) return true;
  return rng_.Chance(fill_probability_);
}

void BearController::RecordOutcome(std::uint64_t set, bool hit) {
  if (SampledSet(set)) {
    sample_accesses_++;
    sample_hits_ += hit ? 1 : 0;
  } else {
    other_accesses_++;
    other_hits_ += hit ? 1 : 0;
  }
  MaybeRetuneBypass();
}

void BearController::MaybeRetuneBypass() {
  constexpr std::uint64_t kEpoch = 16384;
  if (sample_accesses_ + other_accesses_ < kEpoch) return;
  if (sample_accesses_ > 64 && other_accesses_ > 64) {
    const double sampled = static_cast<double>(sample_hits_) /
                           static_cast<double>(sample_accesses_);
    const double rest = static_cast<double>(other_hits_) /
                        static_cast<double>(other_accesses_);
    // Always-fill sets hitting notably more means the bypassed fills were
    // worth installing: raise the fill fraction, else fall back toward
    // BEAR's default 90% bypass.
    if (sampled > rest + 0.02) {
      fill_probability_ = std::min(1.0, fill_probability_ + 0.15);
    } else {
      fill_probability_ = std::max(0.10, fill_probability_ - 0.15);
    }
    bypass_retunes_++;
  }
  sample_hits_ = sample_accesses_ = 0;
  other_hits_ = other_accesses_ = 0;
}

void BearController::FillTracked(Addr addr, bool dirty, Cycle now) {
  const std::uint64_t set = tags_.SetOf(addr);
  const DirectMappedTags::Line& line = tags_.line(set);
  if (line.valid) presence_.Remove(tags_.VictimAddr(set) / tags_.line_bytes());
  Fill(addr, dirty, now);
  presence_.Add(addr / tags_.line_bytes());
}

void BearController::StartTxn(Txn& txn, Cycle now) {
  const Addr line_addr = txn.addr / tags_.line_bytes();
  if (!presence_.MayContain(line_addr)) {
    // DCP: definitely not cached — skip the probe.
    probe_skips_++;
    misses_++;
    RecordOutcome(tags_.SetOf(txn.addr), /*hit=*/false);
    if (txn.is_writeback) {
      write_miss_bypasses_++;
      NotifyMmWrite(txn.addr);
      SendMm(kPostedOp, txn.addr, /*is_write=*/true, now);
      FreeTxn(txn);
      return;
    }
    txn.state = kDirectFetch;
    SendMm(TxnIndex(txn), txn.addr, /*is_write=*/false, now);
    return;
  }
  txn.state = kProbe;
  const std::uint64_t set = tags_.SetOf(txn.addr);
  SendHbm(TxnIndex(txn), tags_.HbmAddr(set, txn.addr), /*is_write=*/false,
          now);
}

void BearController::OnDeviceComplete(Txn& txn, bool /*from_hbm*/,
                                      const DramCompletion& c, Cycle now) {
  const std::uint64_t set = tags_.SetOf(txn.addr);
  switch (txn.state) {
    case kProbe: {
      RecordOutcome(set, tags_.Hit(txn.addr));
      if (tags_.Hit(txn.addr)) {
        hits_++;
        if (txn.is_writeback) {
          write_hits_++;
          tags_.line(set).dirty = true;
          NotifyCacheWrite(txn.addr);
          SendHbm(kPostedOp, tags_.HbmAddr(set, txn.addr), /*is_write=*/true,
                  now);
        } else {
          read_hits_++;
          NotifyServeRead(txn, ServeSource::kCache);
          CompleteRead(txn, c.done);
        }
        FreeTxn(txn);
        return;
      }
      misses_++;
      if (txn.is_writeback) {
        // Write-miss bypass (probe was a DCP false positive).
        write_miss_bypasses_++;
        NotifyMmWrite(txn.addr);
        SendMm(kPostedOp, txn.addr, /*is_write=*/true, now);
        FreeTxn(txn);
        return;
      }
      txn.state = kMissFetch;
      SendMm(TxnIndex(txn), txn.addr, /*is_write=*/false, now,
             tags_.line_blocks());
      return;
    }
    case kMissFetch: {
      NotifyServeRead(txn, ServeSource::kMainMemory);
      CompleteRead(txn, c.done);
      if (ShouldFill(set)) {
        FillTracked(txn.addr, /*dirty=*/false, now);
      } else {
        fill_bypasses_++;
      }
      FreeTxn(txn);
      return;
    }
    case kDirectFetch: {
      NotifyServeRead(txn, ServeSource::kMainMemory);
      CompleteRead(txn, c.done);
      if (ShouldFill(set)) {
        // Filling after a skipped probe needs the victim TAD read first.
        SendHbm(kPostedOp, tags_.HbmAddr(set, txn.addr), /*is_write=*/false,
                now);
        FillTracked(txn.addr, /*dirty=*/false, now);
      } else {
        fill_bypasses_++;
      }
      FreeTxn(txn);
      return;
    }
  }
}

void BearController::ExportOwnStats(StatSet& stats) const {
  AlloyController::ExportOwnStats(stats);
  stats.Counter("ctrl.fill_bypasses") = fill_bypasses_;
  stats.Counter("ctrl.probe_skips") = probe_skips_;
  stats.Counter("ctrl.write_miss_bypasses") = write_miss_bypasses_;
  stats.Counter("ctrl.presence_checks") = presence_.checks();
  stats.Counter("ctrl.presence_absences") = presence_.definite_absences();
  stats.Counter("ctrl.bypass_retunes") = bypass_retunes_;
  stats.Counter("ctrl.fill_probability_pct") =
      static_cast<std::uint64_t>(fill_probability_ * 100.0);
}

void BearController::SnapshotPolicy(ser::Writer& w) const {
  AlloyController::SnapshotPolicy(w);
  w.Section("bear");
  presence_.Snapshot(w);
  rng_.Snapshot(w);
  w.F64(fill_probability_);
  w.U64(fill_bypasses_);
  w.U64(probe_skips_);
  w.U64(write_miss_bypasses_);
  w.U64(sample_hits_);
  w.U64(sample_accesses_);
  w.U64(other_hits_);
  w.U64(other_accesses_);
  w.U64(bypass_retunes_);
}

void BearController::RestorePolicy(ser::Reader& r) {
  AlloyController::RestorePolicy(r);
  r.Section("bear");
  presence_.Restore(r);
  rng_.Restore(r);
  fill_probability_ = r.F64();
  fill_bypasses_ = r.U64();
  probe_skips_ = r.U64();
  write_miss_bypasses_ = r.U64();
  sample_hits_ = r.U64();
  sample_accesses_ = r.U64();
  other_hits_ = r.U64();
  other_accesses_ = r.U64();
  bypass_retunes_ = r.U64();
}

}  // namespace redcache
