// TicToc-style bandwidth-aware DRAM-cache replacement.
//
// Builds on the Alloy TAD organization (direct-mapped, probe read fetches
// tag+data together) but makes every bandwidth-spending decision adaptive:
//
//  * Fill duty cycle ("tic"): miss fills consume HBM write bandwidth that
//    competes with demand hits. A per-window comparison of HBM vs main-
//    memory bursts sets a duty in [1, 8]; a read miss installs its line
//    only when its slot in the 8-phase fill rotation is below the duty.
//    HBM-bound windows shed fills, MM-bound windows install aggressively.
//  * Metadata updates ("toc"): the reuse counter lives in the TAD's spare
//    tag/ECC byte, so bumping it on a hit costs an HBM write. Under HBM
//    pressure (duty below half scale) the update is skipped — the SRAM
//    mirror still learns, only the modeled write-bandwidth cost is elided.
//  * Last-write routing: a CPU writeback hitting a line with enough
//    observed reuse is predicted to be the block's final store; it is
//    routed straight to main memory and the cached copy is invalidated,
//    keeping the cache clean so future evictions are free.
//
// Write misses always bypass to main memory (no write allocation): a clean
// cache plus duty-gated fills is the design's bandwidth story.
#pragma once

#include "dramcache/alloy.hpp"

namespace redcache {

class TicTocController : public AlloyController {
 public:
  explicit TicTocController(MemControllerConfig cfg);

  const char* name() const override { return "tictoc"; }
  void SampleTelemetry(StatSet& out) const override;

  std::uint32_t fill_duty() const { return fill_duty_; }

 protected:
  void StartTxn(Txn& txn, Cycle now) override;
  void OnDeviceComplete(Txn& txn, bool from_hbm, const DramCompletion& c,
                        Cycle now) override;
  void ExportOwnStats(StatSet& stats) const override;
  void SnapshotPolicy(ser::Writer& w) const override;
  void RestorePolicy(ser::Reader& r) override;

 private:
  /// Requests per bandwidth-observation window.
  static constexpr std::uint64_t kWindow = 4096;
  /// Reuse count at or above which a write hit is treated as a last write.
  static constexpr std::uint32_t kLastWriteReuse = 4;

  void NoteRequest();

  std::uint64_t window_requests_ = 0;
  std::uint64_t hbm_bursts_ = 0;  ///< device ops issued this window
  std::uint64_t mm_bursts_ = 0;
  std::uint32_t fill_duty_ = 8;   ///< of 8 fill-rotation phases, install these
  std::uint64_t fill_seq_ = 0;    ///< rotation position for duty gating

  std::uint64_t bypassed_fills_ = 0;     ///< read misses served without install
  std::uint64_t last_write_routes_ = 0;  ///< write hits invalidated to MM
  std::uint64_t absorbed_writes_ = 0;    ///< write hits kept in cache
  std::uint64_t write_bypasses_ = 0;     ///< write misses routed to MM
  std::uint64_t metadata_updates_ = 0;   ///< reuse-count writes paid to HBM
  std::uint64_t metadata_skips_ = 0;     ///< reuse-count writes elided
  std::uint64_t duty_raises_ = 0;
  std::uint64_t duty_drops_ = 0;
};

}  // namespace redcache
