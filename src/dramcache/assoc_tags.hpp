// Set-associative DRAM-cache metadata.
//
// The DAC'20 paper evaluates RedCache on a direct-mapped (Alloy-style)
// organization; the authors' companion work (R-Cache, ICCD'18) argues for
// higher associativity in package. This store supports both: way lookup is
// resolved by the controller after the probe read (all ways of a set live
// in one DRAM row, so one probe burst still suffices for tag checking,
// while data for way > 0 costs one extra burst — the classic LH-cache
// trade-off the controller charges for).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitops.hpp"
#include "common/serialize.hpp"
#include "common/types.hpp"

namespace redcache {

class AssocTags {
 public:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;
    std::uint8_t r_count = 0;
    bool valid = false;
    bool dirty = false;
    bool write_filled = false;
  };

  AssocTags(std::uint64_t capacity_bytes, std::uint32_t ways)
      : ways_(ways),
        num_sets_(capacity_bytes / kBlockBytes / ways),
        lines_(num_sets_ * ways) {}

  std::uint64_t num_sets() const { return num_sets_; }
  std::uint32_t ways() const { return ways_; }

  std::uint64_t SetOf(Addr addr) const {
    return (addr / kBlockBytes) % num_sets_;
  }
  std::uint64_t TagOf(Addr addr) const {
    return addr / kBlockBytes / num_sets_;
  }

  /// Way holding `addr`, or ways() if absent.
  std::uint32_t FindWay(Addr addr) const {
    const Line* base = &lines_[SetOf(addr) * ways_];
    const std::uint64_t tag = TagOf(addr);
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (base[w].valid && base[w].tag == tag) return w;
    }
    return ways_;
  }

  bool Hit(Addr addr) const { return FindWay(addr) != ways_; }

  Line& line(std::uint64_t set, std::uint32_t way) {
    return lines_[set * ways_ + way];
  }
  const Line& line(std::uint64_t set, std::uint32_t way) const {
    return lines_[set * ways_ + way];
  }

  /// LRU victim way (invalid ways first).
  std::uint32_t VictimWay(std::uint64_t set) const {
    const Line* base = &lines_[set * ways_];
    std::uint32_t victim = 0;
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (!base[w].valid) return w;
      if (base[w].lru < base[victim].lru) victim = w;
    }
    return victim;
  }

  void Touch(std::uint64_t set, std::uint32_t way) {
    lines_[set * ways_ + way].lru = ++tick_;
  }

  /// Main-memory address of the block in (set, way).
  Addr VictimAddr(std::uint64_t set, std::uint32_t way) const {
    return (lines_[set * ways_ + way].tag * num_sets_ + set) * kBlockBytes;
  }

  /// HBM device address of (set, way): ways of a set are adjacent blocks
  /// of the same row whenever ways <= blocks-per-row.
  Addr HbmAddr(std::uint64_t set, std::uint32_t way) const {
    return (set * ways_ + way) * kBlockBytes;
  }

  std::uint32_t BumpRcount(std::uint64_t set, std::uint32_t way) {
    Line& l = lines_[set * ways_ + way];
    if (l.r_count != 0xff) ++l.r_count;
    return l.r_count;
  }

  void Snapshot(ser::Writer& w) const {
    w.Section("atags");
    w.U64(lines_.size());
    for (const Line& l : lines_) {
      w.U64(l.tag);
      w.U64(l.lru);
      w.U8(l.r_count);
      w.Bool(l.valid);
      w.Bool(l.dirty);
      w.Bool(l.write_filled);
    }
    w.U64(tick_);
  }
  void Restore(ser::Reader& r) {
    r.Section("atags");
    if (r.SeqLen(20) != lines_.size()) {
      throw ser::SerializeError("assoc tag store geometry mismatch");
    }
    for (Line& l : lines_) {
      l.tag = r.U64();
      l.lru = r.U64();
      l.r_count = r.U8();
      l.valid = r.Bool();
      l.dirty = r.Bool();
      l.write_filled = r.Bool();
    }
    tick_ = r.U64();
  }

 private:
  std::uint32_t ways_;
  std::uint64_t num_sets_;
  std::vector<Line> lines_;
  std::uint64_t tick_ = 0;
};

}  // namespace redcache
