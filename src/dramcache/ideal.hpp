// IDEAL HBM cache (Fig. 1b): a perfect cache with a 100% hit rate. All data
// magically resides in HBM; the cache still pays for tag checks — every
// read moves one TAD burst, and every writeback needs the tag-check read
// followed by the data write (one bus reversal), exactly the costs the
// paper attributes to IDEAL ("consumes additional bandwidth and storage for
// tag checks").
#pragma once

#include "dramcache/controller.hpp"

namespace redcache {

class IdealController : public ControllerBase {
 public:
  explicit IdealController(MemControllerConfig cfg);

  const char* name() const override { return "ideal"; }

 protected:
  void StartTxn(Txn& txn, Cycle now) override;
  void OnDeviceComplete(Txn& txn, bool from_hbm, const DramCompletion& c,
                        Cycle now) override;
};

}  // namespace redcache
