#include "dramcache/policy_registry.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

namespace redcache {

namespace {

// Anchor declarations: one per builtin policy translation unit. Referencing
// the registration function forces the linker to keep the archive member
// (and with it the policy's static registrar) in every binary that touches
// the registry, whether or not the binary names the policy class itself.
#define REDCACHE_DECLARE_BUILTIN(ident) void RedcachePolicyRegister_##ident()
#define REDCACHE_ANCHOR_BUILTIN(ident) RedcachePolicyRegister_##ident()

}  // namespace

REDCACHE_DECLARE_BUILTIN(no_hbm);
REDCACHE_DECLARE_BUILTIN(ideal);
REDCACHE_DECLARE_BUILTIN(alloy);
REDCACHE_DECLARE_BUILTIN(bear);
REDCACHE_DECLARE_BUILTIN(red_alpha);
REDCACHE_DECLARE_BUILTIN(red_gamma);
REDCACHE_DECLARE_BUILTIN(red_basic);
REDCACHE_DECLARE_BUILTIN(red_insitu);
REDCACHE_DECLARE_BUILTIN(redcache_full);
REDCACHE_DECLARE_BUILTIN(redcache_2way);
REDCACHE_DECLARE_BUILTIN(redcache_4way);
REDCACHE_DECLARE_BUILTIN(redcache_8way);
REDCACHE_DECLARE_BUILTIN(footprint_2kb);
REDCACHE_DECLARE_BUILTIN(banshee);
REDCACHE_DECLARE_BUILTIN(tictoc);

namespace {

void EnsureBuiltinsRegistered() {
  static const bool done = [] {
    REDCACHE_ANCHOR_BUILTIN(no_hbm);
    REDCACHE_ANCHOR_BUILTIN(ideal);
    REDCACHE_ANCHOR_BUILTIN(alloy);
    REDCACHE_ANCHOR_BUILTIN(bear);
    REDCACHE_ANCHOR_BUILTIN(red_alpha);
    REDCACHE_ANCHOR_BUILTIN(red_gamma);
    REDCACHE_ANCHOR_BUILTIN(red_basic);
    REDCACHE_ANCHOR_BUILTIN(red_insitu);
    REDCACHE_ANCHOR_BUILTIN(redcache_full);
    REDCACHE_ANCHOR_BUILTIN(redcache_2way);
    REDCACHE_ANCHOR_BUILTIN(redcache_4way);
    REDCACHE_ANCHOR_BUILTIN(redcache_8way);
    REDCACHE_ANCHOR_BUILTIN(footprint_2kb);
    REDCACHE_ANCHOR_BUILTIN(banshee);
    REDCACHE_ANCHOR_BUILTIN(tictoc);
    return true;
  }();
  (void)done;
}

}  // namespace

struct PolicyRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, PolicyInfo> policies;  // sorted by name
};

PolicyRegistry::Impl& PolicyRegistry::impl() const {
  static Impl instance;
  return instance;
}

PolicyRegistry& PolicyRegistry::Instance() {
  static PolicyRegistry registry;
  return registry;
}

void PolicyRegistry::Register(PolicyInfo info) {
  if (info.name.empty()) {
    throw std::invalid_argument("policy registration with an empty name");
  }
  if (!info.make) {
    throw std::invalid_argument("policy '" + info.name +
                                "' registered without a factory");
  }
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  if (!im.policies.emplace(info.name, std::move(info)).second) {
    throw std::invalid_argument("duplicate policy registration: " +
                                im.policies.find(info.name)->first);
  }
}

bool PolicyRegistry::Has(const std::string& name) const {
  EnsureBuiltinsRegistered();
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.policies.count(name) != 0;
}

PolicyInfo PolicyRegistry::Get(const std::string& name) const {
  EnsureBuiltinsRegistered();
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  const auto it = im.policies.find(name);
  if (it != im.policies.end()) return it->second;
  std::string msg = "unknown policy '" + name + "'; registered policies:";
  for (const auto& [n, info] : im.policies) {
    msg += ' ';
    msg += n;
  }
  throw std::invalid_argument(msg);
}

std::vector<std::string> PolicyRegistry::Names() const {
  EnsureBuiltinsRegistered();
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::vector<std::string> names;
  names.reserve(im.policies.size());
  for (const auto& [n, info] : im.policies) names.push_back(n);
  return names;
}

std::vector<PolicyInfo> PolicyRegistry::Infos() const {
  EnsureBuiltinsRegistered();
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::vector<PolicyInfo> infos;
  infos.reserve(im.policies.size());
  for (const auto& [n, info] : im.policies) infos.push_back(info);
  return infos;
}

namespace {

std::vector<std::string> FilterNames(const PolicyRegistry& reg,
                                     bool PolicyInfo::*flag) {
  std::vector<std::string> names;
  for (const PolicyInfo& info : reg.Infos()) {
    if (info.*flag) names.push_back(info.name);
  }
  return names;
}

}  // namespace

std::vector<std::string> PolicyRegistry::DifferentialNames() const {
  return FilterNames(*this, &PolicyInfo::differential);
}

std::vector<std::string> PolicyRegistry::GoldenNames() const {
  return FilterNames(*this, &PolicyInfo::golden);
}

std::vector<std::string> PolicyRegistry::SweepNames() const {
  return FilterNames(*this, &PolicyInfo::sweep);
}

std::unique_ptr<MemController> MakePolicy(const std::string& name,
                                          const MemControllerConfig& cfg) {
  return PolicyRegistry::Instance().Get(name).make(cfg);
}

}  // namespace redcache
