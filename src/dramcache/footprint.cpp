#include "dramcache/footprint.hpp"

#include <cassert>

#include "dramcache/policy_registry.hpp"

namespace redcache {

REDCACHE_REGISTER_POLICY(
    footprint_2kb, {.name = "Footprint-2KB",
                    .summary = "coarse-grained 2 KiB page cache with SRAM "
                               "tags and footprint bitmaps",
                    .family = "page",
                    .differential = false,
                    .golden = false,
                    .sweep = false,
                    .make = [](const MemControllerConfig& cfg) {
                      return std::make_unique<FootprintCacheController>(cfg);
                    }});

namespace {
enum State {
  kBlockFetch = 0,  ///< block streaming in from main memory
};
}  // namespace

FootprintCacheController::FootprintCacheController(MemControllerConfig cfg,
                                                   std::uint64_t page_bytes)
    : ControllerBase((cfg.has_hbm = true, cfg)),
      page_bytes_(page_bytes),
      blocks_per_page_(static_cast<std::uint32_t>(page_bytes / kBlockBytes)),
      sets_(cfg.hbm.geometry.capacity_bytes / page_bytes),
      pages_(sets_) {
  assert(blocks_per_page_ >= 1 && blocks_per_page_ <= 64);
}

void FootprintCacheController::Allocate(Addr addr, Cycle now) {
  const std::uint64_t set = SetOf(addr);
  PageEntry& e = pages_[set];
  if (e.valid) {
    page_evictions_++;
    // Stream dirty blocks out of HBM and write them back off-package.
    std::uint64_t dirty = e.dirty;
    for (std::uint32_t b = 0; b < blocks_per_page_; ++b) {
      if (dirty & (std::uint64_t{1} << b)) {
        SendHbm(kPostedOp, HbmAddr(set, b), /*is_write=*/false, now);
        SendMm(kPostedOp, PageAddr(e, set) + Addr{b} * kBlockBytes,
               /*is_write=*/true, now);
        dirty_blocks_written_back_++;
      }
    }
  }
  e.valid = true;
  e.tag = TagOf(addr);
  e.present = 0;
  e.dirty = 0;
}

void FootprintCacheController::StartTxn(Txn& txn, Cycle now) {
  const std::uint64_t set = SetOf(txn.addr);
  PageEntry& e = pages_[set];
  const std::uint32_t block = BlockOf(txn.addr);
  const std::uint64_t bit = std::uint64_t{1} << block;

  if (!e.valid || e.tag != TagOf(txn.addr)) {
    page_misses_++;
    Allocate(txn.addr, now);
  }
  PageEntry& page = pages_[set];

  if (txn.is_writeback) {
    // SRAM tags: no probe read needed; the write installs the block.
    if (page.present & bit) {
      block_hits_++;
    } else {
      block_misses_++;
    }
    page.present |= bit;
    page.dirty |= bit;
    SendHbm(kPostedOp, HbmAddr(set, block), /*is_write=*/true, now);
    FreeTxn(txn);
    return;
  }

  if (page.present & bit) {
    block_hits_++;
    txn.state = kBlockFetch;  // data comes from HBM
    SendHbm(TxnIndex(txn), HbmAddr(set, block), /*is_write=*/false, now);
    return;
  }
  // Footprint fetch: bring only the demanded block.
  block_misses_++;
  page.present |= bit;
  txn.state = kBlockFetch;
  txn.aux = 1;  // fill HBM copy after the fetch
  SendMm(TxnIndex(txn), txn.addr, /*is_write=*/false, now);
}

void FootprintCacheController::OnDeviceComplete(Txn& txn, bool from_hbm,
                                                const DramCompletion& c,
                                                Cycle now) {
  NotifyServeRead(txn,
                  from_hbm ? ServeSource::kCache : ServeSource::kMainMemory);
  CompleteRead(txn, c.done);
  if (!from_hbm && txn.aux == 1) {
    // Install the fetched block into the page's HBM frame.
    SendHbm(kPostedOp, HbmAddr(SetOf(txn.addr), BlockOf(txn.addr)),
            /*is_write=*/true, now);
  }
  FreeTxn(txn);
}

void FootprintCacheController::ExportOwnStats(StatSet& stats) const {
  stats.Counter("ctrl.cache_hits") = block_hits_;
  stats.Counter("ctrl.cache_misses") = block_misses_ + page_misses_;
  stats.Counter("ctrl.block_misses") = block_misses_;
  stats.Counter("ctrl.page_misses") = page_misses_;
  stats.Counter("ctrl.page_evictions") = page_evictions_;
  stats.Counter("ctrl.dirty_blocks_written_back") = dirty_blocks_written_back_;
}

void FootprintCacheController::SnapshotPolicy(ser::Writer& w) const {
  w.Section("fp");
  w.U64(pages_.size());
  for (const PageEntry& e : pages_) {
    w.U64(e.tag);
    w.U64(e.present);
    w.U64(e.dirty);
    w.Bool(e.valid);
  }
  w.U64(block_hits_);
  w.U64(block_misses_);
  w.U64(page_misses_);
  w.U64(page_evictions_);
  w.U64(dirty_blocks_written_back_);
}

void FootprintCacheController::RestorePolicy(ser::Reader& r) {
  r.Section("fp");
  if (r.SeqLen(25) != pages_.size()) {
    throw ser::SerializeError("footprint page table size mismatch");
  }
  for (PageEntry& e : pages_) {
    e.tag = r.U64();
    e.present = r.U64();
    e.dirty = r.U64();
    e.valid = r.Bool();
  }
  block_hits_ = r.U64();
  block_misses_ = r.U64();
  page_misses_ = r.U64();
  page_evictions_ = r.U64();
  dirty_blocks_written_back_ = r.U64();
}

}  // namespace redcache
