// Coarse-grained footprint cache baseline.
//
// The paper's introduction contrasts fine-grained caches with
// coarse-grained designs (Unison/Footprint/tagless caches, refs [4],[6]-
// [9]) that manage kilobyte pages so the tag array fits on die. This
// controller models that class: direct-mapped 2 KiB pages, SRAM tags (no
// probe traffic — the coarse grain's big win), a per-page presence bitmap
// so only touched blocks are fetched (footprint caching), and dirty-block
// writeback on page eviction. RedCache targets exactly the workloads where
// this design loses to fine-grained management.
#pragma once

#include <vector>

#include "dramcache/controller.hpp"

namespace redcache {

class FootprintCacheController : public ControllerBase {
 public:
  /// `page_bytes` must be a multiple of the block size.
  FootprintCacheController(MemControllerConfig cfg,
                           std::uint64_t page_bytes = 2048);

  const char* name() const override { return "footprint"; }

 protected:
  void StartTxn(Txn& txn, Cycle now) override;
  void OnDeviceComplete(Txn& txn, bool from_hbm, const DramCompletion& c,
                        Cycle now) override;
  void ExportOwnStats(StatSet& stats) const override;
  void SnapshotPolicy(ser::Writer& w) const override;
  void RestorePolicy(ser::Reader& r) override;

 private:
  struct PageEntry {
    std::uint64_t tag = 0;
    std::uint64_t present = 0;  ///< bitmap, bit i = block i resident
    std::uint64_t dirty = 0;
    bool valid = false;
  };

  std::uint64_t SetOf(Addr addr) const { return (addr / page_bytes_) % sets_; }
  std::uint64_t TagOf(Addr addr) const { return addr / page_bytes_ / sets_; }
  std::uint32_t BlockOf(Addr addr) const {
    return static_cast<std::uint32_t>((addr % page_bytes_) / kBlockBytes);
  }
  Addr HbmAddr(std::uint64_t set, std::uint32_t block) const {
    return set * page_bytes_ + Addr{block} * kBlockBytes;
  }
  Addr PageAddr(const PageEntry& e, std::uint64_t set) const {
    return (e.tag * sets_ + set) * page_bytes_;
  }

  /// Evict the resident page of `set` (writing back dirty blocks) and
  /// allocate `addr`'s page.
  void Allocate(Addr addr, Cycle now);

  std::uint64_t page_bytes_;
  std::uint32_t blocks_per_page_;
  std::uint64_t sets_;
  std::vector<PageEntry> pages_;

  std::uint64_t block_hits_ = 0;
  std::uint64_t block_misses_ = 0;   ///< page present, block absent
  std::uint64_t page_misses_ = 0;
  std::uint64_t page_evictions_ = 0;
  std::uint64_t dirty_blocks_written_back_ = 0;
};

}  // namespace redcache
