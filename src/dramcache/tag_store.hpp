// Direct-mapped DRAM-cache metadata.
//
// Alloy-style caches keep tags *inside* the DRAM rows (TAD); the controller
// cannot consult them without a DRAM read. This class is the simulator-side
// mirror of that in-DRAM state: policies update it when the corresponding
// DRAM traffic is issued, and every timing/bandwidth cost of reaching the
// real tags is charged through the DRAM model (the probe reads).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitops.hpp"
#include "common/serialize.hpp"
#include "common/types.hpp"

namespace redcache {

class DirectMappedTags {
 public:
  struct Line {
    std::uint64_t tag = 0;
    std::uint8_t r_count = 0;  ///< reuse count (saturating, tag/ECC byte)
    bool valid = false;
    bool dirty = false;
    /// Installed by a writeback rather than a demand fetch. Such fills are
    /// often trailing stores of finished blocks; the alpha feedback loop
    /// excludes them from its dead-fill statistics.
    bool write_filled = false;
  };

  /// `capacity_bytes` of data, organized as `line_blocks` 64 B blocks per
  /// line (1 for the fine-grained caches; 2/4 for the granularity study).
  DirectMappedTags(std::uint64_t capacity_bytes, std::uint32_t line_blocks)
      : line_blocks_(line_blocks),
        line_bytes_(std::uint64_t{line_blocks} * kBlockBytes),
        num_sets_(capacity_bytes / line_bytes_),
        lines_(num_sets_) {}

  std::uint64_t num_sets() const { return num_sets_; }
  std::uint32_t line_blocks() const { return line_blocks_; }
  std::uint64_t line_bytes() const { return line_bytes_; }

  std::uint64_t SetOf(Addr addr) const {
    return (addr / line_bytes_) % num_sets_;
  }
  std::uint64_t TagOf(Addr addr) const { return addr / line_bytes_ / num_sets_; }

  Line& line(std::uint64_t set) { return lines_[set]; }
  const Line& line(std::uint64_t set) const { return lines_[set]; }

  bool Hit(Addr addr) const {
    const Line& l = lines_[SetOf(addr)];
    return l.valid && l.tag == TagOf(addr);
  }

  /// Main-memory address of the line currently stored in `set`.
  Addr VictimAddr(std::uint64_t set) const {
    return (lines_[set].tag * num_sets_ + set) * line_bytes_;
  }

  /// Address *within the HBM device* used for timing: the set's physical
  /// location, plus the block offset the request targets within the line.
  Addr HbmAddr(std::uint64_t set, Addr demand_addr) const {
    const Addr offset = demand_addr % line_bytes_;
    return set * line_bytes_ + BlockAlign(offset);
  }

  /// Increment a line's saturating r-count and return the new value.
  std::uint32_t BumpRcount(std::uint64_t set) {
    Line& l = lines_[set];
    if (l.r_count != 0xff) ++l.r_count;
    return l.r_count;
  }

  void Snapshot(ser::Writer& w) const {
    w.Section("dmtags");
    w.U64(lines_.size());
    // 12-byte records via a bulk span — see sram/cache.hpp.
    std::uint8_t* p = w.Raw(12 * lines_.size());
    for (const Line& l : lines_) {
      ser::PutU64(p, l.tag);
      p[8] = l.r_count;
      p[9] = l.valid ? 1 : 0;
      p[10] = l.dirty ? 1 : 0;
      p[11] = l.write_filled ? 1 : 0;
      p += 12;
    }
  }
  void Restore(ser::Reader& r) {
    r.Section("dmtags");
    if (r.SeqLen(12) != lines_.size()) {
      throw ser::SerializeError("tag store geometry mismatch");
    }
    const std::uint8_t* p = r.Raw(12 * lines_.size());
    for (Line& l : lines_) {
      l.tag = ser::GetU64(p);
      l.r_count = p[8];
      l.valid = p[9] != 0;
      l.dirty = p[10] != 0;
      l.write_filled = p[11] != 0;
      p += 12;
    }
  }

 private:
  std::uint32_t line_blocks_;
  std::uint64_t line_bytes_;
  std::uint64_t num_sets_;
  std::vector<Line> lines_;
};

}  // namespace redcache
