// Banshee-style frequency-gated page-granularity DRAM cache.
//
// Models the class of SW/HW-managed page caches (Banshee, HPCA'17-style)
// whose tags live in SRAM/TLB state, so lookups cost no DRAM traffic, and
// whose replacement is *frequency based*: a candidate page only displaces
// the resident page of its set once it has proven (via a per-set challenger
// counter) that it is accessed more often. That sampling gate is Banshee's
// answer to page-granularity cache thrash — hot pages stay put, streaming
// pages never earn a slot.
//
// Structure per 2 KiB set: the resident page's tag, per-block present and
// dirty bitmaps (footprint caching: only touched blocks occupy HBM), a
// saturating access-frequency counter, and one challenger {tag, count}
// slot updated CLOCK-style on page misses. Reads install their block on
// the main-memory fetch's completion; CPU writebacks install directly on a
// page hit and bypass to main memory on a page miss (writes never trigger
// replacement). Sets with in-flight reads are pinned: replacement defers
// until the read drains so a served-from-cache decision can never be
// invalidated mid-flight.
#pragma once

#include <vector>

#include "dramcache/controller.hpp"

namespace redcache {

class BansheeController : public ControllerBase {
 public:
  explicit BansheeController(MemControllerConfig cfg,
                             std::uint64_t page_bytes = 2048);

  const char* name() const override { return "banshee"; }
  void SampleTelemetry(StatSet& out) const override;

 protected:
  void StartTxn(Txn& txn, Cycle now) override;
  void OnDeviceComplete(Txn& txn, bool from_hbm, const DramCompletion& c,
                        Cycle now) override;
  void ExportOwnStats(StatSet& stats) const override;
  void SnapshotPolicy(ser::Writer& w) const override;
  void RestorePolicy(ser::Reader& r) override;

 private:
  struct PageEntry {
    std::uint64_t tag = 0;
    std::uint64_t present = 0;  ///< bitmap, bit i = block i resident in HBM
    std::uint64_t dirty = 0;
    std::uint8_t freq = 0;      ///< saturating access-frequency counter
    bool valid = false;
  };
  struct Challenger {
    std::uint64_t tag = 0;
    std::uint8_t count = 0;
  };

  std::uint64_t SetOf(Addr addr) const { return (addr / page_bytes_) % sets_; }
  std::uint64_t TagOf(Addr addr) const { return addr / page_bytes_ / sets_; }
  std::uint32_t BlockOf(Addr addr) const {
    return static_cast<std::uint32_t>((addr % page_bytes_) / kBlockBytes);
  }
  Addr HbmAddr(std::uint64_t set, std::uint32_t block) const {
    return set * page_bytes_ + Addr{block} * kBlockBytes;
  }
  Addr PageAddr(const PageEntry& e, std::uint64_t set) const {
    return (e.tag * sets_ + set) * page_bytes_;
  }

  void BumpFreq(PageEntry& e) {
    if (e.freq != 0xff) ++e.freq;
  }
  /// Page-miss bookkeeping for `addr`: update the set's challenger slot and
  /// return true when the frequency gate says the resident page should be
  /// replaced now (caller still checks the pin).
  bool ChallengerWins(std::uint64_t set, Addr addr);
  /// Evict the resident page of `set` (verify-notifying every present
  /// block) and claim it for `addr`'s page with an empty footprint.
  void ReplacePage(std::uint64_t set, Addr addr, Cycle now);
  /// Halve every frequency/challenger counter (deterministic aging).
  void DecayFrequencies();

  std::uint64_t ResidentBlocks() const;

  std::uint64_t page_bytes_;
  std::uint32_t blocks_per_page_;
  std::uint64_t sets_;
  std::vector<PageEntry> pages_;
  std::vector<Challenger> challengers_;
  std::vector<std::uint32_t> pins_;  ///< in-flight reads referencing the set

  std::uint64_t requests_since_decay_ = 0;

  std::uint64_t read_hits_ = 0;       ///< block present, served from HBM
  std::uint64_t write_hits_ = 0;      ///< page hit, block present
  std::uint64_t misses_ = 0;
  std::uint64_t fills_ = 0;           ///< blocks installed (read or write)
  std::uint64_t evictions_ = 0;       ///< present blocks displaced
  std::uint64_t victim_writebacks_ = 0;
  std::uint64_t page_replacements_ = 0;
  std::uint64_t replacements_blocked_ = 0;  ///< gate won but the set was pinned
  std::uint64_t read_bypasses_ = 0;   ///< page-miss reads served without a slot
  std::uint64_t write_bypasses_ = 0;  ///< page-miss writebacks routed to MM
  std::uint64_t install_races_ = 0;   ///< fetch completed after a write install
};

}  // namespace redcache
