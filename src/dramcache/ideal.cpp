#include "dramcache/ideal.hpp"

#include "dramcache/policy_registry.hpp"

namespace redcache {

REDCACHE_REGISTER_POLICY(
    ideal, {.name = "IDEAL",
            .summary = "perfect HBM cache: every block resident, 100% hits",
            .family = "bound",
            .differential = true,
            .golden = false,
            .sweep = false,
            .make = [](const MemControllerConfig& cfg) {
              return std::make_unique<IdealController>(cfg);
            }});

namespace {
enum State { kProbe = 0 };
}  // namespace

IdealController::IdealController(MemControllerConfig cfg)
    : ControllerBase((cfg.has_hbm = true, cfg)) {}

void IdealController::StartTxn(Txn& txn, Cycle now) {
  // IDEAL holds the whole working set: index by main-memory address modulo
  // the device capacity (conflicts never occur by construction).
  txn.state = kProbe;
  SendHbm(TxnIndex(txn), txn.addr, /*is_write=*/false, now);
}

void IdealController::OnDeviceComplete(Txn& txn, bool /*from_hbm*/,
                                       const DramCompletion& c, Cycle now) {
  if (txn.is_writeback) {
    // Tag check done; now write the data (bus reversal charged by the
    // DRAM model). IDEAL holds every block, so the write lands in the
    // cache copy: report it as a dirty fill (install-or-update).
    NotifyFill(txn.addr, /*dirty=*/true);
    SendHbm(kPostedOp, txn.addr, /*is_write=*/true, now);
    FreeTxn(txn);
    return;
  }
  // Never-written blocks are served from the (identical) main-memory image.
  NotifyServeRead(txn, ServeSource::kAny);
  CompleteRead(txn, c.done);
  FreeTxn(txn);
}

}  // namespace redcache
