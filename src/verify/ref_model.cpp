#include "verify/ref_model.hpp"

#include <cinttypes>
#include <cstdio>

namespace redcache {

namespace {

std::string Describe(const char* what, Addr block) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s (block 0x%" PRIx64 ")", what, block);
  return buf;
}

}  // namespace

void RefMemoryModel::Report(std::string what) {
  divergences_.push_back({std::move(what)});
}

void RefMemoryModel::OnWritebackSubmitted(Addr block) {
  events_++;
  BlockState& st = State(block);
  const std::uint64_t v = ++next_version_;
  st.pending.push_back(v);
  st.latest = v;
}

std::uint64_t RefMemoryModel::Consume(BlockState& st, Addr block,
                                      const char* site) {
  if (st.pending.empty()) {
    Report(Describe(site, block) + ": write consumed but none pending");
    return 0;
  }
  const std::uint64_t v = st.pending.front();
  st.pending.pop_front();
  if (v > st.consumed_max) st.consumed_max = v;
  return v;
}

void RefMemoryModel::OnFill(Addr block, bool dirty) {
  events_++;
  BlockState& st = State(block);
  st.cache_version = dirty ? Consume(st, block, "dirty fill") : st.mm_version;
  st.cached = true;
  st.cache_dirty = dirty;
}

void RefMemoryModel::OnCacheWrite(Addr block) {
  events_++;
  BlockState& st = State(block);
  if (!st.cached) {
    Report(Describe("write hit on a block the model holds absent", block));
  }
  st.cache_version = Consume(st, block, "cache write");
  st.cached = true;
  st.cache_dirty = true;
}

void RefMemoryModel::OnMmWrite(Addr block) {
  events_++;
  BlockState& st = State(block);
  const std::uint64_t v = Consume(st, block, "main-memory write");
  if (v > st.mm_version) st.mm_version = v;
}

void RefMemoryModel::OnVictimWriteback(Addr block) {
  events_++;
  BlockState& st = State(block);
  if (!st.cached) {
    Report(Describe("victim writeback of a non-resident block", block));
    return;
  }
  if (st.cache_version > st.mm_version) st.mm_version = st.cache_version;
  st.cached = false;
  st.cache_dirty = false;
}

void RefMemoryModel::OnInvalidate(Addr block) {
  events_++;
  BlockState& st = State(block);
  if (!st.cached) {
    Report(Describe("invalidate of a non-resident block", block));
    return;
  }
  // Dropping a dirty copy is a lost write unless main memory already has
  // this version or a newer write exists (consumed elsewhere or pending).
  if (st.cache_dirty && st.cache_version > st.mm_version &&
      st.cache_version >= st.latest) {
    Report(Describe("lost write: newest dirty copy invalidated without a "
                    "writeback",
                    block));
  }
  st.cached = false;
  st.cache_dirty = false;
}

void RefMemoryModel::OnServeRead(Addr block, ServeSource src) {
  events_++;
  BlockState& st = State(block);
  switch (src) {
    case ServeSource::kCache:
    case ServeSource::kRcuRam:
      if (!st.cached) {
        Report(Describe("read served from the cache but the model holds the "
                        "block absent",
                        block) +
               " via " + ToString(src));
        return;
      }
      if (st.cache_version < st.consumed_max) {
        Report(Describe("stale cache serve: an applied write is newer than "
                        "the cached copy",
                        block));
      }
      return;
    case ServeSource::kMainMemory:
      if (st.mm_version < st.consumed_max) {
        Report(Describe("stale main-memory serve: an applied write is newer "
                        "than the main-memory copy",
                        block));
      }
      return;
    case ServeSource::kAny: {
      const std::uint64_t effective =
          st.cached && st.cache_version > st.mm_version ? st.cache_version
                                                        : st.mm_version;
      if (effective < st.consumed_max) {
        Report(Describe("stale serve: no copy holds the newest applied write",
                        block));
      }
      return;
    }
  }
}

void RefMemoryModel::CheckDrained() {
  for (const auto& [block, st] : blocks_) {
    if (!st.pending.empty()) {
      Report(Describe("drain: submitted writeback was never consumed", block));
      continue;
    }
    const std::uint64_t newest =
        st.cached && st.cache_version > st.mm_version ? st.cache_version
                                                      : st.mm_version;
    if (newest < st.latest) {
      Report(Describe("drain: newest version lost (neither cached nor in "
                      "main memory)",
                      block));
    }
  }
}

}  // namespace redcache
