#include "verify/fuzz_trace.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace redcache {

namespace {

/// Blocks per DRAM row at the trace's eye level; enough consecutive blocks
/// to stay in one row on every geometry the presets use.
constexpr std::uint32_t kRowRunBlocks = 16;

}  // namespace

FuzzTraceSource::FuzzTraceSource(const FuzzTraceParams& p) : seed_(p.seed) {
  const std::uint32_t cores = std::max<std::uint32_t>(1, p.cores);
  const std::uint32_t region_pages = std::max<std::uint32_t>(2, p.region_pages);
  const std::uint32_t hot_pages =
      std::min(std::max<std::uint32_t>(1, p.hot_pages), region_pages);
  const Addr region_bytes = Addr{region_pages} * kPageBytes;

  streams_.resize(cores);
  cursors_.assign(cores, 0);

  Addr max_addr = region_bytes;
  for (std::uint32_t core = 0; core < cores; ++core) {
    Rng rng(Mix64(seed_ ^ (0x9e3779b97f4a7c15ULL * (core + 1))));
    auto& stream = streams_[core];
    stream.reserve(p.refs_per_core);

    const std::uint32_t t_hot = p.hot_weight;
    const std::uint32_t t_burst = t_hot + p.burst_weight;
    const std::uint32_t t_conflict = t_burst + p.conflict_weight;
    const std::uint32_t t_storm = t_conflict + p.row_storm_weight;

    while (stream.size() < p.refs_per_core) {
      MemRef ref;
      ref.gap = 1 + static_cast<std::uint32_t>(rng.Below(4));
      if (p.idle_every != 0 && !stream.empty() &&
          stream.size() % p.idle_every == 0) {
        ref.gap += p.idle_gap_cycles;
      }
      ref.is_write = rng.Below(256) < p.write_weight;

      const std::uint64_t pick = rng.Below(256);
      if (pick < t_hot) {
        // Repeated traffic over the shared hot pages.
        const Addr page = rng.Below(hot_pages);
        ref.addr = page * kPageBytes + rng.Below(kBlocksPerPage) * kBlockBytes;
        stream.push_back(ref);
      } else if (pick < t_burst) {
        // Write burst to one block: pending-version queue depth, gamma
        // straddle, cache-write / RCU-remove ordering.
        const Addr block =
            rng.Below(hot_pages * kBlocksPerPage) * Addr{kBlockBytes};
        const std::uint32_t n = 2 + static_cast<std::uint32_t>(rng.Below(6));
        for (std::uint32_t i = 0;
             i < n && stream.size() < p.refs_per_core; ++i) {
          MemRef w = ref;
          w.addr = block;
          w.is_write = (i + 1 != n) || rng.Below(256) < 192;
          w.gap = 1;
          stream.push_back(w);
        }
      } else if (pick < t_conflict) {
        // Two blocks a direct-mapped alias apart, touched back to back.
        const Addr base =
            rng.Below(region_bytes / kBlockBytes) * Addr{kBlockBytes};
        const Addr alias = base + p.conflict_stride_bytes;
        max_addr = std::max(max_addr, alias + kBlockBytes);
        MemRef a = ref;
        a.addr = base;
        stream.push_back(a);
        if (stream.size() < p.refs_per_core) {
          MemRef b = ref;
          b.addr = alias;
          b.is_write = rng.Below(256) < 128;
          b.gap = 1;
          stream.push_back(b);
        }
      } else if (pick < t_storm) {
        // Sequential reads inside one row: parks a run of RCU updates that
        // a later same-row write can piggyback on.
        const Addr start =
            rng.Below(region_bytes / kBlockBytes) * Addr{kBlockBytes};
        const std::uint32_t n =
            4 + static_cast<std::uint32_t>(rng.Below(kRowRunBlocks - 3));
        for (std::uint32_t i = 0;
             i < n && stream.size() < p.refs_per_core; ++i) {
          MemRef r = ref;
          r.addr = start + Addr{i} * kBlockBytes;
          r.is_write = (i == n - 1) && rng.Below(256) < 96;
          r.gap = 1;
          stream.push_back(r);
        }
      } else {
        // Cold single visit somewhere in the region (alpha bypass food).
        ref.addr = rng.Below(region_bytes / kBlockBytes) * Addr{kBlockBytes};
        stream.push_back(ref);
      }
    }
  }
  footprint_ = max_addr;
}

bool FuzzTraceSource::Next(std::uint32_t core, MemRef& out) {
  if (core >= streams_.size()) return false;
  auto& cursor = cursors_[core];
  if (cursor >= streams_[core].size()) return false;
  out = streams_[core][cursor++];
  return true;
}

std::string FuzzTraceSource::name() const {
  return "fuzz-" + std::to_string(seed_);
}

}  // namespace redcache
