// Functional reference memory model for the shadow checker.
//
// The timing simulator carries no data payloads, so the model tracks data
// *versions*: every CPU writeback to a block mints a new version, and the
// policy's verification events (verify_hooks.hpp) move versions between
// three places — the in-flight writeback queue, the HBM cache copy and the
// main-memory copy. A policy is data-correct iff
//   * every consumed writeback pops the oldest pending version (no spurious
//     or duplicated device writes),
//   * no read is served from a copy older than any version the policy has
//     already applied (no stale hits, no stale fills),
//   * no dirty copy holding the newest version is dropped without reaching
//     main memory (no lost writes), and
//   * at drain time the newest version of every block is resident in the
//     cache or in main memory.
//
// Two legitimately racy windows are tolerated: a read may be served before
// a *still-pending* writeback to the same block is applied (the DRAM-level
// request order decides), and device-level reorderings between independent
// blocks are invisible to the model.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "dramcache/verify_hooks.hpp"

namespace redcache {

class RefMemoryModel {
 public:
  /// A divergence between the policy's events and the reference model.
  struct Divergence {
    std::string what;
  };

  // --- CPU-side events (fed by the ShadowChecker decorator) ---------------
  void OnWritebackSubmitted(Addr block);

  // --- policy events (VerifySink forwarding) ------------------------------
  void OnFill(Addr block, bool dirty);
  void OnCacheWrite(Addr block);
  void OnMmWrite(Addr block);
  void OnVictimWriteback(Addr block);
  void OnInvalidate(Addr block);
  void OnServeRead(Addr block, ServeSource src);

  /// Drain-time audit: call once the controller reports Idle. Verifies that
  /// every pending writeback was consumed and that the newest version of
  /// every block survives in the cache or main memory.
  void CheckDrained();

  const std::vector<Divergence>& divergences() const { return divergences_; }
  std::uint64_t events() const { return events_; }
  std::uint64_t blocks_tracked() const { return blocks_.size(); }

 private:
  struct BlockState {
    std::deque<std::uint64_t> pending;  ///< submitted, unconsumed versions
    std::uint64_t latest = 0;           ///< newest version ever submitted
    std::uint64_t consumed_max = 0;     ///< newest version the policy applied
    std::uint64_t cache_version = 0;
    std::uint64_t mm_version = 0;
    bool cached = false;
    bool cache_dirty = false;
  };

  BlockState& State(Addr block) { return blocks_[BlockAlign(block)]; }
  /// Pop the oldest pending writeback; reports a divergence and returns 0
  /// when none is pending (a spurious device write).
  std::uint64_t Consume(BlockState& st, Addr block, const char* site);
  void Report(std::string what);

  std::unordered_map<Addr, BlockState> blocks_;
  std::uint64_t next_version_ = 0;
  std::uint64_t events_ = 0;
  std::vector<Divergence> divergences_;
};

}  // namespace redcache
