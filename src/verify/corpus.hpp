// Regression corpus for the differential fuzzer.
//
// A corpus case is a named, replayable DifferentialParams: the fuzz-trace
// generator parameters plus the policy list and cycle cap, serialized as a
// line-based `key = value` file. Two sources feed the corpus:
//
//   * hand-crafted adversarial cases checked into tests/verify/corpus/
//     (one per policy family's known worst pattern), and
//   * counterexamples the fuzzer finds: when a campaign trace fails,
//     PersistCounterexample writes the trace file so the failure replays
//     as a named regression test forever after.
//
// The format is deliberately trivial — `#` comments, one field per line —
// so a failing case can be read, minimized and re-run by hand.
#pragma once

#include <string>
#include <vector>

#include "verify/differential.hpp"

namespace redcache {

struct CorpusCase {
  std::string name;  ///< file stem, e.g. "banshee_page_thrash"
  std::string note;  ///< free-form description (file header comment)
  DifferentialParams params;
};

/// Serialize `c` into the corpus text format.
std::string SerializeCorpusCase(const CorpusCase& c);

/// Parse the corpus text format. Unknown keys are errors (they indicate a
/// format skew between the writer and this reader). Missing keys keep the
/// field's default. Returns false and sets `error` on malformed input.
bool ParseCorpusCase(const std::string& text, CorpusCase& out,
                     std::string& error);

/// Read one `.trace` corpus file; the case name is the file stem.
bool ReadCorpusFile(const std::string& path, CorpusCase& out,
                    std::string& error);

/// Write `c` to `<dir>/<c.name>.trace`. Returns the path, or "" on failure.
std::string WriteCorpusFile(const std::string& dir, const CorpusCase& c);

/// All `.trace` files under `dir`, sorted by name (deterministic replay
/// order). Missing or empty directories yield an empty list.
std::vector<std::string> ListCorpusFiles(const std::string& dir);

/// Persist a fuzzer-found failure as a replayable corpus case named
/// "fuzz_seed<seed>". `errors` (the differential failure messages) are
/// embedded in the header comment. Returns the written path, "" on failure.
std::string PersistCounterexample(const DifferentialParams& params,
                                  const std::vector<std::string>& errors,
                                  const std::string& dir);

}  // namespace redcache
