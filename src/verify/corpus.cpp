#include "verify/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "dramcache/policy_registry.hpp"

namespace redcache {

namespace {

std::string Trim(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Space-separated policy list; names themselves never contain spaces.
std::string JoinPolicies(const std::vector<std::string>& policies) {
  std::string out;
  for (const std::string& p : policies) {
    if (!out.empty()) out += ' ';
    out += p;
  }
  return out;
}

std::vector<std::string> SplitPolicies(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

SimPreset PresetByName(const std::string& name) {
  for (SimPreset p : {EvalPreset(), PaperPreset()}) {
    if (name == p.name) return p;
  }
  throw std::invalid_argument("unknown preset '" + name + "'");
}

}  // namespace

std::string SerializeCorpusCase(const CorpusCase& c) {
  std::ostringstream out;
  out << "# redcache differential corpus case: " << c.name << "\n";
  std::istringstream note(c.note);
  for (std::string line; std::getline(note, line);) {
    out << "# " << line << "\n";
  }
  const FuzzTraceParams& t = c.params.trace;
  out << "seed = " << t.seed << "\n"
      << "cores = " << t.cores << "\n"
      << "refs_per_core = " << t.refs_per_core << "\n"
      << "region_pages = " << t.region_pages << "\n"
      << "hot_pages = " << t.hot_pages << "\n"
      << "conflict_stride_bytes = " << t.conflict_stride_bytes << "\n"
      << "hot_weight = " << t.hot_weight << "\n"
      << "burst_weight = " << t.burst_weight << "\n"
      << "conflict_weight = " << t.conflict_weight << "\n"
      << "row_storm_weight = " << t.row_storm_weight << "\n"
      << "write_weight = " << t.write_weight << "\n"
      << "idle_every = " << t.idle_every << "\n"
      << "idle_gap_cycles = " << t.idle_gap_cycles << "\n"
      << "preset = " << c.params.preset.name << "\n"
      << "max_cycles = " << c.params.max_cycles << "\n"
      << "policies = " << JoinPolicies(c.params.policies) << "\n";
  return out.str();
}

bool ParseCorpusCase(const std::string& text, CorpusCase& out,
                     std::string& error) {
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    lineno++;
    const std::string t = Trim(line);
    if (t.empty() || t[0] == '#') continue;
    const std::size_t eq = t.find('=');
    if (eq == std::string::npos) {
      error = "line " + std::to_string(lineno) + ": expected 'key = value'";
      return false;
    }
    const std::string key = Trim(t.substr(0, eq));
    const std::string value = Trim(t.substr(eq + 1));
    FuzzTraceParams& tr = out.params.trace;
    const auto u64 = [&value]() { return std::stoull(value); };
    const auto u32 = [&value]() {
      return static_cast<std::uint32_t>(std::stoul(value));
    };
    try {
      if (key == "seed") tr.seed = u64();
      else if (key == "cores") tr.cores = u32();
      else if (key == "refs_per_core") tr.refs_per_core = u32();
      else if (key == "region_pages") tr.region_pages = u32();
      else if (key == "hot_pages") tr.hot_pages = u32();
      else if (key == "conflict_stride_bytes") tr.conflict_stride_bytes = u64();
      else if (key == "hot_weight") tr.hot_weight = u32();
      else if (key == "burst_weight") tr.burst_weight = u32();
      else if (key == "conflict_weight") tr.conflict_weight = u32();
      else if (key == "row_storm_weight") tr.row_storm_weight = u32();
      else if (key == "write_weight") tr.write_weight = u32();
      else if (key == "idle_every") tr.idle_every = u32();
      else if (key == "idle_gap_cycles") tr.idle_gap_cycles = u32();
      else if (key == "max_cycles") out.params.max_cycles = u64();
      else if (key == "preset") {
        if (value != out.params.preset.name) {
          out.params.preset = PresetByName(value);
        }
      } else if (key == "policies") {
        out.params.policies = SplitPolicies(value);
      } else {
        error = "line " + std::to_string(lineno) + ": unknown key '" + key +
                "'";
        return false;
      }
    } catch (const std::exception& e) {
      error = "line " + std::to_string(lineno) + ": " + e.what();
      return false;
    }
  }
  return true;
}

bool ReadCorpusFile(const std::string& path, CorpusCase& out,
                    std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  out.name = std::filesystem::path(path).stem().string();
  return ParseCorpusCase(text.str(), out, error);
}

std::string WriteCorpusFile(const std::string& dir, const CorpusCase& c) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + c.name + ".trace";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return "";
  out << SerializeCorpusCase(c);
  return out ? path : "";
}

std::vector<std::string> ListCorpusFiles(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".trace") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string PersistCounterexample(const DifferentialParams& params,
                                  const std::vector<std::string>& errors,
                                  const std::string& dir) {
  CorpusCase c;
  c.name = "fuzz_seed" + std::to_string(params.trace.seed);
  std::string note = "fuzzer-found counterexample; failures at capture:\n";
  for (const std::string& e : errors) note += "  " + e + "\n";
  c.note = std::move(note);
  c.params = params;
  return WriteCorpusFile(dir, c);
}

}  // namespace redcache
