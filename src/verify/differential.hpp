// Differential fuzz driver: run one adversarial trace through several
// cache policies, each wrapped in a ShadowChecker, and cross-check the
// outcomes.
//
// Per policy it verifies that the run completed, that the checker and
// reference model saw no divergence, that the drain audit passes, and that
// the counters conserve traffic:
//   core.refs  == l1_hits + l2_hits + l3_hits + misses
//   ctrl.reads == core.misses          (every L3 miss reaches the controller)
//   reads checked by the shadow == ctrl.reads (every read completed once)
//   ctrl.fills == ctrl.evictions + ctrl.resident_lines   (where exported)
// Across policies it verifies every one consumed the identical reference
// stream (same core.refs) — the data-equality proxy in a simulator that
// carries no data payloads.
//
// The policy list defaults to every registry entry whose PolicyInfo opts
// into differential testing, so a newly registered plugin joins the N-policy
// harness without touching this file.
#pragma once

#include <string>
#include <vector>

#include "sim/presets.hpp"
#include "verify/fuzz_trace.hpp"

namespace redcache {

/// Registry policies the differential fuzzer drives by default: every
/// registered policy with `PolicyInfo::differential == true`.
std::vector<std::string> DifferentialPolicies();

struct DifferentialParams {
  FuzzTraceParams trace;
  SimPreset preset = EvalPreset();
  std::vector<std::string> policies = DifferentialPolicies();
  Cycle max_cycles = 80'000'000;
  /// 0 or 1 = classic single-stream run. >= 2 co-schedules that many
  /// independent fuzz streams (seeds trace.seed, trace.seed+1, ...) through
  /// a MixTraceSource with tenant accounting attached, and adds per-tenant
  /// conservation checks (tenant counters must partition the totals).
  std::uint32_t tenants = 0;
};

struct DifferentialOutcome {
  std::string policy;
  bool completed = false;
  std::uint64_t core_refs = 0;
  std::uint64_t divergences = 0;
  std::uint64_t reads_checked = 0;
  std::uint64_t model_events = 0;
  /// Per-tenant retired references (multi-tenant runs only).
  std::vector<std::uint64_t> tenant_refs;
};

struct DifferentialResult {
  std::vector<DifferentialOutcome> outcomes;
  /// Human-readable failures (divergences, conservation violations, ...).
  std::vector<std::string> errors;
  bool ok() const { return errors.empty(); }
  std::uint64_t total_model_events() const {
    std::uint64_t n = 0;
    for (const auto& o : outcomes) n += o.model_events;
    return n;
  }
};

/// Run `params.trace` through every policy in `params.policies` under a
/// ShadowChecker and collect all failures (never throws on divergence).
DifferentialResult RunDifferential(const DifferentialParams& params);

}  // namespace redcache
