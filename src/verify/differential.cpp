#include "verify/differential.hpp"

#include <memory>
#include <utility>

#include "dramcache/policy_registry.hpp"
#include "sim/system.hpp"
#include "verify/shadow_checker.hpp"

namespace redcache {

std::vector<std::string> DifferentialPolicies() {
  return PolicyRegistry::Instance().DifferentialNames();
}

namespace {

std::string Where(const std::string& policy, std::uint64_t seed) {
  return policy + "/seed=" + std::to_string(seed) + ": ";
}

}  // namespace

DifferentialResult RunDifferential(const DifferentialParams& params) {
  DifferentialResult result;

  for (const std::string& policy : params.policies) {
    auto checker = std::make_unique<ShadowChecker>(
        MakePolicy(policy, params.preset.mem));
    ShadowChecker* shadow = checker.get();

    FuzzTraceParams tp = params.trace;
    tp.cores = std::min(tp.cores, params.preset.hierarchy.num_cores);
    System system(params.preset.hierarchy, params.preset.core,
                  std::move(checker), std::make_unique<FuzzTraceSource>(tp),
                  /*seed=*/params.trace.seed);
    const RunResult run = system.Run(params.max_cycles);

    const std::string at = Where(policy, params.trace.seed);
    DifferentialOutcome out;
    out.policy = policy;
    out.completed = run.completed;
    if (!run.completed) {
      result.errors.push_back(at + "run hit the cycle limit before draining");
    } else {
      shadow->CheckDrained();
    }

    out.core_refs = run.stats.GetCounter("core.refs");
    out.divergences = shadow->divergence_count();
    out.reads_checked = shadow->reads_checked();
    out.model_events = run.stats.GetCounter("verify.model_events");
    result.outcomes.push_back(out);

    for (const std::string& msg : shadow->divergence_messages()) {
      result.errors.push_back(at + msg);
    }
    if (shadow->divergence_count() > shadow->divergence_messages().size()) {
      result.errors.push_back(
          at + std::to_string(shadow->divergence_count() -
                              shadow->divergence_messages().size()) +
          " further divergences suppressed");
    }

    // Traffic conservation over the exported counters.
    const auto c = [&run](const char* name) {
      return run.stats.GetCounter(name);
    };
    const std::uint64_t refs = c("core.refs");
    const std::uint64_t accounted = c("core.l1_hits") + c("core.l2_hits") +
                                    c("core.l3_hits") + c("core.misses");
    if (refs != accounted) {
      result.errors.push_back(at + "core refs leak: " + std::to_string(refs) +
                              " refs vs " + std::to_string(accounted) +
                              " accounted");
    }
    if (c("ctrl.reads") != c("core.misses")) {
      result.errors.push_back(
          at + "controller saw " + std::to_string(c("ctrl.reads")) +
          " reads but the cores issued " + std::to_string(c("core.misses")) +
          " misses");
    }
    if (run.completed && shadow->reads_checked() != c("ctrl.reads")) {
      result.errors.push_back(
          at + "checker validated " + std::to_string(shadow->reads_checked()) +
          " completions for " + std::to_string(c("ctrl.reads")) + " reads");
    }
    if (run.stats.HasCounter("ctrl.evictions") &&
        run.stats.HasCounter("ctrl.resident_lines") &&
        c("ctrl.fills") != c("ctrl.evictions") + c("ctrl.resident_lines")) {
      result.errors.push_back(
          at + "fill leak: " + std::to_string(c("ctrl.fills")) + " fills vs " +
          std::to_string(c("ctrl.evictions")) + " evictions + " +
          std::to_string(c("ctrl.resident_lines")) + " resident");
    }
  }

  // Every policy must consume the identical reference stream.
  for (std::size_t i = 1; i < result.outcomes.size(); ++i) {
    const auto& a = result.outcomes.front();
    const auto& b = result.outcomes[i];
    if (a.core_refs != b.core_refs) {
      result.errors.push_back(
          Where(b.policy, params.trace.seed) + "processed " +
          std::to_string(b.core_refs) + " refs while " + a.policy +
          " processed " + std::to_string(a.core_refs) +
          " from the same trace");
    }
  }
  return result;
}

}  // namespace redcache
