#include "verify/differential.hpp"

#include <memory>
#include <utility>

#include "dramcache/policy_registry.hpp"
#include "sim/system.hpp"
#include "tenant/accounting.hpp"
#include "tenant/mix_trace.hpp"
#include "verify/shadow_checker.hpp"

namespace redcache {

std::vector<std::string> DifferentialPolicies() {
  return PolicyRegistry::Instance().DifferentialNames();
}

namespace {

std::string Where(const std::string& policy, std::uint64_t seed) {
  return policy + "/seed=" + std::to_string(seed) + ": ";
}

}  // namespace

DifferentialResult RunDifferential(const DifferentialParams& params) {
  DifferentialResult result;

  const std::uint32_t tenants = params.tenants;
  for (const std::string& policy : params.policies) {
    auto checker = std::make_unique<ShadowChecker>(
        MakePolicy(policy, params.preset.mem));
    ShadowChecker* shadow = checker.get();

    FuzzTraceParams tp = params.trace;
    tp.cores = std::min(tp.cores, params.preset.hierarchy.num_cores);
    std::unique_ptr<TraceSource> trace;
    std::unique_ptr<tenant::TenantAccounting> acct;
    if (tenants >= 2) {
      // Independent fuzz streams per tenant, co-scheduled round-robin and
      // rebased into disjoint slices — the adversarial traces now also
      // contend across tenants in the shared cache sets and banks.
      std::vector<std::unique_ptr<TraceSource>> children;
      std::vector<tenant::TenantSpec> specs;
      std::uint64_t max_footprint = 0;
      for (std::uint32_t t = 0; t < tenants; ++t) {
        FuzzTraceParams ctp = tp;
        ctp.seed = tp.seed + t;
        auto child = std::make_unique<FuzzTraceSource>(ctp);
        max_footprint = std::max(max_footprint, child->footprint_bytes());
        children.push_back(std::move(child));
        tenant::TenantSpec spec;
        spec.workload = "fuzz" + std::to_string(t);
        specs.push_back(spec);
      }
      const auto map = tenant::TenantAddressMap::Plan(
          tenant::TenantAddressMap::Mode::kOffset, tenants, max_footprint,
          params.preset.mem.mainmem.geometry.capacity_bytes);
      acct = std::make_unique<tenant::TenantAccounting>(map);
      trace = std::make_unique<tenant::MixTraceSource>(std::move(children),
                                                       std::move(specs), map);
    } else {
      trace = std::make_unique<FuzzTraceSource>(tp);
    }
    System system(params.preset.hierarchy, params.preset.core,
                  std::move(checker), std::move(trace),
                  /*seed=*/params.trace.seed);
    if (acct != nullptr) system.SetTenantAccounting(std::move(acct));
    const RunResult run = system.Run(params.max_cycles);

    const std::string at = Where(policy, params.trace.seed);
    DifferentialOutcome out;
    out.policy = policy;
    out.completed = run.completed;
    if (!run.completed) {
      result.errors.push_back(at + "run hit the cycle limit before draining");
    } else {
      shadow->CheckDrained();
    }

    out.core_refs = run.stats.GetCounter("core.refs");
    out.divergences = shadow->divergence_count();
    out.reads_checked = shadow->reads_checked();
    out.model_events = run.stats.GetCounter("verify.model_events");
    for (std::uint32_t t = 0; t < tenants; ++t) {
      out.tenant_refs.push_back(run.stats.GetCounter(
          "tenant" + std::to_string(t) + ".refs"));
    }
    result.outcomes.push_back(out);

    for (const std::string& msg : shadow->divergence_messages()) {
      result.errors.push_back(at + msg);
    }
    if (shadow->divergence_count() > shadow->divergence_messages().size()) {
      result.errors.push_back(
          at + std::to_string(shadow->divergence_count() -
                              shadow->divergence_messages().size()) +
          " further divergences suppressed");
    }

    // Traffic conservation over the exported counters.
    const auto c = [&run](const char* name) {
      return run.stats.GetCounter(name);
    };
    const std::uint64_t refs = c("core.refs");
    const std::uint64_t accounted = c("core.l1_hits") + c("core.l2_hits") +
                                    c("core.l3_hits") + c("core.misses");
    if (refs != accounted) {
      result.errors.push_back(at + "core refs leak: " + std::to_string(refs) +
                              " refs vs " + std::to_string(accounted) +
                              " accounted");
    }
    if (c("ctrl.reads") != c("core.misses")) {
      result.errors.push_back(
          at + "controller saw " + std::to_string(c("ctrl.reads")) +
          " reads but the cores issued " + std::to_string(c("core.misses")) +
          " misses");
    }
    if (run.completed && shadow->reads_checked() != c("ctrl.reads")) {
      result.errors.push_back(
          at + "checker validated " + std::to_string(shadow->reads_checked()) +
          " completions for " + std::to_string(c("ctrl.reads")) + " reads");
    }
    if (run.stats.HasCounter("ctrl.evictions") &&
        run.stats.HasCounter("ctrl.resident_lines") &&
        c("ctrl.fills") != c("ctrl.evictions") + c("ctrl.resident_lines")) {
      result.errors.push_back(
          at + "fill leak: " + std::to_string(c("ctrl.fills")) + " fills vs " +
          std::to_string(c("ctrl.evictions")) + " evictions + " +
          std::to_string(c("ctrl.resident_lines")) + " resident");
    }

    // Per-tenant conservation: the tenant counters must exactly partition
    // the totals — every ref, controller read/writeback and demand serve
    // attributed to exactly one tenant.
    if (tenants >= 2) {
      const auto tc = [&run](std::uint32_t t, const char* suffix) {
        return run.stats.GetCounter("tenant" + std::to_string(t) + "." +
                                    suffix);
      };
      std::uint64_t trefs = 0, treads = 0, twbs = 0, tserves = 0;
      for (std::uint32_t t = 0; t < tenants; ++t) {
        trefs += tc(t, "refs");
        treads += tc(t, "ctrl.reads");
        twbs += tc(t, "ctrl.writebacks");
        tserves += tc(t, "ctrl.serve_hits") + tc(t, "ctrl.serve_misses");
      }
      if (trefs != refs) {
        result.errors.push_back(at + "tenant refs leak: " +
                                std::to_string(trefs) + " attributed vs " +
                                std::to_string(refs) + " retired");
      }
      if (treads != c("ctrl.reads")) {
        result.errors.push_back(at + "tenant read leak: " +
                                std::to_string(treads) + " attributed vs " +
                                std::to_string(c("ctrl.reads")) + " seen");
      }
      if (twbs != c("ctrl.writebacks")) {
        result.errors.push_back(at + "tenant writeback leak: " +
                                std::to_string(twbs) + " attributed vs " +
                                std::to_string(c("ctrl.writebacks")) +
                                " seen");
      }
      // Serve attribution covers every demand read for instrumented
      // policies; uninstrumented ones report none at all.
      if (run.completed && tserves != 0 && tserves != c("ctrl.reads")) {
        result.errors.push_back(at + "tenant serve leak: " +
                                std::to_string(tserves) + " attributed vs " +
                                std::to_string(c("ctrl.reads")) + " reads");
      }
    }
  }

  // Every policy must consume the identical reference stream — in a mix,
  // tenant by tenant (the co-schedule is policy-independent by design).
  for (std::size_t i = 1; i < result.outcomes.size(); ++i) {
    const auto& a = result.outcomes.front();
    const auto& b = result.outcomes[i];
    if (a.core_refs != b.core_refs) {
      result.errors.push_back(
          Where(b.policy, params.trace.seed) + "processed " +
          std::to_string(b.core_refs) + " refs while " + a.policy +
          " processed " + std::to_string(a.core_refs) +
          " from the same trace");
    }
    if (a.tenant_refs != b.tenant_refs) {
      result.errors.push_back(
          Where(b.policy, params.trace.seed) +
          "per-tenant ref split diverged from " + a.policy +
          " on the same mix");
    }
  }
  return result;
}

}  // namespace redcache
