// Test-support decorator that injects controller-level faults, so negative
// tests can prove the ShadowChecker actually catches them. Sits *between*
// the checker and the policy:
//
//   ShadowChecker( FaultInjector( MakeController(...) ) )
//
// Supported faults:
//   * drop_every_nth_writeback — silently discards every Nth CPU writeback
//     (a lost write; surfaces as an unconsumed pending version at drain),
//   * duplicate_every_nth_completion — replays every Nth read completion
//     (a double completion; surfaces as a not-outstanding tag).
//
// Never use outside tests.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "dramcache/controller.hpp"

namespace redcache {

class FaultInjector final : public MemController {
 public:
  struct Options {
    std::uint64_t drop_every_nth_writeback = 0;      ///< 0 disables
    std::uint64_t duplicate_every_nth_completion = 0;  ///< 0 disables
  };

  FaultInjector(std::unique_ptr<MemController> inner, Options options)
      : inner_(std::move(inner)), opt_(options) {}

  const char* name() const override { return inner_->name(); }
  bool CanAcceptRead() const override { return inner_->CanAcceptRead(); }
  bool CanAcceptWriteback() const override {
    return inner_->CanAcceptWriteback();
  }
  void SubmitRead(Addr addr, std::uint64_t tag, Cycle now) override {
    inner_->SubmitRead(addr, tag, now);
  }
  void SubmitWriteback(Addr addr, Cycle now) override {
    if (opt_.drop_every_nth_writeback != 0 &&
        ++writebacks_ % opt_.drop_every_nth_writeback == 0) {
      dropped_writebacks_++;
      return;  // the write vanishes
    }
    inner_->SubmitWriteback(addr, now);
  }
  Cycle Tick(Cycle now) override {
    const Cycle wake = inner_->Tick(now);
    if (opt_.duplicate_every_nth_completion != 0) {
      auto& done = inner_->read_completions();
      const std::size_t n = done.size();
      for (std::size_t i = 0; i < n; ++i) {
        if (++completions_ % opt_.duplicate_every_nth_completion == 0) {
          duplicated_completions_++;
          done.push_back(done[i]);
        }
      }
    }
    return wake;
  }
  std::vector<ReadCompletion>& read_completions() override {
    return inner_->read_completions();
  }
  Cycle NextEventHint(Cycle now) const override {
    return inner_->NextEventHint(now);
  }
  void ExportStats(StatSet& stats) const override {
    inner_->ExportStats(stats);
  }
  bool Idle() const override { return inner_->Idle(); }
  void SetVerifySink(VerifySink* sink) override {
    inner_->SetVerifySink(sink);
  }
  const MemController* underlying() const override {
    return inner_->underlying();
  }

  std::uint64_t dropped_writebacks() const { return dropped_writebacks_; }
  std::uint64_t duplicated_completions() const {
    return duplicated_completions_;
  }

 private:
  std::unique_ptr<MemController> inner_;
  Options opt_;
  std::uint64_t writebacks_ = 0;
  std::uint64_t completions_ = 0;
  std::uint64_t dropped_writebacks_ = 0;
  std::uint64_t duplicated_completions_ = 0;
};

}  // namespace redcache
