#include "verify/golden.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace redcache {

const std::vector<std::string>& GoldenTrackedCounters() {
  static const std::vector<std::string> kCounters = {
      "sys.exec_cycles",
      "core.refs",
      "core.misses",
      "ctrl.reads",
      "ctrl.writebacks",
      "ctrl.cache_hits",
      "ctrl.cache_misses",
      "ctrl.fills",
      "hbm.bytes_transferred",
      "ddr4.bytes_transferred",
  };
  return kCounters;
}

std::string GoldenKey(const RunSpec& spec) {
  char scale[32];
  std::snprintf(scale, sizeof scale, "%g", spec.scale);
  // PolicyNameOf == ToString(spec.arch) for enum-based specs, so keys of
  // pre-existing golden entries are unchanged by the policy registry.
  // Likewise an active mix replaces the workload component with its full
  // canonical descriptor while inactive mixes leave keys untouched.
  const std::string workload =
      spec.mix.active() ? "mix:" + spec.mix.Describe() : spec.workload;
  return PolicyNameOf(spec) + "/" + workload + "/" + spec.preset.name +
         "@scale=" + scale + ",seed=" + std::to_string(spec.seed);
}

GoldenRecord CollectGolden(const RunSpec& spec) {
  const RunResult run = RunOne(spec);
  GoldenRecord rec;
  rec["completed"] = run.completed ? 1 : 0;
  for (const std::string& name : GoldenTrackedCounters()) {
    // Absent counters (e.g. hbm.* on No-HBM) are recorded as 0 so the
    // schema is uniform across architectures.
    rec[name] = run.stats.GetCounter(name);
  }
  // Mix cells additionally pin every per-tenant counter the run exported,
  // so QoS attribution regressions are caught the same way end-to-end
  // behaviour is. Single-tenant runs export none — their records (and the
  // serialized file bytes for existing entries) are untouched.
  for (const auto& [name, value] : run.stats.counters()) {
    if (name.rfind("tenant", 0) == 0) rec[name] = value;
  }
  return rec;
}

std::string SerializeGolden(const GoldenTable& table) {
  std::ostringstream out;
  out << "{\n";
  bool first_key = true;
  for (const auto& [key, rec] : table) {
    if (!first_key) out << ",\n";
    first_key = false;
    out << "  \"" << key << "\": {\n";
    bool first_counter = true;
    for (const auto& [name, value] : rec) {
      if (!first_counter) out << ",\n";
      first_counter = false;
      out << "    \"" << name << "\": " << value;
    }
    out << "\n  }";
  }
  out << "\n}\n";
  return out.str();
}

namespace {

/// Minimal parser for the two-level {string: {string: uint}} JSON that
/// SerializeGolden emits. No escapes, no floats, no arrays.
class GoldenParser {
 public:
  GoldenParser(const std::string& text, std::string& error)
      : text_(text), error_(error) {}

  bool Parse(GoldenTable& out) {
    if (!Expect('{')) return false;
    SkipWs();
    if (Peek() == '}') { pos_++; return true; }
    while (true) {
      std::string key;
      if (!ParseString(key) || !Expect(':')) return false;
      if (!ParseRecord(out[key])) return false;
      SkipWs();
      if (Peek() == ',') { pos_++; continue; }
      break;
    }
    return Expect('}');
  }

 private:
  bool ParseRecord(GoldenRecord& rec) {
    if (!Expect('{')) return false;
    SkipWs();
    if (Peek() == '}') { pos_++; return true; }
    while (true) {
      std::string name;
      std::uint64_t value = 0;
      if (!ParseString(name) || !Expect(':') || !ParseUint(value)) {
        return false;
      }
      rec[name] = value;
      SkipWs();
      if (Peek() == ',') { pos_++; continue; }
      break;
    }
    return Expect('}');
  }

  bool ParseString(std::string& out) {
    if (!Expect('"')) return false;
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') pos_++;
    if (pos_ >= text_.size()) return Fail("unterminated string");
    out = text_.substr(start, pos_ - start);
    pos_++;
    return true;
  }

  bool ParseUint(std::uint64_t& out) {
    SkipWs();
    if (pos_ >= text_.size() || !std::isdigit(Byte())) {
      return Fail("expected a number");
    }
    out = 0;
    while (pos_ < text_.size() && std::isdigit(Byte())) {
      out = out * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
      pos_++;
    }
    return true;
  }

  bool Expect(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    pos_++;
    return true;
  }

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(Byte())) pos_++;
  }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  unsigned char Byte() const {
    return static_cast<unsigned char>(text_[pos_]);
  }
  bool Fail(const std::string& why) {
    error_ = why + " at offset " + std::to_string(pos_);
    return false;
  }

  const std::string& text_;
  std::string& error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool ParseGolden(const std::string& text, GoldenTable& out,
                 std::string& error) {
  out.clear();
  return GoldenParser(text, error).Parse(out);
}

bool ReadGoldenFile(const std::string& path, GoldenTable& out,
                    std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseGolden(text.str(), out, error);
}

bool WriteGoldenFile(const std::string& path, const GoldenTable& table) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << SerializeGolden(table);
  return static_cast<bool>(out);
}

std::vector<std::string> DiffGolden(const GoldenTable& expected,
                                    const GoldenTable& actual) {
  std::vector<std::string> diffs;
  for (const auto& [key, exp_rec] : expected) {
    auto it = actual.find(key);
    if (it == actual.end()) {
      diffs.push_back(key + ": missing from this run");
      continue;
    }
    for (const auto& [name, exp_value] : exp_rec) {
      auto cit = it->second.find(name);
      if (cit == it->second.end()) {
        diffs.push_back(key + ": counter " + name + " not collected");
      } else if (cit->second != exp_value) {
        diffs.push_back(key + ": " + name + " expected " +
                        std::to_string(exp_value) + ", got " +
                        std::to_string(cit->second));
      }
    }
  }
  for (const auto& [key, rec] : actual) {
    (void)rec;
    if (expected.find(key) == expected.end()) {
      diffs.push_back(key + ": not in the golden file (regenerate with "
                      "REDCACHE_UPDATE_GOLDEN=1)");
    }
  }
  return diffs;
}

}  // namespace redcache
