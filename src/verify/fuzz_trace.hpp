// Seeded adversarial trace generator for differential policy testing.
//
// Real workload kernels (workloads/benchmarks.hpp) exercise the common
// paths; this generator aims at the corners where DRAM-cache policies lose
// writes or serve stale data:
//   * hot pages revisited until alpha admits them, interleaved with cold
//     single-visit streams (alpha bypass while a dirty copy is resident),
//   * write bursts straddling the gamma threshold on the same block (gamma
//     kill racing a parked RCU update),
//   * set-conflict strides that alias in the direct-mapped cache (forced
//     victim writebacks of freshly dirtied lines),
//   * row storms — many reads within one DRAM row (fills the 32-entry RCU
//     CAM and triggers same-row piggyback drains), and
//   * long idle gaps (refresh-window bypasses mid-burst).
//
// Streams are fully pre-generated per core from (seed, core), so a trace is
// reproducible bit-for-bit and identical for every architecture under test.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "workloads/trace.hpp"

namespace redcache {

struct FuzzTraceParams {
  std::uint64_t seed = 1;
  std::uint32_t cores = 4;
  std::uint32_t refs_per_core = 2000;
  /// Base pool of 4 KiB pages the trace touches (shared across cores so
  /// policies see inter-core reuse and conflicting writes).
  std::uint32_t region_pages = 96;
  /// Pages revisited often enough for alpha to classify them hot.
  std::uint32_t hot_pages = 8;
  /// Direct-mapped aliasing distance (the evaluation HBM cache capacity).
  std::uint64_t conflict_stride_bytes = 4_MiB;

  // Per-reference behaviour mix, in parts per 256 (remainder: uniform
  // single visits over the cold region).
  std::uint32_t hot_weight = 96;        ///< hot-page read/write traffic
  std::uint32_t burst_weight = 48;      ///< same-block write bursts
  std::uint32_t conflict_weight = 32;   ///< set-alias ping-pong
  std::uint32_t row_storm_weight = 48;  ///< sequential same-row reads
  /// Probability (parts per 256) that any generated access is a write.
  std::uint32_t write_weight = 80;
  /// Every ~this many refs, insert a long idle gap (0 disables).
  std::uint32_t idle_every = 300;
  std::uint32_t idle_gap_cycles = 6000;
};

class FuzzTraceSource final : public TraceSource {
 public:
  explicit FuzzTraceSource(const FuzzTraceParams& params);

  bool Next(std::uint32_t core, MemRef& out) override;
  std::uint32_t num_cores() const override {
    return static_cast<std::uint32_t>(streams_.size());
  }
  std::uint64_t footprint_bytes() const override { return footprint_; }
  std::string name() const override;

 private:
  std::vector<std::vector<MemRef>> streams_;
  std::vector<std::size_t> cursors_;
  std::uint64_t footprint_ = 0;
  std::uint64_t seed_;
};

}  // namespace redcache
