// Golden-stats regression harness.
//
// Snapshots the key RunResult counters for a set of (arch, workload,
// preset) configurations into a deterministic JSON file under
// tests/verify/golden/. The test re-runs every configuration and fails on
// any counter drift; intentional behaviour changes regenerate the file with
//
//   REDCACHE_UPDATE_GOLDEN=1 ctest -R golden
//
// The JSON is hand-rolled (sorted keys, fixed layout, integers only) so a
// regeneration with unchanged behaviour is byte-identical and diffs stay
// reviewable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/runner.hpp"

namespace redcache {

/// counters keyed by name, for one configuration.
using GoldenRecord = std::map<std::string, std::uint64_t>;
/// records keyed by GoldenKey(spec).
using GoldenTable = std::map<std::string, GoldenRecord>;

/// The counters a golden record tracks; chosen to pin end-to-end behaviour
/// (timing, hit rates, traffic split) without over-constraining internals.
const std::vector<std::string>& GoldenTrackedCounters();

/// "<arch>/<workload>/<preset>@scale=<s>,seed=<n>" — stable map key.
std::string GoldenKey(const RunSpec& spec);

/// Run `spec` and extract the tracked counters.
GoldenRecord CollectGolden(const RunSpec& spec);

std::string SerializeGolden(const GoldenTable& table);
/// Parse SerializeGolden output (whitespace-tolerant). Returns false and
/// sets `error` on malformed input.
bool ParseGolden(const std::string& text, GoldenTable& out,
                 std::string& error);

bool ReadGoldenFile(const std::string& path, GoldenTable& out,
                    std::string& error);
bool WriteGoldenFile(const std::string& path, const GoldenTable& table);

/// Differences between an expected and an actual table, as readable lines
/// ("key: counter expected X, got Y" / missing / unexpected entries).
std::vector<std::string> DiffGolden(const GoldenTable& expected,
                                    const GoldenTable& actual);

}  // namespace redcache
