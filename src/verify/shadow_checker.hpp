// ShadowChecker — a MemController decorator that cross-checks any concrete
// policy against a functional reference memory model (ref_model.hpp) on
// every read completion and writeback.
//
// Wrap a controller before handing it to the System:
//
//   auto ctrl = MakeController(arch, cfg);
//   auto checked = std::make_unique<ShadowChecker>(std::move(ctrl));
//
// The checker registers itself as the inner policy's VerifySink, forwards
// all MemController traffic unchanged, and flags
//   * reads that never complete, complete twice, or complete with a
//     different address than submitted,
//   * completions that travel back in time (done < submit cycle),
//   * serves of stale data and lost writes (via the reference model),
//   * writebacks the policy consumed twice or never (RCU-drain bugs).
//
// Policies without verification instrumentation (no hook calls) still get
// the completion-level checks; the semantic checks stay dormant.
//
// In strict mode every divergence throws immediately (best diagnostics
// under a debugger / in a fuzz run); otherwise divergences accumulate and
// are exported under the "verify." stat prefix.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "dramcache/controller.hpp"
#include "verify/ref_model.hpp"

namespace redcache {

class ShadowChecker final : public MemController, public VerifySink {
 public:
  struct Options {
    /// Throw VerifyError at the first divergence instead of accumulating.
    bool strict = false;
    /// Keep at most this many divergence messages (the count is exact).
    std::size_t max_messages = 32;
  };

  struct VerifyError : std::runtime_error {
    using std::runtime_error::runtime_error;
  };

  explicit ShadowChecker(std::unique_ptr<MemController> inner);
  ShadowChecker(std::unique_ptr<MemController> inner, Options options);
  ~ShadowChecker() override;

  // --- MemController (forwarding + interception) --------------------------
  const char* name() const override { return inner_->name(); }
  bool CanAcceptRead() const override { return inner_->CanAcceptRead(); }
  bool CanAcceptWriteback() const override {
    return inner_->CanAcceptWriteback();
  }
  void SubmitRead(Addr addr, std::uint64_t tag, Cycle now) override;
  void SubmitWriteback(Addr addr, Cycle now) override;
  Cycle Tick(Cycle now) override;
  std::vector<ReadCompletion>& read_completions() override {
    return completions_;
  }
  Cycle NextEventHint(Cycle now) const override {
    return inner_->NextEventHint(now);
  }
  void ExportStats(StatSet& stats) const override;
  void SampleTelemetry(StatSet& out) const override {
    inner_->SampleTelemetry(out);
  }
  bool Idle() const override { return inner_->Idle(); }
  void SetVerifySink(VerifySink* sink) override;
  void SetTenantAccounting(tenant::TenantAccounting* acct) override {
    inner_->SetTenantAccounting(acct);
  }
  const MemController* underlying() const override {
    return inner_->underlying();
  }

  // --- VerifySink (events from the inner policy) --------------------------
  void OnFill(Addr block, bool dirty) override;
  void OnCacheWrite(Addr block) override;
  void OnMmWrite(Addr block) override;
  void OnVictimWriteback(Addr block) override;
  void OnInvalidate(Addr block) override;
  void OnServeRead(Addr block, std::uint64_t tag, ServeSource src) override;

  /// Drain-time audit; call after the simulation completed (controller
  /// idle). Verifies no read is still outstanding and no write was lost.
  void CheckDrained();

  /// True once any semantic hook fired (the policy is instrumented).
  bool semantic_checks_active() const { return semantic_active_; }

  std::uint64_t divergence_count() const { return divergence_count_; }
  std::uint64_t reads_checked() const { return reads_checked_; }
  const std::vector<std::string>& divergence_messages() const {
    return messages_;
  }
  /// One-line summary for CLI / log output.
  std::string Summary() const;

  MemController& inner() { return *inner_; }

 private:
  struct OutstandingRead {
    Addr addr = 0;
    Cycle submitted = 0;
    bool served = false;
  };

  void Report(const std::string& what);
  void ValidateCompletions();
  /// Pull divergences the reference model found since the last call.
  void DrainModelDivergences();

  std::unique_ptr<MemController> inner_;
  Options opt_;
  RefMemoryModel model_;
  VerifySink* chained_sink_ = nullptr;  ///< external sink, also notified
  std::unordered_map<std::uint64_t, OutstandingRead> outstanding_;
  std::vector<ReadCompletion> completions_;
  std::vector<std::string> messages_;
  std::uint64_t divergence_count_ = 0;
  std::uint64_t reads_checked_ = 0;
  std::uint64_t writebacks_seen_ = 0;
  std::size_t model_divergences_seen_ = 0;
  /// Wide cache lines (line_blocks > 1) fill neighbours the hooks don't
  /// report; the version model would flag them, so it stays off.
  bool semantic_enabled_ = true;
  bool semantic_active_ = false;
};

}  // namespace redcache
