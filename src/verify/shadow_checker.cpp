#include "verify/shadow_checker.hpp"

#include <cinttypes>
#include <cstdio>
#include <utility>

namespace redcache {

namespace {

std::string Hex(Addr a) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%" PRIx64, a);
  return buf;
}

}  // namespace

ShadowChecker::ShadowChecker(std::unique_ptr<MemController> inner)
    : ShadowChecker(std::move(inner), Options{}) {}

ShadowChecker::ShadowChecker(std::unique_ptr<MemController> inner,
                             Options options)
    : inner_(std::move(inner)), opt_(options) {
  if (const auto* base =
          dynamic_cast<const ControllerBase*>(inner_->underlying())) {
    semantic_enabled_ = base->config().line_blocks == 1;
  }
  inner_->SetVerifySink(this);
}

ShadowChecker::~ShadowChecker() {
  if (inner_) inner_->SetVerifySink(nullptr);
}

void ShadowChecker::SetVerifySink(VerifySink* sink) {
  // The checker keeps the inner policy's sink slot for itself and chains
  // any externally attached sink behind its own forwarding.
  chained_sink_ = sink;
}

void ShadowChecker::Report(const std::string& what) {
  divergence_count_++;
  if (messages_.size() < opt_.max_messages) messages_.push_back(what);
  if (opt_.strict) throw VerifyError(what);
}

void ShadowChecker::DrainModelDivergences() {
  const auto& divs = model_.divergences();
  while (model_divergences_seen_ < divs.size()) {
    Report(divs[model_divergences_seen_++].what);
  }
}

void ShadowChecker::SubmitRead(Addr addr, std::uint64_t tag, Cycle now) {
  auto [it, fresh] = outstanding_.try_emplace(tag);
  if (!fresh) {
    Report("tag " + std::to_string(tag) +
           " reused while its read is still outstanding (addr " + Hex(addr) +
           ")");
  }
  it->second = OutstandingRead{addr, now, false};
  inner_->SubmitRead(addr, tag, now);
}

void ShadowChecker::SubmitWriteback(Addr addr, Cycle now) {
  writebacks_seen_++;
  if (semantic_enabled_) model_.OnWritebackSubmitted(addr);
  inner_->SubmitWriteback(addr, now);
  DrainModelDivergences();
}

Cycle ShadowChecker::Tick(Cycle now) {
  const Cycle wake = inner_->Tick(now);
  ValidateCompletions();
  DrainModelDivergences();
  return wake;
}

void ShadowChecker::ValidateCompletions() {
  auto& inner_done = inner_->read_completions();
  for (const ReadCompletion& c : inner_done) {
    reads_checked_++;
    auto it = outstanding_.find(c.tag);
    if (it == outstanding_.end()) {
      Report("completion for tag " + std::to_string(c.tag) +
             " that is not outstanding (double completion or spurious)");
      completions_.push_back(c);
      continue;
    }
    const OutstandingRead& r = it->second;
    if (c.addr != r.addr) {
      Report("completion address " + Hex(c.addr) + " does not match the " +
             Hex(r.addr) + " submitted under tag " + std::to_string(c.tag));
    }
    if (c.done < r.submitted) {
      Report("completion for tag " + std::to_string(c.tag) + " at cycle " +
             std::to_string(c.done) + " precedes its submission at " +
             std::to_string(r.submitted));
    }
    if (semantic_active_ && !r.served) {
      Report("read " + Hex(r.addr) + " (tag " + std::to_string(c.tag) +
             ") completed without a serve event (data source unknown)");
    }
    outstanding_.erase(it);
    completions_.push_back(c);
  }
  inner_done.clear();
}

// --- VerifySink forwarding -------------------------------------------------

void ShadowChecker::OnFill(Addr block, bool dirty) {
  if (semantic_enabled_) {
    semantic_active_ = true;
    model_.OnFill(block, dirty);
  }
  if (chained_sink_ != nullptr) chained_sink_->OnFill(block, dirty);
}

void ShadowChecker::OnCacheWrite(Addr block) {
  if (semantic_enabled_) {
    semantic_active_ = true;
    model_.OnCacheWrite(block);
  }
  if (chained_sink_ != nullptr) chained_sink_->OnCacheWrite(block);
}

void ShadowChecker::OnMmWrite(Addr block) {
  if (semantic_enabled_) {
    semantic_active_ = true;
    model_.OnMmWrite(block);
  }
  if (chained_sink_ != nullptr) chained_sink_->OnMmWrite(block);
}

void ShadowChecker::OnVictimWriteback(Addr block) {
  if (semantic_enabled_) {
    semantic_active_ = true;
    model_.OnVictimWriteback(block);
  }
  if (chained_sink_ != nullptr) chained_sink_->OnVictimWriteback(block);
}

void ShadowChecker::OnInvalidate(Addr block) {
  if (semantic_enabled_) {
    semantic_active_ = true;
    model_.OnInvalidate(block);
  }
  if (chained_sink_ != nullptr) chained_sink_->OnInvalidate(block);
}

void ShadowChecker::OnServeRead(Addr block, std::uint64_t tag,
                                ServeSource src) {
  if (semantic_enabled_) {
    semantic_active_ = true;
    auto it = outstanding_.find(tag);
    if (it == outstanding_.end()) {
      Report("serve event for tag " + std::to_string(tag) +
             " with no outstanding read (addr " + Hex(block) + ")");
    } else {
      if (it->second.served) {
        Report("read tag " + std::to_string(tag) + " served twice");
      }
      if (BlockAlign(block) != BlockAlign(it->second.addr)) {
        Report("serve event block " + Hex(block) +
               " does not match the read submitted under tag " +
               std::to_string(tag) + " (" + Hex(it->second.addr) + ")");
      }
      it->second.served = true;
    }
    model_.OnServeRead(block, src);
  }
  if (chained_sink_ != nullptr) chained_sink_->OnServeRead(block, tag, src);
}

// --- audits ----------------------------------------------------------------

void ShadowChecker::CheckDrained() {
  for (const auto& [tag, r] : outstanding_) {
    Report("read " + Hex(r.addr) + " (tag " + std::to_string(tag) +
           ") submitted at cycle " + std::to_string(r.submitted) +
           " never completed");
  }
  if (semantic_active_) {
    model_.CheckDrained();
    DrainModelDivergences();
  }
}

void ShadowChecker::ExportStats(StatSet& stats) const {
  inner_->ExportStats(stats);
  stats.Counter("verify.reads_checked") += reads_checked_;
  stats.Counter("verify.writebacks_tracked") += writebacks_seen_;
  stats.Counter("verify.model_events") += model_.events();
  stats.Counter("verify.blocks_tracked") += model_.blocks_tracked();
  stats.Counter("verify.divergences") += divergence_count_;
  stats.Counter("verify.semantic_active") += semantic_active_ ? 1 : 0;
}

std::string ShadowChecker::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "verify(%s): %" PRIu64 " reads checked, %" PRIu64
                " writebacks tracked, %" PRIu64 " model events, %" PRIu64
                " divergence%s%s",
                inner_->name(), reads_checked_, writebacks_seen_,
                model_.events(), divergence_count_,
                divergence_count_ == 1 ? "" : "s",
                semantic_active_ ? "" : " (semantic checks dormant)");
  return buf;
}

}  // namespace redcache
