#include "workloads/profiler.hpp"

#include <cmath>

namespace redcache {

BlockProfiler::PageUniformity BlockProfiler::PageReuseUniformity() const {
  // Group blocks by page; compute each page's mean and standard deviation
  // of per-block reuse, then bin every block by |reuse - mean| / sigma.
  struct PageAcc {
    std::vector<std::uint32_t> reuses;
  };
  std::unordered_map<std::uint64_t, PageAcc> pages;
  for (const auto& [block, st] : blocks_) {
    pages[block / kBlocksPerPage].reuses.push_back(st.accesses - 1);
  }
  std::uint64_t within_one = 0, within_two = 0, total = 0;
  for (const auto& [page, acc] : pages) {
    const std::size_t n = acc.reuses.size();
    double mean = 0;
    for (const auto r : acc.reuses) mean += r;
    mean /= static_cast<double>(n);
    double var = 0;
    for (const auto r : acc.reuses) {
      var += (r - mean) * (r - mean);
    }
    var /= static_cast<double>(n);
    const double sigma = std::sqrt(var);
    for (const auto r : acc.reuses) {
      total++;
      const double dev = sigma == 0.0 ? 0.0 : std::abs(r - mean) / sigma;
      if (dev < 1.0) {
        within_one++;
      } else if (dev < 2.0) {
        within_two++;
      }
    }
  }
  PageUniformity out;
  if (total != 0) {
    out.within_one = static_cast<double>(within_one) /
                     static_cast<double>(total);
    out.within_two = static_cast<double>(within_two) /
                     static_cast<double>(total);
  }
  return out;
}

}  // namespace redcache
