// Kernel-composed synthetic trace generator.
//
// Each core executes a list of kernels in order; a kernel is a parameterized
// access pattern (sweep, tiled sweep, hot set, scatter, or mixed). The
// kernels are chosen per benchmark (see benchmarks.hpp) to reproduce the
// reuse-count / bandwidth-cost distributions the paper's Figure 3 reports —
// the behaviour RedCache's alpha/gamma mechanisms key on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workloads/trace.hpp"

namespace redcache {

/// One phase of a core's execution.
struct Kernel {
  enum class Kind {
    kSweep,       ///< sequential strided passes over [base, base+size)
    kTiled,       ///< visit tiles in order; each tile swept tile_passes times
    kHot,         ///< Zipf-skewed accesses within [base, base+size)
    kScatter,     ///< uniform random blocks within [base, base+size)
    kScatterHot,  ///< scatter over main region, p_hot of refs hit hot region
    kSweepHot,    ///< cold sequential sweep interleaved with hot-set refs —
                  ///< the canonical streaming+hot contention pattern the
                  ///< paper's block classification (Fig. 4) targets
    kDualSweep,   ///< large single-pass cold sweep interleaved with a small
                  ///< repeatedly-wrapping hot sweep: every hot block ends up
                  ///< with the same reuse count, producing the narrow
                  ///< homo-reuse bands of the paper's Fig. 3
  };

  Kind kind = Kind::kSweep;
  Addr base = 0;             ///< region start (byte address)
  std::uint64_t size = 1_MiB;  ///< region length in bytes
  std::uint32_t stride = kBlockBytes;
  std::uint32_t passes = 1;       ///< kSweep: number of full passes
  std::uint64_t tile_bytes = 64_KiB;  ///< kTiled
  std::uint32_t tile_passes = 8;      ///< kTiled: sweeps per tile
  std::uint64_t refs = 0;    ///< kHot/kScatter/kScatterHot: reference count
  double write_frac = 0.3;
  double zipf_s = 0.8;       ///< kHot skew
  Addr hot_base = 0;         ///< hot region (kScatterHot/kSweepHot/kDualSweep)
  std::uint64_t hot_size = 64_KiB;
  double p_hot = 0.2;        ///< fraction of refs going to the hot region
  /// Write fraction for hot-region refs; negative means "same as
  /// write_frac". Lets a kernel model read-mostly keys against write-heavy
  /// scatter output (or vice versa).
  double hot_write_frac = -1.0;
  std::uint32_t gap_mean = 4;  ///< mean compute cycles between refs
  /// Parallel applications alternate memory bursts with compute stretches
  /// (the idle windows the RCU manager drains into — paper §III-C). Every
  /// `pause_every` references the core inserts an exponentially-jittered
  /// pause of mean `pause_cycles`. 0 disables.
  std::uint32_t pause_every = 192;
  std::uint32_t pause_cycles = 2500;
};

/// Builds one TraceSource from per-core kernel programs.
class KernelTrace : public TraceSource {
 public:
  /// `programs[c]` is the kernel list core `c` runs. `seed` fixes all
  /// randomness; cores derive independent streams from it.
  KernelTrace(std::string name, std::vector<std::vector<Kernel>> programs,
              std::uint64_t seed);

  bool Next(std::uint32_t core, MemRef& out) override;
  std::uint32_t num_cores() const override {
    return static_cast<std::uint32_t>(cores_.size());
  }
  std::uint64_t footprint_bytes() const override { return footprint_; }
  std::string name() const override { return name_; }

  /// Number of references `kernel` will emit (used to size programs).
  static std::uint64_t KernelRefCount(const Kernel& k);

  /// Checkpointing: per-core cursors + RNG. The kernel programs themselves
  /// are configuration, rebuilt by constructing the same workload.
  bool checkpointable() const override { return true; }
  void Snapshot(ser::Writer& w) const override {
    w.Section("ktrace");
    w.U64(cores_.size());
    for (const CoreState& cs : cores_) {
      w.U64(cs.kernel_idx);
      w.U64(cs.emitted);
      w.U64(cs.cursor);
      w.U32(cs.pass);
      w.U64(cs.tile);
      cs.rng.Snapshot(w);
    }
  }
  void Restore(ser::Reader& r) override {
    r.Section("ktrace");
    if (r.U64() != cores_.size()) {
      throw ser::SerializeError("kernel trace core-count mismatch");
    }
    for (CoreState& cs : cores_) {
      cs.kernel_idx = static_cast<std::size_t>(r.U64());
      cs.emitted = r.U64();
      cs.cursor = r.U64();
      cs.pass = r.U32();
      cs.tile = r.U64();
      cs.rng.Restore(r);
    }
  }

 private:
  struct CoreState {
    std::vector<Kernel> program;
    std::size_t kernel_idx = 0;
    std::uint64_t emitted = 0;   ///< refs emitted by current kernel
    std::uint64_t cursor = 0;    ///< position state (pattern-specific)
    std::uint32_t pass = 0;
    std::uint64_t tile = 0;
    Rng rng;
  };

  bool EmitFromKernel(CoreState& cs, const Kernel& k, MemRef& out);

  std::string name_;
  std::vector<CoreState> cores_;
  std::uint64_t footprint_ = 0;
};

}  // namespace redcache
