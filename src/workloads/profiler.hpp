// Per-block reuse / bandwidth-cost profiler (paper §II-B, Figs. 3 and 4).
//
// Records every request entering the memory system of a No-HBM run and
// aggregates blocks into homo-reuse groups (all blocks with the same total
// number of reuses). The paper weighs each group by the exact DDRx cycles
// its requests consumed; requests are close to uniform in cost on the
// No-HBM system (one burst each, similar row behaviour in aggregate), so
// the group cost share equals its request share scaled by the measured
// mean cycles per request.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace redcache {

class BlockProfiler {
 public:
  /// Observe one below-L3 request (demand read or L3 writeback).
  void OnRequest(Addr addr, bool is_writeback) {
    auto& st = blocks_[BlockIndex(addr)];
    st.accesses++;
    st.last_was_writeback = is_writeback;
    total_requests_++;
  }

  struct ReuseGroup {
    std::uint32_t reuses = 0;        ///< accesses - 1
    std::uint64_t blocks = 0;        ///< population of the homo-reuse group
    std::uint64_t requests = 0;      ///< total accesses from this group
    double cost_share = 0.0;         ///< fraction of off-chip bandwidth cost
  };

  /// Group blocks by their total reuse count; `bucket` merges neighbouring
  /// reuse counts for readability (1 = exact homo-reuse groups).
  std::vector<ReuseGroup> Groups(std::uint32_t bucket = 1) const {
    std::map<std::uint32_t, ReuseGroup> grouped;
    for (const auto& [block, st] : blocks_) {
      const std::uint32_t reuses = st.accesses - 1;
      const std::uint32_t key = bucket <= 1 ? reuses : (reuses / bucket) * bucket;
      ReuseGroup& g = grouped[key];
      g.reuses = key;
      g.blocks++;
      g.requests += st.accesses;
    }
    std::vector<ReuseGroup> out;
    out.reserve(grouped.size());
    for (auto& [key, g] : grouped) {
      g.cost_share = total_requests_ == 0
                         ? 0.0
                         : static_cast<double>(g.requests) /
                               static_cast<double>(total_requests_);
      out.push_back(g);
    }
    return out;
  }

  /// Fraction of blocks whose final access was a writeback (paper §II-C:
  /// ">82% of the last accesses to cache blocks are writebacks").
  double LastAccessWritebackFraction() const {
    if (blocks_.empty()) return 0.0;
    std::uint64_t wb = 0;
    for (const auto& [block, st] : blocks_) {
      if (st.last_was_writeback) wb++;
    }
    return static_cast<double>(wb) / static_cast<double>(blocks_.size());
  }

  /// Mean per-page standard-deviation bin statistics (paper §III-A1: "90%
  /// of blocks inside a page fall into [0,1) reuse std-dev bins"). Returns
  /// the fraction of blocks whose reuse count lies within `width` standard
  /// deviations... computed as the fraction of blocks within [0,1) and
  /// [1,2) deviations of their page's mean reuse.
  struct PageUniformity {
    double within_one = 0.0;  ///< |reuse - page mean| < 1 sigma-bin
    double within_two = 0.0;
  };
  PageUniformity PageReuseUniformity() const;

  std::uint64_t total_requests() const { return total_requests_; }
  std::uint64_t distinct_blocks() const { return blocks_.size(); }

 private:
  struct BlockState {
    std::uint32_t accesses = 0;
    bool last_was_writeback = false;
  };
  std::unordered_map<std::uint64_t, BlockState> blocks_;
  std::uint64_t total_requests_ = 0;
};

}  // namespace redcache
