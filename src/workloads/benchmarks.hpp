// The paper's Table II workload suite, reconstructed as synthetic kernels.
//
// We do not have ESESC nor the NAS / SPLASH-2 / Phoenix binaries, so each
// application is modeled as a per-core kernel program (see kernel_trace.hpp)
// whose DRAM-level reuse distribution, read/write mix and phase structure
// follow the application's well-known access pattern and the shapes the
// paper's Figure 3 reports. Capacities are scaled down together with the
// simulated HBM/L3 sizes (see DESIGN.md, "Substitutions"): the scaled
// footprints keep footprint > HBM > L3 so the caching regime is preserved,
// and homo-reuse peaks appear at proportionally smaller reuse counts.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "workloads/kernel_trace.hpp"
#include "workloads/trace.hpp"

namespace redcache {

/// Identifiers matching the paper's Table II labels.
inline const std::vector<std::string>& WorkloadLabels() {
  static const std::vector<std::string> kLabels = {
      "FT", "IS", "MG", "CH", "RDX", "OCN", "FFT", "LU", "BRN", "HIST",
      "LREG"};
  return kLabels;
}

struct WorkloadBuildParams {
  std::uint32_t num_cores = 16;
  /// Multiplies region sizes and reference counts; 1.0 is the default
  /// scaled-down evaluation size.
  double scale = 1.0;
  std::uint64_t seed_salt = 0;  ///< extra entropy for sensitivity studies
};

/// Short description of each workload's modeled behaviour (Table II bench).
std::string WorkloadDescription(const std::string& label);

/// Build the trace source for one of the Table II labels. Throws
/// std::invalid_argument for unknown labels.
std::unique_ptr<TraceSource> MakeWorkload(const std::string& label,
                                          const WorkloadBuildParams& params);

}  // namespace redcache
