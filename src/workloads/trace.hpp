// Trace interface between workload generators and the CPU model.
#pragma once

#include <cstdint>
#include <string>

#include "common/serialize.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace redcache {

/// One data reference emitted by a workload for one core.
struct MemRef {
  Addr addr = 0;
  bool is_write = false;
  /// Compute cycles the core spends before issuing this reference.
  std::uint32_t gap = 1;
};

/// A per-core stream of memory references. Implementations must be
/// deterministic for a fixed (workload, seed, core) triple.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Produce the next reference for `core`. Returns false when that core's
  /// stream is exhausted.
  virtual bool Next(std::uint32_t core, MemRef& out) = 0;

  virtual std::uint32_t num_cores() const = 0;

  /// Total bytes touched across all cores (block-granular footprint bound).
  virtual std::uint64_t footprint_bytes() const = 0;

  virtual std::string name() const = 0;

  /// Contribute source-side counters/gauges to a telemetry snapshot (see
  /// obs/epoch_sampler.hpp for the "gauge." prefix convention). Default:
  /// nothing — synthetic generators have no ingest state worth watching.
  /// Serve-mode streams report queue depth / EOF / backpressure here, and
  /// the multi-tenant mix re-namespaces its children per tenant.
  virtual void SampleTelemetry(StatSet& out) const { (void)out; }

  /// Checkpointing contract (common/serialize.hpp). A checkpointable source
  /// serializes its cursors/RNG so a freshly constructed instance of the
  /// same (workload, seed) resumes mid-stream bit-identically. Sources fed
  /// by external file descriptors (serve mode) cannot rewind and keep the
  /// throwing defaults; System::Snapshot surfaces the error to the caller.
  virtual bool checkpointable() const { return false; }
  virtual void Snapshot(ser::Writer& w) const {
    (void)w;
    throw ser::SerializeError("trace source \"" + name() +
                              "\" does not support checkpointing");
  }
  virtual void Restore(ser::Reader& r) {
    (void)r;
    throw ser::SerializeError("trace source \"" + name() +
                              "\" does not support checkpointing");
  }
};

}  // namespace redcache
