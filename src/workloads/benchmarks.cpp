#include "workloads/benchmarks.hpp"

#include <stdexcept>

#include "common/rng.hpp"

namespace redcache {

namespace {

/// Per-core private address span; core c's private data lives at
/// [c * kCoreSpan, (c+1) * kCoreSpan). Shared regions live above all cores.
/// Deliberately NOT a power of two: a span equal to the DRAM-cache capacity
/// would alias every core's region onto the same direct-mapped sets, a
/// pathology real physical-page placement does not exhibit.
constexpr Addr kCoreSpan = 8_MiB + 320_KiB;

std::uint64_t ScaleBytes(double scale, std::uint64_t bytes) {
  auto v = static_cast<std::uint64_t>(static_cast<double>(bytes) * scale);
  v = (v / kBlockBytes) * kBlockBytes;
  return v < kBlockBytes ? kBlockBytes : v;
}

std::uint64_t ScaleRefs(double scale, std::uint64_t refs) {
  auto v = static_cast<std::uint64_t>(static_cast<double>(refs) * scale);
  return v == 0 ? 1 : v;
}

/// Builder collecting one core's kernel program with scaled parameters.
class ProgramBuilder {
 public:
  ProgramBuilder(std::uint32_t core, double scale, Addr shared_base)
      : base_(core * kCoreSpan), shared_base_(shared_base), scale_(scale) {}

  /// `offset` is relative to the core's private span (or to the shared
  /// region when shared=true).
  ProgramBuilder& Sweep(Addr offset, std::uint64_t size, std::uint32_t passes,
                        double wf, std::uint32_t gap,
                        std::uint32_t stride = kBlockBytes,
                        bool shared = false) {
    Kernel k;
    k.kind = Kernel::Kind::kSweep;
    k.base = (shared ? shared_base_ : base_) + offset;
    k.size = ScaleBytes(scale_, size);
    k.stride = stride;
    k.passes = passes;
    k.write_frac = wf;
    k.gap_mean = gap;
    program_.push_back(k);
    return *this;
  }

  ProgramBuilder& Tiled(Addr offset, std::uint64_t size,
                        std::uint64_t tile_bytes, std::uint32_t tile_passes,
                        double wf, std::uint32_t gap) {
    Kernel k;
    k.kind = Kernel::Kind::kTiled;
    k.base = base_ + offset;
    k.size = ScaleBytes(scale_, size);
    k.tile_bytes = tile_bytes;  // tile stays fixed; scaling varies tile count
    k.tile_passes = tile_passes;
    k.write_frac = wf;
    k.gap_mean = gap;
    program_.push_back(k);
    return *this;
  }

  ProgramBuilder& Hot(Addr offset, std::uint64_t size, std::uint64_t refs,
                      double zipf, double wf, std::uint32_t gap,
                      bool shared = false) {
    Kernel k;
    k.kind = Kernel::Kind::kHot;
    k.base = (shared ? shared_base_ : base_) + offset;
    k.size = ScaleBytes(scale_, size);
    k.refs = ScaleRefs(scale_, refs);
    k.zipf_s = zipf;
    k.write_frac = wf;
    k.gap_mean = gap;
    program_.push_back(k);
    return *this;
  }

  ProgramBuilder& Scatter(Addr offset, std::uint64_t size, std::uint64_t refs,
                          double wf, std::uint32_t gap) {
    Kernel k;
    k.kind = Kernel::Kind::kScatter;
    k.base = base_ + offset;
    k.size = ScaleBytes(scale_, size);
    k.refs = ScaleRefs(scale_, refs);
    k.write_frac = wf;
    k.gap_mean = gap;
    program_.push_back(k);
    return *this;
  }

  /// Scatter over a private main region with `p_hot` of refs going to a
  /// (possibly shared) hot region.
  ProgramBuilder& ScatterHot(Addr offset, std::uint64_t size, Addr hot_offset,
                             std::uint64_t hot_size, double p_hot,
                             std::uint64_t refs, double wf, std::uint32_t gap,
                             bool hot_shared = false) {
    Kernel k;
    k.kind = Kernel::Kind::kScatterHot;
    k.base = base_ + offset;
    k.size = ScaleBytes(scale_, size);
    k.hot_base = (hot_shared ? shared_base_ : base_) + hot_offset;
    k.hot_size = ScaleBytes(scale_, hot_size);
    k.p_hot = p_hot;
    k.refs = ScaleRefs(scale_, refs);
    k.write_frac = wf;
    k.gap_mean = gap;
    program_.push_back(k);
    return *this;
  }

  /// Single-pass cold sweep interleaved with a small wrapping hot sweep:
  /// every hot block collects the same reuse count, forming one of the
  /// paper's homo-reuse groups. `hot_wf` < 0 inherits `wf`.
  ProgramBuilder& DualSweep(Addr offset, std::uint64_t size,
                            std::uint32_t passes, Addr hot_offset,
                            std::uint64_t hot_size, double p_hot, double wf,
                            std::uint32_t gap, double hot_wf = -1.0) {
    Kernel k;
    k.kind = Kernel::Kind::kDualSweep;
    k.base = base_ + offset;
    k.size = ScaleBytes(scale_, size);
    k.passes = passes;
    k.hot_base = base_ + hot_offset;
    k.hot_size = ScaleBytes(scale_, hot_size);
    k.p_hot = p_hot;
    k.write_frac = wf;
    k.hot_write_frac = hot_wf;
    k.gap_mean = gap;
    program_.push_back(k);
    return *this;
  }

  /// Cold sequential sweep interleaved with hot-set references — the
  /// bandwidth-hungry-vs-cold contention the paper's classification targets.
  ProgramBuilder& SweepHot(Addr offset, std::uint64_t size,
                           std::uint32_t passes, Addr hot_offset,
                           std::uint64_t hot_size, double p_hot, double zipf,
                           double wf, std::uint32_t gap,
                           bool hot_shared = false) {
    Kernel k;
    k.kind = Kernel::Kind::kSweepHot;
    k.base = base_ + offset;
    k.size = ScaleBytes(scale_, size);
    k.passes = passes;
    k.hot_base = (hot_shared ? shared_base_ : base_) + hot_offset;
    k.hot_size = ScaleBytes(scale_, hot_size);
    k.p_hot = p_hot;
    k.zipf_s = zipf;
    k.write_frac = wf;
    k.gap_mean = gap;
    program_.push_back(k);
    return *this;
  }

  std::vector<Kernel> Take() { return std::move(program_); }

 private:
  Addr base_;
  Addr shared_base_;
  double scale_;
  std::vector<Kernel> program_;
};

using BuildFn = void (*)(ProgramBuilder&);

// ---------------------------------------------------------------------------
// The eleven Table II applications. Comments give the modeled behaviour.
// ---------------------------------------------------------------------------

// Every workload mixes a *bandwidth-hungry* component (the H blocks of the
// paper's Fig. 4: tiles or hot sets small enough to live in the HBM cache
// once cold traffic is excluded) with a *cold* component (L blocks:
// streaming sweeps/scatter with 1-2 total uses). Under Alloy the cold fills
// continuously evict the hot blocks; alpha keeps them out, gamma retires
// finished tiles early. Region offsets inside a core's span: cold data at
// 0, secondary structures at 3 MiB, hot sets at 6 MiB.

// Hot-set sizing: per-core hot regions are kept at or below 160 KiB so the
// aggregate bandwidth-hungry set (16 cores x 160 KiB = 2.5 MiB) fits in the
// 4 MiB scaled HBM cache once cold traffic is excluded, and below the
// 320 KiB core-span stagger so hot regions of different cores never alias
// onto the same direct-mapped sets.

// NAS FT (3-D FFT, Class A): streaming transpose passes contending with a
// hot butterfly working set (homo-reuse ~13).
void BuildFT(ProgramBuilder& b) {
  b.DualSweep(0, 2_MiB, /*passes=*/1, /*hot=*/6_MiB, 160_KiB,
              /*p_hot=*/0.50, /*wf=*/0.30, /*gap=*/4);
}

// NAS IS (integer sort, Class A): streaming key reads with hot bucket
// counters, then a permutation write pass (cold writes).
void BuildIS(ProgramBuilder& b) {
  b.SweepHot(0, 1536_KiB, 1, /*hot=*/6_MiB, 96_KiB, 0.45, 0.80, 0.45, 3)
      .Sweep(0, 1536_KiB, 1, 0.70, 3);
}

// NAS MG (multi-grid, Class A): coarse-grid streaming against a hot fine
// grid, plus mid-grid passes — several homo-reuse clusters.
void BuildMG(ProgramBuilder& b) {
  b.DualSweep(0, 2_MiB, 1, /*hot=*/6_MiB, 128_KiB, 0.45, 0.40, 4)
      .Sweep(3_MiB, 96_KiB, 4, 0.40, 4);
}

// SPLASH-2 Cholesky (tk29.O): long-lived supernodal tiles (they die when
// factored — gamma's target) against sparse cold streaming.
void BuildCH(ProgramBuilder& b) {
  b.Tiled(0, 160_KiB, 80_KiB, /*tile_passes=*/14, 0.30, 5)
      .SweepHot(3_MiB, 1536_KiB, 1, /*hot=*/0, 160_KiB, 0.35, 0.50, 0.20, 5);
}

// SPLASH-2 Radix (2M integers): key passes (a narrow homo-reuse spike —
// Fig. 3) interleaved with cold scattered bucket writes.
void BuildRDX(ProgramBuilder& b) {
  b.DualSweep(0, 2_MiB, 1, /*hot=*/6_MiB, 160_KiB, 0.50, /*wf=*/0.70, 3,
              /*hot_wf=*/0.45);
}

// SPLASH-2 Ocean (514x514): stencil time-stepping over per-core grids
// (high homo-reuse ~22) against cold I/O-like passes between time steps.
void BuildOCN(ProgramBuilder& b) {
  b.DualSweep(0, 1536_KiB, 1, /*hot=*/6_MiB, 160_KiB, 0.70, /*wf=*/0.25, 3,
              /*hot_wf=*/0.45);
}

// SPLASH-2 FFT (1M points): butterfly passes over a per-core partition plus
// a cold bit-reversal reordering phase.
void BuildFFT(ProgramBuilder& b) {
  b.Sweep(6_MiB, 160_KiB, 3, 0.30, 4, /*stride=*/512)
      .DualSweep(0, 2_MiB, 1, /*hot=*/6_MiB, 160_KiB, 0.55, 0.30, 4);
}

// SPLASH-2 LU (blocked dense factorization): trailing-submatrix streaming
// against hot pivot tiles (homo-reuse ~24, the paper's high-reuse band),
// plus a blocked update stage.
void BuildLU(ProgramBuilder& b) {
  b.DualSweep(0, 2560_KiB, 1, /*hot=*/6_MiB, 160_KiB, 0.60, 0.35, 4)
      .Sweep(3_MiB, 96_KiB, /*passes=*/12, 0.35, 4);
}

// SPLASH-2 Barnes (16K particles): a shared Zipf tree walked by all cores
// while per-core particle arrays stream past it.
void BuildBRN(ProgramBuilder& b) {
  b.Hot(0, 2_MiB, /*refs=*/40000, /*zipf=*/0.90, 0.10, 5, /*shared=*/true)
      .SweepHot(0, 1536_KiB, 1, /*hot=*/0, 2_MiB, 0.35, 0.90, 0.30, 4,
                /*hot_shared=*/true);
}

// Phoenix Histogram (100 MB file): near-streaming file reads (the dominant
// low-reuse bandwidth spike of Fig. 3) plus hot shared bins.
void BuildHIST(ProgramBuilder& b) {
  b.SweepHot(0, 2560_KiB, 2, /*hot=*/0, 128_KiB, 0.25, 1.20, 0.25, 3,
             /*hot_shared=*/true);
}

// Phoenix Linear Regression (50 MB key file): read-mostly full passes with
// tiny hot accumulators.
void BuildLREG(ProgramBuilder& b) {
  b.SweepHot(0, 2_MiB, 3, /*hot=*/0, 64_KiB, 0.15, 0.80, 0.08, 3,
             /*hot_shared=*/true);
}

struct Entry {
  const char* label;
  const char* description;
  BuildFn build;
};

constexpr Entry kEntries[] = {
    {"FT", "NAS FT: array passes + strided transposes + blocked butterflies",
     &BuildFT},
    {"IS", "NAS IS: key sweeps + scattered counting with hot count region",
     &BuildIS},
    {"MG", "NAS MG: V-cycle sweeps over shrinking grids (reuse clusters)",
     &BuildMG},
    {"CH", "SPLASH-2 Cholesky: blocked supernodal tiles + sparse scatter",
     &BuildCH},
    {"RDX", "SPLASH-2 Radix: fixed key passes + scattered bucket writes",
     &BuildRDX},
    {"OCN", "SPLASH-2 Ocean: stencil time-stepping, write-heavy", &BuildOCN},
    {"FFT", "SPLASH-2 FFT: passes + strided butterflies + blocked stage",
     &BuildFFT},
    {"LU", "SPLASH-2 LU: init pass + long-lived high-reuse tiles", &BuildLU},
    {"BRN", "SPLASH-2 Barnes: shared Zipf tree + particle sweeps", &BuildBRN},
    {"HIST", "Phoenix Histogram: streaming file reads + hot shared bins",
     &BuildHIST},
    {"LREG", "Phoenix Linear Regression: read-mostly full passes", &BuildLREG},
};

const Entry* FindEntry(const std::string& label) {
  for (const Entry& e : kEntries) {
    if (label == e.label) return &e;
  }
  return nullptr;
}

}  // namespace

std::string WorkloadDescription(const std::string& label) {
  const Entry* e = FindEntry(label);
  return e == nullptr ? "unknown" : e->description;
}

std::unique_ptr<TraceSource> MakeWorkload(const std::string& label,
                                          const WorkloadBuildParams& params) {
  const Entry* e = FindEntry(label);
  if (e == nullptr) {
    throw std::invalid_argument("unknown workload label: " + label);
  }
  const Addr shared_base = Addr{params.num_cores} * kCoreSpan;
  std::vector<std::vector<Kernel>> programs;
  programs.reserve(params.num_cores);
  for (std::uint32_t c = 0; c < params.num_cores; ++c) {
    ProgramBuilder b(c, params.scale, shared_base);
    e->build(b);
    programs.push_back(b.Take());
  }
  const std::uint64_t seed = Mix64(Mix64(label.size() * 0x1234567 +
                                         static_cast<std::uint64_t>(
                                             label[0]) * 131 +
                                         static_cast<std::uint64_t>(
                                             label[label.size() - 1])) +
                                   params.seed_salt);
  return std::make_unique<KernelTrace>(label, std::move(programs), seed);
}

}  // namespace redcache
