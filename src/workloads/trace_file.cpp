#include "workloads/trace_file.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace redcache {

namespace {
constexpr char kMagic[4] = {'R', 'C', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;

struct Record {
  std::uint8_t core;
  std::uint8_t flags;
  std::uint16_t gap;
  std::uint64_t addr;
};

void WriteU32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint32_t ReadU32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
}  // namespace

struct TraceFileWriter::Impl {
  std::ofstream out;
};

TraceFileWriter::TraceFileWriter(const std::string& path,
                                 std::uint32_t num_cores)
    : impl_(std::make_unique<Impl>()) {
  impl_->out.open(path, std::ios::binary | std::ios::trunc);
  if (!impl_->out) {
    throw std::runtime_error("cannot create trace file: " + path);
  }
  impl_->out.write(kMagic, sizeof(kMagic));
  WriteU32(impl_->out, kVersion);
  WriteU32(impl_->out, num_cores);
}

TraceFileWriter::~TraceFileWriter() = default;

void TraceFileWriter::Append(std::uint32_t core, const MemRef& ref) {
  Record r;
  r.core = static_cast<std::uint8_t>(core);
  r.flags = ref.is_write ? 1 : 0;
  r.gap = static_cast<std::uint16_t>(std::min<std::uint32_t>(ref.gap, 0xffff));
  r.addr = ref.addr;
  impl_->out.write(reinterpret_cast<const char*>(&r), sizeof(r));
  records_++;
}

void TraceFileWriter::CaptureAll(TraceSource& source) {
  bool progressed = true;
  MemRef ref;
  while (progressed) {
    progressed = false;
    for (std::uint32_t c = 0; c < source.num_cores(); ++c) {
      if (source.Next(c, ref)) {
        Append(c, ref);
        progressed = true;
      }
    }
  }
}

void TraceFileWriter::Flush() { impl_->out.flush(); }

FileTraceSource::FileTraceSource(const std::string& path) : name_(path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not a RedCache trace file: " + path);
  }
  const std::uint32_t version = ReadU32(in);
  if (version != kVersion) {
    throw std::runtime_error("unsupported trace version in " + path);
  }
  num_cores_ = ReadU32(in);
  if (num_cores_ == 0 || num_cores_ > 256) {
    throw std::runtime_error("implausible core count in " + path);
  }
  per_core_.resize(num_cores_);
  consumed_.assign(num_cores_, 0);

  Addr lo = ~Addr{0}, hi = 0;
  Record r;
  while (in.read(reinterpret_cast<char*>(&r), sizeof(r))) {
    if (r.core >= num_cores_) {
      throw std::runtime_error("record with out-of-range core in " + path);
    }
    MemRef ref;
    ref.addr = r.addr;
    ref.is_write = (r.flags & 1) != 0;
    ref.gap = std::max<std::uint16_t>(1, r.gap);
    per_core_[r.core].push_back(ref);
    total_records_++;
    lo = std::min(lo, r.addr);
    hi = std::max(hi, r.addr + kBlockBytes);
  }
  footprint_ = total_records_ == 0 ? 0 : hi - lo;
}

bool FileTraceSource::Next(std::uint32_t core, MemRef& out) {
  if (core >= num_cores_ || per_core_[core].empty()) return false;
  out = per_core_[core].front();
  per_core_[core].pop_front();
  consumed_[core]++;
  return true;
}

void FileTraceSource::Restore(ser::Reader& r) {
  r.Section("ftrace");
  const std::size_t n = r.SeqLen(8);
  if (n != num_cores_) {
    throw ser::SerializeError("trace file core-count mismatch in " + name_);
  }
  // Fast-forward a freshly loaded copy of the same file to the snapshotted
  // consumption point.
  for (std::uint32_t c = 0; c < num_cores_; ++c) {
    const std::uint64_t want = r.U64();
    if (want < consumed_[c] || want - consumed_[c] > per_core_[c].size()) {
      throw ser::SerializeError("trace file shorter than the checkpoint");
    }
    while (consumed_[c] < want) {
      per_core_[c].pop_front();
      consumed_[c]++;
    }
  }
}

}  // namespace redcache
