// Trace capture and replay.
//
// Lets users run the simulator on real application traces (e.g. captured
// with a PIN/DynamoRIO tool) instead of the synthetic Table II suite, and
// lets the synthetic generators be snapshotted for exact cross-machine
// reproduction.
//
// File format (little-endian, versioned):
//   header:  magic "RCTR" | u32 version | u32 num_cores
//   records: u8 core | u8 flags(bit0=write) | u16 gap | u64 addr
// Records may interleave cores arbitrarily; replay demultiplexes them into
// per-core queues.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "workloads/trace.hpp"

namespace redcache {

/// Writes a trace file from any TraceSource (or record-by-record).
class TraceFileWriter {
 public:
  /// Throws std::runtime_error if the file cannot be created.
  TraceFileWriter(const std::string& path, std::uint32_t num_cores);
  ~TraceFileWriter();
  TraceFileWriter(const TraceFileWriter&) = delete;
  TraceFileWriter& operator=(const TraceFileWriter&) = delete;

  void Append(std::uint32_t core, const MemRef& ref);
  /// Drain `source` completely into the file (round-robin across cores).
  void CaptureAll(TraceSource& source);
  void Flush();

  std::uint64_t records_written() const { return records_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint64_t records_ = 0;
};

/// Replays a trace file as a TraceSource.
class FileTraceSource : public TraceSource {
 public:
  /// Loads the whole file; throws std::runtime_error on format errors.
  explicit FileTraceSource(const std::string& path);

  bool Next(std::uint32_t core, MemRef& out) override;
  std::uint32_t num_cores() const override { return num_cores_; }
  std::uint64_t footprint_bytes() const override { return footprint_; }
  std::string name() const override { return name_; }

  std::uint64_t total_records() const { return total_records_; }

  /// Checkpointing: the file contents are configuration (reloaded by
  /// constructing the same path), so only the per-core consumption counts
  /// cross the boundary; Restore fast-forwards a freshly loaded source.
  bool checkpointable() const override { return true; }
  void Snapshot(ser::Writer& w) const override {
    w.Section("ftrace");
    w.U64Seq(consumed_);
  }
  void Restore(ser::Reader& r) override;

 private:
  std::string name_;
  std::uint32_t num_cores_ = 0;
  std::uint64_t footprint_ = 0;
  std::uint64_t total_records_ = 0;
  std::vector<std::deque<MemRef>> per_core_;
  std::vector<std::uint64_t> consumed_;  ///< per-core refs already served
};

}  // namespace redcache
