#include "workloads/kernel_trace.hpp"

#include <algorithm>
#include <cassert>

namespace redcache {

namespace {
/// Jitter a mean gap by +/-50% deterministically.
std::uint32_t JitterGap(Rng& rng, std::uint32_t mean) {
  if (mean <= 1) return 1;
  const std::uint64_t lo = std::max<std::uint64_t>(1, mean / 2);
  const std::uint64_t hi = mean + mean / 2;
  return static_cast<std::uint32_t>(rng.Range(lo, hi));
}

/// Spread a block rank over a region so that Zipf-popular ranks are not all
/// physically adjacent (defeats accidental row-buffer friendliness).
Addr SpreadBlock(Addr base, std::uint64_t blocks, std::uint64_t rank) {
  const std::uint64_t spread = Mix64(rank) % blocks;
  return base + spread * kBlockBytes;
}
}  // namespace

KernelTrace::KernelTrace(std::string name,
                         std::vector<std::vector<Kernel>> programs,
                         std::uint64_t seed)
    : name_(std::move(name)) {
  cores_.resize(programs.size());
  Addr max_end = 0;
  Addr min_base = ~Addr{0};
  for (std::size_t c = 0; c < programs.size(); ++c) {
    cores_[c].program = std::move(programs[c]);
    cores_[c].rng.Reseed(seed * 0x9e3779b97f4a7c15ULL + c + 1);
    for (const Kernel& k : cores_[c].program) {
      min_base = std::min(min_base, k.base);
      max_end = std::max(max_end, k.base + k.size);
      if (k.kind == Kernel::Kind::kScatterHot ||
          k.kind == Kernel::Kind::kSweepHot ||
          k.kind == Kernel::Kind::kDualSweep) {
        min_base = std::min(min_base, k.hot_base);
        max_end = std::max(max_end, k.hot_base + k.hot_size);
      }
    }
  }
  footprint_ = max_end > min_base ? max_end - min_base : 0;
}

std::uint64_t KernelTrace::KernelRefCount(const Kernel& k) {
  const std::uint64_t blocks_per_pass =
      std::max<std::uint64_t>(1, k.size / std::max<std::uint32_t>(1, k.stride));
  switch (k.kind) {
    case Kernel::Kind::kSweep:
      return blocks_per_pass * k.passes;
    case Kernel::Kind::kTiled: {
      const std::uint64_t tiles =
          std::max<std::uint64_t>(1, k.size / std::max<std::uint64_t>(
                                              k.tile_bytes, kBlockBytes));
      const std::uint64_t per_tile =
          std::max<std::uint64_t>(1, k.tile_bytes / k.stride) * k.tile_passes;
      return tiles * per_tile;
    }
    case Kernel::Kind::kHot:
    case Kernel::Kind::kScatter:
    case Kernel::Kind::kScatterHot:
      return k.refs;
    case Kernel::Kind::kSweepHot:
    case Kernel::Kind::kDualSweep: {
      // Enough references for `passes` cold sweeps plus the interleaved
      // hot traffic.
      const double cold = static_cast<double>(blocks_per_pass * k.passes);
      return static_cast<std::uint64_t>(cold / (1.0 - k.p_hot)) + 1;
    }
  }
  return 0;
}

bool KernelTrace::Next(std::uint32_t core, MemRef& out) {
  assert(core < cores_.size());
  CoreState& cs = cores_[core];
  while (cs.kernel_idx < cs.program.size()) {
    const Kernel& k = cs.program[cs.kernel_idx];
    if (cs.emitted < KernelRefCount(k) && EmitFromKernel(cs, k, out)) {
      cs.emitted++;
      return true;
    }
    cs.kernel_idx++;
    cs.emitted = 0;
    cs.cursor = 0;
    cs.pass = 0;
    cs.tile = 0;
  }
  return false;
}

bool KernelTrace::EmitFromKernel(CoreState& cs, const Kernel& k, MemRef& out) {
  Rng& rng = cs.rng;
  out.is_write = rng.Chance(k.write_frac);
  out.gap = JitterGap(rng, k.gap_mean);
  if (k.pause_every != 0 && cs.emitted != 0 &&
      cs.emitted % k.pause_every == 0) {
    // Compute stretch between memory bursts.
    out.gap += static_cast<std::uint32_t>(rng.Geometric(k.pause_cycles));
  }

  const std::uint64_t stride = std::max<std::uint32_t>(1, k.stride);
  switch (k.kind) {
    case Kernel::Kind::kSweep: {
      const std::uint64_t per_pass = std::max<std::uint64_t>(1, k.size / stride);
      out.addr = k.base + (cs.cursor % per_pass) * stride;
      cs.cursor++;
      return true;
    }
    case Kernel::Kind::kTiled: {
      const std::uint64_t tile_bytes =
          std::max<std::uint64_t>(k.tile_bytes, kBlockBytes);
      const std::uint64_t tiles = std::max<std::uint64_t>(1, k.size / tile_bytes);
      const std::uint64_t per_sweep =
          std::max<std::uint64_t>(1, tile_bytes / stride);
      const std::uint64_t per_tile = per_sweep * k.tile_passes;
      const std::uint64_t tile = (cs.cursor / per_tile) % tiles;
      const std::uint64_t within = cs.cursor % per_sweep;
      out.addr = k.base + tile * tile_bytes + within * stride;
      cs.cursor++;
      return true;
    }
    case Kernel::Kind::kHot: {
      const std::uint64_t blocks =
          std::max<std::uint64_t>(1, k.size / kBlockBytes);
      const std::uint64_t rank = rng.Zipf(blocks, k.zipf_s);
      out.addr = SpreadBlock(k.base, blocks, rank);
      return true;
    }
    case Kernel::Kind::kScatter: {
      const std::uint64_t blocks =
          std::max<std::uint64_t>(1, k.size / kBlockBytes);
      out.addr = k.base + rng.Below(blocks) * kBlockBytes;
      return true;
    }
    case Kernel::Kind::kScatterHot: {
      if (rng.Chance(k.p_hot)) {
        const std::uint64_t blocks =
            std::max<std::uint64_t>(1, k.hot_size / kBlockBytes);
        const std::uint64_t rank = rng.Zipf(blocks, k.zipf_s);
        out.addr = SpreadBlock(k.hot_base, blocks, rank);
      } else {
        const std::uint64_t blocks =
            std::max<std::uint64_t>(1, k.size / kBlockBytes);
        out.addr = k.base + rng.Below(blocks) * kBlockBytes;
      }
      return true;
    }
    case Kernel::Kind::kSweepHot: {
      if (rng.Chance(k.p_hot)) {
        const std::uint64_t blocks =
            std::max<std::uint64_t>(1, k.hot_size / kBlockBytes);
        const std::uint64_t rank = rng.Zipf(blocks, k.zipf_s);
        out.addr = SpreadBlock(k.hot_base, blocks, rank);
        if (k.hot_write_frac >= 0.0) {
          out.is_write = rng.Chance(k.hot_write_frac);
        }
      } else {
        const std::uint64_t per_pass =
            std::max<std::uint64_t>(1, k.size / stride);
        out.addr = k.base + (cs.cursor % per_pass) * stride;
        cs.cursor++;  // only cold references advance the sweep
      }
      return true;
    }
    case Kernel::Kind::kDualSweep: {
      if (rng.Chance(k.p_hot)) {
        const std::uint64_t hot_blocks =
            std::max<std::uint64_t>(1, k.hot_size / kBlockBytes);
        out.addr = k.hot_base + (cs.tile % hot_blocks) * kBlockBytes;
        cs.tile++;  // hot sweep wraps repeatedly -> uniform reuse counts
        if (k.hot_write_frac >= 0.0) {
          out.is_write = rng.Chance(k.hot_write_frac);
        }
      } else {
        const std::uint64_t per_pass =
            std::max<std::uint64_t>(1, k.size / stride);
        out.addr = k.base + (cs.cursor % per_pass) * stride;
        cs.cursor++;
      }
      return true;
    }
  }
  return false;
}

}  // namespace redcache
