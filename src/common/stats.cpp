#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace redcache {

bool NaturalNameLess(const std::string& a, const std::string& b) {
  std::size_t i = 0, j = 0;
  const auto digit = [](char c) { return c >= '0' && c <= '9'; };
  while (i < a.size() && j < b.size()) {
    if (digit(a[i]) && digit(b[j])) {
      std::size_t ia = i, jb = j;
      while (ia < a.size() && digit(a[ia])) ia++;
      while (jb < b.size() && digit(b[jb])) jb++;
      // Compare the digit runs by value: longer run of significant digits
      // wins; equal lengths compare lexically (which is numeric here).
      std::size_t pa = i, pb = j;
      while (pa < ia && a[pa] == '0') pa++;
      while (pb < jb && b[pb] == '0') pb++;
      const std::size_t la = ia - pa, lb = jb - pb;
      if (la != lb) return la < lb;
      const int cmp = a.compare(pa, la, b, pb, lb);
      if (cmp != 0) return cmp < 0;
      // Equal values: fewer leading zeros first, for a total order.
      if (ia - i != jb - j) return ia - i < jb - j;
      i = ia;
      j = jb;
      continue;
    }
    if (a[i] != b[j]) return a[i] < b[j];
    i++;
    j++;
  }
  return a.size() - i < b.size() - j;
}

Histogram::Histogram(std::uint64_t bucket_width, std::size_t num_buckets)
    : bucket_width_(bucket_width == 0 ? 1 : bucket_width),
      buckets_(num_buckets == 0 ? 1 : num_buckets, 0) {}

void Histogram::Add(std::uint64_t value, std::uint64_t weight) {
  const std::uint64_t idx = value / bucket_width_;
  if (idx < buckets_.size()) {
    buckets_[idx] += weight;
  } else {
    overflow_ += weight;
  }
  total_samples_ += 1;
  total_weight_ += weight;
  weighted_sum_ += static_cast<double>(value) * static_cast<double>(weight);
}

double Histogram::Mean() const {
  if (total_weight_ == 0) return 0.0;
  return weighted_sum_ / static_cast<double>(total_weight_);
}

std::uint64_t Histogram::Quantile(double q) const {
  if (total_weight_ == 0) return 0;
  // Smallest positive rank at or past the requested quantile. Flooring here
  // (and a plain cast for q=0) yielded target 0, which made the scan stop at
  // bucket 0 even when it was empty — Quantile(0) must be the end of the
  // first bucket that actually observed weight.
  const double scaled = q * static_cast<double>(total_weight_);
  const auto target =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(scaled)));
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    acc += buckets_[i];
    if (acc >= target) return (i + 1) * bucket_width_ - 1;
  }
  return buckets_.size() * bucket_width_;  // in overflow
}

void Histogram::Snapshot(ser::Writer& w) const {
  w.Section("hist");
  w.U64(bucket_width_);
  w.U64Seq(buckets_);
  w.U64(overflow_);
  w.U64(total_samples_);
  w.U64(total_weight_);
  w.F64(weighted_sum_);
}

void Histogram::Restore(ser::Reader& r) {
  r.Section("hist");
  const std::uint64_t bucket_width = r.U64();
  std::vector<std::uint64_t> buckets = r.U64Vec();
  bucket_width_ = bucket_width == 0 ? 1 : bucket_width;
  buckets_ = buckets.empty() ? std::vector<std::uint64_t>(1, 0)
                             : std::move(buckets);
  overflow_ = r.U64();
  total_samples_ = r.U64();
  total_weight_ = r.U64();
  weighted_sum_ = r.F64();
}

void Histogram::Clear() {
  for (auto& b : buckets_) b = 0;
  overflow_ = 0;
  total_samples_ = 0;
  total_weight_ = 0;
  weighted_sum_ = 0.0;
}

std::uint64_t& StatSet::Counter(const std::string& name) {
  return counters_[name];
}

std::uint64_t StatSet::GetCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

bool StatSet::HasCounter(const std::string& name) const {
  return counters_.count(name) != 0;
}

Histogram& StatSet::Hist(const std::string& name, std::uint64_t bucket_width,
                         std::size_t num_buckets) {
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_.emplace(name, Histogram(bucket_width, num_buckets)).first;
  }
  return it->second;
}

const Histogram* StatSet::FindHist(const std::string& name) const {
  auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

StatSet StatSet::Diff(const StatSet& other) const {
  StatSet out;
  for (const auto& [name, value] : counters_) {
    out.Counter(name) = value - other.GetCounter(name);
  }
  return out;
}

void StatSet::Absorb(const StatSet& other, const std::string& prefix) {
  for (const auto& [name, value] : other.counters_) {
    counters_[prefix + name] += value;
  }
  for (const auto& [name, hist] : other.hists_) {
    hists_.emplace(prefix + name, hist);
  }
}

void StatSet::Clear() {
  counters_.clear();
  hists_.clear();
}

void StatSet::Snapshot(ser::Writer& w) const {
  w.Section("stats");
  w.U64(counters_.size());
  for (const auto& [name, value] : counters_) {
    w.Str(name);
    w.U64(value);
  }
  w.U64(hists_.size());
  for (const auto& [name, hist] : hists_) {
    w.Str(name);
    hist.Snapshot(w);
  }
}

void StatSet::Restore(ser::Reader& r) {
  r.Section("stats");
  Clear();
  const std::size_t num_counters = r.SeqLen(16);  // name length + value
  for (std::size_t i = 0; i < num_counters; ++i) {
    const std::string name = r.Str();
    counters_[name] = r.U64();
  }
  const std::size_t num_hists = r.SeqLen(16);
  for (std::size_t i = 0; i < num_hists; ++i) {
    const std::string name = r.Str();
    hists_[name].Restore(r);
  }
}

std::string StatSet::ToString() const {
  // Human-facing dump: natural order groups "chan2" before "chan10".
  std::vector<const std::map<std::string, std::uint64_t>::value_type*> sorted;
  sorted.reserve(counters_.size());
  for (const auto& kv : counters_) sorted.push_back(&kv);
  std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
    return NaturalNameLess(a->first, b->first);
  });
  std::ostringstream os;
  for (const auto* kv : sorted) {
    os << kv->first << " = " << kv->second << '\n';
  }
  return os.str();
}

}  // namespace redcache
