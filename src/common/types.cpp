#include "common/types.hpp"

namespace redcache {

const char* ToString(AccessType t) {
  switch (t) {
    case AccessType::kRead:
      return "read";
    case AccessType::kWrite:
      return "write";
    case AccessType::kWriteback:
      return "writeback";
  }
  return "?";
}

}  // namespace redcache
