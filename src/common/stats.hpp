// Lightweight statistics collection.
//
// Every simulated component owns named counters and histograms registered in
// a StatSet. Benches and tests read them by name; the registry supports
// hierarchical prefixes ("hbm.chan0.act") and snapshot/diff so a benchmark
// can measure a region of execution.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/serialize.hpp"

namespace redcache {

/// Numeric-aware name ordering: digit runs compare by value, so
/// "hbm.chan2.act" sorts before "hbm.chan10.act" and hierarchical names
/// group the way a human reads them. Used for dumps and telemetry output
/// only — StatSet's internal map stays lexicographic, because snapshot
/// serialization and fingerprint hashing depend on that iteration order.
bool NaturalNameLess(const std::string& a, const std::string& b);

/// A fixed-width bucketed histogram over uint64 samples.
class Histogram {
 public:
  /// `bucket_width` >= 1; values >= bucket_width*num_buckets go to overflow.
  Histogram(std::uint64_t bucket_width = 1, std::size_t num_buckets = 64);

  void Add(std::uint64_t value, std::uint64_t weight = 1);

  std::uint64_t total_samples() const { return total_samples_; }
  std::uint64_t total_weight() const { return total_weight_; }
  std::uint64_t overflow() const { return overflow_; }
  std::size_t num_buckets() const { return buckets_.size(); }
  std::uint64_t bucket_width() const { return bucket_width_; }
  std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }
  double weighted_sum() const { return weighted_sum_; }

  /// Checkpointing (ser::Checkpointable contract, by value not virtual —
  /// histograms live in value-typed maps). Restore overwrites the full
  /// state, including geometry, so a default-constructed histogram restores
  /// to an exact copy of the snapshotted one.
  void Snapshot(ser::Writer& w) const;
  void Restore(ser::Reader& r);

  /// Mean of the weighted samples (0 if empty).
  double Mean() const;
  /// Smallest v such that >= q of total weight lies in buckets <= v.
  std::uint64_t Quantile(double q) const;

  void Clear();

 private:
  std::uint64_t bucket_width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_samples_ = 0;
  std::uint64_t total_weight_ = 0;
  double weighted_sum_ = 0.0;
};

/// Named counters + histograms. Cheap to copy (snapshot).
class StatSet {
 public:
  /// Returns a reference valid until the StatSet is destroyed or copied.
  std::uint64_t& Counter(const std::string& name);
  std::uint64_t GetCounter(const std::string& name) const;
  bool HasCounter(const std::string& name) const;

  Histogram& Hist(const std::string& name, std::uint64_t bucket_width = 1,
                  std::size_t num_buckets = 64);
  const Histogram* FindHist(const std::string& name) const;

  /// All counters, sorted by name.
  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }

  /// All histograms, sorted by name.
  const std::map<std::string, Histogram>& hists() const { return hists_; }

  /// this - other for every counter present in this (missing treated as 0).
  StatSet Diff(const StatSet& other) const;

  /// Merge `other` into this, adding counters and prefixing names.
  void Absorb(const StatSet& other, const std::string& prefix);

  void Clear();

  std::string ToString() const;

  /// Checkpointing: counters and histograms, in the map's lexicographic
  /// order (the same order fingerprint hashing depends on).
  void Snapshot(ser::Writer& w) const;
  /// Replaces the whole contents with the snapshotted set.
  void Restore(ser::Reader& r);

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Histogram> hists_;
};

}  // namespace redcache
