#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace redcache {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string TextTable::Pct(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", prec, v * 100.0);
  return buf;
}

std::string TextTable::Render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      os << (c == 0 ? "" : "  ");
      os << cell;
      os << std::string(width[c] - cell.size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace redcache
