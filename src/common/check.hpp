// Always-on checked invariants.
//
// REDCACHE_CHECK stays armed in Release builds: fuzz campaigns and long
// simulations run optimized, and an invariant violation must abort there
// too, not silently corrupt counters. Use it for preconditions whose
// violation means the simulation state is no longer trustworthy; keep plain
// assert() for hot-loop sanity checks that are too expensive to ship.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace redcache::detail {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "REDCACHE_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg[0] != '\0' ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace redcache::detail

#define REDCACHE_CHECK(cond, msg)                                       \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::redcache::detail::CheckFailed(__FILE__, __LINE__, #cond, msg);  \
    }                                                                   \
  } while (0)
