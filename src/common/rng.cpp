#include "common/rng.hpp"

#include <cmath>

namespace redcache {

std::uint64_t Rng::Geometric(double mean) {
  if (mean <= 1.0) return 1;
  const double p = 1.0 / mean;
  // Inverse CDF sampling; clamp u away from 0 to avoid log(0).
  double u = NextDouble();
  if (u < 1e-12) u = 1e-12;
  const double v = std::log(u) / std::log(1.0 - p);
  const auto k = static_cast<std::uint64_t>(v) + 1;
  return k == 0 ? 1 : k;
}

std::uint64_t Rng::Zipf(std::uint64_t n, double s) {
  if (n <= 1) return 0;
  // Inverse-power transform: rank ~ u^(1/(1-s)) scaled to [0, n).
  // For s in (0, 1.6] this gives a usable heavy-tailed rank distribution
  // without the cost of exact Zipf rejection sampling.
  double u = NextDouble();
  if (u < 1e-12) u = 1e-12;
  const double expo = 1.0 / (1.0 + s);
  const double r = std::pow(u, 1.0 / expo);  // concentrated near 0
  auto rank = static_cast<std::uint64_t>(r * static_cast<double>(n));
  return rank >= n ? n - 1 : rank;
}

}  // namespace redcache
