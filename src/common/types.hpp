// Fundamental types shared by every RedCache module.
//
// All simulated times are expressed in CPU cycles at 3.2 GHz (the paper's
// Table I gives DRAM timing parameters directly in CPU cycles). The DRAM
// devices run at 1600 MHz DDR, i.e. one DRAM clock == 2 CPU cycles; the
// DRAM model takes care of that internally.
#pragma once

#include <cstdint>
#include <string>

namespace redcache {

/// Physical byte address.
using Addr = std::uint64_t;

/// Simulated time in CPU cycles (3.2 GHz).
using Cycle = std::uint64_t;

/// Unique, monotonically increasing id of an in-flight memory request.
using RequestId = std::uint64_t;

/// Cache-block size used throughout the hierarchy (Table I: 64 B blocks).
inline constexpr std::uint32_t kBlockBytes = 64;
inline constexpr std::uint32_t kBlockShift = 6;

/// OS page size; alpha counters are shared by all blocks of a page.
inline constexpr std::uint32_t kPageBytes = 4096;
inline constexpr std::uint32_t kPageShift = 12;
inline constexpr std::uint32_t kBlocksPerPage = kPageBytes / kBlockBytes;

/// Tag+ECC sidecar moved together with a block on the WideIO bus
/// (Table I note: "HBM cache puts tags with data in the unused ECC bits",
/// i.e. an Alloy-style TAD transfer of 72 B).
inline constexpr std::uint32_t kTagEccBytes = 8;

/// Kind of a memory access as seen below the L3 (and inside the caches).
enum class AccessType : std::uint8_t {
  kRead,      ///< demand read / fetch
  kWrite,     ///< store (write-allocate inside SRAM levels)
  kWriteback  ///< dirty eviction travelling down the hierarchy
};

/// True for both store-like flavours.
constexpr bool IsWrite(AccessType t) {
  return t != AccessType::kRead;
}

const char* ToString(AccessType t);

/// Block-aligned address of `a`.
constexpr Addr BlockAlign(Addr a) { return a & ~Addr{kBlockBytes - 1}; }
/// Block index (address / 64).
constexpr Addr BlockIndex(Addr a) { return a >> kBlockShift; }
/// Page index (address / 4096).
constexpr Addr PageIndex(Addr a) { return a >> kPageShift; }

/// Common size literals.
constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v << 10; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v << 20; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v << 30; }

}  // namespace redcache
