// Saturating counter, as used by the paper's r-counts ("In practice,
// RedCache employs saturating counters for tracking block reuses").
#pragma once

#include <cstdint>

namespace redcache {

/// An N-bit-style saturating counter with runtime maximum.
class SaturatingCounter {
 public:
  explicit SaturatingCounter(std::uint32_t max = 255, std::uint32_t value = 0)
      : max_(max), value_(value > max ? max : value) {}

  std::uint32_t value() const { return value_; }
  std::uint32_t max() const { return max_; }

  void Increment() {
    if (value_ < max_) ++value_;
  }
  void Decrement() {
    if (value_ > 0) --value_;
  }
  void Reset(std::uint32_t v = 0) { value_ = v > max_ ? max_ : v; }

  bool Saturated() const { return value_ == max_; }

 private:
  std::uint32_t max_;
  std::uint32_t value_;
};

}  // namespace redcache
