// Uniform binary serialization for checkpointable simulation state.
//
// Every stateful component implements the Checkpointable contract —
// Snapshot(Writer&) / Restore(Reader&) — so a whole simulation serializes
// to one versioned blob (sim/checkpoint.hpp) and the disk result cache
// shares the same framing (format v3, sim/batch.cpp).
//
// The encoding is deliberately dumb: little-endian fixed-width integers,
// IEEE-754 bit patterns for doubles, length-prefixed strings. No varints,
// no alignment, no reflection. What it adds over raw memcpy:
//
//  - Section tags. Writer::Section(name) emits a 32-bit FNV-1a hash of the
//    section name; Reader::Section(name) verifies it. A reader that drifts
//    out of sync with the writer (schema skew, truncation, corruption)
//    fails loudly at the next section boundary with both names' context
//    instead of silently reinterpreting bytes.
//  - Bounds checking. Every read validates the remaining byte count and
//    throws SerializeError instead of running off the buffer, so a corrupt
//    or truncated blob can never fault — callers treat the exception as a
//    cache miss / unusable checkpoint.
//
// Endianness: bytes are composed and decomposed arithmetically, so the
// format is identical on any host.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace redcache::ser {

/// Thrown on any malformed input: truncation, a section-tag mismatch, an
/// impossible length, a version the reader does not understand.
class SerializeError : public std::runtime_error {
 public:
  explicit SerializeError(const std::string& what)
      : std::runtime_error("serialize: " + what) {}
};

/// Encode/decode one little-endian U64 at `p` — the same byte layout
/// Writer::U64/Reader::U64 use, for bulk record loops over Raw() spans.
inline void PutU64(std::uint8_t* p, std::uint64_t v) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // The wire format IS the little-endian host layout: a single 8-byte
  // store instead of a byte-compose loop the compiler won't vectorize.
  __builtin_memcpy(p, &v, 8);
#else
  for (int i = 0; i < 8; ++i) p[i] = (v >> (8 * i)) & 0xff;
#endif
}
inline std::uint64_t GetU64(const std::uint8_t* p) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  std::uint64_t v;
  __builtin_memcpy(&v, p, 8);
  return v;
#else
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
#endif
}

/// FNV-1a over the section name — the 32-bit guard tag.
constexpr std::uint32_t NameTag(const char* name) {
  std::uint32_t h = 2166136261u;
  for (const char* p = name; *p != '\0'; ++p) {
    h ^= static_cast<std::uint32_t>(static_cast<unsigned char>(*p));
    h *= 16777619u;
  }
  return h;
}

class Writer {
 public:
  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U32(std::uint32_t v) {
    // Compose on the stack, append in one call: checkpoint blobs are
    // megabytes of fixed-width integers, and per-byte push_back (eight
    // capacity checks per U64) dominated snapshot capture time.
    std::uint8_t b[4];
    for (int i = 0; i < 4; ++i) b[i] = (v >> (8 * i)) & 0xff;
    buf_.insert(buf_.end(), b, b + 4);
  }
  void U64(std::uint64_t v) {
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i) b[i] = (v >> (8 * i)) & 0xff;
    buf_.insert(buf_.end(), b, b + 8);
  }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void F64(double v) {
    static_assert(sizeof(double) == 8);
    std::uint64_t bits;
    __builtin_memcpy(&bits, &v, 8);
    U64(bits);
  }
  void Str(const std::string& s) {
    U64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  /// Guard tag; pair with Reader::Section(name) at the same point.
  void Section(const char* name) { U32(NameTag(name)); }

  /// Bulk append: grows the buffer by `n` bytes and returns a pointer to
  /// them. For hot fixed-record loops (cache line arrays) where per-field
  /// calls dominate — fill with PutU64 / raw byte stores using the same
  /// little-endian layout. The pointer is invalidated by the next write.
  std::uint8_t* Raw(std::size_t n) {
    const std::size_t off = buf_.size();
    buf_.resize(off + n);
    return buf_.data() + off;
  }

  /// Length-prefixed sequences of uniform integral elements.
  template <typename Seq>
  void U64Seq(const Seq& seq) {
    U64(seq.size());
    std::uint8_t* p = Raw(8 * seq.size());
    for (const auto& v : seq) {
      PutU64(p, static_cast<std::uint64_t>(v));
      p += 8;
    }
  }
  template <typename Seq>
  void U8Seq(const Seq& seq) {
    U64(seq.size());
    std::uint8_t* p = Raw(seq.size());
    for (const auto& v : seq) *p++ = static_cast<std::uint8_t>(v);
  }

  /// Capacity hint for blob-sized writes: reserving the expected size up
  /// front avoids the growth reallocations that otherwise dominate a
  /// megabyte-scale snapshot.
  void Reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }

  /// Overwrite 8 already-written bytes at `off` (e.g. a checksum
  /// placeholder patched after the payload it covers is known).
  void PatchU64(std::size_t off, std::uint64_t v) {
    if (off + 8 > buf_.size()) {
      throw SerializeError("PatchU64 offset past the written bytes");
    }
    PutU64(buf_.data() + off, v);
  }

  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  /// The accumulated bytes as a std::string (checkpoint blobs, cache files).
  std::string TakeString() {
    std::string out(buf_.begin(), buf_.end());
    buf_.clear();
    return out;
  }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const std::string& bytes)
      : data_(reinterpret_cast<const std::uint8_t*>(bytes.data())),
        size_(bytes.size()) {}

  std::uint8_t U8() {
    Need(1);
    return data_[pos_++];
  }
  std::uint32_t U32() {
    Need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::uint64_t U64() {
    Need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  bool Bool() { return U8() != 0; }
  double F64() {
    const std::uint64_t bits = U64();
    double v;
    __builtin_memcpy(&v, &bits, 8);
    return v;
  }
  std::string Str() {
    const std::uint64_t n = U64();
    Need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  /// Verify the guard tag written by Writer::Section(name); throws with the
  /// expected section name on mismatch.
  void Section(const char* name) {
    const std::uint32_t got = U32();
    if (got != NameTag(name)) {
      throw SerializeError(std::string("section tag mismatch at \"") + name +
                           "\" (stream is misaligned or corrupt)");
    }
  }

  /// A sequence length that must be storable: guards against a corrupt
  /// length field causing a giant allocation. Each element still needs at
  /// least `min_elem_bytes` bytes in the remaining stream.
  std::size_t SeqLen(std::size_t min_elem_bytes = 1) {
    const std::uint64_t n = U64();
    if (min_elem_bytes != 0 && n > (size_ - pos_) / min_elem_bytes) {
      throw SerializeError("sequence length " + std::to_string(n) +
                           " exceeds remaining input");
    }
    return static_cast<std::size_t>(n);
  }
  std::vector<std::uint64_t> U64Vec() {
    const std::size_t n = SeqLen(8);
    std::vector<std::uint64_t> v(n);
    const std::uint8_t* p = Raw(8 * n);
    for (std::size_t i = 0; i < n; ++i) v[i] = GetU64(p + 8 * i);
    return v;
  }

  /// Bulk read: bounds-checks and consumes `n` bytes, returning a pointer
  /// to them. Decode with GetU64 / raw byte loads; the counterpart of
  /// Writer::Raw.
  const std::uint8_t* Raw(std::size_t n) {
    Need(n);
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }
  /// Assert the whole input was consumed (trailing garbage => corrupt).
  void ExpectEnd() const {
    if (!AtEnd()) {
      throw SerializeError(std::to_string(remaining()) +
                           " trailing bytes after the last field");
    }
  }

 private:
  void Need(std::uint64_t n) const {
    if (n > size_ - pos_) {
      throw SerializeError("input truncated (need " + std::to_string(n) +
                           " bytes, have " + std::to_string(size_ - pos_) +
                           ")");
    }
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// The uniform contract: a component writes its complete mutable state in
/// Snapshot and reconstitutes it in Restore, reading exactly the bytes it
/// wrote. Configuration (geometry, policy parameters) is NOT serialized —
/// Restore runs on a freshly constructed component built from the same
/// RunSpec, so only run-accumulated state crosses the boundary. Derived /
/// memoized state may be recomputed in Restore instead of serialized, as
/// long as subsequent behavior is bit-identical.
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;
  virtual void Snapshot(Writer& w) const = 0;
  virtual void Restore(Reader& r) = 0;
};

}  // namespace redcache::ser
