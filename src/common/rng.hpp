// Deterministic pseudo-random number generation.
//
// Simulations must be reproducible bit-for-bit across runs and machines, so
// we avoid std::mt19937 (whose distributions are implementation-defined) and
// implement SplitMix64 (seeding / hashing) and xoshiro256** (bulk stream)
// with our own integer/real distribution helpers.
#pragma once

#include <array>
#include <cstdint>

#include "common/serialize.hpp"

namespace redcache {

/// SplitMix64 step; also a good 64-bit mix/hash function.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of a 64-bit value (for hashing addresses etc.).
constexpr std::uint64_t Mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return SplitMix64(s);
}

/// xoshiro256** by Blackman & Vigna — fast, high quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { Reseed(seed); }

  void Reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound == 0 is undefined.
  std::uint64_t Below(std::uint64_t bound) {
    // Lemire's nearly-divisionless method, biased by < 2^-64: fine for sims.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t Range(std::uint64_t lo, std::uint64_t hi) {
    return lo + Below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  bool Chance(double p) { return NextDouble() < p; }

  /// Geometric-ish positive integer with mean approximately `mean` (>= 1).
  std::uint64_t Geometric(double mean);

  /// Zipf-like rank in [0, n) with exponent `s` (approximate, via inverse
  /// power transform; adequate for workload hot-set skew).
  std::uint64_t Zipf(std::uint64_t n, double s);

  /// Checkpointing: the four xoshiro256** state words are the whole state.
  void Snapshot(ser::Writer& w) const {
    for (const std::uint64_t word : s_) w.U64(word);
  }
  void Restore(ser::Reader& r) {
    for (std::uint64_t& word : s_) word = r.U64();
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace redcache
