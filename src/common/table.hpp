// ASCII table printer used by the bench harnesses to emit paper-shaped rows.
#pragma once

#include <string>
#include <vector>

namespace redcache {

/// Collects rows of strings and renders them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Convenience: format a double with `prec` decimals.
  static std::string Num(double v, int prec = 3);
  static std::string Pct(double v, int prec = 1);  ///< 0.31 -> "31.0%"

  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace redcache
