// Small bit-manipulation helpers used by address mapping code.
#pragma once

#include <bit>
#include <cstdint>

namespace redcache {

constexpr bool IsPow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// floor(log2(v)); v must be non-zero.
constexpr std::uint32_t Log2(std::uint64_t v) {
  return 63u - static_cast<std::uint32_t>(std::countl_zero(v));
}

/// Extract `bits` bits of `v` starting at bit `lo`.
constexpr std::uint64_t Bits(std::uint64_t v, std::uint32_t lo,
                             std::uint32_t bits) {
  return (v >> lo) & ((std::uint64_t{1} << bits) - 1);
}

constexpr std::uint64_t CeilDiv(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace redcache
