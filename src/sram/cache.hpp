// Set-associative write-back SRAM cache with true-LRU replacement.
//
// The on-die levels (L1/L2/L3) are modeled functionally: an access either
// hits (contributing the level's latency) or misses and allocates, possibly
// evicting a dirty victim that travels down the hierarchy. Timing below the
// L3 is handled by the DRAM-cache controllers and DRAM models.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace redcache {

struct SramCacheConfig {
  std::string name = "cache";
  std::uint64_t size_bytes = 64_KiB;
  std::uint32_t ways = 4;
  Cycle latency = 4;  ///< hit latency contribution of this level
};

class SramCache {
 public:
  explicit SramCache(const SramCacheConfig& cfg);

  struct AccessResult {
    bool hit = false;
    /// Set when the allocation evicted a dirty line.
    std::optional<Addr> dirty_victim;
  };

  /// Look up `addr`; on miss, allocate it (write-allocate for both reads
  /// and writes — the hierarchy is write-back at every level).
  AccessResult Access(Addr addr, bool is_write);

  /// Look up without disturbing LRU or allocating.
  bool Probe(Addr addr) const;

  /// Insert a block (used for fills from below or writebacks from above,
  /// which allocate in non-inclusive fashion). Marks dirty if `dirty`.
  std::optional<Addr> Insert(Addr addr, bool dirty);

  /// Drop a block if present; returns true if it was dirty.
  bool Invalidate(Addr addr);

  const SramCacheConfig& config() const { return cfg_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t dirty_evictions() const { return dirty_evictions_; }
  std::uint64_t num_sets() const { return sets_; }

 private:
  struct Line {
    Addr tag = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
  };

  std::uint64_t SetOf(Addr addr) const {
    return (addr >> kBlockShift) & (sets_ - 1);
  }
  Addr TagOf(Addr addr) const { return addr >> kBlockShift; }

  Line* Find(Addr addr);
  const Line* Find(Addr addr) const;
  Line& Victim(Addr addr);

  SramCacheConfig cfg_;
  std::uint64_t sets_;
  std::vector<Line> lines_;  // sets_ * ways, set-major
  std::uint64_t tick_ = 0;   // LRU clock
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t dirty_evictions_ = 0;
};

}  // namespace redcache
