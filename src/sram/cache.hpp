// Set-associative write-back SRAM cache with true-LRU replacement.
//
// The on-die levels (L1/L2/L3) are modeled functionally: an access either
// hits (contributing the level's latency) or misses and allocates, possibly
// evicting a dirty victim that travels down the hierarchy. Timing below the
// L3 is handled by the DRAM-cache controllers and DRAM models.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "common/types.hpp"

namespace redcache {

struct SramCacheConfig {
  std::string name = "cache";
  std::uint64_t size_bytes = 64_KiB;
  std::uint32_t ways = 4;
  Cycle latency = 4;  ///< hit latency contribution of this level
};

class SramCache {
 public:
  explicit SramCache(const SramCacheConfig& cfg);

  struct AccessResult {
    bool hit = false;
    /// Set when the allocation evicted a dirty line.
    std::optional<Addr> dirty_victim;
  };

  /// Look up `addr`; on miss, allocate it (write-allocate for both reads
  /// and writes — the hierarchy is write-back at every level).
  AccessResult Access(Addr addr, bool is_write);

  /// Look up without disturbing LRU or allocating.
  bool Probe(Addr addr) const;

  /// Insert a block (used for fills from below or writebacks from above,
  /// which allocate in non-inclusive fashion). Marks dirty if `dirty`.
  std::optional<Addr> Insert(Addr addr, bool dirty);

  /// Drop a block if present; returns true if it was dirty.
  bool Invalidate(Addr addr);

  /// Checkpointing: every line (tag/LRU stamp/valid/dirty), the LRU clock
  /// and the counters. Geometry comes from construction, not the blob.
  void Snapshot(ser::Writer& w) const {
    w.Section("sram");
    w.U64(lines_.size());
    // 18-byte records via a bulk span: the line array is most of a
    // checkpoint blob and per-field writes dominated capture time.
    std::uint8_t* p = w.Raw(18 * lines_.size());
    for (const Line& line : lines_) {
      ser::PutU64(p, line.tag);
      ser::PutU64(p + 8, line.lru);
      p[16] = line.valid ? 1 : 0;
      p[17] = line.dirty ? 1 : 0;
      p += 18;
    }
    w.U64(tick_);
    w.U64(hits_);
    w.U64(misses_);
    w.U64(evictions_);
    w.U64(dirty_evictions_);
  }
  void Restore(ser::Reader& r) {
    r.Section("sram");
    if (r.U64() != lines_.size()) {
      throw ser::SerializeError("SRAM cache geometry mismatch (" + cfg_.name +
                                ")");
    }
    const std::uint8_t* p = r.Raw(18 * lines_.size());
    for (Line& line : lines_) {
      line.tag = ser::GetU64(p);
      line.lru = ser::GetU64(p + 8);
      line.valid = p[16] != 0;
      line.dirty = p[17] != 0;
      p += 18;
    }
    tick_ = r.U64();
    hits_ = r.U64();
    misses_ = r.U64();
    evictions_ = r.U64();
    dirty_evictions_ = r.U64();
  }

  const SramCacheConfig& config() const { return cfg_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t dirty_evictions() const { return dirty_evictions_; }
  std::uint64_t num_sets() const { return sets_; }

 private:
  struct Line {
    Addr tag = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
  };

  std::uint64_t SetOf(Addr addr) const {
    return (addr >> kBlockShift) & (sets_ - 1);
  }
  Addr TagOf(Addr addr) const { return addr >> kBlockShift; }

  Line* Find(Addr addr);
  const Line* Find(Addr addr) const;
  Line& Victim(Addr addr);

  SramCacheConfig cfg_;
  std::uint64_t sets_;
  std::vector<Line> lines_;  // sets_ * ways, set-major
  std::uint64_t tick_ = 0;   // LRU clock
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t dirty_evictions_ = 0;
};

}  // namespace redcache
