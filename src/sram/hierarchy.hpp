// The on-die cache hierarchy: per-core private L1/L2 and a shared L3
// (Table I: L1 64 KB 4-way, L2 128 KB 8-way private, L3 8 MB 8-way shared,
// 64 B blocks, LRU). Non-inclusive, write-back, write-allocate.
//
// Coherence between cores is not modeled: the evaluated parallel workloads
// are data-partitioned, and the DRAM-cache mechanisms under study operate
// strictly below the L3. This matches the paper's focus.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "sram/cache.hpp"

namespace redcache {

struct HierarchyConfig {
  std::uint32_t num_cores = 16;
  SramCacheConfig l1{.name = "l1", .size_bytes = 64_KiB, .ways = 4,
                     .latency = 4};
  SramCacheConfig l2{.name = "l2", .size_bytes = 128_KiB, .ways = 8,
                     .latency = 12};
  SramCacheConfig l3{.name = "l3", .size_bytes = 8_MiB, .ways = 8,
                     .latency = 38};
};

/// Result of pushing one core reference through L1/L2/L3.
struct HierarchyResult {
  /// 1, 2 or 3 when the reference hit on-die; 0 on an L3 miss (the
  /// reference must go to the memory system).
  std::uint32_t hit_level = 0;
  /// Cumulative on-die lookup latency for this reference.
  Cycle latency = 0;
  /// Dirty L3 victims that must be written back to the memory system.
  std::vector<Addr> writebacks;
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(const HierarchyConfig& cfg);

  /// Process a reference from `core`. On an L3 miss the block is allocated
  /// in all levels (the fill is assumed to complete; timing is charged by
  /// the caller when the memory response returns).
  HierarchyResult Access(std::uint32_t core, Addr addr, bool is_write);

  const HierarchyConfig& config() const { return cfg_; }
  const SramCache& l1(std::uint32_t core) const { return *l1_[core]; }
  const SramCache& l2(std::uint32_t core) const { return *l2_[core]; }
  const SramCache& l3() const { return *l3_; }

  /// Total latency of a full miss path probe (L1+L2+L3), charged to
  /// references that go to memory.
  Cycle MissPathLatency() const {
    return cfg_.l1.latency + cfg_.l2.latency + cfg_.l3.latency;
  }

  /// Checkpointing: every level's lines and counters, per-core order.
  void Snapshot(ser::Writer& w) const {
    w.Section("hier");
    for (const auto& c : l1_) c->Snapshot(w);
    for (const auto& c : l2_) c->Snapshot(w);
    l3_->Snapshot(w);
  }
  void Restore(ser::Reader& r) {
    r.Section("hier");
    for (const auto& c : l1_) c->Restore(r);
    for (const auto& c : l2_) c->Restore(r);
    l3_->Restore(r);
  }

 private:
  HierarchyConfig cfg_;
  std::vector<std::unique_ptr<SramCache>> l1_;
  std::vector<std::unique_ptr<SramCache>> l2_;
  std::unique_ptr<SramCache> l3_;
};

}  // namespace redcache
