#include "sram/hierarchy.hpp"

namespace redcache {

CacheHierarchy::CacheHierarchy(const HierarchyConfig& cfg) : cfg_(cfg) {
  for (std::uint32_t c = 0; c < cfg_.num_cores; ++c) {
    l1_.push_back(std::make_unique<SramCache>(cfg_.l1));
    l2_.push_back(std::make_unique<SramCache>(cfg_.l2));
  }
  l3_ = std::make_unique<SramCache>(cfg_.l3);
}

HierarchyResult CacheHierarchy::Access(std::uint32_t core, Addr addr,
                                       bool is_write) {
  addr = BlockAlign(addr);
  HierarchyResult out;

  // A dirty line displaced from a private level is inserted one level down;
  // dirty L3 victims leave the die as writeback traffic.
  auto push_down_from_l2 = [&](Addr victim) {
    if (auto l3_victim = l3_->Insert(victim, /*dirty=*/true)) {
      out.writebacks.push_back(*l3_victim);
    }
  };
  auto push_down_from_l1 = [&](Addr victim) {
    if (auto l2_victim = l2_[core]->Insert(victim, /*dirty=*/true)) {
      push_down_from_l2(*l2_victim);
    }
  };

  out.latency += cfg_.l1.latency;
  const auto r1 = l1_[core]->Access(addr, is_write);
  if (r1.dirty_victim) push_down_from_l1(*r1.dirty_victim);
  if (r1.hit) {
    out.hit_level = 1;
    return out;
  }

  out.latency += cfg_.l2.latency;
  // The L2 sees a fill-allocate for the missing block; stores dirty the L1
  // copy, not the L2 one.
  const auto r2 = l2_[core]->Access(addr, /*is_write=*/false);
  if (r2.dirty_victim) push_down_from_l2(*r2.dirty_victim);
  if (r2.hit) {
    out.hit_level = 2;
    return out;
  }

  out.latency += cfg_.l3.latency;
  const auto r3 = l3_->Access(addr, /*is_write=*/false);
  if (r3.dirty_victim) out.writebacks.push_back(*r3.dirty_victim);
  if (r3.hit) {
    out.hit_level = 3;
    return out;
  }

  out.hit_level = 0;  // memory access required
  return out;
}

}  // namespace redcache
