#include "sram/cache.hpp"

#include <cassert>

#include "common/bitops.hpp"

namespace redcache {

SramCache::SramCache(const SramCacheConfig& cfg) : cfg_(cfg) {
  const std::uint64_t lines = cfg_.size_bytes / kBlockBytes;
  assert(cfg_.ways > 0 && lines >= cfg_.ways);
  sets_ = lines / cfg_.ways;
  assert(IsPow2(sets_));
  lines_.resize(sets_ * cfg_.ways);
}

SramCache::Line* SramCache::Find(Addr addr) {
  const std::uint64_t set = SetOf(addr);
  const Addr tag = TagOf(addr);
  Line* base = &lines_[set * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return &base[w];
  }
  return nullptr;
}

const SramCache::Line* SramCache::Find(Addr addr) const {
  return const_cast<SramCache*>(this)->Find(addr);
}

SramCache::Line& SramCache::Victim(Addr addr) {
  const std::uint64_t set = SetOf(addr);
  Line* base = &lines_[set * cfg_.ways];
  Line* victim = &base[0];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (!base[w].valid) return base[w];
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  return *victim;
}

SramCache::AccessResult SramCache::Access(Addr addr, bool is_write) {
  ++tick_;
  AccessResult result;
  if (Line* line = Find(addr)) {
    line->lru = tick_;
    line->dirty |= is_write;
    hits_++;
    result.hit = true;
    return result;
  }
  misses_++;
  Line& victim = Victim(addr);
  if (victim.valid) {
    evictions_++;
    if (victim.dirty) {
      dirty_evictions_++;
      result.dirty_victim = victim.tag << kBlockShift;
    }
  }
  victim.valid = true;
  victim.tag = TagOf(addr);
  victim.lru = tick_;
  victim.dirty = is_write;
  return result;
}

bool SramCache::Probe(Addr addr) const { return Find(addr) != nullptr; }

std::optional<Addr> SramCache::Insert(Addr addr, bool dirty) {
  ++tick_;
  if (Line* line = Find(addr)) {
    line->lru = tick_;
    line->dirty |= dirty;
    return std::nullopt;
  }
  Line& victim = Victim(addr);
  std::optional<Addr> wb;
  if (victim.valid) {
    evictions_++;
    if (victim.dirty) {
      dirty_evictions_++;
      wb = victim.tag << kBlockShift;
    }
  }
  victim.valid = true;
  victim.tag = TagOf(addr);
  victim.lru = tick_;
  victim.dirty = dirty;
  return wb;
}

bool SramCache::Invalidate(Addr addr) {
  if (Line* line = Find(addr)) {
    const bool was_dirty = line->dirty;
    line->valid = false;
    line->dirty = false;
    return was_dirty;
  }
  return false;
}

}  // namespace redcache
