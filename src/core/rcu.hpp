// RCU (r-count update) manager (paper §III-C).
//
// On every read hit the block's refreshed r-count must eventually be
// written back into its HBM row. Doing that immediately reverses the bus
// for every read hit (tBL + tCWD + tWTR); the RCU manager instead parks the
// update in a 32-entry CAM+RAM and drains it when one of three conditions
// holds:
//   (1) the command scheduler issues a data write to the same DRAM index
//       (channel, rank, bank, row) — the update then piggybacks at tCCD
//       cost with no extra turnaround;
//   (2) the channel's transaction queue is empty — updates drain for free;
//   (3) the queue is full — the oldest entry is force-flushed to make room.
// The 32-entry RAM holds the most recently read blocks, so it doubles as a
// tiny block cache that can serve repeat reads without touching HBM.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/serialize.hpp"
#include "common/types.hpp"
#include "dram/address.hpp"

namespace redcache {

class RcuManager {
 public:
  struct Entry {
    Addr block = 0;
    DramAddress loc;
  };

  explicit RcuManager(std::size_t capacity = 32) : capacity_(capacity) {}

  /// Park an update for `block`. If the queue is full the oldest entry is
  /// evicted and returned (condition 3) — the caller must write it to HBM.
  std::vector<Entry> Insert(Addr block, const DramAddress& loc);

  /// Block-cache lookup (charges a CAM search).
  bool Contains(Addr block);

  /// Remove a parked update (block invalidated or evicted from HBM).
  void Remove(Addr block);

  /// Condition 1: a data write to `loc`'s index was issued; pop all parked
  /// updates sharing that index so they can piggyback.
  std::vector<Entry> MatchIndex(const DramAddress& loc);

  /// Condition 2: the channel went idle; pop all entries on it.
  std::vector<Entry> PopChannel(std::uint32_t channel);

  /// Drain everything (end of simulation).
  std::vector<Entry> PopAll();

  std::size_t size() const { return entries_.size(); }
  bool full() const { return entries_.size() >= capacity_; }

  std::uint64_t inserts() const { return inserts_; }
  std::uint64_t updates_in_place() const { return updates_in_place_; }
  std::uint64_t searches() const { return searches_; }
  std::uint64_t block_hits() const { return block_hits_; }
  std::uint64_t merged_flushes() const { return merged_flushes_; }
  std::uint64_t idle_flushes() const { return idle_flushes_; }
  std::uint64_t capacity_flushes() const { return capacity_flushes_; }

  static void SnapshotEntry(ser::Writer& w, const Entry& e) {
    w.U64(e.block);
    w.U32(e.loc.channel);
    w.U32(e.loc.rank);
    w.U32(e.loc.bank);
    w.U64(e.loc.row);
    w.U32(e.loc.column);
  }
  static Entry RestoreEntry(ser::Reader& r) {
    Entry e;
    e.block = r.U64();
    e.loc.channel = r.U32();
    e.loc.rank = r.U32();
    e.loc.bank = r.U32();
    e.loc.row = r.U64();
    e.loc.column = r.U32();
    return e;
  }

  void Snapshot(ser::Writer& w) const {
    w.Section("rcu");
    w.U64(entries_.size());
    for (const Entry& e : entries_) SnapshotEntry(w, e);
    w.U64(inserts_);
    w.U64(updates_in_place_);
    w.U64(searches_);
    w.U64(block_hits_);
    w.U64(merged_flushes_);
    w.U64(idle_flushes_);
    w.U64(capacity_flushes_);
  }
  void Restore(ser::Reader& r) {
    r.Section("rcu");
    entries_.clear();
    const std::size_t n = r.SeqLen(32);
    for (std::size_t i = 0; i < n; ++i) entries_.push_back(RestoreEntry(r));
    inserts_ = r.U64();
    updates_in_place_ = r.U64();
    searches_ = r.U64();
    block_hits_ = r.U64();
    merged_flushes_ = r.U64();
    idle_flushes_ = r.U64();
    capacity_flushes_ = r.U64();
  }

 private:
  std::size_t capacity_;
  std::deque<Entry> entries_;  ///< front = oldest

  std::uint64_t inserts_ = 0;
  std::uint64_t updates_in_place_ = 0;
  std::uint64_t searches_ = 0;
  std::uint64_t block_hits_ = 0;
  std::uint64_t merged_flushes_ = 0;
  std::uint64_t idle_flushes_ = 0;
  std::uint64_t capacity_flushes_ = 0;
};

}  // namespace redcache
