#include "core/rcu.hpp"

#include <algorithm>

namespace redcache {

std::vector<RcuManager::Entry> RcuManager::Insert(Addr block,
                                                  const DramAddress& loc) {
  inserts_++;
  for (Entry& e : entries_) {
    if (e.block == block) {
      updates_in_place_++;  // already parked; newest count wins
      return {};
    }
  }
  std::vector<Entry> evicted;
  if (capacity_ == 0) {
    // Degenerate queue: nothing can be parked, the update force-flushes
    // straight through to the caller.
    capacity_flushes_++;
    evicted.push_back({block, loc});
    return evicted;
  }
  if (entries_.size() >= capacity_) {
    evicted.push_back(entries_.front());
    entries_.pop_front();
    capacity_flushes_++;
  }
  entries_.push_back({block, loc});
  return evicted;
}

bool RcuManager::Contains(Addr block) {
  searches_++;
  for (const Entry& e : entries_) {
    if (e.block == block) {
      block_hits_++;
      return true;
    }
  }
  return false;
}

void RcuManager::Remove(Addr block) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->block == block) {
      entries_.erase(it);
      return;
    }
  }
}

std::vector<RcuManager::Entry> RcuManager::MatchIndex(const DramAddress& loc) {
  std::vector<Entry> out;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->loc.SameRowAs(loc)) {
      out.push_back(*it);
      it = entries_.erase(it);
      merged_flushes_++;
    } else {
      ++it;
    }
  }
  return out;
}

std::vector<RcuManager::Entry> RcuManager::PopChannel(std::uint32_t channel) {
  std::vector<Entry> out;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->loc.channel == channel) {
      out.push_back(*it);
      it = entries_.erase(it);
      idle_flushes_++;
    } else {
      ++it;
    }
  }
  return out;
}

std::vector<RcuManager::Entry> RcuManager::PopAll() {
  std::vector<Entry> out(entries_.begin(), entries_.end());
  entries_.clear();
  return out;
}

}  // namespace redcache
