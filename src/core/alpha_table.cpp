#include "core/alpha_table.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/rng.hpp"

namespace redcache {

AlphaTable::AlphaTable(const Params& params)
    : params_(params), alpha_(params.initial_alpha) {
  alpha_ = std::clamp(alpha_, params_.min_alpha, params_.max_alpha);
  std::size_t entries = params_.buffer_entries;
  if (!IsPow2(entries)) entries = std::size_t{1} << (Log2(entries) + 1);
  buffer_tags_.assign(entries, 0);
}

bool AlphaTable::OnRequest(Addr addr) {
  const Addr page = PageIndex(addr);
  lookups_++;

  // Buffer model: tag array indexed by hashed page id (0 = empty; store
  // page+1 so page 0 is representable).
  const std::size_t slot = Mix64(page) & (buffer_tags_.size() - 1);
  if (buffer_tags_[slot] != page + 1) {
    buffer_misses_++;
    buffer_tags_[slot] = page + 1;
  }

  PageState& st = counts_[page];
  if (st.hot) return true;

  // Lazy decay: progress fades while the page sits untouched.
  if (st.epoch != epoch_ && params_.decay_shift > 0) {
    const std::uint32_t elapsed = epoch_ - st.epoch;
    const std::uint32_t shift = std::min<std::uint32_t>(
        31, (elapsed / params_.epochs_per_decay) * params_.decay_shift);
    st.progress >>= shift;
  }
  st.epoch = epoch_;

  if (++st.progress >= Threshold()) {
    st.hot = true;
    pages_hot_++;
    return true;
  }
  return false;
}

bool AlphaTable::IsHot(Addr addr) const {
  auto it = counts_.find(PageIndex(addr));
  return it != counts_.end() && it->second.hot;
}

void AlphaTable::Retune(double dead_fill_fraction) {
  if (!params_.adaptive) return;
  if (dead_fill_fraction > params_.waste_high && alpha_ < params_.max_alpha) {
    ++alpha_;  // too many fills die unused: demand more proof first
    retunes_up_++;
  } else if (dead_fill_fraction < params_.waste_low &&
             alpha_ > params_.min_alpha) {
    --alpha_;  // admissions are paying off: admit blocks sooner
    retunes_down_++;
  }
}

void AlphaTable::SetAlpha(std::uint32_t a) {
  alpha_ = std::clamp(a, params_.min_alpha, params_.max_alpha);
}

}  // namespace redcache
