// Gamma counting (paper §III-A2).
//
// Gamma is the adaptive expected lifetime (in reuses) of an HBM cache
// block. Each cached block carries an r-count in its tag/ECC sidecar; a
// write hitting a block whose r-count has reached gamma is treated as the
// block's last write: the block is invalidated and the write goes straight
// to main memory, saving the HBM write, the future victim writeback and a
// bus turnaround.
//
// Adaptation (linear ascend/descend as in the paper's Fig. 6, with a
// stabilized sample source — see DESIGN.md): a hit whose r-count exceeds
// gamma is unbiased evidence of a longer lifetime and steps gamma up
// immediately. Downward pressure cannot come from per-hit samples — a hit
// at r < gamma merely means the block is young, and blocks gamma itself
// kills never show counts above it, so symmetric per-hit steps collapse
// gamma to its minimum. Instead, gamma steps down (damped) on *completed*
// lifetimes: blocks that left the cache by natural eviction with a final
// r-count below gamma. A premature-invalidation signal (the controller
// misses on a block gamma recently killed) boosts gamma strongly.
#pragma once

#include <cstdint>

#include "common/serialize.hpp"
#include "common/types.hpp"

namespace redcache {

class GammaController {
 public:
  struct Params {
    std::uint32_t initial_gamma = 8;
    /// Floor of 4: conflict evictions truncate observed lifetimes, and a
    /// gamma low enough to kill on a block's first writes is always a
    /// net loss (the premature-refetch costs exceed the saved writes).
    std::uint32_t min_gamma = 4;
    std::uint32_t max_gamma = 255;  ///< r-counts saturate at 8 bits
    std::uint32_t down_damping = 2; ///< low lifetime samples per down step
    std::uint32_t premature_boost = 2;
  };

  GammaController() : GammaController(Params{}) {}
  explicit GammaController(const Params& params)
      : params_(params), gamma_(params.initial_gamma) {}

  /// Observe a cache hit whose block now has reuse count `r_count`.
  void OnHit(std::uint32_t r_count) {
    updates_++;
    if (r_count > gamma_ && gamma_ < params_.max_gamma) {
      ++gamma_;
      steps_up_++;
    }
  }

  /// Observe a completed lifetime: a block left the cache by natural
  /// eviction having accumulated `r_count` reuses.
  void OnLifetimeSample(std::uint32_t r_count) {
    lifetime_samples_++;
    if (r_count >= gamma_) {
      down_votes_ = 0;
      return;  // upward evidence already handled by the hits themselves
    }
    if (++down_votes_ >= params_.down_damping) {
      down_votes_ = 0;
      if (gamma_ > params_.min_gamma) {
        --gamma_;
        steps_down_++;
      }
    }
  }

  /// The controller observed a miss on a block gamma recently invalidated:
  /// the block was not dead after all. Push the lifetime estimate up.
  void OnPrematureInvalidation() {
    premature_++;
    down_votes_ = 0;
    for (std::uint32_t i = 0; i < params_.premature_boost; ++i) {
      if (gamma_ < params_.max_gamma) ++gamma_;
    }
  }

  /// Should a write hit to a block with this r-count invalidate it?
  bool IsLastWrite(std::uint32_t r_count) const { return r_count >= gamma_; }

  std::uint32_t gamma() const { return gamma_; }
  std::uint64_t updates() const { return updates_; }
  std::uint64_t lifetime_samples() const { return lifetime_samples_; }
  std::uint64_t steps_up() const { return steps_up_; }
  std::uint64_t steps_down() const { return steps_down_; }
  std::uint64_t premature_invalidations() const { return premature_; }

  void Snapshot(ser::Writer& w) const {
    w.Section("gamma");
    w.U32(gamma_);
    w.U32(down_votes_);
    w.U64(updates_);
    w.U64(lifetime_samples_);
    w.U64(steps_up_);
    w.U64(steps_down_);
    w.U64(premature_);
  }
  void Restore(ser::Reader& r) {
    r.Section("gamma");
    gamma_ = r.U32();
    down_votes_ = r.U32();
    updates_ = r.U64();
    lifetime_samples_ = r.U64();
    steps_up_ = r.U64();
    steps_down_ = r.U64();
    premature_ = r.U64();
  }

 private:
  Params params_;
  std::uint32_t gamma_;
  std::uint32_t down_votes_ = 0;
  std::uint64_t updates_ = 0;
  std::uint64_t lifetime_samples_ = 0;
  std::uint64_t steps_up_ = 0;
  std::uint64_t steps_down_ = 0;
  std::uint64_t premature_ = 0;
};

}  // namespace redcache
