// Alpha counting (paper §III-A1).
//
// One counter per 4 KB OS page estimates the *average* number of accesses
// per 64 B block of that page while the page's blocks still live in main
// memory. The counter is initialized to alpha * 64 (blocks per page) and
// decremented on every memory request to the page; when it reaches zero the
// page's blocks have averaged `alpha` accesses and become eligible for
// insertion into the HBM cache. Colder traffic bypasses the cache.
//
// Storage model: the authoritative counters live in main memory alongside
// the page table (a "virtually free ride" with TLB refills); an on-chip
// buffer with as many entries as the TLBs serves the block manager. We keep
// the authoritative copy in a hash map and model the buffer as a
// direct-mapped tag array to count buffer misses (they cost energy only).
//
// Two refinements over a literal reading of the paper (documented in
// DESIGN.md):
//  * Progress decays by half per elapsed epoch (lazily, using a per-page
//    epoch stamp). Alpha thereby measures access *intensity*: a streaming
//    page that collects 64 touches per pass with long pauses in between
//    never qualifies, while a tile touched continuously qualifies within
//    its first few sweeps. Without decay the two are indistinguishable.
//  * The run-time tuning loop (Retune) targets the fraction of cache
//    departures that were never reused ("dead fills"), a signal that
//    responds monotonically to alpha.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/serialize.hpp"
#include "common/types.hpp"

namespace redcache {

class AlphaTable {
 public:
  struct Params {
    std::uint32_t initial_alpha = 2;  ///< average per-block reuses to qualify
    std::uint32_t min_alpha = 1;
    std::uint32_t max_alpha = 3;
    std::uint32_t buffer_entries = 1024;  ///< TLB-sized on-chip buffer
    bool adaptive = true;
    /// Retune targets on the dead-fill fraction (see file comment). The
    /// band is asymmetric: direct-mapped conflicts alone produce a baseline
    /// of dead fills that alpha cannot remove, so alpha backs off unless
    /// admissions are demonstrably wasteful.
    double waste_low = 0.45;
    double waste_high = 0.70;
    /// Progress halves once per `epochs_per_decay` elapsed epochs
    /// (decay_shift = 0 disables decay). Pages revisited within one epoch
    /// never decay; pages idle for several epochs fade out.
    std::uint32_t decay_shift = 1;
    std::uint32_t epochs_per_decay = 2;
  };

  AlphaTable() : AlphaTable(Params{}) {}
  explicit AlphaTable(const Params& params);

  /// Account one memory request to `addr`'s page. Returns true when the
  /// page has qualified (its blocks may be cached in HBM).
  bool OnRequest(Addr addr);

  /// Would OnRequest return true, without mutating state?
  bool IsHot(Addr addr) const;

  /// Advance the decay epoch (the controller calls this periodically).
  void AdvanceEpoch() { epoch_++; }

  /// Epoch feedback: `dead_fill_fraction` is the fraction of blocks that
  /// left the HBM cache this epoch without ever being reused.
  void Retune(double dead_fill_fraction);

  std::uint32_t alpha() const { return alpha_; }
  void SetAlpha(std::uint32_t a);

  std::uint64_t lookups() const { return lookups_; }
  std::uint64_t buffer_misses() const { return buffer_misses_; }
  std::uint64_t pages_tracked() const { return counts_.size(); }
  std::uint64_t pages_hot() const { return pages_hot_; }
  std::uint64_t retunes_up() const { return retunes_up_; }
  std::uint64_t retunes_down() const { return retunes_down_; }

  /// Checkpointing. The page map is emitted sorted by page id so the blob
  /// is deterministic regardless of hash-table iteration order.
  void Snapshot(ser::Writer& w) const {
    w.Section("alpha");
    w.U32(alpha_);
    w.U32(epoch_);
    // Copy entries out, then sort pairs: one map walk instead of a
    // lookup per page — the page map is the bulk of a RedCache blob and
    // sort-ids-then-at() dominated checkpoint capture.
    std::vector<std::pair<Addr, PageState>> pages(counts_.begin(),
                                                  counts_.end());
    std::sort(pages.begin(), pages.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.U64(pages.size());
    std::uint8_t* p = w.Raw(17 * pages.size());
    for (const auto& [page, st] : pages) {
      ser::PutU64(p, page);
      for (int i = 0; i < 4; ++i) {
        p[8 + i] = (st.progress >> (8 * i)) & 0xff;
        p[12 + i] = (st.epoch >> (8 * i)) & 0xff;
      }
      p[16] = st.hot ? 1 : 0;
      p += 17;
    }
    w.U64Seq(buffer_tags_);
    w.U64(lookups_);
    w.U64(buffer_misses_);
    w.U64(pages_hot_);
    w.U64(retunes_up_);
    w.U64(retunes_down_);
  }
  void Restore(ser::Reader& r) {
    r.Section("alpha");
    alpha_ = r.U32();
    epoch_ = r.U32();
    counts_.clear();
    const std::size_t n = r.SeqLen(17);
    counts_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const Addr page = r.U64();
      PageState st;
      st.progress = r.U32();
      st.epoch = r.U32();
      st.hot = r.Bool();
      counts_.emplace(page, st);
    }
    if (r.SeqLen(8) != buffer_tags_.size()) {
      throw ser::SerializeError("alpha buffer size mismatch");
    }
    for (Addr& t : buffer_tags_) t = r.U64();
    lookups_ = r.U64();
    buffer_misses_ = r.U64();
    pages_hot_ = r.U64();
    retunes_up_ = r.U64();
    retunes_down_ = r.U64();
  }

 private:
  struct PageState {
    std::uint32_t progress = 0;  ///< accesses accumulated toward threshold
    std::uint32_t epoch = 0;     ///< epoch of the last access (for decay)
    bool hot = false;
  };

  std::uint32_t Threshold() const { return alpha_ * kBlocksPerPage; }

  Params params_;
  std::uint32_t alpha_;
  std::uint32_t epoch_ = 0;
  std::unordered_map<Addr, PageState> counts_;  ///< page id -> state
  std::vector<Addr> buffer_tags_;  ///< direct-mapped buffer model (+1 bias)
  std::uint64_t lookups_ = 0;
  std::uint64_t buffer_misses_ = 0;
  std::uint64_t pages_hot_ = 0;
  std::uint64_t retunes_up_ = 0;
  std::uint64_t retunes_down_ = 0;
};

}  // namespace redcache
