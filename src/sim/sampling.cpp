#include "sim/sampling.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/batch.hpp"
#include "sim/checkpoint.hpp"

namespace redcache {

namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool IsGaugeName(const std::string& name) {
  return name.rfind("gauge.", 0) == 0;
}

/// One replayed interval's contribution, written by exactly one worker.
struct IntervalMeasure {
  Cycle span = 0;
  std::int64_t refs = 0;
  std::map<std::string, std::int64_t> delta;
};

}  // namespace

double TCritical95(std::uint64_t df) {
  static constexpr double kT95[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
      2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
      2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
      2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kT95[df - 1];
  return 1.96;
}

SamplingEstimate RunSampled(const RunSpec& spec,
                            const SamplingOptions& opts) {
  if (!(opts.fraction > 0.0) || opts.fraction > 1.0) {
    throw std::invalid_argument("sampling fraction must be in (0, 1]");
  }
  if (opts.interval_cycles < 1) {
    throw std::invalid_argument("sampling interval must be >= 1 cycle");
  }
  const Cycle interval = opts.interval_cycles;

  SamplingEstimate est;
  const std::string spec_key = ckpt::SpecKeyOf(spec);

  // Single functional pass: fast-forward the whole workload under a fixed
  // memory latency, capturing a candidate checkpoint every `interval`
  // cycles. The fixed latency compresses time relative to detailed mode by
  // an unknown workload-dependent factor, so the measurement stride cannot
  // be computed up front — instead candidates are captured densely and the
  // measurement set is chosen afterward, once the compressed timeline's
  // true length is known. To bound memory (a blob is a full System
  // snapshot), the candidate list thins itself: whenever it reaches
  // kMaxCandidates, every other blob is dropped and the capture stride
  // doubles, so total captures stay O(kMaxCandidates) however long the run
  // is, while spacing stays uniform.
  struct Candidate {
    Cycle cycle = 0;
    std::string blob;
  };
  constexpr std::size_t kMaxCandidates = 48;
  const auto t_ff = std::chrono::steady_clock::now();
  Cycle ff_exec = 0;
  std::vector<Candidate> cands;
  {
    auto ff = BuildSystem(spec);
    ff->SetFunctionalTiming(opts.functional_latency);
    System* sys = ff.get();
    Cycle cap_stride = interval;
    Cycle next_due = 0;
    ff->SetCheckpointHook(0, interval, [&](Cycle now) {
      if (now < next_due) return;
      cands.push_back({now, ckpt::Capture(*sys, now, spec_key)});
      next_due = now + cap_stride;
      if (cands.size() >= kMaxCandidates) {
        std::vector<Candidate> kept;
        kept.reserve(cands.size() / 2 + 1);
        for (std::size_t i = 0; i < cands.size(); i += 2) {
          kept.push_back(std::move(cands[i]));
        }
        cands.swap(kept);
        cap_stride *= 2;
        next_due = cands.back().cycle + cap_stride;
      }
    });
    const RunResult r = ff->Run(spec.max_cycles);
    ff_exec = r.exec_cycles;
    est.total_refs = r.stats.GetCounter("core.refs");
  }
  est.functional_seconds = Seconds(t_ff);

  // Measurement set: honor the requested fraction of the (functional)
  // timeline, but never fewer than kMinIntervals when the run is long
  // enough to hold them — a t-based CI over 2-3 intervals is noise.
  constexpr std::uint64_t kMinIntervals = 8;
  const std::uint64_t fit = ff_exec / interval;
  std::uint64_t n_target = 1;
  if (fit > 1) {
    const auto want = static_cast<std::uint64_t>(std::llround(
        opts.fraction * static_cast<double>(ff_exec) /
        static_cast<double>(interval)));
    n_target = std::clamp<std::uint64_t>(want, std::min(kMinIntervals, fit),
                                         fit);
  }
  n_target = std::min<std::uint64_t>(n_target, cands.size());

  // Systematic subselection with a seed-derived phase: every run of the
  // same spec measures the same intervals (deterministic), different
  // seeds measure different phases of the candidate stride.
  std::vector<Candidate> blobs;
  if (n_target > 0) {
    // idx_i = floor((i + u) * N / n) spans the whole candidate range for
    // any phase u in [0, 1) — a truncated integer step would leave the
    // timeline's tail systematically unsampled.
    const double u =
        static_cast<double>((spec.seed * 2654435761ull) % 1024u) / 1024.0;
    blobs.reserve(n_target);
    std::size_t prev = cands.size();  // sentinel: no index taken yet
    for (std::uint64_t i = 0; i < n_target; ++i) {
      const auto idx = static_cast<std::size_t>(
          (static_cast<double>(i) + u) * static_cast<double>(cands.size()) /
          static_cast<double>(n_target));
      if (idx == prev || idx >= cands.size()) continue;
      blobs.push_back(std::move(cands[idx]));
      prev = idx;
    }
  }
  cands.clear();

  if (blobs.empty()) {
    // Defensive: the hook captures at cycle 0, so this only triggers if
    // the run executed zero cycles. Fall back to one full detailed run
    // reported as a zero-CI estimate.
    const auto t_full = std::chrono::steady_clock::now();
    const RunResult full = RunOne(spec);
    est.replay_seconds = Seconds(t_full);
    est.degenerate = true;
    est.intervals = 1;
    est.est_exec_cycles = static_cast<double>(full.exec_cycles);
    est.est_stats = full.stats;
    est.est_stats.Counter("gauge.sampling.ci_pct") = 0;
    est.est_stats.Counter("gauge.sampling.intervals") = 1;
    return est;
  }

  // Pass 2: parallel detailed replay of each measurement interval.
  const auto t_replay = std::chrono::steady_clock::now();
  std::vector<IntervalMeasure> measures(blobs.size());
  ParallelFor(blobs.size(), opts.jobs, [&](std::size_t i) {
    auto sys = BuildSystem(spec);
    const ckpt::CheckpointMeta meta =
        ckpt::RestoreInto(*sys, blobs[i].blob, spec_key);
    const StatSet before = sys->CumulativeStats(meta.cycle);
    const RunResult r = sys->Run(meta.cycle + interval - 1);
    // exec_cycles is the loop's final cycle: the true finish when the
    // workload completed inside the interval, else the (possibly slightly
    // overshot) cycle the event loop stopped at. Deltas cover exactly the
    // activity inside [meta.cycle, span).
    IntervalMeasure& m = measures[i];
    m.span = r.exec_cycles > meta.cycle ? r.exec_cycles - meta.cycle
                                        : Cycle{1};
    for (const auto& [name, value] : r.stats.counters()) {
      if (IsGaugeName(name) || name == "sys.exec_cycles") continue;
      const std::uint64_t base = before.GetCounter(name);
      m.delta[name] = static_cast<std::int64_t>(value) -
                      static_cast<std::int64_t>(base);
    }
    m.refs = m.delta.count("core.refs") ? m.delta.at("core.refs") : 0;
  });
  est.replay_seconds = Seconds(t_replay);

  // Ratio estimation over the per-interval reference rates.
  const std::size_t n = measures.size();
  est.intervals = n;
  double rate_sum = 0.0;
  std::int64_t refs_sum = 0;
  std::map<std::string, std::int64_t> delta_sum;
  std::vector<double> rates(n);
  for (std::size_t i = 0; i < n; ++i) {
    rates[i] = static_cast<double>(measures[i].refs) /
               static_cast<double>(measures[i].span);
    rate_sum += rates[i];
    refs_sum += measures[i].refs;
    for (const auto& [name, d] : measures[i].delta) delta_sum[name] += d;
  }
  const double mean = rate_sum / static_cast<double>(n);
  double half = 0.0;
  if (n >= 2) {
    double ss = 0.0;
    for (const double r : rates) ss += (r - mean) * (r - mean);
    const double stddev = std::sqrt(ss / static_cast<double>(n - 1));
    half = TCritical95(n - 1) * stddev / std::sqrt(static_cast<double>(n));
  }
  if (mean > 0.0) {
    est.est_exec_cycles = static_cast<double>(est.total_refs) / mean;
    est.ci_pct = 100.0 * half / mean;
    // Delta method: the CI on 1/rate scales by est/mean.
    est.ci_half_cycles = est.est_exec_cycles * half / mean;
  }
  if (refs_sum > 0) {
    const double scale =
        static_cast<double>(est.total_refs) / static_cast<double>(refs_sum);
    for (const auto& [name, d] : delta_sum) {
      const double scaled = static_cast<double>(d) * scale;
      est.est_stats.Counter(name) = static_cast<std::uint64_t>(
          scaled > 0.0 ? std::llround(scaled) : 0);
    }
  }
  est.est_stats.Counter("sys.exec_cycles") =
      static_cast<std::uint64_t>(std::llround(est.est_exec_cycles));
  est.est_stats.Counter("gauge.sampling.ci_pct") =
      static_cast<std::uint64_t>(std::llround(est.ci_pct));
  est.est_stats.Counter("gauge.sampling.intervals") = est.intervals;
  return est;
}

}  // namespace redcache
