// Evaluation presets.
//
// `PaperPreset` reproduces Table I verbatim (2 GB HBM cache, 32 GB main
// memory, 8 MB L3). `EvalPreset` is the scaled configuration the benches
// use by default: capacities shrink together so each simulation finishes
// in seconds while preserving the regime the paper studies —
// footprint > HBM cache > L3, with direct-mapped conflict pressure.
// All timing parameters are identical between the two presets.
#pragma once

#include "cpu/core.hpp"
#include "dramcache/controller.hpp"
#include "sram/hierarchy.hpp"

namespace redcache {

struct SimPreset {
  const char* name = "eval";
  HierarchyConfig hierarchy;
  CoreParams core;
  MemControllerConfig mem;
  /// Epoch-sampler period in CPU cycles (observability only; sampling never
  /// changes simulation results, so this field is deliberately excluded
  /// from the batch cache's preset-field hash).
  Cycle telemetry_epoch_cycles = 250000;
};

/// Scaled evaluation preset (default): 8 MiB HBM cache, 256 MiB DDR4,
/// 1 MiB shared L3, 16 cores. Workload footprints are 16-48 MiB.
SimPreset EvalPreset();

/// Table I verbatim: 2 GiB HBM cache, 32 GiB DDR4, 8 MiB L3, 16 cores.
SimPreset PaperPreset();

}  // namespace redcache
