#include "sim/checkpoint.hpp"

#include <atomic>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sim/batch.hpp"

namespace redcache::ckpt {

namespace {

constexpr char kMagic[4] = {'R', 'C', 'K', 'P'};

/// Payload checksum — magic+version+checksum precede it, the checksum
/// covers everything after itself (spec key, cycle, full state), so any
/// flipped bit in a blob is rejected deterministically instead of
/// depending on a section tag happening to misalign. FNV-1a folded over
/// 8-byte little-endian words (byte-wise tail): blobs are megabytes and
/// sampled runs checksum dozens of them, so the byte-serial variant was
/// measurable in capture time. Not standard FNV, but self-consistent.
std::uint64_t Fnv64(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    h ^= ser::GetU64(p + i);
    h *= 1099511628211ull;
  }
  for (; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Reads magic + version + stored payload checksum; leaves the reader
/// positioned at the payload (spec_key, cycle, state).
std::uint64_t ReadPreamble(ser::Reader& r) {
  for (const char c : kMagic) {
    if (r.U8() != static_cast<std::uint8_t>(c)) {
      throw ser::SerializeError("not a checkpoint file (bad magic)");
    }
  }
  const std::uint32_t version = r.U32();
  if (version != kCheckpointVersion) {
    throw ser::SerializeError(
        "checkpoint format v" + std::to_string(version) +
        " is not supported (expected v" + std::to_string(kCheckpointVersion) +
        ")");
  }
  return r.U64();
}

CheckpointMeta ReadMeta(ser::Reader& r) {
  CheckpointMeta meta;
  meta.version = kCheckpointVersion;
  meta.spec_key = r.Str();
  meta.cycle = r.U64();
  return meta;
}

}  // namespace

std::string SpecKeyOf(const RunSpec& spec) {
  return CellKey(CellSpec{spec, /*variant=*/""});
}

std::string Capture(const System& sys, Cycle now,
                    const std::string& spec_key) {
  // Blob sizes are stable across captures of the same run, so remember the
  // last payload size as the reserve hint — sampled runs capture dozens of
  // megabyte-scale blobs and growth reallocations dominated without it.
  static std::atomic<std::size_t> size_hint{1 << 16};

  ser::Writer w;
  w.Reserve(size_hint.load(std::memory_order_relaxed) + 1024);
  for (const char c : kMagic) w.U8(static_cast<std::uint8_t>(c));
  w.U32(kCheckpointVersion);
  const std::size_t checksum_off = w.buffer().size();
  w.U64(0);  // checksum placeholder, patched below
  const std::size_t payload_off = w.buffer().size();
  w.Str(spec_key);
  w.U64(now);
  sys.Snapshot(w, now);
  w.PatchU64(checksum_off, Fnv64(w.buffer().data() + payload_off,
                                 w.buffer().size() - payload_off));
  size_hint.store(w.buffer().size(), std::memory_order_relaxed);
  return w.TakeString();
}

CheckpointMeta PeekMeta(const std::string& blob) {
  ser::Reader r(blob);
  ReadPreamble(r);  // Peek does not pay for a full-payload checksum walk.
  return ReadMeta(r);
}

CheckpointMeta RestoreInto(System& sys, const std::string& blob,
                           const std::string& spec_key) {
  ser::Reader r(blob);
  const std::uint64_t stored = ReadPreamble(r);
  const std::size_t payload_off = blob.size() - r.remaining();
  const std::uint64_t actual =
      Fnv64(reinterpret_cast<const std::uint8_t*>(blob.data()) + payload_off,
            blob.size() - payload_off);
  if (actual != stored) {
    throw ser::SerializeError("checkpoint payload checksum mismatch "
                              "(file is corrupt)");
  }
  const CheckpointMeta meta = ReadMeta(r);
  if (meta.spec_key != spec_key) {
    throw ser::SerializeError(
        "checkpoint was captured for a different run configuration\n"
        "  checkpoint: " +
        meta.spec_key + "\n  this run:   " + spec_key);
  }
  sys.Restore(r);
  r.ExpectEnd();
  return meta;
}

void SaveFile(const std::string& path, const std::string& blob) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open checkpoint file for writing: " +
                             path);
  }
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  if (!out) {
    throw std::runtime_error("short write to checkpoint file: " + path);
  }
}

std::string LoadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open checkpoint file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

}  // namespace redcache::ckpt
