// Convenience layer used by benches, examples and integration tests:
// build a System for (architecture, workload, preset) and run it.
#pragma once

#include <string>

#include "dramcache/factory.hpp"
#include "obs/epoch_sampler.hpp"
#include "sim/presets.hpp"
#include "sim/system.hpp"
#include "tenant/mix.hpp"
#include "workloads/benchmarks.hpp"

namespace redcache {

struct RunSpec {
  Arch arch = Arch::kAlloy;
  /// Registry policy name (see dramcache/policy_registry.hpp). When empty
  /// the policy is derived from `arch` via ToString, so existing enum-based
  /// call sites (and their cache/golden keys) behave exactly as before.
  std::string policy;
  std::string workload = "LU";
  SimPreset preset = EvalPreset();
  /// Workload size multiplier. Benches also honor the REDCACHE_REFS_SCALE
  /// environment variable (see EffectiveScale).
  double scale = 1.0;
  /// Use `scale` exactly, ignoring REDCACHE_REFS_SCALE. The fingerprint
  /// canaries (sim/batch.cpp) need runs that are reproducible across
  /// environments.
  bool ignore_env_scale = false;
  std::uint64_t seed = 1;
  Cycle max_cycles = ~Cycle{0};
  /// Wrap the controller in a strict ShadowChecker (src/verify/): every
  /// divergence from the reference memory model throws
  /// ShadowChecker::VerifyError, and RunOne audits the drain on completion.
  bool verify = false;
  /// Multi-tenant mix (src/tenant/). When active, `workload` is ignored:
  /// the mix's tenants are co-scheduled through a MixTraceSource, tenant
  /// accounting is attached, and stats gain "tenant<N>.*" counters. An
  /// inactive mix (the default) changes nothing — stats and cache/golden
  /// keys stay byte-identical to pre-mix builds.
  tenant::MixSpec mix;
  /// Serve mode: stream the trace from this path ("-" = stdin, or a pipe /
  /// FIFO / file) instead of synthesizing `workload`. With an active mix,
  /// the stream feeds the tenant whose workload label is "serve". Serve
  /// runs are never batch-cached (the stream's content is not part of any
  /// key).
  std::string serve_path;
  /// Observability only — excluded from cache keys, fingerprints and golden
  /// comparisons (CellKey enumerates its fields explicitly, so these never
  /// leak in). When non-empty, RunOne attaches an EpochSampler and writes
  /// the telemetry series here: "-" or "*.ndjson" streams NDJSON records
  /// live as epochs close; "*.csv" / anything else writes CSV / JSON at
  /// end of run.
  std::string telemetry_path;
  /// Epoch pacing for `telemetry_path` (fixed width or adaptive band);
  /// default uses the preset's telemetry_epoch_cycles.
  obs::EpochSpec epoch;
  /// Checkpoint/restore (DESIGN.md section 15). When `checkpoint_path` is
  /// set, RunOne writes a checkpoint blob there at the first event-loop
  /// visit at or after cycle `checkpoint_at` (the loop clamps skip-ahead so
  /// that visit lands exactly on the cycle). When `restore_path` is set,
  /// the freshly built System restores from that blob before running and
  /// resumes at the checkpointed cycle; a blob from a different spec is
  /// rejected. Both are excluded from cache keys (a restored run is never
  /// batch-cached; see RunCellCached).
  std::string checkpoint_path;
  Cycle checkpoint_at = 0;
  std::string restore_path;
};

/// `scale` combined with the REDCACHE_REFS_SCALE environment variable.
double EffectiveScale(double scale);

/// The registry policy name this spec resolves to: `spec.policy`, or
/// ToString(spec.arch) when the policy field is empty.
std::string PolicyNameOf(const RunSpec& spec);

/// Run identification for the spec's telemetry artifacts: arch/workload/
/// preset plus the canonical registry policy name and the mix descriptor
/// (exec_cycles is left for the caller to fill after the run).
obs::TelemetryMeta TelemetryMetaOf(const RunSpec& spec);

/// Build and run one simulation.
RunResult RunOne(const RunSpec& spec);

/// Build the System without running it (integration tests / custom loops).
std::unique_ptr<System> BuildSystem(const RunSpec& spec);

}  // namespace redcache
