// Event-core primitives for the wake-driven scheduler.
//
// A WakeList holds one wake cycle per component (channel, core, controller)
// and maintains their minimum, so a caller can answer "is anything due at
// `now`?" with a single compare and fast-forward time to the next event with
// a single read. All storage is allocated once at Reset; Set/Min never touch
// the heap.
//
// The contract a wake value must satisfy (see DESIGN.md §10): ticking the
// component at any cycle strictly before its advertised wake is a provable
// no-op. Wakes at or before `now` simply mean "due" — components may be
// ticked late or spuriously and must tolerate it; the wake is a lower bound
// on when attention is *needed*, not an appointment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace redcache {

/// True when REDCACHE_NO_SKIP forces single-cycle stepping (see .cpp).
bool NoSkipRequested();

class WakeList {
 public:
  /// "No wake scheduled" — later than any reachable cycle.
  static constexpr Cycle kNever = ~Cycle{0};

  WakeList() = default;
  explicit WakeList(std::size_t n) { Reset(n); }

  /// (Re)size to `n` components, all due immediately (wake 0): a component
  /// that has never been ticked has no basis for a skip.
  void Reset(std::size_t n) {
    wakes_.assign(n, 0);
    min_ = n == 0 ? kNever : 0;
    dirty_ = false;
  }

  std::size_t size() const { return wakes_.size(); }

  Cycle operator[](std::size_t i) const { return wakes_[i]; }

  /// True when component `i` needs attention at `now`.
  bool Due(std::size_t i, Cycle now) const { return wakes_[i] <= now; }

  /// True when no component needs attention at `now`.
  bool NoneDue(Cycle now) const { return Min() > now; }

  /// Record component `i`'s next wake. Raising the current minimum defers
  /// the O(n) re-scan until Min() is next read (a ticked component usually
  /// raises its own wake, and several often wake together).
  void Set(std::size_t i, Cycle wake) {
    const Cycle old = wakes_[i];
    wakes_[i] = wake;
    if (wake < old) {
      if (wake < min_) min_ = wake;
    } else if (old == min_ && wake > old) {
      dirty_ = true;
    }
  }

  /// Mark component `i` due immediately (new work arrived).
  void WakeNow(std::size_t i) {
    wakes_[i] = 0;
    min_ = 0;
    dirty_ = false;
  }

  /// Earliest wake across all components (kNever when empty).
  Cycle Min() const {
    if (dirty_) {
      Cycle m = kNever;
      for (const Cycle w : wakes_) m = w < m ? w : m;
      min_ = m;
      dirty_ = false;
    }
    return min_;
  }

 private:
  std::vector<Cycle> wakes_;
  mutable Cycle min_ = kNever;
  mutable bool dirty_ = false;
};

}  // namespace redcache
