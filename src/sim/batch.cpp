#include "sim/batch.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <iterator>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>
#include <utility>

#include "common/serialize.hpp"
#include "energy/model.hpp"
#include "obs/json.hpp"

namespace redcache {

namespace {

// ---------------------------------------------------------------------------
// Hashing (FNV-1a). Deterministic across platforms; speed is irrelevant.

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t FnvBytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t FnvU64(std::uint64_t h, std::uint64_t v) {
  return FnvBytes(h, &v, sizeof(v));
}

std::uint64_t FnvStr(std::uint64_t h, const std::string& s) {
  return FnvBytes(FnvU64(h, s.size()), s.data(), s.size());
}

// Explicit field-by-field hash of a preset. Used to key the in-process
// fingerprint memo and to separate cache filenames of distinct presets; the
// canary runs in SimFingerprint are what actually guard correctness, so a
// field missed here degrades to a shared memo slot, not to wrong numbers.
std::uint64_t HashSram(std::uint64_t h, const SramCacheConfig& c) {
  h = FnvU64(h, c.size_bytes);
  h = FnvU64(h, c.ways);
  return FnvU64(h, c.latency);
}

std::uint64_t HashDram(std::uint64_t h, const DramConfig& d) {
  const DramTimingParams& t = d.timing;
  for (const Cycle v :
       {t.tRCD, t.tCAS, t.tCCD, t.tWTR, t.tWR, t.tRTP, t.tBL, t.tCWD, t.tRP,
        t.tRRD, t.tRAS, t.tRC, t.tFAW, t.tREFI, t.tRFC, t.tRTW_bubble}) {
    h = FnvU64(h, v);
  }
  const DramGeometry& g = d.geometry;
  h = FnvU64(h, g.channels);
  h = FnvU64(h, g.ranks_per_channel);
  h = FnvU64(h, g.banks_per_rank);
  h = FnvU64(h, g.row_bytes);
  h = FnvU64(h, g.capacity_bytes);
  h = FnvU64(h, g.bus_bits);
  h = FnvU64(h, g.burst_bytes);
  h = FnvU64(h, g.sideband_bytes);
  h = FnvU64(h, d.controller.queue_depth);
  return FnvU64(h, d.controller.starvation_cycles);
}

std::uint64_t PresetFieldHash(const SimPreset& p) {
  std::uint64_t h = FnvStr(kFnvOffset, p.name);
  h = FnvU64(h, p.hierarchy.num_cores);
  h = HashSram(h, p.hierarchy.l1);
  h = HashSram(h, p.hierarchy.l2);
  h = HashSram(h, p.hierarchy.l3);
  h = FnvU64(h, p.core.max_outstanding);
  h = FnvBytes(h, &p.core.dependent_fraction,
               sizeof(p.core.dependent_fraction));
  h = FnvU64(h, p.core.l1_hit_cost);
  h = FnvU64(h, p.core.l2_hit_cost);
  h = FnvU64(h, p.core.l3_hit_cost);
  h = FnvU64(h, p.core.retry_interval);
  h = HashDram(h, p.mem.hbm);
  h = HashDram(h, p.mem.mainmem);
  h = FnvU64(h, p.mem.has_hbm ? 1 : 0);
  h = FnvU64(h, p.mem.input_queue_cap);
  h = FnvU64(h, p.mem.txn_pool_size);
  return FnvU64(h, p.mem.line_blocks);
}

// ---------------------------------------------------------------------------
// Progress reporting.

bool ProgressEnvEnabled() {
  const char* env = std::getenv("REDCACHE_PROGRESS");
  return env == nullptr || std::string(env) != "0";
}

std::string FormatScale(double scale) {
  // %.17g round-trips every double exactly, so scales that differ anywhere
  // in the value (1e-5 vs 2e-5, or past the fourth decimal) never alias.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", scale);
  return buf;
}

std::string SanitizeKey(std::string key) {
  for (char& c : key) {
    if (c == ' ' || c == '/') c = '-';
  }
  return key;
}

std::string HexU64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// ---------------------------------------------------------------------------
// Disk cache (binary, format v3, one ".stats" file per cell). Shares the
// checkpoint serializer: a self-describing header (section tag, format
// version, behavioral fingerprint) followed by exec_cycles and the full
// StatSet via StatSet::Snapshot — the hand-rolled text histogram encoding
// is gone. ANY malformed byte (truncation, corruption, a stale version, a
// section-tag mismatch) throws ser::SerializeError inside LoadCached and
// is treated as a plain miss; the entry is overwritten after
// re-simulation. Energy is not stored: it is derived from counters and
// recomputed on load.

bool LoadCached(const std::string& path, std::uint64_t fingerprint,
                RunResult& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  try {
    ser::Reader r(bytes);
    r.Section("rcache");
    if (r.U64() != kCacheFormatVersion) return false;
    if (r.U64() != fingerprint) return false;
    out.exec_cycles = r.U64();
    out.stats.Restore(r);
    r.ExpectEnd();
  } catch (const ser::SerializeError&) {
    return false;  // corrupt or truncated entry == miss
  }
  out.completed = true;
  return true;
}

void SaveCached(const std::string& path, std::uint64_t fingerprint,
                const RunResult& r) {
  ser::Writer w;
  w.Section("rcache");
  w.U64(kCacheFormatVersion);
  w.U64(fingerprint);
  w.U64(r.exec_cycles);
  r.stats.Snapshot(w);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return;
  const auto& buf = w.buffer();
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
}

// Shared worker-pool driver: runs task(0..n-1) with results keyed by index,
// printing per-completion progress/ETA.
std::vector<RunResult> RunIndexed(
    std::size_t n, const BatchOptions& opts,
    const std::function<RunResult(std::size_t)>& task,
    const std::function<std::string(std::size_t)>& describe) {
  std::vector<RunResult> results(n);
  if (n == 0) return results;
  const bool progress = opts.progress && ProgressEnvEnabled();
  const unsigned jobs =
      static_cast<unsigned>(std::min<std::size_t>(ResolveJobs(opts.jobs), n));
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  const auto start = std::chrono::steady_clock::now();
  std::mutex io_mu;
  // A task() exception must not escape a worker thread (std::terminate);
  // record the first one, drain the pool, and rethrow from the caller.
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex err_mu;

  auto worker = [&]() {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        results[i] = task(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      const std::size_t d = done.fetch_add(1) + 1;
      if (progress) {
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        const double eta =
            elapsed / static_cast<double>(d) * static_cast<double>(n - d);
        std::lock_guard<std::mutex> lock(io_mu);
        std::fprintf(stderr, "[%s %zu/%zu] %s done (%.1fs elapsed, ETA %.1fs)\n",
                     opts.label.c_str(), d, n, describe(i).c_str(), elapsed,
                     eta);
      }
    }
  };

  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::string DescribeSpec(const RunSpec& spec) {
  return PolicyNameOf(spec) + "/" + spec.workload;
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// REDCACHE_CACHE_MAX_MB as bytes; 0 = unbounded (default).
std::uint64_t DiskCacheMaxBytes() {
  const char* env = std::getenv("REDCACHE_CACHE_MAX_MB");
  if (env == nullptr) return 0;
  return std::strtoull(env, nullptr, 10) * 1024ull * 1024ull;
}

/// Refresh mtime so LRU eviction sees this entry as recently used. Best
/// effort: a failed touch only makes the entry evictable sooner.
void TouchCacheEntry(const std::string& path) {
  std::error_code ec;
  std::filesystem::last_write_time(
      path, std::filesystem::file_time_type::clock::now(), ec);
}

}  // namespace

unsigned ResolveJobs(unsigned requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("REDCACHE_JOBS")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::vector<RunResult> RunBatch(const std::vector<RunSpec>& specs,
                                const BatchOptions& opts) {
  return RunIndexed(
      specs.size(), opts, [&](std::size_t i) { return RunOne(specs[i]); },
      [&](std::size_t i) { return DescribeSpec(specs[i]); });
}

void ParallelFor(std::size_t n, unsigned jobs,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(ResolveJobs(jobs), n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex err_mu;
  auto worker = [&]() {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::uint64_t SimFingerprint(const SimPreset& preset,
                             const std::string& workload,
                             const std::string& policy) {
  // Canary micro-simulations on the *cell's own workload* with fixed seed
  // and scale (environment scaling bypassed), so a change confined to one
  // workload's trace generator invalidates that workload's entries instead
  // of hiding behind a shared canary. The base policy set spans the major
  // mechanisms — DDR4 only, the Alloy/BEAR baselines, and the full RedCache
  // policy (alpha, gamma, RCU, refresh bypass); cells running any other
  // registry policy add a canary of that policy so plugin changes guard
  // their own cached cells. Hashing every counter plus exec_cycles makes
  // essentially any behavioral change visible.
  static const char* kBaseCanaries[] = {"No-HBM", "Alloy", "Bear", "RedCache"};
  std::vector<std::string> canaries(std::begin(kBaseCanaries),
                                    std::end(kBaseCanaries));
  if (!policy.empty() &&
      std::find(canaries.begin(), canaries.end(), policy) == canaries.end()) {
    canaries.push_back(policy);
  }

  static std::mutex mu;
  static std::map<std::tuple<std::uint64_t, std::string, std::size_t>,
                  std::uint64_t>
      memo;
  const std::uint64_t field_hash = PresetFieldHash(preset);
  // Two policies never collide in the memo: the extra canary slot is either
  // absent (base set) or determined by the (keyed) canary count + hash.
  const auto memo_key =
      std::make_tuple(field_hash, workload + '\0' + policy, canaries.size());
  std::lock_guard<std::mutex> lock(mu);
  if (const auto it = memo.find(memo_key); it != memo.end()) {
    return it->second;
  }
  std::uint64_t h = FnvU64(kFnvOffset, kCacheFormatVersion);
  h = FnvU64(h, field_hash);
  h = FnvStr(h, workload);
  for (const std::string& canary : canaries) {
    RunSpec spec;
    spec.policy = canary;
    spec.workload = workload;
    spec.preset = preset;
    spec.scale = 0.01;
    spec.ignore_env_scale = true;
    spec.seed = 7;
    const RunResult r = RunOne(spec);
    h = FnvU64(h, r.exec_cycles);
    for (const auto& [name, value] : r.stats.counters()) {
      h = FnvStr(h, name);
      h = FnvU64(h, value);
    }
  }
  memo[memo_key] = h;
  return h;
}

std::string CellKey(const CellSpec& cell) {
  const RunSpec& spec = cell.spec;
  std::string key = spec.preset.name;
  key += '_';
  key += PolicyNameOf(spec);  // == ToString(spec.arch) for enum-based cells
  key += '_';
  key += spec.workload;
  key += '_';
  // Mirror RunOne: the key must name the scale the run actually uses.
  key += FormatScale(spec.ignore_env_scale ? spec.scale
                                           : EffectiveScale(spec.scale));
  key += "_s";
  key += std::to_string(spec.seed);
  if (!cell.variant.empty()) {
    key += '_';
    key += cell.variant;
  }
  // An active mix replaces the workload's meaning entirely, so its full
  // canonical descriptor (mode, window, every tenant's label / weight /
  // rate limit) joins the key. Inactive mixes add nothing: pre-mix cells
  // keep byte-identical keys and stay disk-cache compatible.
  if (spec.mix.active()) {
    key += "_mix";
    key += spec.mix.Describe();
  }
  // The tail hash covers every remaining result-affecting input: the preset
  // fields and the cycle cap (the seed is spelled out above for legibility).
  std::uint64_t tail = PresetFieldHash(spec.preset);
  tail = FnvU64(tail, spec.max_cycles);
  key += '_';
  key += HexU64(tail);
  return SanitizeKey(key);
}

void EnforceDiskCacheBound(const std::string& dir, std::uint64_t max_bytes) {
  namespace fs = std::filesystem;
  // One sweep at a time per process; cross-process races are benign (a
  // concurrent remove just makes our remove a no-op).
  static std::mutex sweep_mu;
  std::lock_guard<std::mutex> lock(sweep_mu);

  struct Entry {
    fs::path path;
    std::uint64_t size;
    fs::file_time_type mtime;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; ec.value() == 0 && it != end;
       it.increment(ec)) {
    if (it->path().extension() != ".stats") continue;
    std::error_code fec;
    if (!it->is_regular_file(fec) || fec) continue;
    const std::uint64_t size = it->file_size(fec);
    if (fec) continue;
    const fs::file_time_type mtime = it->last_write_time(fec);
    if (fec) continue;
    entries.push_back({it->path(), size, mtime});
    total += size;
  }
  if (total <= max_bytes) return;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  for (const Entry& e : entries) {
    if (total <= max_bytes) break;
    std::error_code rec;
    if (fs::remove(e.path, rec) && !rec) total -= e.size;
  }
}

RunResult RunCellCached(const CellSpec& cell) {
  return RunCellCached(cell, nullptr);
}

RunResult RunCellCached(const CellSpec& cell, CellProfile* profile) {
  static std::mutex mu;
  static std::map<std::string, std::shared_future<RunResult>> memo;

  const auto t_enter = std::chrono::steady_clock::now();
  const std::string key = CellKey(cell);
  if (profile != nullptr) {
    profile->key = key;
    profile->arch = PolicyNameOf(cell.spec);
    profile->workload = cell.spec.workload;
  }
  // Serve cells replay an external stream whose content no key covers, and
  // restored/checkpointing cells depend on (or produce) blob files outside
  // any key: never memoize or disk-cache either.
  if (!cell.spec.serve_path.empty() || !cell.spec.restore_path.empty() ||
      !cell.spec.checkpoint_path.empty()) {
    const auto t_sim = std::chrono::steady_clock::now();
    RunResult result = RunOne(cell.spec);
    if (profile != nullptr) {
      profile->sim_seconds = SecondsSince(t_sim);
      profile->exec_cycles = result.exec_cycles;
      profile->tenants = tenant::QosFromStats(result.stats);
      profile->telemetry_path = cell.spec.telemetry_path;
      profile->telemetry_epochs = result.telemetry_epochs;
      profile->wall_seconds = SecondsSince(t_enter);
    }
    return result;
  }
  std::shared_future<RunResult> future;
  std::promise<RunResult> promise;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = memo.find(key);
    if (it == memo.end()) {
      future = promise.get_future().share();
      memo.emplace(key, future);
      owner = true;
    } else {
      future = it->second;
    }
  }
  if (!owner) {
    const RunResult& shared = future.get();
    if (profile != nullptr) {
      profile->memo_hit = true;
      profile->exec_cycles = shared.exec_cycles;
      profile->tenants = tenant::QosFromStats(shared.stats);
      profile->wall_seconds = SecondsSince(t_enter);
    }
    return shared;
  }

  try {
    RunResult result;
    const char* cache_dir = std::getenv("REDCACHE_CACHE_DIR");
    std::string path;
    bool loaded = false;
    std::uint64_t fingerprint = 0;
    if (cache_dir != nullptr) {
      const auto t_fp = std::chrono::steady_clock::now();
      if (cell.spec.mix.active()) {
        // A mix cell depends on every tenant's trace generator, not on the
        // (ignored) spec.workload: combine one canary fingerprint per
        // tenant so a change to any co-scheduled workload invalidates it.
        fingerprint = kFnvOffset;
        for (const tenant::TenantSpec& t : cell.spec.mix.tenants) {
          fingerprint = FnvU64(
              fingerprint, SimFingerprint(cell.spec.preset, t.workload,
                                          PolicyNameOf(cell.spec)));
        }
      } else {
        fingerprint = SimFingerprint(cell.spec.preset, cell.spec.workload,
                                     PolicyNameOf(cell.spec));
      }
      if (profile != nullptr) {
        profile->fingerprint_seconds = SecondsSince(t_fp);
      }
      path = std::string(cache_dir) + "/" + key + ".stats";
      loaded = LoadCached(path, fingerprint, result);
      if (loaded) TouchCacheEntry(path);
    }
    if (!loaded) {
      const auto t_sim = std::chrono::steady_clock::now();
      result = RunOne(cell.spec);
      if (profile != nullptr) {
        profile->sim_seconds = SecondsSince(t_sim);
        profile->telemetry_path = cell.spec.telemetry_path;
        profile->telemetry_epochs = result.telemetry_epochs;
      }
      if (!path.empty() && result.completed) {
        SaveCached(path, fingerprint, result);
        if (const std::uint64_t max_bytes = DiskCacheMaxBytes();
            max_bytes != 0) {
          EnforceDiskCacheBound(cache_dir, max_bytes);
        }
      }
    } else {
      // Energy is derived from counters; recompute instead of storing it.
      const SimPreset& p = cell.spec.preset;
      result.energy = EnergyModel().Compute(
          result.stats, result.exec_cycles, p.hierarchy.num_cores,
          p.mem.hbm.geometry.channels, p.mem.mainmem.geometry.channels);
    }
    if (profile != nullptr) {
      profile->disk_hit = loaded;
      profile->exec_cycles = result.exec_cycles;
      profile->ticks_executed = result.ticks_executed;
      profile->cycles_skipped = result.cycles_skipped;
      profile->tenants = tenant::QosFromStats(result.stats);
      profile->wall_seconds = SecondsSince(t_enter);
    }
    promise.set_value(result);
    return future.get();
  } catch (...) {
    promise.set_exception(std::current_exception());
    {
      // Do not pin the failure for later retries within the process.
      std::lock_guard<std::mutex> lock(mu);
      memo.erase(key);
    }
    throw;
  }
}

std::string BatchReportJson(const BatchReport& report) {
  std::size_t memo_hits = 0, disk_hits = 0, simulated = 0;
  std::size_t telemetry_cells = 0;
  double fp_seconds = 0.0, sim_seconds = 0.0;
  std::uint64_t ticks = 0, skipped = 0, telemetry_epochs = 0;
  for (const CellProfile& c : report.cells) {
    if (c.memo_hit) {
      memo_hits++;
    } else if (c.disk_hit) {
      disk_hits++;
    } else {
      simulated++;
    }
    fp_seconds += c.fingerprint_seconds;
    sim_seconds += c.sim_seconds;
    ticks += c.ticks_executed;
    skipped += c.cycles_skipped;
    if (!c.telemetry_path.empty()) telemetry_cells++;
    telemetry_epochs += c.telemetry_epochs;
  }
  std::string out = "{\"label\":\"" + obs::JsonEscape(report.label) + "\"";
  char buf[64];
  out += ",\"jobs\":" + std::to_string(report.jobs);
  std::snprintf(buf, sizeof(buf), ",\"wall_seconds\":%.6f",
                report.wall_seconds);
  out += buf;
  out += ",\"summary\":{\"cells\":" + std::to_string(report.cells.size());
  out += ",\"simulated\":" + std::to_string(simulated);
  out += ",\"memo_hits\":" + std::to_string(memo_hits);
  out += ",\"disk_hits\":" + std::to_string(disk_hits);
  std::snprintf(buf, sizeof(buf), ",\"fingerprint_seconds\":%.6f",
                fp_seconds);
  out += buf;
  std::snprintf(buf, sizeof(buf), ",\"sim_seconds\":%.6f", sim_seconds);
  out += buf;
  out += ",\"ticks_executed\":" + std::to_string(ticks);
  out += ",\"cycles_skipped\":" + std::to_string(skipped);
  out += ",\"telemetry_cells\":" + std::to_string(telemetry_cells);
  out += ",\"telemetry_epochs\":" + std::to_string(telemetry_epochs) + "}";
  out += ",\"cells\":[";
  bool first = true;
  for (const CellProfile& c : report.cells) {
    if (!first) out += ",";
    first = false;
    out += "{\"key\":\"" + obs::JsonEscape(c.key) + "\"";
    out += ",\"arch\":\"" + obs::JsonEscape(c.arch) + "\"";
    out += ",\"workload\":\"" + obs::JsonEscape(c.workload) + "\"";
    std::snprintf(buf, sizeof(buf), ",\"wall_seconds\":%.6f", c.wall_seconds);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"fingerprint_seconds\":%.6f",
                  c.fingerprint_seconds);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"sim_seconds\":%.6f", c.sim_seconds);
    out += buf;
    out += ",\"memo_hit\":";
    out += c.memo_hit ? "true" : "false";
    out += ",\"disk_hit\":";
    out += c.disk_hit ? "true" : "false";
    out += ",\"exec_cycles\":" + std::to_string(c.exec_cycles);
    out += ",\"ticks_executed\":" + std::to_string(c.ticks_executed);
    out += ",\"cycles_skipped\":" + std::to_string(c.cycles_skipped);
    // Telemetry pointers: present only for cells that simulated under
    // --telemetry-dir, so plain reports serialize byte-identically.
    if (!c.telemetry_path.empty()) {
      out += ",\"telemetry\":\"" + obs::JsonEscape(c.telemetry_path) + "\"";
      out += ",\"telemetry_epochs\":" + std::to_string(c.telemetry_epochs);
    }
    // Sampling quality: present only for sampled cells, so full-detail
    // reports serialize byte-identically to pre-sampling builds.
    if (c.sampled) {
      out += ",\"sampled\":true";
      out += ",\"sampling_intervals\":" + std::to_string(c.sampling_intervals);
      std::snprintf(buf, sizeof(buf), ",\"sampling_ci_pct\":%.4f",
                    c.sampling_ci_pct);
      out += buf;
    }
    // Per-tenant QoS rows: present only for mix cells, so single-tenant
    // reports serialize byte-identically to pre-mix builds.
    if (!c.tenants.empty()) {
      out += ",\"tenants\":[";
      bool tfirst = true;
      for (const tenant::TenantQos& t : c.tenants) {
        if (!tfirst) out += ",";
        tfirst = false;
        out += "{\"tenant\":" + std::to_string(t.tenant);
        out += ",\"refs\":" + std::to_string(t.refs);
        out += ",\"finish_cycles\":" + std::to_string(t.finish_cycles);
        out += ",\"reads\":" + std::to_string(t.reads);
        out += ",\"writebacks\":" + std::to_string(t.writebacks);
        out += ",\"serve_hits\":" + std::to_string(t.serve_hits);
        out += ",\"serve_misses\":" + std::to_string(t.serve_misses);
        out += ",\"hbm_bytes\":" + std::to_string(t.hbm_bytes);
        out += ",\"mm_bytes\":" + std::to_string(t.mm_bytes);
        out += ",\"rcu_drains\":" + std::to_string(t.rcu_drains);
        std::snprintf(buf, sizeof(buf), ",\"hit_rate\":%.6f", t.hit_rate());
        out += buf;
        std::snprintf(buf, sizeof(buf), ",\"hbm_share\":%.6f",
                      tenant::HbmShare(c.tenants, t));
        out += buf;
        std::snprintf(buf, sizeof(buf), ",\"mm_share\":%.6f",
                      tenant::MmShare(c.tenants, t));
        out += buf;
        out += "}";
      }
      out += "]";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

bool WriteBatchReportJson(const std::string& path, const BatchReport& report) {
  std::ofstream out(path);
  if (!out) return false;
  out << BatchReportJson(report) << '\n';
  return static_cast<bool>(out);
}

std::vector<RunResult> RunCells(const std::vector<CellSpec>& cells,
                                const BatchOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  BatchReport* report = opts.report;
  if (report != nullptr) {
    report->label = opts.label;
    report->jobs = ResolveJobs(opts.jobs);
    report->cells.assign(cells.size(), CellProfile{});
  }
  std::vector<RunResult> results = RunIndexed(
      cells.size(), opts,
      [&](std::size_t i) {
        // Distinct indices write distinct report slots: thread-safe.
        CellProfile* profile =
            report != nullptr ? &report->cells[i] : nullptr;
        if (!opts.telemetry_dir.empty()) {
          // Per-cell series, keyed like the disk cache so artifacts from
          // different sweeps never collide. The copy keeps telemetry out
          // of the caller's specs (and CellKey never hashes these fields).
          CellSpec cell = cells[i];
          cell.spec.telemetry_path =
              opts.telemetry_dir + "/" + CellKey(cells[i]) + ".ndjson";
          cell.spec.epoch = opts.epoch;
          return RunCellCached(cell, profile);
        }
        return RunCellCached(cells[i], profile);
      },
      [&](std::size_t i) { return DescribeSpec(cells[i].spec); });
  if (report != nullptr) report->wall_seconds = SecondsSince(t0);
  return results;
}

}  // namespace redcache
