#include "sim/system.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace redcache {

System::System(const HierarchyConfig& hierarchy_cfg,
               const CoreParams& core_params,
               std::unique_ptr<MemController> controller,
               std::unique_ptr<TraceSource> trace, std::uint64_t seed)
    : hierarchy_(hierarchy_cfg),
      controller_(std::move(controller)),
      trace_(std::move(trace)) {
  const std::uint32_t n = std::min(hierarchy_cfg.num_cores,
                                   trace_->num_cores());
  for (std::uint32_t c = 0; c < n; ++c) {
    // The private-base upcast must happen here, inside the class scope.
    MemoryPort* port = this;
    cores_.push_back(std::make_unique<Core>(c, core_params, trace_.get(),
                                            &hierarchy_, port, seed));
  }
}

bool System::TrySubmitRead(Addr addr, std::uint64_t tag, Cycle now) {
  if (wb_queue_.size() > kWbThrottle) return false;
  if (!controller_->CanAcceptRead()) return false;
  controller_->SubmitRead(addr, tag, now);
  if (observer_) observer_(addr, /*is_writeback=*/false);
  return true;
}

void System::SubmitWriteback(Addr addr, Cycle now) {
  (void)now;
  wb_queue_.push_back(addr);
  if (observer_) observer_(addr, /*is_writeback=*/true);
}

RunResult System::Run(Cycle max_cycles) {
  RunResult result;
  Cycle now = 0;
  std::vector<Cycle> hints(cores_.size(), 0);
  // A core is re-polled when its hint comes due or a completion arrived.
  std::vector<char> poll(cores_.size(), 1);

  while (now <= max_cycles) {
    // Telemetry epoch boundary (single predictable branch when detached).
    if (telemetry_ != nullptr && telemetry_->Due(now)) {
      telemetry_->Sample(now, TelemetrySnapshot(now));
    }

    // Drain buffered L3 writebacks into the controller.
    while (!wb_queue_.empty() && controller_->CanAcceptWriteback()) {
      controller_->SubmitWriteback(wb_queue_.front(), now);
      wb_queue_.pop_front();
    }

    controller_->Tick(now);

    auto& completions = controller_->read_completions();
    for (const ReadCompletion& c : completions) {
      const auto core = static_cast<std::uint32_t>(c.tag >> 48);
      assert(core < cores_.size());
      cores_[core]->OnMemComplete(c.tag, std::max(now, c.done));
      poll[core] = 1;
    }
    completions.clear();

    bool all_done = true;
    Cycle next = Core::kWaiting;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      if (cores_[i]->Finished()) continue;
      all_done = false;
      if (poll[i] == 0 && hints[i] > now) {
        next = std::min(next, hints[i]);
        continue;
      }
      hints[i] = cores_[i]->Progress(now);
      poll[i] = 0;
      next = std::min(next, hints[i]);
    }

    if (all_done && wb_queue_.empty() && controller_->Idle()) {
      result.completed = true;
      break;
    }

    Cycle ctrl_next = controller_->NextEventHint(now);
    if (!wb_queue_.empty()) ctrl_next = std::min(ctrl_next, now + 1);
    next = std::min(next, ctrl_next);
    if (next == Core::kWaiting) {
      throw std::logic_error(
          "simulation deadlock: nothing can make progress");
    }
    now = std::max(now + 1, next);
  }

  Cycle finish = now;
  for (const auto& c : cores_) {
    finish = std::max(finish, c->finish_time());
  }
  result.exec_cycles = finish;

  if (telemetry_ != nullptr) {
    telemetry_->Finalize(finish, TelemetrySnapshot(finish));
  }

  controller_->ExportStats(result.stats);
  ExportCoreStats(result.stats);
  result.stats.Counter("sys.exec_cycles") = finish;

  const EnergyModel energy_model;
  // Reach through any verification decorator to the concrete policy for the
  // device geometry the energy model needs.
  std::uint32_t hbm_channels = 0;
  std::uint32_t ddr_channels = 0;
  if (const auto* base =
          dynamic_cast<const ControllerBase*>(controller_->underlying())) {
    if (const DramSystem* hbm = base->hbm()) hbm_channels = hbm->num_channels();
    ddr_channels = base->mainmem()->num_channels();
  }
  result.energy = energy_model.Compute(
      result.stats, finish, static_cast<std::uint32_t>(cores_.size()),
      hbm_channels, ddr_channels);
  return result;
}

StatSet System::TelemetrySnapshot(Cycle now) const {
  (void)now;
  StatSet snap;
  controller_->ExportStats(snap);
  controller_->SampleTelemetry(snap);
  ExportCoreStats(snap);
  snap.Counter("gauge.wb_queue_depth") = wb_queue_.size();
  return snap;
}

void System::ExportCoreStats(StatSet& stats) const {
  std::uint64_t refs = 0, l1h = 0, l2h = 0, l3h = 0, misses = 0;
  for (const auto& c : cores_) {
    refs += c->refs_processed();
    l1h += c->l1_hits();
    l2h += c->l2_hits();
    l3h += c->l3_hits();
    misses += c->misses_issued();
  }
  stats.Counter("core.refs") = refs;
  stats.Counter("core.l1_hits") = l1h;
  stats.Counter("core.l2_hits") = l2h;
  stats.Counter("core.l3_hits") = l3h;
  stats.Counter("core.misses") = misses;
  stats.Counter("core.l1_accesses") = refs;
  stats.Counter("core.l2_accesses") = refs - l1h;
  stats.Counter("core.l3_accesses") = refs - l1h - l2h;
}

}  // namespace redcache
