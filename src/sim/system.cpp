#include "sim/system.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "sim/event_core.hpp"

namespace redcache {

System::System(const HierarchyConfig& hierarchy_cfg,
               const CoreParams& core_params,
               std::unique_ptr<MemController> controller,
               std::unique_ptr<TraceSource> trace, std::uint64_t seed)
    : hierarchy_(hierarchy_cfg),
      controller_(std::move(controller)),
      trace_(std::move(trace)) {
  const std::uint32_t n = std::min(hierarchy_cfg.num_cores,
                                   trace_->num_cores());
  for (std::uint32_t c = 0; c < n; ++c) {
    // The private-base upcast must happen here, inside the class scope.
    MemoryPort* port = this;
    cores_.push_back(std::make_unique<Core>(c, core_params, trace_.get(),
                                            &hierarchy_, port, seed));
  }
  hints_.assign(cores_.size(), 0);
  // A core is re-polled when its hint comes due or a completion arrived.
  poll_.assign(cores_.size(), 1);
}

void System::SetTenantAccounting(
    std::unique_ptr<tenant::TenantAccounting> acct) {
  tenant_acct_ = std::move(acct);
  for (auto& core : cores_) core->SetTenantAccounting(tenant_acct_.get());
  controller_->SetTenantAccounting(tenant_acct_.get());
}

bool System::TrySubmitRead(Addr addr, std::uint64_t tag, Cycle now) {
  if (wb_queue_.size() > kWbThrottle) return false;
  if (!controller_->CanAcceptRead()) return false;
  controller_->SubmitRead(addr, tag, now);
  input_submitted_ = true;
  if (observer_) observer_(addr, /*is_writeback=*/false);
  return true;
}

void System::SubmitWriteback(Addr addr, Cycle now) {
  (void)now;
  wb_queue_.push_back(addr);
  if (observer_) observer_(addr, /*is_writeback=*/true);
}

RunResult System::Run(Cycle max_cycles) {
  RunResult result;
  const bool no_skip = NoSkipRequested();
  // The pacing state (hints_/poll_/ctrl_wake_) lives in members so that a
  // checkpoint captures it: the controller's stored wake is the value its
  // last Tick returned — between visits it is quiescent unless new input
  // arrives, so ticking it strictly before `ctrl_wake_` with
  // `input_submitted_` clear would be a provable no-op (DESIGN.md section
  // 10) and is skipped. A core's hint can be a backpressure retry
  // (now + retry_interval), which no component re-derives on its own.
  Cycle now = resume_now_;
  if (!resumed_) {
    ticks_executed_ = 0;
    cycles_skipped_ = 0;
  }

  while (now <= max_cycles) {
    // Checkpoint emission happens before anything else in the iteration:
    // every component is at a cycle boundary and the loop state above is
    // exactly what Restore needs to re-enter here.
    if (ckpt_hook_ && now >= ckpt_next_) {
      ckpt_hook_(now);
      ckpt_next_ = ckpt_every_ == 0 ? ~Cycle{0} : ckpt_next_ + ckpt_every_;
    }
    ticks_executed_++;
    // Telemetry epoch boundary (single predictable branch when detached).
    // Time jumps are clamped to the next boundary below, so this samples
    // exactly at the epoch edge even under skip-ahead.
    if (telemetry_ != nullptr && telemetry_->Due(now)) {
      telemetry_->Sample(now, TelemetrySnapshot(now));
    }

    // Drain buffered L3 writebacks into the controller.
    while (!wb_queue_.empty() && controller_->CanAcceptWriteback()) {
      controller_->SubmitWriteback(wb_queue_.front(), now);
      wb_queue_.pop_front();
      input_submitted_ = true;
    }

    if (input_submitted_ || now >= ctrl_wake_) {
      ctrl_wake_ = controller_->Tick(now);
      input_submitted_ = false;
    }

    auto& completions = controller_->read_completions();
    for (const ReadCompletion& c : completions) {
      const auto core = static_cast<std::uint32_t>(c.tag >> 48);
      assert(core < cores_.size());
      cores_[core]->OnMemComplete(c.tag, std::max(now, c.done));
      poll_[core] = 1;
    }
    completions.clear();

    bool all_done = true;
    Cycle next = Core::kWaiting;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      if (cores_[i]->Finished()) continue;
      if (poll_[i] == 0 && hints_[i] > now) {
        all_done = false;
        next = std::min(next, hints_[i]);
        continue;
      }
      hints_[i] = cores_[i]->Progress(now);
      poll_[i] = 0;
      // Re-check after Progress: a core that retired its last reference this
      // visit must not hold the loop open, or the exit test only passes one
      // visit later — which under skip-ahead can be a refresh interval away
      // and inflates exec_cycles past the true quiesce point.
      if (cores_[i]->Finished()) continue;
      all_done = false;
      next = std::min(next, hints_[i]);
    }

    if (all_done && wb_queue_.empty() && controller_->Idle()) {
      result.completed = true;
      break;
    }

    // Pacing. If a core submitted reads during Progress the stored wake
    // predates that input, so ask for a fresh hint; otherwise the stored
    // wake is already exact.
    Cycle ctrl_next =
        input_submitted_ ? controller_->NextEventHint(now) : ctrl_wake_;
    if (!wb_queue_.empty()) ctrl_next = std::min(ctrl_next, now + 1);
    next = std::min(next, ctrl_next);
    if (next == Core::kWaiting) {
      throw std::logic_error(
          "simulation deadlock: nothing can make progress");
    }
    Cycle target = no_skip ? now + 1 : std::max(now + 1, next);
    // Clamp jumps to the next telemetry epoch boundary so epochs stay
    // exact. A clamped visit finds nothing due and re-derives the same
    // pacing, so attaching telemetry cannot perturb simulation state.
    if (telemetry_ != nullptr && target > telemetry_->next_due()) {
      target = std::max(now + 1, telemetry_->next_due());
    }
    // Same clamping for checkpoint emission: land exactly on the due
    // cycle so the hook fires at the boundary it was scheduled for. The
    // extra (no-op) visits only move ticks_executed_, which lives outside
    // result.stats — enabling checkpoints never changes reported stats.
    if (ckpt_hook_ && target > ckpt_next_) {
      target = std::max(now + 1, ckpt_next_);
    }
    cycles_skipped_ += target - now - 1;
    now = target;
  }

  result.ticks_executed = ticks_executed_;
  result.cycles_skipped = cycles_skipped_;

  Cycle finish = now;
  for (const auto& c : cores_) {
    finish = std::max(finish, c->finish_time());
  }
  result.exec_cycles = finish;

  if (telemetry_ != nullptr) {
    telemetry_->Finalize(finish, TelemetrySnapshot(finish));
  }

  controller_->ExportStats(result.stats);
  ExportCoreStats(result.stats);
  if (tenant_acct_ != nullptr) tenant_acct_->ExportStats(result.stats);
  result.stats.Counter("sys.exec_cycles") = finish;

  const EnergyModel energy_model;
  // Reach through any verification decorator to the concrete policy for the
  // device geometry the energy model needs.
  std::uint32_t hbm_channels = 0;
  std::uint32_t ddr_channels = 0;
  if (const auto* base =
          dynamic_cast<const ControllerBase*>(controller_->underlying())) {
    if (const DramSystem* hbm = base->hbm()) hbm_channels = hbm->num_channels();
    ddr_channels = base->mainmem()->num_channels();
  }
  result.energy = energy_model.Compute(
      result.stats, finish, static_cast<std::uint32_t>(cores_.size()),
      hbm_channels, ddr_channels);
  return result;
}

void System::Snapshot(ser::Writer& w, Cycle now) const {
  w.Section("sys");
  w.U64(now);
  w.U64(ticks_executed_);
  w.U64(cycles_skipped_);
  w.Bool(input_submitted_);
  w.U64(ctrl_wake_);
  w.U64Seq(hints_);
  w.U8Seq(poll_);
  w.U64Seq(wb_queue_);
  hierarchy_.Snapshot(w);
  w.U64(cores_.size());
  for (const auto& c : cores_) c->Snapshot(w);
  trace_->Snapshot(w);
  controller_->Snapshot(w);
  w.Bool(tenant_acct_ != nullptr);
  if (tenant_acct_ != nullptr) tenant_acct_->Snapshot(w);
}

void System::Restore(ser::Reader& r) {
  r.Section("sys");
  resume_now_ = r.U64();
  ticks_executed_ = r.U64();
  cycles_skipped_ = r.U64();
  input_submitted_ = r.Bool();
  ctrl_wake_ = r.U64();
  if (r.SeqLen(8) != hints_.size()) {
    throw ser::SerializeError("checkpoint core count mismatch");
  }
  for (Cycle& h : hints_) h = r.U64();
  if (r.SeqLen(1) != poll_.size()) {
    throw ser::SerializeError("checkpoint core count mismatch");
  }
  for (char& p : poll_) p = static_cast<char>(r.U8());
  wb_queue_.clear();
  const std::size_t n_wb = r.SeqLen(8);
  for (std::size_t i = 0; i < n_wb; ++i) wb_queue_.push_back(r.U64());
  hierarchy_.Restore(r);
  if (r.U64() != cores_.size()) {
    throw ser::SerializeError("checkpoint core count mismatch");
  }
  for (auto& c : cores_) c->Restore(r);
  trace_->Restore(r);
  controller_->Restore(r);
  const bool has_tenants = r.Bool();
  if (has_tenants != (tenant_acct_ != nullptr)) {
    throw ser::SerializeError(
        "checkpoint tenant-accounting presence mismatch");
  }
  if (tenant_acct_ != nullptr) tenant_acct_->Restore(r);
  resumed_ = true;
}

StatSet System::TelemetrySnapshot(Cycle now) const {
  StatSet snap;
  controller_->ExportStats(snap);
  controller_->SampleTelemetry(snap);
  ExportCoreStats(snap);
  trace_->SampleTelemetry(snap);
  if (tenant_acct_ != nullptr) tenant_acct_->SampleTelemetry(snap, now);
  snap.Counter("gauge.wb_queue_depth") = wb_queue_.size();
  // Event-loop economics. The cumulative counters become per-epoch deltas
  // in the series; the gauge is the running skip percentage so far.
  snap.Counter("sys.ticks_executed") = ticks_executed_;
  snap.Counter("sys.cycles_skipped") = cycles_skipped_;
  const std::uint64_t elapsed = ticks_executed_ + cycles_skipped_;
  snap.Counter("gauge.skip_pct") =
      elapsed == 0 ? 0 : cycles_skipped_ * 100 / elapsed;
  return snap;
}

void System::ExportCoreStats(StatSet& stats) const {
  std::uint64_t refs = 0, l1h = 0, l2h = 0, l3h = 0, misses = 0;
  for (const auto& c : cores_) {
    refs += c->refs_processed();
    l1h += c->l1_hits();
    l2h += c->l2_hits();
    l3h += c->l3_hits();
    misses += c->misses_issued();
  }
  stats.Counter("core.refs") = refs;
  stats.Counter("core.l1_hits") = l1h;
  stats.Counter("core.l2_hits") = l2h;
  stats.Counter("core.l3_hits") = l3h;
  stats.Counter("core.misses") = misses;
  stats.Counter("core.l1_accesses") = refs;
  stats.Counter("core.l2_accesses") = refs - l1h;
  stats.Counter("core.l3_accesses") = refs - l1h - l2h;
}

}  // namespace redcache
