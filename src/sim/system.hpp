// Full-system simulator: cores -> L1/L2/L3 -> memory controller -> DRAM.
//
// Event-paced: the run loop advances time to the earliest cycle at which a
// core or the memory system can make progress, so idle stretches are
// skipped while busy periods are simulated at DRAM-command resolution.
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "common/serialize.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "cpu/core.hpp"
#include "dramcache/controller.hpp"
#include "energy/model.hpp"
#include "obs/epoch_sampler.hpp"
#include "sram/hierarchy.hpp"
#include "workloads/trace.hpp"

namespace redcache {

/// Outcome of one simulation.
struct RunResult {
  bool completed = false;
  Cycle exec_cycles = 0;
  StatSet stats;              ///< devices + controller + core counters
  EnergyBreakdown energy;
  /// Event-loop economics: iterations actually executed vs cycles jumped
  /// over by skip-ahead. Kept out of `stats` so golden comparisons and the
  /// skip/no-skip differential stay mode-independent.
  std::uint64_t ticks_executed = 0;
  std::uint64_t cycles_skipped = 0;
  /// Telemetry epochs closed when RunSpec::telemetry_path was set; 0
  /// otherwise (and on batch cache hits — observability is not cached).
  std::uint64_t telemetry_epochs = 0;

  // Convenience accessors over `stats`.
  std::uint64_t HbmBytes() const { return stats.GetCounter("hbm.bytes_transferred"); }
  std::uint64_t MmBytes() const { return stats.GetCounter("ddr4.bytes_transferred"); }
  std::uint64_t TotalBytes() const { return HbmBytes() + MmBytes(); }
  /// Aggregate consumed bandwidth over both interfaces, bytes per CPU cycle.
  double AggregateBandwidth() const {
    return exec_cycles == 0
               ? 0.0
               : static_cast<double>(TotalBytes()) /
                     static_cast<double>(exec_cycles);
  }
};

class System : private MemoryPort {
 public:
  System(const HierarchyConfig& hierarchy_cfg, const CoreParams& core_params,
         std::unique_ptr<MemController> controller,
         std::unique_ptr<TraceSource> trace, std::uint64_t seed = 1);

  /// Observe every request entering the memory system (Fig. 3 profiling).
  using RequestObserver = std::function<void(Addr addr, bool is_writeback)>;
  void SetRequestObserver(RequestObserver obs) { observer_ = std::move(obs); }

  /// Attach an epoch sampler (owned by the caller; must outlive Run). When
  /// attached, the run loop snapshots stats + telemetry gauges every
  /// sampler-epoch; detached (default) the loop does no telemetry work.
  void SetTelemetry(obs::EpochSampler* sampler) { telemetry_ = sampler; }

  /// Attach per-tenant QoS accounting for a multi-tenant mix. The System
  /// takes ownership and shares the instance with every core and the
  /// controller; Run() then exports "tenant<N>.*" counters alongside the
  /// usual stats. Never attached for single-tenant runs, whose stats stay
  /// byte-identical.
  void SetTenantAccounting(std::unique_ptr<tenant::TenantAccounting> acct);
  tenant::TenantAccounting* tenant_accounting() { return tenant_acct_.get(); }

  /// Run to completion (or `max_cycles`). May be called once. After a
  /// Restore, re-enters the event loop at the checkpointed cycle.
  RunResult Run(Cycle max_cycles = ~Cycle{0});

  /// Checkpoint emission. The hook fires at the top of a loop iteration —
  /// before the telemetry sample, the writeback drain, and any component
  /// tick — so every component is quiescent-at-cycle-boundary when the
  /// hook snapshots it. Skip-ahead jumps are clamped to the next due cycle
  /// (exactly like telemetry epochs), and a clamped visit re-derives the
  /// same pacing, so enabling checkpoints cannot perturb simulation state.
  /// `every == 0` means one-shot: fire once at `first_due`, then disarm.
  using CheckpointHook = std::function<void(Cycle now)>;
  void SetCheckpointHook(Cycle first_due, Cycle every, CheckpointHook hook) {
    ckpt_next_ = first_due;
    ckpt_every_ = every;
    ckpt_hook_ = std::move(hook);
  }

  /// Serialize the complete mutable simulation state at cycle `now` (must
  /// be a cycle at which the run loop is at its iteration top — i.e. from
  /// inside a checkpoint hook, or before Run was ever entered).
  void Snapshot(ser::Writer& w, Cycle now) const;
  /// Reconstitute state captured by Snapshot into this freshly built
  /// System (same RunSpec => same shapes). The next Run() call resumes at
  /// the checkpointed cycle and replays bit-identically.
  void Restore(ser::Reader& r);
  /// Cycle the next Run() will start at: 0 normally, the checkpointed
  /// cycle after a Restore.
  Cycle resume_cycle() const { return resume_now_; }

  /// Forward fixed-latency functional timing to the memory system (SMARTS
  /// fast-forward between measurement intervals).
  void SetFunctionalTiming(Cycle fixed_latency) {
    controller_->SetFunctionalTiming(fixed_latency);
  }

  /// Cumulative stats + gauges as of `now` — the same snapshot the epoch
  /// sampler sees. Public so restore paths can seed telemetry baselines
  /// and the sampler can difference measurement intervals.
  StatSet CumulativeStats(Cycle now) const { return TelemetrySnapshot(now); }

  const MemController& controller() const { return *controller_; }
  MemController& controller() { return *controller_; }
  const CacheHierarchy& hierarchy() const { return hierarchy_; }
  /// The trace feeding the cores (serve mode reaches through this to
  /// install its stop flag on the underlying StreamTraceSource).
  TraceSource& trace() { return *trace_; }

 private:
  bool TrySubmitRead(Addr addr, std::uint64_t tag, Cycle now) override;
  void SubmitWriteback(Addr addr, Cycle now) override;

  void ExportCoreStats(StatSet& stats) const;
  /// One cumulative snapshot for the epoch sampler (stats + gauges).
  StatSet TelemetrySnapshot(Cycle now) const;

  CacheHierarchy hierarchy_;
  std::unique_ptr<MemController> controller_;
  std::unique_ptr<TraceSource> trace_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::deque<Addr> wb_queue_;
  RequestObserver observer_;
  obs::EpochSampler* telemetry_ = nullptr;
  std::unique_ptr<tenant::TenantAccounting> tenant_acct_;
  /// Set by TrySubmitRead / the writeback drain: the controller's stored
  /// wake predates the new input, so it must be ticked at the next visit
  /// and the pacing hint recomputed fresh.
  bool input_submitted_ = false;
  std::uint64_t ticks_executed_ = 0;
  std::uint64_t cycles_skipped_ = 0;
  /// Run-loop pacing state, promoted to members so a checkpoint captures
  /// it: a core's backpressure retry hint (Core::Progress returning
  /// now + retry_interval) lives only here, and replaying it exactly is
  /// required for bit-identical resume.
  std::vector<Cycle> hints_;
  std::vector<char> poll_;
  Cycle ctrl_wake_ = 0;
  /// Resume support: the cycle Run() enters the loop at, and whether the
  /// tick/skip counters were restored (and must not be reset by Run).
  Cycle resume_now_ = 0;
  bool resumed_ = false;
  /// Checkpoint emission schedule (disarmed when the hook is empty).
  CheckpointHook ckpt_hook_;
  Cycle ckpt_next_ = ~Cycle{0};
  Cycle ckpt_every_ = 0;
  /// Writeback backlog beyond which cores are throttled.
  static constexpr std::size_t kWbThrottle = 256;
};

}  // namespace redcache
