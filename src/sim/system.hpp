// Full-system simulator: cores -> L1/L2/L3 -> memory controller -> DRAM.
//
// Event-paced: the run loop advances time to the earliest cycle at which a
// core or the memory system can make progress, so idle stretches are
// skipped while busy periods are simulated at DRAM-command resolution.
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "cpu/core.hpp"
#include "dramcache/controller.hpp"
#include "energy/model.hpp"
#include "obs/epoch_sampler.hpp"
#include "sram/hierarchy.hpp"
#include "workloads/trace.hpp"

namespace redcache {

/// Outcome of one simulation.
struct RunResult {
  bool completed = false;
  Cycle exec_cycles = 0;
  StatSet stats;              ///< devices + controller + core counters
  EnergyBreakdown energy;
  /// Event-loop economics: iterations actually executed vs cycles jumped
  /// over by skip-ahead. Kept out of `stats` so golden comparisons and the
  /// skip/no-skip differential stay mode-independent.
  std::uint64_t ticks_executed = 0;
  std::uint64_t cycles_skipped = 0;
  /// Telemetry epochs closed when RunSpec::telemetry_path was set; 0
  /// otherwise (and on batch cache hits — observability is not cached).
  std::uint64_t telemetry_epochs = 0;

  // Convenience accessors over `stats`.
  std::uint64_t HbmBytes() const { return stats.GetCounter("hbm.bytes_transferred"); }
  std::uint64_t MmBytes() const { return stats.GetCounter("ddr4.bytes_transferred"); }
  std::uint64_t TotalBytes() const { return HbmBytes() + MmBytes(); }
  /// Aggregate consumed bandwidth over both interfaces, bytes per CPU cycle.
  double AggregateBandwidth() const {
    return exec_cycles == 0
               ? 0.0
               : static_cast<double>(TotalBytes()) /
                     static_cast<double>(exec_cycles);
  }
};

class System : private MemoryPort {
 public:
  System(const HierarchyConfig& hierarchy_cfg, const CoreParams& core_params,
         std::unique_ptr<MemController> controller,
         std::unique_ptr<TraceSource> trace, std::uint64_t seed = 1);

  /// Observe every request entering the memory system (Fig. 3 profiling).
  using RequestObserver = std::function<void(Addr addr, bool is_writeback)>;
  void SetRequestObserver(RequestObserver obs) { observer_ = std::move(obs); }

  /// Attach an epoch sampler (owned by the caller; must outlive Run). When
  /// attached, the run loop snapshots stats + telemetry gauges every
  /// sampler-epoch; detached (default) the loop does no telemetry work.
  void SetTelemetry(obs::EpochSampler* sampler) { telemetry_ = sampler; }

  /// Attach per-tenant QoS accounting for a multi-tenant mix. The System
  /// takes ownership and shares the instance with every core and the
  /// controller; Run() then exports "tenant<N>.*" counters alongside the
  /// usual stats. Never attached for single-tenant runs, whose stats stay
  /// byte-identical.
  void SetTenantAccounting(std::unique_ptr<tenant::TenantAccounting> acct);
  tenant::TenantAccounting* tenant_accounting() { return tenant_acct_.get(); }

  /// Run to completion (or `max_cycles`). May be called once.
  RunResult Run(Cycle max_cycles = ~Cycle{0});

  const MemController& controller() const { return *controller_; }
  MemController& controller() { return *controller_; }
  const CacheHierarchy& hierarchy() const { return hierarchy_; }
  /// The trace feeding the cores (serve mode reaches through this to
  /// install its stop flag on the underlying StreamTraceSource).
  TraceSource& trace() { return *trace_; }

 private:
  bool TrySubmitRead(Addr addr, std::uint64_t tag, Cycle now) override;
  void SubmitWriteback(Addr addr, Cycle now) override;

  void ExportCoreStats(StatSet& stats) const;
  /// One cumulative snapshot for the epoch sampler (stats + gauges).
  StatSet TelemetrySnapshot(Cycle now) const;

  CacheHierarchy hierarchy_;
  std::unique_ptr<MemController> controller_;
  std::unique_ptr<TraceSource> trace_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::deque<Addr> wb_queue_;
  RequestObserver observer_;
  obs::EpochSampler* telemetry_ = nullptr;
  std::unique_ptr<tenant::TenantAccounting> tenant_acct_;
  /// Set by TrySubmitRead / the writeback drain: the controller's stored
  /// wake predates the new input, so it must be ticked at the next visit
  /// and the pacing hint recomputed fresh.
  bool input_submitted_ = false;
  std::uint64_t ticks_executed_ = 0;
  std::uint64_t cycles_skipped_ = 0;
  /// Writeback backlog beyond which cores are throttled.
  static constexpr std::size_t kWbThrottle = 256;
};

}  // namespace redcache
