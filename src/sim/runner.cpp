#include "sim/runner.hpp"

#include <cstdlib>

namespace redcache {

double EffectiveScale(double scale) {
  if (const char* env = std::getenv("REDCACHE_REFS_SCALE")) {
    const double s = std::atof(env);
    if (s > 0) return scale * s;
  }
  return scale;
}

std::unique_ptr<System> BuildSystem(const RunSpec& spec) {
  WorkloadBuildParams wp;
  wp.num_cores = spec.preset.hierarchy.num_cores;
  wp.scale = EffectiveScale(spec.scale);
  auto trace = MakeWorkload(spec.workload, wp);
  auto controller = MakeController(spec.arch, spec.preset.mem);
  return std::make_unique<System>(spec.preset.hierarchy, spec.preset.core,
                                  std::move(controller), std::move(trace),
                                  spec.seed);
}

RunResult RunOne(const RunSpec& spec) {
  return BuildSystem(spec)->Run(spec.max_cycles);
}

}  // namespace redcache
