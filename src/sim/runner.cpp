#include "sim/runner.hpp"

#include <cstdlib>

#include "dramcache/policy_registry.hpp"
#include "verify/shadow_checker.hpp"

namespace redcache {

double EffectiveScale(double scale) {
  if (const char* env = std::getenv("REDCACHE_REFS_SCALE")) {
    const double s = std::atof(env);
    if (s > 0) return scale * s;
  }
  return scale;
}

std::string PolicyNameOf(const RunSpec& spec) {
  return spec.policy.empty() ? ToString(spec.arch) : spec.policy;
}

std::unique_ptr<System> BuildSystem(const RunSpec& spec) {
  WorkloadBuildParams wp;
  wp.num_cores = spec.preset.hierarchy.num_cores;
  wp.scale = spec.ignore_env_scale ? spec.scale : EffectiveScale(spec.scale);
  auto trace = MakeWorkload(spec.workload, wp);
  auto controller = MakePolicy(PolicyNameOf(spec), spec.preset.mem);
  if (spec.verify) {
    ShadowChecker::Options opts;
    opts.strict = true;
    controller =
        std::make_unique<ShadowChecker>(std::move(controller), opts);
  }
  return std::make_unique<System>(spec.preset.hierarchy, spec.preset.core,
                                  std::move(controller), std::move(trace),
                                  spec.seed);
}

RunResult RunOne(const RunSpec& spec) {
  auto system = BuildSystem(spec);
  RunResult result = system->Run(spec.max_cycles);
  if (spec.verify && result.completed) {
    if (auto* checker = dynamic_cast<ShadowChecker*>(&system->controller())) {
      checker->CheckDrained();
    }
  }
  return result;
}

}  // namespace redcache
