#include "sim/runner.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "dramcache/policy_registry.hpp"
#include "obs/telemetry_sink.hpp"
#include "sim/checkpoint.hpp"
#include "tenant/accounting.hpp"
#include "tenant/mix_trace.hpp"
#include "tenant/stream_trace.hpp"
#include "verify/shadow_checker.hpp"

namespace redcache {

double EffectiveScale(double scale) {
  if (const char* env = std::getenv("REDCACHE_REFS_SCALE")) {
    const double s = std::atof(env);
    if (s > 0) return scale * s;
  }
  return scale;
}

std::string PolicyNameOf(const RunSpec& spec) {
  return spec.policy.empty() ? ToString(spec.arch) : spec.policy;
}

namespace {

/// One tenant's trace: a Table II label, or the external stream for the
/// reserved "serve" label.
std::unique_ptr<TraceSource> MakeTenantTrace(const RunSpec& spec,
                                             const std::string& label,
                                             const WorkloadBuildParams& wp) {
  if (label == "serve") {
    if (spec.serve_path.empty()) {
      throw std::invalid_argument(
          "mix tenant \"serve\" needs a serve path (--serve)");
    }
    return std::make_unique<tenant::StreamTraceSource>(spec.serve_path);
  }
  return MakeWorkload(label, wp);
}

}  // namespace

std::unique_ptr<System> BuildSystem(const RunSpec& spec) {
  WorkloadBuildParams wp;
  wp.num_cores = spec.preset.hierarchy.num_cores;
  wp.scale = spec.ignore_env_scale ? spec.scale : EffectiveScale(spec.scale);

  std::unique_ptr<TraceSource> trace;
  std::unique_ptr<tenant::TenantAccounting> acct;
  if (spec.mix.active()) {
    // Each tenant replays exactly its solo trace (same cores, scale and
    // generator seed); only the address-space placement differs.
    std::vector<std::unique_ptr<TraceSource>> children;
    std::uint64_t max_footprint = 0;
    for (const tenant::TenantSpec& t : spec.mix.tenants) {
      auto child = MakeTenantTrace(spec, t.workload, wp);
      max_footprint = std::max(max_footprint, child->footprint_bytes());
      children.push_back(std::move(child));
    }
    const auto map = tenant::TenantAddressMap::Plan(
        spec.mix.mode, spec.mix.num_tenants(), max_footprint,
        spec.preset.mem.mainmem.geometry.capacity_bytes, spec.mix.window_bits);
    acct = std::make_unique<tenant::TenantAccounting>(map);
    for (std::uint32_t t = 0; t < spec.mix.num_tenants(); ++t) {
      acct->SetSoloBaseline(t, spec.mix.tenants[t].solo_exec_cycles,
                            spec.mix.tenants[t].solo_refs);
    }
    trace = std::make_unique<tenant::MixTraceSource>(
        std::move(children), spec.mix.tenants, map);
  } else if (!spec.serve_path.empty()) {
    trace = std::make_unique<tenant::StreamTraceSource>(spec.serve_path);
  } else {
    trace = MakeWorkload(spec.workload, wp);
  }

  auto controller = MakePolicy(PolicyNameOf(spec), spec.preset.mem);
  if (spec.verify) {
    ShadowChecker::Options opts;
    opts.strict = true;
    controller =
        std::make_unique<ShadowChecker>(std::move(controller), opts);
  }
  auto system = std::make_unique<System>(spec.preset.hierarchy,
                                         spec.preset.core,
                                         std::move(controller),
                                         std::move(trace), spec.seed);
  if (acct != nullptr) system->SetTenantAccounting(std::move(acct));
  return system;
}

obs::TelemetryMeta TelemetryMetaOf(const RunSpec& spec) {
  obs::TelemetryMeta meta;
  meta.arch = PolicyNameOf(spec);
  meta.workload = spec.mix.active()
                      ? spec.mix.Describe()
                      : (!spec.serve_path.empty() ? "serve:" + spec.serve_path
                                                  : spec.workload);
  meta.preset = spec.preset.name;
  // Canonical registry casing, so records from aliased/lowercased CLI
  // spellings attribute to one policy name.
  const std::string name = PolicyNameOf(spec);
  meta.policy = PolicyRegistry::Instance().Has(name)
                    ? PolicyRegistry::Instance().Get(name).name
                    : name;
  if (spec.mix.active()) meta.mix = spec.mix.Describe();
  return meta;
}

RunResult RunOne(const RunSpec& spec) {
  auto system = BuildSystem(spec);
  // Checkpoint blobs are keyed by the spec's CellKey, so a blob can never
  // restore into a run built from different inputs.
  std::string spec_key;
  if (!spec.checkpoint_path.empty() || !spec.restore_path.empty()) {
    spec_key = ckpt::SpecKeyOf(spec);
  }
  if (!spec.restore_path.empty()) {
    ckpt::RestoreInto(*system, ckpt::LoadFile(spec.restore_path), spec_key);
  }
  std::unique_ptr<obs::TelemetrySession> telemetry;
  obs::TelemetryMeta meta;
  if (!spec.telemetry_path.empty()) {
    telemetry = std::make_unique<obs::TelemetrySession>(
        spec.telemetry_path, spec.epoch, spec.preset.telemetry_epoch_cycles);
    meta = TelemetryMetaOf(spec);
    if (!spec.restore_path.empty()) {
      // Seed the telescoping baseline BEFORE Begin, so the NDJSON header
      // carries restored_at + the pre-restore cumulative counters and the
      // validator's sum(deltas) + baseline == totals check holds whatever
      // epoch settings the resumed run uses.
      const Cycle at = system->resume_cycle();
      telemetry->sampler().SeedBaseline(at, system->CumulativeStats(at));
    }
    system->SetTelemetry(&telemetry->sampler());
    telemetry->Begin(meta);
  }
  if (!spec.checkpoint_path.empty()) {
    System* sys = system.get();
    const std::string path = spec.checkpoint_path;
    system->SetCheckpointHook(
        spec.checkpoint_at, /*every=*/0, [sys, path, spec_key](Cycle now) {
          ckpt::SaveFile(path, ckpt::Capture(*sys, now, spec_key));
        });
  }
  RunResult result = system->Run(spec.max_cycles);
  if (telemetry != nullptr) {
    meta.exec_cycles = result.exec_cycles;
    telemetry->Close(meta);
    result.telemetry_epochs = telemetry->sampler().total_epochs();
  }
  if (spec.verify && result.completed) {
    if (auto* checker = dynamic_cast<ShadowChecker*>(&system->controller())) {
      checker->CheckDrained();
    }
  }
  return result;
}

}  // namespace redcache
