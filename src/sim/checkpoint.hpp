// Versioned whole-simulation checkpoint blobs.
//
// A checkpoint is System::Snapshot wrapped in a self-describing header:
// magic, format version, the producing run's spec key (CellKey over the
// RunSpec — preset fields, policy, workload, scale, seed, mix, cycle cap)
// and the capture cycle. RestoreInto refuses to restore into a System built
// from a different spec, so a stale or mismatched blob fails loudly instead
// of silently diverging.
//
// Producers: System::SetCheckpointHook (the run loop fires the hook at the
// top of an iteration, where every component sits at a cycle boundary) and
// the SMARTS sampler (sim/sampling.hpp), which captures a checkpoint at
// every measurement-interval start during the functional fast-forward pass.
#pragma once

#include <string>

#include "common/serialize.hpp"
#include "common/types.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"

namespace redcache::ckpt {

/// Bump when the blob layout (header or any component's Snapshot encoding)
/// changes; a version mismatch on restore throws instead of misreading.
constexpr std::uint32_t kCheckpointVersion = 1;

struct CheckpointMeta {
  std::uint32_t version = 0;
  std::string spec_key;  ///< CellKey of the producing RunSpec
  Cycle cycle = 0;       ///< capture cycle (the next Run resumes here)
};

/// The compatibility key a spec's checkpoints carry: CellKey over the spec,
/// which covers every result-affecting input (preset fields, policy,
/// workload, effective scale, seed, mix descriptor, cycle cap).
std::string SpecKeyOf(const RunSpec& spec);

/// Serialize `sys` at cycle `now` into a blob keyed by `spec_key`.
std::string Capture(const System& sys, Cycle now, const std::string& spec_key);

/// Parse just the header. Throws ser::SerializeError on anything that is
/// not a well-formed checkpoint of a known version.
CheckpointMeta PeekMeta(const std::string& blob);

/// Restore `sys` (freshly built from the same RunSpec) from `blob`.
/// Verifies the magic, version and spec key before touching `sys`; throws
/// ser::SerializeError on mismatch or corruption.
CheckpointMeta RestoreInto(System& sys, const std::string& blob,
                           const std::string& spec_key);

/// File transport. SaveFile throws std::runtime_error on I/O failure;
/// LoadFile throws on a missing/unreadable path.
void SaveFile(const std::string& path, const std::string& blob);
std::string LoadFile(const std::string& path);

}  // namespace redcache::ckpt
