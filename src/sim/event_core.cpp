#include "sim/event_core.hpp"

#include <cstdlib>

namespace redcache {

bool NoSkipRequested() {
  // REDCACHE_NO_SKIP=1 forces single-cycle stepping: the run loop still
  // computes wakes but advances `now` by one cycle at a time, visiting every
  // cycle the event loop would have skipped. Stats must be identical either
  // way (tests/sim/noskip_differential_test.cpp); the switch exists to prove
  // that and to debug suspected wake-contract violations.
  const char* env = std::getenv("REDCACHE_NO_SKIP");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

}  // namespace redcache
