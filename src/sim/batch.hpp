// Parallel batch execution of simulations.
//
// The evaluation sweeps (Fig. 9/10/11, Table II, the ablations) are
// embarrassingly parallel: every (architecture x workload) cell is an
// independent simulation. RunBatch fans a spec list out over a fixed-size
// worker pool; results land at the index of their spec, so output is
// byte-identical regardless of worker count.
//
// Layered on top:
//  - an in-process memo so shared cells (e.g. the Alloy baseline column
//    every figure normalizes against) simulate once per process even when
//    requested concurrently, and
//  - a disk cache (REDCACHE_CACHE_DIR) whose entries carry a simulator
//    *fingerprint* — a hash over canary micro-simulation outputs — so a
//    stale entry written by a different simulator build or preset can never
//    silently serve wrong numbers; it just misses and re-simulates.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/runner.hpp"
#include "tenant/qos.hpp"

namespace redcache {

/// Host-side profile of one cell's execution through RunCellCached: where
/// the wall-clock went (fingerprint canaries vs. the simulation itself) and
/// which cache layer served the result.
struct CellProfile {
  std::string key;        ///< CellKey (cache filename stem)
  std::string arch;
  std::string workload;
  double wall_seconds = 0.0;         ///< total time inside RunCellCached
  double fingerprint_seconds = 0.0;  ///< canary fingerprint computation
  double sim_seconds = 0.0;          ///< RunOne (0 when served from cache)
  bool memo_hit = false;  ///< served by the in-process memo (shared future)
  bool disk_hit = false;  ///< served by the REDCACHE_CACHE_DIR entry
  std::uint64_t exec_cycles = 0;
  /// Event-loop economics of the run (0 when served from a cache layer,
  /// which stores only the simulation results).
  std::uint64_t ticks_executed = 0;
  std::uint64_t cycles_skipped = 0;
  /// Per-tenant QoS rows derived from the cell's exported tenant<N>.*
  /// counters. Empty for single-tenant cells, so reports stay unchanged
  /// unless a mix (or serve accounting) was actually active.
  std::vector<tenant::TenantQos> tenants;
  /// Where this cell's telemetry series landed and how many epochs it
  /// closed. Set only when the cell actually simulated under
  /// BatchOptions::telemetry_dir — cache hits carry no telemetry.
  std::string telemetry_path;
  std::uint64_t telemetry_epochs = 0;
  /// SMARTS sampled-execution quality (sim/sampling.hpp): set only when
  /// the cell ran sampled, so plain reports serialize byte-identically.
  bool sampled = false;
  std::uint64_t sampling_intervals = 0;
  double sampling_ci_pct = 0.0;  ///< 95% CI half-width, % of the estimate
};

/// Aggregated profile of one RunCells invocation.
struct BatchReport {
  std::string label;
  unsigned jobs = 0;
  double wall_seconds = 0.0;  ///< end-to-end batch wall time
  std::vector<CellProfile> cells;  ///< cells[i] profiles cells[i] of the call
};

/// Serialize a BatchReport as JSON (cells plus summary counts: simulated /
/// memo_hits / disk_hits and summed phase times). False on I/O failure.
bool WriteBatchReportJson(const std::string& path, const BatchReport& report);
std::string BatchReportJson(const BatchReport& report);

struct BatchOptions {
  /// Worker count. 0 resolves REDCACHE_JOBS, then hardware_concurrency.
  unsigned jobs = 0;
  /// Per-run progress/ETA lines on stderr. Also requires REDCACHE_PROGRESS
  /// to not be "0".
  bool progress = true;
  /// Prefix for progress lines.
  std::string label = "batch";
  /// When set, RunCells fills in per-cell profiles and batch totals.
  BatchReport* report = nullptr;
  /// When set, every cell that actually simulates streams its telemetry
  /// series to `<telemetry_dir>/<CellKey>.ndjson` (observability only; the
  /// path and epoch pacing never enter cache keys or fingerprints).
  std::string telemetry_dir;
  /// Epoch pacing for `telemetry_dir` series (fixed or adaptive).
  obs::EpochSpec epoch;
};

/// Resolve a worker count: `requested` if nonzero, else REDCACHE_JOBS,
/// else std::thread::hardware_concurrency (at least 1).
unsigned ResolveJobs(unsigned requested);

/// Run every spec; `results[i]` is the result of `specs[i]` regardless of
/// thread count or completion order. No caching. If a run throws, the pool
/// drains and the first exception is rethrown from the calling thread.
std::vector<RunResult> RunBatch(const std::vector<RunSpec>& specs,
                                const BatchOptions& opts = {});

/// Generic parallel index loop (profiler sweeps, trace batches). Calls
/// fn(0..n-1) at most once each, from up to `jobs` threads (resolved via
/// ResolveJobs); every index runs exactly once unless fn throws, in which
/// case remaining indices are skipped and the first exception is rethrown
/// from the calling thread. fn must be thread-safe across distinct indices.
void ParallelFor(std::size_t n, unsigned jobs,
                 const std::function<void(std::size_t)>& fn);

/// Behavioral fingerprint of (simulator build, preset, workload): a hash
/// over the full stats output of fixed-seed canary micro-simulations run
/// with `preset` on `workload` at a tiny fixed scale (REDCACHE_REFS_SCALE
/// is ignored). Any change to simulator behavior — including one confined
/// to a single workload's trace generator — or to a preset field that
/// affects results changes the fingerprint. Memoized per (preset, workload,
/// policy) in-process. `policy` names the registry policy the caller's cell
/// runs; registry policies outside the fixed canary set (No-HBM, Alloy,
/// Bear, RedCache) get an extra canary of their own so a behavioral change
/// in a plugin policy invalidates that policy's cached cells.
std::uint64_t SimFingerprint(const SimPreset& preset,
                             const std::string& workload,
                             const std::string& policy = "");

/// One evaluation cell: a spec plus a variant tag distinguishing custom
/// preset configurations (e.g. fill granularity) in the cache key.
struct CellSpec {
  RunSpec spec;
  std::string variant;
};

/// Stable cache key for a cell (filename-safe, includes preset name, arch,
/// workload, effective scale, seed, variant and a hash of the preset fields
/// and cycle cap).
std::string CellKey(const CellSpec& cell);

/// Run one cell through the process-wide memo and, when REDCACHE_CACHE_DIR
/// is set, the fingerprinted disk cache. Concurrent requests for the same
/// key share a single simulation. Disk entries store exec_cycles, counters
/// and histograms; energy is derived from counters and recomputed on load.
/// With REDCACHE_CACHE_MAX_MB set, the disk cache is bounded: a hit
/// refreshes the entry's mtime and each store evicts least-recently-used
/// entries until the directory fits. `profile`, when non-null, receives
/// the host-side timing breakdown for this call.
RunResult RunCellCached(const CellSpec& cell);
RunResult RunCellCached(const CellSpec& cell, CellProfile* profile);

/// Delete least-recently-used "*.stats" entries in `dir` (by mtime) until
/// their total size is <= max_bytes. No-op when already within bound.
/// Exposed for tests; RunCellCached calls it after each store.
void EnforceDiskCacheBound(const std::string& dir, std::uint64_t max_bytes);

/// On-disk cache entry format version; feeds SimFingerprint so bumping it
/// invalidates every existing entry.
/// v2: per-workload canaries, histogram serialization, seed/max_cycles in key.
/// v3: binary via the common serializer (ser::Writer/Reader); the hand-rolled
///     text histogram format is retired and stats use StatSet::Snapshot.
constexpr std::uint64_t kCacheFormatVersion = 3;

/// RunBatch over cells with memo + disk cache; duplicate keys (shared
/// baselines) simulate once. `results[i]` corresponds to `cells[i]`.
std::vector<RunResult> RunCells(const std::vector<CellSpec>& cells,
                                const BatchOptions& opts = {});

}  // namespace redcache
