// SMARTS-style sampled simulation (Wunderlich et al., ISCA'03 adapted to
// this simulator's checkpoint machinery).
//
// Instead of simulating every cycle in detail, a run is split into fixed
// strides and exactly one measurement interval per stride is simulated with
// full DRAM timing; the rest fast-forwards under a fixed functional memory
// latency. Two passes:
//
//  1. Functional pass: one System runs the whole workload with
//     SetFunctionalTiming(latency) — every memory access completes in a
//     fixed latency, no channel/bank modeling — while a recurring
//     checkpoint hook captures candidate full-state blobs every
//     `interval_cycles`, thinning itself (drop every other blob, double
//     the capture stride) whenever the candidate list hits its memory
//     bound. The functional timeline's length is only known after the
//     pass, so the measurement set is a seed-phased systematic
//     subselection of the candidates sized to `fraction`. This pass also
//     yields the exact total reference count (the trace replays fully).
//
//  2. Parallel detailed replay: each checkpoint restores into a fresh
//     System (batch worker pool, ParallelFor) and runs `interval_cycles`
//     with full timing. The restored DramSystem starts in detailed mode;
//     in-flight functional completions drain at their fixed latency as a
//     short warming transient at the interval head.
//
// Estimation is per-interval IPC-style: each interval yields a rate
// r_i = delta_refs / span. The run-length estimate is the ratio estimator
// est_exec = total_refs / mean(r), with a Student-t 95% confidence
// interval over the per-interval rates (ci_pct = 100 * half-width / mean).
// Counter totals are ratio-scaled: est_X = sum(delta_X) * total_refs /
// sum(delta_refs). The CI is surfaced as gauge.sampling.ci_pct in the
// estimated stats, in the batch report, and by the CLI.
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/runner.hpp"

namespace redcache {

struct SamplingOptions {
  /// Fraction of simulated time measured in detail, in (0, 1]. The stride
  /// between measurement-interval starts is interval_cycles / fraction.
  double fraction = 0.10;
  /// Length of each detailed measurement interval, in cycles.
  Cycle interval_cycles = 200000;
  /// Fixed memory latency (cycles) for the functional fast-forward pass.
  Cycle functional_latency = 40;
  /// Detailed-replay worker count (0 = REDCACHE_JOBS / hardware).
  unsigned jobs = 0;
};

struct SamplingEstimate {
  /// Measurement intervals actually replayed (n of the CI).
  std::uint64_t intervals = 0;
  /// Exact total references, from the functional pass (not an estimate).
  std::uint64_t total_refs = 0;
  /// Ratio estimate of the detailed run length and its 95% CI.
  double est_exec_cycles = 0.0;
  double ci_half_cycles = 0.0;
  double ci_pct = 0.0;  ///< 100 * half-width / mean of the rate estimate
  /// Ratio-scaled counter estimates plus sys.exec_cycles (rounded
  /// est_exec_cycles), gauge.sampling.ci_pct and gauge.sampling.intervals.
  StatSet est_stats;
  /// Wall-clock split, for speedup reporting.
  double functional_seconds = 0.0;
  double replay_seconds = 0.0;
  /// True when sampling degenerated to one full detailed run (the run was
  /// too short to place any measurement interval).
  bool degenerate = false;
};

/// Two-sided 95% Student-t critical value for `df` degrees of freedom
/// (exact to three decimals for df <= 30, 1.96 beyond).
double TCritical95(std::uint64_t df);

/// Run `spec` sampled. Throws std::invalid_argument on a bad fraction or
/// interval, and propagates any simulation/serialization error.
SamplingEstimate RunSampled(const RunSpec& spec, const SamplingOptions& opts);

}  // namespace redcache
