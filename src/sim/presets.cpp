#include "sim/presets.hpp"

namespace redcache {

SimPreset EvalPreset() {
  SimPreset p;
  p.name = "eval";
  p.hierarchy.num_cores = 16;
  p.hierarchy.l1 = {.name = "l1", .size_bytes = 32_KiB, .ways = 4,
                    .latency = 4};
  p.hierarchy.l2 = {.name = "l2", .size_bytes = 64_KiB, .ways = 8,
                    .latency = 12};
  p.hierarchy.l3 = {.name = "l3", .size_bytes = 1_MiB, .ways = 8,
                    .latency = 38};
  p.mem.hbm = HbmCacheConfig(4_MiB);
  p.mem.mainmem = MainMemoryConfig(256_MiB);
  // Data-intensive parallel kernels expose little instruction-level slack
  // around their misses; roughly half the L3 misses gate further progress.
  p.core.dependent_fraction = 0.45;
  return p;
}

SimPreset PaperPreset() {
  SimPreset p;
  p.name = "paper";
  p.hierarchy.num_cores = 16;
  p.hierarchy.l1 = {.name = "l1", .size_bytes = 64_KiB, .ways = 4,
                    .latency = 4};
  p.hierarchy.l2 = {.name = "l2", .size_bytes = 128_KiB, .ways = 8,
                    .latency = 12};
  p.hierarchy.l3 = {.name = "l3", .size_bytes = 8_MiB, .ways = 8,
                    .latency = 38};
  p.mem.hbm = HbmCacheConfig(2_GiB);
  p.mem.mainmem = MainMemoryConfig(32_GiB);
  return p;
}

}  // namespace redcache
