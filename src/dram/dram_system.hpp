// Multi-channel DRAM device facade.
//
// Owners (cache controllers / the NoHBM path) enqueue block transactions,
// tick the system every CPU cycle, and drain completions. Channel selection
// comes from the address mapper; per-channel FR-FCFS scheduling, timing and
// refresh live in DramChannel.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "dram/address.hpp"
#include "dram/channel.hpp"
#include "dram/request.hpp"
#include "dram/timing.hpp"
#include "sim/event_core.hpp"

namespace redcache {

class DramSystem {
 public:
  explicit DramSystem(const DramConfig& cfg);

  const DramConfig& config() const { return cfg_; }

  /// Which channel would serve this address.
  std::uint32_t ChannelOf(Addr addr) const { return mapper_.Map(addr).channel; }

  bool CanAccept(Addr addr) const {
    return functional_latency_ != 0 || channels_[ChannelOf(addr)]->CanAccept();
  }
  bool ChannelCanAccept(std::uint32_t channel) const {
    return functional_latency_ != 0 || channels_[channel]->CanAccept();
  }

  /// Enqueue a transaction; returns its request id. The caller must have
  /// checked CanAccept. `bursts` > 1 models coarse-grained transfers;
  /// `tenant` tags the request for per-tenant accounting (0 = solo).
  RequestId Enqueue(Addr addr, bool is_write, Cycle now,
                    std::uint64_t user_tag = 0, std::uint32_t bursts = 1,
                    std::uint16_t tenant = 0);

  void Tick(Cycle now);

  /// Completions accumulated since the last Drain call.
  std::vector<DramCompletion>& completions() { return completions_; }

  /// True if the rank serving `addr` is mid-refresh (bypass-on-refresh).
  bool Refreshing(Addr addr, Cycle now) const;

  bool TransactionQueuesEmpty() const;
  bool ChannelQueueEmpty(std::uint32_t channel) const {
    return channels_[channel]->QueueEmpty();
  }
  /// True when the channel's transaction queue has no requests (in-flight
  /// data that already left the queue does not count) — the RCU manager's
  /// "transaction queue becomes empty" drain condition.
  bool ChannelTransactionQueueEmpty(std::uint32_t channel) const {
    return channels_[channel]->QueueSize() == 0;
  }

  /// Observe every column command on every channel (RCU manager hook).
  void SetObserver(ColumnCommandObserver* obs);

  std::uint32_t num_channels() const {
    return static_cast<std::uint32_t>(channels_.size());
  }

  const ChannelCounters& channel_counters(std::uint32_t c) const {
    return channels_[c]->counters();
  }

  /// Sum of all channels' counters.
  ChannelCounters TotalCounters() const;

  /// Export counters into `stats` under "<name>." prefix.
  void ExportStats(StatSet& stats) const;

  /// Fast-forward hint: earliest cycle any channel could act.
  Cycle NextEventHint(Cycle now) const;

  const AddressMapper& mapper() const { return mapper_; }

  std::uint64_t inflight() const { return inflight_; }

  /// Functional ("fast-forward") timing for the SMARTS sampler: every
  /// transaction completes exactly `fixed_latency` cycles after Enqueue,
  /// bypassing the channel schedulers entirely — queues never fill, refresh
  /// never blocks. 0 restores detailed timing. Policy/tag state stays warm
  /// because the owning controller still sees every access; only the device
  /// timing is approximated, and the FF pass's timing stats are discarded.
  void SetFunctionalTiming(Cycle fixed_latency) {
    functional_latency_ = fixed_latency;
  }
  bool functional_timing() const { return functional_latency_ != 0; }

  /// Checkpointing: request-id counter, in-flight bookkeeping, any pending
  /// functional-mode completions and every channel. The per-channel wake
  /// list is reset to "all due" on restore — a spurious channel visit is a
  /// provable no-op (DESIGN.md §10) that immediately re-derives the exact
  /// wake from the restored channel state.
  void Snapshot(ser::Writer& w) const;
  void Restore(ser::Reader& r);

 private:
  DramConfig cfg_;
  AddressMapper mapper_;
  std::vector<std::unique_ptr<DramChannel>> channels_;
  std::vector<DramCompletion> completions_;
  RequestId next_id_ = 1;
  std::uint64_t inflight_ = 0;
  /// Functional-mode state: fixed completion latency (0 = detailed) and the
  /// not-yet-delivered fixed-latency completions, earliest-done memo first.
  /// A checkpoint taken mid-fast-forward restores these into detailed mode
  /// as a transient boundary effect (the requests complete at their fixed
  /// times, then the detailed scheduler takes over).
  Cycle functional_latency_ = 0;
  std::vector<DramCompletion> func_pending_;
  Cycle func_min_ = ~Cycle{0};
  /// Per-channel wake cycles (event core): Tick visits only channels whose
  /// wake is due, and NextEventHint is the stored minimum. A channel's wake
  /// is refreshed from its NextEventHint after every real tick and on
  /// Enqueue; between those, channel state cannot change, so the stored
  /// hint stays exact.
  WakeList wakes_;
};

}  // namespace redcache
