// Structure-of-arrays DRAM timing state for one channel.
//
// Replaces the per-object BankState/RankState records (and the
// stamp-invalidated ready memo that papered over their pointer-chasing
// cost): every quantity the FR-FCFS scan reads is a flat per-bank or
// per-rank `Cycle` lane, and every ready query is a short max-chain over
// those lanes — no memoization, no invalidation protocol. Lanes are
// *eagerly* maintained: each Record* mutation folds the DRAMSim-style
// "earliest issue time" bookkeeping into the lanes it affects, so queries
// stay pure loads + min/max (cmov-friendly, no branches on device state).
//
// Lane map (DESIGN.md §12):
//   per bank:  open_row, act_gate (tRC/tRP/tRFC), col_gate (tRCD),
//              pre_gate (tRAS/tWR/tRTP), rank_of
//   per rank:  rank_act_gate = max(tRRD gate, tFAW gate, refresh end),
//              refresh_until, next_refresh, four-activate window
//   shared:    col_shared[dir]  = max(tCCD gate, turnaround gate, bus drain)
//              cont_shared[dir] = the same without the tCCD term
//                                 (burst continuation of one transaction)
//
// The refresh clamp of the old ComputeXxxReady ("if the rank is refreshing
// at `ready`, push to refresh end") is exactly max(ready, refresh_until):
// refresh_until is in the future only while a refresh is in flight, and a
// stale value from a finished refresh can never exceed a legal ready cycle
// it already bounded. That identity is what lets every query be branchless.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/serialize.hpp"
#include "common/types.hpp"
#include "dram/timing.hpp"

namespace redcache {

class TimingLanes {
 public:
  static constexpr std::uint64_t kNoRow = ~std::uint64_t{0};

  void Init(const DramTimingParams& t, std::uint32_t ranks,
            std::uint32_t banks_per_rank) {
    t_ = &t;
    banks_per_rank_ = banks_per_rank;
    const std::size_t banks = std::size_t{ranks} * banks_per_rank;
    open_row_.assign(banks, kNoRow);
    act_gate_.assign(banks, 0);
    col_gate_.assign(banks, 0);
    pre_gate_.assign(banks, 0);
    rank_of_.resize(banks);
    for (std::size_t b = 0; b < banks; ++b) {
      rank_of_[b] = static_cast<std::uint32_t>(b / banks_per_rank);
    }
    rank_act_gate_.assign(ranks, 0);
    rrd_gate_.assign(ranks, 0);
    act_window_.assign(std::size_t{ranks} * 4, 0);
    refresh_until_.assign(ranks, 0);
    next_refresh_.resize(ranks);
    for (std::uint32_t r = 0; r < ranks; ++r) {
      // Stagger refresh across ranks so they do not all block simultaneously.
      next_refresh_[r] = t.tREFI / 2 + r * (t.tREFI / 8);
    }
    col_shared_[0] = col_shared_[1] = 0;
    cont_shared_[0] = cont_shared_[1] = 0;
    next_column_cmd_ = next_read_cmd_ = next_write_cmd_ = data_bus_free_ = 0;
  }

  std::uint32_t num_banks() const {
    return static_cast<std::uint32_t>(open_row_.size());
  }
  std::uint32_t num_ranks() const {
    return static_cast<std::uint32_t>(refresh_until_.size());
  }
  std::uint32_t rank_of(std::uint32_t bank) const { return rank_of_[bank]; }

  std::uint64_t OpenRow(std::uint32_t bank) const { return open_row_[bank]; }
  bool RowOpen(std::uint32_t bank) const { return open_row_[bank] != kNoRow; }

  /// Raw (unaligned, unclamped) bank terms — refresh duty bookkeeping in
  /// the channel compares these against `now` exactly as the old per-object
  /// next_precharge/next_activate fields were compared.
  Cycle RawPrechargeGate(std::uint32_t bank) const { return pre_gate_[bank]; }
  Cycle RawActivateGate(std::uint32_t bank) const { return act_gate_[bank]; }
  Cycle RawColumnGate(std::uint32_t bank) const { return col_gate_[bank]; }

  /// Rank-level terms of the ready queries, exposed raw so the channel's
  /// per-bank summary can hoist them out of its per-bank loop (they are
  /// bank-invariant within a rank/scan).
  Cycle RankActivateGate(std::uint32_t rank) const {
    return rank_act_gate_[rank];
  }
  Cycle SharedColumnGate(bool is_write) const { return col_shared_[is_write]; }

  // ---- Ready queries: pure max-chains over the lanes. ----

  Cycle ActivateReady(std::uint32_t bank) const {
    // refresh_until is already folded into rank_act_gate (StartRefresh).
    return AlignUp(std::max(act_gate_[bank], rank_act_gate_[rank_of_[bank]]));
  }

  Cycle PrechargeReady(std::uint32_t bank) const {
    return AlignUp(std::max(pre_gate_[bank], refresh_until_[rank_of_[bank]]));
  }

  Cycle ColumnReady(std::uint32_t bank, bool is_write) const {
    return AlignUp(std::max({col_gate_[bank], col_shared_[is_write],
                             refresh_until_[rank_of_[bank]]}));
  }

  /// Follow-up burst of the transaction that issued the previous column
  /// command: streams at data-bus rate, not gated by tCCD.
  Cycle ContinuationReady(std::uint32_t bank, bool is_write) const {
    return AlignUp(std::max({col_gate_[bank], cont_shared_[is_write],
                             refresh_until_[rank_of_[bank]]}));
  }

  // ---- Mutations: fold the issued command into the affected lanes. ----

  void RecordActivate(std::uint32_t bank, std::uint64_t row, Cycle now) {
    open_row_[bank] = row;
    col_gate_[bank] = now + t_->tRCD;
    pre_gate_[bank] = std::max(pre_gate_[bank], now + t_->tRAS);
    act_gate_[bank] = now + t_->tRC;
    const std::uint32_t r = rank_of_[bank];
    rrd_gate_[r] = now + t_->tRRD;
    // Slide the four-activate window (timestamps biased by +1 so an
    // activate at cycle 0 is distinguishable from an empty slot).
    Cycle* w = &act_window_[std::size_t{r} * 4];
    w[3] = w[2];
    w[2] = w[1];
    w[1] = w[0];
    w[0] = now + 1;
    const Cycle faw = w[3] != 0 ? (w[3] - 1) + t_->tFAW : 0;
    rank_act_gate_[r] = std::max({rrd_gate_[r], faw, refresh_until_[r]});
  }

  void RecordColumn(std::uint32_t bank, bool is_write, Cycle now) {
    const Cycle lat = is_write ? t_->tCWD : t_->tCAS;
    const Cycle data_end = now + lat + t_->tBL;
    data_bus_free_ = data_end;
    next_column_cmd_ = now + t_->tCCD;
    if (is_write) {
      next_read_cmd_ = std::max(next_read_cmd_, data_end + t_->tWTR);
      pre_gate_[bank] = std::max(pre_gate_[bank], data_end + t_->tWR);
    } else {
      // A later write burst must wait for the bus to reverse after our data.
      const Cycle wr_ok = data_end + t_->tRTW_bubble > t_->tCWD
                              ? data_end + t_->tRTW_bubble - t_->tCWD
                              : Cycle{0};
      next_write_cmd_ = std::max(next_write_cmd_, wr_ok);
      pre_gate_[bank] = std::max(pre_gate_[bank], now + t_->tRTP);
    }
    RebuildSharedGates();
  }

  void RecordPrecharge(std::uint32_t bank, Cycle now) {
    open_row_[bank] = kNoRow;
    act_gate_[bank] = std::max(act_gate_[bank], now + t_->tRP);
  }

  // ---- Refresh duty. ----

  bool Refreshing(std::uint32_t rank, Cycle now) const {
    return now < refresh_until_[rank];
  }
  bool RefreshDue(std::uint32_t rank, Cycle now) const {
    return now >= next_refresh_[rank];
  }
  Cycle refresh_until(std::uint32_t rank) const { return refresh_until_[rank]; }
  Cycle next_refresh(std::uint32_t rank) const { return next_refresh_[rank]; }

  void StartRefresh(std::uint32_t rank, Cycle now) {
    refresh_until_[rank] = now + t_->tRFC;
    next_refresh_[rank] += t_->tREFI;
    if (next_refresh_[rank] <= now) next_refresh_[rank] = now + t_->tREFI;
    Cycle* act = &act_gate_[std::size_t{rank} * banks_per_rank_];
    for (std::uint32_t b = 0; b < banks_per_rank_; ++b) {
      act[b] = std::max(act[b], now + t_->tRFC);
    }
    rank_act_gate_[rank] = std::max(rank_act_gate_[rank], refresh_until_[rank]);
  }

  /// Round `t` up to the next DRAM command-slot boundary.
  static constexpr Cycle AlignUp(Cycle t) {
    const Cycle rem = t % kCpuCyclesPerDramCycle;
    return rem == 0 ? t : t + (kCpuCyclesPerDramCycle - rem);
  }

  /// Checkpointing: every lane. Geometry and the timing table pointer are
  /// configuration (Init runs before Restore on a freshly built channel).
  void Snapshot(ser::Writer& w) const {
    w.Section("lanes");
    w.U64Seq(open_row_);
    w.U64Seq(act_gate_);
    w.U64Seq(col_gate_);
    w.U64Seq(pre_gate_);
    w.U64Seq(rank_act_gate_);
    w.U64Seq(rrd_gate_);
    w.U64Seq(act_window_);
    w.U64Seq(refresh_until_);
    w.U64Seq(next_refresh_);
    for (const Cycle c : col_shared_) w.U64(c);
    for (const Cycle c : cont_shared_) w.U64(c);
    w.U64(next_column_cmd_);
    w.U64(next_read_cmd_);
    w.U64(next_write_cmd_);
    w.U64(data_bus_free_);
  }
  void Restore(ser::Reader& r) {
    r.Section("lanes");
    RestoreLane(r, open_row_);
    RestoreLane(r, act_gate_);
    RestoreLane(r, col_gate_);
    RestoreLane(r, pre_gate_);
    RestoreLane(r, rank_act_gate_);
    RestoreLane(r, rrd_gate_);
    RestoreLane(r, act_window_);
    RestoreLane(r, refresh_until_);
    RestoreLane(r, next_refresh_);
    for (Cycle& c : col_shared_) c = r.U64();
    for (Cycle& c : cont_shared_) c = r.U64();
    next_column_cmd_ = r.U64();
    next_read_cmd_ = r.U64();
    next_write_cmd_ = r.U64();
    data_bus_free_ = r.U64();
  }

 private:
  static void RestoreLane(ser::Reader& r, std::vector<Cycle>& lane) {
    if (r.SeqLen(8) != lane.size()) {
      throw ser::SerializeError("DRAM lane size mismatch (geometry changed)");
    }
    for (Cycle& c : lane) c = r.U64();
  }

  void RebuildSharedGates() {
    const Cycle rd_bus =
        data_bus_free_ > t_->tCAS ? data_bus_free_ - t_->tCAS : 0;
    const Cycle wr_bus =
        data_bus_free_ > t_->tCWD ? data_bus_free_ - t_->tCWD : 0;
    cont_shared_[0] = std::max(next_read_cmd_, rd_bus);
    cont_shared_[1] = std::max(next_write_cmd_, wr_bus);
    col_shared_[0] = std::max(next_column_cmd_, cont_shared_[0]);
    col_shared_[1] = std::max(next_column_cmd_, cont_shared_[1]);
  }

  const DramTimingParams* t_ = nullptr;
  std::uint32_t banks_per_rank_ = 0;

  // Per-bank lanes.
  std::vector<std::uint64_t> open_row_;
  std::vector<Cycle> act_gate_;  ///< activate: tRC / tRP / tRFC bank term
  std::vector<Cycle> col_gate_;  ///< column: tRCD bank term
  std::vector<Cycle> pre_gate_;  ///< precharge: tRAS / tWR / tRTP bank term
  std::vector<std::uint32_t> rank_of_;

  // Per-rank lanes.
  std::vector<Cycle> rank_act_gate_;  ///< max(tRRD, tFAW, refresh end)
  std::vector<Cycle> rrd_gate_;
  std::vector<Cycle> act_window_;  ///< 4 per rank, newest first, 0 == unused
  std::vector<Cycle> refresh_until_;
  std::vector<Cycle> next_refresh_;

  // Channel-shared column/data-bus gates, indexed by is_write.
  Cycle col_shared_[2];
  Cycle cont_shared_[2];
  Cycle next_column_cmd_ = 0;  ///< tCCD spacing between column commands
  Cycle next_read_cmd_ = 0;    ///< write->read turnaround (tWTR)
  Cycle next_write_cmd_ = 0;   ///< read->write turnaround (bus reversal)
  Cycle data_bus_free_ = 0;
};

}  // namespace redcache
