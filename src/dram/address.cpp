#include "dram/address.hpp"

namespace redcache {

AddressMapper::AddressMapper(const DramGeometry& geo)
    : channels_(geo.channels),
      ranks_(geo.ranks_per_channel),
      banks_(geo.banks_per_rank),
      blocks_per_row_(geo.BlocksPerRow()),
      rows_(geo.RowsPerBank()) {}

DramAddress AddressMapper::Map(Addr byte_addr) const {
  std::uint64_t block = BlockIndex(byte_addr);
  DramAddress out;
  out.channel = static_cast<std::uint32_t>(block % channels_);
  block /= channels_;
  out.column = static_cast<std::uint32_t>(block % blocks_per_row_);
  block /= blocks_per_row_;
  out.bank = static_cast<std::uint32_t>(block % banks_);
  block /= banks_;
  out.rank = static_cast<std::uint32_t>(block % ranks_);
  block /= ranks_;
  out.row = block % rows_;
  return out;
}

}  // namespace redcache
