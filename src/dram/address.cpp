#include "dram/address.hpp"

namespace redcache {

namespace {
bool IsPow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::uint32_t Log2(std::uint64_t v) {
  std::uint32_t s = 0;
  while ((std::uint64_t{1} << s) < v) ++s;
  return s;
}
}  // namespace

AddressMapper::AddressMapper(const DramGeometry& geo)
    : channels_(geo.channels),
      ranks_(geo.ranks_per_channel),
      banks_(geo.banks_per_rank),
      blocks_per_row_(geo.BlocksPerRow()),
      rows_(geo.RowsPerBank()) {
  all_pow2_ = IsPow2(channels_) && IsPow2(blocks_per_row_) &&
              IsPow2(banks_) && IsPow2(ranks_) && IsPow2(rows_);
  if (all_pow2_) {
    channel_shift_ = Log2(channels_);
    column_shift_ = Log2(blocks_per_row_);
    bank_shift_ = Log2(banks_);
    rank_shift_ = Log2(ranks_);
  }
}

DramAddress AddressMapper::Map(Addr byte_addr) const {
  std::uint64_t block = BlockIndex(byte_addr);
  DramAddress out;
  if (all_pow2_) {
    out.channel = static_cast<std::uint32_t>(block & (channels_ - 1));
    block >>= channel_shift_;
    out.column = static_cast<std::uint32_t>(block & (blocks_per_row_ - 1));
    block >>= column_shift_;
    out.bank = static_cast<std::uint32_t>(block & (banks_ - 1));
    block >>= bank_shift_;
    out.rank = static_cast<std::uint32_t>(block & (ranks_ - 1));
    block >>= rank_shift_;
    out.row = block & (rows_ - 1);
    return out;
  }
  out.channel = static_cast<std::uint32_t>(block % channels_);
  block /= channels_;
  out.column = static_cast<std::uint32_t>(block % blocks_per_row_);
  block /= blocks_per_row_;
  out.bank = static_cast<std::uint32_t>(block % banks_);
  block /= banks_;
  out.rank = static_cast<std::uint32_t>(block % ranks_);
  block /= ranks_;
  out.row = block % rows_;
  return out;
}

}  // namespace redcache
