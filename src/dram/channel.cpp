#include "dram/channel.hpp"

#include <algorithm>
#include <cassert>

#include "obs/trace_macros.hpp"

namespace redcache {

namespace {
constexpr Cycle AlignUp(Cycle t) { return TimingLanes::AlignUp(t); }
}  // namespace

DramChannel::DramChannel(const DramConfig& cfg, std::uint32_t channel_index)
    : cfg_(cfg),
      channel_index_(static_cast<std::uint16_t>(channel_index)),
      trace_device_(cfg.name == "hbm" ? obs::kTraceDeviceHbm
                                      : obs::kTraceDeviceMainMem) {
  lanes_.Init(cfg_.timing, cfg_.geometry.ranks_per_channel,
              cfg_.geometry.banks_per_rank);
  const std::uint32_t depth = cfg_.controller.queue_depth;
  slots_.resize(depth);
  free_slots_.reserve(depth);
  for (std::uint32_t s = depth; s-- > 0;) {
    free_slots_.push_back(static_cast<std::int32_t>(s));
  }
  q_bank_.reserve(depth);
  q_rank_.reserve(depth);
  q_row_.reserve(depth);
  q_write_.reserve(depth);
  q_arrival_.reserve(depth);
  q_slot_.reserve(depth);
  row_demand_.resize(lanes_.num_banks());
  demand_count_.assign(lanes_.num_banks(), 0);
  open_reads_.assign(lanes_.num_banks(), 0);
  open_writes_.assign(lanes_.num_banks(), 0);
  bank_due_.assign(lanes_.num_banks(), 0);
  bank_summary_.assign(lanes_.num_banks(), 0);  // selector 0: no demand
  active_banks_.reserve(lanes_.num_banks());
  active_pos_.assign(lanes_.num_banks(), -1);
  rank_lut_base_.resize(lanes_.num_banks());
  for (std::uint32_t b = 0; b < lanes_.num_banks(); ++b) {
    rank_lut_base_[b] = lanes_.rank_of(b) * 8;
  }
  summary_lut_.assign(std::size_t{lanes_.num_ranks()} * 8, 0);
}

void DramChannel::Enqueue(const DramRequest& req) {
  assert(CanAccept());
  const std::int32_t s = free_slots_.back();
  free_slots_.pop_back();
  Pending& p = slots_[static_cast<std::size_t>(s)];
  p.req = req;
  p.bursts_left = std::max<std::uint32_t>(1, req.bursts);
  p.first_command_issued = false;
  const std::uint32_t bank_idx =
      req.loc.rank * cfg_.geometry.banks_per_rank + req.loc.bank;
  q_bank_.push_back(bank_idx);
  q_rank_.push_back(req.loc.rank);
  q_row_.push_back(req.loc.row);
  q_write_.push_back(req.is_write ? 1 : 0);
  q_arrival_.push_back(req.arrival);
  q_slot_.push_back(s);
  AddRowDemand(bank_idx, req.loc.row, req.is_write);
  RefreshBankSummary(bank_idx);
  if (req.is_write) write_count_++;
  counters_.transactions++;
  // Incremental wake maintenance: instead of forcing a full rescan on the
  // next slot, lower the sleep target only as far as the new arrival
  // requires. Readiness depends solely on the timing lanes, so nothing
  // already queued got closer, and added row demand can only *block* a
  // precharge, never enable earlier work. The one time-driven (rather than
  // issue- or arrival-driven) scan decision is anti-starvation, so also cap
  // the sleep at the head's starvation boundary; once a scan runs starved,
  // it folds the head's ready cycle into the sleep target itself.
  Cycle ready_new = kNever;
  RequiredAction(q_slot_.size() - 1, ready_new);
  const Cycle starved_at =
      q_arrival_[0] + cfg_.controller.starvation_cycles + 1;
  sleep_until_ = std::min({sleep_until_, ready_new, starved_at});
}

void DramChannel::RemoveFromQueue(std::size_t i) {
  SubRowDemand(q_bank_[i], q_row_[i], q_write_[i] != 0);
  free_slots_.push_back(q_slot_[i]);
  q_bank_.erase(q_bank_.begin() + static_cast<std::ptrdiff_t>(i));
  q_rank_.erase(q_rank_.begin() + static_cast<std::ptrdiff_t>(i));
  q_row_.erase(q_row_.begin() + static_cast<std::ptrdiff_t>(i));
  q_write_.erase(q_write_.begin() + static_cast<std::ptrdiff_t>(i));
  q_arrival_.erase(q_arrival_.begin() + static_cast<std::ptrdiff_t>(i));
  q_slot_.erase(q_slot_.begin() + static_cast<std::ptrdiff_t>(i));
}

void DramChannel::AddRowDemand(std::uint32_t bank_idx, std::uint64_t row,
                               bool is_write) {
  if (demand_count_[bank_idx]++ == 0) {
    active_pos_[bank_idx] = static_cast<std::int32_t>(active_banks_.size());
    active_banks_.push_back(bank_idx);
  }
  if (row == lanes_.OpenRow(bank_idx)) {
    (is_write ? open_writes_ : open_reads_)[bank_idx]++;
  }
  auto& rows = row_demand_[bank_idx];
  for (RowDemand& d : rows) {
    if (d.row == row) {
      (is_write ? d.writes : d.reads)++;
      return;
    }
  }
  rows.push_back({row, is_write ? 0u : 1u, is_write ? 1u : 0u});
}

void DramChannel::SubRowDemand(std::uint32_t bank_idx, std::uint64_t row,
                               bool is_write) {
  if (--demand_count_[bank_idx] == 0) {
    const std::int32_t pos = active_pos_[bank_idx];
    const std::uint32_t moved = active_banks_.back();
    active_banks_[static_cast<std::size_t>(pos)] = moved;
    active_pos_[moved] = pos;
    active_banks_.pop_back();
    active_pos_[bank_idx] = -1;
  }
  if (row == lanes_.OpenRow(bank_idx)) {
    (is_write ? open_writes_ : open_reads_)[bank_idx]--;
  }
  auto& rows = row_demand_[bank_idx];
  for (RowDemand& d : rows) {
    if (d.row == row) {
      (is_write ? d.writes : d.reads)--;
      if (d.reads + d.writes == 0) {
        d = rows.back();
        rows.pop_back();
      }
      return;
    }
  }
  assert(false && "row demand underflow");
}

const DramChannel::RowDemand* DramChannel::FindDemand(
    std::uint32_t bank_idx, std::uint64_t row) const {
  for (const RowDemand& d : row_demand_[bank_idx]) {
    if (d.row == row) return &d;
  }
  return nullptr;
}

DramChannel::Action DramChannel::RequiredAction(std::size_t i,
                                                Cycle& ready_at) const {
  const std::uint32_t b = q_bank_[i];
  const std::uint64_t open = lanes_.OpenRow(b);
  if (open == TimingLanes::kNoRow) {
    ready_at = lanes_.ActivateReady(b);
    return Action::kActivate;
  }
  if (open != q_row_[i]) {
    ready_at = lanes_.PrechargeReady(b);
    return Action::kPrecharge;
  }
  const bool w = q_write_[i] != 0;
  // Follow-up bursts of the same transaction stream back to back, gated by
  // the data bus only (not tCCD). At most one queued request can be the
  // continuation.
  ready_at = q_slot_[i] == cont_slot_ ? lanes_.ContinuationReady(b, w)
                                      : lanes_.ColumnReady(b, w);
  return Action::kColumn;
}

void DramChannel::RefreshBankSummary(std::uint32_t b) {
  // Selector / bank-local-gate pairs (see the lane map in channel.hpp):
  //   no demand        -> 0, raw ready kNever (bank contributes nothing)
  //   closed row       -> every transaction needs an activate
  //   open, not wanted -> every transaction needs a precharge
  //   open, row wanted -> column ready per represented direction
  //                       (precharge candidates are blocked and contribute
  //                        nothing, matching the scan; the continuation
  //                        transaction is lifted out of its direction count
  //                        since it is gated by ContinuationReady, not
  //                        ColumnReady, and folded back in per scan)
  std::uint64_t sel;
  Cycle local = 0;
  if (demand_count_[b] == 0) {
    sel = 0;
  } else if (!lanes_.RowOpen(b)) {
    sel = 1;
    local = lanes_.RawActivateGate(b);
  } else if (open_reads_[b] + open_writes_[b] == 0) {
    sel = 2;
    local = lanes_.RawPrechargeGate(b);
  } else {
    std::uint32_t reads = open_reads_[b];
    std::uint32_t writes = open_writes_[b];
    if (cont_slot_ != -1 && cont_bank_ == b &&
        cont_row_ == lanes_.OpenRow(b)) {
      (cont_write_ ? writes : reads)--;
    }
    sel = 3 + (reads != 0 ? 1u : 0u) + (writes != 0 ? 2u : 0u);
    local = lanes_.RawColumnGate(b);
  }
  bank_summary_[b] = (local << 3) | sel;
}

std::uint32_t DramChannel::SummarizeBanks(Cycle now, Cycle& min_ready) {
  // Per-scan LUT: the bank-invariant completion of each selector's
  // max-chain, per rank. A bank's exact raw earliest-ready is then
  // max(local gate, lut[rank][sel]) — max distributes over the min across
  // direction terms because the bank-local and refresh terms are common:
  //   min over dirs of max(col_gate, shared[dir], refresh)
  //     == max(col_gate, refresh, min over dirs of shared[dir]).
  const std::uint32_t ranks = lanes_.num_ranks();
  for (std::uint32_t r = 0; r < ranks; ++r) {
    Cycle* lut = &summary_lut_[std::size_t{r} * 8];
    const Cycle refresh = lanes_.refresh_until(r);
    const Cycle col_rd = std::max(refresh, lanes_.SharedColumnGate(false));
    const Cycle col_wr = std::max(refresh, lanes_.SharedColumnGate(true));
    lut[0] = kNever;  // no demand
    lut[1] = lanes_.RankActivateGate(r);
    lut[2] = refresh;  // precharge
    lut[3] = kNever;   // column, both dirs continuation-only
    lut[4] = col_rd;
    lut[5] = col_wr;
    lut[6] = std::min(col_rd, col_wr);
    lut[7] = kNever;  // unused (pad)
  }

  // Branchless per-bank loop over the banks that actually have queued
  // demand: one packed load, one LUT load, max, compare. AlignUp commutes
  // with min/<=-vs-even-now, so it is applied once at the end instead of
  // per bank.
  std::uint32_t due = 0;
  Cycle raw_min = kNever;
  const std::uint32_t active = static_cast<std::uint32_t>(active_banks_.size());
  const std::uint32_t* active_banks = active_banks_.data();
  const std::uint64_t* summary = bank_summary_.data();
  const std::uint32_t* lut_base = rank_lut_base_.data();
  const Cycle* lut = summary_lut_.data();
  std::uint8_t* due_flags = bank_due_.data();
  for (std::uint32_t k = 0; k < active; ++k) {
    const std::uint32_t b = active_banks[k];
    const std::uint64_t v = summary[b];
    const Cycle raw =
        std::max(static_cast<Cycle>(v >> 3), lut[lut_base[b] + (v & 7)]);
    const bool is_due = raw <= now;
    due_flags[b] = is_due;
    due += is_due;
    raw_min = std::min(raw_min, is_due ? kNever : raw);
  }

  // Fold the continuation transaction back in: it contributes its bank's
  // ContinuationReady (col_shared without the tCCD term) instead of
  // ColumnReady. Correct even when its bank was counted due already — once
  // any bank is due a command issues this scan and min_ready goes unused.
  if (cont_slot_ != -1 && cont_row_ == lanes_.OpenRow(cont_bank_)) {
    const Cycle cont_ready = lanes_.ContinuationReady(cont_bank_, cont_write_);
    if (cont_ready <= now) {
      due += 1 - due_flags[cont_bank_];
      due_flags[cont_bank_] = 1;
    } else {
      min_ready = std::min(min_ready, cont_ready);
    }
  }
  if (raw_min != kNever) {
    min_ready = std::min(min_ready, TimingLanes::AlignUp(raw_min));
  }
  return due;
}

void DramChannel::IssueColumn(std::size_t i, Cycle now) {
  const auto& t = cfg_.timing;
  const auto& geo = cfg_.geometry;
  const std::uint32_t bank_idx = q_bank_[i];
  const bool is_write = q_write_[i] != 0;
  Pending& p = slots_[static_cast<std::size_t>(q_slot_[i])];

  const Cycle lat = is_write ? t.tCWD : t.tCAS;
  const Cycle data_end = now + lat + t.tBL;
  lanes_.RecordColumn(bank_idx, is_write, now);
  next_cmd_slot_ = now + kCpuCyclesPerDramCycle;

  if (is_write) {
    counters_.write_bursts++;
    if (last_data_ == LastData::kRead) counters_.turnarounds_rw++;
    last_data_ = LastData::kWrite;
  } else {
    counters_.read_bursts++;
    if (last_data_ == LastData::kWrite) counters_.turnarounds_wr++;
    last_data_ = LastData::kRead;
  }
  counters_.data_busy_cycles += t.tBL;
  counters_.bytes_transferred += geo.burst_bytes + geo.sideband_bytes;
  counters_.row_hits++;

  if (!p.first_command_issued) {
    p.first_command_issued = true;
    counters_.queue_wait_cycles += now - p.req.arrival;
  }

  if (observer_ != nullptr) {
    observer_->OnColumnCommand({p.req.loc, is_write, now});
  }

  REDCACHE_TRACE_EVENT(obs::TraceEvent{
      .cycle = now,
      .dur = static_cast<std::uint32_t>(t.tBL),
      .type = is_write ? obs::TraceEventType::kCmdWrite
                       : obs::TraceEventType::kCmdRead,
      .device = trace_device_,
      .rank = static_cast<std::uint8_t>(p.req.loc.rank),
      .bank = static_cast<std::uint8_t>(p.req.loc.bank),
      .channel = channel_index_,
      .addr = p.req.addr,
      .arg = p.req.loc.row});

  const std::int32_t old_cont_slot = cont_slot_;
  const std::uint32_t old_cont_bank = cont_bank_;
  p.bursts_left--;
  if (p.bursts_left == 0) {
    pending_done_.push_back(
        {p.req.id, p.req.addr, is_write, data_end, p.req.tenant,
         p.req.user_tag});
    pending_done_min_ = std::min(pending_done_min_, data_end);
    if (is_write) write_count_--;
    cont_slot_ = -1;  // the streaming transaction retired
    RemoveFromQueue(i);
  } else {
    cont_slot_ = q_slot_[i];
    cont_bank_ = bank_idx;
    cont_row_ = q_row_[i];
    cont_write_ = is_write;
  }
  RefreshBankSummary(bank_idx);
  // Taking over (or retiring) the continuation restores the displaced
  // holder's direction count to its bank's summary.
  if (old_cont_slot != -1 && old_cont_bank != bank_idx) {
    RefreshBankSummary(old_cont_bank);
  }
}

void DramChannel::IssueActivate(std::size_t i, Cycle now) {
  const auto& t = cfg_.timing;
  Pending& p = slots_[static_cast<std::size_t>(q_slot_[i])];
  lanes_.RecordActivate(q_bank_[i], q_row_[i], now);
  const RowDemand* d = FindDemand(q_bank_[i], q_row_[i]);
  open_reads_[q_bank_[i]] = d->reads;
  open_writes_[q_bank_[i]] = d->writes;
  next_cmd_slot_ = now + kCpuCyclesPerDramCycle;
  counters_.activates++;
  counters_.row_misses++;
  REDCACHE_TRACE_EVENT(obs::TraceEvent{
      .cycle = now,
      .dur = static_cast<std::uint32_t>(t.tRCD),
      .type = obs::TraceEventType::kCmdActivate,
      .device = trace_device_,
      .rank = static_cast<std::uint8_t>(p.req.loc.rank),
      .bank = static_cast<std::uint8_t>(p.req.loc.bank),
      .channel = channel_index_,
      .addr = p.req.addr,
      .arg = p.req.loc.row});
  if (!p.first_command_issued) {
    p.first_command_issued = true;
    counters_.queue_wait_cycles += now - p.req.arrival;
  }
  RefreshBankSummary(q_bank_[i]);
}

void DramChannel::IssuePrecharge(std::uint32_t bank_idx, Cycle now) {
  const std::uint64_t closed_row = lanes_.OpenRow(bank_idx);
  lanes_.RecordPrecharge(bank_idx, now);
  open_reads_[bank_idx] = 0;
  open_writes_[bank_idx] = 0;
  next_cmd_slot_ = now + kCpuCyclesPerDramCycle;
  counters_.precharges++;
  REDCACHE_TRACE_EVENT(obs::TraceEvent{
      .cycle = now,
      .dur = static_cast<std::uint32_t>(cfg_.timing.tRP),
      .type = obs::TraceEventType::kCmdPrecharge,
      .device = trace_device_,
      .rank = static_cast<std::uint8_t>(bank_idx /
                                        cfg_.geometry.banks_per_rank),
      .bank = static_cast<std::uint8_t>(bank_idx %
                                        cfg_.geometry.banks_per_rank),
      .channel = channel_index_,
      .arg = closed_row});
  RefreshBankSummary(bank_idx);
}

bool DramChannel::MaybeRefresh(Cycle now, Cycle& min_ready) {
  // Fast path: nothing refresh-related can happen before refresh_wake_.
  if (now < refresh_wake_) {
    min_ready = std::min(min_ready, refresh_wake_);
    return false;
  }
  Cycle wake = kNever;
  const std::uint32_t banks_per_rank = cfg_.geometry.banks_per_rank;
  for (std::uint32_t r = 0; r < lanes_.num_ranks(); ++r) {
    if (lanes_.Refreshing(r, now)) {
      wake = std::min(wake, lanes_.refresh_until(r));
      continue;
    }
    if (!lanes_.RefreshDue(r, now)) {
      wake = std::min(wake, lanes_.next_refresh(r));
      continue;
    }
    // Refresh is due: close all banks, then wait tRP, then refresh.
    Cycle rank_ready = now;
    bool all_closed = true;
    const std::uint32_t bank_base = r * banks_per_rank;
    for (std::uint32_t b = 0; b < banks_per_rank; ++b) {
      const std::uint32_t bank = bank_base + b;
      if (lanes_.RowOpen(bank)) {
        all_closed = false;
        if (now >= lanes_.RawPrechargeGate(bank)) {
          IssuePrecharge(bank, now);
          return true;  // refresh_wake_ stays hot (<= now)
        }
        rank_ready = std::max(rank_ready, lanes_.RawPrechargeGate(bank));
      } else {
        rank_ready = std::max(rank_ready, lanes_.RawActivateGate(bank));
      }
    }
    if (!all_closed || now < rank_ready) {
      wake = std::min(wake, AlignUp(std::max(rank_ready, now + 1)));
      continue;
    }
    lanes_.StartRefresh(r, now);
    refresh_epoch_++;
    // StartRefresh raised the rank's bank activate gates by tRFC. Only
    // banks with queued demand need their packed summary recomputed — an
    // inactive bank's summary is never read before its next activation
    // (Enqueue) recomputes it.
    for (const std::uint32_t bank : active_banks_) {
      if (lanes_.rank_of(bank) == r) RefreshBankSummary(bank);
    }
    next_cmd_slot_ = now + kCpuCyclesPerDramCycle;
    counters_.refreshes++;
    REDCACHE_TRACE_EVENT(obs::TraceEvent{
        .cycle = now,
        .dur = static_cast<std::uint32_t>(cfg_.timing.tRFC),
        .type = obs::TraceEventType::kCmdRefresh,
        .device = trace_device_,
        .rank = static_cast<std::uint8_t>(r),
        .channel = channel_index_});
    return true;
  }
  refresh_wake_ = wake;
  min_ready = std::min(min_ready, wake);
  return false;
}

void DramChannel::Tick(Cycle now, std::vector<DramCompletion>& done) {
  // Deliver finished data movements: one stable compacting pass (delivery
  // order matches insertion order, no per-element erase).
  if (pending_done_min_ <= now) {
    std::size_t keep = 0;
    Cycle next_min = kNever;
    for (std::size_t i = 0; i < pending_done_.size(); ++i) {
      if (pending_done_[i].done <= now) {
        done.push_back(pending_done_[i]);
      } else {
        next_min = std::min(next_min, pending_done_[i].done);
        pending_done_[keep++] = pending_done_[i];
      }
    }
    pending_done_.resize(keep);
    pending_done_min_ = next_min;
  }

  if (now % kCpuCyclesPerDramCycle != 0) return;
  if (now < next_cmd_slot_ || now < sleep_until_) return;

  Cycle min_ready = kNever;
  if (MaybeRefresh(now, min_ready)) return;

  const std::size_t q_size = q_slot_.size();
  if (q_size == 0) {
    sleep_until_ = min_ready == kNever ? now + cfg_.timing.tREFI : min_ready;
    return;
  }

  const Cycle starve = cfg_.controller.starvation_cycles;

  // Anti-starvation: once the oldest request (queue position 0, arrival
  // order) has waited past the threshold, issue its next command ahead of
  // row hits — but only when it can actually issue; blocking the channel on
  // a not-yet-ready command would serialize the banks.
  Action head_act = Action::kNone;
  Cycle head_ready = kNever;
  bool head_cached = false;
  if (q_arrival_[0] + starve < now) {
    head_act = RequiredAction(0, head_ready);
    head_cached = true;
    if (head_ready <= now) {
      if (head_act == Action::kColumn) {
        IssueColumn(0, now);
      } else if (head_act == Action::kActivate) {
        IssueActivate(0, now);
      } else {
        IssuePrecharge(q_bank_[0], now);
      }
      return;
    }
    min_ready = std::min(min_ready, head_ready);
    // Fall through: serve other ready work while the starved head waits on
    // its bank timing.
  }

  // Per-bank pre-pass over the flat lanes: if no bank can issue at `now`,
  // the exact sleep target is already in min_ready and the queue is never
  // touched.
  if (SummarizeBanks(now, min_ready) == 0) {
    sleep_until_ = min_ready == kNever
                       ? now + kCpuCyclesPerDramCycle
                       : std::max(min_ready, now + kCpuCyclesPerDramCycle);
    return;
  }

  // Writes are posted: demand reads get priority until writes pile up past
  // the watermark (standard write-drain policy; keeps read latency low
  // without starving fills/writebacks/update traffic).
  const bool drain_writes =
      2 * write_count_ > cfg_.controller.queue_depth;

  std::size_t open_pick = q_size;
  Action open_action = Action::kNone;
  std::size_t write_pick = q_size;

  for (std::size_t i = 0; i < q_size; ++i) {
    // A bank the pre-pass left unflagged cannot issue at `now`, and its
    // earliest-ready cycle is already folded into min_ready.
    if (!bank_due_[q_bank_[i]]) continue;

    Cycle ready = kNever;
    // The starved-head branch already computed the head's action this slot.
    const Action act = (i == 0 && head_cached)
                           ? (ready = head_ready, head_act)
                           : RequiredAction(i, ready);

    if (act == Action::kColumn && ready <= now) {
      if (q_write_[i] == 0 || drain_writes) {
        // FR-FCFS: the oldest ready row-hit (read-first) wins.
        IssueColumn(i, now);
        return;
      }
      if (write_pick == q_size) write_pick = i;
      continue;
    }
    if (act == Action::kPrecharge) {
      // Do not close a row another queued transaction still wants.
      if (open_reads_[q_bank_[i]] + open_writes_[q_bank_[i]] != 0) continue;
    }

    min_ready = std::min(min_ready, ready);
    if (ready > now) continue;
    if (act != Action::kColumn && open_pick == q_size) {
      open_pick = i;
      open_action = act;
    }
  }

  if (write_pick != q_size) {
    IssueColumn(write_pick, now);
    return;
  }
  if (open_pick != q_size) {
    if (open_action == Action::kActivate) {
      IssueActivate(open_pick, now);
    } else {
      IssuePrecharge(q_bank_[open_pick], now);
    }
    return;
  }

  sleep_until_ = min_ready == kNever
                     ? now + kCpuCyclesPerDramCycle
                     : std::max(min_ready, now + kCpuCyclesPerDramCycle);
}

void DramChannel::Snapshot(ser::Writer& w) const {
  w.Section("chan");
  lanes_.Snapshot(w);
  w.U64(q_slot_.size());
  for (std::size_t i = 0; i < q_slot_.size(); ++i) {
    w.U32(q_bank_[i]);
    w.U32(q_rank_[i]);
    w.U64(q_row_[i]);
    w.U8(q_write_[i]);
    w.U64(q_arrival_[i]);
    w.U32(static_cast<std::uint32_t>(q_slot_[i]));
    const Pending& p = slots_[static_cast<std::size_t>(q_slot_[i])];
    w.U64(p.req.id);
    w.U64(p.req.addr);
    w.U32(p.req.loc.channel);
    w.U32(p.req.loc.rank);
    w.U32(p.req.loc.bank);
    w.U64(p.req.loc.row);
    w.U32(p.req.loc.column);
    w.Bool(p.req.is_write);
    w.U32(p.req.bursts);
    w.U64(p.req.arrival);
    w.U32(p.req.tenant);
    w.U64(p.req.user_tag);
    w.U32(p.bursts_left);
    w.Bool(p.first_command_issued);
  }
  w.U64Seq(free_slots_);
  w.U64(pending_done_.size());
  for (const DramCompletion& d : pending_done_) {
    w.U64(d.id);
    w.U64(d.addr);
    w.Bool(d.is_write);
    w.U64(d.done);
    w.U32(d.tenant);
    w.U64(d.user_tag);
  }
  w.U64(pending_done_min_);
  w.U64(next_cmd_slot_);
  w.U64(sleep_until_);
  w.U64(refresh_wake_);
  w.U64(refresh_epoch_);
  w.I64(cont_slot_);
  w.U32(cont_bank_);
  w.U64(cont_row_);
  w.Bool(cont_write_);
  w.U8(static_cast<std::uint8_t>(last_data_));
  w.U32(write_count_);
  w.U64(counters_.activates);
  w.U64(counters_.precharges);
  w.U64(counters_.refreshes);
  w.U64(counters_.read_bursts);
  w.U64(counters_.write_bursts);
  w.U64(counters_.row_hits);
  w.U64(counters_.row_misses);
  w.U64(counters_.data_busy_cycles);
  w.U64(counters_.bytes_transferred);
  w.U64(counters_.turnarounds_rw);
  w.U64(counters_.turnarounds_wr);
  w.U64(counters_.transactions);
  w.U64(counters_.queue_wait_cycles);
}

void DramChannel::Restore(ser::Reader& r) {
  r.Section("chan");
  lanes_.Restore(r);

  const std::size_t q_size = r.SeqLen(1);
  if (q_size > slots_.size()) {
    throw ser::SerializeError("channel queue exceeds queue_depth");
  }
  q_bank_.clear();
  q_rank_.clear();
  q_row_.clear();
  q_write_.clear();
  q_arrival_.clear();
  q_slot_.clear();
  for (std::size_t i = 0; i < q_size; ++i) {
    q_bank_.push_back(r.U32());
    q_rank_.push_back(r.U32());
    q_row_.push_back(r.U64());
    q_write_.push_back(r.U8());
    q_arrival_.push_back(r.U64());
    const std::uint32_t s = r.U32();
    if (s >= slots_.size() || q_bank_.back() >= lanes_.num_banks()) {
      throw ser::SerializeError("channel queue entry out of range");
    }
    q_slot_.push_back(static_cast<std::int32_t>(s));
    Pending& p = slots_[s];
    p.req.id = r.U64();
    p.req.addr = r.U64();
    p.req.loc.channel = r.U32();
    p.req.loc.rank = r.U32();
    p.req.loc.bank = r.U32();
    p.req.loc.row = r.U64();
    p.req.loc.column = r.U32();
    p.req.is_write = r.Bool();
    p.req.bursts = r.U32();
    p.req.arrival = r.U64();
    p.req.tenant = static_cast<std::uint16_t>(r.U32());
    p.req.user_tag = r.U64();
    p.bursts_left = r.U32();
    p.first_command_issued = r.Bool();
  }
  const std::size_t n_free = r.SeqLen(8);
  if (q_size + n_free != slots_.size()) {
    throw ser::SerializeError("channel slot pool accounting mismatch");
  }
  free_slots_.clear();
  for (std::size_t i = 0; i < n_free; ++i) {
    free_slots_.push_back(static_cast<std::int32_t>(r.U64()));
  }
  pending_done_.clear();
  const std::size_t n_done = r.SeqLen(1);
  for (std::size_t i = 0; i < n_done; ++i) {
    DramCompletion d;
    d.id = r.U64();
    d.addr = r.U64();
    d.is_write = r.Bool();
    d.done = r.U64();
    d.tenant = static_cast<std::uint16_t>(r.U32());
    d.user_tag = r.U64();
    pending_done_.push_back(d);
  }
  pending_done_min_ = r.U64();
  next_cmd_slot_ = r.U64();
  sleep_until_ = r.U64();
  refresh_wake_ = r.U64();
  refresh_epoch_ = r.U64();
  cont_slot_ = static_cast<std::int32_t>(r.I64());
  cont_bank_ = r.U32();
  cont_row_ = r.U64();
  cont_write_ = r.Bool();
  last_data_ = static_cast<LastData>(r.U8());
  write_count_ = r.U32();
  counters_.activates = r.U64();
  counters_.precharges = r.U64();
  counters_.refreshes = r.U64();
  counters_.read_bursts = r.U64();
  counters_.write_bursts = r.U64();
  counters_.row_hits = r.U64();
  counters_.row_misses = r.U64();
  counters_.data_busy_cycles = r.U64();
  counters_.bytes_transferred = r.U64();
  counters_.turnarounds_rw = r.U64();
  counters_.turnarounds_wr = r.U64();
  counters_.transactions = r.U64();
  counters_.queue_wait_cycles = r.U64();

  // Rebuild the derived scan state from the restored queue. Replaying
  // AddRowDemand reproduces row_demand_ / demand_count_ / the active-bank
  // set and, because the lanes already hold the open rows, the open-row
  // direction counts; the packed summaries then recompute from those.
  // active_banks_ ordering may differ from the snapshotting run, which is
  // behavior-neutral: the pre-pass only accumulates a min and per-bank due
  // flags, and command selection walks the queue in arrival order.
  for (auto& rows : row_demand_) rows.clear();
  std::fill(demand_count_.begin(), demand_count_.end(), 0u);
  std::fill(open_reads_.begin(), open_reads_.end(), 0u);
  std::fill(open_writes_.begin(), open_writes_.end(), 0u);
  std::fill(bank_due_.begin(), bank_due_.end(), std::uint8_t{0});
  std::fill(bank_summary_.begin(), bank_summary_.end(), std::uint64_t{0});
  active_banks_.clear();
  std::fill(active_pos_.begin(), active_pos_.end(), -1);
  for (std::size_t i = 0; i < q_slot_.size(); ++i) {
    AddRowDemand(q_bank_[i], q_row_[i], q_write_[i] != 0);
  }
  for (const std::uint32_t bank : active_banks_) RefreshBankSummary(bank);
  idle_hint_epoch_ = ~std::uint64_t{0};  // force the memo to recompute
}

Cycle DramChannel::NextEventHint(Cycle now) const {
  Cycle next = pending_done_min_;
  if (!q_slot_.empty()) {
    // Exact, not conservative: commands issue only on DRAM command-slot
    // boundaries and Tick returns on misalignment, so the poll term rounds
    // up to the next slot — the cycles in between are provable no-ops.
    next = std::min(next,
                    std::max({AlignUp(now + 1), next_cmd_slot_, sleep_until_}));
  } else {
    // Idle: the only future work is refresh bookkeeping. The rank walk is
    // memoized: its result is constant until `now` reaches it (refresh
    // starts/ends never fall inside the window — the minimum over the very
    // terms that bound them) or until a refresh starts, which bumps
    // refresh_epoch_. A hint at or before `now` (refresh due but blocked)
    // recomputes per call, exactly like an unmemoized walk.
    if (idle_hint_epoch_ != refresh_epoch_ || now >= idle_hint_) {
      Cycle h = kNever;
      for (std::uint32_t r = 0; r < lanes_.num_ranks(); ++r) {
        h = std::min(h, lanes_.Refreshing(r, now) ? lanes_.refresh_until(r)
                                                  : lanes_.next_refresh(r));
      }
      idle_hint_ = h;
      idle_hint_epoch_ = refresh_epoch_;
    }
    next = std::min(next, idle_hint_);
  }
  return next;
}

}  // namespace redcache
