#include "dram/channel.hpp"

#include <algorithm>
#include <cassert>

#include "obs/trace_macros.hpp"

namespace redcache {

namespace {
/// Round `t` up to the next DRAM command slot boundary.
Cycle AlignUp(Cycle t) {
  const Cycle rem = t % kCpuCyclesPerDramCycle;
  return rem == 0 ? t : t + (kCpuCyclesPerDramCycle - rem);
}
}  // namespace

DramChannel::DramChannel(const DramConfig& cfg, std::uint32_t channel_index)
    : cfg_(cfg),
      channel_index_(static_cast<std::uint16_t>(channel_index)),
      trace_device_(cfg.name == "hbm" ? obs::kTraceDeviceHbm
                                      : obs::kTraceDeviceMainMem) {
  banks_.resize(std::size_t{cfg_.geometry.ranks_per_channel} *
                cfg_.geometry.banks_per_rank);
  ranks_.resize(cfg_.geometry.ranks_per_channel);
  for (std::uint32_t r = 0; r < cfg_.geometry.ranks_per_channel; ++r) {
    ranks_[r].Init(cfg_.timing, r);
  }
  slots_.resize(cfg_.controller.queue_depth);
  free_slots_.reserve(cfg_.controller.queue_depth);
  for (std::uint32_t s = cfg_.controller.queue_depth; s-- > 0;) {
    free_slots_.push_back(static_cast<std::int32_t>(s));
  }
  row_demand_.resize(banks_.size());
  ready_memo_.resize(banks_.size());
  bank_stamp_.assign(banks_.size(), 0);
  rank_stamp_.assign(ranks_.size(), 0);
}

void DramChannel::Enqueue(const DramRequest& req) {
  assert(CanAccept());
  const std::int32_t s = free_slots_.back();
  free_slots_.pop_back();
  Pending& p = slots_[static_cast<std::size_t>(s)];
  p.req = req;
  p.bursts_left = std::max<std::uint32_t>(1, req.bursts);
  p.bank_idx = req.loc.rank * cfg_.geometry.banks_per_rank + req.loc.bank;
  p.first_command_issued = false;
  p.prev = tail_;
  p.next = -1;
  if (tail_ == -1) {
    head_ = s;
  } else {
    slots_[static_cast<std::size_t>(tail_)].next = s;
  }
  tail_ = s;
  live_count_++;
  AddRowDemand(p.bank_idx, req.loc.row);
  if (req.is_write) write_count_++;
  counters_.transactions++;
  sleep_until_ = 0;  // new work: wake the scheduler
}

void DramChannel::RemoveFromQueue(std::int32_t slot) {
  Pending& p = slots_[static_cast<std::size_t>(slot)];
  if (p.prev == -1) {
    head_ = p.next;
  } else {
    slots_[static_cast<std::size_t>(p.prev)].next = p.next;
  }
  if (p.next == -1) {
    tail_ = p.prev;
  } else {
    slots_[static_cast<std::size_t>(p.next)].prev = p.prev;
  }
  live_count_--;
  SubRowDemand(p.bank_idx, p.req.loc.row);
  free_slots_.push_back(slot);
}

void DramChannel::AddRowDemand(std::uint32_t bank_idx, std::uint64_t row) {
  auto& rows = row_demand_[bank_idx];
  for (RowDemand& d : rows) {
    if (d.row == row) {
      d.count++;
      return;
    }
  }
  rows.push_back({row, 1});
}

void DramChannel::SubRowDemand(std::uint32_t bank_idx, std::uint64_t row) {
  auto& rows = row_demand_[bank_idx];
  for (RowDemand& d : rows) {
    if (d.row == row) {
      if (--d.count == 0) {
        d = rows.back();
        rows.pop_back();
      }
      return;
    }
  }
  assert(false && "row demand underflow");
}

bool DramChannel::RowWanted(std::uint32_t bank_idx, std::uint64_t row) const {
  for (const RowDemand& d : row_demand_[bank_idx]) {
    if (d.row == row) return d.count != 0;
  }
  return false;
}

Cycle DramChannel::ComputeColumnReady(std::uint32_t bank_idx,
                                      std::uint32_t rank_idx, bool is_write,
                                      Cycle col_gate) const {
  const auto& t = cfg_.timing;
  const BankState& bank = banks_[bank_idx];
  const Cycle lat = is_write ? t.tCWD : t.tCAS;
  Cycle ready = std::max({bank.next_column, col_gate,
                          is_write ? next_write_cmd_ : next_read_cmd_});
  if (data_bus_free_ > lat) {
    ready = std::max(ready, data_bus_free_ - lat);
  }
  const RankState& rank = ranks_[rank_idx];
  if (rank.Refreshing(ready)) {
    ready = rank.refreshing_until();
  }
  return AlignUp(ready);
}

Cycle DramChannel::ComputeActivateReady(std::uint32_t bank_idx,
                                        std::uint32_t rank_idx) const {
  const BankState& bank = banks_[bank_idx];
  const RankState& rank = ranks_[rank_idx];
  Cycle ready = std::max(bank.next_activate, rank.NextActivateAllowed());
  if (rank.Refreshing(ready)) ready = rank.refreshing_until();
  return AlignUp(ready);
}

Cycle DramChannel::ComputePrechargeReady(std::uint32_t bank_idx,
                                         std::uint32_t rank_idx) const {
  const BankState& bank = banks_[bank_idx];
  const RankState& rank = ranks_[rank_idx];
  Cycle ready = bank.next_precharge;
  if (rank.Refreshing(ready)) ready = rank.refreshing_until();
  return AlignUp(ready);
}

REDCACHE_ALWAYS_INLINE DramChannel::Action DramChannel::RequiredAction(
    const Pending& p, Cycle& ready_at) const {
  const std::uint32_t b = p.bank_idx;
  const std::uint32_t r = p.req.loc.rank;
  const BankState& bank = banks_[b];
  ReadyMemo& m = ready_memo_[b];
  const std::uint64_t br_sig = std::max(bank_stamp_[b], rank_stamp_[r]);
  if (!bank.RowOpen()) {
    if (m.act_sig != br_sig) {
      m.act = ComputeActivateReady(b, r);
      m.act_sig = br_sig;
    }
    ready_at = m.act;
    return Action::kActivate;
  }
  if (bank.open_row != p.req.loc.row) {
    if (m.pre_sig != br_sig) {
      m.pre = ComputePrechargeReady(b, r);
      m.pre_sig = br_sig;
    }
    ready_at = m.pre;
    return Action::kPrecharge;
  }
  // Follow-up bursts of the same transaction stream back to back, gated by
  // the data bus only (not tCCD). At most one queued request matches
  // last_column_req_, so this case bypasses the per-bank memo.
  if (last_column_req_ == p.req.id && p.bursts_left < p.req.bursts) {
    ready_at = ComputeColumnReady(b, r, p.req.is_write, Cycle{0});
    return Action::kColumn;
  }
  const std::uint64_t col_sig = std::max(br_sig, col_stamp_);
  if (p.req.is_write) {
    if (m.col_w_sig != col_sig) {
      m.col_w = ComputeColumnReady(b, r, true, next_column_cmd_);
      m.col_w_sig = col_sig;
    }
    ready_at = m.col_w;
  } else {
    if (m.col_r_sig != col_sig) {
      m.col_r = ComputeColumnReady(b, r, false, next_column_cmd_);
      m.col_r_sig = col_sig;
    }
    ready_at = m.col_r;
  }
  return Action::kColumn;
}

void DramChannel::IssueColumn(std::int32_t slot, Cycle now) {
  const auto& t = cfg_.timing;
  const auto& geo = cfg_.geometry;
  Pending& p = slots_[static_cast<std::size_t>(slot)];
  BankState& bank = BankOf(p.req.loc);
  const bool is_write = p.req.is_write;
  bank_stamp_[p.bank_idx] = ++stamp_counter_;
  col_stamp_ = stamp_counter_;

  const Cycle lat = is_write ? t.tCWD : t.tCAS;
  const Cycle data_start = now + lat;
  const Cycle data_end = data_start + t.tBL;

  data_bus_free_ = data_end;
  next_column_cmd_ = now + t.tCCD;
  last_column_req_ = p.req.id;
  next_cmd_slot_ = now + kCpuCyclesPerDramCycle;

  if (is_write) {
    next_read_cmd_ = std::max(next_read_cmd_, data_end + t.tWTR);
    bank.next_precharge = std::max(bank.next_precharge, data_end + t.tWR);
    counters_.write_bursts++;
    if (last_data_ == LastData::kRead) counters_.turnarounds_rw++;
    last_data_ = LastData::kWrite;
  } else {
    // A later write burst must wait for the bus to reverse after our data.
    const Cycle wr_ok =
        data_end + t.tRTW_bubble > t.tCWD ? data_end + t.tRTW_bubble - t.tCWD
                                          : Cycle{0};
    next_write_cmd_ = std::max(next_write_cmd_, wr_ok);
    bank.next_precharge = std::max(bank.next_precharge, now + t.tRTP);
    counters_.read_bursts++;
    if (last_data_ == LastData::kWrite) counters_.turnarounds_wr++;
    last_data_ = LastData::kRead;
  }
  counters_.data_busy_cycles += t.tBL;
  counters_.bytes_transferred += geo.burst_bytes + geo.sideband_bytes;
  counters_.row_hits++;

  if (!p.first_command_issued) {
    p.first_command_issued = true;
    counters_.queue_wait_cycles += now - p.req.arrival;
  }

  if (observer_ != nullptr) {
    observer_->OnColumnCommand({p.req.loc, is_write, now});
  }

  REDCACHE_TRACE_EVENT(obs::TraceEvent{
      .cycle = now,
      .dur = static_cast<std::uint32_t>(t.tBL),
      .type = is_write ? obs::TraceEventType::kCmdWrite
                       : obs::TraceEventType::kCmdRead,
      .device = trace_device_,
      .rank = static_cast<std::uint8_t>(p.req.loc.rank),
      .bank = static_cast<std::uint8_t>(p.req.loc.bank),
      .channel = channel_index_,
      .addr = p.req.addr,
      .arg = p.req.loc.row});

  p.bursts_left--;
  if (p.bursts_left == 0) {
    pending_done_.push_back(
        {p.req.id, p.req.addr, is_write, data_end, p.req.user_tag});
    pending_done_min_ = std::min(pending_done_min_, data_end);
    if (is_write) write_count_--;
    RemoveFromQueue(slot);
  }
}

void DramChannel::IssueActivate(Pending& p, Cycle now) {
  const auto& t = cfg_.timing;
  BankState& bank = BankOf(p.req.loc);
  bank_stamp_[p.bank_idx] = ++stamp_counter_;
  rank_stamp_[p.req.loc.rank] = stamp_counter_;
  bank.open_row = p.req.loc.row;
  bank.next_column = now + t.tRCD;
  bank.next_precharge = std::max(bank.next_precharge, now + t.tRAS);
  bank.next_activate = now + t.tRC;
  ranks_[p.req.loc.rank].RecordActivate(now);
  next_cmd_slot_ = now + kCpuCyclesPerDramCycle;
  counters_.activates++;
  counters_.row_misses++;
  REDCACHE_TRACE_EVENT(obs::TraceEvent{
      .cycle = now,
      .dur = static_cast<std::uint32_t>(t.tRCD),
      .type = obs::TraceEventType::kCmdActivate,
      .device = trace_device_,
      .rank = static_cast<std::uint8_t>(p.req.loc.rank),
      .bank = static_cast<std::uint8_t>(p.req.loc.bank),
      .channel = channel_index_,
      .addr = p.req.addr,
      .arg = p.req.loc.row});
  if (!p.first_command_issued) {
    p.first_command_issued = true;
    counters_.queue_wait_cycles += now - p.req.arrival;
  }
}

void DramChannel::IssuePrecharge(std::uint32_t bank_idx, Cycle now) {
  BankState& bank = banks_[bank_idx];
  bank_stamp_[bank_idx] = ++stamp_counter_;
  const std::uint64_t closed_row = bank.open_row;
  bank.open_row = BankState::kNoRow;
  bank.next_activate = std::max(bank.next_activate, now + cfg_.timing.tRP);
  next_cmd_slot_ = now + kCpuCyclesPerDramCycle;
  counters_.precharges++;
  REDCACHE_TRACE_EVENT(obs::TraceEvent{
      .cycle = now,
      .dur = static_cast<std::uint32_t>(cfg_.timing.tRP),
      .type = obs::TraceEventType::kCmdPrecharge,
      .device = trace_device_,
      .rank = static_cast<std::uint8_t>(bank_idx /
                                        cfg_.geometry.banks_per_rank),
      .bank = static_cast<std::uint8_t>(bank_idx %
                                        cfg_.geometry.banks_per_rank),
      .channel = channel_index_,
      .arg = closed_row});
}

bool DramChannel::MaybeRefresh(Cycle now, Cycle& min_ready) {
  // Fast path: nothing refresh-related can happen before refresh_wake_.
  if (now < refresh_wake_) {
    min_ready = std::min(min_ready, refresh_wake_);
    return false;
  }
  Cycle wake = kNever;
  for (std::uint32_t r = 0; r < ranks_.size(); ++r) {
    RankState& rank = ranks_[r];
    if (rank.Refreshing(now)) {
      wake = std::min(wake, rank.refreshing_until());
      continue;
    }
    if (!rank.RefreshDue(now)) {
      wake = std::min(wake, rank.next_refresh());
      continue;
    }
    // Refresh is due: close all banks, then wait tRP, then refresh.
    Cycle rank_ready = now;
    bool all_closed = true;
    BankState* bank_base =
        &banks_[std::size_t{r} * cfg_.geometry.banks_per_rank];
    for (std::uint32_t b = 0; b < cfg_.geometry.banks_per_rank; ++b) {
      BankState& bank = bank_base[b];
      if (bank.RowOpen()) {
        all_closed = false;
        if (now >= bank.next_precharge) {
          IssuePrecharge(r * cfg_.geometry.banks_per_rank + b, now);
          return true;  // refresh_wake_ stays hot (<= now)
        }
        rank_ready = std::max(rank_ready, bank.next_precharge);
      } else {
        rank_ready = std::max(rank_ready, bank.next_activate);
      }
    }
    if (!all_closed || now < rank_ready) {
      wake = std::min(wake, AlignUp(std::max(rank_ready, now + 1)));
      continue;
    }
    rank.StartRefresh(now);
    rank_stamp_[r] = ++stamp_counter_;
    for (std::uint32_t b = 0; b < cfg_.geometry.banks_per_rank; ++b) {
      bank_base[b].next_activate =
          std::max(bank_base[b].next_activate, now + cfg_.timing.tRFC);
    }
    next_cmd_slot_ = now + kCpuCyclesPerDramCycle;
    counters_.refreshes++;
    REDCACHE_TRACE_EVENT(obs::TraceEvent{
        .cycle = now,
        .dur = static_cast<std::uint32_t>(cfg_.timing.tRFC),
        .type = obs::TraceEventType::kCmdRefresh,
        .device = trace_device_,
        .rank = static_cast<std::uint8_t>(r),
        .channel = channel_index_});
    return true;
  }
  refresh_wake_ = wake;
  min_ready = std::min(min_ready, wake);
  return false;
}

void DramChannel::Tick(Cycle now, std::vector<DramCompletion>& done) {
  // Deliver finished data movements: one stable compacting pass (delivery
  // order matches insertion order, no per-element erase).
  if (pending_done_min_ <= now) {
    std::size_t keep = 0;
    Cycle next_min = kNever;
    for (std::size_t i = 0; i < pending_done_.size(); ++i) {
      if (pending_done_[i].done <= now) {
        done.push_back(pending_done_[i]);
      } else {
        next_min = std::min(next_min, pending_done_[i].done);
        pending_done_[keep++] = pending_done_[i];
      }
    }
    pending_done_.resize(keep);
    pending_done_min_ = next_min;
  }

  if (now % kCpuCyclesPerDramCycle != 0) return;
  if (now < next_cmd_slot_ || now < sleep_until_) return;

  Cycle min_ready = kNever;
  if (MaybeRefresh(now, min_ready)) return;

  if (live_count_ == 0) {
    sleep_until_ = min_ready == kNever ? now + cfg_.timing.tREFI : min_ready;
    return;
  }

  const Cycle starve = cfg_.controller.starvation_cycles;

  // Anti-starvation: once the oldest request (queue head, arrival order)
  // has waited past the threshold, issue its next command ahead of row
  // hits — but only when it can actually issue; blocking the channel on a
  // not-yet-ready command would serialize the banks.
  Action head_act = Action::kNone;
  Cycle head_ready = kNever;
  bool head_cached = false;
  if (slots_[static_cast<std::size_t>(head_)].req.arrival + starve < now) {
    Pending& p = slots_[static_cast<std::size_t>(head_)];
    head_act = RequiredAction(p, head_ready);
    head_cached = true;
    if (head_ready <= now) {
      if (head_act == Action::kColumn) {
        IssueColumn(head_, now);
      } else if (head_act == Action::kActivate) {
        IssueActivate(p, now);
      } else {
        IssuePrecharge(p.bank_idx, now);
      }
      return;
    }
    min_ready = std::min(min_ready, head_ready);
    // Fall through: serve other ready work while the starved head waits on
    // its bank timing.
  }

  // Writes are posted: demand reads get priority until writes pile up past
  // the watermark (standard write-drain policy; keeps read latency low
  // without starving fills/writebacks/update traffic).
  const bool drain_writes =
      2 * write_count_ > cfg_.controller.queue_depth;

  std::int32_t open_pick = -1;
  Action open_action = Action::kNone;
  std::int32_t write_pick = -1;

  for (std::int32_t s = head_; s != -1;
       s = slots_[static_cast<std::size_t>(s)].next) {
    const Pending& p = slots_[static_cast<std::size_t>(s)];
    Cycle ready = kNever;
    // The starved-head branch already computed the head's action this slot.
    const Action act = (s == head_ && head_cached)
                           ? (ready = head_ready, head_act)
                           : RequiredAction(p, ready);

    if (act == Action::kColumn && ready <= now) {
      if (!p.req.is_write || drain_writes) {
        // FR-FCFS: the oldest ready row-hit (read-first) wins.
        IssueColumn(s, now);
        return;
      }
      if (write_pick == -1) write_pick = s;
      continue;
    }
    if (act == Action::kPrecharge) {
      // Do not close a row another queued transaction still wants.
      const BankState& bank = banks_[p.bank_idx];
      if (RowWanted(p.bank_idx, bank.open_row)) continue;
    }

    min_ready = std::min(min_ready, ready);
    if (ready > now) continue;
    if (act != Action::kColumn && open_pick == -1) {
      open_pick = s;
      open_action = act;
    }
  }

  if (write_pick != -1) {
    IssueColumn(write_pick, now);
    return;
  }
  if (open_pick != -1) {
    Pending& p = slots_[static_cast<std::size_t>(open_pick)];
    if (open_action == Action::kActivate) {
      IssueActivate(p, now);
    } else {
      IssuePrecharge(p.bank_idx, now);
    }
    return;
  }

  sleep_until_ = min_ready == kNever
                     ? now + kCpuCyclesPerDramCycle
                     : std::max(min_ready, now + kCpuCyclesPerDramCycle);
}

Cycle DramChannel::NextEventHint(Cycle now) const {
  Cycle next = pending_done_min_;
  if (live_count_ != 0) {
    // Exact, not conservative: commands issue only on DRAM command-slot
    // boundaries and Tick returns on misalignment, so the poll term rounds
    // up to the next slot — the cycles in between are provable no-ops.
    next = std::min(next,
                    std::max({AlignUp(now + 1), next_cmd_slot_, sleep_until_}));
  } else {
    // Idle: the only future work is refresh bookkeeping. The rank walk is
    // memoized: its result is constant until `now` reaches it (refresh
    // starts/ends never fall inside the window — the minimum over the very
    // terms that bound them) or until a command mutates rank state, which
    // bumps stamp_counter_. A hint at or before `now` (refresh due but
    // blocked) recomputes per call, exactly like the old walk.
    if (idle_hint_stamp_ != stamp_counter_ || now >= idle_hint_) {
      Cycle h = kNever;
      for (const auto& r : ranks_) {
        h = std::min(h, r.Refreshing(now) ? r.refreshing_until()
                                          : r.next_refresh());
      }
      idle_hint_ = h;
      idle_hint_stamp_ = stamp_counter_;
    }
    next = std::min(next, idle_hint_);
  }
  return next;
}

}  // namespace redcache
