#include "dram/channel.hpp"

#include <algorithm>
#include <cassert>

namespace redcache {

namespace {
/// Round `t` up to the next DRAM command slot boundary.
Cycle AlignUp(Cycle t) {
  const Cycle rem = t % kCpuCyclesPerDramCycle;
  return rem == 0 ? t : t + (kCpuCyclesPerDramCycle - rem);
}
}  // namespace

DramChannel::DramChannel(const DramConfig& cfg, std::uint32_t channel_index)
    : cfg_(cfg) {
  (void)channel_index;
  banks_.resize(std::size_t{cfg_.geometry.ranks_per_channel} *
                cfg_.geometry.banks_per_rank);
  ranks_.resize(cfg_.geometry.ranks_per_channel);
  for (std::uint32_t r = 0; r < cfg_.geometry.ranks_per_channel; ++r) {
    ranks_[r].Init(cfg_.timing, r);
  }
  queue_.reserve(cfg_.controller.queue_depth);
}

void DramChannel::Enqueue(const DramRequest& req) {
  assert(CanAccept());
  Pending p;
  p.req = req;
  p.bursts_left = std::max<std::uint32_t>(1, req.bursts);
  p.bank_idx = req.loc.rank * cfg_.geometry.banks_per_rank + req.loc.bank;
  queue_.push_back(p);
  if (req.is_write) write_count_++;
  counters_.transactions++;
  sleep_until_ = 0;  // new work: wake the scheduler
}

Cycle DramChannel::ColumnReadyAt(const Pending& p) const {
  const auto& t = cfg_.timing;
  const BankState& bank = banks_[p.bank_idx];
  const Cycle lat = p.req.is_write ? t.tCWD : t.tCAS;
  // Follow-up bursts of the same transaction stream back to back, gated by
  // the data bus only (not tCCD).
  const Cycle col_gate =
      last_column_req_ == p.req.id && p.bursts_left < p.req.bursts
          ? Cycle{0}
          : next_column_cmd_;
  Cycle ready = std::max({bank.next_column, col_gate, next_cmd_slot_,
                          p.req.is_write ? next_write_cmd_ : next_read_cmd_});
  if (data_bus_free_ > lat) {
    ready = std::max(ready, data_bus_free_ - lat);
  }
  const RankState& rank = ranks_[p.req.loc.rank];
  if (rank.Refreshing(ready)) {
    ready = rank.refreshing_until();
  }
  return AlignUp(ready);
}

bool DramChannel::RowWantedByQueue(const DramAddress& loc,
                                   std::uint64_t row) const {
  for (const Pending& q : queue_) {
    if (q.req.loc.SameBankAs(loc) && q.req.loc.row == row) return true;
  }
  return false;
}

DramChannel::Action DramChannel::RequiredAction(const Pending& p,
                                                Cycle& ready_at) const {
  const BankState& bank = banks_[p.bank_idx];
  const RankState& rank = ranks_[p.req.loc.rank];

  if (!bank.RowOpen()) {
    Cycle ready =
        std::max({bank.next_activate, rank.NextActivateAllowed(),
                  next_cmd_slot_});
    if (rank.Refreshing(ready)) ready = rank.refreshing_until();
    ready_at = AlignUp(ready);
    return Action::kActivate;
  }
  if (bank.open_row != p.req.loc.row) {
    Cycle ready = std::max(bank.next_precharge, next_cmd_slot_);
    if (rank.Refreshing(ready)) ready = rank.refreshing_until();
    ready_at = AlignUp(ready);
    return Action::kPrecharge;
  }
  ready_at = ColumnReadyAt(p);
  return Action::kColumn;
}

void DramChannel::IssueColumn(std::size_t idx, Cycle now) {
  const auto& t = cfg_.timing;
  const auto& geo = cfg_.geometry;
  Pending& p = queue_[idx];
  BankState& bank = BankOf(p.req.loc);
  const bool is_write = p.req.is_write;

  const Cycle lat = is_write ? t.tCWD : t.tCAS;
  const Cycle data_start = now + lat;
  const Cycle data_end = data_start + t.tBL;

  data_bus_free_ = data_end;
  next_column_cmd_ = now + t.tCCD;
  last_column_req_ = p.req.id;
  next_cmd_slot_ = now + kCpuCyclesPerDramCycle;

  if (is_write) {
    next_read_cmd_ = std::max(next_read_cmd_, data_end + t.tWTR);
    bank.next_precharge = std::max(bank.next_precharge, data_end + t.tWR);
    counters_.write_bursts++;
    if (last_data_ == LastData::kRead) counters_.turnarounds_rw++;
    last_data_ = LastData::kWrite;
  } else {
    // A later write burst must wait for the bus to reverse after our data.
    const Cycle wr_ok =
        data_end + t.tRTW_bubble > t.tCWD ? data_end + t.tRTW_bubble - t.tCWD
                                          : Cycle{0};
    next_write_cmd_ = std::max(next_write_cmd_, wr_ok);
    bank.next_precharge = std::max(bank.next_precharge, now + t.tRTP);
    counters_.read_bursts++;
    if (last_data_ == LastData::kWrite) counters_.turnarounds_wr++;
    last_data_ = LastData::kRead;
  }
  counters_.data_busy_cycles += t.tBL;
  counters_.bytes_transferred += geo.burst_bytes + geo.sideband_bytes;
  counters_.row_hits++;

  if (!p.first_command_issued) {
    p.first_command_issued = true;
    counters_.queue_wait_cycles += now - p.req.arrival;
  }

  if (observer_ != nullptr) {
    observer_->OnColumnCommand({p.req.loc, is_write, now});
  }

  p.bursts_left--;
  if (p.bursts_left == 0) {
    pending_done_.push_back(
        {p.req.id, p.req.addr, is_write, data_end, p.req.user_tag});
    if (is_write) write_count_--;
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
  }
}

void DramChannel::IssueActivate(Pending& p, Cycle now) {
  const auto& t = cfg_.timing;
  BankState& bank = BankOf(p.req.loc);
  bank.open_row = p.req.loc.row;
  bank.next_column = now + t.tRCD;
  bank.next_precharge = std::max(bank.next_precharge, now + t.tRAS);
  bank.next_activate = now + t.tRC;
  ranks_[p.req.loc.rank].RecordActivate(now);
  next_cmd_slot_ = now + kCpuCyclesPerDramCycle;
  counters_.activates++;
  counters_.row_misses++;
  if (!p.first_command_issued) {
    p.first_command_issued = true;
    counters_.queue_wait_cycles += now - p.req.arrival;
  }
}

void DramChannel::IssuePrecharge(BankState& bank, Cycle now) {
  bank.open_row = BankState::kNoRow;
  bank.next_activate = std::max(bank.next_activate, now + cfg_.timing.tRP);
  next_cmd_slot_ = now + kCpuCyclesPerDramCycle;
  counters_.precharges++;
}

bool DramChannel::MaybeRefresh(Cycle now, Cycle& min_ready) {
  // Fast path: nothing refresh-related can happen before refresh_wake_.
  if (now < refresh_wake_) {
    min_ready = std::min(min_ready, refresh_wake_);
    return false;
  }
  Cycle wake = kNever;
  for (std::uint32_t r = 0; r < ranks_.size(); ++r) {
    RankState& rank = ranks_[r];
    if (rank.Refreshing(now)) {
      wake = std::min(wake, rank.refreshing_until());
      continue;
    }
    if (!rank.RefreshDue(now)) {
      wake = std::min(wake, rank.next_refresh());
      continue;
    }
    // Refresh is due: close all banks, then wait tRP, then refresh.
    Cycle rank_ready = now;
    bool all_closed = true;
    BankState* bank_base =
        &banks_[std::size_t{r} * cfg_.geometry.banks_per_rank];
    for (std::uint32_t b = 0; b < cfg_.geometry.banks_per_rank; ++b) {
      BankState& bank = bank_base[b];
      if (bank.RowOpen()) {
        all_closed = false;
        if (now >= bank.next_precharge) {
          IssuePrecharge(bank, now);
          return true;  // refresh_wake_ stays hot (<= now)
        }
        rank_ready = std::max(rank_ready, bank.next_precharge);
      } else {
        rank_ready = std::max(rank_ready, bank.next_activate);
      }
    }
    if (!all_closed || now < rank_ready) {
      wake = std::min(wake, AlignUp(std::max(rank_ready, now + 1)));
      continue;
    }
    rank.StartRefresh(now);
    for (std::uint32_t b = 0; b < cfg_.geometry.banks_per_rank; ++b) {
      bank_base[b].next_activate =
          std::max(bank_base[b].next_activate, now + cfg_.timing.tRFC);
    }
    next_cmd_slot_ = now + kCpuCyclesPerDramCycle;
    counters_.refreshes++;
    return true;
  }
  refresh_wake_ = wake;
  min_ready = std::min(min_ready, wake);
  return false;
}

void DramChannel::Tick(Cycle now, std::vector<DramCompletion>& done) {
  // Deliver finished data movements.
  if (!pending_done_.empty()) {
    for (std::size_t i = 0; i < pending_done_.size();) {
      if (pending_done_[i].done <= now) {
        done.push_back(pending_done_[i]);
        pending_done_.erase(pending_done_.begin() +
                            static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }

  if (now % kCpuCyclesPerDramCycle != 0) return;
  if (now < next_cmd_slot_ || now < sleep_until_) return;

  Cycle min_ready = kNever;
  if (MaybeRefresh(now, min_ready)) return;

  if (queue_.empty()) {
    sleep_until_ = min_ready == kNever ? now + cfg_.timing.tREFI : min_ready;
    return;
  }

  const Cycle starve = cfg_.controller.starvation_cycles;

  // Anti-starvation: once the oldest request (queue front, arrival order)
  // has waited past the threshold, issue its next command ahead of row
  // hits — but only when it can actually issue; blocking the channel on a
  // not-yet-ready command would serialize the banks.
  if (queue_.front().req.arrival + starve < now) {
    Pending& p = queue_.front();
    Cycle ready = kNever;
    const Action act = RequiredAction(p, ready);
    if (ready <= now) {
      if (act == Action::kColumn) {
        IssueColumn(0, now);
      } else if (act == Action::kActivate) {
        IssueActivate(p, now);
      } else {
        IssuePrecharge(banks_[p.bank_idx], now);
      }
      return;
    }
    min_ready = std::min(min_ready, ready);
    // Fall through: serve other ready work while the starved head waits on
    // its bank timing.
  }

  // Writes are posted: demand reads get priority until writes pile up past
  // the watermark (standard write-drain policy; keeps read latency low
  // without starving fills/writebacks/update traffic).
  const bool drain_writes =
      2 * write_count_ > cfg_.controller.queue_depth;

  std::size_t open_pick = queue_.size();
  Action open_action = Action::kNone;
  std::size_t write_pick = queue_.size();

  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Pending& p = queue_[i];
    Cycle ready = kNever;
    const Action act = RequiredAction(p, ready);

    if (act == Action::kColumn && ready <= now) {
      if (!p.req.is_write || drain_writes) {
        // FR-FCFS: the oldest ready row-hit (read-first) wins.
        IssueColumn(i, now);
        return;
      }
      if (write_pick == queue_.size()) write_pick = i;
      continue;
    }
    if (act == Action::kPrecharge) {
      // Do not close a row another queued transaction still wants.
      const BankState& bank = banks_[p.bank_idx];
      if (RowWantedByQueue(p.req.loc, bank.open_row)) continue;
    }

    min_ready = std::min(min_ready, ready);
    if (ready > now) continue;
    if (act != Action::kColumn && open_pick == queue_.size()) {
      open_pick = i;
      open_action = act;
    }
  }

  if (write_pick < queue_.size()) {
    IssueColumn(write_pick, now);
    return;
  }
  if (open_pick < queue_.size()) {
    if (open_action == Action::kActivate) {
      IssueActivate(queue_[open_pick], now);
    } else {
      IssuePrecharge(banks_[queue_[open_pick].bank_idx], now);
    }
    return;
  }

  sleep_until_ = min_ready == kNever
                     ? now + kCpuCyclesPerDramCycle
                     : std::max(min_ready, now + kCpuCyclesPerDramCycle);
}

Cycle DramChannel::NextEventHint(Cycle now) const {
  Cycle next = kNever;
  for (const auto& c : pending_done_) next = std::min(next, c.done);
  if (!queue_.empty()) {
    next = std::min(next, std::max({now + 1, next_cmd_slot_, sleep_until_}));
  } else {
    // Idle: the only future work is refresh bookkeeping.
    for (const auto& r : ranks_) {
      next = std::min(next, r.Refreshing(now) ? r.refreshing_until()
                                              : r.next_refresh());
    }
  }
  return next;
}

}  // namespace redcache
