#include "dram/timing.hpp"

namespace redcache {

DramConfig HbmCacheConfig(std::uint64_t capacity_bytes) {
  DramConfig cfg;
  cfg.name = "hbm";
  // Table I, DRAM cache: tRCD:44 tCAS:44 tCCD:16 tWTR:31 tWR:4 tRTP:46
  // tBL:10 tCWD:61 tRP:44 tRRD:16 tRAS:112 tRC:271 tFAW:181 (CPU cycles).
  cfg.timing = DramTimingParams{};  // defaults match the DRAM-cache column
  cfg.geometry.channels = 4;
  // Table I lists "8 rank/channel, 16 banks/channel"; we model 2 ranks of
  // 16 banks each per channel, which preserves the bank-level parallelism
  // the scheduler exploits while keeping the geometry self-consistent.
  cfg.geometry.ranks_per_channel = 2;
  cfg.geometry.banks_per_rank = 16;
  cfg.geometry.row_bytes = 2048;
  cfg.geometry.capacity_bytes = capacity_bytes;
  cfg.geometry.bus_bits = 128;
  cfg.geometry.burst_bytes = 64;
  cfg.geometry.sideband_bytes = kTagEccBytes;  // TAD: tag rides in ECC lanes
  return cfg;
}

DramConfig MainMemoryConfig(std::uint64_t capacity_bytes) {
  DramConfig cfg;
  cfg.name = "ddr4";
  cfg.timing = DramTimingParams{};
  cfg.timing.tCCD = 61;  // Table I main-memory column
  cfg.timing.tCWD = 44;
  cfg.geometry.channels = 2;
  cfg.geometry.ranks_per_channel = 2;
  cfg.geometry.banks_per_rank = 8;
  cfg.geometry.row_bytes = 2048;
  cfg.geometry.capacity_bytes = capacity_bytes;
  cfg.geometry.bus_bits = 64;
  cfg.geometry.burst_bytes = 64;
  cfg.geometry.sideband_bytes = 0;
  return cfg;
}

}  // namespace redcache
