// DRAM transaction types exchanged between cache controllers and DramSystem.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "dram/address.hpp"

namespace redcache {

/// A read or write transaction against one device.
struct DramRequest {
  RequestId id = 0;          ///< assigned by DramSystem::Enqueue
  Addr addr = 0;             ///< block-aligned physical address
  DramAddress loc;           ///< filled by DramSystem::Enqueue
  bool is_write = false;
  std::uint32_t bursts = 1;  ///< column-command count (64 B payload each)
  Cycle arrival = 0;
  /// Originating tenant in a multi-tenant mix (0 for solo runs).
  std::uint16_t tenant = 0;
  /// Opaque tag the owner uses to match completions to its own state.
  std::uint64_t user_tag = 0;
};

/// Delivered by DramSystem when a transaction's data movement finishes.
struct DramCompletion {
  RequestId id = 0;
  Addr addr = 0;
  bool is_write = false;
  Cycle done = 0;
  std::uint16_t tenant = 0;
  std::uint64_t user_tag = 0;
};

/// Notification of every column command the scheduler issues. The RedCache
/// RCU manager observes writes to detect "a block write to the same index
/// (channel, rank, bank, row)" — its cheapest drain opportunity.
struct IssuedColumnCommand {
  DramAddress loc;
  bool is_write = false;
  Cycle cycle = 0;
};

/// Observer interface for issued column commands.
class ColumnCommandObserver {
 public:
  virtual ~ColumnCommandObserver() = default;
  virtual void OnColumnCommand(const IssuedColumnCommand& cmd) = 0;
};

}  // namespace redcache
