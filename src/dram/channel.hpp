// One DRAM channel: transaction queue, FR-FCFS command scheduler, banks,
// shared command/data buses and read<->write turnaround tracking.
//
// The channel is tick-driven at CPU-cycle granularity but self-limits work:
// when nothing can issue it computes a wake-up cycle so the simulator can
// fast-forward through stalls.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "dram/bank.hpp"
#include "dram/request.hpp"
#include "dram/timing.hpp"

namespace redcache {

/// Raw event counters a channel accumulates; the energy model and the
/// bandwidth-efficiency benches consume these.
struct ChannelCounters {
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t read_bursts = 0;
  std::uint64_t write_bursts = 0;
  std::uint64_t row_hits = 0;         ///< column commands issued
  std::uint64_t row_misses = 0;       ///< activates (row conflicts/misses)
  std::uint64_t data_busy_cycles = 0; ///< CPU cycles the data bus is driven
  std::uint64_t bytes_transferred = 0;  ///< payload + sideband bytes
  std::uint64_t turnarounds_rw = 0;   ///< read burst followed by write burst
  std::uint64_t turnarounds_wr = 0;   ///< write burst followed by read burst
  std::uint64_t transactions = 0;
  std::uint64_t queue_wait_cycles = 0;  ///< sum of (first command - arrival)
};

class DramChannel {
 public:
  DramChannel(const DramConfig& cfg, std::uint32_t channel_index);

  bool CanAccept() const { return queue_.size() < cfg_.controller.queue_depth; }
  bool QueueEmpty() const { return queue_.empty() && pending_done_.empty(); }
  std::size_t QueueSize() const { return queue_.size(); }

  /// Enqueue a transaction (caller checked CanAccept).
  void Enqueue(const DramRequest& req);

  /// Advance to CPU cycle `now`; may issue at most one command per DRAM
  /// clock. Completed transactions are appended to `done`.
  void Tick(Cycle now, std::vector<DramCompletion>& done);

  /// True while the addressed rank is executing a refresh — RedCache's
  /// bypass-on-refresh checks this before routing a request to the HBM.
  bool RankRefreshing(std::uint32_t rank, Cycle now) const {
    return ranks_[rank].Refreshing(now);
  }

  void SetObserver(ColumnCommandObserver* obs) { observer_ = obs; }

  const ChannelCounters& counters() const { return counters_; }

  /// Earliest future cycle at which calling Tick could have an effect.
  Cycle NextEventHint(Cycle now) const;

 private:
  struct Pending {
    DramRequest req;
    std::uint32_t bursts_left;
    std::uint32_t bank_idx;  ///< cached rank*banks_per_rank + bank
    bool first_command_issued = false;
  };
  enum class Action { kNone, kColumn, kActivate, kPrecharge };

  static constexpr Cycle kNever = ~Cycle{0};

  /// Next required command for `p` and its earliest legal issue cycle.
  Action RequiredAction(const Pending& p, Cycle& ready_at) const;
  Cycle ColumnReadyAt(const Pending& p) const;

  void IssueColumn(std::size_t idx, Cycle now);
  void IssueActivate(Pending& p, Cycle now);
  void IssuePrecharge(BankState& bank, Cycle now);
  /// Handles refresh duty. Returns true if a command slot was consumed.
  bool MaybeRefresh(Cycle now, Cycle& min_ready);

  bool RowWantedByQueue(const DramAddress& loc, std::uint64_t row) const;

  BankState& BankOf(const DramAddress& a) {
    return banks_[a.rank * cfg_.geometry.banks_per_rank + a.bank];
  }
  const BankState& BankOf(const DramAddress& a) const {
    return banks_[a.rank * cfg_.geometry.banks_per_rank + a.bank];
  }

  DramConfig cfg_;
  std::vector<BankState> banks_;
  std::vector<RankState> ranks_;
  std::vector<Pending> queue_;
  std::vector<DramCompletion> pending_done_;  ///< data still on the bus

  // Channel-shared bus state.
  Cycle next_cmd_slot_ = 0;    ///< command bus: one command per DRAM clock
  Cycle next_column_cmd_ = 0;  ///< tCCD spacing between column commands
  /// Consecutive bursts of one multi-burst transaction stream at data-bus
  /// rate (burst-chop/BL-extension semantics) instead of paying tCCD each.
  RequestId last_column_req_ = 0;
  Cycle next_read_cmd_ = 0;    ///< write->read turnaround (tWTR)
  Cycle next_write_cmd_ = 0;   ///< read->write turnaround (bus reversal)
  Cycle data_bus_free_ = 0;
  enum class LastData { kNone, kRead, kWrite } last_data_ = LastData::kNone;

  Cycle sleep_until_ = 0;  ///< no scheduling work possible before this
  Cycle refresh_wake_ = 0;  ///< earliest cycle refresh bookkeeping matters
  std::uint32_t write_count_ = 0;  ///< writes currently in the queue

  ChannelCounters counters_;
  ColumnCommandObserver* observer_ = nullptr;
};

}  // namespace redcache
