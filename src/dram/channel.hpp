// One DRAM channel: transaction queue, FR-FCFS command scheduler, banks,
// shared command/data buses and read<->write turnaround tracking.
//
// The channel is tick-driven at CPU-cycle granularity but self-limits work:
// when nothing can issue it computes a wake-up cycle so the simulator can
// fast-forward through stalls.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "dram/bank.hpp"
#include "dram/request.hpp"
#include "dram/timing.hpp"

namespace redcache {

/// Raw event counters a channel accumulates; the energy model and the
/// bandwidth-efficiency benches consume these.
struct ChannelCounters {
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t read_bursts = 0;
  std::uint64_t write_bursts = 0;
  std::uint64_t row_hits = 0;         ///< column commands issued
  std::uint64_t row_misses = 0;       ///< activates (row conflicts/misses)
  std::uint64_t data_busy_cycles = 0; ///< CPU cycles the data bus is driven
  std::uint64_t bytes_transferred = 0;  ///< payload + sideband bytes
  std::uint64_t turnarounds_rw = 0;   ///< read burst followed by write burst
  std::uint64_t turnarounds_wr = 0;   ///< write burst followed by read burst
  std::uint64_t transactions = 0;
  std::uint64_t queue_wait_cycles = 0;  ///< sum of (first command - arrival)
};

class DramChannel {
 public:
  DramChannel(const DramConfig& cfg, std::uint32_t channel_index);

  bool CanAccept() const { return live_count_ < cfg_.controller.queue_depth; }
  bool QueueEmpty() const { return live_count_ == 0 && pending_done_.empty(); }
  std::size_t QueueSize() const { return live_count_; }

  /// Enqueue a transaction (caller checked CanAccept).
  void Enqueue(const DramRequest& req);

  /// Advance to CPU cycle `now`; may issue at most one command per DRAM
  /// clock. Completed transactions are appended to `done`.
  void Tick(Cycle now, std::vector<DramCompletion>& done);

  /// True while the addressed rank is executing a refresh — RedCache's
  /// bypass-on-refresh checks this before routing a request to the HBM.
  bool RankRefreshing(std::uint32_t rank, Cycle now) const {
    return ranks_[rank].Refreshing(now);
  }

  void SetObserver(ColumnCommandObserver* obs) { observer_ = obs; }

  const ChannelCounters& counters() const { return counters_; }

  /// Earliest future cycle at which calling Tick could have an effect.
  Cycle NextEventHint(Cycle now) const;

  /// Wake bound valid immediately after an Enqueue, before any tick: the
  /// scheduler cannot act before the command-bus slot frees, and pending
  /// data deliveries are the only other effect. Unlike NextEventHint this
  /// may be in the past ("due now") — the enqueue may precede this visit's
  /// device tick, and the new request could issue at the current cycle.
  Cycle EnqueueWake() const {
    return std::min(pending_done_min_, next_cmd_slot_);
  }

 private:
  /// Queue entries live in a fixed slot pool (`slots_`, sized queue_depth)
  /// threaded into an arrival-order doubly-linked list, so retiring a
  /// transaction is O(1) instead of an O(n) mid-vector erase while the
  /// FR-FCFS scan still walks strict arrival order.
  struct Pending {
    DramRequest req;
    std::uint32_t bursts_left;
    std::uint32_t bank_idx;  ///< cached rank*banks_per_rank + bank
    bool first_command_issued = false;
    std::int32_t prev = -1;  ///< arrival-order list links (slot indices)
    std::int32_t next = -1;
  };
  enum class Action { kNone, kColumn, kActivate, kPrecharge };

  static constexpr Cycle kNever = ~Cycle{0};

// Hot path: called for every queued transaction on every command slot; the
// call overhead alone is measurable in the FR-FCFS scan (see
// BM_DramChannelLoadedQueue), so force it into Tick.
#if defined(__GNUC__) || defined(__clang__)
#define REDCACHE_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define REDCACHE_ALWAYS_INLINE inline
#endif
  /// Next required command for `p` and its earliest legal issue cycle.
  REDCACHE_ALWAYS_INLINE Action RequiredAction(const Pending& p,
                                               Cycle& ready_at) const;
  Cycle ComputeColumnReady(std::uint32_t bank_idx, std::uint32_t rank,
                           bool is_write, Cycle col_gate) const;
  Cycle ComputeActivateReady(std::uint32_t bank_idx, std::uint32_t rank) const;
  Cycle ComputePrechargeReady(std::uint32_t bank_idx,
                              std::uint32_t rank) const;

  void IssueColumn(std::int32_t slot, Cycle now);
  void IssueActivate(Pending& p, Cycle now);
  void IssuePrecharge(std::uint32_t bank_idx, Cycle now);
  /// Handles refresh duty. Returns true if a command slot was consumed.
  bool MaybeRefresh(Cycle now, Cycle& min_ready);

  /// Unlink `slot` from the arrival list and return it to the free pool.
  void RemoveFromQueue(std::int32_t slot);

  // Incrementally-maintained count of queued transactions per (bank, row):
  // the scheduler's "may I close this row" test used to rescan the whole
  // queue for every precharge candidate (O(n^2) per command slot).
  void AddRowDemand(std::uint32_t bank_idx, std::uint64_t row);
  void SubRowDemand(std::uint32_t bank_idx, std::uint64_t row);
  bool RowWanted(std::uint32_t bank_idx, std::uint64_t row) const;

  BankState& BankOf(const DramAddress& a) {
    return banks_[a.rank * cfg_.geometry.banks_per_rank + a.bank];
  }
  const BankState& BankOf(const DramAddress& a) const {
    return banks_[a.rank * cfg_.geometry.banks_per_rank + a.bank];
  }

  DramConfig cfg_;
  std::vector<BankState> banks_;
  std::vector<RankState> ranks_;
  std::vector<Pending> slots_;            ///< fixed pool, queue_depth entries
  std::vector<std::int32_t> free_slots_;  ///< unused slot indices (stack)
  std::int32_t head_ = -1;                ///< oldest queued transaction
  std::int32_t tail_ = -1;                ///< newest queued transaction
  std::uint32_t live_count_ = 0;
  /// Distinct rows demanded by queued transactions, per bank. Each inner
  /// vector is tiny (bounded by queued transactions on that bank).
  struct RowDemand {
    std::uint64_t row;
    std::uint32_t count;
  };
  std::vector<std::vector<RowDemand>> row_demand_;
  std::vector<DramCompletion> pending_done_;  ///< data still on the bus
  Cycle pending_done_min_ = ~Cycle{0};  ///< earliest pending_done_ delivery

  /// Ready times are pure functions of device/bus state, which mutates only
  /// when a command issues (Issue*/StartRefresh). The FR-FCFS scan asks the
  /// same per-bank questions for every queued transaction on a bank — often
  /// across many consecutive slots — so the answers are memoized per bank.
  ///
  /// Invalidation is by monotone stamps rather than a single global epoch:
  /// each issued command stamps only the state it mutated (its bank, its
  /// rank, the shared column/data bus), and a memo entry is valid while its
  /// recorded stamp still equals the max of the stamps its inputs depend on.
  /// A column command elsewhere therefore does not flush activate/precharge
  /// answers for unrelated banks.
  ///
  /// The cached values deliberately omit the `next_cmd_slot_` term: Tick
  /// returns before scanning when `now < next_cmd_slot_`, so at scan time
  /// `next_cmd_slot_ <= now` and (both being slot-aligned) max()-ing it in
  /// changes neither the issue/wait decision nor any min_ready value that
  /// is actually consulted (those are all > now).
  struct ReadyMemo {
    std::uint64_t act_sig = kNeverSig;
    std::uint64_t pre_sig = kNeverSig;
    std::uint64_t col_r_sig = kNeverSig;
    std::uint64_t col_w_sig = kNeverSig;
    Cycle act = 0;
    Cycle pre = 0;
    Cycle col_r = 0;
    Cycle col_w = 0;
  };
  static constexpr std::uint64_t kNeverSig = ~std::uint64_t{0};
  mutable std::vector<ReadyMemo> ready_memo_;
  std::vector<std::uint64_t> bank_stamp_;  ///< per bank, bumped on issue
  std::vector<std::uint64_t> rank_stamp_;  ///< per rank (tRRD/tFAW/refresh)
  std::uint64_t col_stamp_ = 0;   ///< shared column/data-bus state
  std::uint64_t stamp_counter_ = 0;

  // Channel-shared bus state.
  Cycle next_cmd_slot_ = 0;    ///< command bus: one command per DRAM clock
  Cycle next_column_cmd_ = 0;  ///< tCCD spacing between column commands
  /// Consecutive bursts of one multi-burst transaction stream at data-bus
  /// rate (burst-chop/BL-extension semantics) instead of paying tCCD each.
  RequestId last_column_req_ = 0;
  Cycle next_read_cmd_ = 0;    ///< write->read turnaround (tWTR)
  Cycle next_write_cmd_ = 0;   ///< read->write turnaround (bus reversal)
  Cycle data_bus_free_ = 0;
  enum class LastData { kNone, kRead, kWrite } last_data_ = LastData::kNone;

  Cycle sleep_until_ = 0;  ///< no scheduling work possible before this
  Cycle refresh_wake_ = 0;  ///< earliest cycle refresh bookkeeping matters
  /// Idle-branch NextEventHint memo: min over ranks of refreshing_until /
  /// next_refresh. Valid while the stamp matches stamp_counter_ and
  /// now < idle_hint_ (see NextEventHint for why the value is constant on
  /// that window). kNeverSig marks "never computed".
  mutable Cycle idle_hint_ = 0;
  mutable std::uint64_t idle_hint_stamp_ = kNeverSig;
  std::uint32_t write_count_ = 0;  ///< writes currently in the queue

  ChannelCounters counters_;
  ColumnCommandObserver* observer_ = nullptr;

  // Trace identity (obs/trace.hpp): which Perfetto process and track group
  // this channel's command events render under. Fixed at construction.
  std::uint16_t channel_index_ = 0;
  std::uint8_t trace_device_ = 0;
};

}  // namespace redcache
