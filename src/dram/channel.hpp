// One DRAM channel: transaction queue, FR-FCFS command scheduler, banks,
// shared command/data buses and read<->write turnaround tracking.
//
// The channel is tick-driven at CPU-cycle granularity but self-limits work:
// when nothing can issue it computes a wake-up cycle so the simulator can
// fast-forward through stalls.
//
// Hot-path layout (DESIGN.md §12): all device timing state lives in flat
// structure-of-arrays lanes (TimingLanes), the transaction queue is a set
// of parallel arrival-order arrays scanned with dense indices, and the
// FR-FCFS scan is two-level — a per-bank earliest-ready pre-pass over the
// lanes first, then an arrival-order walk restricted to banks that can
// actually issue at `now`.
#pragma once

#include <cstdint>
#include <vector>

#include "common/serialize.hpp"
#include "common/types.hpp"
#include "dram/request.hpp"
#include "dram/timing.hpp"
#include "dram/timing_lanes.hpp"

namespace redcache {

/// Raw event counters a channel accumulates; the energy model and the
/// bandwidth-efficiency benches consume these.
struct ChannelCounters {
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t read_bursts = 0;
  std::uint64_t write_bursts = 0;
  std::uint64_t row_hits = 0;         ///< column commands issued
  std::uint64_t row_misses = 0;       ///< activates (row conflicts/misses)
  std::uint64_t data_busy_cycles = 0; ///< CPU cycles the data bus is driven
  std::uint64_t bytes_transferred = 0;  ///< payload + sideband bytes
  std::uint64_t turnarounds_rw = 0;   ///< read burst followed by write burst
  std::uint64_t turnarounds_wr = 0;   ///< write burst followed by read burst
  std::uint64_t transactions = 0;
  std::uint64_t queue_wait_cycles = 0;  ///< sum of (first command - arrival)
};

class DramChannel {
 public:
  DramChannel(const DramConfig& cfg, std::uint32_t channel_index);

  bool CanAccept() const { return QueueSize() < cfg_.controller.queue_depth; }
  bool QueueEmpty() const { return q_slot_.empty() && pending_done_.empty(); }
  std::size_t QueueSize() const { return q_slot_.size(); }

  /// Enqueue a transaction (caller checked CanAccept).
  void Enqueue(const DramRequest& req);

  /// Advance to CPU cycle `now`; may issue at most one command per DRAM
  /// clock. Completed transactions are appended to `done`.
  void Tick(Cycle now, std::vector<DramCompletion>& done);

  /// True while the addressed rank is executing a refresh — RedCache's
  /// bypass-on-refresh checks this before routing a request to the HBM.
  bool RankRefreshing(std::uint32_t rank, Cycle now) const {
    return lanes_.Refreshing(rank, now);
  }

  void SetObserver(ColumnCommandObserver* obs) { observer_ = obs; }

  const ChannelCounters& counters() const { return counters_; }

  /// Earliest future cycle at which calling Tick could have an effect.
  Cycle NextEventHint(Cycle now) const;

  /// Wake bound valid immediately after an Enqueue, before any tick: the
  /// scheduler cannot act before both the command-bus slot frees and the
  /// sleep target Enqueue just refreshed (Tick's early-out gates on both,
  /// so no command can issue earlier by construction); pending data
  /// deliveries are the only other effect. Unlike NextEventHint this may be
  /// in the past ("due now") — the enqueue may precede this visit's device
  /// tick, and the new request could issue at the current cycle.
  Cycle EnqueueWake() const {
    return std::min(pending_done_min_, std::max(next_cmd_slot_, sleep_until_));
  }

  /// Checkpointing: timing lanes, the transaction queue with its slot pool
  /// (slot indices are identity — the continuation test compares them), the
  /// in-flight data, pacing state and counters. The derived scan state (row
  /// demand, active-bank set, packed summaries, memoized idle hint) is
  /// rebuilt from the restored queue.
  void Snapshot(ser::Writer& w) const;
  void Restore(ser::Reader& r);

 private:
  /// Cold per-transaction state, held in a fixed slot pool (queue_depth
  /// entries, free-list recycled). The scan never touches this — it walks
  /// the hot q_* lanes below; a slot is consulted only when a command
  /// actually issues (trace identity, burst countdown, completion payload).
  struct Pending {
    DramRequest req;
    std::uint32_t bursts_left = 0;
    bool first_command_issued = false;
  };
  enum class Action { kNone, kColumn, kActivate, kPrecharge };

  static constexpr Cycle kNever = ~Cycle{0};

  /// Next required command for queue position `i` and its earliest legal
  /// issue cycle — a branch-light select over the timing lanes.
  Action RequiredAction(std::size_t i, Cycle& ready_at) const;

  /// Per-bank earliest possibly-ready pre-pass: for every bank with queued
  /// demand, the exact minimum over the ready cycles its transactions would
  /// report. Banks due at `now` are flagged in bank_due_ (returning the
  /// flagged count); the rest fold into `min_ready` so the arrival-order
  /// scan can skip them wholesale. Branchless: each bank is one packed
  /// (selector, bank-local gate) word (bank_summary_, maintained
  /// incrementally at mutation sites) combined with a per-scan LUT of the
  /// rank/shared terms — pure load / max / compare, no per-bank branches.
  std::uint32_t SummarizeBanks(Cycle now, Cycle& min_ready);

  /// Recompute bank_summary_[b] from the current demand and lane state.
  /// Must be called after any mutation that changes the bank's mode or its
  /// bank-local gate: commands on the bank, demand add/remove, refresh
  /// (raises act gates), and continuation hand-over.
  void RefreshBankSummary(std::uint32_t bank_idx);

  void IssueColumn(std::size_t i, Cycle now);
  void IssueActivate(std::size_t i, Cycle now);
  void IssuePrecharge(std::uint32_t bank_idx, Cycle now);
  /// Handles refresh duty. Returns true if a command slot was consumed.
  bool MaybeRefresh(Cycle now, Cycle& min_ready);

  /// Remove queue position `i` (compacting the arrival-order lanes) and
  /// return its slot to the free pool.
  void RemoveFromQueue(std::size_t i);

  // Incrementally-maintained per-(bank, row) demand, split by direction:
  // the scheduler's "may I close this row" test and the per-bank summary's
  // "which column directions are represented" test both read it.
  void AddRowDemand(std::uint32_t bank_idx, std::uint64_t row, bool is_write);
  void SubRowDemand(std::uint32_t bank_idx, std::uint64_t row, bool is_write);
  struct RowDemand {
    std::uint64_t row;
    std::uint32_t reads;
    std::uint32_t writes;
  };
  const RowDemand* FindDemand(std::uint32_t bank_idx, std::uint64_t row) const;

  // Visit-path-hot state, grouped at the object head so Tick's early-outs
  // and NextEventHint (which run for every channel on every event-loop
  // visit, busy or idle) touch as few cache lines as possible.
  Cycle pending_done_min_ = ~Cycle{0};  ///< earliest pending_done_ delivery
  Cycle next_cmd_slot_ = 0;  ///< command bus: one command per DRAM clock
  Cycle sleep_until_ = 0;    ///< no scheduling work possible before this
  Cycle refresh_wake_ = 0;   ///< earliest cycle refresh bookkeeping matters
  /// Idle-branch NextEventHint memo: min over ranks of refresh_until /
  /// next_refresh. Valid while refresh_epoch_ matches and now < idle_hint_
  /// (see NextEventHint for why the value is constant on that window).
  mutable Cycle idle_hint_ = 0;
  mutable std::uint64_t idle_hint_epoch_ = ~std::uint64_t{0};
  std::uint64_t refresh_epoch_ = 0;  ///< bumped on every StartRefresh
  /// Queue lane of cold-state indices into slots_; declared here (not with
  /// its sibling lanes below) because its header's empty() test is on the
  /// every-visit path.
  std::vector<std::int32_t> q_slot_;
  std::vector<DramCompletion> pending_done_;  ///< data still on the bus

  DramConfig cfg_;
  TimingLanes lanes_;

  // Arrival-order queue lanes (structure-of-arrays, compacted on removal):
  // everything the FR-FCFS scan reads per transaction, contiguous.
  std::vector<std::uint32_t> q_bank_;  ///< rank * banks_per_rank + bank
  std::vector<std::uint32_t> q_rank_;
  std::vector<std::uint64_t> q_row_;
  std::vector<std::uint8_t> q_write_;
  std::vector<Cycle> q_arrival_;       ///< anti-starvation reads the head's

  std::vector<Pending> slots_;            ///< fixed pool, queue_depth entries
  std::vector<std::int32_t> free_slots_;  ///< unused slot indices (stack)

  /// Distinct rows demanded by queued transactions, per bank. Each inner
  /// vector is tiny (bounded by queued transactions on that bank). Only
  /// consulted when a bank's open row changes — the hot pre-pass reads the
  /// flat open_reads_/open_writes_ lanes below instead.
  std::vector<std::vector<RowDemand>> row_demand_;
  std::vector<std::uint32_t> demand_count_;  ///< queued transactions per bank
  /// Queued demand on each bank's *currently open* row, split by direction
  /// (zero while the bank is closed). Incrementally maintained at demand
  /// add/remove and at activate/precharge, so the per-bank pre-pass and the
  /// "may I close this row" guard are flat-lane loads, not demand-list
  /// walks.
  std::vector<std::uint32_t> open_reads_;
  std::vector<std::uint32_t> open_writes_;
  std::vector<std::uint8_t> bank_due_;  ///< scratch: bank can issue at `now`

  /// Banks with demand_count_ > 0, unordered (swap-removed), with per-bank
  /// positions. The summary pre-pass walks this instead of all banks, so a
  /// near-empty queue costs O(queued banks), not O(banks) — stale bank_due_
  /// entries of inactive banks are never read because the arrival scan only
  /// consults bank_due_[q_bank_[i]], and a queued bank is active.
  std::vector<std::uint32_t> active_banks_;
  std::vector<std::int32_t> active_pos_;  ///< per bank: index, -1 inactive

  /// Packed per-bank summary word: (bank-local gate << 3) | selector. The
  /// selector picks which rank/shared term completes the max-chain (see
  /// SummarizeBanks): 0 none/empty, 1 activate, 2 precharge, 3 + dirmask
  /// column (dirmask bit0 = reads, bit1 = writes, continuation excluded —
  /// it is folded in separately from cont_shared).
  std::vector<std::uint64_t> bank_summary_;
  std::vector<std::uint32_t> rank_lut_base_;  ///< per bank: rank index * 8
  std::vector<Cycle> summary_lut_;  ///< scratch: 8 rank/shared terms per rank

  /// Burst continuation: the transaction that issued the previous column
  /// command, if it still has bursts queued. Its follow-up bursts bypass
  /// tCCD (ContinuationReady), so the per-bank summary and the scan treat
  /// it specially. Slot index, -1 when none.
  std::int32_t cont_slot_ = -1;
  std::uint32_t cont_bank_ = 0;
  std::uint64_t cont_row_ = 0;
  bool cont_write_ = false;

  /// Direction of the last data burst (turnaround counters only; the
  /// turnaround *timing* lives in the shared lanes).
  enum class LastData { kNone, kRead, kWrite } last_data_ = LastData::kNone;
  std::uint32_t write_count_ = 0;  ///< writes currently in the queue

  ChannelCounters counters_;
  ColumnCommandObserver* observer_ = nullptr;

  // Trace identity (obs/trace.hpp): which Perfetto process and track group
  // this channel's command events render under. Fixed at construction.
  std::uint16_t channel_index_ = 0;
  std::uint8_t trace_device_ = 0;
};

}  // namespace redcache
