// Per-bank and per-rank DRAM state tracking.
//
// Each bank records its open row and the earliest CPU cycle at which each
// command class may legally issue; the channel updates these as commands
// are scheduled (DRAMSim-style "earliest issue time" bookkeeping).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "dram/timing.hpp"

namespace redcache {

struct BankState {
  static constexpr std::uint64_t kNoRow = ~std::uint64_t{0};

  std::uint64_t open_row = kNoRow;
  Cycle next_activate = 0;
  Cycle next_column = 0;     ///< earliest read/write command (covers tRCD)
  Cycle next_precharge = 0;

  bool RowOpen() const { return open_row != kNoRow; }
};

/// Rank-level constraints: tRRD/tFAW activate pacing and refresh windows.
class RankState {
 public:
  void Init(const DramTimingParams& t, std::uint32_t rank_index) {
    timing_ = &t;
    // Stagger refresh across ranks so they do not all block simultaneously.
    next_refresh_ = t.tREFI / 2 + rank_index * (t.tREFI / 8);
  }

  /// Earliest cycle an activate may issue on this rank.
  Cycle NextActivateAllowed() const {
    Cycle allowed = next_act_rrd_;
    // Window entries are stored biased by +1 so an activate at cycle 0 is
    // distinguishable from an empty slot.
    if (act_window_[3] != 0) {
      allowed = std::max(allowed, (act_window_[3] - 1) + timing_->tFAW);
    }
    return allowed;
  }

  void RecordActivate(Cycle now) {
    next_act_rrd_ = now + timing_->tRRD;
    // Slide the four-activate window (biased timestamps, see above).
    act_window_[3] = act_window_[2];
    act_window_[2] = act_window_[1];
    act_window_[1] = act_window_[0];
    act_window_[0] = now + 1;
  }

  bool RefreshDue(Cycle now) const { return now >= next_refresh_; }
  bool Refreshing(Cycle now) const { return now < refreshing_until_; }
  Cycle refreshing_until() const { return refreshing_until_; }
  Cycle next_refresh() const { return next_refresh_; }

  void StartRefresh(Cycle now) {
    refreshing_until_ = now + timing_->tRFC;
    next_refresh_ += timing_->tREFI;
    if (next_refresh_ <= now) next_refresh_ = now + timing_->tREFI;
  }

 private:
  const DramTimingParams* timing_ = nullptr;
  Cycle next_act_rrd_ = 0;
  std::array<Cycle, 4> act_window_{};  // newest first; 0 == unused
  Cycle next_refresh_ = 0;
  Cycle refreshing_until_ = 0;
};

}  // namespace redcache
