// DRAM timing and geometry parameters.
//
// All values are in CPU cycles at 3.2 GHz, exactly as the paper's Table I
// reports them. The devices are clocked at 1600 MHz (DDR), i.e. one DRAM
// command slot every kCpuCyclesPerDramCycle CPU cycles.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace redcache {

/// CPU (3.2 GHz) to DRAM (1600 MHz) clock ratio.
inline constexpr Cycle kCpuCyclesPerDramCycle = 2;

/// Per-device timing constraints, CPU cycles (Table I).
struct DramTimingParams {
  Cycle tRCD = 44;   ///< activate -> column command
  Cycle tCAS = 44;   ///< read command -> first data beat (aka tCL)
  Cycle tCCD = 16;   ///< column command -> column command
  Cycle tWTR = 31;   ///< end of write data -> read command (turnaround)
  Cycle tWR = 4;     ///< end of write data -> precharge
  Cycle tRTP = 46;   ///< read command -> precharge
  Cycle tBL = 10;    ///< data burst duration on the bus
  Cycle tCWD = 61;   ///< write command -> first data beat (aka tCWL)
  Cycle tRP = 44;    ///< precharge -> activate
  Cycle tRRD = 16;   ///< activate -> activate, different banks of a rank
  Cycle tRAS = 112;  ///< activate -> precharge, same bank
  Cycle tRC = 271;   ///< activate -> activate, same bank
  Cycle tFAW = 181;  ///< window for at most four activates per rank
  // Refresh is not listed in Table I; standard DDR4 values (7.8 us / 350 ns
  // at 3.2 GHz). RedCache's bypass-on-refresh optimization keys on these.
  Cycle tREFI = 24960;  ///< refresh interval per rank
  Cycle tRFC = 1120;    ///< refresh cycle duration (rank blocked)
  /// Extra bus-turnaround bubble between a read burst ending and a write
  /// burst starting on the same data bus (two DRAM clocks).
  Cycle tRTW_bubble = 2 * kCpuCyclesPerDramCycle;
};

/// Device geometry. `rows_per_bank` is derived from capacity.
struct DramGeometry {
  std::uint32_t channels = 4;
  std::uint32_t ranks_per_channel = 2;
  std::uint32_t banks_per_rank = 16;
  std::uint64_t row_bytes = 2048;          ///< open-row (page) size
  std::uint64_t capacity_bytes = 32_MiB;   ///< total device capacity
  std::uint32_t bus_bits = 128;            ///< data-bus width per channel
  /// Bytes moved by one burst (one column command) — the data payload.
  /// For the HBM cache a burst also carries the 8 B tag/ECC sidecar at no
  /// extra time cost (tags live in unused ECC bits, Table I).
  std::uint32_t burst_bytes = 64;
  /// Additional bytes per burst carried in ECC/tag lanes (counted as
  /// transferred data for the Fig. 2 efficiency accounting, but free in time).
  std::uint32_t sideband_bytes = 0;

  std::uint64_t RowsPerBank() const {
    const std::uint64_t denom = std::uint64_t{channels} * ranks_per_channel *
                                banks_per_rank * row_bytes;
    return capacity_bytes / denom;
  }
  std::uint32_t BlocksPerRow() const {
    return static_cast<std::uint32_t>(row_bytes / kBlockBytes);
  }
};

/// Transaction-queue depth and scheduler knobs per channel.
struct DramControllerParams {
  std::uint32_t queue_depth = 32;
  /// A request older than this is issued ahead of row hits *when it can
  /// issue*, bounding FR-FCFS starvation. Set well above typical loaded
  /// queue waits: a tight threshold flips a saturated channel into strict
  /// FCFS, destroying bank parallelism.
  Cycle starvation_cycles = 50000;
};

/// Everything needed to instantiate a DramSystem.
struct DramConfig {
  std::string name = "dram";
  DramTimingParams timing;
  DramGeometry geometry;
  DramControllerParams controller;
};

/// Table I "DRAM cache" column: in-package WideIO HBM, 4 channels,
/// 128-bit buses, 1600 MHz DDR4-class timing. Capacity is scaled by the
/// simulation preset (see sim/presets.hpp); default 32 MiB.
DramConfig HbmCacheConfig(std::uint64_t capacity_bytes = 32_MiB);

/// Table I "Off-Chip Main Memory" column: 2-channel DDR4, 64-bit buses.
/// Note the much larger tCCD (61 CPU cycles) and tCWD of 44.
DramConfig MainMemoryConfig(std::uint64_t capacity_bytes = 512_MiB);

}  // namespace redcache
