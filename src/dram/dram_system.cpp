#include "dram/dram_system.hpp"

#include <algorithm>
#include <cassert>

namespace redcache {

DramSystem::DramSystem(const DramConfig& cfg)
    : cfg_(cfg), mapper_(cfg.geometry) {
  channels_.reserve(cfg_.geometry.channels);
  for (std::uint32_t c = 0; c < cfg_.geometry.channels; ++c) {
    channels_.push_back(std::make_unique<DramChannel>(cfg_, c));
  }
}

RequestId DramSystem::Enqueue(Addr addr, bool is_write, Cycle now,
                              std::uint64_t user_tag, std::uint32_t bursts) {
  DramRequest req;
  req.id = next_id_++;
  req.addr = BlockAlign(addr);
  req.loc = mapper_.Map(addr);
  req.is_write = is_write;
  req.bursts = bursts;
  req.arrival = now;
  req.user_tag = user_tag;
  assert(channels_[req.loc.channel]->CanAccept());
  channels_[req.loc.channel]->Enqueue(req);
  inflight_++;
  hint_valid_ = false;
  return req.id;
}

void DramSystem::Tick(Cycle now) {
  if (hint_valid_ && now < cached_hint_) return;  // nothing can happen yet
  hint_valid_ = false;
  const std::size_t before = completions_.size();
  for (auto& ch : channels_) {
    ch->Tick(now, completions_);
  }
  inflight_ -= completions_.size() - before;
}

bool DramSystem::Refreshing(Addr addr, Cycle now) const {
  const DramAddress loc = mapper_.Map(addr);
  return channels_[loc.channel]->RankRefreshing(loc.rank, now);
}

bool DramSystem::TransactionQueuesEmpty() const {
  return std::all_of(channels_.begin(), channels_.end(),
                     [](const auto& ch) { return ch->QueueEmpty(); });
}

void DramSystem::SetObserver(ColumnCommandObserver* obs) {
  for (auto& ch : channels_) ch->SetObserver(obs);
}

ChannelCounters DramSystem::TotalCounters() const {
  ChannelCounters total;
  for (const auto& ch : channels_) {
    const ChannelCounters& c = ch->counters();
    total.activates += c.activates;
    total.precharges += c.precharges;
    total.refreshes += c.refreshes;
    total.read_bursts += c.read_bursts;
    total.write_bursts += c.write_bursts;
    total.row_hits += c.row_hits;
    total.row_misses += c.row_misses;
    total.data_busy_cycles += c.data_busy_cycles;
    total.bytes_transferred += c.bytes_transferred;
    total.turnarounds_rw += c.turnarounds_rw;
    total.turnarounds_wr += c.turnarounds_wr;
    total.transactions += c.transactions;
    total.queue_wait_cycles += c.queue_wait_cycles;
  }
  return total;
}

void DramSystem::ExportStats(StatSet& stats) const {
  const ChannelCounters t = TotalCounters();
  const std::string p = cfg_.name + ".";
  stats.Counter(p + "activates") = t.activates;
  stats.Counter(p + "precharges") = t.precharges;
  stats.Counter(p + "refreshes") = t.refreshes;
  stats.Counter(p + "read_bursts") = t.read_bursts;
  stats.Counter(p + "write_bursts") = t.write_bursts;
  stats.Counter(p + "row_hits") = t.row_hits;
  stats.Counter(p + "row_misses") = t.row_misses;
  stats.Counter(p + "data_busy_cycles") = t.data_busy_cycles;
  stats.Counter(p + "bytes_transferred") = t.bytes_transferred;
  stats.Counter(p + "turnarounds_rw") = t.turnarounds_rw;
  stats.Counter(p + "turnarounds_wr") = t.turnarounds_wr;
  stats.Counter(p + "transactions") = t.transactions;
  stats.Counter(p + "queue_wait_cycles") = t.queue_wait_cycles;
}

Cycle DramSystem::NextEventHint(Cycle now) const {
  if (hint_valid_ && cached_hint_ > now) return cached_hint_;
  Cycle next = ~Cycle{0};
  for (const auto& ch : channels_) {
    next = std::min(next, ch->NextEventHint(now));
  }
  cached_hint_ = next;
  hint_valid_ = true;
  return next;
}

}  // namespace redcache
