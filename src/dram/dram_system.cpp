#include "dram/dram_system.hpp"

#include <algorithm>
#include <cassert>

namespace redcache {

DramSystem::DramSystem(const DramConfig& cfg)
    : cfg_(cfg), mapper_(cfg.geometry) {
  channels_.reserve(cfg_.geometry.channels);
  for (std::uint32_t c = 0; c < cfg_.geometry.channels; ++c) {
    channels_.push_back(std::make_unique<DramChannel>(cfg_, c));
  }
  wakes_.Reset(channels_.size());
}

RequestId DramSystem::Enqueue(Addr addr, bool is_write, Cycle now,
                              std::uint64_t user_tag, std::uint32_t bursts,
                              std::uint16_t tenant) {
  DramRequest req;
  req.id = next_id_++;
  req.addr = BlockAlign(addr);
  req.loc = mapper_.Map(addr);
  req.is_write = is_write;
  req.bursts = bursts;
  req.arrival = now;
  req.tenant = tenant;
  req.user_tag = user_tag;
  assert(channels_[req.loc.channel]->CanAccept());
  channels_[req.loc.channel]->Enqueue(req);
  inflight_++;
  // New work re-arms the channel's wake. EnqueueWake (not NextEventHint):
  // when the enqueue lands before this visit's device tick the channel may
  // issue at `now` itself, so a future-only hint would be too late. The
  // other channels' stored wakes are unaffected.
  wakes_.Set(req.loc.channel, channels_[req.loc.channel]->EnqueueWake());
  return req.id;
}

void DramSystem::Tick(Cycle now) {
  if (wakes_.NoneDue(now)) return;  // nothing can happen yet
  const std::size_t before = completions_.size();
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    if (!wakes_.Due(c, now)) continue;
    channels_[c]->Tick(now, completions_);
    wakes_.Set(c, channels_[c]->NextEventHint(now));
  }
  inflight_ -= completions_.size() - before;
}

bool DramSystem::Refreshing(Addr addr, Cycle now) const {
  const DramAddress loc = mapper_.Map(addr);
  return channels_[loc.channel]->RankRefreshing(loc.rank, now);
}

bool DramSystem::TransactionQueuesEmpty() const {
  return std::all_of(channels_.begin(), channels_.end(),
                     [](const auto& ch) { return ch->QueueEmpty(); });
}

void DramSystem::SetObserver(ColumnCommandObserver* obs) {
  for (auto& ch : channels_) ch->SetObserver(obs);
}

ChannelCounters DramSystem::TotalCounters() const {
  ChannelCounters total;
  for (const auto& ch : channels_) {
    const ChannelCounters& c = ch->counters();
    total.activates += c.activates;
    total.precharges += c.precharges;
    total.refreshes += c.refreshes;
    total.read_bursts += c.read_bursts;
    total.write_bursts += c.write_bursts;
    total.row_hits += c.row_hits;
    total.row_misses += c.row_misses;
    total.data_busy_cycles += c.data_busy_cycles;
    total.bytes_transferred += c.bytes_transferred;
    total.turnarounds_rw += c.turnarounds_rw;
    total.turnarounds_wr += c.turnarounds_wr;
    total.transactions += c.transactions;
    total.queue_wait_cycles += c.queue_wait_cycles;
  }
  return total;
}

void DramSystem::ExportStats(StatSet& stats) const {
  const ChannelCounters t = TotalCounters();
  const std::string p = cfg_.name + ".";
  stats.Counter(p + "activates") = t.activates;
  stats.Counter(p + "precharges") = t.precharges;
  stats.Counter(p + "refreshes") = t.refreshes;
  stats.Counter(p + "read_bursts") = t.read_bursts;
  stats.Counter(p + "write_bursts") = t.write_bursts;
  stats.Counter(p + "row_hits") = t.row_hits;
  stats.Counter(p + "row_misses") = t.row_misses;
  stats.Counter(p + "data_busy_cycles") = t.data_busy_cycles;
  stats.Counter(p + "bytes_transferred") = t.bytes_transferred;
  stats.Counter(p + "turnarounds_rw") = t.turnarounds_rw;
  stats.Counter(p + "turnarounds_wr") = t.turnarounds_wr;
  stats.Counter(p + "transactions") = t.transactions;
  stats.Counter(p + "queue_wait_cycles") = t.queue_wait_cycles;
}

Cycle DramSystem::NextEventHint(Cycle now) const {
  // The stored per-channel wakes are exact hints: each was computed from the
  // channel's current state (refreshed after every tick and on enqueue), and
  // channel state cannot change between ticks. A stored wake at or before
  // `now` means a not-yet-ticked channel; returning it (<= now) tells the
  // caller to keep visiting, exactly like the old fresh recomputation.
  (void)now;
  return wakes_.Min();
}

}  // namespace redcache
