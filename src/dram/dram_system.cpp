#include "dram/dram_system.hpp"

#include <algorithm>
#include <cassert>

namespace redcache {

DramSystem::DramSystem(const DramConfig& cfg)
    : cfg_(cfg), mapper_(cfg.geometry) {
  channels_.reserve(cfg_.geometry.channels);
  for (std::uint32_t c = 0; c < cfg_.geometry.channels; ++c) {
    channels_.push_back(std::make_unique<DramChannel>(cfg_, c));
  }
  wakes_.Reset(channels_.size());
}

RequestId DramSystem::Enqueue(Addr addr, bool is_write, Cycle now,
                              std::uint64_t user_tag, std::uint32_t bursts,
                              std::uint16_t tenant) {
  if (functional_latency_ != 0) {
    const RequestId id = next_id_++;
    const Cycle done = now + functional_latency_;
    func_pending_.push_back(
        {id, BlockAlign(addr), is_write, done, tenant, user_tag});
    func_min_ = std::min(func_min_, done);
    inflight_++;
    return id;
  }
  DramRequest req;
  req.id = next_id_++;
  req.addr = BlockAlign(addr);
  req.loc = mapper_.Map(addr);
  req.is_write = is_write;
  req.bursts = bursts;
  req.arrival = now;
  req.tenant = tenant;
  req.user_tag = user_tag;
  assert(channels_[req.loc.channel]->CanAccept());
  channels_[req.loc.channel]->Enqueue(req);
  inflight_++;
  // New work re-arms the channel's wake. EnqueueWake (not NextEventHint):
  // when the enqueue lands before this visit's device tick the channel may
  // issue at `now` itself, so a future-only hint would be too late. The
  // other channels' stored wakes are unaffected.
  wakes_.Set(req.loc.channel, channels_[req.loc.channel]->EnqueueWake());
  return req.id;
}

void DramSystem::Tick(Cycle now) {
  // Fixed-latency completions (functional mode, or the tail of one after a
  // restore into detailed timing): stable compacting drain, like a channel's
  // pending-done pass.
  if (func_min_ <= now) {
    std::size_t keep = 0;
    Cycle next_min = ~Cycle{0};
    for (std::size_t i = 0; i < func_pending_.size(); ++i) {
      if (func_pending_[i].done <= now) {
        completions_.push_back(func_pending_[i]);
        inflight_--;
      } else {
        next_min = std::min(next_min, func_pending_[i].done);
        func_pending_[keep++] = func_pending_[i];
      }
    }
    func_pending_.resize(keep);
    func_min_ = next_min;
  }
  if (wakes_.NoneDue(now)) return;  // nothing can happen yet
  const std::size_t before = completions_.size();
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    if (!wakes_.Due(c, now)) continue;
    channels_[c]->Tick(now, completions_);
    wakes_.Set(c, channels_[c]->NextEventHint(now));
  }
  inflight_ -= completions_.size() - before;
}

bool DramSystem::Refreshing(Addr addr, Cycle now) const {
  if (functional_latency_ != 0) return false;
  const DramAddress loc = mapper_.Map(addr);
  return channels_[loc.channel]->RankRefreshing(loc.rank, now);
}

bool DramSystem::TransactionQueuesEmpty() const {
  return func_pending_.empty() &&
         std::all_of(channels_.begin(), channels_.end(),
                     [](const auto& ch) { return ch->QueueEmpty(); });
}

void DramSystem::SetObserver(ColumnCommandObserver* obs) {
  for (auto& ch : channels_) ch->SetObserver(obs);
}

ChannelCounters DramSystem::TotalCounters() const {
  ChannelCounters total;
  for (const auto& ch : channels_) {
    const ChannelCounters& c = ch->counters();
    total.activates += c.activates;
    total.precharges += c.precharges;
    total.refreshes += c.refreshes;
    total.read_bursts += c.read_bursts;
    total.write_bursts += c.write_bursts;
    total.row_hits += c.row_hits;
    total.row_misses += c.row_misses;
    total.data_busy_cycles += c.data_busy_cycles;
    total.bytes_transferred += c.bytes_transferred;
    total.turnarounds_rw += c.turnarounds_rw;
    total.turnarounds_wr += c.turnarounds_wr;
    total.transactions += c.transactions;
    total.queue_wait_cycles += c.queue_wait_cycles;
  }
  return total;
}

void DramSystem::ExportStats(StatSet& stats) const {
  const ChannelCounters t = TotalCounters();
  const std::string p = cfg_.name + ".";
  stats.Counter(p + "activates") = t.activates;
  stats.Counter(p + "precharges") = t.precharges;
  stats.Counter(p + "refreshes") = t.refreshes;
  stats.Counter(p + "read_bursts") = t.read_bursts;
  stats.Counter(p + "write_bursts") = t.write_bursts;
  stats.Counter(p + "row_hits") = t.row_hits;
  stats.Counter(p + "row_misses") = t.row_misses;
  stats.Counter(p + "data_busy_cycles") = t.data_busy_cycles;
  stats.Counter(p + "bytes_transferred") = t.bytes_transferred;
  stats.Counter(p + "turnarounds_rw") = t.turnarounds_rw;
  stats.Counter(p + "turnarounds_wr") = t.turnarounds_wr;
  stats.Counter(p + "transactions") = t.transactions;
  stats.Counter(p + "queue_wait_cycles") = t.queue_wait_cycles;
}

Cycle DramSystem::NextEventHint(Cycle now) const {
  // The stored per-channel wakes are exact hints: each was computed from the
  // channel's current state (refreshed after every tick and on enqueue), and
  // channel state cannot change between ticks. A stored wake at or before
  // `now` means a not-yet-ticked channel; returning it (<= now) tells the
  // caller to keep visiting, exactly like the old fresh recomputation.
  (void)now;
  return std::min(func_min_, wakes_.Min());
}

void DramSystem::Snapshot(ser::Writer& w) const {
  w.Section("dram");
  w.U64(next_id_);
  w.U64(inflight_);
  auto completion_list = [&w](const std::vector<DramCompletion>& list) {
    w.U64(list.size());
    for (const DramCompletion& d : list) {
      w.U64(d.id);
      w.U64(d.addr);
      w.Bool(d.is_write);
      w.U64(d.done);
      w.U32(d.tenant);
      w.U64(d.user_tag);
    }
  };
  completion_list(completions_);
  completion_list(func_pending_);
  w.U64(func_min_);
  for (const auto& ch : channels_) ch->Snapshot(w);
}

void DramSystem::Restore(ser::Reader& r) {
  r.Section("dram");
  next_id_ = r.U64();
  inflight_ = r.U64();
  auto completion_list = [&r](std::vector<DramCompletion>& list) {
    list.clear();
    const std::size_t n = r.SeqLen(1);
    for (std::size_t i = 0; i < n; ++i) {
      DramCompletion d;
      d.id = r.U64();
      d.addr = r.U64();
      d.is_write = r.Bool();
      d.done = r.U64();
      d.tenant = static_cast<std::uint16_t>(r.U32());
      d.user_tag = r.U64();
      list.push_back(d);
    }
  };
  completion_list(completions_);
  completion_list(func_pending_);
  func_min_ = r.U64();
  for (auto& ch : channels_) ch->Restore(r);
  wakes_.Reset(channels_.size());  // all due: spurious visits are no-ops
}

}  // namespace redcache
