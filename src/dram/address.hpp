// Physical-address to DRAM-coordinate mapping.
//
// Blocks are interleaved across channels (stride 64 B), then across columns
// within an open row, then banks, ranks and rows. This is the classic
// mapping that maximizes channel parallelism for streaming access while
// keeping spatial locality within an open row.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "dram/timing.hpp"

namespace redcache {

/// Coordinates of a block inside a DRAM device.
struct DramAddress {
  std::uint32_t channel = 0;
  std::uint32_t rank = 0;
  std::uint32_t bank = 0;
  std::uint64_t row = 0;
  std::uint32_t column = 0;  ///< block index within the row

  bool SameRowAs(const DramAddress& o) const {
    return channel == o.channel && rank == o.rank && bank == o.bank &&
           row == o.row;
  }
  bool SameBankAs(const DramAddress& o) const {
    return channel == o.channel && rank == o.rank && bank == o.bank;
  }
};

/// Maps physical block addresses onto a device's geometry. Addresses beyond
/// the device capacity wrap (callers index DRAM-cache sets directly and main
/// memory by physical address modulo capacity, which is fine for simulation).
class AddressMapper {
 public:
  explicit AddressMapper(const DramGeometry& geo);

  DramAddress Map(Addr byte_addr) const;

  std::uint32_t channels() const { return channels_; }

 private:
  std::uint32_t channels_;
  std::uint32_t ranks_;
  std::uint32_t banks_;
  std::uint32_t blocks_per_row_;
  std::uint64_t rows_;
  /// Every real geometry uses power-of-two dimensions; five 64-bit div/mod
  /// pairs per Map() are measurable in the simulation hot loop, so the
  /// constructor precomputes shifts for a mask/shift fast path.
  bool all_pow2_ = false;
  std::uint32_t channel_shift_ = 0;
  std::uint32_t column_shift_ = 0;
  std::uint32_t bank_shift_ = 0;
  std::uint32_t rank_shift_ = 0;
};

}  // namespace redcache
