#include "cpu/core.hpp"

namespace redcache {

Core::Core(std::uint32_t id, const CoreParams& params, TraceSource* trace,
           CacheHierarchy* hierarchy, MemoryPort* port, std::uint64_t seed)
    : id_(id),
      params_(params),
      trace_(trace),
      hierarchy_(hierarchy),
      port_(port),
      rng_(Mix64(seed + id * 0x9e37ULL + 1)) {}

Cycle Core::Progress(Cycle now) {
  while (true) {
    if (Finished()) return kWaiting;
    if (stalled_) return kWaiting;

    if (pending_miss_) {
      // Misses are real events: issue them at their local time, so the
      // simulator's event pacing stays anchored to memory traffic.
      if (t_ > now) return t_;
      if (outstanding_ >= params_.max_outstanding) return kWaiting;
      const std::uint64_t tag = MakeTag();
      if (!port_->TrySubmitRead(pending_addr_, tag, now)) {
        return now + params_.retry_interval;  // backpressure
      }
      outstanding_++;
      misses_++;
      pending_miss_ = false;
      if (pending_dependent_) {
        stalled_ = true;
        stalled_tag_ = tag;
        return kWaiting;
      }
      continue;
    }

    if (trace_done_) return kWaiting;  // draining outstanding misses

    // On-die work (gaps + cache hits) runs ahead of `now` freely; only the
    // next miss re-synchronizes with the memory system. This keeps the run
    // loop event-paced instead of cycle-paced.
    MemRef ref;
    if (!trace_->Next(id_, ref)) {
      trace_done_ = true;
      if (outstanding_ == 0) finish_time_ = t_ > now ? t_ : now;
      continue;
    }
    refs_++;
    t_ += ref.gap;
    if (acct_ != nullptr) acct_->OnRefRetired(ref.addr, t_);

    const HierarchyResult res = hierarchy_->Access(id_, ref.addr,
                                                   ref.is_write);
    for (const Addr wb : res.writebacks) {
      port_->SubmitWriteback(wb, now);
    }
    if (res.hit_level != 0) {
      hits_[res.hit_level - 1]++;
      switch (res.hit_level) {
        case 1: t_ += params_.l1_hit_cost; break;
        case 2: t_ += params_.l2_hit_cost; break;
        default: t_ += params_.l3_hit_cost; break;
      }
      continue;
    }
    // L3 miss: queue it for issue on the next iteration.
    pending_miss_ = true;
    pending_addr_ = BlockAlign(ref.addr);
    pending_dependent_ = rng_.Chance(params_.dependent_fraction);
  }
}

void Core::OnMemComplete(std::uint64_t tag, Cycle now) {
  if (outstanding_ > 0) outstanding_--;
  if (stalled_ && tag == stalled_tag_) {
    stalled_ = false;
    if (t_ < now) t_ = now;
  }
  if (trace_done_ && outstanding_ == 0) {
    finish_time_ = t_ > now ? t_ : now;
  }
}

}  // namespace redcache
