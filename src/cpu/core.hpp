// Trace-driven simple-OoO core model.
//
// Each core replays its workload stream: compute gaps and on-die cache hits
// advance its local clock; L3 misses are issued to the memory system and
// overlap up to `max_outstanding` at a time (ROB/MSHR window). A configurable
// fraction of misses is "dependent" — the core cannot advance past them until
// the data returns — which gives the model latency sensitivity in addition
// to bandwidth sensitivity. This reproduces the behaviour of the paper's
// 16-core 4-issue OoO configuration at trace speed.
#pragma once

#include <cstdint>
#include <limits>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sram/hierarchy.hpp"
#include "tenant/accounting.hpp"
#include "workloads/trace.hpp"

namespace redcache {

struct CoreParams {
  std::uint32_t max_outstanding = 8;  ///< concurrent L3 misses per core
  /// Fraction of misses the core must wait on before making progress
  /// (dependent loads); the rest overlap freely inside the window.
  double dependent_fraction = 0.30;
  Cycle l1_hit_cost = 1;   ///< pipelined L1 hits are nearly free
  Cycle l2_hit_cost = 6;
  Cycle l3_hit_cost = 20;
  Cycle retry_interval = 8;  ///< backpressure retry period
};

/// How cores reach the memory system; implemented by the System.
class MemoryPort {
 public:
  virtual ~MemoryPort() = default;
  /// Try to issue an L3-miss read. Returns false on backpressure.
  virtual bool TrySubmitRead(Addr addr, std::uint64_t tag, Cycle now) = 0;
  /// Post a dirty L3 victim (always accepted; buffered by the system).
  virtual void SubmitWriteback(Addr addr, Cycle now) = 0;
};

class Core {
 public:
  /// Sentinel: the core has no self-scheduled event; it waits on a memory
  /// completion (or is finished).
  static constexpr Cycle kWaiting = std::numeric_limits<Cycle>::max();

  Core(std::uint32_t id, const CoreParams& params, TraceSource* trace,
       CacheHierarchy* hierarchy, MemoryPort* port, std::uint64_t seed);

  /// Make as much progress as possible up to cycle `now`. Returns the next
  /// cycle at which calling Progress could achieve more, or kWaiting.
  Cycle Progress(Cycle now);

  /// A read issued earlier with `tag` completed.
  void OnMemComplete(std::uint64_t tag, Cycle now);

  bool Finished() const { return trace_done_ && outstanding_ == 0; }
  Cycle finish_time() const { return finish_time_; }

  /// Attach per-tenant accounting (multi-tenant mixes; nullptr = off). The
  /// core reports every retired reference so tenant progress is visible
  /// even for references that hit on-die caches.
  void SetTenantAccounting(tenant::TenantAccounting* acct) { acct_ = acct; }

  std::uint64_t refs_processed() const { return refs_; }
  std::uint64_t misses_issued() const { return misses_; }
  std::uint64_t l1_hits() const { return hits_[0]; }
  std::uint64_t l2_hits() const { return hits_[1]; }
  std::uint64_t l3_hits() const { return hits_[2]; }

  /// Checkpointing: the full execution state — local clock, MSHR window,
  /// pending/stalled miss machinery, per-core RNG and counters. The trace /
  /// hierarchy / port pointers are wiring, re-established by construction.
  void Snapshot(ser::Writer& w) const {
    w.Section("core");
    w.U64(t_);
    w.U32(outstanding_);
    w.U64(seq_);
    w.Bool(pending_miss_);
    w.U64(pending_addr_);
    w.Bool(pending_dependent_);
    w.Bool(stalled_);
    w.U64(stalled_tag_);
    w.Bool(trace_done_);
    w.U64(finish_time_);
    w.U64(refs_);
    w.U64(misses_);
    for (const std::uint64_t h : hits_) w.U64(h);
    rng_.Snapshot(w);
  }
  void Restore(ser::Reader& r) {
    r.Section("core");
    t_ = r.U64();
    outstanding_ = r.U32();
    seq_ = r.U64();
    pending_miss_ = r.Bool();
    pending_addr_ = r.U64();
    pending_dependent_ = r.Bool();
    stalled_ = r.Bool();
    stalled_tag_ = r.U64();
    trace_done_ = r.Bool();
    finish_time_ = r.U64();
    refs_ = r.U64();
    misses_ = r.U64();
    for (std::uint64_t& h : hits_) h = r.U64();
    rng_.Restore(r);
  }

 private:
  std::uint64_t MakeTag() { return (std::uint64_t{id_} << 48) | seq_++; }

  std::uint32_t id_;
  CoreParams params_;
  TraceSource* trace_;
  CacheHierarchy* hierarchy_;
  MemoryPort* port_;
  tenant::TenantAccounting* acct_ = nullptr;
  Rng rng_;

  Cycle t_ = 0;  ///< local clock: when the core can process its next ref
  std::uint32_t outstanding_ = 0;
  std::uint64_t seq_ = 0;

  bool pending_miss_ = false;  ///< a miss waits to be issued (backpressure)
  Addr pending_addr_ = 0;
  bool pending_dependent_ = false;

  bool stalled_ = false;            ///< waiting on a dependent load
  std::uint64_t stalled_tag_ = 0;

  bool trace_done_ = false;
  Cycle finish_time_ = 0;

  std::uint64_t refs_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t hits_[3] = {0, 0, 0};
};

}  // namespace redcache
