#include "tenant/stream_trace.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace redcache::tenant {

namespace {

constexpr char kMagic[4] = {'R', 'C', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;

// Mirrors the RCTR on-disk record (workloads/trace_file.cpp): the u64 addr
// aligns the struct to 16 bytes, and files are written with sizeof(Record).
struct Record {
  std::uint8_t core;
  std::uint8_t flags;
  std::uint16_t gap;
  std::uint64_t addr;
};
static_assert(sizeof(Record) == 16, "RCTR record layout changed");

}  // namespace

StreamTraceSource::StreamTraceSource(const std::string& path)
    : name_("serve:" + path) {
  if (path == "-") {
    fd_ = STDIN_FILENO;
    owns_fd_ = false;
  } else {
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0) {
      throw std::runtime_error("cannot open trace stream: " + path + ": " +
                               std::strerror(errno));
    }
    owns_fd_ = true;
  }

  // Header: magic, version, num_cores. Block until all 12 bytes arrive.
  char header[12];
  std::size_t got = 0;
  while (got < sizeof(header)) {
    const ssize_t n = ::read(fd_, header + got, sizeof(header) - got);
    if (n < 0 && errno == EINTR) {
      if (StopRequested()) break;
      continue;
    }
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
  }
  if (got < sizeof(header) || std::memcmp(header, kMagic, 4) != 0) {
    if (owns_fd_) ::close(fd_);
    throw std::runtime_error("not a RedCache trace stream: " + path);
  }
  std::uint32_t version = 0;
  std::memcpy(&version, header + 4, 4);
  std::memcpy(&num_cores_, header + 8, 4);
  if (version != kVersion) {
    if (owns_fd_) ::close(fd_);
    throw std::runtime_error("unsupported trace version on stream: " + path);
  }
  if (num_cores_ == 0 || num_cores_ > 256) {
    if (owns_fd_) ::close(fd_);
    throw std::runtime_error("implausible core count on stream: " + path);
  }
  per_core_.resize(num_cores_);
  tail_.reserve(sizeof(Record));
}

StreamTraceSource::~StreamTraceSource() {
  if (owns_fd_ && fd_ >= 0) ::close(fd_);
}

bool StreamTraceSource::Ingest() {
  if (eof_) return false;
  if (StopRequested()) {
    eof_ = true;
    return false;
  }
  char buf[16 * 1024];
  ssize_t n;
  do {
    n = ::read(fd_, buf, sizeof(buf));
  } while (n < 0 && errno == EINTR && !StopRequested());
  if (n <= 0) {
    // EOF, stop-interrupted, or a hard error: all drain gracefully.
    eof_ = true;
    return false;
  }

  const char* p = buf;
  std::size_t left = static_cast<std::size_t>(n);
  // Complete any partial record carried from the previous read first.
  if (!tail_.empty()) {
    const std::size_t need = sizeof(Record) - tail_.size();
    const std::size_t take = std::min(need, left);
    tail_.insert(tail_.end(), p, p + take);
    p += take;
    left -= take;
    if (tail_.size() < sizeof(Record)) return true;
  }

  auto push = [this](const char* bytes) {
    Record r;
    std::memcpy(&r, bytes, sizeof(r));
    if (r.core >= num_cores_) {
      throw std::runtime_error("stream record with out-of-range core");
    }
    MemRef ref;
    ref.addr = r.addr;
    ref.is_write = (r.flags & 1) != 0;
    ref.gap = std::max<std::uint16_t>(1, r.gap);
    per_core_[r.core].push_back(ref);
    total_records_++;
    lo_ = std::min(lo_, r.addr);
    hi_ = std::max(hi_, r.addr + kBlockBytes);
    footprint_ = hi_ - lo_;
  };

  if (tail_.size() == sizeof(Record)) {
    push(tail_.data());
    tail_.clear();
  }
  while (left >= sizeof(Record)) {
    push(p);
    p += sizeof(Record);
    left -= sizeof(Record);
  }
  if (left > 0) tail_.assign(p, p + left);
  return true;
}

bool StreamTraceSource::Next(std::uint32_t core, MemRef& out) {
  if (core >= num_cores_) return false;
  while (per_core_[core].empty()) {
    if (!Ingest()) return false;
  }
  out = per_core_[core].front();
  per_core_[core].pop_front();
  return true;
}

void StreamTraceSource::SampleTelemetry(StatSet& out) const {
  out.Counter("serve.records") = total_records_;
  std::uint64_t queued = 0;
  for (const auto& q : per_core_) queued += q.size();
  out.Counter("gauge.serve.queue_depth") = queued;
  out.Counter("gauge.serve.eof") = eof_ ? 1 : 0;
  out.Counter("gauge.serve.stop_requested") = StopRequested() ? 1 : 0;
  out.Counter("gauge.serve.footprint_bytes") = footprint_;
}

}  // namespace redcache::tenant
