// Per-tenant QoS accounting for multi-tenant mixes.
//
// One TenantAccounting instance is owned by the System when a mix is
// configured and shared (as a raw pointer) with the cores and the memory
// controller. Every probe is a single predictable branch when no mix is
// configured (the pointer is null), and the exported counters only exist
// when a mix is active — single-tenant runs keep byte-identical stats.
//
// Counter naming scheme (DESIGN.md section 13):
//   tenant<N>.refs               references retired by tenant N's stream
//   tenant<N>.finish_cycles      cycle of tenant N's last activity
//   tenant<N>.ctrl.reads         demand reads entering the controller
//   tenant<N>.ctrl.writebacks    L3 victim writebacks entering the controller
//   tenant<N>.ctrl.serve_hits    demand reads served from the HBM cache/RCU
//   tenant<N>.ctrl.serve_misses  demand reads served from main memory
//   tenant<N>.hbm.bytes          HBM device bytes caused by tenant N
//   tenant<N>.ddr4.bytes         main-memory device bytes caused by tenant N
//   tenant<N>.rcu_drains         RCU update drains for tenant N's blocks
// plus the point-in-time telemetry gauges
//   gauge.tenant<N>.slowdown_milli   progress slowdown vs the solo run x1000
//                                    (only when a solo baseline is attached)
//   gauge.tenant<N>.refs             references retired so far
//
// Device bytes are attributed when the controller queues the operation (the
// moment the causing tenant is known); cumulative totals match the device
// counters, per-epoch series may lead them by the queueing delay.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "tenant/address_map.hpp"

namespace redcache::tenant {

class TenantAccounting {
 public:
  explicit TenantAccounting(const TenantAddressMap& map);

  const TenantAddressMap& map() const { return map_; }
  std::uint32_t num_tenants() const { return map_.num_tenants(); }
  std::uint32_t TenantOf(Addr addr) const { return map_.TenantOf(addr); }

  /// Attach the solo-run baseline for tenant `t` (enables the slowdown
  /// gauge; observability-only, never affects exported counters).
  void SetSoloBaseline(std::uint32_t t, std::uint64_t solo_exec_cycles,
                       std::uint64_t solo_refs);

  // --- probes (hot paths; callers gate on the accounting pointer) ---------
  void OnRefRetired(Addr addr, Cycle at) {
    Row& r = rows_[TenantOf(addr)];
    r.refs++;
    if (at > r.finish) r.finish = at;
  }
  void OnCtrlRead(Addr addr) { rows_[TenantOf(addr)].reads++; }
  void OnCtrlWriteback(Addr addr) { rows_[TenantOf(addr)].writebacks++; }
  void OnServe(Addr addr, bool hit) {
    Row& r = rows_[TenantOf(addr)];
    (hit ? r.serve_hits : r.serve_misses)++;
  }
  void OnReadComplete(Addr addr, Cycle done) {
    Row& r = rows_[TenantOf(addr)];
    if (done > r.finish) r.finish = done;
  }
  void OnDeviceBytes(bool hbm, std::uint32_t t, std::uint64_t bytes) {
    Row& r = rows_[t];
    (hbm ? r.hbm_bytes : r.mm_bytes) += bytes;
  }
  void OnRcuDrain(std::uint32_t t) { rows_[t].rcu_drains++; }

  // --- output -------------------------------------------------------------
  /// Cumulative per-tenant counters ("tenant<N>.*").
  void ExportStats(StatSet& stats) const;
  /// ExportStats plus the point-in-time gauges for the epoch sampler.
  void SampleTelemetry(StatSet& out, Cycle now) const;

  /// Checkpointing: the accumulated per-tenant rows. Solo baselines are
  /// configuration (re-attached by the builder) and not serialized.
  void Snapshot(ser::Writer& w) const {
    w.Section("tenants");
    w.U64(rows_.size());
    for (const Row& r : rows_) {
      w.U64(r.refs);
      w.U64(r.reads);
      w.U64(r.writebacks);
      w.U64(r.serve_hits);
      w.U64(r.serve_misses);
      w.U64(r.hbm_bytes);
      w.U64(r.mm_bytes);
      w.U64(r.rcu_drains);
      w.U64(r.finish);
    }
  }
  void Restore(ser::Reader& r) {
    r.Section("tenants");
    if (r.U64() != rows_.size()) {
      throw ser::SerializeError("tenant-count mismatch");
    }
    for (Row& row : rows_) {
      row.refs = r.U64();
      row.reads = r.U64();
      row.writebacks = r.U64();
      row.serve_hits = r.U64();
      row.serve_misses = r.U64();
      row.hbm_bytes = r.U64();
      row.mm_bytes = r.U64();
      row.rcu_drains = r.U64();
      row.finish = r.U64();
    }
  }

 private:
  struct Row {
    std::uint64_t refs = 0;
    std::uint64_t reads = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t serve_hits = 0;
    std::uint64_t serve_misses = 0;
    std::uint64_t hbm_bytes = 0;
    std::uint64_t mm_bytes = 0;
    std::uint64_t rcu_drains = 0;
    Cycle finish = 0;
    std::uint64_t solo_exec_cycles = 0;
    std::uint64_t solo_refs = 0;
  };

  TenantAddressMap map_;
  std::vector<Row> rows_;
};

}  // namespace redcache::tenant
