// Long-run streaming trace ingestion for serve mode.
//
// StreamTraceSource reads the standard RCTR binary trace format (see
// workloads/trace_file.hpp) incrementally from a file descriptor — a pipe,
// FIFO, socket, or "-" for stdin — instead of loading the whole file. The
// record stream is demultiplexed into per-core queues exactly like
// FileTraceSource, so a serve-mode run over a piped trace produces the same
// reference sequence (and therefore the same final stats) as a batch run
// over the same records on disk.
//
// Drain semantics: on EOF, or when the installed stop flag becomes non-zero
// (set from a SIGTERM/SIGINT handler; the read() is interrupted via EINTR),
// the source stops ingesting and Next() drains the already-buffered records
// before reporting exhaustion. The simulator then retires its outstanding
// requests normally — a graceful drain, never a mid-request abort.
#pragma once

#include <csignal>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "workloads/trace.hpp"

namespace redcache::tenant {

class StreamTraceSource : public TraceSource {
 public:
  /// Opens `path` ("-" = stdin) and blocks until the RCTR header arrives.
  /// Throws std::runtime_error on open/format errors.
  explicit StreamTraceSource(const std::string& path);
  ~StreamTraceSource() override;
  StreamTraceSource(const StreamTraceSource&) = delete;
  StreamTraceSource& operator=(const StreamTraceSource&) = delete;

  /// Install a flag polled whenever a blocking read is interrupted; a
  /// non-zero value requests a graceful drain (treated like EOF). The flag
  /// must outlive the source. Typically set by a signal handler installed
  /// WITHOUT SA_RESTART so the read actually returns EINTR.
  void SetStopFlag(const volatile std::sig_atomic_t* stop) { stop_ = stop; }

  /// Blocks until a record for `core` arrives (buffering records for other
  /// cores along the way), then returns it; false once the stream has
  /// reached EOF / been stopped and this core's buffer is drained.
  bool Next(std::uint32_t core, MemRef& out) override;
  std::uint32_t num_cores() const override { return num_cores_; }
  /// Footprint bound of the records seen so far (grows as the stream runs).
  std::uint64_t footprint_bytes() const override { return footprint_; }
  std::string name() const override { return name_; }

  std::uint64_t total_records() const { return total_records_; }
  bool eof() const { return eof_; }

  /// Live ingest feed for the telemetry pipeline: `serve.records`
  /// (cumulative, so epochs show the ingest rate) plus point-in-time
  /// gauges — buffered queue depth across cores (backpressure), EOF and
  /// stop-flag state, and the footprint bound seen so far.
  void SampleTelemetry(StatSet& out) const override;

 private:
  /// One blocking read; parses complete records into the per-core queues.
  /// Returns false when the stream is finished (EOF, stop, or error).
  bool Ingest();
  bool StopRequested() const { return stop_ != nullptr && *stop_ != 0; }

  int fd_ = -1;
  bool owns_fd_ = false;
  bool eof_ = false;
  const volatile std::sig_atomic_t* stop_ = nullptr;
  std::string name_;
  std::uint32_t num_cores_ = 0;
  std::uint64_t footprint_ = 0;
  std::uint64_t total_records_ = 0;
  Addr lo_ = ~Addr{0};
  Addr hi_ = 0;
  std::vector<char> tail_;  // partial record carried between reads
  std::vector<std::deque<MemRef>> per_core_;
};

}  // namespace redcache::tenant
