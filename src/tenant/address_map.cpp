#include "tenant/address_map.hpp"

#include <algorithm>
#include <stdexcept>

namespace redcache::tenant {

namespace {

std::uint32_t CeilLog2(std::uint64_t v) {
  std::uint32_t bits = 0;
  while ((std::uint64_t{1} << bits) < v) bits++;
  return bits;
}

std::uint32_t FloorLog2(std::uint64_t v) {
  std::uint32_t bits = 0;
  while ((std::uint64_t{2} << bits) <= v) bits++;
  return bits;
}

}  // namespace

TenantAddressMap::TenantAddressMap(Mode mode, std::uint32_t num_tenants,
                                   std::uint32_t window_bits)
    : mode_(mode),
      num_tenants_(num_tenants),
      window_bits_(window_bits),
      tenant_bits_(num_tenants > 1 ? CeilLog2(num_tenants) : 0),
      window_mask_((Addr{1} << window_bits) - 1) {
  if (num_tenants == 0) {
    throw std::invalid_argument("tenant map needs at least one tenant");
  }
  if (window_bits < kBlockShift || window_bits + tenant_bits_ >= 64) {
    throw std::invalid_argument("tenant window must hold at least one block");
  }
}

TenantAddressMap TenantAddressMap::Plan(Mode mode, std::uint32_t num_tenants,
                                        std::uint64_t max_footprint,
                                        std::uint64_t capacity,
                                        std::uint32_t window_bits_override) {
  const std::uint32_t tenant_bits =
      num_tenants > 1 ? CeilLog2(num_tenants) : 0;
  std::uint32_t window_bits = window_bits_override;
  if (window_bits == 0) {
    if (mode == Mode::kInterleave) {
      // Page stripes: tenants interleave at OS-page granularity, sharing
      // every row neighbourhood while keeping block ownership disjoint.
      window_bits = kPageShift;
    } else {
      // The largest per-tenant window that keeps every rebased address
      // below capacity: maximal spacing preserves each tenant's solo
      // row/bank layout exactly. A footprint larger than the window wraps
      // within it — the same aliasing regime a solo run enters when its
      // footprint exceeds device capacity — so the capacity bound always
      // wins over footprint needs.
      (void)max_footprint;
      const std::uint32_t cap_bits =
          capacity != 0 ? FloorLog2(capacity) : 63;
      window_bits = std::max(
          cap_bits > tenant_bits ? cap_bits - tenant_bits : kBlockShift,
          kBlockShift);
    }
  }
  return TenantAddressMap(mode, num_tenants, window_bits);
}

std::string TenantAddressMap::Describe() const {
  std::string out(mode_ == Mode::kOffset ? "o" : "i");
  out += std::to_string(window_bits_);
  return out;
}

const char* ToString(TenantAddressMap::Mode mode) {
  return mode == TenantAddressMap::Mode::kOffset ? "offset" : "interleave";
}

}  // namespace redcache::tenant
