#include "tenant/accounting.hpp"

#include <string>

namespace redcache::tenant {

namespace {

std::string Key(std::uint32_t t, const char* suffix) {
  return "tenant" + std::to_string(t) + "." + suffix;
}

}  // namespace

TenantAccounting::TenantAccounting(const TenantAddressMap& map)
    : map_(map), rows_(map.num_tenants()) {}

void TenantAccounting::SetSoloBaseline(std::uint32_t t,
                                       std::uint64_t solo_exec_cycles,
                                       std::uint64_t solo_refs) {
  if (t >= rows_.size()) return;
  rows_[t].solo_exec_cycles = solo_exec_cycles;
  rows_[t].solo_refs = solo_refs;
}

void TenantAccounting::ExportStats(StatSet& stats) const {
  for (std::uint32_t t = 0; t < rows_.size(); t++) {
    const Row& r = rows_[t];
    stats.Counter(Key(t, "refs")) = r.refs;
    stats.Counter(Key(t, "finish_cycles")) = r.finish;
    stats.Counter(Key(t, "ctrl.reads")) = r.reads;
    stats.Counter(Key(t, "ctrl.writebacks")) = r.writebacks;
    stats.Counter(Key(t, "ctrl.serve_hits")) = r.serve_hits;
    stats.Counter(Key(t, "ctrl.serve_misses")) = r.serve_misses;
    stats.Counter(Key(t, "hbm.bytes")) = r.hbm_bytes;
    stats.Counter(Key(t, "ddr4.bytes")) = r.mm_bytes;
    stats.Counter(Key(t, "rcu_drains")) = r.rcu_drains;
  }
}

void TenantAccounting::SampleTelemetry(StatSet& out, Cycle now) const {
  ExportStats(out);
  std::uint64_t hbm_total = 0, mm_total = 0;
  for (const Row& r : rows_) {
    hbm_total += r.hbm_bytes;
    mm_total += r.mm_bytes;
  }
  for (std::uint32_t t = 0; t < rows_.size(); t++) {
    const Row& r = rows_[t];
    out.Counter("gauge." + Key(t, "refs")) = r.refs;
    // Live capacity/bandwidth share: this tenant's slice of all bytes moved
    // on each device so far. Starvation under co-scheduled dilution shows
    // up here as one tenant's HBM share collapsing while its slowdown
    // gauge climbs.
    out.Counter("gauge." + Key(t, "hbm_share_pct")) =
        hbm_total == 0 ? 0 : r.hbm_bytes * 100 / hbm_total;
    out.Counter("gauge." + Key(t, "mm_share_pct")) =
        mm_total == 0 ? 0 : r.mm_bytes * 100 / mm_total;
    // Progress-based slowdown estimate vs the solo run, in milli-units:
    // (cycles spent per ref so far) / (solo cycles per ref). Only defined
    // once a baseline is attached and the tenant has made progress.
    std::uint64_t slowdown = 0;
    if (r.solo_exec_cycles != 0 && r.solo_refs != 0 && r.refs != 0 &&
        now != 0) {
      const double mix_cpr = static_cast<double>(now) /
                             static_cast<double>(r.refs);
      const double solo_cpr = static_cast<double>(r.solo_exec_cycles) /
                              static_cast<double>(r.solo_refs);
      slowdown = static_cast<std::uint64_t>(mix_cpr / solo_cpr * 1000.0);
    }
    out.Counter("gauge." + Key(t, "slowdown_milli")) = slowdown;
  }
}

}  // namespace redcache::tenant
