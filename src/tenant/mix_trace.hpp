// Weighted round-robin front-end that co-schedules N tenant trace streams
// onto one set of cores.
//
// Each core independently cycles through the tenants, serving `weight`
// references from tenant t before moving on, so the interleaving is fully
// deterministic — no global state, no dependence on the order cores are
// polled. Every emitted address is rebased through the TenantAddressMap so
// tenants occupy disjoint physical slices, and a per-tenant `min_gap`
// stretches compute gaps to model an injection throttle. Exhausted tenants
// are skipped; a core's stream ends when all of its tenants are dry.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tenant/address_map.hpp"
#include "tenant/mix.hpp"
#include "workloads/trace.hpp"

namespace redcache::tenant {

class MixTraceSource : public TraceSource {
 public:
  /// `children[t]` supplies tenant t's references; all children must agree
  /// on num_cores(). `specs[t]` carries tenant t's weight and rate limit.
  /// Throws std::invalid_argument on an empty or inconsistent mix.
  MixTraceSource(std::vector<std::unique_ptr<TraceSource>> children,
                 std::vector<TenantSpec> specs, TenantAddressMap map);

  bool Next(std::uint32_t core, MemRef& out) override;
  std::uint32_t num_cores() const override { return num_cores_; }
  std::uint64_t footprint_bytes() const override { return footprint_; }
  std::string name() const override { return name_; }

  const TenantAddressMap& map() const { return map_; }

  /// Direct access to the co-scheduled children, e.g. to install a stop
  /// flag on a streamed ("serve") tenant after construction.
  std::size_t num_children() const { return children_.size(); }
  TraceSource& child(std::size_t t) { return *children_[t]; }

  /// Re-namespace each child's telemetry per tenant: child t's counter
  /// "serve.records" becomes "tenant<t>.serve.records" and its gauge
  /// "gauge.serve.eof" becomes "gauge.tenant<t>.serve.eof", so a serve
  /// tenant's ingest feed stays attributable inside a mix.
  void SampleTelemetry(StatSet& out) const override;

  /// Checkpointing: the round-robin lanes, per-core exhaustion flags and
  /// every child's cursors, recursively. Checkpointable only when every
  /// tenant is (a streamed "serve" tenant is not).
  bool checkpointable() const override {
    return std::all_of(children_.begin(), children_.end(),
                       [](const auto& c) { return c->checkpointable(); });
  }
  void Snapshot(ser::Writer& w) const override {
    w.Section("mix");
    for (const Lane& lane : lanes_) {
      w.U32(lane.tenant);
      w.U32(lane.served);
    }
    for (const auto& done : done_) w.U8Seq(done);
    for (const auto& child : children_) child->Snapshot(w);
  }
  void Restore(ser::Reader& r) override {
    r.Section("mix");
    for (Lane& lane : lanes_) {
      lane.tenant = r.U32();
      lane.served = r.U32();
    }
    for (auto& done : done_) {
      if (r.SeqLen(1) != done.size()) {
        throw ser::SerializeError("mix tenant-count mismatch");
      }
      for (std::size_t t = 0; t < done.size(); ++t) done[t] = r.U8() != 0;
    }
    for (const auto& child : children_) child->Restore(r);
  }

 private:
  struct Lane {
    std::uint32_t tenant = 0;  // whose turn it is
    std::uint32_t served = 0;  // refs served from `tenant` this turn
  };

  std::vector<std::unique_ptr<TraceSource>> children_;
  std::vector<TenantSpec> specs_;
  TenantAddressMap map_;
  std::uint32_t num_cores_ = 0;
  std::uint64_t footprint_ = 0;
  std::string name_;
  std::vector<Lane> lanes_;                 // per core
  std::vector<std::vector<bool>> done_;     // [core][tenant]
};

}  // namespace redcache::tenant
