#include "tenant/mix.hpp"

#include <cstdlib>
#include <stdexcept>

namespace redcache::tenant {

std::string MixSpec::Describe() const {
  std::string out(mode == TenantAddressMap::Mode::kOffset ? "o" : "i");
  out += std::to_string(window_bits);
  out += '[';
  bool first = true;
  for (const TenantSpec& t : tenants) {
    if (!first) out += '+';
    first = false;
    out += t.workload;
    out += ':';
    out += std::to_string(t.weight);
    if (t.min_gap != 0) {
      out += '@';
      out += std::to_string(t.min_gap);
    }
  }
  out += ']';
  return out;
}

MixSpec MixSpec::Parse(const std::string& text) {
  MixSpec spec;
  std::string item;
  auto flush = [&spec](const std::string& s) {
    if (s.empty()) return;
    TenantSpec t;
    const std::size_t colon = s.find(':');
    t.workload = s.substr(0, colon);
    if (t.workload.empty()) {
      throw std::invalid_argument("mix tenant without a workload: " + s);
    }
    if (colon != std::string::npos) {
      const std::string tail = s.substr(colon + 1);
      const std::size_t at = tail.find('@');
      const std::string weight = tail.substr(0, at);
      t.weight = static_cast<std::uint32_t>(std::strtoul(weight.c_str(),
                                                         nullptr, 10));
      if (t.weight == 0) {
        throw std::invalid_argument("mix tenant weight must be >= 1: " + s);
      }
      if (at != std::string::npos) {
        t.min_gap = static_cast<std::uint32_t>(
            std::strtoul(tail.substr(at + 1).c_str(), nullptr, 10));
      }
    }
    spec.tenants.push_back(std::move(t));
  };
  for (const char c : text) {
    if (c == ',') {
      flush(item);
      item.clear();
    } else {
      item.push_back(c);
    }
  }
  flush(item);
  if (spec.tenants.empty()) {
    throw std::invalid_argument("empty mix descriptor: " + text);
  }
  return spec;
}

}  // namespace redcache::tenant
