// Multi-tenant mix descriptor: which traffic streams share one memory
// system, how their address spaces are placed, and how the front-end
// co-schedules them.
//
// A MixSpec is part of a cell's identity: Describe() renders the complete
// descriptor canonically and feeds CellKey / GoldenKey, so two cells that
// differ anywhere in the mix (tenant set, weights, rate limits, placement
// mode or window) can never alias in the batch caches. Fields that cannot
// change simulation results (the solo baselines used by the slowdown
// telemetry gauge) are deliberately excluded from Describe().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tenant/address_map.hpp"

namespace redcache::tenant {

/// One co-scheduled traffic stream.
struct TenantSpec {
  /// Table II workload label. The CLI serve mode uses the reserved label
  /// "serve" for the externally streamed tenant.
  std::string workload;
  /// Weighted round-robin share: the front-end issues `weight` references
  /// from this tenant before moving to the next (per core).
  std::uint32_t weight = 1;
  /// Rate limit: minimum compute-gap cycles stretched onto every reference
  /// (0 = unlimited). Models a per-tenant injection throttle.
  std::uint32_t min_gap = 0;

  /// Observability-only solo baseline for the slowdown gauge; excluded from
  /// Describe() and every cache/golden key (it cannot change simulation
  /// results, exactly like SimPreset::telemetry_epoch_cycles).
  std::uint64_t solo_exec_cycles = 0;
  std::uint64_t solo_refs = 0;
};

struct MixSpec {
  std::vector<TenantSpec> tenants;
  TenantAddressMap::Mode mode = TenantAddressMap::Mode::kOffset;
  /// 0 = planner default (see TenantAddressMap::Plan).
  std::uint32_t window_bits = 0;

  /// A mix is active with two or more tenants; a single-tenant "mix" still
  /// activates accounting (useful for serve mode QoS on one stream).
  bool active() const { return !tenants.empty(); }
  std::uint32_t num_tenants() const {
    return static_cast<std::uint32_t>(tenants.size());
  }

  /// Canonical, key-safe description: "o0[LU:1+RDX:2@8]" (mode letter,
  /// window override, then label:weight[@min_gap] per tenant).
  std::string Describe() const;

  /// Parse the CLI syntax "LABEL[:WEIGHT[@MIN_GAP]],LABEL..." — e.g.
  /// "LU:2,RDX:1@8". Throws std::invalid_argument on malformed input.
  static MixSpec Parse(const std::string& text);
};

}  // namespace redcache::tenant
