// Per-tenant QoS summaries derived from exported stats.
//
// The simulator exports raw per-tenant counters ("tenant<N>.*"); this
// module turns a StatSet containing them back into structured rows and the
// derived QoS metrics the reports print: demand hit rate, HBM / main-memory
// bandwidth share, and slowdown versus a solo baseline. Keeping the
// derivation outside the simulator means cached cell stats stay
// baseline-independent — slowdown is computed at report time from whatever
// solo run the caller supplies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace redcache::tenant {

struct TenantQos {
  std::uint32_t tenant = 0;
  std::uint64_t refs = 0;
  std::uint64_t finish_cycles = 0;
  std::uint64_t reads = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t serve_hits = 0;
  std::uint64_t serve_misses = 0;
  std::uint64_t hbm_bytes = 0;
  std::uint64_t mm_bytes = 0;
  std::uint64_t rcu_drains = 0;
  /// Slowdown vs solo (finish_cycles / solo exec_cycles); 0 when no
  /// baseline was attached via ApplySoloBaseline.
  double slowdown = 0.0;

  double hit_rate() const {
    const std::uint64_t demand = serve_hits + serve_misses;
    return demand == 0 ? 0.0 : static_cast<double>(serve_hits) /
                                   static_cast<double>(demand);
  }
};

/// Extract every tenant<N>.* row present in `stats` (ascending tenant id).
/// Empty for single-tenant runs, which export no tenant counters at all.
std::vector<TenantQos> QosFromStats(const StatSet& stats);

/// Fill row `tenant`'s slowdown from a solo-run cycle count (no-op if the
/// tenant is absent or `solo_exec_cycles` is 0).
void ApplySoloBaseline(std::vector<TenantQos>& rows, std::uint32_t tenant,
                       std::uint64_t solo_exec_cycles);

/// Share of `row`'s traffic in the mix total for one device, in [0,1].
double HbmShare(const std::vector<TenantQos>& rows, const TenantQos& row);
double MmShare(const std::vector<TenantQos>& rows, const TenantQos& row);

/// One human-readable QoS line, e.g.
/// "tenant0 LU: hit 93.1% | hbm 48.2% | mm 51.0% | slowdown 1.31x".
std::string FormatQosLine(const std::vector<TenantQos>& rows,
                          const TenantQos& row, const std::string& label);

}  // namespace redcache::tenant
