#include "tenant/mix_trace.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace redcache::tenant {

MixTraceSource::MixTraceSource(
    std::vector<std::unique_ptr<TraceSource>> children,
    std::vector<TenantSpec> specs, TenantAddressMap map)
    : children_(std::move(children)), specs_(std::move(specs)), map_(map) {
  if (children_.empty() || children_.size() != specs_.size()) {
    throw std::invalid_argument("mix needs one trace source per tenant");
  }
  if (children_.size() != map_.num_tenants()) {
    throw std::invalid_argument("tenant map sized for a different mix");
  }
  num_cores_ = children_.front()->num_cores();
  name_ = "mix(";
  for (std::size_t t = 0; t < children_.size(); t++) {
    if (children_[t]->num_cores() != num_cores_) {
      throw std::invalid_argument("mix tenants disagree on core count");
    }
    if (specs_[t].weight == 0) {
      throw std::invalid_argument("mix tenant weight must be >= 1");
    }
    footprint_ += children_[t]->footprint_bytes();
    if (t != 0) name_ += '+';
    name_ += children_[t]->name();
  }
  name_ += ")@" + map_.Describe();
  lanes_.resize(num_cores_);
  done_.assign(num_cores_, std::vector<bool>(children_.size(), false));
}

bool MixTraceSource::Next(std::uint32_t core, MemRef& out) {
  Lane& lane = lanes_[core];
  std::vector<bool>& done = done_[core];
  const auto n = static_cast<std::uint32_t>(children_.size());
  // At most one full rotation: if every tenant declines, the core is dry.
  for (std::uint32_t probed = 0; probed < n; ) {
    const std::uint32_t t = lane.tenant;
    if (!done[t] && children_[t]->Next(core, out)) {
      out.addr = map_.Rebase(t, out.addr);
      out.gap = std::max(out.gap, specs_[t].min_gap);
      if (++lane.served >= specs_[t].weight) {
        lane.served = 0;
        lane.tenant = (t + 1) % n;
      }
      return true;
    }
    done[t] = true;
    lane.served = 0;
    lane.tenant = (t + 1) % n;
    probed++;
  }
  return false;
}

void MixTraceSource::SampleTelemetry(StatSet& out) const {
  const std::string gauge = "gauge.";
  for (std::size_t t = 0; t < children_.size(); t++) {
    StatSet child;
    children_[t]->SampleTelemetry(child);
    const std::string tenant = "tenant" + std::to_string(t) + ".";
    for (const auto& [name, value] : child.counters()) {
      // Keep gauges gauges: the tenant qualifier goes after the prefix.
      const std::string renamed =
          name.rfind(gauge, 0) == 0
              ? gauge + tenant + name.substr(gauge.size())
              : tenant + name;
      out.Counter(renamed) = value;
    }
  }
}

}  // namespace redcache::tenant
