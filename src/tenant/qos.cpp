#include "tenant/qos.hpp"

#include <cstdio>
#include <cstdlib>

namespace redcache::tenant {

namespace {

/// Parses "tenant<N>.<suffix>"; returns false for any other counter name.
bool SplitTenantKey(const std::string& name, std::uint32_t& tenant,
                    std::string& suffix) {
  constexpr char kPrefix[] = "tenant";
  constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.compare(0, kPrefixLen, kPrefix) != 0) return false;
  std::size_t i = kPrefixLen;
  if (i >= name.size() || name[i] < '0' || name[i] > '9') return false;
  std::uint32_t t = 0;
  while (i < name.size() && name[i] >= '0' && name[i] <= '9') {
    t = t * 10 + static_cast<std::uint32_t>(name[i] - '0');
    i++;
  }
  if (i >= name.size() || name[i] != '.') return false;
  tenant = t;
  suffix = name.substr(i + 1);
  return true;
}

}  // namespace

std::vector<TenantQos> QosFromStats(const StatSet& stats) {
  std::vector<TenantQos> rows;
  auto row = [&rows](std::uint32_t t) -> TenantQos& {
    if (t >= rows.size()) {
      const std::size_t old = rows.size();
      rows.resize(t + 1);
      for (std::size_t i = old; i < rows.size(); i++) {
        rows[i].tenant = static_cast<std::uint32_t>(i);
      }
    }
    return rows[t];
  };
  for (const auto& [name, value] : stats.counters()) {
    std::uint32_t t = 0;
    std::string suffix;
    if (!SplitTenantKey(name, t, suffix)) continue;
    TenantQos& r = row(t);
    if (suffix == "refs") r.refs = value;
    else if (suffix == "finish_cycles") r.finish_cycles = value;
    else if (suffix == "ctrl.reads") r.reads = value;
    else if (suffix == "ctrl.writebacks") r.writebacks = value;
    else if (suffix == "ctrl.serve_hits") r.serve_hits = value;
    else if (suffix == "ctrl.serve_misses") r.serve_misses = value;
    else if (suffix == "hbm.bytes") r.hbm_bytes = value;
    else if (suffix == "ddr4.bytes") r.mm_bytes = value;
    else if (suffix == "rcu_drains") r.rcu_drains = value;
  }
  return rows;
}

void ApplySoloBaseline(std::vector<TenantQos>& rows, std::uint32_t tenant,
                       std::uint64_t solo_exec_cycles) {
  if (tenant >= rows.size() || solo_exec_cycles == 0) return;
  rows[tenant].slowdown = static_cast<double>(rows[tenant].finish_cycles) /
                          static_cast<double>(solo_exec_cycles);
}

namespace {

double Share(std::uint64_t mine, std::uint64_t total) {
  return total == 0 ? 0.0
                    : static_cast<double>(mine) / static_cast<double>(total);
}

}  // namespace

double HbmShare(const std::vector<TenantQos>& rows, const TenantQos& row) {
  std::uint64_t total = 0;
  for (const TenantQos& r : rows) total += r.hbm_bytes;
  return Share(row.hbm_bytes, total);
}

double MmShare(const std::vector<TenantQos>& rows, const TenantQos& row) {
  std::uint64_t total = 0;
  for (const TenantQos& r : rows) total += r.mm_bytes;
  return Share(row.mm_bytes, total);
}

std::string FormatQosLine(const std::vector<TenantQos>& rows,
                          const TenantQos& row, const std::string& label) {
  char buf[256];
  if (row.slowdown > 0.0) {
    std::snprintf(buf, sizeof(buf),
                  "tenant%u %s: hit %.1f%% | hbm %.1f%% | mm %.1f%% | "
                  "slowdown %.2fx",
                  row.tenant, label.c_str(), row.hit_rate() * 100.0,
                  HbmShare(rows, row) * 100.0, MmShare(rows, row) * 100.0,
                  row.slowdown);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "tenant%u %s: hit %.1f%% | hbm %.1f%% | mm %.1f%%",
                  row.tenant, label.c_str(), row.hit_rate() * 100.0,
                  HbmShare(rows, row) * 100.0, MmShare(rows, row) * 100.0);
  }
  return buf;
}

}  // namespace redcache::tenant
