// Per-tenant address-space placement for co-scheduled workload mixes.
//
// Every tenant replays its trace against a private slice of the physical
// address space so that no two tenants ever reference the same block while
// still contending for the shared HBM cache sets, DRAM banks and channels.
// Two placement modes:
//
//  * kOffset — each tenant owns one contiguous window of 2^window_bits
//    bytes; the tenant id occupies the bits directly above the window.
//    Row/bank locality inside a tenant is identical to its solo run.
//  * kInterleave — tenant stripes of 2^window_bits bytes are interleaved
//    (tenant bits sit directly above the stripe offset), so tenants share
//    rows' neighbourhoods and collide harder on banks — the adversarial
//    placement for QoS studies.
//
// Both modes are injective over (tenant, offset-within-window): distinct
// tenants can never produce the same rebased address at any mapping or
// pow2 configuration, and TenantOf exactly inverts the placement. Rebased
// addresses stay below `capacity_limit` when the planner's bound
// (window_bits + tenant_bits <= log2(capacity)) holds, so the device-level
// modulo-capacity wrap (dram/address.hpp) can never fold two tenants
// together either.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace redcache::tenant {

class TenantAddressMap {
 public:
  enum class Mode : std::uint8_t { kOffset, kInterleave };

  TenantAddressMap() = default;
  /// `num_tenants` >= 1; `window_bits` >= kBlockShift. Throws
  /// std::invalid_argument on a degenerate shape.
  TenantAddressMap(Mode mode, std::uint32_t num_tenants,
                   std::uint32_t window_bits);

  /// Choose a window for `num_tenants` tenants of at most `max_footprint`
  /// bytes each inside a device of `capacity` bytes. Offset mode gets the
  /// largest window that still keeps every tenant below capacity; interleave
  /// mode stripes at page granularity. `window_bits_override` != 0 pins the
  /// window instead.
  static TenantAddressMap Plan(Mode mode, std::uint32_t num_tenants,
                               std::uint64_t max_footprint,
                               std::uint64_t capacity,
                               std::uint32_t window_bits_override = 0);

  /// Place tenant `t`'s private address `addr` into the shared space.
  /// Addresses beyond the tenant's window wrap within it (the same
  /// modulo-capacity convention the solo simulator uses device-side).
  Addr Rebase(std::uint32_t t, Addr addr) const {
    const Addr offset = addr & window_mask_;
    if (mode_ == Mode::kOffset) {
      return (Addr{t} << window_bits_) | offset;
    }
    const Addr stripe = addr >> window_bits_;
    return (stripe << (window_bits_ + tenant_bits_)) |
           (Addr{t} << window_bits_) | offset;
  }

  /// The tenant that owns a rebased address (exact inverse of Rebase).
  std::uint32_t TenantOf(Addr addr) const {
    const auto t = static_cast<std::uint32_t>((addr >> window_bits_) &
                                              ((1u << tenant_bits_) - 1u));
    return t < num_tenants_ ? t : 0;
  }

  Mode mode() const { return mode_; }
  std::uint32_t num_tenants() const { return num_tenants_; }
  std::uint32_t window_bits() const { return window_bits_; }
  std::uint32_t tenant_bits() const { return tenant_bits_; }

  /// Canonical short form, e.g. "o27" / "i12" (mode letter + window bits).
  std::string Describe() const;

 private:
  Mode mode_ = Mode::kOffset;
  std::uint32_t num_tenants_ = 1;
  std::uint32_t window_bits_ = 0;
  std::uint32_t tenant_bits_ = 0;
  Addr window_mask_ = 0;
};

const char* ToString(TenantAddressMap::Mode mode);

}  // namespace redcache::tenant
