#include "energy/model.hpp"

namespace redcache {

namespace {
constexpr double kCpuHz = 3.2e9;

double DramDynamicNj(const DramEnergyParams& p, const StatSet& s,
                     const std::string& prefix) {
  const double acts = static_cast<double>(s.GetCounter(prefix + "activates"));
  const double rd = static_cast<double>(s.GetCounter(prefix + "read_bursts"));
  const double wr = static_cast<double>(s.GetCounter(prefix + "write_bursts"));
  const double ref = static_cast<double>(s.GetCounter(prefix + "refreshes"));
  return acts * p.act_pre_nj + rd * p.read_burst_nj + wr * p.write_burst_nj +
         ref * p.refresh_nj;
}

double BackgroundNj(double watts_per_channel, std::uint32_t channels,
                    Cycle cycles) {
  const double seconds = static_cast<double>(cycles) / kCpuHz;
  return watts_per_channel * channels * seconds * 1e9;
}
}  // namespace

DramEnergyParams HbmEnergyParams() {
  DramEnergyParams p;
  p.act_pre_nj = 0.9;      // small in-package rows
  p.read_burst_nj = 2.0;   // ~4 pJ/bit * 576 bits (64 B + tag sideband)
  p.write_burst_nj = 2.1;
  p.refresh_nj = 25.0;
  p.background_w = 0.08;
  return p;
}

DramEnergyParams Ddr4EnergyParams() {
  DramEnergyParams p;
  p.act_pre_nj = 2.4;       // 2 KB external rows
  p.read_burst_nj = 10.0;   // ~20 pJ/bit * 512 bits incl. termination
  p.write_burst_nj = 10.5;
  p.refresh_nj = 60.0;
  p.background_w = 0.15;
  return p;
}

EnergyBreakdown EnergyModel::Compute(const StatSet& s, Cycle exec_cycles,
                                     std::uint32_t num_cores,
                                     std::uint32_t hbm_channels,
                                     std::uint32_t ddr_channels) const {
  EnergyBreakdown out;

  out.hbm_dynamic_nj = DramDynamicNj(hbm_, s, "hbm.");
  out.hbm_background_nj =
      BackgroundNj(hbm_.background_w, hbm_channels, exec_cycles);
  out.mainmem_dynamic_nj = DramDynamicNj(ddr4_, s, "ddr4.");
  out.mainmem_background_nj =
      BackgroundNj(ddr4_.background_w, ddr_channels, exec_cycles);

  out.controller_nj =
      static_cast<double>(s.GetCounter("ctrl.alpha_lookups")) *
          soc_.alpha_buffer_nj +
      static_cast<double>(s.GetCounter("ctrl.rcu_searches")) * soc_.rcu_cam_nj +
      static_cast<double>(s.GetCounter("ctrl.rcu_data_accesses")) *
          soc_.rcu_ram_nj +
      static_cast<double>(s.GetCounter("ctrl.presence_checks")) *
          soc_.presence_filter_nj +
      static_cast<double>(s.GetCounter("ctrl.insitu_updates")) *
          soc_.insitu_update_nj;

  const double l1 = static_cast<double>(s.GetCounter("core.l1_accesses"));
  const double l2 = static_cast<double>(s.GetCounter("core.l2_accesses"));
  const double l3 = static_cast<double>(s.GetCounter("core.l3_accesses"));
  out.sram_nj = l1 * soc_.l1_access_nj + l2 * soc_.l2_access_nj +
                l3 * soc_.l3_access_nj;

  const double refs = static_cast<double>(s.GetCounter("core.refs"));
  const double seconds = static_cast<double>(exec_cycles) / kCpuHz;
  out.cpu_nj = refs * soc_.core_ref_nj +
               soc_.core_static_w * num_cores * seconds * 1e9;
  return out;
}

}  // namespace redcache
