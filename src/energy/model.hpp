// Energy accounting.
//
// Replaces the paper's tool stack (McPAT for the processor die, CACTI 7.0
// for controller tables, the Micron power calculator for off-chip DRAM and
// the FGDRAM numbers for in-package HBM) with constant-parameter models.
// Values are taken from public literature: HBM data movement ~= 4 pJ/bit
// end to end (O'Connor et al., MICRO'17), commodity DDR4 ~= 20 pJ/bit
// including termination, plus per-row activation and refresh energies.
// Absolute joules are approximate; the evaluation compares architectures
// under identical parameters, so relative energy is meaningful.
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace redcache {

/// Per-event energies for one DRAM device class, in nanojoules, plus
/// background power in watts (charged over wall-clock execution time).
struct DramEnergyParams {
  double act_pre_nj = 1.0;      ///< one activate + eventual precharge
  double read_burst_nj = 1.6;   ///< one 64 B read burst (array + I/O)
  double write_burst_nj = 1.6;
  double refresh_nj = 30.0;     ///< one all-bank refresh
  double background_w = 0.08;   ///< per channel
};

/// In-package WideIO HBM: ~4 pJ/bit => ~2 nJ per 72 B TAD burst.
DramEnergyParams HbmEnergyParams();
/// Off-chip DDR4: ~20 pJ/bit incl. termination => ~10 nJ per 64 B burst.
DramEnergyParams Ddr4EnergyParams();

/// Controller-side SRAM/CAM structures (CACTI-7-class per-access energies,
/// nJ) and the processor-die proxy (McPAT-class).
struct SocEnergyParams {
  double alpha_buffer_nj = 0.005;   ///< TLB-side alpha-count buffer access
  double rcu_cam_nj = 0.012;        ///< 32-entry CAM search
  double rcu_ram_nj = 0.008;        ///< 32-entry data RAM access
  double presence_filter_nj = 0.003;  ///< Bear's DCP counting Bloom filter
  double l1_access_nj = 0.02;
  double l2_access_nj = 0.05;
  double l3_access_nj = 0.5;
  double core_ref_nj = 0.15;        ///< dynamic energy per retired data ref
  double core_static_w = 0.45;      ///< per-core leakage+clock power
  double insitu_update_nj = 0.004;  ///< Red-InSitu in-DRAM r-count update
};

/// Energy totals for one simulation, in nanojoules.
struct EnergyBreakdown {
  double hbm_dynamic_nj = 0;
  double hbm_background_nj = 0;
  double mainmem_dynamic_nj = 0;
  double mainmem_background_nj = 0;
  double controller_nj = 0;  ///< alpha/RCU/presence-filter structures
  double sram_nj = 0;        ///< on-die L1/L2/L3 accesses
  double cpu_nj = 0;         ///< core dynamic + static

  double HbmCacheNj() const {
    // The Fig. 10 metric: in-package DRAM plus the cache-management logic.
    return hbm_dynamic_nj + hbm_background_nj + controller_nj;
  }
  double SystemNj() const {
    return hbm_dynamic_nj + hbm_background_nj + mainmem_dynamic_nj +
           mainmem_background_nj + controller_nj + sram_nj + cpu_nj;
  }
};

/// Computes the breakdown from a finished run's stat counters. The stat
/// names are the ones System/controllers export ("hbm.activates",
/// "ddr4.read_bursts", "ctrl.alpha_lookups", "core.refs", ...).
class EnergyModel {
 public:
  EnergyModel() : hbm_(HbmEnergyParams()), ddr4_(Ddr4EnergyParams()) {}
  EnergyModel(const DramEnergyParams& hbm, const DramEnergyParams& ddr4,
              const SocEnergyParams& soc)
      : hbm_(hbm), ddr4_(ddr4), soc_(soc) {}

  EnergyBreakdown Compute(const StatSet& stats, Cycle exec_cycles,
                          std::uint32_t num_cores, std::uint32_t hbm_channels,
                          std::uint32_t ddr_channels) const;

  const SocEnergyParams& soc() const { return soc_; }

 private:
  DramEnergyParams hbm_;
  DramEnergyParams ddr4_;
  SocEnergyParams soc_;
};

}  // namespace redcache
