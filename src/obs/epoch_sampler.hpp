// Epoch time-series sampling over StatSet counters.
//
// The simulator's counters are cumulative; the interesting behavior is
// dynamic (gamma adapting per hit, the alpha table warming up, the RCU
// queue draining). The EpochSampler snapshots a cumulative StatSet every N
// simulated cycles and records the per-epoch *increment* of every counter,
// giving hit/miss/bypass rates, per-channel utilization, bandwidth and
// flush-reason time series without touching the simulation itself.
//
// Counter names with the "gauge." prefix are point-in-time values (queue
// depths, the current gamma, alpha-table occupancy): they are recorded raw
// at the sample instant, not differenced. Everything else is recorded as a
// signed per-epoch delta (signed because a few legacy ExportStats names,
// e.g. ctrl.resident_lines, are gauges exported as counters and may move
// down).
//
// Invariant (tested): the per-epoch deltas of a counter sum exactly to its
// final cumulative value, because deltas telescope — regardless of epoch
// width, adaptive resizing, or an early (serve-mode EOF) residual epoch.
//
// Two optional attachments (DESIGN.md section 14):
//  - a TelemetrySink (obs/telemetry_sink.hpp): each record is serialized
//    as one NDJSON line and written the moment the epoch closes, so a
//    long-running serve simulation can be watched live;
//  - an AdaptiveEpochController (obs/adaptive_epoch.hpp): the sampling
//    period shrinks across detected phase changes and grows back when the
//    series is flat, clamped to a [min, max] band.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace redcache::obs {

class AdaptiveEpochController;
struct AdaptiveEpochConfig;
class TelemetrySink;

/// Prefix marking point-in-time values (recorded raw, never differenced).
inline constexpr const char* kGaugePrefix = "gauge.";

struct EpochRecord {
  Cycle begin = 0;
  Cycle end = 0;
  std::map<std::string, std::int64_t> delta;    ///< per-epoch increments
  std::map<std::string, std::uint64_t> gauges;  ///< raw values at `end`
};

/// Per-epoch derived metrics computed from delta+gauges. All rates are
/// guarded against empty epochs (0/0 -> 0). Shared by the JSON / CSV /
/// NDJSON writers and the adaptive epoch controller.
struct DerivedMetrics {
  double hit_rate = 0.0;
  double bypass_rate = 0.0;
  double bw_bytes_per_cycle = 0.0;
};
DerivedMetrics DeriveMetrics(const EpochRecord& e);

/// How a run's telemetry epochs are paced: a fixed period, or the adaptive
/// controller seeded from the base period. Parsed from the CLI `--epoch`
/// value ("N", "auto", or "auto:MIN:MAX").
struct EpochSpec {
  Cycle cycles = 0;  ///< base period; 0 = the preset default
  bool adaptive = false;
  Cycle min_cycles = 0;  ///< adaptive lower clamp; 0 = base / 8
  Cycle max_cycles = 0;  ///< adaptive upper clamp; 0 = base * 4
};

/// Parse "--epoch" syntax: "250000" (fixed), "auto" (adaptive with derived
/// clamps), "auto:MIN:MAX" (explicit clamp band). Returns false (out
/// untouched) on anything else.
bool ParseEpochSpec(const std::string& text, EpochSpec& out);

class EpochSampler {
 public:
  /// `epoch_cycles` >= 1: nominal sampling period in simulated CPU cycles.
  /// The event-paced run loop clamps its time jumps to next_due(), so when
  /// attached to System::Run every record covers exactly epoch_cycles
  /// (except the Finalize residual). Driven by other loops a boundary may
  /// still be overshot; the record then covers the actual [begin, end).
  explicit EpochSampler(Cycle epoch_cycles);
  ~EpochSampler();
  EpochSampler(const EpochSampler&) = delete;
  EpochSampler& operator=(const EpochSampler&) = delete;

  /// Current sampling period. Constant unless adaptation is enabled.
  Cycle epoch_cycles() const { return epoch_cycles_; }

  /// Enable variance-driven epoch resizing (DESIGN.md section 14). Must be
  /// called before the first Sample. With adaptation on, every record also
  /// carries a "telemetry.epoch_cycles" gauge (the width that produced it)
  /// so the narrowing is visible in the exported series; with it off the
  /// output is byte-identical to pre-adaptive builds.
  void EnableAdaptive(const AdaptiveEpochConfig& cfg);
  bool adaptive() const { return adaptive_ != nullptr; }
  const AdaptiveEpochController* adaptive_controller() const {
    return adaptive_.get();
  }

  /// Attach a streaming sink: every record is written as one NDJSON epoch
  /// line the moment it closes. With `retain_epochs` false only the most
  /// recent record is kept in memory (bounded for arbitrarily long serve
  /// runs); the end-of-run JSON/CSV writers then see just that record, so
  /// retention should stay on when both outputs are wanted. The sink is
  /// borrowed and must outlive the sampler's last Sample/Finalize.
  void SetSink(TelemetrySink* sink, bool retain_epochs);

  /// Cheap inline check for the run loop.
  bool Due(Cycle now) const { return now >= next_due_; }

  /// Next epoch boundary. The event loop clamps its time jumps to this so
  /// epochs stay exact under skip-ahead (a clamped visit samples and
  /// re-derives the same wake; it cannot perturb simulation state).
  Cycle next_due() const { return next_due_; }

  /// Seed the telescoping baseline after a checkpoint restore. Epoch
  /// accounting resumes at `at` (the restored cycle): the first epoch
  /// begins there instead of 0, and `cumulative` — the restored run's
  /// counters as of `at` — becomes the carried baseline, so the first
  /// epoch's deltas measure only post-restore progress. The telescoping
  /// invariant then reads: sum(deltas) + baseline == final totals, with
  /// the baseline published in the NDJSON header for validators
  /// (scripts/check_telemetry.py). Must be called before the first Sample.
  void SeedBaseline(Cycle at, const StatSet& cumulative);
  bool restored() const { return restored_; }
  Cycle restored_at() const { return restored_at_; }
  /// Pre-restore cumulative value of every non-gauge counter (empty unless
  /// SeedBaseline was called).
  const std::map<std::string, std::uint64_t>& baseline() const {
    return baseline_;
  }

  /// Record the epoch ending at `now` from the cumulative snapshot.
  void Sample(Cycle now, const StatSet& cumulative);

  /// Record the residual partial epoch at end of run (no-op if nothing
  /// moved and no time passed since the last sample).
  void Finalize(Cycle end, const StatSet& cumulative);

  /// Retained records (all of them, unless a sink disabled retention).
  const std::vector<EpochRecord>& epochs() const { return epochs_; }

  /// Records ever closed, including residuals and non-retained ones.
  std::uint64_t total_epochs() const { return total_epochs_; }

  /// Final cumulative value of every non-gauge counter seen so far — the
  /// telescoping target the NDJSON end record publishes for validators.
  const std::map<std::string, std::uint64_t>& cumulative() const {
    return prev_;
  }

  /// Narrowest / widest period actually used (equal unless adaptive).
  Cycle min_width_used() const { return min_width_used_; }
  Cycle max_width_used() const { return max_width_used_; }

 private:
  void Record(Cycle now, const StatSet& cumulative);

  Cycle epoch_cycles_;
  Cycle next_due_;
  Cycle last_sample_ = 0;
  bool restored_ = false;
  Cycle restored_at_ = 0;
  std::map<std::string, std::uint64_t> baseline_;
  Cycle min_width_used_;
  Cycle max_width_used_;
  bool retain_ = true;
  std::uint64_t total_epochs_ = 0;
  TelemetrySink* sink_ = nullptr;
  std::unique_ptr<AdaptiveEpochController> adaptive_;
  std::map<std::string, std::uint64_t> prev_;
  std::vector<EpochRecord> epochs_;
};

/// Run identification embedded in the serialized artifacts.
struct TelemetryMeta {
  std::string arch;
  std::string workload;
  std::string preset;
  /// Resolved registry policy name (canonical casing); may differ from
  /// `arch` for extension controllers ("RedCache-4way") and aliases.
  std::string policy;
  /// Canonical mix descriptor (MixSpec::Describe) when a multi-tenant mix
  /// was active; empty for single-tenant runs.
  std::string mix;
  Cycle exec_cycles = 0;
};

/// Per-epoch derived metrics (computed by the writers from delta+gauges):
/// hit_rate, bypass_rate, aggregate bytes/cycle, plus any gauges present.
/// JSON layout:
///   { "meta": {...}, "epochs": [ {"begin":..,"end":..,"derived":{..},
///     "gauges":{..}, "delta":{..}}, ... ] }
/// Counter keys are emitted in natural (numeric-aware) name order.
bool WriteTelemetryJson(const std::string& path, const EpochSampler& sampler,
                        const TelemetryMeta& meta);
std::string TelemetryJson(const EpochSampler& sampler,
                          const TelemetryMeta& meta);

/// CSV: one row per epoch; columns are begin, end, the derived metrics,
/// then the union of gauge and delta names in natural order (missing
/// values are empty cells) — the exact key set the JSON writer emits.
/// Meta values containing commas/quotes/spaces are double-quote escaped.
bool WriteTelemetryCsv(const std::string& path, const EpochSampler& sampler,
                       const TelemetryMeta& meta);
std::string TelemetryCsv(const EpochSampler& sampler,
                         const TelemetryMeta& meta);

}  // namespace redcache::obs
