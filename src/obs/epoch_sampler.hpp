// Epoch time-series sampling over StatSet counters.
//
// The simulator's counters are cumulative; the interesting behavior is
// dynamic (gamma adapting per hit, the alpha table warming up, the RCU
// queue draining). The EpochSampler snapshots a cumulative StatSet every N
// simulated cycles and records the per-epoch *increment* of every counter,
// giving hit/miss/bypass rates, per-channel utilization, bandwidth and
// flush-reason time series without touching the simulation itself.
//
// Counter names with the "gauge." prefix are point-in-time values (queue
// depths, the current gamma, alpha-table occupancy): they are recorded raw
// at the sample instant, not differenced. Everything else is recorded as a
// signed per-epoch delta (signed because a few legacy ExportStats names,
// e.g. ctrl.resident_lines, are gauges exported as counters and may move
// down).
//
// Invariant (tested): the per-epoch deltas of a counter sum exactly to its
// final cumulative value, because deltas telescope.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace redcache::obs {

/// Prefix marking point-in-time values (recorded raw, never differenced).
inline constexpr const char* kGaugePrefix = "gauge.";

struct EpochRecord {
  Cycle begin = 0;
  Cycle end = 0;
  std::map<std::string, std::int64_t> delta;    ///< per-epoch increments
  std::map<std::string, std::uint64_t> gauges;  ///< raw values at `end`
};

class EpochSampler {
 public:
  /// `epoch_cycles` >= 1: nominal sampling period in simulated CPU cycles.
  /// The event-paced run loop clamps its time jumps to next_due(), so when
  /// attached to System::Run every record covers exactly epoch_cycles
  /// (except the Finalize residual). Driven by other loops a boundary may
  /// still be overshot; the record then covers the actual [begin, end).
  explicit EpochSampler(Cycle epoch_cycles);

  Cycle epoch_cycles() const { return epoch_cycles_; }

  /// Cheap inline check for the run loop.
  bool Due(Cycle now) const { return now >= next_due_; }

  /// Next epoch boundary. The event loop clamps its time jumps to this so
  /// epochs stay exact under skip-ahead (a clamped visit samples and
  /// re-derives the same wake; it cannot perturb simulation state).
  Cycle next_due() const { return next_due_; }

  /// Record the epoch ending at `now` from the cumulative snapshot.
  void Sample(Cycle now, const StatSet& cumulative);

  /// Record the residual partial epoch at end of run (no-op if nothing
  /// moved and no time passed since the last sample).
  void Finalize(Cycle end, const StatSet& cumulative);

  const std::vector<EpochRecord>& epochs() const { return epochs_; }

 private:
  void Record(Cycle now, const StatSet& cumulative);

  Cycle epoch_cycles_;
  Cycle next_due_;
  Cycle last_sample_ = 0;
  std::map<std::string, std::uint64_t> prev_;
  std::vector<EpochRecord> epochs_;
};

/// Run identification embedded in the serialized artifacts.
struct TelemetryMeta {
  std::string arch;
  std::string workload;
  std::string preset;
  Cycle exec_cycles = 0;
};

/// Per-epoch derived metrics (computed by the writers from delta+gauges):
/// hit_rate, bypass_rate, aggregate bytes/cycle, plus any gauges present.
/// JSON layout:
///   { "meta": {...}, "epochs": [ {"begin":..,"end":..,"derived":{..},
///     "gauges":{..}, "delta":{..}}, ... ] }
/// Counter keys are emitted in natural (numeric-aware) name order.
bool WriteTelemetryJson(const std::string& path, const EpochSampler& sampler,
                        const TelemetryMeta& meta);
std::string TelemetryJson(const EpochSampler& sampler,
                          const TelemetryMeta& meta);

/// CSV: one row per epoch; columns are begin, end, the derived metrics,
/// then the union of gauge and delta names in natural order (missing
/// values are empty cells).
bool WriteTelemetryCsv(const std::string& path, const EpochSampler& sampler,
                       const TelemetryMeta& meta);
std::string TelemetryCsv(const EpochSampler& sampler,
                         const TelemetryMeta& meta);

}  // namespace redcache::obs
