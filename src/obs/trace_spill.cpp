#include "obs/trace_spill.hpp"

#include <set>
#include <sstream>

#include "obs/json.hpp"

namespace redcache::obs {

namespace {
// Flush threshold: bounds writer memory regardless of run length while
// amortizing ofstream calls over many small event records.
constexpr std::size_t kFlushBytes = std::size_t{64} * 1024;
}  // namespace

TraceSpillWriter::TraceSpillWriter(const std::string& path) : out_(path) {
  ok_ = static_cast<bool>(out_);
  if (!ok_) return;
  buf_.reserve(kFlushBytes + 4096);
  Append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
}

TraceSpillWriter::~TraceSpillWriter() {
  // Finish() not called (early exit path): close what we have so the file
  // is at least inspectable, though not valid JSON.
  if (ok_ && !finished_) FlushBuffer();
}

void TraceSpillWriter::Append(const std::string& chunk) {
  buf_ += chunk;
  if (buf_.size() >= kFlushBytes) FlushBuffer();
}

void TraceSpillWriter::FlushBuffer() {
  if (!buf_.empty()) {
    out_ << buf_;
    buf_.clear();
  }
  if (!out_) ok_ = false;
}

void TraceSpillWriter::AppendEvent(const TraceEvent& e) {
  tracks_.emplace(std::make_pair(e.device, TraceTrackTid(e)),
                  TraceTrackName(e));
  if (!first_) Append(",");
  first_ = false;
  Append(TraceEventJson(e));
}

void TraceSpillWriter::Consume(const TraceEvent& e) {
  if (!ok_ || finished_) return;
  spilled_++;
  AppendEvent(e);
}

bool TraceSpillWriter::Finish(const TraceBuffer& ring) {
  if (finished_) return ok_;
  finished_ = true;
  if (!ok_) return false;

  const std::vector<TraceEvent> retained = ring.Snapshot();
  for (const TraceEvent& e : retained) AppendEvent(e);

  // Metadata for every device and track the run ever touched — spilled-only
  // tracks included, which the whole-buffer writer cannot know about.
  std::set<std::uint8_t> devices;
  for (const auto& [key, name] : tracks_) devices.insert(key.first);
  for (const std::uint8_t d : devices) {
    std::ostringstream os;
    if (!first_) os << ",";
    first_ = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
       << static_cast<unsigned>(d) << ",\"tid\":0,\"args\":{\"name\":\""
       << TraceDeviceName(d) << "\"}}";
    Append(os.str());
  }
  for (const auto& [key, name] : tracks_) {
    std::ostringstream os;
    if (!first_) os << ",";
    first_ = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
       << static_cast<unsigned>(key.first) << ",\"tid\":" << key.second
       << ",\"args\":{\"name\":\"" << JsonEscape(name) << "\"}}";
    Append(os.str());
  }

  const std::uint64_t overwritten = ring.dropped();
  const std::uint64_t lost =
      overwritten >= spilled_ ? overwritten - spilled_ : 0;
  std::ostringstream os;
  os << "],\"otherData\":{\"generator\":\"redcache-obs\","
     << "\"time_unit\":\"cpu_cycle\",\"emitted\":" << ring.emitted()
     << ",\"spilled\":" << spilled_ << ",\"retained\":" << retained.size()
     << ",\"dropped\":" << lost << ",\"ring_capacity\":" << ring.capacity()
     << "}}";
  Append(os.str());
  Append("\n");
  FlushBuffer();
  out_.close();
  if (!out_) ok_ = false;
  return ok_;
}

}  // namespace redcache::obs
