#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "obs/json.hpp"

namespace redcache::obs {

thread_local TraceBuffer* tls_active_trace = nullptr;

const char* ToString(TraceEventType t) {
  switch (t) {
    case TraceEventType::kCmdRead: return "RD";
    case TraceEventType::kCmdWrite: return "WR";
    case TraceEventType::kCmdActivate: return "ACT";
    case TraceEventType::kCmdPrecharge: return "PRE";
    case TraceEventType::kCmdRefresh: return "REF";
    case TraceEventType::kAlphaBypass: return "alpha_bypass";
    case TraceEventType::kRefreshBypass: return "refresh_bypass";
    case TraceEventType::kGammaInvalidate: return "gamma_invalidate";
    case TraceEventType::kRcuServe: return "rcu_serve";
    case TraceEventType::kRcuFlush: return "rcu_flush";
    case TraceEventType::kFill: return "fill";
    case TraceEventType::kVictimWriteback: return "victim_writeback";
    case TraceEventType::kRetune: return "retune";
  }
  return "?";
}

namespace {

std::size_t RoundUpPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

bool IsCommand(TraceEventType t) {
  return t <= TraceEventType::kCmdRefresh;
}

const char* RcuFlushReason(std::uint64_t arg) {
  switch (arg) {
    case kRcuFlushMerged: return "merged";
    case kRcuFlushIdle: return "idle";
    case kRcuFlushCapacity: return "capacity";
    default: return "?";
  }
}

void AppendArgs(std::ostringstream& os, const TraceEvent& e) {
  char addr_buf[24];
  std::snprintf(addr_buf, sizeof(addr_buf), "0x%llx",
                static_cast<unsigned long long>(e.addr));
  os << "\"args\":{\"addr\":\"" << addr_buf << "\"";
  if (IsCommand(e.type)) {
    os << ",\"row\":" << e.arg;
  } else if (e.type == TraceEventType::kRcuFlush) {
    os << ",\"reason\":\"" << RcuFlushReason(e.arg) << "\"";
  } else {
    os << ",\"value\":" << e.arg;
  }
  os << "}";
}

}  // namespace

const char* TraceDeviceName(std::uint8_t device) {
  switch (device) {
    case kTraceDeviceHbm: return "hbm";
    case kTraceDeviceMainMem: return "ddr4";
    default: return "policy";
  }
}

// Commands render one lane per (channel, rank, bank) so overlapping bank
// activity never produces mis-nested slices.
std::uint32_t TraceTrackTid(const TraceEvent& e) {
  if (e.device == kTraceDevicePolicy) return 0;
  if (e.type == TraceEventType::kCmdRefresh) {
    return (std::uint32_t{e.channel} << 16) | 0xFF00u | e.rank;
  }
  return (std::uint32_t{e.channel} << 16) | (std::uint32_t{e.rank} << 8) |
         e.bank;
}

std::string TraceTrackName(const TraceEvent& e) {
  if (e.device == kTraceDevicePolicy) return "decisions";
  std::ostringstream os;
  os << "chan" << e.channel;
  if (e.type == TraceEventType::kCmdRefresh) {
    os << ".rank" << static_cast<unsigned>(e.rank) << ".refresh";
  } else {
    os << ".rank" << static_cast<unsigned>(e.rank) << ".bank"
       << static_cast<unsigned>(e.bank);
  }
  return os.str();
}

std::string TraceEventJson(const TraceEvent& e) {
  std::ostringstream os;
  os << "{\"name\":\"" << ToString(e.type) << "\",\"cat\":\""
     << (IsCommand(e.type) ? "dram" : "policy")
     << "\",\"ph\":\"X\",\"ts\":" << e.cycle
     << ",\"dur\":" << std::max<std::uint32_t>(e.dur, 1)
     << ",\"pid\":" << static_cast<unsigned>(e.device)
     << ",\"tid\":" << TraceTrackTid(e) << ",";
  AppendArgs(os, e);
  os << "}";
  return os.str();
}

TraceBuffer::TraceBuffer(std::size_t capacity) {
  const std::size_t cap = RoundUpPow2(std::max<std::size_t>(capacity, 2));
  events_.resize(cap);
  mask_ = cap - 1;
}

std::vector<TraceEvent> TraceBuffer::Snapshot() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = head_ - n;
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(events_[(first + i) & mask_]);
  }
  return out;
}

std::string ChromeTraceJson(const TraceBuffer& trace) {
  const std::vector<TraceEvent> events = trace.Snapshot();
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
     << "\"generator\":\"redcache-obs\",\"time_unit\":\"cpu_cycle\","
     << "\"emitted\":" << trace.emitted()
     << ",\"dropped\":" << trace.dropped() << "},\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) os << ",";
    first = false;
  };

  // Metadata: name the processes (devices) and every track we will use.
  std::set<std::uint8_t> devices;
  for (const TraceEvent& e : events) devices.insert(e.device);
  for (const std::uint8_t d : devices) {
    comma();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
       << static_cast<unsigned>(d) << ",\"tid\":0,\"args\":{\"name\":\""
       << TraceDeviceName(d) << "\"}}";
  }
  // One thread_name record per track (derived from any event on it).
  std::set<std::pair<std::uint8_t, std::uint32_t>> named;
  for (const TraceEvent& e : events) {
    const auto key = std::make_pair(e.device, TraceTrackTid(e));
    if (!named.insert(key).second) continue;
    comma();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
       << static_cast<unsigned>(e.device) << ",\"tid\":" << TraceTrackTid(e)
       << ",\"args\":{\"name\":\"" << JsonEscape(TraceTrackName(e)) << "\"}}";
  }

  for (const TraceEvent& e : events) {
    comma();
    os << TraceEventJson(e);
  }
  os << "]}";
  return os.str();
}

bool WriteChromeTrace(const std::string& path, const TraceBuffer& trace) {
  std::ofstream out(path);
  if (!out) return false;
  out << ChromeTraceJson(trace) << '\n';
  return static_cast<bool>(out);
}

bool ValidateChromeTrace(const std::string& json, std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  JsonValue root;
  std::string parse_error;
  if (!ParseJson(json, root, &parse_error)) {
    return fail("not valid JSON: " + parse_error);
  }
  if (!root.is_object()) return fail("top level is not an object");
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return fail("missing traceEvents array");
  }
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    const std::string at = "traceEvents[" + std::to_string(i) + "] ";
    if (!e.is_object()) return fail(at + "is not an object");
    const JsonValue* name = e.Find("name");
    if (name == nullptr || !name->is_string()) {
      return fail(at + "missing string \"name\"");
    }
    const JsonValue* ph = e.Find("ph");
    if (ph == nullptr || !ph->is_string() || ph->string.size() != 1) {
      return fail(at + "missing one-character \"ph\"");
    }
    const JsonValue* pid = e.Find("pid");
    const JsonValue* tid = e.Find("tid");
    if (pid == nullptr || !pid->is_number() || tid == nullptr ||
        !tid->is_number()) {
      return fail(at + "missing numeric \"pid\"/\"tid\"");
    }
    if (ph->string == "M") continue;  // metadata carries no timestamp
    const JsonValue* ts = e.Find("ts");
    if (ts == nullptr || !ts->is_number()) {
      return fail(at + "missing numeric \"ts\"");
    }
    if (ph->string == "X") {
      const JsonValue* dur = e.Find("dur");
      if (dur == nullptr || !dur->is_number() || dur->number < 0) {
        return fail(at + "complete event missing non-negative \"dur\"");
      }
    }
  }
  return true;
}

}  // namespace redcache::obs
