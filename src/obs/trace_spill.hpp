// Incremental spill-to-disk writer for windowed full-run tracing.
//
// The TraceBuffer ring alone forces a choice: size it for the whole run
// (unbounded memory on a full Table II cell or a long serve run) or keep a
// window and lose the history. The spill writer removes the choice — attach
// it as the ring's overwrite sink and every event the window would discard
// is appended to a Chrome trace-event JSON file instead, oldest first, in
// bounded (~64 KiB buffered) memory. At end of run, Finish() appends the
// still-retained window, the process/thread metadata for every track ever
// seen (including spilled-only tracks), and an otherData accounting block:
//
//   {"displayTimeUnit":"ms","traceEvents":[ <spilled...>, <retained...>,
//    <metadata "M" records> ],"otherData":{"generator":...,"emitted":N,
//    "spilled":M,"retained":K,"dropped":0,"ring_capacity":C}}
//
// Metadata records may appear anywhere in a trace-event array, so placing
// them after the events keeps the file appendable; otherData comes last for
// the same reason. emitted == spilled + retained and dropped == 0 whenever
// the writer was attached before the first overwrite — that equality is the
// CI memory-cap proof that a full run was traced through a small window.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <utility>

#include "obs/trace.hpp"

namespace redcache::obs {

class TraceSpillWriter : public TraceSpillSink {
 public:
  /// Opens `path` and writes the array prefix. Check ok() — a failed open
  /// makes every later call a no-op rather than an error cascade.
  explicit TraceSpillWriter(const std::string& path);
  ~TraceSpillWriter() override;

  TraceSpillWriter(const TraceSpillWriter&) = delete;
  TraceSpillWriter& operator=(const TraceSpillWriter&) = delete;

  /// Ring overwrite hook: append one event (buffered).
  void Consume(const TraceEvent& e) override;

  /// Append `ring`'s retained window, the track metadata, and the closing
  /// otherData block, then flush and close. Idempotent; false on I/O error
  /// or when the writer never opened.
  bool Finish(const TraceBuffer& ring);

  bool ok() const { return ok_; }
  std::uint64_t spilled() const { return spilled_; }

 private:
  void AppendEvent(const TraceEvent& e);
  void Append(const std::string& chunk);
  void FlushBuffer();

  std::ofstream out_;
  std::string buf_;
  bool ok_ = false;
  bool first_ = true;
  bool finished_ = false;
  std::uint64_t spilled_ = 0;
  /// (device, tid) -> track name, for the end-of-run metadata records.
  std::map<std::pair<std::uint8_t, std::uint32_t>, std::string> tracks_;
};

}  // namespace redcache::obs
