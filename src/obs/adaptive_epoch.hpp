// Variance-driven adaptive epoch sizing for the telemetry sampler.
//
// Fixed-width epochs face a resolution/volume trade-off: wide epochs
// average away exactly the phase transitions the RedCache-vs-rivals
// comparison hinges on (admission-gate retunes, Banshee's frequency-gate
// flips, TicToc duty-window moves), while narrow epochs drown a long serve
// run in records. The controller resolves it by watching the *per-epoch
// delta variance*: when consecutive epochs' derived rates (hit rate, bypass
// rate, bytes/cycle) move more than a threshold, the sampling period halves
// — finer sampling across the detected phase change — and when the series
// stays flat for a few epochs it doubles back, clamped to [min, max].
//
// The controller only ever changes *when the sampler looks*, never what the
// simulation does: System::Run clamps its time jumps to the sampler's
// next_due() exactly as for fixed epochs, and a clamped visit is a provable
// no-op on simulation state (DESIGN.md section 9). With adaptation off the
// sampler behaves byte-identically to pre-adaptive builds.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "obs/epoch_sampler.hpp"

namespace redcache::obs {

struct AdaptiveEpochConfig {
  Cycle min_cycles = 1;          ///< lower clamp (finest sampling)
  Cycle max_cycles = ~Cycle{0};  ///< upper clamp (coarsest sampling)
  /// Phase-change score above which the period halves. The score is the
  /// largest change across the derived rates: |d hit_rate|, |d bypass_rate|
  /// (both already in [0,1]) and the relative bandwidth change.
  double shrink_score = 0.10;
  /// Score below which an epoch counts as stable.
  double grow_score = 0.03;
  /// Consecutive stable epochs required before the period doubles.
  int stable_epochs_to_grow = 2;
};

class AdaptiveEpochController {
 public:
  explicit AdaptiveEpochController(const AdaptiveEpochConfig& cfg);

  /// Decide the width of the *next* epoch from the one that just closed.
  /// Deterministic: depends only on the record sequence. Degenerate records
  /// (end <= begin) keep the current width and reset nothing.
  Cycle Update(const EpochRecord& e, Cycle current_width);

  const AdaptiveEpochConfig& config() const { return cfg_; }
  std::uint64_t shrinks() const { return shrinks_; }
  std::uint64_t grows() const { return grows_; }

  /// The phase-change score between two consecutive epochs' derived
  /// metrics (exposed for tests and the validator's documentation).
  static double PhaseScore(const DerivedMetrics& prev,
                           const DerivedMetrics& cur);

 private:
  Cycle Clamp(Cycle width) const;

  AdaptiveEpochConfig cfg_;
  bool have_prev_ = false;
  DerivedMetrics prev_;
  int stable_streak_ = 0;
  std::uint64_t shrinks_ = 0;
  std::uint64_t grows_ = 0;
};

}  // namespace redcache::obs
