// Minimal JSON support for the observability layer: string escaping for
// the writers and a strict recursive-descent parser used to validate the
// artifacts we emit (telemetry series, Chrome trace files) in tests and CI
// without an external dependency.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace redcache::obs {

/// Escape `s` for inclusion inside a JSON string literal (no quotes added).
std::string JsonEscape(const std::string& s);

/// A parsed JSON value. Objects preserve no duplicate keys (last wins).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

/// Strict parse of a complete JSON document (trailing garbage rejected).
/// On failure returns false and describes the problem in `error`.
bool ParseJson(const std::string& text, JsonValue& out, std::string* error);

}  // namespace redcache::obs
