// Streaming telemetry sinks: NDJSON epoch records emitted as each epoch
// closes, instead of one write-at-exit artifact.
//
// The PR 3 telemetry writers buffer the whole series and serialize it after
// the run — useless for serve mode, where the run has no natural end and
// the operator wants to *watch* the cache tier. A TelemetrySink is a
// line-oriented byte stream: the sampler writes one self-contained JSON
// object per line (NDJSON) the moment an epoch closes, so `--telemetry -`
// can be piped straight into `jq`, a dashboard, or scripts/
// check_telemetry.py while the simulation is still running.
//
// Record stream layout (schema 1):
//   {"type":"header", run identity, epoch pacing}          -- first line
//   {"type":"epoch","seq":K,"begin":..,"end":..,
//    "derived":{..},"gauges":{..},"delta":{..}}            -- per epoch
//   {"type":"end","exec_cycles":..,"num_epochs":..,
//    "totals":{counter: final cumulative value, ...}}      -- last line
// The end record's totals are the telescoping target: summing every epoch's
// delta for a counter must reproduce them exactly.
//
// Robustness contract: writes retry on EINTR, and a dead reader (EPIPE /
// any hard write error) silently disarms the sink instead of killing the
// run — a serve-mode drain stays graceful even when the telemetry consumer
// goes away first. Opening a sink ignores SIGPIPE process-wide (once) so
// the failure surfaces as a write error, not a signal.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/epoch_sampler.hpp"

namespace redcache::obs {

class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;

  /// Write one NDJSON record (`line` carries no trailing newline; the sink
  /// appends it) and flush, so a consumer sees the epoch immediately.
  /// Returns false once the sink is broken; further calls are no-ops.
  virtual bool WriteLine(const std::string& line) = 0;

  virtual bool ok() const = 0;

  /// Human-readable target for CLI summaries ("stdout", a path, ...).
  virtual std::string describe() const = 0;
};

/// File-descriptor sink covering the file, stdout ("-") and FIFO/pipe
/// backends. Buffering is bounded to the single line being written.
class FdTelemetrySink : public TelemetrySink {
 public:
  /// Open `path` for writing ("-" = stdout, unowned; a FIFO path blocks
  /// until a reader attaches, like any writer). Throws std::runtime_error
  /// when the path cannot be opened.
  static std::unique_ptr<FdTelemetrySink> OpenPath(const std::string& path);

  ~FdTelemetrySink() override;
  FdTelemetrySink(const FdTelemetrySink&) = delete;
  FdTelemetrySink& operator=(const FdTelemetrySink&) = delete;

  bool WriteLine(const std::string& line) override;
  bool ok() const override { return !broken_; }
  std::string describe() const override { return target_; }
  std::uint64_t lines_written() const { return lines_written_; }

 private:
  FdTelemetrySink(int fd, bool owns_fd, std::string target);

  int fd_;
  bool owns_fd_;
  bool broken_ = false;
  std::uint64_t lines_written_ = 0;
  std::string target_;
};

/// In-memory sink for tests and embedders.
class BufferTelemetrySink : public TelemetrySink {
 public:
  bool WriteLine(const std::string& line) override {
    lines.push_back(line);
    return true;
  }
  bool ok() const override { return true; }
  std::string describe() const override { return "buffer"; }

  std::vector<std::string> lines;
};

/// Factory: "-" = stdout, otherwise a file/FIFO path. Throws on failure.
std::unique_ptr<TelemetrySink> OpenTelemetrySink(const std::string& path);

/// True when `path` selects the streaming NDJSON format ("-" or *.ndjson)
/// rather than a write-at-exit JSON/CSV artifact.
bool StreamingTelemetryPath(const std::string& path);

// --- NDJSON record builders (no trailing newline) --------------------------
std::string NdjsonHeaderLine(const TelemetryMeta& meta,
                             const EpochSampler& sampler);
std::string NdjsonEpochLine(std::uint64_t seq, const EpochRecord& e);
std::string NdjsonEndLine(const TelemetryMeta& meta,
                          const EpochSampler& sampler);

/// Glue for one run's telemetry: resolves the epoch pacing, owns the
/// sampler and (for streaming paths) the sink. Callers attach sampler() to
/// the System, call Begin before the run and Close after it.
///
///   TelemetrySession session(path, epoch_spec, preset_epoch_cycles);
///   system.SetTelemetry(&session.sampler());
///   session.Begin(meta);            // NDJSON header (streaming only)
///   ... run ...
///   meta.exec_cycles = result.exec_cycles;
///   session.Close(meta);            // end record, or JSON/CSV file write
class TelemetrySession {
 public:
  /// Throws std::runtime_error when a streaming path cannot be opened.
  TelemetrySession(std::string path, const EpochSpec& epoch,
                   Cycle preset_epoch_cycles);
  ~TelemetrySession();

  EpochSampler& sampler() { return *sampler_; }
  bool streaming() const { return sink_ != nullptr; }
  const std::string& path() const { return path_; }

  bool Begin(const TelemetryMeta& meta);
  bool Close(const TelemetryMeta& meta);

  /// One-line summary for CLI output ("12 epochs (adaptive 31250..1000000
  /// cycles) -> t.ndjson (NDJSON stream)").
  std::string Summary() const;

 private:
  std::string path_;
  std::unique_ptr<EpochSampler> sampler_;
  std::unique_ptr<TelemetrySink> sink_;
};

}  // namespace redcache::obs
