#include "obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace redcache::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue& out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters after value");
    return true;
  }

 private:
  bool Fail(const std::string& what) {
    if (error_ != nullptr) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      pos_++;
    }
  }

  bool Literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return Fail("bad literal");
    pos_ += n;
    return true;
  }

  bool ParseString(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    pos_++;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return Fail("bad \\u escape");
            }
          }
          // Validation only: keep the raw escape; telemetry names are ASCII.
          out += "\\u" + text_.substr(pos_, 4);
          pos_ += 4;
          break;
        }
        default:
          return Fail("bad escape character");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') pos_++;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("expected digit");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      pos_++;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("expected fraction digit");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        pos_++;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      pos_++;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        pos_++;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("expected exponent digit");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        pos_++;
      }
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  bool ParseValue(JsonValue& out) {
    if (++depth_ > kMaxDepth) return Fail("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    bool ok = false;
    switch (text_[pos_]) {
      case '{': ok = ParseObject(out); break;
      case '[': ok = ParseArray(out); break;
      case '"':
        out.kind = JsonValue::Kind::kString;
        ok = ParseString(out.string);
        break;
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        ok = Literal("true");
        break;
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        ok = Literal("false");
        break;
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        ok = Literal("null");
        break;
      default:
        ok = ParseNumber(out);
    }
    depth_--;
    return ok;
  }

  bool ParseObject(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    pos_++;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      pos_++;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      pos_++;
      JsonValue value;
      if (!ParseValue(value)) return false;
      out.object[key] = std::move(value);
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (text_[pos_] == '}') {
        pos_++;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    pos_++;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      pos_++;
      return true;
    }
    for (;;) {
      JsonValue value;
      if (!ParseValue(value)) return false;
      out.array.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (text_[pos_] == ']') {
        pos_++;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  static constexpr int kMaxDepth = 64;
  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue& out, std::string* error) {
  return Parser(text, error).Parse(out);
}

}  // namespace redcache::obs
