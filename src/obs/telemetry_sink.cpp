#include "obs/telemetry_sink.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "obs/adaptive_epoch.hpp"
#include "obs/json.hpp"

namespace redcache::obs {

namespace {

/// Printed with enough digits to round-trip; matches the JSON/CSV writers.
std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// A dead telemetry reader must surface as a write error (EPIPE), not a
/// process-killing SIGPIPE, so a serve-mode drain stays graceful. Done once,
/// lazily, when the first fd sink opens — embedders that never stream are
/// untouched.
void IgnoreSigpipeOnce() {
  static const bool done = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

}  // namespace

FdTelemetrySink::FdTelemetrySink(int fd, bool owns_fd, std::string target)
    : fd_(fd), owns_fd_(owns_fd), target_(std::move(target)) {}

FdTelemetrySink::~FdTelemetrySink() {
  if (owns_fd_ && fd_ >= 0) ::close(fd_);
}

std::unique_ptr<FdTelemetrySink> FdTelemetrySink::OpenPath(
    const std::string& path) {
  IgnoreSigpipeOnce();
  if (path == "-") {
    return std::unique_ptr<FdTelemetrySink>(
        new FdTelemetrySink(STDOUT_FILENO, /*owns_fd=*/false, "stdout"));
  }
  // O_WRONLY|O_CREAT|O_TRUNC covers plain files and pre-made FIFOs alike
  // (opening a FIFO for writing blocks until a reader attaches, which is
  // the behavior any pipe writer has).
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    throw std::runtime_error("cannot open telemetry sink '" + path +
                             "': " + std::strerror(errno));
  }
  return std::unique_ptr<FdTelemetrySink>(
      new FdTelemetrySink(fd, /*owns_fd=*/true, path));
}

bool FdTelemetrySink::WriteLine(const std::string& line) {
  if (broken_) return false;
  std::string buf = line;
  buf += '\n';
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::write(fd_, buf.data() + off, buf.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // EPIPE (reader went away) or any other hard error: disarm the sink so
    // the simulation finishes its drain instead of dying mid-run.
    broken_ = true;
    return false;
  }
  lines_written_++;
  return true;
}

std::unique_ptr<TelemetrySink> OpenTelemetrySink(const std::string& path) {
  return FdTelemetrySink::OpenPath(path);
}

bool StreamingTelemetryPath(const std::string& path) {
  if (path == "-") return true;
  const std::string suffix = ".ndjson";
  return path.size() > suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

std::string NdjsonHeaderLine(const TelemetryMeta& meta,
                             const EpochSampler& sampler) {
  std::ostringstream os;
  os << "{\"type\":\"header\",\"schema\":1,\"arch\":\""
     << JsonEscape(meta.arch) << "\",\"workload\":\""
     << JsonEscape(meta.workload) << "\",\"preset\":\""
     << JsonEscape(meta.preset) << "\",\"policy\":\""
     << JsonEscape(meta.policy) << "\",\"mix\":\"" << JsonEscape(meta.mix)
     << "\",\"epoch_cycles\":" << sampler.epoch_cycles()
     << ",\"adaptive\":" << (sampler.adaptive() ? "true" : "false");
  if (sampler.adaptive()) {
    const AdaptiveEpochConfig& cfg = sampler.adaptive_controller()->config();
    os << ",\"epoch_min\":" << cfg.min_cycles
       << ",\"epoch_max\":" << cfg.max_cycles;
  }
  // Present only for checkpoint-restored runs: where epoch accounting
  // resumes, and the pre-restore cumulative counters the deltas exclude.
  // Validators check sum(deltas) + baseline == the end record's totals.
  if (sampler.restored()) {
    os << ",\"restored_at\":" << sampler.restored_at() << ",\"baseline\":{";
    bool first = true;
    for (const auto& [name, value] : sampler.baseline()) {
      if (!first) os << ",";
      first = false;
      os << "\"" << JsonEscape(name) << "\":" << value;
    }
    os << "}";
  }
  os << "}";
  return os.str();
}

std::string NdjsonEpochLine(std::uint64_t seq, const EpochRecord& e) {
  const DerivedMetrics d = DeriveMetrics(e);
  std::ostringstream os;
  os << "{\"type\":\"epoch\",\"seq\":" << seq << ",\"begin\":" << e.begin
     << ",\"end\":" << e.end
     << ",\"derived\":{\"hit_rate\":" << FormatDouble(d.hit_rate)
     << ",\"bypass_rate\":" << FormatDouble(d.bypass_rate)
     << ",\"bw_bytes_per_cycle\":" << FormatDouble(d.bw_bytes_per_cycle)
     << "},\"gauges\":{";
  bool first = true;
  for (const auto& [name, value] : e.gauges) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << value;
  }
  os << "},\"delta\":{";
  first = true;
  for (const auto& [name, value] : e.delta) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << value;
  }
  os << "}}";
  return os.str();
}

std::string NdjsonEndLine(const TelemetryMeta& meta,
                          const EpochSampler& sampler) {
  std::ostringstream os;
  os << "{\"type\":\"end\",\"exec_cycles\":" << meta.exec_cycles
     << ",\"num_epochs\":" << sampler.total_epochs()
     << ",\"epoch_min_used\":" << sampler.min_width_used()
     << ",\"epoch_max_used\":" << sampler.max_width_used() << ",\"totals\":{";
  bool first = true;
  for (const auto& [name, value] : sampler.cumulative()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << value;
  }
  os << "}}";
  return os.str();
}

TelemetrySession::TelemetrySession(std::string path, const EpochSpec& epoch,
                                   Cycle preset_epoch_cycles)
    : path_(std::move(path)) {
  const Cycle base = epoch.cycles > 0 ? epoch.cycles : preset_epoch_cycles;
  sampler_ = std::make_unique<EpochSampler>(base);
  if (epoch.adaptive) {
    AdaptiveEpochConfig cfg;
    cfg.min_cycles =
        epoch.min_cycles > 0 ? epoch.min_cycles : std::max<Cycle>(base / 8, 1);
    cfg.max_cycles = epoch.max_cycles > 0 ? epoch.max_cycles : base * 4;
    if (cfg.max_cycles < cfg.min_cycles) cfg.max_cycles = cfg.min_cycles;
    sampler_->EnableAdaptive(cfg);
  }
  if (!path_.empty() && StreamingTelemetryPath(path_)) {
    sink_ = OpenTelemetrySink(path_);
    // Streaming runs can be arbitrarily long (serve mode): do not retain
    // the per-epoch series in memory, the sink already has it.
    sampler_->SetSink(sink_.get(), /*retain_epochs=*/false);
  }
}

TelemetrySession::~TelemetrySession() = default;

bool TelemetrySession::Begin(const TelemetryMeta& meta) {
  if (!sink_) return true;
  return sink_->WriteLine(NdjsonHeaderLine(meta, *sampler_));
}

bool TelemetrySession::Close(const TelemetryMeta& meta) {
  if (path_.empty()) return true;
  if (sink_) return sink_->WriteLine(NdjsonEndLine(meta, *sampler_));
  const std::string suffix = ".csv";
  const bool csv = path_.size() > suffix.size() &&
                   path_.compare(path_.size() - suffix.size(), suffix.size(),
                                 suffix) == 0;
  return csv ? WriteTelemetryCsv(path_, *sampler_, meta)
             : WriteTelemetryJson(path_, *sampler_, meta);
}

std::string TelemetrySession::Summary() const {
  std::ostringstream os;
  os << sampler_->total_epochs() << " epochs";
  if (sampler_->adaptive()) {
    os << " (adaptive " << sampler_->min_width_used() << ".."
       << sampler_->max_width_used() << " cycles)";
  } else {
    os << " (" << sampler_->epoch_cycles() << " cycles each)";
  }
  if (!path_.empty()) {
    os << " -> " << (sink_ ? sink_->describe() : path_);
    if (sink_) os << (sink_->ok() ? " (NDJSON stream)" : " (stream broken)");
  }
  return os.str();
}

}  // namespace redcache::obs
