// Structured event tracing for DRAM command timelines and cache-policy
// decisions.
//
// Design constraints, in order:
//  1. Zero observable effect on simulation results — probes only *read*
//     simulator state, never mutate it.
//  2. Near-zero cost while disabled: every probe compiles to one predictable
//     branch on a thread-local pointer (see trace_macros.hpp), so the
//     FR-FCFS hot path stays within noise of the untraced build.
//  3. Bounded memory: events land in a fixed-capacity ring buffer that
//     keeps the most recent window and counts what it dropped.
//
// The buffer is thread-local by installation (TraceScope), so concurrent
// batch-engine simulations on worker threads trace independently — or not
// at all — without synchronization in the hot path.
//
// Export is Chrome trace-event JSON ("X" complete events, one track per
// (device, channel, bank) plus a policy track), which loads directly into
// Perfetto / chrome://tracing. Timestamps are simulated CPU cycles
// presented as microseconds (1 cycle == 1 us on the viewer axis).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace redcache::obs {

enum class TraceEventType : std::uint8_t {
  // DRAM command stream (device 0/1 tracks).
  kCmdRead = 0,
  kCmdWrite,
  kCmdActivate,
  kCmdPrecharge,
  kCmdRefresh,
  // Cache-policy decisions (policy track).
  kAlphaBypass,
  kRefreshBypass,
  kGammaInvalidate,
  kRcuServe,
  kRcuFlush,
  kFill,
  kVictimWriteback,
  kRetune,
};

/// Perfetto process id the event renders under.
enum : std::uint8_t {
  kTraceDeviceHbm = 0,
  kTraceDeviceMainMem = 1,
  kTraceDevicePolicy = 2,
};

/// RCU drain reasons carried in kRcuFlush's `arg`.
enum : std::uint64_t {
  kRcuFlushMerged = 0,   ///< piggybacked on a same-row data write
  kRcuFlushIdle = 1,     ///< channel transaction queue went empty
  kRcuFlushCapacity = 2, ///< queue full, oldest entry force-flushed
};

struct TraceEvent {
  Cycle cycle = 0;
  std::uint32_t dur = 1;  ///< duration in cycles (rendered slice width)
  TraceEventType type = TraceEventType::kCmdRead;
  std::uint8_t device = 0;
  std::uint8_t rank = 0;
  std::uint8_t bank = 0;
  std::uint16_t channel = 0;
  Addr addr = 0;
  std::uint64_t arg = 0;  ///< row for commands, type-specific otherwise
};

const char* ToString(TraceEventType t);

/// Receives events the ring is about to overwrite, oldest first — the hook
/// behind windowed full-run tracing (obs/trace_spill.hpp): the ring keeps
/// the most recent window in memory while the sink persists the history,
/// so emitted == spilled + retained and nothing is lost.
class TraceSpillSink {
 public:
  virtual ~TraceSpillSink() = default;
  virtual void Consume(const TraceEvent& e) = 0;
};

/// Fixed-capacity ring of the most recent events; capacity is rounded up
/// to a power of two. Overwrites the oldest entries when full — unless a
/// spill sink is attached, which receives each overwritten event first.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);

  void Emit(const TraceEvent& e) {
    if (spill_ != nullptr && head_ >= events_.size()) {
      spill_->Consume(events_[head_ & mask_]);
    }
    events_[head_ & mask_] = e;
    head_++;
  }

  /// Attach (or detach, with nullptr) the overwrite sink. The sink is
  /// borrowed and must outlive the last Emit.
  void SetSpill(TraceSpillSink* spill) { spill_ = spill; }
  TraceSpillSink* spill() const { return spill_; }

  /// Total events ever emitted (>= size()).
  std::uint64_t emitted() const { return head_; }
  /// Events currently retained.
  std::size_t size() const {
    return head_ < events_.size() ? static_cast<std::size_t>(head_)
                                  : events_.size();
  }
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const { return head_ - size(); }
  std::size_t capacity() const { return events_.size(); }

  /// Retained events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  void Clear() { head_ = 0; }

  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 18;

 private:
  std::vector<TraceEvent> events_;
  std::uint64_t mask_ = 0;
  std::uint64_t head_ = 0;
  TraceSpillSink* spill_ = nullptr;
};

/// The calling thread's active trace buffer; nullptr when tracing is off.
/// Declared here (not in trace_macros.hpp) so non-macro code can test it.
extern thread_local TraceBuffer* tls_active_trace;
inline TraceBuffer* ActiveTrace() { return tls_active_trace; }

/// RAII installation of a buffer as this thread's active trace.
class TraceScope {
 public:
  explicit TraceScope(TraceBuffer* buffer) : prev_(tls_active_trace) {
    tls_active_trace = buffer;
  }
  ~TraceScope() { tls_active_trace = prev_; }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceBuffer* prev_;
};

/// Chrome trace-event serialization primitives, shared by the whole-buffer
/// writer below and the incremental spill writer (obs/trace_spill.hpp).
const char* TraceDeviceName(std::uint8_t device);
/// Stable per-track thread id: commands render one lane per (channel,
/// rank, bank), refreshes a rank-level lane, policy events lane 0.
std::uint32_t TraceTrackTid(const TraceEvent& e);
std::string TraceTrackName(const TraceEvent& e);
/// One complete ("X") trace-event object for `e`, no trailing separator.
std::string TraceEventJson(const TraceEvent& e);

/// Chrome trace-event JSON for the retained events (metadata tracks plus
/// one "X" event per TraceEvent). Loads in Perfetto / chrome://tracing.
std::string ChromeTraceJson(const TraceBuffer& trace);

/// Write ChromeTraceJson to `path`; false on I/O failure.
bool WriteChromeTrace(const std::string& path, const TraceBuffer& trace);

/// Validate that `json` parses and every traceEvents element carries the
/// fields the Chrome trace-event schema requires ("name", "ph", "ts",
/// "pid", "tid"; "dur" for ph=="X"). Used by tests and CI on our own
/// exports; `error` describes the first violation.
bool ValidateChromeTrace(const std::string& json, std::string* error);

}  // namespace redcache::obs
