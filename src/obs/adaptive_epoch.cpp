#include "obs/adaptive_epoch.hpp"

#include <algorithm>
#include <cmath>

namespace redcache::obs {

AdaptiveEpochController::AdaptiveEpochController(
    const AdaptiveEpochConfig& cfg)
    : cfg_(cfg) {
  if (cfg_.min_cycles < 1) cfg_.min_cycles = 1;
  if (cfg_.max_cycles < cfg_.min_cycles) cfg_.max_cycles = cfg_.min_cycles;
}

Cycle AdaptiveEpochController::Clamp(Cycle width) const {
  return std::min(std::max(width, cfg_.min_cycles), cfg_.max_cycles);
}

double AdaptiveEpochController::PhaseScore(const DerivedMetrics& prev,
                                           const DerivedMetrics& cur) {
  const double hit = std::fabs(cur.hit_rate - prev.hit_rate);
  const double bypass = std::fabs(cur.bypass_rate - prev.bypass_rate);
  const double bw_hi =
      std::max(cur.bw_bytes_per_cycle, prev.bw_bytes_per_cycle);
  const double bw =
      bw_hi > 0.0
          ? std::fabs(cur.bw_bytes_per_cycle - prev.bw_bytes_per_cycle) /
                bw_hi
          : 0.0;
  return std::max(hit, std::max(bypass, bw));
}

Cycle AdaptiveEpochController::Update(const EpochRecord& e,
                                      Cycle current_width) {
  if (e.end <= e.begin) return Clamp(current_width);
  const DerivedMetrics d = DeriveMetrics(e);
  if (!have_prev_) {
    prev_ = d;
    have_prev_ = true;
    return Clamp(current_width);
  }
  const double score = PhaseScore(prev_, d);
  prev_ = d;

  Cycle width = Clamp(current_width);
  if (score > cfg_.shrink_score) {
    stable_streak_ = 0;
    const Cycle narrower = Clamp(width / 2);
    if (narrower < width) shrinks_++;
    return narrower;
  }
  if (score < cfg_.grow_score) {
    if (++stable_streak_ >= cfg_.stable_epochs_to_grow) {
      stable_streak_ = 0;
      // Saturating doubling: width can be huge when the caller passed an
      // unclamped config.
      const Cycle doubled =
          width > cfg_.max_cycles / 2 ? cfg_.max_cycles : width * 2;
      const Cycle wider = Clamp(doubled);
      if (wider > width) grows_++;
      return wider;
    }
    return width;
  }
  stable_streak_ = 0;
  return width;
}

}  // namespace redcache::obs
