// Instrumentation macro for simulator hot paths.
//
// Every probe site costs one predictable branch on a thread-local pointer
// while tracing is disabled; the event struct is only constructed when a
// trace buffer is installed (TraceScope). Define REDCACHE_NO_TRACE to
// compile all probes out entirely.
#pragma once

#include "obs/trace.hpp"

#ifdef REDCACHE_NO_TRACE
#define REDCACHE_TRACE_EVENT(...) \
  do {                            \
  } while (0)
#else
/// Usage: REDCACHE_TRACE_EVENT(obs::TraceEvent{.cycle = now, ...});
#define REDCACHE_TRACE_EVENT(...)                                       \
  do {                                                                  \
    if (::redcache::obs::TraceBuffer* trace_buffer_ =                   \
            ::redcache::obs::ActiveTrace()) {                           \
      trace_buffer_->Emit(__VA_ARGS__);                                 \
    }                                                                   \
  } while (0)
#endif
