#include "obs/epoch_sampler.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>

#include "obs/adaptive_epoch.hpp"
#include "obs/json.hpp"
#include "obs/telemetry_sink.hpp"

namespace redcache::obs {

namespace {

bool IsGauge(const std::string& name) {
  return name.rfind(kGaugePrefix, 0) == 0;
}

std::string StripGauge(const std::string& name) {
  return name.substr(std::strlen(kGaugePrefix));
}

/// Printed with enough digits to round-trip; trailing-zero trimmed.
std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::int64_t DeltaOf(const EpochRecord& e, const char* name) {
  const auto it = e.delta.find(name);
  return it == e.delta.end() ? 0 : it->second;
}

/// Keys of `m`, naturally ordered.
template <typename Map>
std::vector<std::string> NaturalKeys(const Map& m) {
  std::vector<std::string> keys;
  keys.reserve(m.size());
  for (const auto& kv : m) keys.push_back(kv.first);
  std::sort(keys.begin(), keys.end(), NaturalNameLess);
  return keys;
}

/// CSV-quote a meta value when it contains characters that would break the
/// `key=value` comment line (commas from mix descriptors, quotes, spaces).
std::string CsvMetaValue(const std::string& v) {
  if (v.find_first_of(",\" ") == std::string::npos) return v;
  std::string out = "\"";
  for (char c : v) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

DerivedMetrics DeriveMetrics(const EpochRecord& e) {
  DerivedMetrics d;
  const double hits = static_cast<double>(DeltaOf(e, "ctrl.cache_hits"));
  const double misses = static_cast<double>(DeltaOf(e, "ctrl.cache_misses"));
  const double bypasses =
      static_cast<double>(DeltaOf(e, "ctrl.alpha_bypasses") +
                          DeltaOf(e, "ctrl.refresh_bypasses"));
  const double lookups = hits + misses + bypasses;
  if (lookups > 0) {
    d.hit_rate = hits / lookups;
    d.bypass_rate = bypasses / lookups;
  }
  const Cycle span = e.end - e.begin;
  if (span > 0) {
    std::int64_t bytes = 0;
    for (const auto& [name, delta] : e.delta) {
      if (name.size() > 18 &&
          name.compare(name.size() - 18, 18, ".bytes_transferred") == 0) {
        bytes += delta;
      }
    }
    d.bw_bytes_per_cycle =
        static_cast<double>(bytes) / static_cast<double>(span);
  }
  return d;
}

bool ParseEpochSpec(const std::string& text, EpochSpec& out) {
  if (text.empty()) return false;
  if (text == "auto") {
    EpochSpec spec;
    spec.adaptive = true;
    out = spec;
    return true;
  }
  if (text.rfind("auto:", 0) == 0) {
    // "auto:MIN:MAX" — explicit clamp band in cycles.
    const std::size_t colon = text.find(':', 5);
    if (colon == std::string::npos) return false;
    EpochSpec spec;
    spec.adaptive = true;
    try {
      std::size_t used = 0;
      const std::string min_s = text.substr(5, colon - 5);
      const std::string max_s = text.substr(colon + 1);
      spec.min_cycles = std::stoull(min_s, &used);
      if (used != min_s.size()) return false;
      spec.max_cycles = std::stoull(max_s, &used);
      if (used != max_s.size()) return false;
    } catch (...) {
      return false;
    }
    if (spec.min_cycles < 1 || spec.max_cycles < spec.min_cycles) return false;
    out = spec;
    return true;
  }
  try {
    std::size_t used = 0;
    const Cycle cycles = std::stoull(text, &used);
    if (used != text.size() || cycles < 1) return false;
    EpochSpec spec;
    spec.cycles = cycles;
    out = spec;
    return true;
  } catch (...) {
    return false;
  }
}

EpochSampler::EpochSampler(Cycle epoch_cycles)
    : epoch_cycles_(std::max<Cycle>(epoch_cycles, 1)),
      next_due_(std::max<Cycle>(epoch_cycles, 1)),
      min_width_used_(epoch_cycles_),
      max_width_used_(epoch_cycles_) {}

EpochSampler::~EpochSampler() = default;

void EpochSampler::EnableAdaptive(const AdaptiveEpochConfig& cfg) {
  adaptive_ = std::make_unique<AdaptiveEpochController>(cfg);
}

void EpochSampler::SetSink(TelemetrySink* sink, bool retain_epochs) {
  sink_ = sink;
  retain_ = retain_epochs;
}

void EpochSampler::SeedBaseline(Cycle at, const StatSet& cumulative) {
  restored_ = true;
  restored_at_ = at;
  // Epoch boundaries resume from the restored cycle, not the nominal grid:
  // a restore under different epoch settings must not fabricate a giant
  // first epoch spanning [0, at) or a burst of degenerate ones.
  last_sample_ = at;
  next_due_ = at + epoch_cycles_;
  baseline_.clear();
  for (const auto& [name, value] : cumulative.counters()) {
    if (IsGauge(name)) continue;
    baseline_[name] = value;
    prev_[name] = value;
  }
}

void EpochSampler::Record(Cycle now, const StatSet& cumulative) {
  EpochRecord rec;
  rec.begin = last_sample_;
  rec.end = now;
  for (const auto& [name, value] : cumulative.counters()) {
    if (IsGauge(name)) {
      rec.gauges[StripGauge(name)] = value;
      continue;
    }
    const auto prev_it = prev_.find(name);
    const std::uint64_t before = prev_it == prev_.end() ? 0 : prev_it->second;
    rec.delta[name] =
        static_cast<std::int64_t>(value) - static_cast<std::int64_t>(before);
    prev_[name] = value;
  }
  if (adaptive_) {
    // Make the width that produced this record part of the record, so the
    // adaptive narrowing is visible in every exported series. Only when
    // adaptation is on: fixed-epoch output stays byte-identical.
    rec.gauges["telemetry.epoch_cycles"] = epoch_cycles_;
  }
  min_width_used_ = std::min(min_width_used_, epoch_cycles_);
  max_width_used_ = std::max(max_width_used_, epoch_cycles_);
  total_epochs_++;
  if (sink_) sink_->WriteLine(NdjsonEpochLine(total_epochs_ - 1, rec));
  epochs_.push_back(std::move(rec));
  // Bounded memory for arbitrarily long streamed runs: keep only the most
  // recent record (Finalize's gauge-refresh path still needs one).
  if (!retain_ && epochs_.size() > 1) epochs_.erase(epochs_.begin());
  last_sample_ = now;
}

void EpochSampler::Sample(Cycle now, const StatSet& cumulative) {
  Record(now, cumulative);
  if (adaptive_) {
    epoch_cycles_ = adaptive_->Update(epochs_.back(), epoch_cycles_);
  }
  // Schedule from the sample that actually happened, not the nominal grid:
  // the event-paced loop can overshoot a boundary by a whole idle gap, and
  // grid-aligned scheduling would then emit a burst of degenerate epochs.
  next_due_ = now + epoch_cycles_;
}

void EpochSampler::Finalize(Cycle end, const StatSet& cumulative) {
  if (end <= last_sample_) {
    // Run ended exactly on (or before) a sample; refresh the final gauges
    // on the last record instead of emitting an empty epoch.
    if (!epochs_.empty()) {
      for (const auto& [name, value] : cumulative.counters()) {
        if (IsGauge(name)) epochs_.back().gauges[StripGauge(name)] = value;
      }
    }
    return;
  }
  Record(end, cumulative);
}

namespace {

void AppendMetaJsonFields(std::ostringstream& os, const TelemetryMeta& meta,
                          const EpochSampler& sampler) {
  os << "\"arch\":\"" << JsonEscape(meta.arch) << "\",\"workload\":\""
     << JsonEscape(meta.workload) << "\",\"preset\":\""
     << JsonEscape(meta.preset) << "\",\"policy\":\""
     << JsonEscape(meta.policy) << "\",\"mix\":\"" << JsonEscape(meta.mix)
     << "\",\"epoch_cycles\":" << sampler.epoch_cycles();
}

}  // namespace

std::string TelemetryJson(const EpochSampler& sampler,
                          const TelemetryMeta& meta) {
  std::ostringstream os;
  os << "{\"meta\":{";
  AppendMetaJsonFields(os, meta, sampler);
  os << ",\"exec_cycles\":" << meta.exec_cycles
     << ",\"num_epochs\":" << sampler.epochs().size() << "},\"epochs\":[";
  bool first_epoch = true;
  for (const EpochRecord& e : sampler.epochs()) {
    if (!first_epoch) os << ",";
    first_epoch = false;
    const DerivedMetrics d = DeriveMetrics(e);
    os << "{\"begin\":" << e.begin << ",\"end\":" << e.end
       << ",\"derived\":{\"hit_rate\":" << FormatDouble(d.hit_rate)
       << ",\"bypass_rate\":" << FormatDouble(d.bypass_rate)
       << ",\"bw_bytes_per_cycle\":" << FormatDouble(d.bw_bytes_per_cycle)
       << "},\"gauges\":{";
    bool first = true;
    for (const std::string& key : NaturalKeys(e.gauges)) {
      if (!first) os << ",";
      first = false;
      os << "\"" << JsonEscape(key) << "\":" << e.gauges.at(key);
    }
    os << "},\"delta\":{";
    first = true;
    for (const std::string& key : NaturalKeys(e.delta)) {
      if (!first) os << ",";
      first = false;
      os << "\"" << JsonEscape(key) << "\":" << e.delta.at(key);
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

bool WriteTelemetryJson(const std::string& path, const EpochSampler& sampler,
                        const TelemetryMeta& meta) {
  std::ofstream out(path);
  if (!out) return false;
  out << TelemetryJson(sampler, meta) << '\n';
  return static_cast<bool>(out);
}

std::string TelemetryCsv(const EpochSampler& sampler,
                         const TelemetryMeta& meta) {
  // Column set = union across epochs, so a gauge that first appears late
  // (e.g. RCU depth after the first fill) still gets a column. The same
  // union rule covers every key JSON emits — gauge.skip_pct and the
  // per-tenant gauge.tenant<N>.* feeds included.
  std::set<std::string> gauge_names, delta_names;
  for (const EpochRecord& e : sampler.epochs()) {
    for (const auto& kv : e.gauges) gauge_names.insert(kv.first);
    for (const auto& kv : e.delta) delta_names.insert(kv.first);
  }
  std::vector<std::string> gauges(gauge_names.begin(), gauge_names.end());
  std::vector<std::string> deltas(delta_names.begin(), delta_names.end());
  std::sort(gauges.begin(), gauges.end(), NaturalNameLess);
  std::sort(deltas.begin(), deltas.end(), NaturalNameLess);

  std::ostringstream os;
  os << "# arch=" << CsvMetaValue(meta.arch)
     << " workload=" << CsvMetaValue(meta.workload)
     << " preset=" << CsvMetaValue(meta.preset)
     << " policy=" << CsvMetaValue(meta.policy)
     << " mix=" << CsvMetaValue(meta.mix)
     << " epoch_cycles=" << sampler.epoch_cycles()
     << " exec_cycles=" << meta.exec_cycles << "\n";
  os << "begin,end,hit_rate,bypass_rate,bw_bytes_per_cycle";
  for (const std::string& g : gauges) os << ",gauge." << g;
  for (const std::string& d : deltas) os << "," << d;
  os << "\n";
  for (const EpochRecord& e : sampler.epochs()) {
    const DerivedMetrics d = DeriveMetrics(e);
    os << e.begin << "," << e.end << "," << FormatDouble(d.hit_rate) << ","
       << FormatDouble(d.bypass_rate) << ","
       << FormatDouble(d.bw_bytes_per_cycle);
    for (const std::string& g : gauges) {
      os << ",";
      const auto it = e.gauges.find(g);
      if (it != e.gauges.end()) os << it->second;
    }
    for (const std::string& name : deltas) {
      os << ",";
      const auto it = e.delta.find(name);
      if (it != e.delta.end()) os << it->second;
    }
    os << "\n";
  }
  return os.str();
}

bool WriteTelemetryCsv(const std::string& path, const EpochSampler& sampler,
                       const TelemetryMeta& meta) {
  std::ofstream out(path);
  if (!out) return false;
  out << TelemetryCsv(sampler, meta);
  return static_cast<bool>(out);
}

}  // namespace redcache::obs
