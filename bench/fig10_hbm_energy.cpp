// Figure 10: HBM (DRAM cache) energy of every architecture normalized to
// Alloy Cache for the 11 parallel workloads.
//
// Paper reference points: RedCache improves HBM cache energy by 42% over
// Alloy and 37% over Bear; RedCache even beats Red-InSitu slightly because
// it performs no computation inside the HBM dies.
#include <cstdio>
#include <map>

#include "bench_util.hpp"

int main() {
  using namespace redcache;
  using namespace redcache::bench;

  const auto workloads = SelectedWorkloads();
  const auto& archs = EvaluationArchs();
  RunCellsAhead(GridCells(archs, workloads), "fig10");

  std::printf("Figure 10 — HBM cache energy normalized to Alloy Cache\n");
  std::printf("(lower is better; paper means: RedCache 0.58 vs Alloy,\n");
  std::printf(" 0.63 vs Bear)\n\n");

  std::vector<std::string> header = {"workload"};
  for (const Arch a : archs) header.push_back(ToString(a));
  TextTable table(header);

  std::map<Arch, std::vector<double>> ratios;
  for (const std::string& wl : workloads) {
    const CellResult alloy = RunCell(Arch::kAlloy, wl);
    std::vector<std::string> row = {wl};
    for (const Arch a : archs) {
      const CellResult r = a == Arch::kAlloy ? alloy : RunCell(a, wl);
      const double ratio = r.energy.HbmCacheNj() / alloy.energy.HbmCacheNj();
      ratios[a].push_back(ratio);
      row.push_back(TextTable::Num(ratio, 3));
    }
    table.AddRow(std::move(row));
  }
  std::vector<std::string> mean_row = {"geomean"};
  for (const Arch a : archs) {
    mean_row.push_back(TextTable::Num(GeoMean(ratios[a]), 3));
  }
  table.AddRow(std::move(mean_row));
  std::printf("%s\n", table.Render().c_str());

  const double red = GeoMean(ratios[Arch::kRedCache]);
  const double bear = GeoMean(ratios[Arch::kBear]);
  const double insitu = GeoMean(ratios[Arch::kRedInSitu]);
  std::printf("summary (measured vs paper):\n");
  std::printf("  RedCache HBM energy vs Alloy: -%.1f%% (paper -42%%)\n",
              (1.0 - red) * 100.0);
  std::printf("  RedCache HBM energy vs Bear:  -%.1f%% (paper -37%%)\n",
              (1.0 - red / bear) * 100.0);
  std::printf("  RedCache vs Red-InSitu: %s (paper: RedCache slightly "
              "better — no in-DRAM compute)\n",
              red <= insitu ? "better" : "worse");
  return 0;
}
