// Event-core economics bench: wall-clock cost of the wake-driven scheduler
// against forced single-cycle stepping (REDCACHE_NO_SKIP=1), on
//   * a loaded DRAM queue (busy channels, skip-ahead mostly inactive),
//   * an idle-heavy sparse-traffic scenario (one read burst every few
//     thousand cycles, where the wake list carries the run), and
//   * one full RedCache evaluation cell.
// Both modes of each scenario must produce identical simulation results
// (the no-skip differential, re-asserted here); only wall time may differ.
// Writes results/BENCH_eventcore.json for trend tracking.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench_util.hpp"
#include "dram/dram_system.hpp"
#include "sim/runner.hpp"

namespace {

using namespace redcache;
using namespace redcache::bench;

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

struct DramPass {
  double seconds = 0;
  std::uint64_t completed = 0;
  std::uint64_t visits = 0;
};

/// Sparse traffic over a DramSystem: one read per 6000-cycle window.
/// `step` drives every cycle; otherwise the loop jumps to NextEventHint
/// the way System::Run does.
DramPass IdleSparsePass(bool step, std::uint64_t windows) {
  DramSystem sys(HbmCacheConfig(8_MiB));
  Cycle now = 0;
  Addr addr = 0;
  DramPass out;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t w = 0; w < windows; ++w) {
    if (sys.CanAccept(addr)) sys.Enqueue(addr, false, now);
    addr = (addr + 4096) % 8_MiB;
    const Cycle horizon = now + 6000;
    while (now < horizon) {
      sys.Tick(now);
      out.completed += sys.completions().size();
      sys.completions().clear();
      now = step ? now + 1
                 : std::min(horizon,
                            std::max(now + 1, sys.NextEventHint(now)));
      ++out.visits;
    }
  }
  out.seconds = Seconds(t0, std::chrono::steady_clock::now());
  return out;
}

/// Saturated queues: four fresh requests at every even cycle up to a fixed
/// simulated horizon, so both modes do identical simulation work. Event
/// pacing is clamped to the next enqueue slot; stepping visits the odd
/// cycles too and must find them to be no-ops.
DramPass LoadedPass(bool step, Cycle horizon) {
  DramSystem sys(HbmCacheConfig(8_MiB));
  Cycle now = 0;
  std::uint64_t lcg = 12345;
  DramPass out;
  const auto t0 = std::chrono::steady_clock::now();
  while (now < horizon) {
    if ((now & 1) == 0) {
      for (int k = 0; k < 4; ++k) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        const Addr addr = ((lcg >> 16) % 8_MiB) & ~Addr{63};
        if (sys.CanAccept(addr)) sys.Enqueue(addr, ((lcg >> 12) & 7) < 3, now);
      }
    }
    sys.Tick(now);
    out.completed += sys.completions().size();
    sys.completions().clear();
    const Cycle next_enqueue = (now & ~Cycle{1}) + 2;
    now = step ? now + 1
               : std::min(next_enqueue,
                          std::max(now + 1, sys.NextEventHint(now)));
    ++out.visits;
  }
  out.seconds = Seconds(t0, std::chrono::steady_clock::now());
  return out;
}

struct CellPass {
  double seconds = 0;
  RunResult result;
};

CellPass FullSystemPass(bool no_skip) {
  if (no_skip) {
    ::setenv("REDCACHE_NO_SKIP", "1", 1);
  } else {
    ::unsetenv("REDCACHE_NO_SKIP");
  }
  RunSpec spec;
  spec.arch = Arch::kRedCache;
  spec.workload = "LU";
  spec.scale = EffectiveScale(0.25 * DefaultScale());
  spec.ignore_env_scale = true;
  CellPass out;
  const auto t0 = std::chrono::steady_clock::now();
  out.result = RunOne(spec);
  out.seconds = Seconds(t0, std::chrono::steady_clock::now());
  ::unsetenv("REDCACHE_NO_SKIP");
  return out;
}

double Speedup(double step_s, double event_s) {
  return event_s > 0 ? step_s / event_s : 0;
}

}  // namespace

int main() {
  std::printf("eventcore — wake-driven scheduler vs single-cycle stepping\n\n");

  const DramPass idle_event = IdleSparsePass(false, 2000);
  const DramPass idle_step = IdleSparsePass(true, 2000);
  const DramPass loaded_event = LoadedPass(false, 800000);
  const DramPass loaded_step = LoadedPass(true, 800000);
  const CellPass cell_event = FullSystemPass(false);
  const CellPass cell_step = FullSystemPass(true);

  bool ok = true;
  if (idle_event.completed != idle_step.completed ||
      loaded_event.completed != loaded_step.completed) {
    std::fprintf(stderr, "FAIL: DRAM passes disagree on completions\n");
    ok = false;
  }
  if (cell_event.result.exec_cycles != cell_step.result.exec_cycles ||
      cell_event.result.stats.counters() !=
          cell_step.result.stats.counters()) {
    std::fprintf(stderr, "FAIL: full-system skip vs no-skip stats differ\n");
    ok = false;
  }

  const double idle_speedup = Speedup(idle_step.seconds, idle_event.seconds);
  const double loaded_speedup =
      Speedup(loaded_step.seconds, loaded_event.seconds);
  const double cell_speedup = Speedup(cell_step.seconds, cell_event.seconds);
  const std::uint64_t ticks = cell_event.result.ticks_executed;
  const std::uint64_t skipped = cell_event.result.cycles_skipped;
  const double skip_pct =
      ticks + skipped > 0
          ? 100.0 * static_cast<double>(skipped) /
                static_cast<double>(ticks + skipped)
          : 0;

  TextTable table({"scenario", "stepped s", "event s", "speedup", "visits"});
  table.AddRow({"dram idle-sparse", TextTable::Num(idle_step.seconds, 3),
                TextTable::Num(idle_event.seconds, 3),
                TextTable::Num(idle_speedup, 2),
                std::to_string(idle_event.visits)});
  table.AddRow({"dram loaded", TextTable::Num(loaded_step.seconds, 3),
                TextTable::Num(loaded_event.seconds, 3),
                TextTable::Num(loaded_speedup, 2),
                std::to_string(loaded_event.visits)});
  table.AddRow({"RedCache/LU cell", TextTable::Num(cell_step.seconds, 3),
                TextTable::Num(cell_event.seconds, 3),
                TextTable::Num(cell_speedup, 2),
                std::to_string(ticks)});
  std::printf("%s\n", table.Render().c_str());
  std::printf("cell skip ratio: %.1f%% of cycles skipped (%llu ticks, %llu "
              "skipped)\n",
              skip_pct, static_cast<unsigned long long>(ticks),
              static_cast<unsigned long long>(skipped));

  std::filesystem::create_directories("results");
  std::ofstream json("results/BENCH_eventcore.json");
  json << "{\n"
       << "  \"bench\": \"eventcore\",\n"
       << "  \"idle_sparse\": {\"stepped_seconds\": " << idle_step.seconds
       << ", \"event_seconds\": " << idle_event.seconds
       << ", \"speedup\": " << idle_speedup
       << ", \"event_visits\": " << idle_event.visits
       << ", \"stepped_visits\": " << idle_step.visits << "},\n"
       << "  \"loaded\": {\"stepped_seconds\": " << loaded_step.seconds
       << ", \"event_seconds\": " << loaded_event.seconds
       << ", \"speedup\": " << loaded_speedup << "},\n"
       << "  \"full_system\": {\"arch\": \"RedCache\", \"workload\": \"LU\","
       << " \"stepped_seconds\": " << cell_step.seconds
       << ", \"event_seconds\": " << cell_event.seconds
       << ", \"speedup\": " << cell_speedup
       << ", \"ticks_executed\": " << ticks
       << ", \"cycles_skipped\": " << skipped
       << ", \"skip_pct\": " << skip_pct << "},\n"
       << "  \"identical_results\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
  std::printf("wrote results/BENCH_eventcore.json\n");
  return ok ? 0 : 1;
}
