// Event-core economics bench: wall-clock cost of the wake-driven scheduler
// against forced single-cycle stepping (REDCACHE_NO_SKIP=1), on
//   * a loaded DRAM queue (busy channels, skip-ahead mostly inactive),
//   * an idle-heavy sparse-traffic scenario (one read burst every few
//     thousand cycles, where the wake list carries the run), and
//   * one full RedCache evaluation cell.
// Both modes of each scenario must produce identical simulation results
// (the no-skip differential, re-asserted here); only wall time may differ.
//
// Every section runs REDCACHE_BENCH_REPS repetitions (default 5), with the
// stepped and event variants interleaved so frequency drift and background
// load hit both sides alike, and reports p50/p95 wall times per variant.
// Speedups quoted (and written to results/BENCH_eventcore.json) are ratios
// of the p50s, so a single noisy sample cannot fake or hide a regression.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dram/dram_system.hpp"
#include "sim/runner.hpp"

namespace {

using namespace redcache;
using namespace redcache::bench;

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

int Reps() {
  const char* env = std::getenv("REDCACHE_BENCH_REPS");
  const int reps = env != nullptr ? std::atoi(env) : 5;
  return reps > 0 ? reps : 5;
}

/// Nearest-rank percentile over a small sample (p in [0, 100]).
double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  if (idx >= xs.size()) idx = xs.size() - 1;
  return xs[idx];
}

struct SampleSet {
  std::vector<double> stepped;
  std::vector<double> event;
  double stepped_p50() const { return Percentile(stepped, 50); }
  double stepped_p95() const { return Percentile(stepped, 95); }
  double event_p50() const { return Percentile(event, 50); }
  double event_p95() const { return Percentile(event, 95); }
  double speedup() const {
    const double e = event_p50();
    return e > 0 ? stepped_p50() / e : 0;
  }
  void EmitJson(std::ofstream& json) const {
    json << "\"stepped_seconds_p50\": " << stepped_p50()
         << ", \"stepped_seconds_p95\": " << stepped_p95()
         << ", \"event_seconds_p50\": " << event_p50()
         << ", \"event_seconds_p95\": " << event_p95()
         << ", \"speedup\": " << speedup();
  }
};

struct DramPass {
  double seconds = 0;
  std::uint64_t completed = 0;
  std::uint64_t visits = 0;
};

/// Sparse traffic over a DramSystem: one read per 6000-cycle window.
/// `step` drives every cycle; otherwise the loop jumps to NextEventHint
/// the way System::Run does.
DramPass IdleSparsePass(bool step, std::uint64_t windows) {
  DramSystem sys(HbmCacheConfig(8_MiB));
  Cycle now = 0;
  Addr addr = 0;
  DramPass out;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t w = 0; w < windows; ++w) {
    if (sys.CanAccept(addr)) sys.Enqueue(addr, false, now);
    addr = (addr + 4096) % 8_MiB;
    const Cycle horizon = now + 6000;
    while (now < horizon) {
      sys.Tick(now);
      out.completed += sys.completions().size();
      sys.completions().clear();
      now = step ? now + 1
                 : std::min(horizon,
                            std::max(now + 1, sys.NextEventHint(now)));
      ++out.visits;
    }
  }
  out.seconds = Seconds(t0, std::chrono::steady_clock::now());
  return out;
}

/// Saturated queues: four fresh requests at every even cycle up to a fixed
/// simulated horizon, so both modes do identical simulation work. Event
/// pacing is clamped to the next enqueue slot; stepping visits the odd
/// cycles too and must find them to be no-ops.
DramPass LoadedPass(bool step, Cycle horizon) {
  DramSystem sys(HbmCacheConfig(8_MiB));
  Cycle now = 0;
  std::uint64_t lcg = 12345;
  DramPass out;
  const auto t0 = std::chrono::steady_clock::now();
  while (now < horizon) {
    if ((now & 1) == 0) {
      for (int k = 0; k < 4; ++k) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        const Addr addr = ((lcg >> 16) % 8_MiB) & ~Addr{63};
        if (sys.CanAccept(addr)) sys.Enqueue(addr, ((lcg >> 12) & 7) < 3, now);
      }
    }
    sys.Tick(now);
    out.completed += sys.completions().size();
    sys.completions().clear();
    const Cycle next_enqueue = (now & ~Cycle{1}) + 2;
    now = step ? now + 1
               : std::min(next_enqueue,
                          std::max(now + 1, sys.NextEventHint(now)));
    ++out.visits;
  }
  out.seconds = Seconds(t0, std::chrono::steady_clock::now());
  return out;
}

struct CellPass {
  double seconds = 0;
  RunResult result;
};

CellPass FullSystemPass(bool no_skip) {
  if (no_skip) {
    ::setenv("REDCACHE_NO_SKIP", "1", 1);
  } else {
    ::unsetenv("REDCACHE_NO_SKIP");
  }
  RunSpec spec;
  spec.arch = Arch::kRedCache;
  spec.workload = "LU";
  spec.scale = EffectiveScale(0.25 * DefaultScale());
  spec.ignore_env_scale = true;
  CellPass out;
  const auto t0 = std::chrono::steady_clock::now();
  out.result = RunOne(spec);
  out.seconds = Seconds(t0, std::chrono::steady_clock::now());
  ::unsetenv("REDCACHE_NO_SKIP");
  return out;
}

}  // namespace

int main() {
  const int reps = Reps();
  std::printf(
      "eventcore — wake-driven scheduler vs single-cycle stepping "
      "(%d reps, interleaved)\n\n",
      reps);

  SampleSet idle, loaded, cell;
  std::uint64_t idle_event_visits = 0, idle_stepped_visits = 0;
  std::uint64_t cell_ticks = 0, cell_skipped = 0;
  bool ok = true;

  for (int r = 0; r < reps; ++r) {
    const DramPass ie = IdleSparsePass(false, 2000);
    const DramPass is = IdleSparsePass(true, 2000);
    idle.event.push_back(ie.seconds);
    idle.stepped.push_back(is.seconds);
    idle_event_visits = ie.visits;
    idle_stepped_visits = is.visits;
    if (ie.completed != is.completed) ok = false;

    const DramPass le = LoadedPass(false, 800000);
    const DramPass ls = LoadedPass(true, 800000);
    loaded.event.push_back(le.seconds);
    loaded.stepped.push_back(ls.seconds);
    if (le.completed != ls.completed) ok = false;

    const CellPass ce = FullSystemPass(false);
    const CellPass cs = FullSystemPass(true);
    cell.event.push_back(ce.seconds);
    cell.stepped.push_back(cs.seconds);
    cell_ticks = ce.result.ticks_executed;
    cell_skipped = ce.result.cycles_skipped;
    if (ce.result.exec_cycles != cs.result.exec_cycles ||
        ce.result.stats.counters() != cs.result.stats.counters()) {
      ok = false;
    }
  }
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: skip vs no-skip results differ in some repetition\n");
  }

  const double skip_pct =
      cell_ticks + cell_skipped > 0
          ? 100.0 * static_cast<double>(cell_skipped) /
                static_cast<double>(cell_ticks + cell_skipped)
          : 0;

  TextTable table({"scenario", "stepped p50", "p95", "event p50", "p95",
                   "speedup"});
  const auto row = [&table](const char* name, const SampleSet& s) {
    table.AddRow({name, TextTable::Num(s.stepped_p50(), 3),
                  TextTable::Num(s.stepped_p95(), 3),
                  TextTable::Num(s.event_p50(), 3),
                  TextTable::Num(s.event_p95(), 3),
                  TextTable::Num(s.speedup(), 2)});
  };
  row("dram idle-sparse", idle);
  row("dram loaded", loaded);
  row("RedCache/LU cell", cell);
  std::printf("%s\n", table.Render().c_str());
  std::printf("cell skip ratio: %.1f%% of cycles skipped (%llu ticks, %llu "
              "skipped)\n",
              skip_pct, static_cast<unsigned long long>(cell_ticks),
              static_cast<unsigned long long>(cell_skipped));

  std::filesystem::create_directories("results");
  std::ofstream json("results/BENCH_eventcore.json");
  json << "{\n"
       << "  \"bench\": \"eventcore\",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"idle_sparse\": {";
  idle.EmitJson(json);
  json << ", \"event_visits\": " << idle_event_visits
       << ", \"stepped_visits\": " << idle_stepped_visits << "},\n"
       << "  \"loaded\": {";
  loaded.EmitJson(json);
  json << "},\n"
       << "  \"full_system\": {\"arch\": \"RedCache\", \"workload\": \"LU\", ";
  cell.EmitJson(json);
  json << ", \"ticks_executed\": " << cell_ticks
       << ", \"cycles_skipped\": " << cell_skipped
       << ", \"skip_pct\": " << skip_pct << "},\n"
       << "  \"identical_results\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
  std::printf("wrote results/BENCH_eventcore.json\n");
  return ok ? 0 : 1;
}
