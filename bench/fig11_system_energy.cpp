// Figure 11: total system energy of every architecture normalized to Alloy
// Cache for the 11 parallel workloads.
//
// Paper reference points: RedCache improves system energy by 29% over
// Alloy and 18% over Bear; Red-InSitu reaches 33% over Alloy.
#include <cstdio>
#include <map>

#include "bench_util.hpp"

int main() {
  using namespace redcache;
  using namespace redcache::bench;

  const auto workloads = SelectedWorkloads();
  const auto& archs = EvaluationArchs();
  RunCellsAhead(GridCells(archs, workloads), "fig11");

  std::printf("Figure 11 — system energy normalized to Alloy Cache\n");
  std::printf("(lower is better; paper means: RedCache 0.71 vs Alloy,\n");
  std::printf(" 0.82 vs Bear; Red-InSitu 0.67 vs Alloy)\n\n");

  std::vector<std::string> header = {"workload"};
  for (const Arch a : archs) header.push_back(ToString(a));
  TextTable table(header);

  std::map<Arch, std::vector<double>> ratios;
  for (const std::string& wl : workloads) {
    const CellResult alloy = RunCell(Arch::kAlloy, wl);
    std::vector<std::string> row = {wl};
    for (const Arch a : archs) {
      const CellResult r = a == Arch::kAlloy ? alloy : RunCell(a, wl);
      const double ratio = r.energy.SystemNj() / alloy.energy.SystemNj();
      ratios[a].push_back(ratio);
      row.push_back(TextTable::Num(ratio, 3));
    }
    table.AddRow(std::move(row));
  }
  std::vector<std::string> mean_row = {"geomean"};
  for (const Arch a : archs) {
    mean_row.push_back(TextTable::Num(GeoMean(ratios[a]), 3));
  }
  table.AddRow(std::move(mean_row));
  std::printf("%s\n", table.Render().c_str());

  const double red = GeoMean(ratios[Arch::kRedCache]);
  const double bear = GeoMean(ratios[Arch::kBear]);
  const double insitu = GeoMean(ratios[Arch::kRedInSitu]);
  std::printf("summary (measured vs paper):\n");
  std::printf("  RedCache system energy vs Alloy: -%.1f%% (paper -29%%)\n",
              (1.0 - red) * 100.0);
  std::printf("  RedCache system energy vs Bear:  -%.1f%% (paper -18%%)\n",
              (1.0 - red / bear) * 100.0);
  std::printf("  Red-InSitu vs Alloy: -%.1f%% (paper -33%%)\n",
              (1.0 - insitu) * 100.0);
  return 0;
}
