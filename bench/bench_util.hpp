// Shared harness for the figure-reproduction benches.
//
// Runs (architecture x workload) simulations on the scaled evaluation
// preset and optionally caches results on disk so the three evaluation
// figures (execution time / HBM energy / system energy), which share one
// sweep, do not re-simulate. The cache is enabled by setting
// REDCACHE_CACHE_DIR; entries key on (arch, workload, scale, preset).
// Delete the directory after changing simulator code.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "sim/runner.hpp"

namespace redcache::bench {

/// Workload scale used by all figure benches (overridable via
/// REDCACHE_REFS_SCALE, which multiplies on top).
inline double DefaultScale() { return 1.0; }

struct CellResult {
  Cycle exec_cycles = 0;
  StatSet stats;
  EnergyBreakdown energy;
};

inline std::string CacheKey(Arch arch, const std::string& workload,
                            double scale, const char* preset,
                            const std::string& variant = "") {
  char buf[200];
  std::snprintf(buf, sizeof(buf), "%s_%s_%s_%.4f%s%s.stats", preset,
                ToString(arch), workload.c_str(), scale,
                variant.empty() ? "" : "_", variant.c_str());
  std::string key = buf;
  for (char& c : key) {
    if (c == ' ' || c == '/') c = '-';
  }
  return key;
}

inline std::optional<CellResult> LoadCached(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  CellResult r;
  std::string name;
  std::uint64_t value;
  if (!(in >> name >> value) || name != "exec_cycles") return std::nullopt;
  r.exec_cycles = value;
  while (in >> name >> value) {
    r.stats.Counter(name) = value;
  }
  return r;
}

inline void SaveCached(const std::string& path, const CellResult& r) {
  std::ofstream out(path);
  if (!out) return;
  out << "exec_cycles " << r.exec_cycles << '\n';
  for (const auto& [name, value] : r.stats.counters()) {
    out << name << ' ' << value << '\n';
  }
}

/// Run one cell (with caching if REDCACHE_CACHE_DIR is set). `variant`
/// distinguishes non-default configurations (e.g. fill granularity) in the
/// cache key; `preset` may be customized to match.
inline CellResult RunCell(Arch arch, const std::string& workload,
                          double scale = DefaultScale(),
                          const std::string& variant = "",
                          const SimPreset* custom_preset = nullptr) {
  const SimPreset preset =
      custom_preset != nullptr ? *custom_preset : EvalPreset();
  const char* cache_dir = std::getenv("REDCACHE_CACHE_DIR");
  std::string path;
  if (cache_dir != nullptr) {
    path = std::string(cache_dir) + "/" +
           CacheKey(arch, workload, EffectiveScale(scale), preset.name,
                    variant);
    if (auto cached = LoadCached(path)) {
      CellResult r = std::move(*cached);
      const EnergyModel model;
      r.energy = model.Compute(r.stats, r.exec_cycles,
                               preset.hierarchy.num_cores,
                               preset.mem.hbm.geometry.channels,
                               preset.mem.mainmem.geometry.channels);
      return r;
    }
  }
  RunSpec spec;
  spec.arch = arch;
  spec.workload = workload;
  spec.scale = scale;
  spec.preset = preset;
  const RunResult run = RunOne(spec);
  CellResult r;
  r.exec_cycles = run.exec_cycles;
  r.stats = run.stats;
  r.energy = run.energy;
  if (!path.empty()) SaveCached(path, r);
  return r;
}

/// Workload filter from REDCACHE_WORKLOADS (comma separated labels).
inline std::vector<std::string> SelectedWorkloads() {
  const char* env = std::getenv("REDCACHE_WORKLOADS");
  if (env == nullptr) return WorkloadLabels();
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = env;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
      if (*p == '\0') break;
    } else {
      cur.push_back(*p);
    }
  }
  return out.empty() ? WorkloadLabels() : out;
}

/// Geometric mean helper for "average" rows (ratios combine multiplicatively).
inline double GeoMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace redcache::bench
