// Shared harness for the figure-reproduction benches.
//
// Cells run through the batch engine (src/sim/batch.hpp): a worker-pool
// sweep with an in-process memo (shared cells such as the Alloy baseline
// column simulate once) and, when REDCACHE_CACHE_DIR is set, a disk cache
// whose entries are validated against a simulator/preset fingerprint — a
// stale entry from an older build re-simulates instead of silently serving
// wrong numbers.
//
// Typical figure structure:
//   RunCellsAhead(GridCells(archs, workloads), "fig9");  // parallel sweep
//   ... per-cell RunCell(...) calls then hit the in-process memo.
#pragma once

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "sim/batch.hpp"

namespace redcache::bench {

/// Workload scale used by all figure benches (overridable via
/// REDCACHE_REFS_SCALE, which multiplies on top).
inline double DefaultScale() { return 1.0; }

struct CellResult {
  Cycle exec_cycles = 0;
  StatSet stats;
  EnergyBreakdown energy;
};

/// Build the CellSpec for one figure cell. `variant` distinguishes
/// non-default configurations (e.g. fill granularity) in the cache key;
/// `custom_preset` may be customized to match.
inline CellSpec MakeCell(Arch arch, const std::string& workload,
                         double scale = DefaultScale(),
                         const std::string& variant = "",
                         const SimPreset* custom_preset = nullptr) {
  CellSpec cell;
  cell.spec.arch = arch;
  cell.spec.workload = workload;
  cell.spec.scale = scale;
  cell.spec.preset = custom_preset != nullptr ? *custom_preset : EvalPreset();
  cell.variant = variant;
  return cell;
}

/// Run one cell (memoized in-process; disk-cached under REDCACHE_CACHE_DIR).
inline CellResult RunCell(Arch arch, const std::string& workload,
                          double scale = DefaultScale(),
                          const std::string& variant = "",
                          const SimPreset* custom_preset = nullptr) {
  const RunResult r =
      RunCellCached(MakeCell(arch, workload, scale, variant, custom_preset));
  CellResult out;
  out.exec_cycles = r.exec_cycles;
  out.stats = r.stats;
  out.energy = r.energy;
  return out;
}

/// Every (arch x workload) cell of a figure grid.
inline std::vector<CellSpec> GridCells(const std::vector<Arch>& archs,
                                       const std::vector<std::string>& workloads,
                                       double scale = DefaultScale()) {
  std::vector<CellSpec> cells;
  cells.reserve(archs.size() * workloads.size());
  for (const std::string& wl : workloads) {
    for (const Arch a : archs) {
      cells.push_back(MakeCell(a, wl, scale));
    }
  }
  return cells;
}

/// Run a cell set through the worker pool ahead of time, so the per-cell
/// RunCell calls that build the figure tables hit the in-process memo.
inline void RunCellsAhead(const std::vector<CellSpec>& cells,
                          const std::string& label) {
  BatchOptions opts;
  opts.label = label;
  RunCells(cells, opts);
}

/// Workload filter from REDCACHE_WORKLOADS (comma separated labels).
inline std::vector<std::string> SelectedWorkloads() {
  const char* env = std::getenv("REDCACHE_WORKLOADS");
  if (env == nullptr) return WorkloadLabels();
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = env;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
      if (*p == '\0') break;
    } else {
      cur.push_back(*p);
    }
  }
  return out.empty() ? WorkloadLabels() : out;
}

/// Geometric mean helper for "average" rows (ratios combine multiplicatively).
inline double GeoMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace redcache::bench
