// Multi-tenant contention matrix: every Table II workload pair co-scheduled
// as a 2-tenant mix under RedCache, reporting each tenant's slowdown versus
// its solo run; plus one 4-tenant mix (FT+RDX+LU+HIST) across every sweep
// policy. Writes results/MIX_contention.json for trend tracking.
//
// The matrix row is the victim, the column the co-runner: cell (i, j) is
// workload i's slowdown when sharing the memory system with workload j.
// Each unordered pair simulates once (tenant0 fills (i, j), tenant1 fills
// (j, i)); solos and mixes all go through the batch cache.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "bench_util.hpp"
#include "dramcache/policy_registry.hpp"

namespace {

using namespace redcache;
using namespace redcache::bench;

/// A co-scheduled mix cell (equal weights, offset placement — the planner
/// default the CLI uses).
CellSpec MixCell(const std::string& policy,
                 const std::vector<std::string>& labels, double scale) {
  CellSpec cell;
  cell.spec.policy = policy;
  cell.spec.scale = scale;
  cell.spec.preset = EvalPreset();
  std::string joined;
  for (const std::string& l : labels) {
    tenant::TenantSpec t;
    t.workload = l;
    cell.spec.mix.tenants.push_back(t);
    if (!joined.empty()) joined += "+";
    joined += l;
  }
  // Ignored by the run (the mix replaces it) but keeps cache keys and
  // progress lines readable.
  cell.spec.workload = joined;
  return cell;
}

/// The paper's evaluation archs plus every registry policy with sweep=true.
std::vector<std::string> SweepPolicies() {
  std::vector<std::string> out;
  for (const Arch a : EvaluationArchs()) out.push_back(ToString(a));
  for (const std::string& name : PolicyRegistry::Instance().SweepNames()) {
    if (std::find(out.begin(), out.end(), name) == out.end()) {
      out.push_back(name);
    }
  }
  return out;
}

}  // namespace

int main() {
  const double scale = DefaultScale();
  const std::vector<std::string> workloads = SelectedWorkloads();
  const std::size_t n = workloads.size();

  // Phase 1: RedCache solos (the slowdown denominators) and all unordered
  // pairs, dispatched together through the worker pool.
  std::vector<CellSpec> cells;
  for (const std::string& wl : workloads) {
    CellSpec solo;
    solo.spec.policy = "RedCache";
    solo.spec.workload = wl;
    solo.spec.scale = scale;
    solo.spec.preset = EvalPreset();
    cells.push_back(std::move(solo));
  }
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      pairs.emplace_back(i, j);
      cells.push_back(MixCell("RedCache", {workloads[i], workloads[j]}, scale));
    }
  }
  BatchOptions opts;
  opts.label = "mix";
  const std::vector<RunResult> results = RunCells(cells, opts);

  std::vector<std::uint64_t> solo_cycles(n);
  for (std::size_t i = 0; i < n; ++i) {
    solo_cycles[i] = results[i].exec_cycles;
  }

  // slowdown[i][j]: workload i's slowdown when paired with workload j.
  std::vector<std::vector<double>> slowdown(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<double>> hit(n, std::vector<double>(n, 0.0));
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    const auto [i, j] = pairs[p];
    const RunResult& r = results[n + p];
    const auto rows = tenant::QosFromStats(r.stats);
    if (rows.size() != 2) {
      std::fprintf(stderr, "FAIL: %s+%s exported %zu tenant rows, want 2\n",
                   workloads[i].c_str(), workloads[j].c_str(), rows.size());
      return 1;
    }
    slowdown[i][j] = static_cast<double>(rows[0].finish_cycles) /
                     static_cast<double>(solo_cycles[i]);
    slowdown[j][i] = static_cast<double>(rows[1].finish_cycles) /
                     static_cast<double>(solo_cycles[j]);
    hit[i][j] = rows[0].hit_rate();
    hit[j][i] = rows[1].hit_rate();
  }

  std::printf("Table II x Table II contention matrix — RedCache, scale %.2f\n",
              scale);
  std::printf("(row = victim's slowdown vs solo when co-run with column)\n\n");
  std::vector<std::string> header = {"victim \\ co-runner"};
  for (const std::string& wl : workloads) header.push_back(wl);
  TextTable table(header);
  std::vector<double> worst(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::string> row = {workloads[i]};
    for (std::size_t j = 0; j < n; ++j) {
      row.push_back(TextTable::Num(slowdown[i][j], 2));
      worst[i] = std::max(worst[i], slowdown[i][j]);
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.Render().c_str());
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("  %s worst-case slowdown: %.2fx\n", workloads[i].c_str(),
                worst[i]);
  }

  // Phase 2: one heterogeneous 4-tenant mix across every sweep policy.
  const std::vector<std::string> four = {"FT", "RDX", "LU", "HIST"};
  const std::vector<std::string> policies = SweepPolicies();
  std::vector<CellSpec> four_cells;
  for (const std::string& p : policies) {
    four_cells.push_back(MixCell(p, four, scale));
  }
  BatchOptions fopts;
  fopts.label = "mix4";
  const std::vector<RunResult> four_results = RunCells(four_cells, fopts);

  std::printf("\n4-tenant mix (FT+RDX+LU+HIST) across sweep policies:\n\n");
  std::vector<std::string> fheader = {"policy", "Mcycles"};
  for (const std::string& wl : four) fheader.push_back(wl + " hit");
  TextTable ftable(fheader);
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const RunResult& r = four_results[p];
    const auto rows = tenant::QosFromStats(r.stats);
    std::vector<std::string> row = {
        policies[p],
        TextTable::Num(static_cast<double>(r.exec_cycles) / 1e6, 1)};
    for (std::size_t t = 0; t < four.size(); ++t) {
      row.push_back(t < rows.size() ? TextTable::Pct(rows[t].hit_rate())
                                    : "-");
    }
    ftable.AddRow(std::move(row));
  }
  std::printf("%s\n", ftable.Render().c_str());

  std::filesystem::create_directories("results");
  std::ofstream json("results/MIX_contention.json");
  json << "{\n"
       << "  \"bench\": \"mix_contention\",\n"
       << "  \"policy\": \"RedCache\",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"pairs\": [\n";
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    const auto [i, j] = pairs[p];
    json << "    {\"a\": \"" << workloads[i] << "\", \"b\": \"" << workloads[j]
         << "\", \"slowdown_a\": " << slowdown[i][j]
         << ", \"slowdown_b\": " << slowdown[j][i]
         << ", \"hit_a\": " << hit[i][j] << ", \"hit_b\": " << hit[j][i]
         << "}" << (p + 1 < pairs.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"four_tenant\": [\n";
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const auto rows = tenant::QosFromStats(four_results[p].stats);
    json << "    {\"policy\": \"" << policies[p]
         << "\", \"exec_cycles\": " << four_results[p].exec_cycles
         << ", \"tenants\": [";
    for (std::size_t t = 0; t < rows.size(); ++t) {
      json << "{\"label\": \"" << (t < four.size() ? four[t] : "?")
           << "\", \"hit_rate\": " << rows[t].hit_rate()
           << ", \"hbm_share\": " << tenant::HbmShare(rows, rows[t])
           << ", \"refs\": " << rows[t].refs << "}"
           << (t + 1 < rows.size() ? ", " : "");
    }
    json << "]}" << (p + 1 < policies.size() ? "," : "") << "\n";
  }
  json << "  ]\n"
       << "}\n";
  std::printf("wrote results/MIX_contention.json\n");
  return 0;
}
