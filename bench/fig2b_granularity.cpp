// Figure 2(b): impact of the fill granularity (64 B / 128 B / 256 B cache
// lines) on bandwidth efficiency, on the Alloy-style HBM cache, normalized
// to the 64 B configuration.
//
// Paper reference points: going from 64 B to 128 B / 256 B improves hit
// rate by ~12% / ~21% on average but moves far more data and degrades
// performance by 8-24%.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "dramcache/alloy.hpp"

namespace {

using namespace redcache;
using namespace redcache::bench;

struct GranResult {
  double hit_rate = 0;
  double bytes = 0;
  double bandwidth = 0;
  double exec = 0;
};

CellSpec GranularityCell(const std::string& wl, std::uint32_t line_blocks) {
  SimPreset preset = EvalPreset();
  preset.mem.line_blocks = line_blocks;
  return MakeCell(Arch::kAlloy, wl, DefaultScale(),
                  "gran" + std::to_string(line_blocks), &preset);
}

GranResult RunGranularity(const std::string& wl, std::uint32_t line_blocks) {
  const RunResult run = RunCellCached(GranularityCell(wl, line_blocks));
  CellResult r;
  r.exec_cycles = run.exec_cycles;
  r.stats = run.stats;
  GranResult out;
  const auto hits = r.stats.GetCounter("ctrl.cache_hits");
  const auto misses = r.stats.GetCounter("ctrl.cache_misses");
  out.hit_rate = hits + misses == 0
                     ? 0.0
                     : static_cast<double>(hits) /
                           static_cast<double>(hits + misses);
  out.bytes = static_cast<double>(
      r.stats.GetCounter("hbm.bytes_transferred") +
      r.stats.GetCounter("ddr4.bytes_transferred"));
  out.exec = static_cast<double>(r.exec_cycles);
  out.bandwidth = out.bytes / out.exec;
  return out;
}

}  // namespace

int main() {
  const auto workloads = SelectedWorkloads();
  const std::uint32_t grans[] = {1, 2, 4};  // 64 B, 128 B, 256 B
  {
    std::vector<CellSpec> cells;
    for (const std::string& wl : workloads) {
      for (const std::uint32_t g : grans) {
        cells.push_back(GranularityCell(wl, g));
      }
    }
    RunCellsAhead(cells, "fig2b");
  }

  std::printf("Figure 2(b) — fill-granularity study on the Alloy HBM cache\n");
  std::printf("(normalized to 64 B; paper: hit rate +12%%/+21%%, data and\n");
  std::printf(" bandwidth grow sharply, performance -8..-24%%)\n\n");

  std::vector<double> hit_gain[3], data_ratio[3], speed_ratio[3];
  for (const std::string& wl : workloads) {
    GranResult base;
    for (int g = 0; g < 3; ++g) {
      const GranResult r = RunGranularity(wl, grans[g]);
      if (g == 0) base = r;
      hit_gain[g].push_back(r.hit_rate / std::max(1e-9, base.hit_rate));
      data_ratio[g].push_back(r.bytes / base.bytes);
      speed_ratio[g].push_back(base.exec / r.exec);
    }
  }

  TextTable table({"granularity", "rel. hit rate", "rel. transferred data",
                   "rel. performance", "paper"});
  const char* paper[] = {"1.00 / 1.00 / 1.00", "+12% hits, perf -8..-24%",
                         "+21% hits, perf -8..-24%"};
  const char* names[] = {"64B", "128B", "256B"};
  for (int g = 0; g < 3; ++g) {
    table.AddRow({names[g], TextTable::Num(GeoMean(hit_gain[g]), 3),
                  TextTable::Num(GeoMean(data_ratio[g]), 3),
                  TextTable::Num(GeoMean(speed_ratio[g]), 3), paper[g]});
  }
  std::printf("%s\n", table.Render().c_str());
  return 0;
}
