// Table II: workloads and data sets — prints the reconstructed suite with
// its modeled behaviour and measured footprint / reference statistics.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace redcache;
  using namespace redcache::bench;

  std::printf("Table II — workloads and data sets (synthetic reconstruction;\n");
  std::printf("originals: NAS Class A, SPLASH-2, Phoenix — see DESIGN.md)\n\n");

  TextTable table({"label", "modeled behaviour", "footprint (MiB)",
                   "refs (M)", "writes"});
  for (const std::string& wl : WorkloadLabels()) {
    WorkloadBuildParams params;
    params.num_cores = EvalPreset().hierarchy.num_cores;
    params.scale = EffectiveScale(1.0);
    auto trace = MakeWorkload(wl, params);
    std::uint64_t refs = 0, writes = 0;
    MemRef r;
    for (std::uint32_t c = 0; c < trace->num_cores(); ++c) {
      while (trace->Next(c, r)) {
        refs++;
        writes += r.is_write ? 1 : 0;
      }
    }
    table.AddRow({wl, WorkloadDescription(wl),
                  TextTable::Num(static_cast<double>(trace->footprint_bytes()) /
                                     (1024.0 * 1024.0), 1),
                  TextTable::Num(static_cast<double>(refs) / 1e6, 2),
                  TextTable::Pct(refs == 0 ? 0.0
                                           : static_cast<double>(writes) /
                                                 static_cast<double>(refs))});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("All eleven Table II applications are present: FT IS MG CH RDX "
              "OCN FFT LU BRN HIST LREG\n");
  return 0;
}
