// Table II: workloads and data sets — prints the reconstructed suite with
// its modeled behaviour and measured footprint / reference statistics.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace redcache;
  using namespace redcache::bench;

  std::printf("Table II — workloads and data sets (synthetic reconstruction;\n");
  std::printf("originals: NAS Class A, SPLASH-2, Phoenix — see DESIGN.md)\n\n");

  TextTable table({"label", "modeled behaviour", "footprint (MiB)",
                   "refs (M)", "writes"});
  const auto labels = WorkloadLabels();
  struct RowData {
    std::uint64_t footprint = 0, refs = 0, writes = 0;
  };
  std::vector<RowData> rows(labels.size());
  // Trace generation is independent per workload; drain them in parallel
  // and emit the table rows in order afterwards.
  ParallelFor(labels.size(), 0, [&](std::size_t i) {
    WorkloadBuildParams params;
    params.num_cores = EvalPreset().hierarchy.num_cores;
    params.scale = EffectiveScale(1.0);
    auto trace = MakeWorkload(labels[i], params);
    RowData& row = rows[i];
    MemRef r;
    for (std::uint32_t c = 0; c < trace->num_cores(); ++c) {
      while (trace->Next(c, r)) {
        row.refs++;
        row.writes += r.is_write ? 1 : 0;
      }
    }
    row.footprint = trace->footprint_bytes();
  });
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const RowData& row = rows[i];
    table.AddRow({labels[i], WorkloadDescription(labels[i]),
                  TextTable::Num(static_cast<double>(row.footprint) /
                                     (1024.0 * 1024.0), 1),
                  TextTable::Num(static_cast<double>(row.refs) / 1e6, 2),
                  TextTable::Pct(row.refs == 0
                                     ? 0.0
                                     : static_cast<double>(row.writes) /
                                           static_cast<double>(row.refs))});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("All eleven Table II applications are present: FT IS MG CH RDX "
              "OCN FFT LU BRN HIST LREG\n");
  return 0;
}
