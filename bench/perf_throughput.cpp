// Batch-engine throughput bench: simulated references per wall-clock
// second over a fixed evaluation cell set, serial (jobs=1) vs parallel
// (jobs=N). Writes results/BENCH_perf.json for trend tracking.
//
// Uses RunBatch (no memo, no disk cache) so both passes do the full work
// and the speedup reflects only the worker pool.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace redcache;
using namespace redcache::bench;

struct PassResult {
  double seconds = 0;
  std::uint64_t refs = 0;
  std::uint64_t cycles = 0;
};

PassResult TimedPass(const std::vector<RunSpec>& specs, unsigned jobs) {
  BatchOptions opts;
  opts.jobs = jobs;
  opts.progress = false;
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = RunBatch(specs, opts);
  const auto t1 = std::chrono::steady_clock::now();
  PassResult out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (const auto& r : results) {
    out.refs += r.stats.GetCounter("core.refs");
    out.cycles += r.exec_cycles;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = ResolveJobs(0);
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--jobs") {
      jobs = static_cast<unsigned>(std::atoi(argv[i + 1]));
    }
  }
  if (jobs == 0) jobs = 1;

  // Fixed cell set: the Fig. 9 architectures plus the rival registry
  // policies over three contrasting workloads, small enough to finish
  // quickly at any REDCACHE_REFS_SCALE.
  const std::vector<std::string> policies = {"No-HBM", "Alloy", "Bear",
                                             "RedCache", "Banshee", "TicToc"};
  const std::vector<std::string> wls = {"LU", "RDX", "HIST"};
  std::vector<RunSpec> specs;
  for (const std::string& p : policies) {
    for (const std::string& wl : wls) {
      RunSpec s;
      s.policy = p;
      s.workload = wl;
      s.scale = EffectiveScale(0.25 * DefaultScale());
      s.ignore_env_scale = true;  // scale already resolved above
      specs.push_back(s);
    }
  }

  std::printf("perf_throughput — %zu cells, jobs=1 vs jobs=%u\n\n",
              specs.size(), jobs);

  const PassResult serial = TimedPass(specs, 1);
  const PassResult parallel = TimedPass(specs, jobs);
  const double serial_rps =
      serial.seconds > 0 ? static_cast<double>(serial.refs) / serial.seconds
                         : 0;
  const double parallel_rps =
      parallel.seconds > 0
          ? static_cast<double>(parallel.refs) / parallel.seconds
          : 0;
  const double speedup =
      parallel.seconds > 0 ? serial.seconds / parallel.seconds : 0;

  TextTable table({"pass", "wall s", "refs", "refs/s", "speedup"});
  table.AddRow({"jobs=1", TextTable::Num(serial.seconds, 2),
                std::to_string(serial.refs), TextTable::Num(serial_rps, 0),
                "1.00"});
  table.AddRow({"jobs=" + std::to_string(jobs),
                TextTable::Num(parallel.seconds, 2),
                std::to_string(parallel.refs),
                TextTable::Num(parallel_rps, 0),
                TextTable::Num(speedup, 2)});
  std::printf("%s\n", table.Render().c_str());

  if (serial.refs != parallel.refs || serial.cycles != parallel.cycles) {
    std::fprintf(stderr,
                 "FAIL: passes disagree (refs %llu vs %llu, cycles %llu vs "
                 "%llu) — batch execution must be deterministic\n",
                 static_cast<unsigned long long>(serial.refs),
                 static_cast<unsigned long long>(parallel.refs),
                 static_cast<unsigned long long>(serial.cycles),
                 static_cast<unsigned long long>(parallel.cycles));
    return 1;
  }

  std::filesystem::create_directories("results");
  std::ofstream json("results/BENCH_perf.json");
  json << "{\n"
       << "  \"bench\": \"perf_throughput\",\n"
       << "  \"cells\": " << specs.size() << ",\n"
       << "  \"jobs\": " << jobs << ",\n"
       << "  \"simulated_refs\": " << serial.refs << ",\n"
       << "  \"serial_seconds\": " << serial.seconds << ",\n"
       << "  \"parallel_seconds\": " << parallel.seconds << ",\n"
       << "  \"serial_refs_per_sec\": " << serial_rps << ",\n"
       << "  \"parallel_refs_per_sec\": " << parallel_rps << ",\n"
       << "  \"speedup\": " << speedup << "\n"
       << "}\n";
  std::printf("wrote results/BENCH_perf.json\n");
  return 0;
}
