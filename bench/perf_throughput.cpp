// Batch-engine throughput bench: simulated references per wall-clock
// second over a fixed evaluation cell set, swept over worker-pool sizes
// jobs ∈ {1, 2, hw_threads} so batch-engine scaling is visible in the
// trajectory (a single "parallel" pass at an env-pinned jobs=1 measured
// nothing). Writes results/BENCH_perf.json for trend tracking.
//
// Uses RunBatch (no memo, no disk cache) so every pass does the full work
// and the speedups reflect only the worker pool.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace redcache;
using namespace redcache::bench;

struct PassResult {
  unsigned jobs = 0;
  double seconds = 0;
  std::uint64_t refs = 0;
  std::uint64_t cycles = 0;
};

PassResult TimedPass(const std::vector<RunSpec>& specs, unsigned jobs) {
  BatchOptions opts;
  opts.jobs = jobs;
  opts.progress = false;
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = RunBatch(specs, opts);
  const auto t1 = std::chrono::steady_clock::now();
  PassResult out;
  out.jobs = jobs;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (const auto& r : results) {
    out.refs += r.stats.GetCounter("core.refs");
    out.cycles += r.exec_cycles;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned max_jobs = std::thread::hardware_concurrency();
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--jobs") {
      max_jobs = static_cast<unsigned>(std::atoi(argv[i + 1]));
    }
  }
  if (max_jobs == 0) max_jobs = 1;

  // jobs sweep: serial baseline, minimal parallelism, full machine. The
  // jobs=2 pass always runs (even on a 1-thread box, where it measures
  // oversubscription and still exercises the pool's determinism) so the
  // recorded trajectory has more than one point everywhere.
  std::vector<unsigned> sweep = {1, 2};
  if (max_jobs > 2) sweep.push_back(max_jobs);

  // Fixed cell set: the Fig. 9 architectures plus the rival registry
  // policies over three contrasting workloads, small enough to finish
  // quickly at any REDCACHE_REFS_SCALE.
  const std::vector<std::string> policies = {"No-HBM", "Alloy", "Bear",
                                             "RedCache", "Banshee", "TicToc"};
  const std::vector<std::string> wls = {"LU", "RDX", "HIST"};
  std::vector<RunSpec> specs;
  for (const std::string& p : policies) {
    for (const std::string& wl : wls) {
      RunSpec s;
      s.policy = p;
      s.workload = wl;
      s.scale = EffectiveScale(0.25 * DefaultScale());
      s.ignore_env_scale = true;  // scale already resolved above
      specs.push_back(s);
    }
  }

  std::printf("perf_throughput — %zu cells, jobs sweep {", specs.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    std::printf("%s%u", i > 0 ? ", " : "", sweep[i]);
  }
  std::printf("}\n\n");

  std::vector<PassResult> passes;
  for (const unsigned jobs : sweep) passes.push_back(TimedPass(specs, jobs));
  const PassResult& serial = passes.front();

  TextTable table({"pass", "wall s", "refs", "refs/s", "speedup"});
  for (const PassResult& p : passes) {
    const double rps =
        p.seconds > 0 ? static_cast<double>(p.refs) / p.seconds : 0;
    const double speedup = p.seconds > 0 ? serial.seconds / p.seconds : 0;
    table.AddRow({"jobs=" + std::to_string(p.jobs),
                  TextTable::Num(p.seconds, 2), std::to_string(p.refs),
                  TextTable::Num(rps, 0), TextTable::Num(speedup, 2)});
  }
  std::printf("%s\n", table.Render().c_str());

  for (const PassResult& p : passes) {
    if (p.refs != serial.refs || p.cycles != serial.cycles) {
      std::fprintf(stderr,
                   "FAIL: jobs=%u disagrees with serial (refs %llu vs %llu, "
                   "cycles %llu vs %llu) — batch execution must be "
                   "deterministic\n",
                   p.jobs, static_cast<unsigned long long>(p.refs),
                   static_cast<unsigned long long>(serial.refs),
                   static_cast<unsigned long long>(p.cycles),
                   static_cast<unsigned long long>(serial.cycles));
      return 1;
    }
  }

  std::filesystem::create_directories("results");
  std::ofstream json("results/BENCH_perf.json");
  json << "{\n"
       << "  \"bench\": \"perf_throughput\",\n"
       << "  \"cells\": " << specs.size() << ",\n"
       << "  \"hw_threads\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"simulated_refs\": " << serial.refs << ",\n"
       << "  \"passes\": [\n";
  for (std::size_t i = 0; i < passes.size(); ++i) {
    const PassResult& p = passes[i];
    const double rps =
        p.seconds > 0 ? static_cast<double>(p.refs) / p.seconds : 0;
    const double speedup = p.seconds > 0 ? serial.seconds / p.seconds : 0;
    json << "    {\"jobs\": " << p.jobs << ", \"seconds\": " << p.seconds
         << ", \"refs_per_sec\": " << rps << ", \"speedup\": " << speedup
         << "}" << (i + 1 < passes.size() ? "," : "") << "\n";
  }
  json << "  ]\n"
       << "}\n";
  std::printf("wrote results/BENCH_perf.json\n");
  return 0;
}
