// Figure 9: relative system execution time of every DRAM-cache
// architecture, normalized to Alloy Cache, for the 11 parallel workloads.
//
// Paper reference points (averages): RedCache 31% faster than Alloy and
// 24% faster than Bear; Red-InSitu 33%/26%; alpha alone contributes ~27%
// and gamma alone ~14%; RedCache reaches ~98% of Red-InSitu.
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_util.hpp"

int main() {
  using namespace redcache;
  using namespace redcache::bench;

  const auto workloads = SelectedWorkloads();
  const auto& archs = EvaluationArchs();
  RunCellsAhead(GridCells(archs, workloads), "fig9");

  std::printf("Figure 9 — execution time normalized to Alloy Cache\n");
  std::printf("(lower is better; paper means: RedCache 0.69, Bear ~0.92,\n");
  std::printf(" Red-InSitu 0.67, Red-Alpha ~0.73, Red-Gamma ~0.86)\n\n");

  std::vector<std::string> header = {"workload"};
  for (const Arch a : archs) header.push_back(ToString(a));
  TextTable table(header);

  std::map<Arch, std::vector<double>> ratios;
  for (const std::string& wl : workloads) {
    const CellResult alloy = RunCell(Arch::kAlloy, wl);
    std::vector<std::string> row = {wl};
    for (const Arch a : archs) {
      const CellResult r = a == Arch::kAlloy ? alloy : RunCell(a, wl);
      const double ratio = static_cast<double>(r.exec_cycles) /
                           static_cast<double>(alloy.exec_cycles);
      ratios[a].push_back(ratio);
      row.push_back(TextTable::Num(ratio, 3));
    }
    table.AddRow(std::move(row));
  }

  std::vector<std::string> mean_row = {"geomean"};
  for (const Arch a : archs) {
    mean_row.push_back(TextTable::Num(GeoMean(ratios[a]), 3));
  }
  table.AddRow(std::move(mean_row));
  std::printf("%s\n", table.Render().c_str());

  const double red = GeoMean(ratios[Arch::kRedCache]);
  const double bear = GeoMean(ratios[Arch::kBear]);
  const double insitu = GeoMean(ratios[Arch::kRedInSitu]);
  const double alpha = GeoMean(ratios[Arch::kRedAlpha]);
  const double gamma = GeoMean(ratios[Arch::kRedGamma]);
  std::printf("summary (measured vs paper):\n");
  std::printf("  RedCache vs Alloy: %.1f%% faster (paper 31%%)\n",
              (1.0 - red) * 100.0);
  std::printf("  RedCache vs Bear:  %.1f%% faster (paper 24%%)\n",
              (1.0 - red / bear) * 100.0);
  std::printf("  alpha-only gain:   %.1f%% (paper ~27%%)\n",
              (1.0 - alpha) * 100.0);
  std::printf("  gamma-only gain:   %.1f%% (paper ~14%%)\n",
              (1.0 - gamma) * 100.0);
  std::printf("  RedCache / Red-InSitu: %.1f%% (paper ~98%%)\n",
              insitu / red * 100.0);
  return 0;
}
