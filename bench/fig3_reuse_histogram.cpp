// Figure 3: off-chip bandwidth cost versus number of block reuses
// (homo-reuse groups) for LU, MG, RDX and HIST under the No-HBM system,
// plus the Fig. 4 L/H/X classification demonstration.
//
// Paper reference shapes: LU/MG/RDX concentrate their bandwidth cost in a
// narrow band of mid-to-high reuse counts; HIST is dominated by a spike at
// very low reuse counts. (Our reuse axis is scaled down together with the
// capacities; see DESIGN.md.)
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "workloads/profiler.hpp"

namespace {

using namespace redcache;
using namespace redcache::bench;

struct ProfileData {
  std::uint64_t total_requests = 0;
  std::uint64_t distinct_blocks = 0;
  std::vector<BlockProfiler::ReuseGroup> groups;
};

ProfileData RunProfile(const std::string& wl) {
  RunSpec spec;
  spec.arch = Arch::kNoHbm;
  spec.workload = wl;
  spec.preset = EvalPreset();
  auto system = BuildSystem(spec);
  BlockProfiler profiler;
  system->SetRequestObserver([&](Addr addr, bool is_wb) {
    profiler.OnRequest(addr, is_wb);
  });
  (void)system->Run();
  ProfileData out;
  out.total_requests = profiler.total_requests();
  out.distinct_blocks = profiler.distinct_blocks();
  out.groups = profiler.Groups(/*bucket=*/2);
  return out;
}

void PrintProfile(const std::string& wl, const ProfileData& data) {
  std::printf("-- %s: %llu requests over %llu distinct blocks --\n",
              wl.c_str(),
              static_cast<unsigned long long>(data.total_requests),
              static_cast<unsigned long long>(data.distinct_blocks));

  const auto& groups = data.groups;
  // Render an ASCII version of the Fig. 3 scatter: bandwidth-cost share per
  // homo-reuse bucket.
  double max_share = 0;
  for (const auto& g : groups) max_share = std::max(max_share, g.cost_share);
  TextTable table({"reuses", "blocks", "bandwidth cost share", ""});
  for (const auto& g : groups) {
    if (g.cost_share < 0.002) continue;  // de-clutter the tail
    const int bars =
        static_cast<int>(g.cost_share / std::max(1e-12, max_share) * 40);
    table.AddRow({std::to_string(g.reuses) + "-" + std::to_string(g.reuses + 1),
                  std::to_string(g.blocks), TextTable::Pct(g.cost_share),
                  std::string(static_cast<std::size_t>(bars), '#')});
  }
  std::printf("%s", table.Render().c_str());

  // Fig. 4 demonstration: classify homo-reuse groups with a static alpha
  // (min reuses) and gamma (bandwidth-significance threshold).
  const std::uint32_t alpha = 2;
  double h_cost = 0, x_cost = 0, l_cost = 0;
  std::uint64_t h_blocks = 0, x_blocks = 0, l_blocks = 0;
  // Gamma herein: a group is "bandwidth hungry" (H) if its cost share is
  // above the mean share of qualifying groups.
  double qualifying_cost = 0;
  std::uint64_t qualifying_groups = 0;
  for (const auto& g : groups) {
    if (g.reuses >= alpha) {
      qualifying_cost += g.cost_share;
      qualifying_groups++;
    }
  }
  const double gamma_threshold =
      qualifying_groups == 0 ? 0 : qualifying_cost / qualifying_groups;
  for (const auto& g : groups) {
    if (g.reuses < alpha) {
      l_cost += g.cost_share;
      l_blocks += g.blocks;
    } else if (g.cost_share >= gamma_threshold) {
      h_cost += g.cost_share;
      h_blocks += g.blocks;
    } else {
      x_cost += g.cost_share;
      x_blocks += g.blocks;
    }
  }
  std::printf(
      "Fig.4 classification (alpha=%u): L(low-reuse, bypass)=%llu blocks / "
      "%.0f%% of cost; H(hungry, cache)=%llu / %.0f%%; X(secondary)=%llu / "
      "%.0f%%\n\n",
      alpha, static_cast<unsigned long long>(l_blocks), l_cost * 100,
      static_cast<unsigned long long>(h_blocks), h_cost * 100,
      static_cast<unsigned long long>(x_blocks), x_cost * 100);
}

}  // namespace

int main() {
  std::printf("Figure 3 — off-chip bandwidth cost vs block reuses "
              "(No-HBM system)\n\n");
  const std::vector<std::string> wls = {"LU", "MG", "RDX", "HIST"};
  std::vector<ProfileData> profiles(wls.size());
  // The four profiling runs are independent; fan them out, print in order.
  ParallelFor(wls.size(), 0,
              [&](std::size_t i) { profiles[i] = RunProfile(wls[i]); });
  for (std::size_t i = 0; i < wls.size(); ++i) {
    PrintProfile(wls[i], profiles[i]);
  }
  std::printf(
      "expected shapes (paper): LU/MG/RDX concentrate cost in narrow\n"
      "mid/high-reuse bands; HIST is dominated by a low-reuse spike.\n");
  return 0;
}
