// Organization ablation (extension): how RedCache's mechanisms interact
// with cache organization — direct-mapped (the paper's design) vs 2-/4-way
// set-associative, and against the coarse-grained footprint cache that the
// paper's introduction argues fails for these workloads.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "dramcache/assoc_redcache.hpp"
#include "dramcache/footprint.hpp"

namespace {

using namespace redcache;
using namespace redcache::bench;

RunResult RunCustom(const std::string& wl,
                    std::unique_ptr<MemController> ctrl) {
  const SimPreset preset = EvalPreset();
  WorkloadBuildParams wp;
  wp.num_cores = preset.hierarchy.num_cores;
  wp.scale = EffectiveScale(1.0);
  auto trace = MakeWorkload(wl, wp);
  System system(preset.hierarchy, preset.core, std::move(ctrl),
                std::move(trace));
  return system.Run();
}

}  // namespace

int main() {
  std::printf("Organization ablation — RedCache mechanisms across cache\n");
  std::printf("organizations (not a paper figure; extension study)\n\n");

  const std::vector<std::string> workloads = {"FT", "LU"};
  TextTable table({"workload", "direct-mapped", "2-way", "4-way",
                   "footprint 2KB", "(exec cycles normalized to DM)"});

  // 4 organizations x workloads, all independent custom-controller sims.
  constexpr std::size_t kOrgs = 4;
  std::vector<RunResult> results(kOrgs * workloads.size());
  ParallelFor(results.size(), 0, [&](std::size_t i) {
    const std::string& wl = workloads[i / kOrgs];
    const SimPreset preset = EvalPreset();
    std::unique_ptr<MemController> ctrl;
    switch (i % kOrgs) {
      case 0:
        ctrl = MakeController(Arch::kRedCache, preset.mem);
        break;
      case 1:
        ctrl = std::make_unique<AssocRedCacheController>(
            preset.mem, RedCacheOptions::Full(), 2, "rc2");
        break;
      case 2:
        ctrl = std::make_unique<AssocRedCacheController>(
            preset.mem, RedCacheOptions::Full(), 4, "rc4");
        break;
      default:
        ctrl = std::make_unique<FootprintCacheController>(preset.mem);
        break;
    }
    results[i] = RunCustom(wl, std::move(ctrl));
  });

  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const std::string& wl = workloads[w];
    const RunResult& dm = results[w * kOrgs + 0];
    const RunResult& w2 = results[w * kOrgs + 1];
    const RunResult& w4 = results[w * kOrgs + 2];
    const RunResult& fp = results[w * kOrgs + 3];
    const double base = static_cast<double>(dm.exec_cycles);
    table.AddRow({wl, "1.000",
                  TextTable::Num(static_cast<double>(w2.exec_cycles) / base, 3),
                  TextTable::Num(static_cast<double>(w4.exec_cycles) / base, 3),
                  TextTable::Num(static_cast<double>(fp.exec_cycles) / base, 3),
                  ""});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "expected: modest associativity gains (alpha already removes most\n"
      "conflict pressure); the coarse-grained footprint cache trails on\n"
      "these fine-grained workloads — the paper's premise.\n");
  return 0;
}
