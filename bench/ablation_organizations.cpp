// Organization ablation (extension): how RedCache's mechanisms interact
// with cache organization — direct-mapped (the paper's design) vs 2-/4-way
// set-associative, and against the coarse-grained footprint cache that the
// paper's introduction argues fails for these workloads.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "dramcache/assoc_redcache.hpp"
#include "dramcache/footprint.hpp"

namespace {

using namespace redcache;
using namespace redcache::bench;

RunResult RunCustom(const std::string& wl,
                    std::unique_ptr<MemController> ctrl) {
  const SimPreset preset = EvalPreset();
  WorkloadBuildParams wp;
  wp.num_cores = preset.hierarchy.num_cores;
  wp.scale = EffectiveScale(1.0);
  auto trace = MakeWorkload(wl, wp);
  System system(preset.hierarchy, preset.core, std::move(ctrl),
                std::move(trace));
  return system.Run();
}

}  // namespace

int main() {
  std::printf("Organization ablation — RedCache mechanisms across cache\n");
  std::printf("organizations (not a paper figure; extension study)\n\n");

  const char* workloads[] = {"FT", "LU"};
  TextTable table({"workload", "direct-mapped", "2-way", "4-way",
                   "footprint 2KB", "(exec cycles normalized to DM)"});

  for (const char* wl : workloads) {
    const SimPreset preset = EvalPreset();
    const RunResult dm = RunCustom(
        wl, MakeController(Arch::kRedCache, preset.mem));
    const RunResult w2 = RunCustom(
        wl, std::make_unique<AssocRedCacheController>(
                preset.mem, RedCacheOptions::Full(), 2, "rc2"));
    const RunResult w4 = RunCustom(
        wl, std::make_unique<AssocRedCacheController>(
                preset.mem, RedCacheOptions::Full(), 4, "rc4"));
    const RunResult fp =
        RunCustom(wl, std::make_unique<FootprintCacheController>(preset.mem));
    const double base = static_cast<double>(dm.exec_cycles);
    table.AddRow({wl, "1.000",
                  TextTable::Num(static_cast<double>(w2.exec_cycles) / base, 3),
                  TextTable::Num(static_cast<double>(w4.exec_cycles) / base, 3),
                  TextTable::Num(static_cast<double>(fp.exec_cycles) / base, 3),
                  ""});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "expected: modest associativity gains (alpha already removes most\n"
      "conflict pressure); the coarse-grained footprint cache trails on\n"
      "these fine-grained workloads — the paper's premise.\n");
  return 0;
}
