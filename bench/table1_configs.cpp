// Table I: the evaluated system configurations.
//
// Prints both presets (paper-faithful and the scaled default) and
// self-checks the paper preset against Table I's numbers.
#include <cstdio>

#include "common/table.hpp"
#include "sim/presets.hpp"

namespace {

using namespace redcache;

void PrintPreset(const SimPreset& p) {
  std::printf("== preset: %s ==\n", p.name);

  TextTable proc({"processor", "value"});
  proc.AddRow({"cores", std::to_string(p.hierarchy.num_cores) +
                            " 4-issue OoO @ 3.2 GHz (trace-driven model)"});
  proc.AddRow({"L1 (per core)",
               std::to_string(p.hierarchy.l1.size_bytes / 1024) + " KB, " +
                   std::to_string(p.hierarchy.l1.ways) + "-way, LRU, 64 B"});
  proc.AddRow({"L2 (per core)",
               std::to_string(p.hierarchy.l2.size_bytes / 1024) + " KB, " +
                   std::to_string(p.hierarchy.l2.ways) + "-way, LRU, 64 B"});
  proc.AddRow({"L3 (shared)",
               std::to_string(p.hierarchy.l3.size_bytes / 1024) + " KB, " +
                   std::to_string(p.hierarchy.l3.ways) + "-way, LRU, 64 B"});
  std::printf("%s\n", proc.Render().c_str());

  const auto dram_rows = [](const DramConfig& d) {
    TextTable t({d.name + std::string(" parameter"), "value"});
    t.AddRow({"capacity", std::to_string(d.geometry.capacity_bytes >> 20) +
                              " MiB"});
    t.AddRow({"channels", std::to_string(d.geometry.channels)});
    t.AddRow({"ranks/channel", std::to_string(d.geometry.ranks_per_channel)});
    t.AddRow({"banks/rank", std::to_string(d.geometry.banks_per_rank)});
    t.AddRow({"bus width", std::to_string(d.geometry.bus_bits) + " bits"});
    t.AddRow({"tRCD/tCAS/tCCD", std::to_string(d.timing.tRCD) + "/" +
                                    std::to_string(d.timing.tCAS) + "/" +
                                    std::to_string(d.timing.tCCD)});
    t.AddRow({"tWTR/tWR/tRTP", std::to_string(d.timing.tWTR) + "/" +
                                   std::to_string(d.timing.tWR) + "/" +
                                   std::to_string(d.timing.tRTP)});
    t.AddRow({"tBL/tCWD/tRP", std::to_string(d.timing.tBL) + "/" +
                                  std::to_string(d.timing.tCWD) + "/" +
                                  std::to_string(d.timing.tRP)});
    t.AddRow({"tRRD/tRAS/tRC/tFAW",
              std::to_string(d.timing.tRRD) + "/" +
                  std::to_string(d.timing.tRAS) + "/" +
                  std::to_string(d.timing.tRC) + "/" +
                  std::to_string(d.timing.tFAW)});
    return t.Render();
  };
  std::printf("%s\n", dram_rows(p.mem.hbm).c_str());
  std::printf("%s\n", dram_rows(p.mem.mainmem).c_str());
}

int CheckPaperPreset() {
  const SimPreset p = PaperPreset();
  int failures = 0;
  const auto expect = [&](bool ok, const char* what) {
    if (!ok) {
      std::printf("MISMATCH vs Table I: %s\n", what);
      failures++;
    }
  };
  expect(p.hierarchy.num_cores == 16, "16 cores");
  expect(p.hierarchy.l3.size_bytes == 8_MiB, "8MB L3");
  expect(p.mem.hbm.geometry.capacity_bytes == 2_GiB, "2GB DRAM cache");
  expect(p.mem.hbm.geometry.channels == 4, "4 HBM channels");
  expect(p.mem.hbm.geometry.bus_bits == 128, "128-bit HBM channel");
  expect(p.mem.hbm.timing.tCCD == 16, "HBM tCCD 16");
  expect(p.mem.mainmem.geometry.capacity_bytes == 32_GiB, "32GB main memory");
  expect(p.mem.mainmem.geometry.channels == 2, "2 DDR4 channels");
  expect(p.mem.mainmem.timing.tCCD == 61, "DDR4 tCCD 61");
  expect(p.mem.mainmem.timing.tCWD == 44, "DDR4 tCWD 44");
  return failures;
}

}  // namespace

int main() {
  std::printf("Table I — evaluated system configurations\n\n");
  PrintPreset(PaperPreset());
  PrintPreset(EvalPreset());
  const int failures = CheckPaperPreset();
  if (failures == 0) {
    std::printf("paper preset matches Table I: OK\n");
  }
  return failures == 0 ? 0 : 1;
}
