// Ablations and in-text claims of the paper:
//  * §II-C  — ">82% of the last accesses to cache blocks are writebacks"
//  * §III-A1 — "~90% of blocks inside a page fall into the [0,1) reuse
//              std-dev bin, 6% into [1,2)" (justifies page-shared alpha)
//  * §III-C — RCU drain-condition statistics and the 6.375x latency factor
//  * static-alpha sweep — what the adaptive controller competes against
#include <cstdio>

#include "bench_util.hpp"
#include "dramcache/redcache.hpp"
#include "workloads/profiler.hpp"

namespace {

using namespace redcache;
using namespace redcache::bench;

void LastWriteAndUniformity() {
  std::printf("== last-access and page-uniformity claims ==\n");
  TextTable table({"workload", "last access = writeback", "blocks in [0,1) "
                   "sigma", "[1,2) sigma"});
  double wb_sum = 0, one_sum = 0, two_sum = 0;
  const auto workloads = SelectedWorkloads();
  struct Claim {
    double wb = 0, within_one = 0, within_two = 0;
  };
  std::vector<Claim> claims(workloads.size());
  // Profiling runs are independent per workload; fan out, print in order.
  ParallelFor(workloads.size(), 0, [&](std::size_t i) {
    RunSpec spec;
    spec.arch = Arch::kNoHbm;
    spec.workload = workloads[i];
    spec.preset = EvalPreset();
    auto system = BuildSystem(spec);
    BlockProfiler profiler;
    system->SetRequestObserver(
        [&](Addr addr, bool is_wb) { profiler.OnRequest(addr, is_wb); });
    (void)system->Run();
    claims[i].wb = profiler.LastAccessWritebackFraction();
    const auto uni = profiler.PageReuseUniformity();
    claims[i].within_one = uni.within_one;
    claims[i].within_two = uni.within_two;
  });
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const Claim& c = claims[i];
    wb_sum += c.wb;
    one_sum += c.within_one;
    two_sum += c.within_two;
    table.AddRow({workloads[i], TextTable::Pct(c.wb),
                  TextTable::Pct(c.within_one), TextTable::Pct(c.within_two)});
  }
  const double n = static_cast<double>(workloads.size());
  table.AddRow({"mean", TextTable::Pct(wb_sum / n),
                TextTable::Pct(one_sum / n), TextTable::Pct(two_sum / n)});
  std::printf("%s", table.Render().c_str());
  std::printf("paper: >82%% writebacks; ~90%% within [0,1) sigma, 6%% in "
              "[1,2)\n\n");
}

void RcuStatistics() {
  std::printf("== RCU manager statistics (paper SIII-C) ==\n");
  const DramTimingParams t = HbmCacheConfig().timing;
  std::printf("latency reduction factor (tBL+tCWD+tWTR)/tCCD = %.3f "
              "(paper 6.375)\n",
              static_cast<double>(t.tBL + t.tCWD + t.tWTR) /
                  static_cast<double>(t.tCCD));
  TextTable table({"workload", "parked updates", "merged (cond.1)",
                   "idle (cond.2)", "capacity (cond.3)",
                   "deferred past insert"});
  RunCellsAhead(GridCells({Arch::kRedCache}, SelectedWorkloads()),
                "ablation-rcu");
  for (const std::string& wl : SelectedWorkloads()) {
    const CellResult r = RunCell(Arch::kRedCache, wl);
    const double inserts =
        static_cast<double>(r.stats.GetCounter("ctrl.rcu_inserts"));
    if (inserts == 0) {
      table.AddRow({wl, "0", "-", "-", "-", "-"});
      continue;
    }
    const double merged =
        static_cast<double>(r.stats.GetCounter("ctrl.rcu_merged_flushes"));
    const double idle =
        static_cast<double>(r.stats.GetCounter("ctrl.rcu_idle_flushes"));
    const double cap =
        static_cast<double>(r.stats.GetCounter("ctrl.rcu_capacity_flushes"));
    // "Deferred" = updates that were parked rather than served the moment
    // they arrived (the paper claims >97% see no immediately-true
    // condition; every insert is deferred by construction, and the split
    // below shows how they eventually drained).
    table.AddRow({wl, std::to_string(static_cast<std::uint64_t>(inserts)),
                  TextTable::Pct(merged / inserts),
                  TextTable::Pct(idle / inserts),
                  TextTable::Pct(cap / inserts), "100%"});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("paper: >97%% of updates see none of the drain conditions at "
              "insert time\n\n");
}

void StaticAlphaSweep() {
  std::printf("== static-alpha ablation (adaptive controller reference) ==\n");
  TextTable table({"alpha", "FT exec (Mcycles)", "LU exec (Mcycles)",
                   "RDX exec (Mcycles)"});
  const std::vector<std::string> wls = {"FT", "LU", "RDX"};
  constexpr std::uint32_t kMaxAlpha = 3;
  std::vector<Cycle> execs(kMaxAlpha * wls.size());
  // One custom-controller simulation per (alpha, workload) pair.
  ParallelFor(execs.size(), 0, [&](std::size_t i) {
    const std::uint32_t alpha = static_cast<std::uint32_t>(i / wls.size()) + 1;
    const std::string& wl = wls[i % wls.size()];
    RedCacheOptions opt = RedCacheOptions::Full();
    opt.alpha.initial_alpha = alpha;
    opt.alpha.adaptive = false;
    const SimPreset preset = EvalPreset();
    WorkloadBuildParams wp;
    wp.num_cores = preset.hierarchy.num_cores;
    wp.scale = EffectiveScale(1.0);
    auto trace = MakeWorkload(wl, wp);
    auto ctrl =
        std::make_unique<RedCacheController>(preset.mem, opt, "static-alpha");
    System system(preset.hierarchy, preset.core, std::move(ctrl),
                  std::move(trace));
    execs[i] = system.Run().exec_cycles;
  });
  for (std::uint32_t alpha = 1; alpha <= kMaxAlpha; ++alpha) {
    std::vector<std::string> row = {std::to_string(alpha)};
    for (std::size_t w = 0; w < wls.size(); ++w) {
      const Cycle exec = execs[(alpha - 1) * wls.size() + w];
      row.push_back(TextTable::Num(static_cast<double>(exec) / 1e6, 1));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace

int main() {
  LastWriteAndUniformity();
  RcuStatistics();
  StaticAlphaSweep();
  return 0;
}
