// Figure 2(a): bandwidth efficiency of the three system topologies —
// No-HBM (off-chip only), IDEAL (perfect HBM cache) and a real HBM cache
// (Alloy) — averaged across the workloads and normalized to No-HBM.
//
// Paper reference points: IDEAL consumes ~6x the No-HBM aggregate bandwidth
// while moving ~1.33x the data and running ~4.5x faster; the real HBM cache
// uses slightly more bandwidth than IDEAL, moves considerably more data
// (block transfers between the memories), and loses ~40% performance
// against IDEAL.
#include <cstdio>
#include <map>

#include "bench_util.hpp"

int main() {
  using namespace redcache;
  using namespace redcache::bench;

  const auto workloads = SelectedWorkloads();
  const Arch topologies[] = {Arch::kNoHbm, Arch::kIdeal, Arch::kAlloy};
  RunCellsAhead(
      GridCells({Arch::kNoHbm, Arch::kIdeal, Arch::kAlloy}, workloads),
      "fig2a");

  std::printf("Figure 2(a) — system-topology bandwidth efficiency\n");
  std::printf("(normalized to No-HBM; paper: IDEAL ~6x bandwidth / ~1.33x\n");
  std::printf(" data / ~4.5x speed; HBM cache ~40%% slower than IDEAL)\n\n");

  struct Point {
    std::vector<double> bandwidth, data, speed;
  };
  std::map<Arch, Point> points;

  for (const std::string& wl : workloads) {
    const CellResult base = RunCell(Arch::kNoHbm, wl);
    const double base_bw = static_cast<double>(base.stats.GetCounter(
                               "ddr4.bytes_transferred")) /
                           static_cast<double>(base.exec_cycles);
    const double base_bytes = static_cast<double>(
        base.stats.GetCounter("ddr4.bytes_transferred"));
    for (const Arch a : topologies) {
      const CellResult r = a == Arch::kNoHbm ? base : RunCell(a, wl);
      const double bytes =
          static_cast<double>(r.stats.GetCounter("hbm.bytes_transferred") +
                              r.stats.GetCounter("ddr4.bytes_transferred"));
      const double bw = bytes / static_cast<double>(r.exec_cycles);
      points[a].bandwidth.push_back(bw / base_bw);
      points[a].data.push_back(bytes / base_bytes);
      points[a].speed.push_back(static_cast<double>(base.exec_cycles) /
                                static_cast<double>(r.exec_cycles));
    }
  }

  TextTable table({"topology", "rel. WideIO+DDRx bandwidth",
                   "rel. transferred data", "speedup vs No-HBM",
                   "paper (bw/data/speed)"});
  const char* paper[] = {"1.00 / 1.00 / 1.0", "~6 / ~1.33 / ~4.5",
                         "~6+ / ~2 / ~2.7"};
  int i = 0;
  for (const Arch a : topologies) {
    table.AddRow({ToString(a), TextTable::Num(GeoMean(points[a].bandwidth), 2),
                  TextTable::Num(GeoMean(points[a].data), 2),
                  TextTable::Num(GeoMean(points[a].speed), 2), paper[i++]});
  }
  std::printf("%s\n", table.Render().c_str());

  const double ideal_speed = GeoMean(points[Arch::kIdeal].speed);
  const double hbm_speed = GeoMean(points[Arch::kAlloy].speed);
  std::printf("HBM cache loses %.1f%% performance vs IDEAL (paper ~40%%)\n",
              (1.0 - hbm_speed / ideal_speed) * 100.0);
  return 0;
}
