// Component micro-benchmarks (google-benchmark): raw simulation speed of
// the DRAM channel scheduler, the SRAM cache, the alpha table and the trace
// generators. These guard against performance regressions in the simulator
// itself — they do not reproduce a paper figure.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "core/alpha_table.hpp"
#include "core/rcu.hpp"
#include "dram/dram_system.hpp"
#include "sram/cache.hpp"
#include "workloads/benchmarks.hpp"

namespace {

using namespace redcache;

void BM_DramChannelStreamingReads(benchmark::State& state) {
  DramSystem sys(HbmCacheConfig(8_MiB));
  Cycle now = 0;
  Addr addr = 0;
  std::uint64_t completed = 0;
  for (auto _ : state) {
    if (sys.CanAccept(addr)) {
      sys.Enqueue(addr, false, now);
      addr = (addr + 64) % 4_MiB;
    }
    sys.Tick(now);
    completed += sys.completions().size();
    sys.completions().clear();
    now += 2;
  }
  state.counters["completed"] = static_cast<double>(completed);
  state.SetItemsProcessed(static_cast<std::int64_t>(completed));
}
BENCHMARK(BM_DramChannelStreamingReads);

// Saturated queue with bank conflicts: the scheduler's hard case. Keeps the
// transaction queue near depth (back-pressure) with a scattered mix of reads
// and writes, so the FR-FCFS scan, the write-drain watermark and the
// row-demand precharge guard all stay hot. BM_DramChannelStreamingReads
// above covers the near-empty-queue fast path; this one is the guard for
// scheduler data-structure changes, which only show under load.
void BM_DramChannelLoadedQueue(benchmark::State& state) {
  DramSystem sys(HbmCacheConfig(8_MiB));
  Cycle now = 0;
  std::uint64_t lcg = 12345;
  std::uint64_t completed = 0;
  for (auto _ : state) {
    for (int k = 0; k < 4; ++k) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      const Addr addr = ((lcg >> 16) % 8_MiB) & ~Addr{63};
      const bool is_write = ((lcg >> 12) & 7) < 3;  // ~38% writes
      if (sys.CanAccept(addr)) sys.Enqueue(addr, is_write, now);
    }
    sys.Tick(now);
    completed += sys.completions().size();
    sys.completions().clear();
    now += 2;
  }
  state.counters["completed"] = static_cast<double>(completed);
  state.SetItemsProcessed(static_cast<std::int64_t>(completed));
}
BENCHMARK(BM_DramChannelLoadedQueue);

// Idle-heavy (sparse traffic): one short read burst every few thousand
// cycles, advancing time with the same hint-jump loop System::Run uses.
// Between requests the only device activity is refresh bookkeeping, so this
// measures the event-core fast path — NextEventHint queries and wake-gated
// Ticks across mostly-idle channels — rather than the FR-FCFS scan.
void BM_DramChannelIdleSparse(benchmark::State& state) {
  DramSystem sys(HbmCacheConfig(8_MiB));
  Cycle now = 0;
  Addr addr = 0;
  std::uint64_t completed = 0;
  std::uint64_t visits = 0;
  for (auto _ : state) {
    if (sys.CanAccept(addr)) sys.Enqueue(addr, false, now);
    addr = (addr + 4096) % 8_MiB;
    const Cycle horizon = now + 6000;
    while (now < horizon) {
      sys.Tick(now);
      completed += sys.completions().size();
      sys.completions().clear();
      // Clamp to the horizon so the next request lands on schedule (the
      // System clamps jumps the same way for telemetry epochs).
      now = std::min(horizon, std::max(now + 1, sys.NextEventHint(now)));
      ++visits;
    }
  }
  state.counters["completed"] = static_cast<double>(completed);
  state.counters["visits"] = static_cast<double>(visits);
  // Simulated cycles per wall second is the figure of merit here.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 6000);
}
BENCHMARK(BM_DramChannelIdleSparse);

void BM_SramCacheAccess(benchmark::State& state) {
  SramCache cache({.name = "l3", .size_bytes = 1_MiB, .ways = 8,
                   .latency = 38});
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access((i * 2654435761u) % 8_MiB, false));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_SramCacheAccess);

void BM_AlphaTableOnRequest(benchmark::State& state) {
  AlphaTable table;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.OnRequest((i * 40503u) % 64_MiB));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_AlphaTableOnRequest);

void BM_RcuInsertMatch(benchmark::State& state) {
  RcuManager rcu(32);
  DramAddress loc;
  std::uint64_t i = 0;
  for (auto _ : state) {
    loc.row = i % 64;
    benchmark::DoNotOptimize(rcu.Insert(i * 64, loc));
    if (i % 4 == 0) benchmark::DoNotOptimize(rcu.MatchIndex(loc));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_RcuInsertMatch);

void BM_WorkloadGeneration(benchmark::State& state) {
  WorkloadBuildParams p;
  p.num_cores = 1;
  p.scale = 1.0;
  auto trace = MakeWorkload("RDX", p);
  MemRef r;
  std::uint64_t n = 0;
  for (auto _ : state) {
    if (!trace->Next(0, r)) {
      trace = MakeWorkload("RDX", p);
      continue;
    }
    benchmark::DoNotOptimize(r.addr);
    ++n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_WorkloadGeneration);

}  // namespace
