// Sampled-simulation speedup bench: one large evaluation cell run once in
// full detail, then through RunSampled at 1% / 5% / 10% sampling fractions.
// Reports wall-clock speedup (functional fast-forward + parallel replay vs.
// the detailed run), the run-length estimate's error against the detailed
// truth, and the estimator's own 95% CI. Writes results/BENCH_sampling.json
// for trend tracking; perf-smoke uploads it next to BENCH_perf.json.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "sim/sampling.hpp"

namespace {

using namespace redcache;
using namespace redcache::bench;

struct SamplePass {
  double fraction = 0;
  double seconds = 0;
  double speedup = 0;
  double est_cycles = 0;
  double error_pct = 0;
  double ci_pct = 0;
  std::uint64_t intervals = 0;
};

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = std::thread::hardware_concurrency();
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--jobs") {
      jobs = static_cast<unsigned>(std::atoi(argv[i + 1]));
    }
  }
  if (jobs == 0) jobs = 1;

  // The largest single cell the figure benches run: RedCache on the radix
  // sort workload, whose irregular access mix exercises both cache levels.
  RunSpec spec;
  spec.policy = "RedCache";
  spec.workload = "RDX";
  spec.scale = EffectiveScale(0.5 * DefaultScale());
  spec.ignore_env_scale = true;  // scale already resolved above
  spec.preset = EvalPreset();

  std::printf("sampling_speedup — %s on %s, scale %.3f, jobs %u\n\n",
              spec.policy.c_str(), spec.workload.c_str(), spec.scale, jobs);

  const auto t_full = std::chrono::steady_clock::now();
  const RunResult full = RunOne(spec);
  const double full_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_full)
          .count();
  const auto actual = static_cast<double>(full.exec_cycles);
  std::printf("full detailed run: %llu cycles in %.2f s\n\n",
              static_cast<unsigned long long>(full.exec_cycles), full_seconds);

  const std::vector<double> fractions = {0.01, 0.05, 0.10};
  std::vector<SamplePass> passes;
  for (const double fraction : fractions) {
    SamplingOptions opts;
    opts.fraction = fraction;
    opts.interval_cycles = 20000;
    opts.jobs = jobs;
    const auto t0 = std::chrono::steady_clock::now();
    const SamplingEstimate est = RunSampled(spec, opts);
    SamplePass p;
    p.fraction = fraction;
    p.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    p.speedup = p.seconds > 0 ? full_seconds / p.seconds : 0;
    p.est_cycles = est.est_exec_cycles;
    p.error_pct =
        actual > 0 ? 100.0 * std::fabs(est.est_exec_cycles - actual) / actual
                   : 0;
    p.ci_pct = est.ci_pct;
    p.intervals = est.intervals;
    passes.push_back(p);
  }

  TextTable table({"fraction", "wall s", "speedup", "est cycles", "err %",
                   "ci %", "intervals"});
  for (const SamplePass& p : passes) {
    table.AddRow({TextTable::Num(100.0 * p.fraction, 0) + "%",
                  TextTable::Num(p.seconds, 2), TextTable::Num(p.speedup, 1),
                  TextTable::Num(p.est_cycles, 0), TextTable::Num(p.error_pct, 2),
                  TextTable::Num(p.ci_pct, 2), std::to_string(p.intervals)});
  }
  std::printf("%s\n", table.Render().c_str());

  std::filesystem::create_directories("results");
  std::ofstream json("results/BENCH_sampling.json");
  json << "{\n"
       << "  \"bench\": \"sampling_speedup\",\n"
       << "  \"policy\": \"" << spec.policy << "\",\n"
       << "  \"workload\": \"" << spec.workload << "\",\n"
       << "  \"scale\": " << spec.scale << ",\n"
       << "  \"jobs\": " << jobs << ",\n"
       << "  \"full_seconds\": " << full_seconds << ",\n"
       << "  \"full_exec_cycles\": " << full.exec_cycles << ",\n"
       << "  \"passes\": [\n";
  for (std::size_t i = 0; i < passes.size(); ++i) {
    const SamplePass& p = passes[i];
    json << "    {\"fraction\": " << p.fraction
         << ", \"seconds\": " << p.seconds << ", \"speedup\": " << p.speedup
         << ", \"est_exec_cycles\": " << p.est_cycles
         << ", \"error_pct\": " << p.error_pct << ", \"ci_pct\": " << p.ci_pct
         << ", \"intervals\": " << p.intervals << "}"
         << (i + 1 < passes.size() ? "," : "") << "\n";
  }
  json << "  ]\n"
       << "}\n";
  std::printf("wrote results/BENCH_sampling.json\n");

  // The point of sampling: on a run big enough to amortize the functional
  // pass, at least one fraction must clear 3x. Tiny REDCACHE_REFS_SCALE
  // runs are reported but not judged — there is nothing to amortize.
  if (full_seconds >= 1.0) {
    double best = 0;
    for (const SamplePass& p : passes) best = std::max(best, p.speedup);
    if (best < 3.0) {
      std::fprintf(stderr,
                   "FAIL: best sampled speedup %.2fx < 3x on a %.1f s "
                   "detailed run\n",
                   best, full_seconds);
      return 1;
    }
  }
  return 0;
}
