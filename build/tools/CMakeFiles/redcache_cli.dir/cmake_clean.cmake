file(REMOVE_RECURSE
  "CMakeFiles/redcache_cli.dir/redcache_cli.cpp.o"
  "CMakeFiles/redcache_cli.dir/redcache_cli.cpp.o.d"
  "redcache_cli"
  "redcache_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redcache_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
