# Empty dependencies file for redcache_cli.
# This may be replaced when dependencies are built.
