# Empty compiler generated dependencies file for workload_atlas.
# This may be replaced when dependencies are built.
