file(REMOVE_RECURSE
  "CMakeFiles/workload_atlas.dir/workload_atlas.cpp.o"
  "CMakeFiles/workload_atlas.dir/workload_atlas.cpp.o.d"
  "workload_atlas"
  "workload_atlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
