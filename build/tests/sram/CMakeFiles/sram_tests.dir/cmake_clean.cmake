file(REMOVE_RECURSE
  "CMakeFiles/sram_tests.dir/cache_test.cpp.o"
  "CMakeFiles/sram_tests.dir/cache_test.cpp.o.d"
  "CMakeFiles/sram_tests.dir/hierarchy_test.cpp.o"
  "CMakeFiles/sram_tests.dir/hierarchy_test.cpp.o.d"
  "CMakeFiles/sram_tests.dir/lru_reference_test.cpp.o"
  "CMakeFiles/sram_tests.dir/lru_reference_test.cpp.o.d"
  "sram_tests"
  "sram_tests.pdb"
  "sram_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sram_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
