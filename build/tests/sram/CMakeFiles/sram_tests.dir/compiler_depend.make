# Empty compiler generated dependencies file for sram_tests.
# This may be replaced when dependencies are built.
