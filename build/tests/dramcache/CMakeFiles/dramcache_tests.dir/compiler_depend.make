# Empty compiler generated dependencies file for dramcache_tests.
# This may be replaced when dependencies are built.
