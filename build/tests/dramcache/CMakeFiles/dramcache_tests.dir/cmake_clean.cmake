file(REMOVE_RECURSE
  "CMakeFiles/dramcache_tests.dir/alloy_test.cpp.o"
  "CMakeFiles/dramcache_tests.dir/alloy_test.cpp.o.d"
  "CMakeFiles/dramcache_tests.dir/assoc_tags_test.cpp.o"
  "CMakeFiles/dramcache_tests.dir/assoc_tags_test.cpp.o.d"
  "CMakeFiles/dramcache_tests.dir/bear_test.cpp.o"
  "CMakeFiles/dramcache_tests.dir/bear_test.cpp.o.d"
  "CMakeFiles/dramcache_tests.dir/extensions_test.cpp.o"
  "CMakeFiles/dramcache_tests.dir/extensions_test.cpp.o.d"
  "CMakeFiles/dramcache_tests.dir/factory_test.cpp.o"
  "CMakeFiles/dramcache_tests.dir/factory_test.cpp.o.d"
  "CMakeFiles/dramcache_tests.dir/no_hbm_ideal_test.cpp.o"
  "CMakeFiles/dramcache_tests.dir/no_hbm_ideal_test.cpp.o.d"
  "CMakeFiles/dramcache_tests.dir/redcache_adaptation_test.cpp.o"
  "CMakeFiles/dramcache_tests.dir/redcache_adaptation_test.cpp.o.d"
  "CMakeFiles/dramcache_tests.dir/redcache_flow_test.cpp.o"
  "CMakeFiles/dramcache_tests.dir/redcache_flow_test.cpp.o.d"
  "CMakeFiles/dramcache_tests.dir/tag_store_test.cpp.o"
  "CMakeFiles/dramcache_tests.dir/tag_store_test.cpp.o.d"
  "dramcache_tests"
  "dramcache_tests.pdb"
  "dramcache_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dramcache_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
