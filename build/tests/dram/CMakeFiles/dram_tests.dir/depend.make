# Empty dependencies file for dram_tests.
# This may be replaced when dependencies are built.
