file(REMOVE_RECURSE
  "CMakeFiles/dram_tests.dir/address_test.cpp.o"
  "CMakeFiles/dram_tests.dir/address_test.cpp.o.d"
  "CMakeFiles/dram_tests.dir/channel_test.cpp.o"
  "CMakeFiles/dram_tests.dir/channel_test.cpp.o.d"
  "CMakeFiles/dram_tests.dir/dram_system_test.cpp.o"
  "CMakeFiles/dram_tests.dir/dram_system_test.cpp.o.d"
  "CMakeFiles/dram_tests.dir/property_test.cpp.o"
  "CMakeFiles/dram_tests.dir/property_test.cpp.o.d"
  "CMakeFiles/dram_tests.dir/timing_constraints_test.cpp.o"
  "CMakeFiles/dram_tests.dir/timing_constraints_test.cpp.o.d"
  "CMakeFiles/dram_tests.dir/timing_test.cpp.o"
  "CMakeFiles/dram_tests.dir/timing_test.cpp.o.d"
  "dram_tests"
  "dram_tests.pdb"
  "dram_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
