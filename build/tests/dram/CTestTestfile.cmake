# CMake generated Testfile for 
# Source directory: /root/repo/tests/dram
# Build directory: /root/repo/build/tests/dram
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dram/dram_tests[1]_include.cmake")
