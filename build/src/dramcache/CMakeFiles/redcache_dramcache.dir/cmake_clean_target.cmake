file(REMOVE_RECURSE
  "libredcache_dramcache.a"
)
