# Empty compiler generated dependencies file for redcache_dramcache.
# This may be replaced when dependencies are built.
