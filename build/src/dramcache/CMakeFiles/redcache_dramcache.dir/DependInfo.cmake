
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dramcache/alloy.cpp" "src/dramcache/CMakeFiles/redcache_dramcache.dir/alloy.cpp.o" "gcc" "src/dramcache/CMakeFiles/redcache_dramcache.dir/alloy.cpp.o.d"
  "/root/repo/src/dramcache/assoc_redcache.cpp" "src/dramcache/CMakeFiles/redcache_dramcache.dir/assoc_redcache.cpp.o" "gcc" "src/dramcache/CMakeFiles/redcache_dramcache.dir/assoc_redcache.cpp.o.d"
  "/root/repo/src/dramcache/bear.cpp" "src/dramcache/CMakeFiles/redcache_dramcache.dir/bear.cpp.o" "gcc" "src/dramcache/CMakeFiles/redcache_dramcache.dir/bear.cpp.o.d"
  "/root/repo/src/dramcache/controller.cpp" "src/dramcache/CMakeFiles/redcache_dramcache.dir/controller.cpp.o" "gcc" "src/dramcache/CMakeFiles/redcache_dramcache.dir/controller.cpp.o.d"
  "/root/repo/src/dramcache/factory.cpp" "src/dramcache/CMakeFiles/redcache_dramcache.dir/factory.cpp.o" "gcc" "src/dramcache/CMakeFiles/redcache_dramcache.dir/factory.cpp.o.d"
  "/root/repo/src/dramcache/footprint.cpp" "src/dramcache/CMakeFiles/redcache_dramcache.dir/footprint.cpp.o" "gcc" "src/dramcache/CMakeFiles/redcache_dramcache.dir/footprint.cpp.o.d"
  "/root/repo/src/dramcache/ideal.cpp" "src/dramcache/CMakeFiles/redcache_dramcache.dir/ideal.cpp.o" "gcc" "src/dramcache/CMakeFiles/redcache_dramcache.dir/ideal.cpp.o.d"
  "/root/repo/src/dramcache/no_hbm.cpp" "src/dramcache/CMakeFiles/redcache_dramcache.dir/no_hbm.cpp.o" "gcc" "src/dramcache/CMakeFiles/redcache_dramcache.dir/no_hbm.cpp.o.d"
  "/root/repo/src/dramcache/redcache.cpp" "src/dramcache/CMakeFiles/redcache_dramcache.dir/redcache.cpp.o" "gcc" "src/dramcache/CMakeFiles/redcache_dramcache.dir/redcache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/redcache_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/redcache_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/redcache_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
