file(REMOVE_RECURSE
  "CMakeFiles/redcache_dramcache.dir/alloy.cpp.o"
  "CMakeFiles/redcache_dramcache.dir/alloy.cpp.o.d"
  "CMakeFiles/redcache_dramcache.dir/assoc_redcache.cpp.o"
  "CMakeFiles/redcache_dramcache.dir/assoc_redcache.cpp.o.d"
  "CMakeFiles/redcache_dramcache.dir/bear.cpp.o"
  "CMakeFiles/redcache_dramcache.dir/bear.cpp.o.d"
  "CMakeFiles/redcache_dramcache.dir/controller.cpp.o"
  "CMakeFiles/redcache_dramcache.dir/controller.cpp.o.d"
  "CMakeFiles/redcache_dramcache.dir/factory.cpp.o"
  "CMakeFiles/redcache_dramcache.dir/factory.cpp.o.d"
  "CMakeFiles/redcache_dramcache.dir/footprint.cpp.o"
  "CMakeFiles/redcache_dramcache.dir/footprint.cpp.o.d"
  "CMakeFiles/redcache_dramcache.dir/ideal.cpp.o"
  "CMakeFiles/redcache_dramcache.dir/ideal.cpp.o.d"
  "CMakeFiles/redcache_dramcache.dir/no_hbm.cpp.o"
  "CMakeFiles/redcache_dramcache.dir/no_hbm.cpp.o.d"
  "CMakeFiles/redcache_dramcache.dir/redcache.cpp.o"
  "CMakeFiles/redcache_dramcache.dir/redcache.cpp.o.d"
  "libredcache_dramcache.a"
  "libredcache_dramcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redcache_dramcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
