# Empty dependencies file for redcache_core.
# This may be replaced when dependencies are built.
