file(REMOVE_RECURSE
  "CMakeFiles/redcache_core.dir/alpha_table.cpp.o"
  "CMakeFiles/redcache_core.dir/alpha_table.cpp.o.d"
  "CMakeFiles/redcache_core.dir/rcu.cpp.o"
  "CMakeFiles/redcache_core.dir/rcu.cpp.o.d"
  "libredcache_core.a"
  "libredcache_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redcache_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
