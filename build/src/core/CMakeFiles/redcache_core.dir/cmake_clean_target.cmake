file(REMOVE_RECURSE
  "libredcache_core.a"
)
