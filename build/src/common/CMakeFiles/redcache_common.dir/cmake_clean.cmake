file(REMOVE_RECURSE
  "CMakeFiles/redcache_common.dir/rng.cpp.o"
  "CMakeFiles/redcache_common.dir/rng.cpp.o.d"
  "CMakeFiles/redcache_common.dir/stats.cpp.o"
  "CMakeFiles/redcache_common.dir/stats.cpp.o.d"
  "CMakeFiles/redcache_common.dir/table.cpp.o"
  "CMakeFiles/redcache_common.dir/table.cpp.o.d"
  "CMakeFiles/redcache_common.dir/types.cpp.o"
  "CMakeFiles/redcache_common.dir/types.cpp.o.d"
  "libredcache_common.a"
  "libredcache_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redcache_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
