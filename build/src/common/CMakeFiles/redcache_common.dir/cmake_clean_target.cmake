file(REMOVE_RECURSE
  "libredcache_common.a"
)
