# Empty dependencies file for redcache_common.
# This may be replaced when dependencies are built.
