file(REMOVE_RECURSE
  "CMakeFiles/redcache_sram.dir/cache.cpp.o"
  "CMakeFiles/redcache_sram.dir/cache.cpp.o.d"
  "CMakeFiles/redcache_sram.dir/hierarchy.cpp.o"
  "CMakeFiles/redcache_sram.dir/hierarchy.cpp.o.d"
  "libredcache_sram.a"
  "libredcache_sram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redcache_sram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
