# Empty dependencies file for redcache_sram.
# This may be replaced when dependencies are built.
