file(REMOVE_RECURSE
  "libredcache_sram.a"
)
