# Empty compiler generated dependencies file for redcache_workloads.
# This may be replaced when dependencies are built.
