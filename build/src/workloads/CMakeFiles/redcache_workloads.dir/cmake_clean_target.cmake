file(REMOVE_RECURSE
  "libredcache_workloads.a"
)
