
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/benchmarks.cpp" "src/workloads/CMakeFiles/redcache_workloads.dir/benchmarks.cpp.o" "gcc" "src/workloads/CMakeFiles/redcache_workloads.dir/benchmarks.cpp.o.d"
  "/root/repo/src/workloads/kernel_trace.cpp" "src/workloads/CMakeFiles/redcache_workloads.dir/kernel_trace.cpp.o" "gcc" "src/workloads/CMakeFiles/redcache_workloads.dir/kernel_trace.cpp.o.d"
  "/root/repo/src/workloads/profiler.cpp" "src/workloads/CMakeFiles/redcache_workloads.dir/profiler.cpp.o" "gcc" "src/workloads/CMakeFiles/redcache_workloads.dir/profiler.cpp.o.d"
  "/root/repo/src/workloads/trace_file.cpp" "src/workloads/CMakeFiles/redcache_workloads.dir/trace_file.cpp.o" "gcc" "src/workloads/CMakeFiles/redcache_workloads.dir/trace_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/redcache_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
