file(REMOVE_RECURSE
  "CMakeFiles/redcache_workloads.dir/benchmarks.cpp.o"
  "CMakeFiles/redcache_workloads.dir/benchmarks.cpp.o.d"
  "CMakeFiles/redcache_workloads.dir/kernel_trace.cpp.o"
  "CMakeFiles/redcache_workloads.dir/kernel_trace.cpp.o.d"
  "CMakeFiles/redcache_workloads.dir/profiler.cpp.o"
  "CMakeFiles/redcache_workloads.dir/profiler.cpp.o.d"
  "CMakeFiles/redcache_workloads.dir/trace_file.cpp.o"
  "CMakeFiles/redcache_workloads.dir/trace_file.cpp.o.d"
  "libredcache_workloads.a"
  "libredcache_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redcache_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
