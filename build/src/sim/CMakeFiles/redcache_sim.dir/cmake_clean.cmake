file(REMOVE_RECURSE
  "CMakeFiles/redcache_sim.dir/presets.cpp.o"
  "CMakeFiles/redcache_sim.dir/presets.cpp.o.d"
  "CMakeFiles/redcache_sim.dir/runner.cpp.o"
  "CMakeFiles/redcache_sim.dir/runner.cpp.o.d"
  "CMakeFiles/redcache_sim.dir/system.cpp.o"
  "CMakeFiles/redcache_sim.dir/system.cpp.o.d"
  "libredcache_sim.a"
  "libredcache_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redcache_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
