file(REMOVE_RECURSE
  "libredcache_sim.a"
)
