# Empty dependencies file for redcache_sim.
# This may be replaced when dependencies are built.
