file(REMOVE_RECURSE
  "libredcache_cpu.a"
)
