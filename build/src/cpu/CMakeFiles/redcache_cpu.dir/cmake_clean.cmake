file(REMOVE_RECURSE
  "CMakeFiles/redcache_cpu.dir/core.cpp.o"
  "CMakeFiles/redcache_cpu.dir/core.cpp.o.d"
  "libredcache_cpu.a"
  "libredcache_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redcache_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
