# Empty compiler generated dependencies file for redcache_cpu.
# This may be replaced when dependencies are built.
