file(REMOVE_RECURSE
  "CMakeFiles/redcache_energy.dir/model.cpp.o"
  "CMakeFiles/redcache_energy.dir/model.cpp.o.d"
  "libredcache_energy.a"
  "libredcache_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redcache_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
