# Empty compiler generated dependencies file for redcache_energy.
# This may be replaced when dependencies are built.
