file(REMOVE_RECURSE
  "libredcache_energy.a"
)
