file(REMOVE_RECURSE
  "CMakeFiles/redcache_dram.dir/address.cpp.o"
  "CMakeFiles/redcache_dram.dir/address.cpp.o.d"
  "CMakeFiles/redcache_dram.dir/channel.cpp.o"
  "CMakeFiles/redcache_dram.dir/channel.cpp.o.d"
  "CMakeFiles/redcache_dram.dir/dram_system.cpp.o"
  "CMakeFiles/redcache_dram.dir/dram_system.cpp.o.d"
  "CMakeFiles/redcache_dram.dir/timing.cpp.o"
  "CMakeFiles/redcache_dram.dir/timing.cpp.o.d"
  "libredcache_dram.a"
  "libredcache_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redcache_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
