file(REMOVE_RECURSE
  "libredcache_dram.a"
)
