# Empty compiler generated dependencies file for redcache_dram.
# This may be replaced when dependencies are built.
