file(REMOVE_RECURSE
  "CMakeFiles/fig9_execution_time.dir/fig9_execution_time.cpp.o"
  "CMakeFiles/fig9_execution_time.dir/fig9_execution_time.cpp.o.d"
  "fig9_execution_time"
  "fig9_execution_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_execution_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
