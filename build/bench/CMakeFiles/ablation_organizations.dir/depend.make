# Empty dependencies file for ablation_organizations.
# This may be replaced when dependencies are built.
