file(REMOVE_RECURSE
  "CMakeFiles/ablation_organizations.dir/ablation_organizations.cpp.o"
  "CMakeFiles/ablation_organizations.dir/ablation_organizations.cpp.o.d"
  "ablation_organizations"
  "ablation_organizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_organizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
