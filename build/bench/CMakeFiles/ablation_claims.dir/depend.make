# Empty dependencies file for ablation_claims.
# This may be replaced when dependencies are built.
