file(REMOVE_RECURSE
  "CMakeFiles/ablation_claims.dir/ablation_claims.cpp.o"
  "CMakeFiles/ablation_claims.dir/ablation_claims.cpp.o.d"
  "ablation_claims"
  "ablation_claims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
