# Empty compiler generated dependencies file for fig2b_granularity.
# This may be replaced when dependencies are built.
