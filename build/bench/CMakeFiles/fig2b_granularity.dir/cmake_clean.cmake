file(REMOVE_RECURSE
  "CMakeFiles/fig2b_granularity.dir/fig2b_granularity.cpp.o"
  "CMakeFiles/fig2b_granularity.dir/fig2b_granularity.cpp.o.d"
  "fig2b_granularity"
  "fig2b_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
