
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig2b_granularity.cpp" "bench/CMakeFiles/fig2b_granularity.dir/fig2b_granularity.cpp.o" "gcc" "bench/CMakeFiles/fig2b_granularity.dir/fig2b_granularity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/redcache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/redcache_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sram/CMakeFiles/redcache_sram.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/redcache_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/redcache_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/dramcache/CMakeFiles/redcache_dramcache.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/redcache_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/redcache_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/redcache_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
