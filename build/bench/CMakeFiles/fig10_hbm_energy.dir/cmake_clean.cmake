file(REMOVE_RECURSE
  "CMakeFiles/fig10_hbm_energy.dir/fig10_hbm_energy.cpp.o"
  "CMakeFiles/fig10_hbm_energy.dir/fig10_hbm_energy.cpp.o.d"
  "fig10_hbm_energy"
  "fig10_hbm_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_hbm_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
