# Empty compiler generated dependencies file for fig10_hbm_energy.
# This may be replaced when dependencies are built.
