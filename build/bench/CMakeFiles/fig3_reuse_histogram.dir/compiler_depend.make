# Empty compiler generated dependencies file for fig3_reuse_histogram.
# This may be replaced when dependencies are built.
