file(REMOVE_RECURSE
  "CMakeFiles/fig2a_topology.dir/fig2a_topology.cpp.o"
  "CMakeFiles/fig2a_topology.dir/fig2a_topology.cpp.o.d"
  "fig2a_topology"
  "fig2a_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
