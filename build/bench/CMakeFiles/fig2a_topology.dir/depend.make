# Empty dependencies file for fig2a_topology.
# This may be replaced when dependencies are built.
