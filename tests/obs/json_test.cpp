#include "obs/json.hpp"

#include <gtest/gtest.h>

namespace redcache::obs {
namespace {

TEST(JsonEscape, EscapesControlAndSpecialChars) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(ParseJson, Scalars) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(ParseJson("42", v, &err)) << err;
  EXPECT_TRUE(v.is_number());
  EXPECT_DOUBLE_EQ(v.number, 42.0);

  ASSERT_TRUE(ParseJson("-1.5e2", v, &err)) << err;
  EXPECT_DOUBLE_EQ(v.number, -150.0);

  ASSERT_TRUE(ParseJson("\"hi\\n\"", v, &err)) << err;
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.string, "hi\n");

  ASSERT_TRUE(ParseJson("true", v, &err)) << err;
  EXPECT_EQ(v.kind, JsonValue::Kind::kBool);
  EXPECT_TRUE(v.boolean);

  ASSERT_TRUE(ParseJson("null", v, &err)) << err;
  EXPECT_EQ(v.kind, JsonValue::Kind::kNull);
}

TEST(ParseJson, NestedObjectAndFind) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(ParseJson(R"({"a":{"b":[1,2,3]},"c":"x"})", v, &err)) << err;
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  const JsonValue* b = a->Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_DOUBLE_EQ(b->array[1].number, 2.0);
  EXPECT_EQ(v.Find("missing"), nullptr);
  EXPECT_EQ(b->Find("not_an_object"), nullptr);
}

TEST(ParseJson, RejectsMalformedInput) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(ParseJson("", v, &err));
  EXPECT_FALSE(ParseJson("{", v, &err));
  EXPECT_FALSE(ParseJson("[1,2,]", v, &err));
  EXPECT_FALSE(ParseJson("{\"a\":1,}", v, &err));
  EXPECT_FALSE(ParseJson("{'a':1}", v, &err));
  EXPECT_FALSE(ParseJson("1 2", v, &err)) << "trailing garbage must fail";
  EXPECT_FALSE(ParseJson("\"unterminated", v, &err));
  EXPECT_FALSE(err.empty());
}

TEST(ParseJson, RejectsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  JsonValue v;
  std::string err;
  EXPECT_FALSE(ParseJson(deep, v, &err));
}

}  // namespace
}  // namespace redcache::obs
