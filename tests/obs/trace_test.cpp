#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/trace_macros.hpp"
#include "obs/trace_spill.hpp"

namespace redcache::obs {
namespace {

TraceEvent CmdEvent(Cycle cycle, TraceEventType type = TraceEventType::kCmdRead) {
  return TraceEvent{.cycle = cycle,
                    .dur = 4,
                    .type = type,
                    .device = kTraceDeviceHbm,
                    .rank = 0,
                    .bank = 3,
                    .channel = 1,
                    .addr = 0x1000,
                    .arg = 42};
}

TEST(TraceBuffer, CapacityRoundsUpToPowerOfTwo) {
  TraceBuffer t(5);
  EXPECT_EQ(t.capacity(), 8u);
  TraceBuffer t2(8);
  EXPECT_EQ(t2.capacity(), 8u);
}

TEST(TraceBuffer, RetainsMostRecentWindowAndCountsDrops) {
  TraceBuffer t(4);
  for (Cycle c = 0; c < 10; ++c) t.Emit(CmdEvent(c));
  EXPECT_EQ(t.emitted(), 10u);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  const auto events = t.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first: cycles 6..9 survived.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].cycle, 6 + i);
  }
}

TEST(TraceBuffer, ClearResets) {
  TraceBuffer t(4);
  t.Emit(CmdEvent(1));
  t.Clear();
  EXPECT_EQ(t.emitted(), 0u);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.Snapshot().empty());
}

TEST(TraceScope, InstallsAndRestoresNested) {
  EXPECT_EQ(ActiveTrace(), nullptr);
  TraceBuffer outer_buf, inner_buf;
  {
    TraceScope outer(&outer_buf);
    EXPECT_EQ(ActiveTrace(), &outer_buf);
    {
      TraceScope inner(&inner_buf);
      EXPECT_EQ(ActiveTrace(), &inner_buf);
    }
    EXPECT_EQ(ActiveTrace(), &outer_buf);
  }
  EXPECT_EQ(ActiveTrace(), nullptr);
}

TEST(TraceMacro, EmitsOnlyWhileScopeActive) {
  TraceBuffer buf(16);
  REDCACHE_TRACE_EVENT(CmdEvent(1));  // no scope: must be a no-op
  EXPECT_EQ(buf.emitted(), 0u);
  {
    TraceScope scope(&buf);
    REDCACHE_TRACE_EVENT(CmdEvent(2));
  }
  REDCACHE_TRACE_EVENT(CmdEvent(3));  // scope gone again
  ASSERT_EQ(buf.emitted(), 1u);
  EXPECT_EQ(buf.Snapshot()[0].cycle, 2u);
}

TEST(TraceEventType, NamesAreStable) {
  EXPECT_STREQ(ToString(TraceEventType::kCmdRead), "RD");
  EXPECT_STREQ(ToString(TraceEventType::kCmdWrite), "WR");
  EXPECT_STREQ(ToString(TraceEventType::kCmdActivate), "ACT");
  EXPECT_STREQ(ToString(TraceEventType::kCmdPrecharge), "PRE");
  EXPECT_STREQ(ToString(TraceEventType::kCmdRefresh), "REF");
  EXPECT_STREQ(ToString(TraceEventType::kRcuFlush), "rcu_flush");
}

TEST(ChromeTrace, ExportValidatesAndRoundTrips) {
  TraceBuffer t(64);
  t.Emit(CmdEvent(100, TraceEventType::kCmdActivate));
  t.Emit(CmdEvent(110, TraceEventType::kCmdRead));
  t.Emit(TraceEvent{.cycle = 120,
                    .type = TraceEventType::kAlphaBypass,
                    .device = kTraceDevicePolicy,
                    .addr = 0x2000,
                    .arg = 3});
  t.Emit(TraceEvent{.cycle = 130,
                    .type = TraceEventType::kRcuFlush,
                    .device = kTraceDevicePolicy,
                    .addr = 0x3000,
                    .arg = kRcuFlushIdle});

  const std::string json = ChromeTraceJson(t);
  std::string err;
  EXPECT_TRUE(ValidateChromeTrace(json, &err)) << err;

  JsonValue doc;
  ASSERT_TRUE(ParseJson(json, doc, &err)) << err;
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::size_t x_events = 0, metadata = 0;
  bool saw_read = false, saw_flush_reason = false;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "M") {
      metadata++;
      continue;
    }
    ASSERT_EQ(ph->string, "X");
    x_events++;
    const JsonValue* dur = e.Find("dur");
    ASSERT_NE(dur, nullptr);
    EXPECT_GE(dur->number, 1.0);
    const JsonValue* name = e.Find("name");
    ASSERT_NE(name, nullptr);
    if (name->string == "RD") saw_read = true;
    if (name->string == "rcu_flush") {
      const JsonValue* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      const JsonValue* reason = args->Find("reason");
      ASSERT_NE(reason, nullptr);
      EXPECT_EQ(reason->string, "idle");
      saw_flush_reason = true;
    }
  }
  EXPECT_EQ(x_events, 4u);
  EXPECT_GT(metadata, 0u) << "process/thread name metadata expected";
  EXPECT_TRUE(saw_read);
  EXPECT_TRUE(saw_flush_reason);
}

TEST(ChromeTrace, EmptyBufferStillValidates) {
  TraceBuffer t(4);
  std::string err;
  EXPECT_TRUE(ValidateChromeTrace(ChromeTraceJson(t), &err)) << err;
}

TEST(ValidateChromeTrace, RejectsBadDocuments) {
  std::string err;
  EXPECT_FALSE(ValidateChromeTrace("not json", &err));
  EXPECT_FALSE(ValidateChromeTrace("{}", &err));
  EXPECT_FALSE(ValidateChromeTrace(R"({"traceEvents": 3})", &err));
  // X event missing "dur".
  EXPECT_FALSE(ValidateChromeTrace(
      R"({"traceEvents":[{"name":"RD","ph":"X","ts":1,"pid":0,"tid":0}]})",
      &err));
  // Event missing "name".
  EXPECT_FALSE(ValidateChromeTrace(
      R"({"traceEvents":[{"ph":"X","ts":1,"dur":1,"pid":0,"tid":0}]})", &err));
  EXPECT_FALSE(err.empty());
}

class SpillCounter : public TraceSpillSink {
 public:
  void Consume(const TraceEvent& e) override { cycles.push_back(e.cycle); }
  std::vector<Cycle> cycles;
};

TEST(TraceSpill, OverwriteHookSeesEvictedEventsOldestFirst) {
  TraceBuffer t(4);
  SpillCounter spill;
  t.SetSpill(&spill);
  for (Cycle c = 0; c < 10; ++c) t.Emit(CmdEvent(c));
  // Ring keeps 6..9; the hook received exactly the overwritten 0..5.
  ASSERT_EQ(spill.cycles.size(), 6u);
  for (std::size_t i = 0; i < spill.cycles.size(); ++i) {
    EXPECT_EQ(spill.cycles[i], static_cast<Cycle>(i));
  }
  t.SetSpill(nullptr);
  for (Cycle c = 10; c < 14; ++c) t.Emit(CmdEvent(c));
  EXPECT_EQ(spill.cycles.size(), 6u);  // detached: no further deliveries
}

TEST(TraceSpill, WindowedFullRunTraceValidatesAndAccountsForEveryEvent) {
  const std::string path = testing::TempDir() + "/spill_test.json";
  TraceBuffer ring(8);
  TraceSpillWriter writer(path);
  ASSERT_TRUE(writer.ok());
  ring.SetSpill(&writer);

  // 100 events through an 8-slot window, across two devices so tracks that
  // exist *only* in the spilled prefix still get their metadata records.
  const std::uint64_t kTotal = 100;
  for (Cycle c = 0; c < kTotal; ++c) {
    TraceEvent e = CmdEvent(c);
    if (c < 20) {
      e.device = kTraceDevicePolicy;
      e.type = TraceEventType::kRetune;
    }
    ring.Emit(e);
  }
  ASSERT_TRUE(writer.Finish(ring));
  EXPECT_EQ(writer.spilled(), kTotal - ring.capacity());

  std::ifstream in(path);
  std::stringstream body;
  body << in.rdbuf();
  std::string err;
  ASSERT_TRUE(ValidateChromeTrace(body.str(), &err)) << err;

  JsonValue doc;
  ASSERT_TRUE(ParseJson(body.str(), doc, &err)) << err;
  const JsonValue* other = doc.Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->Find("emitted")->number, static_cast<double>(kTotal));
  EXPECT_EQ(other->Find("spilled")->number,
            static_cast<double>(kTotal - ring.capacity()));
  EXPECT_EQ(other->Find("retained")->number,
            static_cast<double>(ring.capacity()));
  // The memory-cap proof: attached before the first overwrite, so nothing
  // was lost despite the window being 8 deep.
  EXPECT_EQ(other->Find("dropped")->number, 0.0);
  EXPECT_EQ(other->Find("ring_capacity")->number,
            static_cast<double>(ring.capacity()));

  // Every emitted event is present exactly once (spilled prefix in cycle
  // order, then the retained window), and the policy track — long evicted
  // from the ring — still has its metadata pair.
  std::uint64_t x_events = 0;
  bool policy_named = false;
  Cycle prev = 0;
  for (const JsonValue& e : doc.Find("traceEvents")->array) {
    const std::string& ph = e.Find("ph")->string;
    if (ph == "X") {
      const Cycle ts = static_cast<Cycle>(e.Find("ts")->number);
      if (x_events > 0) EXPECT_GE(ts, prev);
      prev = ts;
      ++x_events;
    } else if (ph == "M" && e.Find("name")->string == "process_name") {
      const JsonValue* args = e.Find("args");
      if (args != nullptr && args->Find("name") != nullptr &&
          args->Find("name")->string ==
              TraceDeviceName(kTraceDevicePolicy)) {
        policy_named = true;
      }
    }
  }
  EXPECT_EQ(x_events, kTotal);
  EXPECT_TRUE(policy_named);
  std::remove(path.c_str());
}

TEST(TraceSpill, LateAttachReportsPreAttachLossAsDropped) {
  const std::string path = testing::TempDir() + "/spill_late.json";
  TraceBuffer ring(4);
  // 10 events before any writer exists: 6 are gone for good.
  for (Cycle c = 0; c < 10; ++c) ring.Emit(CmdEvent(c));
  TraceSpillWriter writer(path);
  ASSERT_TRUE(writer.ok());
  ring.SetSpill(&writer);
  for (Cycle c = 10; c < 20; ++c) ring.Emit(CmdEvent(c));
  ASSERT_TRUE(writer.Finish(ring));

  std::ifstream in(path);
  std::stringstream body;
  body << in.rdbuf();
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(ParseJson(body.str(), doc, &err)) << err;
  const JsonValue* other = doc.Find("otherData");
  EXPECT_EQ(other->Find("spilled")->number, 10.0);   // cycles 6..15
  EXPECT_EQ(other->Find("retained")->number, 4.0);   // cycles 16..19
  EXPECT_EQ(other->Find("dropped")->number, 6.0);    // cycles 0..5, pre-attach
  std::remove(path.c_str());
}

}  // namespace
}  // namespace redcache::obs
