// Streaming telemetry sinks: NDJSON record shape, incremental delivery,
// broken-reader robustness, and TelemetrySession format dispatch.
#include "obs/telemetry_sink.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/adaptive_epoch.hpp"
#include "obs/json.hpp"

namespace redcache::obs {
namespace {

StatSet Snap(std::uint64_t hits, std::uint64_t misses) {
  StatSet s;
  s.Counter("ctrl.cache_hits") = hits;
  s.Counter("ctrl.cache_misses") = misses;
  s.Counter("gauge.rcu_depth") = hits % 7;
  return s;
}

TelemetryMeta Meta() {
  TelemetryMeta meta;
  meta.arch = "RedCache";
  meta.workload = "LU";
  meta.preset = "eval";
  meta.policy = "RedCache";
  return meta;
}

std::vector<JsonValue> ParseLines(const std::vector<std::string>& lines) {
  std::vector<JsonValue> docs(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string err;
    EXPECT_TRUE(ParseJson(lines[i], docs[i], &err))
        << "line " << i << ": " << err << "\n" << lines[i];
  }
  return docs;
}

TEST(NdjsonRecords, StreamTelescopesToEndTotals) {
  BufferTelemetrySink sink;
  EpochSampler sampler(100);
  sampler.SetSink(&sink, /*retain_epochs=*/true);

  sink.WriteLine(NdjsonHeaderLine(Meta(), sampler));
  std::uint64_t hits = 0, misses = 0;
  for (int i = 1; i <= 4; ++i) {
    hits += 10 * static_cast<std::uint64_t>(i);
    misses += 3;
    sampler.Sample(static_cast<Cycle>(100 * i), Snap(hits, misses));
  }
  TelemetryMeta meta = Meta();
  meta.exec_cycles = 400;
  sink.WriteLine(NdjsonEndLine(meta, sampler));

  // header + 4 epochs (written by the sampler as each closed) + end.
  ASSERT_EQ(sink.lines.size(), 6u);
  std::vector<JsonValue> docs = ParseLines(sink.lines);

  EXPECT_EQ(docs.front().Find("type")->string, "header");
  EXPECT_EQ(docs.front().Find("schema")->number, 1.0);
  EXPECT_EQ(docs.front().Find("policy")->string, "RedCache");
  EXPECT_EQ(docs.front().Find("epoch_cycles")->number, 100.0);

  double hit_sum = 0.0, miss_sum = 0.0;
  for (int i = 1; i <= 4; ++i) {
    const JsonValue& e = docs[static_cast<std::size_t>(i)];
    EXPECT_EQ(e.Find("type")->string, "epoch");
    EXPECT_EQ(e.Find("seq")->number, static_cast<double>(i - 1));
    EXPECT_EQ(e.Find("begin")->number, static_cast<double>(100 * (i - 1)));
    EXPECT_EQ(e.Find("end")->number, static_cast<double>(100 * i));
    hit_sum += e.Find("delta")->Find("ctrl.cache_hits")->number;
    miss_sum += e.Find("delta")->Find("ctrl.cache_misses")->number;
    EXPECT_NE(e.Find("derived")->Find("hit_rate"), nullptr);
    EXPECT_NE(e.Find("gauges")->Find("rcu_depth"), nullptr);
  }

  const JsonValue& end = docs.back();
  EXPECT_EQ(end.Find("type")->string, "end");
  EXPECT_EQ(end.Find("exec_cycles")->number, 400.0);
  EXPECT_EQ(end.Find("num_epochs")->number, 4.0);
  EXPECT_EQ(hit_sum, end.Find("totals")->Find("ctrl.cache_hits")->number);
  EXPECT_EQ(miss_sum, end.Find("totals")->Find("ctrl.cache_misses")->number);
}

TEST(FdTelemetrySink, WritesOneRecordPerLineToFile) {
  const std::string path = testing::TempDir() + "/sink_test.ndjson";
  {
    auto sink = FdTelemetrySink::OpenPath(path);
    ASSERT_TRUE(sink->ok());
    EXPECT_TRUE(sink->WriteLine("{\"type\":\"header\"}"));
    EXPECT_TRUE(sink->WriteLine("{\"type\":\"end\"}"));
    EXPECT_EQ(sink->lines_written(), 2u);
    EXPECT_EQ(sink->describe(), path);
  }
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"type\":\"header\"}");
  EXPECT_EQ(lines[1], "{\"type\":\"end\"}");
  std::remove(path.c_str());
}

TEST(FdTelemetrySink, DeadReaderDisarmsInsteadOfKillingTheRun) {
  // Serve-mode contract: the telemetry consumer exiting first must not take
  // the simulation down (SIGPIPE) or error-cascade — the sink just goes
  // quiet. Write through a pipe whose read end is already closed.
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const std::string fifo = testing::TempDir() + "/sink_pipe_fd";
  // Route the pipe's write end through /proc/self/fd so OpenPath exercises
  // its real open() path against a pipe.
  close(fds[0]);
  std::ostringstream dev;
  dev << "/proc/self/fd/" << fds[1];
  std::unique_ptr<FdTelemetrySink> sink;
  try {
    sink = FdTelemetrySink::OpenPath(dev.str());
  } catch (const std::runtime_error&) {
    // Some kernels refuse re-opening a writer-only pipe fd; fall back to
    // exercising the disarm path is impossible then — skip.
    close(fds[1]);
    GTEST_SKIP() << "cannot reopen pipe fd via /proc";
  }
  close(fds[1]);
  // First write hits EPIPE; the sink must disarm, not throw or crash.
  EXPECT_FALSE(sink->WriteLine("{\"type\":\"epoch\"}"));
  EXPECT_FALSE(sink->ok());
  // Subsequent writes are silent no-ops.
  EXPECT_FALSE(sink->WriteLine("{\"type\":\"end\"}"));
  (void)fifo;
}

TEST(StreamingTelemetryPathFn, SelectsNdjsonAndStdout) {
  EXPECT_TRUE(StreamingTelemetryPath("-"));
  EXPECT_TRUE(StreamingTelemetryPath("out/run.ndjson"));
  EXPECT_FALSE(StreamingTelemetryPath("out/run.json"));
  EXPECT_FALSE(StreamingTelemetryPath("out/run.csv"));
  EXPECT_FALSE(StreamingTelemetryPath(""));
}

TEST(TelemetrySession, StreamsNdjsonIncrementallyBeforeClose) {
  const std::string path = testing::TempDir() + "/session.ndjson";
  EpochSpec spec;
  spec.cycles = 50;
  TelemetrySession session(path, spec, /*preset_epoch_cycles=*/250000);
  EXPECT_TRUE(session.streaming());
  EXPECT_EQ(session.sampler().epoch_cycles(), 50u);
  ASSERT_TRUE(session.Begin(Meta()));
  session.sampler().Sample(50, Snap(5, 1));

  // Liveness: header + first epoch are on disk before Close.
  {
    std::ifstream in(path);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line)) lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u);
    std::vector<JsonValue> docs = ParseLines(lines);
    EXPECT_EQ(docs[0].Find("type")->string, "header");
    EXPECT_EQ(docs[1].Find("type")->string, "epoch");
  }

  session.sampler().Sample(100, Snap(9, 2));
  TelemetryMeta meta = Meta();
  meta.exec_cycles = 100;
  ASSERT_TRUE(session.Close(meta));
  std::ifstream in(path);
  std::string line, last;
  while (std::getline(in, line)) last = line;
  JsonValue end;
  std::string err;
  ASSERT_TRUE(ParseJson(last, end, &err)) << err;
  EXPECT_EQ(end.Find("type")->string, "end");
  EXPECT_EQ(end.Find("totals")->Find("ctrl.cache_hits")->number, 9.0);
  EXPECT_NE(session.Summary().find("2 epochs"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TelemetrySession, AdaptiveClampsDeriveFromBaseWidth) {
  EpochSpec spec;
  spec.cycles = 800;
  spec.adaptive = true;
  TelemetrySession session("", spec, /*preset_epoch_cycles=*/250000);
  EXPECT_FALSE(session.streaming());
  ASSERT_TRUE(session.sampler().adaptive());
  const AdaptiveEpochConfig& cfg =
      session.sampler().adaptive_controller()->config();
  EXPECT_EQ(cfg.min_cycles, 100u);  // base / 8
  EXPECT_EQ(cfg.max_cycles, 3200u);  // base * 4

  // Explicit band wins over the derived clamps.
  EpochSpec banded;
  banded.adaptive = true;
  banded.min_cycles = 10;
  banded.max_cycles = 90;
  TelemetrySession banded_session("", banded, 40);
  const AdaptiveEpochConfig& bcfg =
      banded_session.sampler().adaptive_controller()->config();
  EXPECT_EQ(banded_session.sampler().epoch_cycles(), 40u);  // preset base
  EXPECT_EQ(bcfg.min_cycles, 10u);
  EXPECT_EQ(bcfg.max_cycles, 90u);
}

TEST(TelemetrySession, CloseWritesCsvOrJsonForNonStreamingPaths) {
  const std::string csv_path = testing::TempDir() + "/session_out.csv";
  const std::string json_path = testing::TempDir() + "/session_out.json";
  for (const std::string& path : {csv_path, json_path}) {
    EpochSpec spec;
    spec.cycles = 100;
    TelemetrySession session(path, spec, 250000);
    EXPECT_FALSE(session.streaming());
    ASSERT_TRUE(session.Begin(Meta()));  // no-op for write-at-exit formats
    session.sampler().Sample(100, Snap(4, 4));
    TelemetryMeta meta = Meta();
    meta.exec_cycles = 100;
    ASSERT_TRUE(session.Close(meta));
  }
  std::ifstream csv(csv_path);
  std::string first;
  ASSERT_TRUE(std::getline(csv, first));
  EXPECT_EQ(first.rfind("# arch=RedCache", 0), 0u);

  std::ifstream json(json_path);
  std::stringstream body;
  body << json.rdbuf();
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(ParseJson(body.str(), doc, &err)) << err;
  EXPECT_EQ(doc.Find("meta")->Find("policy")->string, "RedCache");
  ASSERT_TRUE(doc.Find("epochs")->is_array());
  EXPECT_EQ(doc.Find("epochs")->array.size(), 1u);
  std::remove(csv_path.c_str());
  std::remove(json_path.c_str());
}

}  // namespace
}  // namespace redcache::obs
