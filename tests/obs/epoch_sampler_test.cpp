#include "obs/epoch_sampler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "obs/adaptive_epoch.hpp"
#include "obs/json.hpp"
#include "obs/telemetry_sink.hpp"

namespace redcache::obs {
namespace {

StatSet Snap(std::uint64_t hits, std::uint64_t misses, std::uint64_t depth) {
  StatSet s;
  s.Counter("ctrl.cache_hits") = hits;
  s.Counter("ctrl.cache_misses") = misses;
  s.Counter("gauge.rcu_depth") = depth;
  return s;
}

TEST(EpochSampler, DueFollowsActualSampleTime) {
  EpochSampler sampler(100);
  EXPECT_FALSE(sampler.Due(99));
  EXPECT_TRUE(sampler.Due(100));
  // Event-paced loop overshoots to 250; the next epoch is 250+100, not 300.
  sampler.Sample(250, Snap(1, 0, 0));
  EXPECT_FALSE(sampler.Due(300));
  EXPECT_TRUE(sampler.Due(350));
}

TEST(EpochSampler, SplitsGaugesFromDeltas) {
  EpochSampler sampler(100);
  sampler.Sample(100, Snap(10, 5, 7));
  sampler.Sample(200, Snap(25, 6, 3));
  const auto& epochs = sampler.epochs();
  ASSERT_EQ(epochs.size(), 2u);
  EXPECT_EQ(epochs[0].begin, 0u);
  EXPECT_EQ(epochs[0].end, 100u);
  EXPECT_EQ(epochs[0].delta.at("ctrl.cache_hits"), 10);
  EXPECT_EQ(epochs[1].delta.at("ctrl.cache_hits"), 15);
  EXPECT_EQ(epochs[1].delta.at("ctrl.cache_misses"), 1);
  // Gauges are raw point-in-time values, never differenced, prefix stripped.
  EXPECT_EQ(epochs[0].gauges.at("rcu_depth"), 7u);
  EXPECT_EQ(epochs[1].gauges.at("rcu_depth"), 3u);
  EXPECT_EQ(epochs[1].delta.count("gauge.rcu_depth"), 0u);
}

TEST(EpochSampler, DeltasMayGoNegative) {
  // Legacy gauge-like counters (ctrl.resident_lines) can shrink.
  EpochSampler sampler(10);
  StatSet a, b;
  a.Counter("ctrl.resident_lines") = 100;
  b.Counter("ctrl.resident_lines") = 40;
  sampler.Sample(10, a);
  sampler.Sample(20, b);
  EXPECT_EQ(sampler.epochs()[1].delta.at("ctrl.resident_lines"), -60);
}

TEST(EpochSampler, DeltasTelescopeToFinalCumulative) {
  EpochSampler sampler(50);
  std::uint64_t hits = 0;
  Cycle now = 0;
  for (int i = 1; i <= 7; ++i) {
    now += 50 + static_cast<Cycle>(i);  // irregular epoch spans
    hits += static_cast<std::uint64_t>(i * i);
    sampler.Sample(now, Snap(hits, 2 * hits, 1));
  }
  sampler.Finalize(now + 13, Snap(hits + 5, 2 * hits, 0));

  std::int64_t sum = 0;
  for (const EpochRecord& e : sampler.epochs()) {
    sum += e.delta.at("ctrl.cache_hits");
  }
  EXPECT_EQ(sum, static_cast<std::int64_t>(hits + 5));
  // Epochs tile the run: each begins where the previous ended.
  for (std::size_t i = 1; i < sampler.epochs().size(); ++i) {
    EXPECT_EQ(sampler.epochs()[i].begin, sampler.epochs()[i - 1].end);
  }
}

TEST(EpochSampler, FinalizeOnSampleBoundaryRefreshesGaugesOnly) {
  EpochSampler sampler(100);
  sampler.Sample(100, Snap(10, 0, 9));
  sampler.Finalize(100, Snap(10, 0, 0));
  ASSERT_EQ(sampler.epochs().size(), 1u);
  EXPECT_EQ(sampler.epochs()[0].gauges.at("rcu_depth"), 0u);
  EXPECT_EQ(sampler.epochs()[0].delta.at("ctrl.cache_hits"), 10);
}

TEST(EpochSampler, CounterAppearingMidRunDeltasFromZero) {
  EpochSampler sampler(10);
  StatSet first;
  first.Counter("ctrl.cache_hits") = 1;
  sampler.Sample(10, first);
  StatSet second = first;
  second.Counter("late.counter") = 5;
  sampler.Sample(20, second);
  EXPECT_EQ(sampler.epochs()[0].delta.count("late.counter"), 0u);
  EXPECT_EQ(sampler.epochs()[1].delta.at("late.counter"), 5);
}

TEST(TelemetryJson, ParsesAndCarriesDerivedMetrics) {
  EpochSampler sampler(100);
  StatSet s;
  s.Counter("ctrl.cache_hits") = 30;
  s.Counter("ctrl.cache_misses") = 10;
  s.Counter("ctrl.alpha_bypasses") = 60;
  s.Counter("hbm.bytes_transferred") = 6400;
  s.Counter("gauge.gamma") = 8;
  sampler.Sample(100, s);

  TelemetryMeta meta;
  meta.arch = "RedCache";
  meta.workload = "LU";
  meta.preset = "eval";
  meta.exec_cycles = 100;
  const std::string json = TelemetryJson(sampler, meta);
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(ParseJson(json, doc, &err)) << err << "\n" << json;

  const JsonValue* m = doc.Find("meta");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->Find("arch")->string, "RedCache");
  EXPECT_DOUBLE_EQ(m->Find("num_epochs")->number, 1.0);

  const JsonValue* epochs = doc.Find("epochs");
  ASSERT_NE(epochs, nullptr);
  ASSERT_EQ(epochs->array.size(), 1u);
  const JsonValue& e = epochs->array[0];
  const JsonValue* derived = e.Find("derived");
  ASSERT_NE(derived, nullptr);
  EXPECT_DOUBLE_EQ(derived->Find("hit_rate")->number, 0.3);
  EXPECT_DOUBLE_EQ(derived->Find("bypass_rate")->number, 0.6);
  EXPECT_DOUBLE_EQ(derived->Find("bw_bytes_per_cycle")->number, 64.0);
  EXPECT_DOUBLE_EQ(e.Find("gauges")->Find("gamma")->number, 8.0);
  EXPECT_DOUBLE_EQ(e.Find("delta")->Find("ctrl.cache_hits")->number, 30.0);
}

TEST(TelemetryCsv, HeaderUnionInNaturalOrderWithEmptyCells) {
  EpochSampler sampler(10);
  StatSet a;
  a.Counter("hbm.chan2.activates") = 1;
  sampler.Sample(10, a);
  StatSet b = a;
  b.Counter("hbm.chan10.activates") = 4;  // appears only in epoch 2
  b.Counter("gauge.rcu_depth") = 2;
  sampler.Sample(20, b);

  TelemetryMeta meta;
  meta.arch = "RedCache";
  meta.workload = "LU";
  const std::string csv = TelemetryCsv(sampler, meta);
  std::istringstream is(csv);
  std::string comment, header, row1, row2;
  ASSERT_TRUE(std::getline(is, comment));
  ASSERT_TRUE(std::getline(is, header));
  ASSERT_TRUE(std::getline(is, row1));
  ASSERT_TRUE(std::getline(is, row2));
  EXPECT_EQ(comment.rfind("# arch=RedCache", 0), 0u);
  EXPECT_EQ(header,
            "begin,end,hit_rate,bypass_rate,bw_bytes_per_cycle,"
            "gauge.rcu_depth,hbm.chan2.activates,hbm.chan10.activates");
  // Epoch 1 has no gauge and no chan10 column value: empty cells.
  EXPECT_EQ(row1, "0,10,0,0,0,,1,");
  EXPECT_EQ(row2, "10,20,0,0,0,2,0,4");
}

TEST(TelemetryCsv, MetaLineCarriesPolicyAndEscapesMixDescriptor) {
  EpochSampler sampler(10);
  StatSet a;
  a.Counter("ctrl.cache_hits") = 1;
  sampler.Sample(10, a);
  TelemetryMeta meta;
  meta.arch = "RedCache";
  meta.workload = "LU";
  meta.policy = "RedCache";
  meta.mix = "LU:2,RDX:1@8/offset";  // commas would break key=value parsing
  const std::string csv = TelemetryCsv(sampler, meta);
  const std::string comment = csv.substr(0, csv.find('\n'));
  EXPECT_NE(comment.find("policy=RedCache"), std::string::npos);
  EXPECT_NE(comment.find("mix=\"LU:2,RDX:1@8/offset\""), std::string::npos);
}

TEST(TelemetryJson, MetaCarriesPolicyAndMix) {
  EpochSampler sampler(10);
  StatSet a;
  a.Counter("ctrl.cache_hits") = 1;
  sampler.Sample(10, a);
  TelemetryMeta meta;
  meta.arch = "banshee";
  meta.policy = "Banshee";
  meta.mix = "LU:1,FT:1/interleave";
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(ParseJson(TelemetryJson(sampler, meta), doc, &err)) << err;
  const JsonValue* m = doc.Find("meta");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->Find("policy")->string, "Banshee");
  EXPECT_EQ(m->Find("mix")->string, "LU:1,FT:1/interleave");
}

TEST(ParseEpochSpec, AcceptsFixedAutoAndBandedForms) {
  EpochSpec spec;
  ASSERT_TRUE(ParseEpochSpec("250000", spec));
  EXPECT_EQ(spec.cycles, 250000u);
  EXPECT_FALSE(spec.adaptive);

  ASSERT_TRUE(ParseEpochSpec("auto", spec));
  EXPECT_TRUE(spec.adaptive);
  EXPECT_EQ(spec.cycles, 0u);  // base resolves from the preset
  EXPECT_EQ(spec.min_cycles, 0u);
  EXPECT_EQ(spec.max_cycles, 0u);

  ASSERT_TRUE(ParseEpochSpec("auto:1000:8000", spec));
  EXPECT_TRUE(spec.adaptive);
  EXPECT_EQ(spec.min_cycles, 1000u);
  EXPECT_EQ(spec.max_cycles, 8000u);

  EpochSpec untouched;
  EXPECT_FALSE(ParseEpochSpec("", untouched));
  EXPECT_FALSE(ParseEpochSpec("0", untouched));
  EXPECT_FALSE(ParseEpochSpec("fast", untouched));
  EXPECT_FALSE(ParseEpochSpec("auto:10", untouched));
  EXPECT_FALSE(ParseEpochSpec("auto:8000:1000", untouched));  // inverted band
  EXPECT_FALSE(ParseEpochSpec("auto:10:20x", untouched));
  EXPECT_FALSE(untouched.adaptive);
}

// A StatSet whose derived rates the adaptive controller reads: hit_rate is
// hits / (hits + misses + bypasses).
StatSet RateSnap(std::uint64_t hits, std::uint64_t misses) {
  StatSet s;
  s.Counter("ctrl.cache_hits") = hits;
  s.Counter("ctrl.cache_misses") = misses;
  return s;
}

TEST(AdaptiveEpoch, ShrinksAcrossPhaseChangeAndGrowsBackWhenFlat) {
  EpochSampler sampler(1000);
  AdaptiveEpochConfig cfg;
  cfg.min_cycles = 125;
  cfg.max_cycles = 4000;
  cfg.stable_epochs_to_grow = 2;
  sampler.EnableAdaptive(cfg);

  // Two identical epochs seed the controller with a flat baseline
  // (hit rate 0.5): prev is seeded on the first, score 0 on the second.
  Cycle now = 1000;
  std::uint64_t hits = 500, misses = 500;
  sampler.Sample(now, RateSnap(hits, misses));
  now += sampler.epoch_cycles();
  hits += 500;
  misses += 500;
  sampler.Sample(now, RateSnap(hits, misses));
  const Cycle before_phase = sampler.epoch_cycles();

  // Phase change: the next epoch is all misses, hit rate 0.5 -> 0.
  now += sampler.epoch_cycles();
  misses += 1000;
  sampler.Sample(now, RateSnap(hits, misses));
  EXPECT_LT(sampler.epoch_cycles(), before_phase);
  ASSERT_NE(sampler.adaptive_controller(), nullptr);
  EXPECT_GE(sampler.adaptive_controller()->shrinks(), 1u);

  // Flat tail: all-miss epochs forever. After enough stable epochs the
  // width doubles back up to the clamp.
  for (int i = 0; i < 20; ++i) {
    now += sampler.epoch_cycles();
    misses += 1000;
    sampler.Sample(now, RateSnap(hits, misses));
  }
  EXPECT_EQ(sampler.epoch_cycles(), cfg.max_cycles);
  EXPECT_GE(sampler.adaptive_controller()->grows(), 1u);
  EXPECT_LE(sampler.min_width_used(), before_phase / 2);
  EXPECT_EQ(sampler.max_width_used(), cfg.max_cycles);
}

TEST(AdaptiveEpoch, RecordsCarryWidthGaugeOnlyWhenAdaptive) {
  EpochSampler fixed(100);
  fixed.Sample(100, RateSnap(1, 1));
  EXPECT_EQ(fixed.epochs()[0].gauges.count("telemetry.epoch_cycles"), 0u);

  EpochSampler adaptive(100);
  adaptive.EnableAdaptive({});
  adaptive.Sample(100, RateSnap(1, 1));
  EXPECT_EQ(adaptive.epochs()[0].gauges.at("telemetry.epoch_cycles"), 100u);
}

TEST(AdaptiveEpoch, DeltasTelescopeAcrossResizingAndResidualFinalize) {
  // The ISSUE's satellite invariant: adaptive resizing plus an early-EOF
  // residual epoch must not break telescoping.
  EpochSampler sampler(1000);
  AdaptiveEpochConfig cfg;
  cfg.min_cycles = 100;
  cfg.max_cycles = 2000;
  sampler.EnableAdaptive(cfg);

  std::uint64_t hits = 0, misses = 0;
  Cycle now = 0;
  // Alternate hit-heavy and miss-heavy epochs so the width keeps moving.
  for (int i = 0; i < 12; ++i) {
    now += sampler.epoch_cycles();
    if (i % 2 == 0) {
      hits += 900 + static_cast<std::uint64_t>(i);
      misses += 100;
    } else {
      hits += 100;
      misses += 900 + static_cast<std::uint64_t>(i);
    }
    sampler.Sample(now, RateSnap(hits, misses));
  }
  ASSERT_GT(sampler.adaptive_controller()->shrinks(), 0u);
  // Mid-epoch end (serve-mode EOF): the residual partial epoch closes here.
  hits += 37;
  sampler.Finalize(now + 41, RateSnap(hits, misses));

  std::int64_t hit_sum = 0, miss_sum = 0;
  for (const EpochRecord& e : sampler.epochs()) {
    hit_sum += e.delta.at("ctrl.cache_hits");
    miss_sum += e.delta.at("ctrl.cache_misses");
  }
  EXPECT_EQ(hit_sum, static_cast<std::int64_t>(hits));
  EXPECT_EQ(miss_sum, static_cast<std::int64_t>(misses));
  EXPECT_EQ(sampler.cumulative().at("ctrl.cache_hits"), hits);
  for (std::size_t i = 1; i < sampler.epochs().size(); ++i) {
    EXPECT_EQ(sampler.epochs()[i].begin, sampler.epochs()[i - 1].end);
  }
  EXPECT_EQ(sampler.total_epochs(), sampler.epochs().size());
}

TEST(EpochSampler, SinkWithoutRetentionKeepsOnlyLastRecordButCounts) {
  BufferTelemetrySink sink;
  EpochSampler sampler(10);
  sampler.SetSink(&sink, /*retain_epochs=*/false);
  for (int i = 1; i <= 5; ++i) {
    sampler.Sample(static_cast<Cycle>(10 * i),
                   RateSnap(static_cast<std::uint64_t>(i), 0));
  }
  EXPECT_EQ(sampler.epochs().size(), 1u);  // bounded memory
  EXPECT_EQ(sampler.total_epochs(), 5u);
  EXPECT_EQ(sink.lines.size(), 5u);
  // Finalize's gauge-refresh path still has a record to refresh.
  StatSet last = RateSnap(5, 0);
  last.Counter("gauge.rcu_depth") = 3;
  sampler.Finalize(50, last);
  EXPECT_EQ(sampler.epochs().back().gauges.at("rcu_depth"), 3u);
}

}  // namespace
}  // namespace redcache::obs
