#include "obs/epoch_sampler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace redcache::obs {
namespace {

StatSet Snap(std::uint64_t hits, std::uint64_t misses, std::uint64_t depth) {
  StatSet s;
  s.Counter("ctrl.cache_hits") = hits;
  s.Counter("ctrl.cache_misses") = misses;
  s.Counter("gauge.rcu_depth") = depth;
  return s;
}

TEST(EpochSampler, DueFollowsActualSampleTime) {
  EpochSampler sampler(100);
  EXPECT_FALSE(sampler.Due(99));
  EXPECT_TRUE(sampler.Due(100));
  // Event-paced loop overshoots to 250; the next epoch is 250+100, not 300.
  sampler.Sample(250, Snap(1, 0, 0));
  EXPECT_FALSE(sampler.Due(300));
  EXPECT_TRUE(sampler.Due(350));
}

TEST(EpochSampler, SplitsGaugesFromDeltas) {
  EpochSampler sampler(100);
  sampler.Sample(100, Snap(10, 5, 7));
  sampler.Sample(200, Snap(25, 6, 3));
  const auto& epochs = sampler.epochs();
  ASSERT_EQ(epochs.size(), 2u);
  EXPECT_EQ(epochs[0].begin, 0u);
  EXPECT_EQ(epochs[0].end, 100u);
  EXPECT_EQ(epochs[0].delta.at("ctrl.cache_hits"), 10);
  EXPECT_EQ(epochs[1].delta.at("ctrl.cache_hits"), 15);
  EXPECT_EQ(epochs[1].delta.at("ctrl.cache_misses"), 1);
  // Gauges are raw point-in-time values, never differenced, prefix stripped.
  EXPECT_EQ(epochs[0].gauges.at("rcu_depth"), 7u);
  EXPECT_EQ(epochs[1].gauges.at("rcu_depth"), 3u);
  EXPECT_EQ(epochs[1].delta.count("gauge.rcu_depth"), 0u);
}

TEST(EpochSampler, DeltasMayGoNegative) {
  // Legacy gauge-like counters (ctrl.resident_lines) can shrink.
  EpochSampler sampler(10);
  StatSet a, b;
  a.Counter("ctrl.resident_lines") = 100;
  b.Counter("ctrl.resident_lines") = 40;
  sampler.Sample(10, a);
  sampler.Sample(20, b);
  EXPECT_EQ(sampler.epochs()[1].delta.at("ctrl.resident_lines"), -60);
}

TEST(EpochSampler, DeltasTelescopeToFinalCumulative) {
  EpochSampler sampler(50);
  std::uint64_t hits = 0;
  Cycle now = 0;
  for (int i = 1; i <= 7; ++i) {
    now += 50 + static_cast<Cycle>(i);  // irregular epoch spans
    hits += static_cast<std::uint64_t>(i * i);
    sampler.Sample(now, Snap(hits, 2 * hits, 1));
  }
  sampler.Finalize(now + 13, Snap(hits + 5, 2 * hits, 0));

  std::int64_t sum = 0;
  for (const EpochRecord& e : sampler.epochs()) {
    sum += e.delta.at("ctrl.cache_hits");
  }
  EXPECT_EQ(sum, static_cast<std::int64_t>(hits + 5));
  // Epochs tile the run: each begins where the previous ended.
  for (std::size_t i = 1; i < sampler.epochs().size(); ++i) {
    EXPECT_EQ(sampler.epochs()[i].begin, sampler.epochs()[i - 1].end);
  }
}

TEST(EpochSampler, FinalizeOnSampleBoundaryRefreshesGaugesOnly) {
  EpochSampler sampler(100);
  sampler.Sample(100, Snap(10, 0, 9));
  sampler.Finalize(100, Snap(10, 0, 0));
  ASSERT_EQ(sampler.epochs().size(), 1u);
  EXPECT_EQ(sampler.epochs()[0].gauges.at("rcu_depth"), 0u);
  EXPECT_EQ(sampler.epochs()[0].delta.at("ctrl.cache_hits"), 10);
}

TEST(EpochSampler, CounterAppearingMidRunDeltasFromZero) {
  EpochSampler sampler(10);
  StatSet first;
  first.Counter("ctrl.cache_hits") = 1;
  sampler.Sample(10, first);
  StatSet second = first;
  second.Counter("late.counter") = 5;
  sampler.Sample(20, second);
  EXPECT_EQ(sampler.epochs()[0].delta.count("late.counter"), 0u);
  EXPECT_EQ(sampler.epochs()[1].delta.at("late.counter"), 5);
}

TEST(TelemetryJson, ParsesAndCarriesDerivedMetrics) {
  EpochSampler sampler(100);
  StatSet s;
  s.Counter("ctrl.cache_hits") = 30;
  s.Counter("ctrl.cache_misses") = 10;
  s.Counter("ctrl.alpha_bypasses") = 60;
  s.Counter("hbm.bytes_transferred") = 6400;
  s.Counter("gauge.gamma") = 8;
  sampler.Sample(100, s);

  const TelemetryMeta meta{.arch = "RedCache", .workload = "LU",
                           .preset = "eval", .exec_cycles = 100};
  const std::string json = TelemetryJson(sampler, meta);
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(ParseJson(json, doc, &err)) << err << "\n" << json;

  const JsonValue* m = doc.Find("meta");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->Find("arch")->string, "RedCache");
  EXPECT_DOUBLE_EQ(m->Find("num_epochs")->number, 1.0);

  const JsonValue* epochs = doc.Find("epochs");
  ASSERT_NE(epochs, nullptr);
  ASSERT_EQ(epochs->array.size(), 1u);
  const JsonValue& e = epochs->array[0];
  const JsonValue* derived = e.Find("derived");
  ASSERT_NE(derived, nullptr);
  EXPECT_DOUBLE_EQ(derived->Find("hit_rate")->number, 0.3);
  EXPECT_DOUBLE_EQ(derived->Find("bypass_rate")->number, 0.6);
  EXPECT_DOUBLE_EQ(derived->Find("bw_bytes_per_cycle")->number, 64.0);
  EXPECT_DOUBLE_EQ(e.Find("gauges")->Find("gamma")->number, 8.0);
  EXPECT_DOUBLE_EQ(e.Find("delta")->Find("ctrl.cache_hits")->number, 30.0);
}

TEST(TelemetryCsv, HeaderUnionInNaturalOrderWithEmptyCells) {
  EpochSampler sampler(10);
  StatSet a;
  a.Counter("hbm.chan2.activates") = 1;
  sampler.Sample(10, a);
  StatSet b = a;
  b.Counter("hbm.chan10.activates") = 4;  // appears only in epoch 2
  b.Counter("gauge.rcu_depth") = 2;
  sampler.Sample(20, b);

  const std::string csv =
      TelemetryCsv(sampler, {.arch = "RedCache", .workload = "LU"});
  std::istringstream is(csv);
  std::string comment, header, row1, row2;
  ASSERT_TRUE(std::getline(is, comment));
  ASSERT_TRUE(std::getline(is, header));
  ASSERT_TRUE(std::getline(is, row1));
  ASSERT_TRUE(std::getline(is, row2));
  EXPECT_EQ(comment.rfind("# arch=RedCache", 0), 0u);
  EXPECT_EQ(header,
            "begin,end,hit_rate,bypass_rate,bw_bytes_per_cycle,"
            "gauge.rcu_depth,hbm.chan2.activates,hbm.chan10.activates");
  // Epoch 1 has no gauge and no chan10 column value: empty cells.
  EXPECT_EQ(row1, "0,10,0,0,0,,1,");
  EXPECT_EQ(row2, "10,20,0,0,0,2,0,4");
}

}  // namespace
}  // namespace redcache::obs
