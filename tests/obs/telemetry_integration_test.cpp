// End-to-end telemetry guarantees over real simulations:
//  - attaching the sampler and the tracer does not perturb results,
//  - per-epoch deltas telescope to the final cumulative counters,
//  - the exported Chrome trace passes our schema validator.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "obs/epoch_sampler.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "sim/runner.hpp"

namespace redcache {
namespace {

RunSpec SmallSpec() {
  RunSpec spec;
  spec.arch = Arch::kRedCache;
  spec.workload = "LU";
  spec.scale = 0.02;
  spec.ignore_env_scale = true;
  return spec;
}

TEST(TelemetryIntegration, AttachingObserversDoesNotPerturbResults) {
  const RunResult plain = BuildSystem(SmallSpec())->Run();
  ASSERT_TRUE(plain.completed);

  obs::EpochSampler sampler(25000);
  obs::TraceBuffer trace;
  RunResult observed;
  {
    auto system = BuildSystem(SmallSpec());
    system->SetTelemetry(&sampler);
    obs::TraceScope scope(&trace);
    observed = system->Run();
  }
  ASSERT_TRUE(observed.completed);
  EXPECT_GT(sampler.epochs().size(), 1u);
  EXPECT_GT(trace.emitted(), 0u);

  // Byte-identical stats and identical timing: observability is read-only.
  EXPECT_EQ(observed.exec_cycles, plain.exec_cycles);
  EXPECT_EQ(observed.stats.ToString(), plain.stats.ToString());
}

TEST(TelemetryIntegration, EpochDeltasSumToFinalCounters) {
  obs::EpochSampler sampler(25000);
  auto system = BuildSystem(SmallSpec());
  system->SetTelemetry(&sampler);
  const RunResult r = system->Run();
  ASSERT_TRUE(r.completed);
  ASSERT_GT(sampler.epochs().size(), 1u);

  std::map<std::string, std::int64_t> totals;
  for (const obs::EpochRecord& e : sampler.epochs()) {
    for (const auto& [name, delta] : e.delta) totals[name] += delta;
  }
  ASSERT_FALSE(totals.empty());
  // Every counter the run also reports must telescope exactly; spot-check
  // that the load-bearing ones are actually present in the series.
  for (const auto& [name, total] : totals) {
    if (!r.stats.HasCounter(name)) continue;  // telemetry-only counters
    EXPECT_EQ(total, static_cast<std::int64_t>(r.stats.GetCounter(name)))
        << name;
  }
  EXPECT_TRUE(totals.count("ctrl.cache_hits"));
  EXPECT_TRUE(totals.count("hbm.bytes_transferred"));
  EXPECT_EQ(totals.at("core.refs"),
            static_cast<std::int64_t>(r.stats.GetCounter("core.refs")));

  // RedCache-specific gauges ride along in the final epoch.
  const obs::EpochRecord& last = sampler.epochs().back();
  EXPECT_TRUE(last.gauges.count("gamma"));
  EXPECT_TRUE(last.gauges.count("alpha"));
  EXPECT_TRUE(last.gauges.count("rcu_depth"));

  // And the serialized series parses.
  obs::JsonValue doc;
  std::string err;
  obs::TelemetryMeta meta;
  meta.arch = "RedCache";
  meta.workload = "LU";
  meta.preset = "eval";
  meta.exec_cycles = r.exec_cycles;
  const std::string json = obs::TelemetryJson(sampler, meta);
  ASSERT_TRUE(obs::ParseJson(json, doc, &err)) << err;
  EXPECT_EQ(doc.Find("epochs")->array.size(), sampler.epochs().size());
}

TEST(TelemetryIntegration, ChromeTraceFromRealRunValidates) {
  obs::TraceBuffer trace;
  {
    auto system = BuildSystem(SmallSpec());
    obs::TraceScope scope(&trace);
    const RunResult r = system->Run();
    ASSERT_TRUE(r.completed);
  }
  ASSERT_GT(trace.emitted(), 0u);

  const std::string json = obs::ChromeTraceJson(trace);
  std::string err;
  EXPECT_TRUE(obs::ValidateChromeTrace(json, &err)) << err;

  obs::JsonValue doc;
  ASSERT_TRUE(obs::ParseJson(json, doc, &err)) << err;
  bool saw_dram_cmd = false, saw_policy = false;
  for (const obs::JsonValue& e : doc.Find("traceEvents")->array) {
    const obs::JsonValue* ph = e.Find("ph");
    if (ph == nullptr || ph->string != "X") continue;
    const int pid = static_cast<int>(e.Find("pid")->number);
    if (pid == obs::kTraceDeviceHbm || pid == obs::kTraceDeviceMainMem) {
      saw_dram_cmd = true;
    }
    if (pid == obs::kTraceDevicePolicy) saw_policy = true;
  }
  EXPECT_TRUE(saw_dram_cmd) << "expected RD/WR/ACT/PRE events";
  EXPECT_TRUE(saw_policy) << "expected alpha/gamma/RCU policy events";
}

}  // namespace
}  // namespace redcache
