// End-to-end mix runs: tenant counters must exactly partition the global
// totals for every registered policy, and single-tenant runs must export no
// tenant counters at all (byte-identical stats to pre-mix builds).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dramcache/policy_registry.hpp"
#include "sim/runner.hpp"
#include "tenant/qos.hpp"

namespace redcache {
namespace {

RunSpec TwoTenantSpec(const std::string& policy) {
  RunSpec s;
  s.policy = policy;
  s.scale = 0.02;
  s.ignore_env_scale = true;
  s.seed = 7;
  tenant::TenantSpec a;
  a.workload = "LU";
  tenant::TenantSpec b;
  b.workload = "RDX";
  b.weight = 2;
  s.mix.tenants = {a, b};
  return s;
}

TEST(MixSystem, TenantCountersPartitionTotalsForEveryPolicy) {
  for (const std::string& policy : PolicyRegistry::Instance().Names()) {
    const RunResult r = RunOne(TwoTenantSpec(policy));
    ASSERT_TRUE(r.completed) << policy;

    const auto rows = tenant::QosFromStats(r.stats);
    ASSERT_EQ(rows.size(), 2u) << policy;
    std::uint64_t refs = 0, reads = 0, writebacks = 0, serves = 0;
    for (const auto& row : rows) {
      EXPECT_GT(row.refs, 0u)
          << policy << ": tenant " << row.tenant << " was starved";
      refs += row.refs;
      reads += row.reads;
      writebacks += row.writebacks;
      serves += row.serve_hits + row.serve_misses;
    }
    // The per-tenant rows must partition — not approximate — the global
    // counters the solo simulator already exports.
    EXPECT_EQ(refs, r.stats.GetCounter("core.refs")) << policy;
    EXPECT_EQ(reads, r.stats.GetCounter("ctrl.reads")) << policy;
    EXPECT_EQ(writebacks, r.stats.GetCounter("ctrl.writebacks")) << policy;
    EXPECT_EQ(serves, r.stats.GetCounter("ctrl.reads"))
        << policy << ": every demand read must be attributed hit-or-miss";
  }
}

TEST(MixSystem, MixRunsSurviveTheShadowChecker) {
  // The co-scheduled stream must still satisfy the reference memory model:
  // verify mode throws on any divergence and audits the drain.
  RunSpec s = TwoTenantSpec("RedCache");
  s.verify = true;
  const RunResult r = RunOne(s);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.stats.GetCounter("verify.divergences"), 0u);
}

TEST(MixSystem, SingleTenantRunsExportNoTenantCounters) {
  RunSpec s;
  s.workload = "LU";
  s.scale = 0.02;
  s.ignore_env_scale = true;
  const RunResult r = RunOne(s);
  ASSERT_TRUE(r.completed);
  for (const auto& [name, value] : r.stats.counters()) {
    EXPECT_NE(name.rfind("tenant", 0), 0u)
        << name << "=" << value
        << ": single-tenant stats must stay byte-identical";
  }
  EXPECT_TRUE(tenant::QosFromStats(r.stats).empty());
}

TEST(MixSystem, InterleavePlacementStillPartitions) {
  RunSpec s = TwoTenantSpec("RedCache");
  s.mix.mode = tenant::TenantAddressMap::Mode::kInterleave;
  const RunResult r = RunOne(s);
  ASSERT_TRUE(r.completed);
  const auto rows = tenant::QosFromStats(r.stats);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].refs + rows[1].refs, r.stats.GetCounter("core.refs"));
}

}  // namespace
}  // namespace redcache
