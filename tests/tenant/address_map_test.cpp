// Tenant address placement: Rebase/TenantOf must be exact inverses and two
// tenants must never alias onto one block at any mapping or pow2
// configuration — the property the per-tenant QoS attribution and the
// no-cross-tenant-interference guarantee both rest on.
#include "tenant/address_map.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

namespace redcache::tenant {
namespace {

using Mode = TenantAddressMap::Mode;

std::vector<Addr> SampleOffsets(std::uint32_t window_bits) {
  const Addr window = Addr{1} << window_bits;
  std::vector<Addr> offsets = {0, kBlockBytes, 3 * kBlockBytes};
  if (window > kPageBytes) offsets.push_back(kPageBytes);
  offsets.push_back(window - kBlockBytes);
  // Beyond-window addresses wrap within the tenant's slice; they still must
  // belong to the right tenant and never collide with another tenant.
  offsets.push_back(window + 5 * kBlockBytes);
  offsets.push_back(7 * window + kBlockBytes);
  return offsets;
}

TEST(TenantAddressMap, RebaseAndTenantOfAreExactInverses) {
  for (const Mode mode : {Mode::kOffset, Mode::kInterleave}) {
    for (const std::uint32_t tenants : {1u, 2u, 3u, 4u, 8u}) {
      for (const std::uint32_t wbits : {kBlockShift, 12u, 20u, 27u}) {
        const TenantAddressMap map(mode, tenants, wbits);
        for (std::uint32_t t = 0; t < tenants; ++t) {
          for (const Addr a : SampleOffsets(wbits)) {
            EXPECT_EQ(map.TenantOf(map.Rebase(t, a)), t)
                << ToString(mode) << " tenants=" << tenants
                << " window=" << wbits << " t=" << t << " addr=" << a;
          }
        }
      }
    }
  }
}

TEST(TenantAddressMap, NoCrossTenantAliasingAtAnyConfiguration) {
  for (const Mode mode : {Mode::kOffset, Mode::kInterleave}) {
    for (const std::uint32_t tenants : {2u, 3u, 4u, 8u}) {
      for (const std::uint32_t wbits : {kBlockShift, 12u, 20u, 27u}) {
        const TenantAddressMap map(mode, tenants, wbits);
        // Distinct (tenant, in-window block) pairs must land on distinct
        // rebased blocks: collect them all and count.
        const Addr window = Addr{1} << wbits;
        std::vector<Addr> offsets;
        for (Addr a = 0; a < window && offsets.size() < 64;
             a += kBlockBytes) {
          offsets.push_back(a);
        }
        offsets.push_back(window - kBlockBytes);
        std::set<Addr> rebased;
        for (std::uint32_t t = 0; t < tenants; ++t) {
          for (const Addr a : offsets) {
            rebased.insert(map.Rebase(t, a));
          }
        }
        std::set<Addr> unique_offsets(offsets.begin(), offsets.end());
        EXPECT_EQ(rebased.size(), tenants * unique_offsets.size())
            << ToString(mode) << " tenants=" << tenants
            << " window=" << wbits << ": two tenants aliased onto one block";
      }
    }
  }
}

TEST(TenantAddressMap, OffsetModePreservesInWindowLayout) {
  // Offset placement must keep each tenant's intra-window bits untouched so
  // its solo row/bank locality carries over verbatim.
  const TenantAddressMap map(Mode::kOffset, 4, 20);
  const Addr mask = (Addr{1} << 20) - 1;
  for (std::uint32_t t = 0; t < 4; ++t) {
    for (const Addr a : SampleOffsets(20)) {
      EXPECT_EQ(map.Rebase(t, a) & mask, a & mask);
    }
  }
}

TEST(TenantAddressMap, PlanOffsetStaysBelowCapacity) {
  const std::uint64_t capacity = std::uint64_t{1} << 30;  // 1 GiB
  for (const std::uint32_t tenants : {2u, 3u, 4u, 8u}) {
    const auto map = TenantAddressMap::Plan(Mode::kOffset, tenants,
                                            /*max_footprint=*/1 << 28,
                                            capacity);
    EXPECT_LE(map.window_bits() + map.tenant_bits(), 30u);
    for (std::uint32_t t = 0; t < tenants; ++t) {
      const Addr top = map.Rebase(t, (Addr{1} << map.window_bits()) - kBlockBytes);
      EXPECT_LT(top, capacity)
          << tenants << " tenants: tenant " << t
          << " escapes device capacity, the modulo wrap would fold tenants";
    }
  }
}

TEST(TenantAddressMap, PlanInterleaveStripesAtPageGranularity) {
  const auto map = TenantAddressMap::Plan(Mode::kInterleave, 4, 1 << 20,
                                          std::uint64_t{1} << 30);
  EXPECT_EQ(map.window_bits(), kPageShift);
  // Consecutive pages of one tenant are separated by the other tenants'
  // stripes — neighbours in the same row region.
  EXPECT_EQ(map.Rebase(0, kPageBytes) - map.Rebase(0, 0),
            Addr{kPageBytes} << map.tenant_bits());
}

TEST(TenantAddressMap, PlanHonorsWindowOverride) {
  const auto map = TenantAddressMap::Plan(Mode::kOffset, 2, 1 << 20,
                                          std::uint64_t{1} << 30,
                                          /*window_bits_override=*/16);
  EXPECT_EQ(map.window_bits(), 16u);
}

TEST(TenantAddressMap, DescribeIsCanonical) {
  EXPECT_EQ(TenantAddressMap(Mode::kOffset, 2, 27).Describe(), "o27");
  EXPECT_EQ(TenantAddressMap(Mode::kInterleave, 4, 12).Describe(), "i12");
}

TEST(TenantAddressMap, RejectsDegenerateShapes) {
  EXPECT_THROW(TenantAddressMap(Mode::kOffset, 0, 20), std::invalid_argument);
  EXPECT_THROW(TenantAddressMap(Mode::kOffset, 2, kBlockShift - 1),
               std::invalid_argument);
  EXPECT_THROW(TenantAddressMap(Mode::kOffset, 2, 64), std::invalid_argument);
}

}  // namespace
}  // namespace redcache::tenant
