// MixTraceSource co-scheduling semantics: deterministic weighted
// round-robin per core, exhausted-tenant skipping, rate-limit gap
// stretching, and address attribution through the tenant map.
#include "tenant/mix_trace.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

namespace redcache::tenant {
namespace {

using Mode = TenantAddressMap::Mode;

/// Scripted per-core reference streams for exact-order assertions.
class VecSource : public TraceSource {
 public:
  VecSource(std::string name, std::vector<std::vector<MemRef>> per_core)
      : name_(std::move(name)), per_core_(std::move(per_core)),
        pos_(per_core_.size(), 0) {}

  bool Next(std::uint32_t core, MemRef& out) override {
    if (pos_[core] >= per_core_[core].size()) return false;
    out = per_core_[core][pos_[core]++];
    return true;
  }
  std::uint32_t num_cores() const override {
    return static_cast<std::uint32_t>(per_core_.size());
  }
  std::uint64_t footprint_bytes() const override { return kPageBytes; }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<std::vector<MemRef>> per_core_;
  std::vector<std::size_t> pos_;
};

std::vector<MemRef> Refs(std::size_t count, std::uint32_t gap = 1) {
  std::vector<MemRef> refs(count);
  for (std::size_t i = 0; i < count; ++i) {
    refs[i].addr = static_cast<Addr>(i) * kBlockBytes;
    refs[i].gap = gap;
  }
  return refs;
}

TenantSpec Spec(std::uint32_t weight, std::uint32_t min_gap = 0) {
  TenantSpec s;
  s.workload = "T";
  s.weight = weight;
  s.min_gap = min_gap;
  return s;
}

std::unique_ptr<MixTraceSource> TwoTenants(std::size_t refs0,
                                           std::size_t refs1,
                                           TenantSpec s0, TenantSpec s1,
                                           std::uint32_t gap = 1) {
  std::vector<std::unique_ptr<TraceSource>> children;
  children.push_back(std::make_unique<VecSource>(
      "a", std::vector<std::vector<MemRef>>{Refs(refs0, gap)}));
  children.push_back(std::make_unique<VecSource>(
      "b", std::vector<std::vector<MemRef>>{Refs(refs1, gap)}));
  return std::make_unique<MixTraceSource>(
      std::move(children), std::vector<TenantSpec>{s0, s1},
      TenantAddressMap(Mode::kOffset, 2, 12));
}

/// Drain one core and record which tenant emitted each reference.
std::vector<std::uint32_t> TenantOrder(MixTraceSource& mix,
                                       std::uint32_t core = 0) {
  std::vector<std::uint32_t> order;
  MemRef ref;
  while (mix.Next(core, ref)) order.push_back(mix.map().TenantOf(ref.addr));
  return order;
}

TEST(MixTrace, WeightedRoundRobinFollowsTheWeights) {
  // Weights 2:1 -> the serve pattern is t0,t0,t1 repeating.
  auto mix = TwoTenants(6, 3, Spec(2), Spec(1));
  EXPECT_EQ(TenantOrder(*mix),
            (std::vector<std::uint32_t>{0, 0, 1, 0, 0, 1, 0, 0, 1}));
}

TEST(MixTrace, ExhaustedTenantIsSkippedUntilAllAreDry) {
  // Tenant 0 dries up after 2 refs; the remainder must all come from
  // tenant 1 with no gaps in the stream.
  auto mix = TwoTenants(2, 5, Spec(1), Spec(1));
  EXPECT_EQ(TenantOrder(*mix),
            (std::vector<std::uint32_t>{0, 1, 0, 1, 1, 1, 1}));
}

TEST(MixTrace, MinGapStretchesButNeverShrinksComputeGaps) {
  // Tenant 0 throttled to min_gap 8: its gap-1 refs become gap-8, while a
  // source gap above the floor passes through untouched.
  std::vector<MemRef> slow = Refs(2, 1);
  slow[1].gap = 20;
  std::vector<std::unique_ptr<TraceSource>> children;
  children.push_back(std::make_unique<VecSource>(
      "a", std::vector<std::vector<MemRef>>{slow}));
  children.push_back(std::make_unique<VecSource>(
      "b", std::vector<std::vector<MemRef>>{Refs(2, 3)}));
  MixTraceSource mix(std::move(children),
                     {Spec(1, /*min_gap=*/8), Spec(1, /*min_gap=*/0)},
                     TenantAddressMap(Mode::kOffset, 2, 12));
  MemRef ref;
  ASSERT_TRUE(mix.Next(0, ref));
  EXPECT_EQ(mix.map().TenantOf(ref.addr), 0u);
  EXPECT_EQ(ref.gap, 8u);
  ASSERT_TRUE(mix.Next(0, ref));
  EXPECT_EQ(ref.gap, 3u);  // tenant 1, unthrottled
  ASSERT_TRUE(mix.Next(0, ref));
  EXPECT_EQ(ref.gap, 20u);  // tenant 0, already above the floor
}

TEST(MixTrace, EveryAddressLandsInTheEmittingTenantsSlice) {
  auto mix = TwoTenants(8, 8, Spec(3), Spec(2));
  MemRef ref;
  std::uint64_t served = 0;
  while (mix->Next(0, ref)) {
    const std::uint32_t t = mix->map().TenantOf(ref.addr);
    ASSERT_LT(t, 2u);
    // Offset mode keeps the child's in-window layout verbatim.
    EXPECT_EQ(ref.addr & ((Addr{1} << 12) - 1),
              ref.addr - mix->map().Rebase(t, 0));
    served++;
  }
  EXPECT_EQ(served, 16u);
}

TEST(MixTrace, CoresScheduleIndependentlyOfPollingOrder) {
  // Serving core 1 to exhaustion before touching core 0 must produce the
  // same per-core sequences as the interleaved order — lanes are per-core.
  const auto build = [] {
    std::vector<std::unique_ptr<TraceSource>> children;
    children.push_back(std::make_unique<VecSource>(
        "a", std::vector<std::vector<MemRef>>{Refs(4), Refs(3)}));
    children.push_back(std::make_unique<VecSource>(
        "b", std::vector<std::vector<MemRef>>{Refs(2), Refs(5)}));
    return std::make_unique<MixTraceSource>(
        std::move(children), std::vector<TenantSpec>{Spec(2), Spec(1)},
        TenantAddressMap(Mode::kOffset, 2, 12));
  };
  auto forward = build();
  const auto core0_first = TenantOrder(*forward, 0);
  const auto core1_after = TenantOrder(*forward, 1);

  auto reversed = build();
  EXPECT_EQ(TenantOrder(*reversed, 1), core1_after);
  EXPECT_EQ(TenantOrder(*reversed, 0), core0_first);
}

TEST(MixTrace, RejectsMalformedMixes) {
  const TenantAddressMap map2(Mode::kOffset, 2, 12);
  EXPECT_THROW(MixTraceSource({}, {}, map2), std::invalid_argument);

  {  // children/specs length mismatch
    std::vector<std::unique_ptr<TraceSource>> children;
    children.push_back(std::make_unique<VecSource>(
        "a", std::vector<std::vector<MemRef>>{Refs(1)}));
    EXPECT_THROW(
        MixTraceSource(std::move(children), {Spec(1), Spec(1)}, map2),
        std::invalid_argument);
  }
  {  // tenants disagree on core count
    std::vector<std::unique_ptr<TraceSource>> children;
    children.push_back(std::make_unique<VecSource>(
        "a", std::vector<std::vector<MemRef>>{Refs(1)}));
    children.push_back(std::make_unique<VecSource>(
        "b", std::vector<std::vector<MemRef>>{Refs(1), Refs(1)}));
    EXPECT_THROW(
        MixTraceSource(std::move(children), {Spec(1), Spec(1)}, map2),
        std::invalid_argument);
  }
  {  // zero weight would starve the tenant forever
    std::vector<std::unique_ptr<TraceSource>> children;
    children.push_back(std::make_unique<VecSource>(
        "a", std::vector<std::vector<MemRef>>{Refs(1)}));
    children.push_back(std::make_unique<VecSource>(
        "b", std::vector<std::vector<MemRef>>{Refs(1)}));
    EXPECT_THROW(
        MixTraceSource(std::move(children), {Spec(1), Spec(0)}, map2),
        std::invalid_argument);
  }
  {  // map sized for a different mix
    std::vector<std::unique_ptr<TraceSource>> children;
    children.push_back(std::make_unique<VecSource>(
        "a", std::vector<std::vector<MemRef>>{Refs(1)}));
    EXPECT_THROW(MixTraceSource(std::move(children), {Spec(1)}, map2),
                 std::invalid_argument);
  }
}

}  // namespace
}  // namespace redcache::tenant
