// Mix cells in the batch engine: the cache key must incorporate the whole
// mix descriptor, results must be deterministic across worker counts, the
// fingerprinted disk cache must round-trip tenant counters, and the batch
// report JSON must carry the per-tenant QoS rows.
#include "sim/batch.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace redcache {
namespace {

std::string Serialize(const RunResult& r) {
  std::ostringstream os;
  os << "completed=" << r.completed << "\nexec_cycles=" << r.exec_cycles
     << "\nhbm_energy=" << r.energy.HbmCacheNj()
     << "\nsystem_energy=" << r.energy.SystemNj() << "\n"
     << r.stats.ToString();
  return os.str();
}

RunSpec TwoTenantSpec() {
  RunSpec s;
  s.policy = "RedCache";
  s.scale = 0.02;
  s.ignore_env_scale = true;
  s.seed = 9;
  tenant::TenantSpec a;
  a.workload = "LU";
  tenant::TenantSpec b;
  b.workload = "RDX";
  s.mix.tenants = {a, b};
  return s;
}

TEST(MixBatch, CellKeyIncorporatesTheWholeMixDescriptor) {
  CellSpec solo;
  solo.spec = TwoTenantSpec();
  solo.spec.mix = {};
  solo.spec.workload = "LU";
  EXPECT_EQ(CellKey(solo).find("_mix"), std::string::npos)
      << "inactive mixes must keep pre-mix keys byte-identical";

  CellSpec mix;
  mix.spec = TwoTenantSpec();
  mix.spec.workload = "LU";  // same label: only the mix distinguishes them
  EXPECT_NE(CellKey(mix), CellKey(solo));
  EXPECT_NE(CellKey(mix).find("_mix"), std::string::npos);

  CellSpec weights = mix;
  weights.spec.mix.tenants[1].weight = 3;
  EXPECT_NE(CellKey(weights), CellKey(mix));

  CellSpec throttled = mix;
  throttled.spec.mix.tenants[0].min_gap = 8;
  EXPECT_NE(CellKey(throttled), CellKey(mix));

  CellSpec tenants = mix;
  tenants.spec.mix.tenants[1].workload = "FT";
  EXPECT_NE(CellKey(tenants), CellKey(mix));

  CellSpec interleaved = mix;
  interleaved.spec.mix.mode = tenant::TenantAddressMap::Mode::kInterleave;
  EXPECT_NE(CellKey(interleaved), CellKey(mix));

  CellSpec window = mix;
  window.spec.mix.window_bits = 16;
  EXPECT_NE(CellKey(window), CellKey(mix));

  // Solo baselines are observability-only and must NOT change the key —
  // otherwise attaching a baseline would orphan every cached mix cell.
  CellSpec baselined = mix;
  baselined.spec.mix.tenants[0].solo_exec_cycles = 123456;
  EXPECT_EQ(CellKey(baselined), CellKey(mix));
}

TEST(MixBatch, MixCellsAreDeterministicAcrossWorkerCounts) {
  std::vector<RunSpec> specs;
  for (const char* policy : {"Alloy", "RedCache", "Banshee"}) {
    RunSpec s = TwoTenantSpec();
    s.policy = policy;
    specs.push_back(s);
  }
  BatchOptions serial{1, false, "t"};
  BatchOptions wide{8, false, "t"};
  const auto base = RunBatch(specs, serial);
  const auto par = RunBatch(specs, wide);
  ASSERT_EQ(base.size(), par.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(Serialize(base[i]), Serialize(par[i]))
        << specs[i].policy << " mix diverged between jobs=1 and jobs=8";
  }
}

TEST(MixBatch, DiskCacheRoundTripsTenantCounters) {
  char tmpl[] = "/tmp/redcache_mix_disk_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  ASSERT_EQ(::setenv("REDCACHE_CACHE_DIR", dir.c_str(), 1), 0);

  CellSpec cell;
  cell.spec = TwoTenantSpec();
  cell.spec.seed = 21;
  cell.variant = "mixdisk1";

  CellProfile first_profile;
  const RunResult first = RunCellCached(cell, &first_profile);
  ASSERT_TRUE(first.completed);
  ASSERT_EQ(first_profile.tenants.size(), 2u)
      << "mix cells must surface QoS rows in their profile";
  const std::string path = dir + "/" + CellKey(cell) + ".stats";
  ASSERT_TRUE(std::ifstream(path).good()) << path;

  // The in-process memo would mask the disk path for the same key; copy the
  // entry under a memo-cold key (the variant is not part of the stored
  // fingerprint) and it must be served from disk, tenant counters intact.
  CellSpec cold = cell;
  cold.variant = "mixdisk2";
  const std::string cold_path = dir + "/" + CellKey(cold) + ".stats";
  std::filesystem::copy_file(path, cold_path);

  CellProfile profile;
  const RunResult loaded = RunCellCached(cold, &profile);
  EXPECT_TRUE(profile.disk_hit)
      << "fingerprint mismatch: the mix entry was recomputed, not loaded";
  const auto want = tenant::QosFromStats(first.stats);
  const auto got = tenant::QosFromStats(loaded.stats);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t t = 0; t < want.size(); ++t) {
    EXPECT_EQ(got[t].refs, want[t].refs);
    EXPECT_EQ(got[t].finish_cycles, want[t].finish_cycles);
    EXPECT_EQ(got[t].serve_hits, want[t].serve_hits);
    EXPECT_EQ(got[t].hbm_bytes, want[t].hbm_bytes);
    EXPECT_EQ(got[t].rcu_drains, want[t].rcu_drains);
  }
  ASSERT_EQ(profile.tenants.size(), 2u)
      << "disk hits must re-derive QoS rows from the loaded counters";
  EXPECT_EQ(profile.tenants[0].refs, want[0].refs);

  ::unsetenv("REDCACHE_CACHE_DIR");
  std::remove(path.c_str());
  std::remove(cold_path.c_str());
  ::rmdir(dir.c_str());
}

TEST(MixBatch, ReportJsonCarriesTenantRowsOnlyForMixCells) {
  CellSpec mix;
  mix.spec = TwoTenantSpec();
  mix.variant = "mixreport";
  CellSpec solo;
  solo.spec = TwoTenantSpec();
  solo.spec.mix = {};
  solo.spec.workload = "LU";
  solo.variant = "mixreport";

  BatchReport report;
  BatchOptions opts{2, false, "t"};
  opts.report = &report;
  const auto results = RunCells({mix, solo}, opts);
  ASSERT_EQ(results.size(), 2u);

  obs::JsonValue doc;
  std::string err;
  const std::string json = BatchReportJson(report);
  ASSERT_TRUE(obs::ParseJson(json, doc, &err)) << err << "\n" << json;
  const obs::JsonValue* cells = doc.Find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->array.size(), 2u);

  const obs::JsonValue* tenants = cells->array[0].Find("tenants");
  ASSERT_NE(tenants, nullptr) << "mix cell lost its tenants array:\n" << json;
  ASSERT_EQ(tenants->array.size(), 2u);
  for (const char* field :
       {"tenant", "refs", "finish_cycles", "reads", "writebacks",
        "serve_hits", "serve_misses", "hbm_bytes", "mm_bytes", "rcu_drains",
        "hit_rate", "hbm_share", "mm_share"}) {
    EXPECT_NE(tenants->array[0].Find(field), nullptr)
        << field << " missing from the per-tenant QoS row";
  }
  EXPECT_EQ(cells->array[1].Find("tenants"), nullptr)
      << "single-tenant cells must not grow a tenants array";
}

}  // namespace
}  // namespace redcache
