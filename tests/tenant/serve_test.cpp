// Serve-mode integration: streaming a trace through a pipe must reproduce
// the batch replay of the same records exactly, EOF mid-stream must drain
// to the stats of the batch run over the same prefix, and the stop flag
// must end ingestion while still draining buffered records.
#include "tenant/stream_trace.hpp"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dramcache/policy_registry.hpp"
#include "sim/runner.hpp"
#include "workloads/trace_file.hpp"

namespace redcache {
namespace {

constexpr std::size_t kHeaderBytes = 12;  // magic + version + num_cores
constexpr std::size_t kRecordBytes = 16;

std::string Serialize(const RunResult& r) {
  std::ostringstream os;
  os << "completed=" << r.completed << "\nexec_cycles=" << r.exec_cycles
     << "\n" << r.stats.ToString();
  return os.str();
}

/// Capture the LU generator to an RCTR file and return the path.
std::string CaptureTrace(const std::string& path) {
  WorkloadBuildParams wp;
  wp.num_cores = EvalPreset().hierarchy.num_cores;
  wp.scale = 0.01;
  auto source = MakeWorkload("LU", wp);
  TraceFileWriter writer(path, source->num_cores());
  writer.CaptureAll(*source);
  writer.Flush();
  return path;
}

/// First `records` records of `full` as a standalone RCTR file.
void WritePrefix(const std::string& full, const std::string& prefix,
                 std::size_t records) {
  std::ifstream in(full, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::vector<char> bytes(kHeaderBytes + records * kRecordBytes);
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_EQ(static_cast<std::size_t>(in.gcount()), bytes.size())
      << "capture shorter than the requested prefix";
  std::ofstream out(prefix, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Batch-style replay: the whole file loaded up front, no streaming.
RunResult ReplayFile(const std::string& path) {
  const SimPreset preset = EvalPreset();
  System system(preset.hierarchy, preset.core,
                MakePolicy("RedCache", preset.mem),
                std::make_unique<FileTraceSource>(path));
  return system.Run();
}

RunResult ServeFrom(const std::string& path) {
  RunSpec spec;
  spec.policy = "RedCache";
  spec.serve_path = path;
  return RunOne(spec);
}

TEST(Serve, StreamedFileMatchesBatchReplayExactly) {
  char dir_tmpl[] = "/tmp/redcache_serve_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_tmpl), nullptr);
  const std::string dir = dir_tmpl;
  const std::string trace = CaptureTrace(dir + "/full.rctr");

  const RunResult streamed = ServeFrom(trace);
  const RunResult batch = ReplayFile(trace);
  ASSERT_TRUE(streamed.completed);
  EXPECT_EQ(Serialize(streamed), Serialize(batch))
      << "incremental ingestion changed simulation results";

  std::remove(trace.c_str());
  ::rmdir(dir.c_str());
}

TEST(Serve, PipeEofMidStreamDrainsToTheBatchPrefix) {
  char dir_tmpl[] = "/tmp/redcache_serve_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_tmpl), nullptr);
  const std::string dir = dir_tmpl;
  const std::string full = CaptureTrace(dir + "/full.rctr");
  const std::string prefix = dir + "/prefix.rctr";
  constexpr std::size_t kPrefixRecords = 2000;
  WritePrefix(full, prefix, kPrefixRecords);

  const std::string fifo = dir + "/serve.fifo";
  ASSERT_EQ(::mkfifo(fifo.c_str(), 0600), 0);
  // The writer delivers only the prefix, then closes — EOF arrives while
  // the simulated trace is logically mid-stream.
  std::thread writer([&] {
    const int fd = ::open(fifo.c_str(), O_WRONLY);
    ASSERT_GE(fd, 0);
    std::ifstream in(prefix, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::write(fd, bytes.data() + sent, bytes.size() - sent);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
    ::close(fd);
  });

  const RunResult streamed = ServeFrom(fifo);
  writer.join();
  const RunResult batch = ReplayFile(prefix);
  ASSERT_TRUE(streamed.completed);
  EXPECT_EQ(Serialize(streamed), Serialize(batch))
      << "the graceful drain must equal the batch run over the same records";

  std::remove(full.c_str());
  std::remove(prefix.c_str());
  std::remove(fifo.c_str());
  ::rmdir(dir.c_str());
}

TEST(Serve, StopFlagEndsIngestionButDrainsBufferedRecords) {
  char dir_tmpl[] = "/tmp/redcache_serve_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_tmpl), nullptr);
  const std::string dir = dir_tmpl;
  const std::string trace = CaptureTrace(dir + "/full.rctr");

  volatile std::sig_atomic_t stop = 0;
  tenant::StreamTraceSource source(trace);
  source.SetStopFlag(&stop);

  // One successful Next buffers at least a chunk's worth of records.
  MemRef ref;
  ASSERT_TRUE(source.Next(0, ref));
  const std::uint64_t ingested = source.total_records();
  ASSERT_GT(ingested, 0u);

  stop = 1;
  // Everything already buffered must still drain — a graceful stop, not a
  // mid-request abort — but nothing new may be ingested.
  std::uint64_t drained = 1;  // the record already returned above
  for (std::uint32_t core = 0; core < source.num_cores(); ++core) {
    while (source.Next(core, ref)) drained++;
  }
  EXPECT_EQ(source.total_records(), ingested)
      << "ingestion continued after the stop flag was set";
  EXPECT_EQ(drained, ingested);

  // A source stopped before any Next serves nothing at all.
  tenant::StreamTraceSource eager(trace);
  volatile std::sig_atomic_t stopped_at_birth = 1;
  eager.SetStopFlag(&stopped_at_birth);
  for (std::uint32_t core = 0; core < eager.num_cores(); ++core) {
    EXPECT_FALSE(eager.Next(core, ref));
  }
  EXPECT_EQ(eager.total_records(), 0u);

  std::remove(trace.c_str());
  ::rmdir(dir.c_str());
}

TEST(Serve, RejectsMalformedStreams) {
  char dir_tmpl[] = "/tmp/redcache_serve_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_tmpl), nullptr);
  const std::string dir = dir_tmpl;
  const std::string bogus = dir + "/bogus.rctr";
  std::ofstream(bogus, std::ios::binary) << "NOTATRACEFILE";
  EXPECT_THROW(tenant::StreamTraceSource{bogus}, std::runtime_error);
  EXPECT_THROW(tenant::StreamTraceSource{dir + "/missing.rctr"},
               std::runtime_error);
  std::remove(bogus.c_str());
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace redcache
