// Serve-mode integration: streaming a trace through a pipe must reproduce
// the batch replay of the same records exactly, EOF mid-stream must drain
// to the stats of the batch run over the same prefix, and the stop flag
// must end ingestion while still draining buffered records.
#include "tenant/stream_trace.hpp"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dramcache/policy_registry.hpp"
#include "obs/json.hpp"
#include "sim/runner.hpp"
#include "workloads/trace_file.hpp"

namespace redcache {
namespace {

constexpr std::size_t kHeaderBytes = 12;  // magic + version + num_cores
constexpr std::size_t kRecordBytes = 16;

std::string Serialize(const RunResult& r) {
  std::ostringstream os;
  os << "completed=" << r.completed << "\nexec_cycles=" << r.exec_cycles
     << "\n" << r.stats.ToString();
  return os.str();
}

/// Capture the LU generator to an RCTR file and return the path.
std::string CaptureTrace(const std::string& path) {
  WorkloadBuildParams wp;
  wp.num_cores = EvalPreset().hierarchy.num_cores;
  wp.scale = 0.01;
  auto source = MakeWorkload("LU", wp);
  TraceFileWriter writer(path, source->num_cores());
  writer.CaptureAll(*source);
  writer.Flush();
  return path;
}

/// First `records` records of `full` as a standalone RCTR file.
void WritePrefix(const std::string& full, const std::string& prefix,
                 std::size_t records) {
  std::ifstream in(full, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::vector<char> bytes(kHeaderBytes + records * kRecordBytes);
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_EQ(static_cast<std::size_t>(in.gcount()), bytes.size())
      << "capture shorter than the requested prefix";
  std::ofstream out(prefix, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Batch-style replay: the whole file loaded up front, no streaming.
RunResult ReplayFile(const std::string& path) {
  const SimPreset preset = EvalPreset();
  System system(preset.hierarchy, preset.core,
                MakePolicy("RedCache", preset.mem),
                std::make_unique<FileTraceSource>(path));
  return system.Run();
}

RunResult ServeFrom(const std::string& path) {
  RunSpec spec;
  spec.policy = "RedCache";
  spec.serve_path = path;
  return RunOne(spec);
}

TEST(Serve, StreamedFileMatchesBatchReplayExactly) {
  char dir_tmpl[] = "/tmp/redcache_serve_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_tmpl), nullptr);
  const std::string dir = dir_tmpl;
  const std::string trace = CaptureTrace(dir + "/full.rctr");

  const RunResult streamed = ServeFrom(trace);
  const RunResult batch = ReplayFile(trace);
  ASSERT_TRUE(streamed.completed);
  EXPECT_EQ(Serialize(streamed), Serialize(batch))
      << "incremental ingestion changed simulation results";

  std::remove(trace.c_str());
  ::rmdir(dir.c_str());
}

TEST(Serve, PipeEofMidStreamDrainsToTheBatchPrefix) {
  char dir_tmpl[] = "/tmp/redcache_serve_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_tmpl), nullptr);
  const std::string dir = dir_tmpl;
  const std::string full = CaptureTrace(dir + "/full.rctr");
  const std::string prefix = dir + "/prefix.rctr";
  constexpr std::size_t kPrefixRecords = 2000;
  WritePrefix(full, prefix, kPrefixRecords);

  const std::string fifo = dir + "/serve.fifo";
  ASSERT_EQ(::mkfifo(fifo.c_str(), 0600), 0);
  // The writer delivers only the prefix, then closes — EOF arrives while
  // the simulated trace is logically mid-stream.
  std::thread writer([&] {
    const int fd = ::open(fifo.c_str(), O_WRONLY);
    ASSERT_GE(fd, 0);
    std::ifstream in(prefix, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::write(fd, bytes.data() + sent, bytes.size() - sent);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
    ::close(fd);
  });

  const RunResult streamed = ServeFrom(fifo);
  writer.join();
  const RunResult batch = ReplayFile(prefix);
  ASSERT_TRUE(streamed.completed);
  EXPECT_EQ(Serialize(streamed), Serialize(batch))
      << "the graceful drain must equal the batch run over the same records";

  std::remove(full.c_str());
  std::remove(prefix.c_str());
  std::remove(fifo.c_str());
  ::rmdir(dir.c_str());
}

TEST(Serve, StopFlagEndsIngestionButDrainsBufferedRecords) {
  char dir_tmpl[] = "/tmp/redcache_serve_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_tmpl), nullptr);
  const std::string dir = dir_tmpl;
  const std::string trace = CaptureTrace(dir + "/full.rctr");

  volatile std::sig_atomic_t stop = 0;
  tenant::StreamTraceSource source(trace);
  source.SetStopFlag(&stop);

  // One successful Next buffers at least a chunk's worth of records.
  MemRef ref;
  ASSERT_TRUE(source.Next(0, ref));
  const std::uint64_t ingested = source.total_records();
  ASSERT_GT(ingested, 0u);

  stop = 1;
  // Everything already buffered must still drain — a graceful stop, not a
  // mid-request abort — but nothing new may be ingested.
  std::uint64_t drained = 1;  // the record already returned above
  for (std::uint32_t core = 0; core < source.num_cores(); ++core) {
    while (source.Next(core, ref)) drained++;
  }
  EXPECT_EQ(source.total_records(), ingested)
      << "ingestion continued after the stop flag was set";
  EXPECT_EQ(drained, ingested);

  // A source stopped before any Next serves nothing at all.
  tenant::StreamTraceSource eager(trace);
  volatile std::sig_atomic_t stopped_at_birth = 1;
  eager.SetStopFlag(&stopped_at_birth);
  for (std::uint32_t core = 0; core < eager.num_cores(); ++core) {
    EXPECT_FALSE(eager.Next(core, ref));
  }
  EXPECT_EQ(eager.total_records(), 0u);

  std::remove(trace.c_str());
  ::rmdir(dir.c_str());
}

TEST(Serve, EarlyEofTelemetryTelescopesThroughResidualEpoch) {
  // The ISSUE satellite: a serve run ending early (prefix EOF) with
  // adaptive epoch resizing must close a residual partial epoch whose
  // NDJSON deltas still telescope exactly to the end record's totals, and
  // the stream must carry the live serve/QoS gauges.
  char dir_tmpl[] = "/tmp/redcache_serve_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_tmpl), nullptr);
  const std::string dir = dir_tmpl;
  const std::string full = CaptureTrace(dir + "/full.rctr");
  const std::string prefix = dir + "/prefix.rctr";
  constexpr std::size_t kPrefixRecords = 1500;
  WritePrefix(full, prefix, kPrefixRecords);

  const std::string ndjson = dir + "/serve.ndjson";
  RunSpec spec;
  spec.policy = "RedCache";
  spec.serve_path = prefix;
  spec.telemetry_path = ndjson;
  spec.epoch.cycles = 5000;  // narrow enough for several epochs + residual
  spec.epoch.adaptive = true;
  spec.epoch.min_cycles = 1000;
  spec.epoch.max_cycles = 20000;
  const RunResult r = RunOne(spec);
  ASSERT_TRUE(r.completed);
  ASSERT_GT(r.telemetry_epochs, 1u);

  std::ifstream in(ndjson);
  std::string line;
  std::vector<obs::JsonValue> docs;
  while (std::getline(in, line)) {
    obs::JsonValue doc;
    std::string err;
    ASSERT_TRUE(obs::ParseJson(line, doc, &err)) << err << "\n" << line;
    docs.push_back(std::move(doc));
  }
  ASSERT_EQ(docs.size(), r.telemetry_epochs + 2);  // header + epochs + end
  ASSERT_EQ(docs.front().Find("type")->string, "header");
  EXPECT_EQ(docs.front().Find("adaptive")->boolean, true);
  ASSERT_EQ(docs.back().Find("type")->string, "end");

  // The residual epoch ends exactly at the run's end, not on an epoch
  // boundary — the drain closed it.
  const obs::JsonValue& last_epoch = docs[docs.size() - 2];
  ASSERT_EQ(last_epoch.Find("type")->string, "epoch");
  EXPECT_EQ(last_epoch.Find("end")->number,
            static_cast<double>(r.exec_cycles));

  // Telescoping: for every counter in totals, the epoch deltas sum to it.
  const obs::JsonValue* totals = docs.back().Find("totals");
  ASSERT_NE(totals, nullptr);
  std::map<std::string, double> sums;
  for (std::size_t i = 1; i + 1 < docs.size(); ++i) {
    for (const auto& [name, v] : docs[i].Find("delta")->object) {
      sums[name] += v.number;
    }
  }
  for (const auto& [name, v] : totals->object) {
    EXPECT_EQ(sums[name], v.number) << "telescoping broke for " << name;
  }

  // The live serve feed: ingest totals and end-state gauges are present,
  // and the records counter telescopes to exactly the prefix size.
  EXPECT_EQ(totals->Find("serve.records")->number,
            static_cast<double>(kPrefixRecords));
  const obs::JsonValue* gauges = last_epoch.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->Find("serve.eof")->number, 1.0);
  EXPECT_EQ(gauges->Find("serve.queue_depth")->number, 0.0);
  // Adaptive pacing was active: every record carries the width gauge.
  EXPECT_NE(gauges->Find("telemetry.epoch_cycles"), nullptr);

  std::remove(full.c_str());
  std::remove(prefix.c_str());
  std::remove(ndjson.c_str());
  ::rmdir(dir.c_str());
}

TEST(Serve, RejectsMalformedStreams) {
  char dir_tmpl[] = "/tmp/redcache_serve_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_tmpl), nullptr);
  const std::string dir = dir_tmpl;
  const std::string bogus = dir + "/bogus.rctr";
  std::ofstream(bogus, std::ios::binary) << "NOTATRACEFILE";
  EXPECT_THROW(tenant::StreamTraceSource{bogus}, std::runtime_error);
  EXPECT_THROW(tenant::StreamTraceSource{dir + "/missing.rctr"},
               std::runtime_error);
  std::remove(bogus.c_str());
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace redcache
