#include "dram/address.hpp"

#include <gtest/gtest.h>

#include <set>

namespace redcache {
namespace {

DramGeometry SmallGeo() {
  DramGeometry g;
  g.channels = 4;
  g.ranks_per_channel = 2;
  g.banks_per_rank = 4;
  g.row_bytes = 1024;
  g.capacity_bytes = 4_MiB;
  return g;
}

TEST(AddressMapper, ConsecutiveBlocksInterleaveChannels) {
  AddressMapper m(SmallGeo());
  for (Addr block = 0; block < 16; ++block) {
    EXPECT_EQ(m.Map(block * kBlockBytes).channel, block % 4);
  }
}

TEST(AddressMapper, SameBlockSameCoordinates) {
  AddressMapper m(SmallGeo());
  const DramAddress a = m.Map(12345 * kBlockBytes);
  const DramAddress b = m.Map(12345 * kBlockBytes + 63);  // same block
  EXPECT_TRUE(a.SameRowAs(b));
  EXPECT_EQ(a.column, b.column);
}

TEST(AddressMapper, CoordinatesWithinGeometry) {
  const DramGeometry g = SmallGeo();
  AddressMapper m(g);
  for (Addr a = 0; a < 2_MiB; a += 4096 + 64) {
    const DramAddress d = m.Map(a);
    EXPECT_LT(d.channel, g.channels);
    EXPECT_LT(d.rank, g.ranks_per_channel);
    EXPECT_LT(d.bank, g.banks_per_rank);
    EXPECT_LT(d.row, g.RowsPerBank());
    EXPECT_LT(d.column, g.BlocksPerRow());
  }
}

TEST(AddressMapper, RowSpansManyBlocksOnOneChannel) {
  AddressMapper m(SmallGeo());
  // Blocks on the same channel, consecutive after interleaving, share a row
  // until the row is exhausted (row 1024 B = 16 blocks per row).
  const DramAddress first = m.Map(0);
  const DramAddress second = m.Map(4 * kBlockBytes);  // next on channel 0
  EXPECT_TRUE(first.SameRowAs(second));
  EXPECT_NE(first.column, second.column);
}

TEST(AddressMapper, DistinctRowsEventuallyAppear) {
  AddressMapper m(SmallGeo());
  std::set<std::uint64_t> rows;
  for (Addr a = 0; a < 1_MiB; a += kBlockBytes) {
    rows.insert(m.Map(a).row);
  }
  EXPECT_GT(rows.size(), 1u);
}

TEST(AddressMapper, CapacityWrapsRows) {
  const DramGeometry g = SmallGeo();
  AddressMapper m(g);
  const DramAddress low = m.Map(64);
  const DramAddress wrapped = m.Map(64 + g.capacity_bytes);
  EXPECT_TRUE(low.SameRowAs(wrapped));
}

TEST(DramAddressHelpers, SameBankIgnoresRow) {
  DramAddress a{.channel = 1, .rank = 0, .bank = 2, .row = 5, .column = 0};
  DramAddress b = a;
  b.row = 9;
  EXPECT_TRUE(a.SameBankAs(b));
  EXPECT_FALSE(a.SameRowAs(b));
}

}  // namespace
}  // namespace redcache
