// Focused DRAM timing-constraint checks: tFAW activate pacing, tRAS/tRP
// row cycling, refresh periodicity and the write-drain watermark.
#include <gtest/gtest.h>

#include "dram/channel.hpp"
#include "dram/dram_system.hpp"

namespace redcache {
namespace {

DramConfig OneChannel() {
  DramConfig cfg = HbmCacheConfig(8_MiB);
  cfg.geometry.channels = 1;
  return cfg;
}

struct Harness {
  Harness() : cfg(OneChannel()), mapper(cfg.geometry), ch(cfg, 0) {}

  void Enqueue(Addr addr, bool write, Cycle now) {
    DramRequest r;
    r.id = ++next_id;
    r.addr = BlockAlign(addr);
    r.loc = mapper.Map(addr);
    r.is_write = write;
    r.bursts = 1;
    r.arrival = now;
    ch.Enqueue(r);
  }

  std::vector<DramCompletion> Run(std::size_t n, Cycle limit = 1000000) {
    std::vector<DramCompletion> done;
    for (Cycle t = 0; t <= limit && done.size() < n; ++t) ch.Tick(t, done);
    return done;
  }

  DramConfig cfg;
  AddressMapper mapper;
  DramChannel ch;
  RequestId next_id = 0;
};

TEST(TimingConstraints, FawLimitsActivateBursts) {
  Harness h;
  const auto& geo = h.cfg.geometry;
  // Six different banks of rank 0: six activates needed. The 5th and 6th
  // must wait for the tFAW window.
  const Addr bank_stride = geo.row_bytes * geo.channels;
  for (int b = 0; b < 6; ++b) {
    h.Enqueue(b * bank_stride, false, 0);
  }
  const auto done = h.Run(6);
  ASSERT_EQ(done.size(), 6u);
  EXPECT_EQ(h.ch.counters().activates, 6u);
  // With tRRD=16 the first four activates issue by cycle ~48; the fifth
  // cannot issue before tFAW(181) after the first.
  const auto& t = h.cfg.timing;
  const Cycle fifth_data = done[4].done;
  EXPECT_GE(fifth_data, t.tFAW + t.tRCD + t.tCAS + t.tBL);
}

TEST(TimingConstraints, SameBankRowCycleRespectsTrc) {
  Harness h;
  const auto& geo = h.cfg.geometry;
  const Addr row_stride = geo.row_bytes * geo.banks_per_rank *
                          geo.ranks_per_channel * geo.channels;
  h.Enqueue(0, false, 0);
  h.Enqueue(row_stride, false, 0);
  h.Enqueue(2 * row_stride, false, 0);
  const auto done = h.Run(3);
  ASSERT_EQ(done.size(), 3u);
  const auto& t = h.cfg.timing;
  // Three activates to the same bank: each pair spaced >= tRC.
  EXPECT_GE(done[2].done - done[1].done, t.tRC - 2 * kCpuCyclesPerDramCycle);
  EXPECT_GE(done[1].done - done[0].done, t.tRC - 2 * kCpuCyclesPerDramCycle);
}

TEST(TimingConstraints, RefreshCadenceMatchesTrefi) {
  Harness h;
  std::vector<DramCompletion> done;
  const Cycle horizon = 10 * h.cfg.timing.tREFI;
  for (Cycle t = 0; t < horizon; ++t) h.ch.Tick(t, done);
  // Two ranks, ~10 windows each, staggered start: close to 20 refreshes.
  const auto refreshes = h.ch.counters().refreshes;
  EXPECT_GE(refreshes, 16u);
  EXPECT_LE(refreshes, 22u);
}

TEST(TimingConstraints, WriteDrainServesWritesFirstAboveWatermark) {
  Harness h;
  // More writes than half the queue: drain mode serves them even though a
  // read is waiting (and tWTR keeps extending the read's earliest issue).
  for (int i = 0; i < 20; ++i) {
    h.Enqueue(i * 64, true, 0);
  }
  h.Enqueue(21 * 64, false, 0);
  const auto done = h.Run(21);
  ASSERT_EQ(done.size(), 21u);
  std::size_t read_pos = 0;
  for (std::size_t i = 0; i < done.size(); ++i) {
    if (!done[i].is_write) read_pos = i;
  }
  EXPECT_GT(read_pos, 0u);  // the read did not starve the write drain
}

TEST(TimingConstraints, ReadsPreemptBelowWatermark) {
  Harness h;
  // A handful of writes (below the watermark) and a read: the read wins.
  for (int i = 0; i < 5; ++i) {
    h.Enqueue(i * 64, true, 0);
  }
  h.Enqueue(21 * 64, false, 0);
  const auto done = h.Run(6);
  ASSERT_EQ(done.size(), 6u);
  EXPECT_FALSE(done[0].is_write);
}

TEST(TimingConstraints, ColumnStreamingWithinOneTransaction) {
  // A 4-burst transaction must finish much faster than four separate
  // transactions on a tCCD-limited device.
  DramConfig cfg = MainMemoryConfig(64_MiB);
  cfg.geometry.channels = 1;
  AddressMapper mapper(cfg.geometry);
  const auto run = [&](bool single_txn) {
    DramChannel ch(cfg, 0);
    std::vector<DramCompletion> done;
    if (single_txn) {
      DramRequest r;
      r.id = 1;
      r.addr = 0;
      r.loc = mapper.Map(0);
      r.is_write = false;
      r.bursts = 4;
      r.arrival = 0;
      ch.Enqueue(r);
    } else {
      for (int i = 0; i < 4; ++i) {
        DramRequest r;
        r.id = 1 + i;
        r.addr = i * 64;
        r.loc = mapper.Map(0);  // same row for fairness
        r.is_write = false;
        r.bursts = 1;
        r.arrival = 0;
        ch.Enqueue(r);
      }
    }
    const std::size_t want = single_txn ? 1 : 4;
    Cycle t = 0;
    while (done.size() < want && t < 100000) ch.Tick(t++, done);
    return done.back().done;
  };
  EXPECT_LT(run(true) + cfg.timing.tCCD, run(false));
}

}  // namespace
}  // namespace redcache
