#include "dram/channel.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dram/address.hpp"

namespace redcache {
namespace {

DramConfig TestConfig() {
  DramConfig cfg = HbmCacheConfig(8_MiB);
  cfg.geometry.channels = 1;  // single channel under test
  return cfg;
}

class ChannelHarness {
 public:
  ChannelHarness() : cfg_(TestConfig()), mapper_(cfg_.geometry),
                     ch_(cfg_, 0) {}

  DramRequest MakeReq(Addr addr, bool write, Cycle now,
                      std::uint32_t bursts = 1) {
    DramRequest r;
    r.id = next_id_++;
    r.addr = BlockAlign(addr);
    r.loc = mapper_.Map(addr);
    r.is_write = write;
    r.bursts = bursts;
    r.arrival = now;
    return r;
  }

  /// Tick until `n` completions have been delivered (or `limit` cycles).
  std::vector<DramCompletion> RunUntil(std::size_t n, Cycle limit = 200000) {
    std::vector<DramCompletion> done;
    for (Cycle t = 0; t <= limit && done.size() < n; ++t) {
      ch_.Tick(t, done);
    }
    return done;
  }

  DramConfig cfg_;
  AddressMapper mapper_;
  DramChannel ch_;
  RequestId next_id_ = 1;
};

TEST(DramChannel, SingleReadLatencyIsActPlusCasPlusBurst) {
  ChannelHarness h;
  h.ch_.Enqueue(h.MakeReq(0, false, 0));
  const auto done = h.RunUntil(1);
  ASSERT_EQ(done.size(), 1u);
  const auto& t = h.cfg_.timing;
  // ACT at cycle 0, column at tRCD (aligned), data ends tCAS + tBL later.
  const Cycle expected = t.tRCD + t.tCAS + t.tBL;
  EXPECT_GE(done[0].done, expected);
  EXPECT_LE(done[0].done, expected + 2 * kCpuCyclesPerDramCycle);
}

TEST(DramChannel, RowHitReadsSpacedByTccd) {
  ChannelHarness h;
  // Two blocks in the same row (channel-interleaved: same channel blocks
  // are 1 channel apart but with channels=1 every block is here).
  h.ch_.Enqueue(h.MakeReq(0, false, 0));
  h.ch_.Enqueue(h.MakeReq(64, false, 0));
  const auto done = h.RunUntil(2);
  ASSERT_EQ(done.size(), 2u);
  const Cycle gap = done[1].done - done[0].done;
  EXPECT_GE(gap, h.cfg_.timing.tCCD);
  EXPECT_LE(gap, h.cfg_.timing.tCCD + 2 * kCpuCyclesPerDramCycle);
}

TEST(DramChannel, WriteThenReadPaysTurnaround) {
  ChannelHarness h;
  h.ch_.Enqueue(h.MakeReq(0, true, 0));
  // Let the write complete first (reads would otherwise preempt it), then
  // issue a read: its command must respect tWTR from the write data end.
  const auto wdone = h.RunUntil(1);
  ASSERT_EQ(wdone.size(), 1u);
  ASSERT_TRUE(wdone[0].is_write);
  const Cycle write_data_end = wdone[0].done;
  h.ch_.Enqueue(h.MakeReq(64, false, write_data_end));
  std::vector<DramCompletion> done;
  for (Cycle t = write_data_end; t < write_data_end + 100000 && done.empty();
       ++t) {
    h.ch_.Tick(t, done);
  }
  ASSERT_EQ(done.size(), 1u);
  const auto& t = h.cfg_.timing;
  const Cycle read_cmd = done[0].done - t.tCAS - t.tBL;
  EXPECT_GE(read_cmd + 1, write_data_end + t.tWTR);
  EXPECT_EQ(h.ch_.counters().turnarounds_wr, 1u);
}

TEST(DramChannel, ReadsPreemptQueuedWrites) {
  ChannelHarness h;
  h.ch_.Enqueue(h.MakeReq(0, true, 0));
  h.ch_.Enqueue(h.MakeReq(64, false, 0));
  const auto done = h.RunUntil(2);
  ASSERT_EQ(done.size(), 2u);
  // With write-drain policy the demand read is served first.
  EXPECT_FALSE(done[0].is_write);
  EXPECT_TRUE(done[1].is_write);
}

TEST(DramChannel, RowConflictForcesPrechargeActivate) {
  ChannelHarness h;
  const auto& geo = h.cfg_.geometry;
  // Two addresses in the same bank but different rows: stride one full
  // row's worth of blocks across the bank dimension.
  const Addr row_stride = geo.row_bytes * geo.banks_per_rank *
                          geo.ranks_per_channel;
  h.ch_.Enqueue(h.MakeReq(0, false, 0));
  h.ch_.Enqueue(h.MakeReq(row_stride, false, 0));
  const auto done = h.RunUntil(2);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(h.ch_.counters().activates, 2u);
  EXPECT_EQ(h.ch_.counters().precharges, 1u);
  // Second access waits at least tRAS + tRP after the first activate.
  const auto& t = h.cfg_.timing;
  EXPECT_GE(done[1].done, t.tRAS + t.tRP + t.tRCD + t.tCAS + t.tBL);
}

TEST(DramChannel, MultiBurstOccupiesBusProportionally) {
  ChannelHarness h;
  h.ch_.Enqueue(h.MakeReq(0, false, 0, /*bursts=*/4));
  const auto done = h.RunUntil(1);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(h.ch_.counters().read_bursts, 4u);
  EXPECT_EQ(h.ch_.counters().data_busy_cycles, 4 * h.cfg_.timing.tBL);
}

TEST(DramChannel, RefreshHappensPeriodically) {
  ChannelHarness h;
  std::vector<DramCompletion> done;
  for (Cycle t = 0; t < 3 * h.cfg_.timing.tREFI; ++t) {
    h.ch_.Tick(t, done);
  }
  // Two ranks, ~3 tREFI windows each: expect several refreshes.
  EXPECT_GE(h.ch_.counters().refreshes, 4u);
}

TEST(DramChannel, BytesAccountedWithSideband) {
  ChannelHarness h;
  h.ch_.Enqueue(h.MakeReq(0, false, 0));
  (void)h.RunUntil(1);
  EXPECT_EQ(h.ch_.counters().bytes_transferred,
            h.cfg_.geometry.burst_bytes + h.cfg_.geometry.sideband_bytes);
}

TEST(DramChannel, QueueRespectsCapacity) {
  ChannelHarness h;
  for (std::uint32_t i = 0; i < h.cfg_.controller.queue_depth; ++i) {
    ASSERT_TRUE(h.ch_.CanAccept());
    h.ch_.Enqueue(h.MakeReq(i * 64, false, 0));
  }
  EXPECT_FALSE(h.ch_.CanAccept());
  const auto done = h.RunUntil(h.cfg_.controller.queue_depth, 2000000);
  EXPECT_EQ(done.size(), h.cfg_.controller.queue_depth);
  EXPECT_TRUE(h.ch_.CanAccept());
}

TEST(DramChannel, ManyRandomRequestsAllComplete) {
  ChannelHarness h;
  std::vector<DramCompletion> done;
  std::uint64_t submitted = 0;
  Cycle t = 0;
  std::uint64_t state = 99;
  while (submitted < 500 && t < 5000000) {
    if (h.ch_.CanAccept()) {
      const Addr addr = (SplitMix64(state) % (4_MiB / 64)) * 64;
      h.ch_.Enqueue(h.MakeReq(addr, (submitted % 3) == 0, t));
      submitted++;
    }
    h.ch_.Tick(t, done);
    ++t;
  }
  while (done.size() < submitted && t < 10000000) {
    h.ch_.Tick(t, done);
    ++t;
  }
  EXPECT_EQ(done.size(), submitted);
  // Completion timestamps never exceed delivery time.
  // (Checked implicitly: Tick only delivers done <= now.)
  EXPECT_GT(h.ch_.counters().row_hits, 0u);
}

TEST(DramChannel, NextEventHintAdvances) {
  ChannelHarness h;
  // Idle channel: hint points at refresh bookkeeping, not now.
  EXPECT_GT(h.ch_.NextEventHint(100), 100u);
  h.ch_.Enqueue(h.MakeReq(0, false, 100));
  EXPECT_LE(h.ch_.NextEventHint(100), 102u);
}

}  // namespace
}  // namespace redcache
