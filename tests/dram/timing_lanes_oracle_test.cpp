// Brute-force oracle for the flattened timing kernels (TimingLanes).
//
// The lanes maintain DRAMSim-style "earliest issue time" bookkeeping
// *eagerly*: every Record* folds its constraints into flat per-bank /
// per-rank / shared gates, and queries are pure max-chains. The oracle
// below recomputes every ready cycle from scratch out of the full command
// history on each query — no incremental state at all — so any lane that
// goes stale, folds a term into the wrong level, or drops a constraint
// (tFAW window slide, tWTR accumulation, refresh clamp) diverges
// immediately under randomized legal command sequences.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "dram/timing.hpp"
#include "dram/timing_lanes.hpp"

namespace redcache {
namespace {

/// History-replay reference: a flat log of issued commands, each ready
/// query answered by a full pass over the log.
class NaiveTiming {
 public:
  NaiveTiming(const DramTimingParams& t, std::uint32_t ranks,
              std::uint32_t banks_per_rank)
      : t_(t), banks_per_rank_(banks_per_rank) {
    open_row_.assign(std::size_t{ranks} * banks_per_rank, TimingLanes::kNoRow);
    next_refresh_.resize(ranks);
    for (std::uint32_t r = 0; r < ranks; ++r) {
      next_refresh_[r] = t.tREFI / 2 + r * (t.tREFI / 8);
    }
  }

  enum class Type { kActivate, kRead, kWrite, kPrecharge, kRefresh };
  struct Cmd {
    Type type;
    std::uint32_t bank;  ///< rank index for kRefresh
    Cycle at;
  };

  std::uint64_t OpenRow(std::uint32_t bank) const { return open_row_[bank]; }

  void Activate(std::uint32_t bank, std::uint64_t row, Cycle at) {
    open_row_[bank] = row;
    log_.push_back({Type::kActivate, bank, at});
  }
  void Column(std::uint32_t bank, bool is_write, Cycle at) {
    log_.push_back({is_write ? Type::kWrite : Type::kRead, bank, at});
  }
  void Precharge(std::uint32_t bank, Cycle at) {
    open_row_[bank] = TimingLanes::kNoRow;
    log_.push_back({Type::kPrecharge, bank, at});
  }
  void Refresh(std::uint32_t rank, Cycle at) {
    log_.push_back({Type::kRefresh, rank, at});
    next_refresh_[rank] += t_.tREFI;
    if (next_refresh_[rank] <= at) next_refresh_[rank] = at + t_.tREFI;
  }

  Cycle RefreshUntil(std::uint32_t rank) const {
    Cycle until = 0;
    for (const Cmd& c : log_) {
      if (c.type == Type::kRefresh && c.bank == rank) {
        until = std::max(until, c.at + t_.tRFC);
      }
    }
    return until;
  }
  Cycle NextRefresh(std::uint32_t rank) const { return next_refresh_[rank]; }

  Cycle ActivateReady(std::uint32_t bank) const {
    const std::uint32_t rank = bank / banks_per_rank_;
    Cycle ready = 0;
    std::vector<Cycle> rank_activates;
    for (const Cmd& c : log_) {
      switch (c.type) {
        case Type::kActivate:
          if (c.bank == bank) ready = std::max(ready, c.at + t_.tRC);
          if (c.bank / banks_per_rank_ == rank) {
            ready = std::max(ready, c.at + t_.tRRD);
            rank_activates.push_back(c.at);
          }
          break;
        case Type::kPrecharge:
          if (c.bank == bank) ready = std::max(ready, c.at + t_.tRP);
          break;
        case Type::kRefresh:
          // A refresh both raises every bank's activate gate by tRFC and
          // blocks the rank until it completes — the same cycle either way.
          if (c.bank == rank) ready = std::max(ready, c.at + t_.tRFC);
          break;
        default:
          break;
      }
    }
    // tFAW: at most four activates per rank in any tFAW window, i.e. the
    // fifth activate waits for the fourth-most-recent one to age out.
    if (rank_activates.size() >= 4) {
      ready = std::max(ready,
                       rank_activates[rank_activates.size() - 4] + t_.tFAW);
    }
    return TimingLanes::AlignUp(ready);
  }

  Cycle PrechargeReady(std::uint32_t bank) const {
    const std::uint32_t rank = bank / banks_per_rank_;
    Cycle ready = 0;
    for (const Cmd& c : log_) {
      switch (c.type) {
        case Type::kActivate:
          if (c.bank == bank) ready = std::max(ready, c.at + t_.tRAS);
          break;
        case Type::kRead:
          if (c.bank == bank) ready = std::max(ready, c.at + t_.tRTP);
          break;
        case Type::kWrite:
          if (c.bank == bank) ready = std::max(ready, DataEnd(c) + t_.tWR);
          break;
        case Type::kRefresh:
          if (c.bank == rank) ready = std::max(ready, c.at + t_.tRFC);
          break;
        default:
          break;
      }
    }
    return TimingLanes::AlignUp(ready);
  }

  Cycle ColumnReady(std::uint32_t bank, bool is_write,
                    bool continuation) const {
    const std::uint32_t rank = bank / banks_per_rank_;
    Cycle ready = 0;
    const Cmd* last_column = nullptr;
    for (const Cmd& c : log_) {
      switch (c.type) {
        case Type::kActivate:
          if (c.bank == bank) ready = std::max(ready, c.at + t_.tRCD);
          break;
        case Type::kRead:
          if (is_write) {
            // Bus reversal: our write data (driven tCWD after the command)
            // must not collide with the read burst still draining.
            const Cycle bubble = DataEnd(c) + t_.tRTW_bubble;
            ready = std::max(ready,
                             bubble > t_.tCWD ? bubble - t_.tCWD : Cycle{0});
          }
          if (!continuation) ready = std::max(ready, c.at + t_.tCCD);
          last_column = &c;
          break;
        case Type::kWrite:
          if (!is_write) ready = std::max(ready, DataEnd(c) + t_.tWTR);
          if (!continuation) ready = std::max(ready, c.at + t_.tCCD);
          last_column = &c;
          break;
        case Type::kRefresh:
          if (c.bank == rank) ready = std::max(ready, c.at + t_.tRFC);
          break;
        default:
          break;
      }
    }
    if (last_column != nullptr) {
      // Data-bus drain: the next burst's data (lat after its command) may
      // not start before the previous burst ends. Deliberately keyed to the
      // *last* column command only, mirroring the device model: a read
      // issued tCCD after a write can end earlier than the write's data.
      const Cycle lat = is_write ? t_.tCWD : t_.tCAS;
      const Cycle bus = DataEnd(*last_column);
      ready = std::max(ready, bus > lat ? bus - lat : Cycle{0});
    }
    return TimingLanes::AlignUp(ready);
  }

 private:
  Cycle DataEnd(const Cmd& c) const {
    return c.at + (c.type == Type::kWrite ? t_.tCWD : t_.tCAS) + t_.tBL;
  }

  DramTimingParams t_;
  std::uint32_t banks_per_rank_;
  std::vector<Cmd> log_;
  std::vector<std::uint64_t> open_row_;
  std::vector<Cycle> next_refresh_;
};

/// Drives the same random legal command sequence into the lanes and the
/// oracle, comparing every query on every bank after every command.
class OracleHarness {
 public:
  OracleHarness(const DramTimingParams& t, std::uint32_t ranks,
                std::uint32_t banks_per_rank, std::uint64_t seed)
      : t_(t),
        ranks_(ranks),
        banks_(ranks * banks_per_rank),
        banks_per_rank_(banks_per_rank),
        naive_(t, ranks, banks_per_rank),
        rng_(seed) {
    lanes_.Init(t_, ranks, banks_per_rank);
  }

  void CompareAll() {
    for (std::uint32_t b = 0; b < banks_; ++b) {
      ASSERT_EQ(lanes_.ActivateReady(b), naive_.ActivateReady(b))
          << "activate, bank " << b << " after " << steps_ << " steps";
      ASSERT_EQ(lanes_.PrechargeReady(b), naive_.PrechargeReady(b))
          << "precharge, bank " << b << " after " << steps_ << " steps";
      for (bool w : {false, true}) {
        ASSERT_EQ(lanes_.ColumnReady(b, w), naive_.ColumnReady(b, w, false))
            << "column, bank " << b << " write=" << w << " after " << steps_
            << " steps";
        ASSERT_EQ(lanes_.ContinuationReady(b, w),
                  naive_.ColumnReady(b, w, true))
            << "continuation, bank " << b << " write=" << w << " after "
            << steps_ << " steps";
      }
      ASSERT_EQ(lanes_.OpenRow(b), naive_.OpenRow(b)) << "row, bank " << b;
    }
    for (std::uint32_t r = 0; r < ranks_; ++r) {
      ASSERT_EQ(lanes_.refresh_until(r), naive_.RefreshUntil(r)) << "rank "
                                                                 << r;
      ASSERT_EQ(lanes_.next_refresh(r), naive_.NextRefresh(r)) << "rank "
                                                               << r;
    }
  }

  /// One random legal command at its oracle-computed earliest cycle (never
  /// earlier than the command-bus slot after the previous command).
  void Step(int precharge_bias) {
    const std::uint32_t b = rng_() % banks_;
    Cycle at;
    if (lanes_.OpenRow(b) == TimingLanes::kNoRow) {
      at = Issue(naive_.ActivateReady(b));
      const std::uint64_t row = rng_() % 4;
      naive_.Activate(b, row, at);
      lanes_.RecordActivate(b, row, at);
    } else if (rng_() % 4 < static_cast<std::uint32_t>(precharge_bias)) {
      at = Issue(naive_.PrechargeReady(b));
      naive_.Precharge(b, at);
      lanes_.RecordPrecharge(b, at);
    } else {
      const bool w = rng_() % 2 == 0;
      at = Issue(naive_.ColumnReady(b, w, false));
      naive_.Column(b, w, at);
      lanes_.RecordColumn(b, w, at);
    }
    ++steps_;
  }

  /// Refresh one rank the way the channel does: close its banks at their
  /// legal cycles, wait out the activate gates, then start the refresh.
  void RefreshRank(std::uint32_t r) {
    Cycle gates = 0;
    for (std::uint32_t i = 0; i < banks_per_rank_; ++i) {
      const std::uint32_t b = r * banks_per_rank_ + i;
      if (lanes_.OpenRow(b) != TimingLanes::kNoRow) {
        const Cycle at = Issue(naive_.PrechargeReady(b));
        naive_.Precharge(b, at);
        lanes_.RecordPrecharge(b, at);
      }
      gates = std::max(gates, lanes_.RawActivateGate(b));
    }
    const Cycle at = Issue(TimingLanes::AlignUp(gates));
    naive_.Refresh(r, at);
    lanes_.StartRefresh(r, at);
    ++steps_;
  }

  void Run(int steps, int precharge_bias, int refresh_every) {
    for (int s = 0; s < steps; ++s) {
      if (refresh_every > 0 && s % refresh_every == refresh_every - 1) {
        RefreshRank(rng_() % ranks_);
      } else {
        Step(precharge_bias);
      }
      CompareAll();
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

 private:
  Cycle Issue(Cycle ready) {
    const Cycle at = std::max(ready, next_slot_);
    next_slot_ = at + kCpuCyclesPerDramCycle;
    return at;
  }

  DramTimingParams t_;
  std::uint32_t ranks_;
  std::uint32_t banks_;
  std::uint32_t banks_per_rank_;
  TimingLanes lanes_;
  NaiveTiming naive_;
  std::mt19937_64 rng_;
  Cycle next_slot_ = 0;
  int steps_ = 0;
};

// Activate-heavy traffic across one rank's banks: every command is an
// activate or a precharge, so the tRRD / tFAW / tRC / tRP chains (and the
// sliding four-activate window in particular) carry the whole schedule.
TEST(TimingLanesOracle, FawWindowMatchesBruteForce) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    OracleHarness h(HbmCacheConfig(8_MiB).timing, 1, 8, seed);
    h.Run(/*steps=*/300, /*precharge_bias=*/4, /*refresh_every=*/0);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Column-heavy traffic on a handful of open rows: random read/write mixes
// exercise tCCD spacing, the tWTR write->read turnaround, the read->write
// bus-reversal bubble and the last-burst data-bus drain — for both the
// tCCD-gated and the continuation (burst-streaming) variants.
TEST(TimingLanesOracle, TurnaroundMatchesBruteForce) {
  for (std::uint64_t seed : {3u, 11u, 1234u}) {
    OracleHarness h(HbmCacheConfig(8_MiB).timing, 2, 4, seed);
    h.Run(/*steps=*/300, /*precharge_bias=*/0, /*refresh_every=*/0);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Interleaves rank refreshes with regular traffic: checks that the
// refresh-window clamp (the old "if refreshing, push to refresh end"
// branch, now a plain max against refresh_until) lands in every query and
// that activate gates absorb tRFC.
TEST(TimingLanesOracle, RefreshWindowMatchesBruteForce) {
  for (std::uint64_t seed : {5u, 99u, 2026u}) {
    OracleHarness h(HbmCacheConfig(8_MiB).timing, 2, 8, seed);
    h.Run(/*steps=*/250, /*precharge_bias=*/2, /*refresh_every=*/25);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Everything at once on the main-memory timing set (slower tCCD/tCWD — a
// different shape of shared-gate interleaving than the HBM parameters).
TEST(TimingLanesOracle, MainMemoryTimingsMatchBruteForce) {
  for (std::uint64_t seed : {13u, 77u, 31337u}) {
    OracleHarness h(MainMemoryConfig(64_MiB).timing, 2, 8, seed);
    h.Run(/*steps=*/250, /*precharge_bias=*/2, /*refresh_every=*/40);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace redcache
