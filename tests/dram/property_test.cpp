// Property-style sweeps over device configurations and access patterns:
// every transaction completes, and the event counters stay mutually
// consistent regardless of geometry or traffic shape.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "dram/dram_system.hpp"

namespace redcache {
namespace {

enum class Pattern { kSequential, kRandom, kSameRow, kSameBankConflict,
                     kReadWriteMix };

const char* ToString(Pattern p) {
  switch (p) {
    case Pattern::kSequential: return "sequential";
    case Pattern::kRandom: return "random";
    case Pattern::kSameRow: return "same_row";
    case Pattern::kSameBankConflict: return "bank_conflict";
    case Pattern::kReadWriteMix: return "rw_mix";
  }
  return "?";
}

struct Param {
  bool hbm;  // device preset
  Pattern pattern;
};

class DramProperty : public ::testing::TestWithParam<Param> {};

Addr NextAddr(Pattern p, std::uint64_t i, Rng& rng, const DramGeometry& geo) {
  switch (p) {
    case Pattern::kSequential:
      return i * kBlockBytes;
    case Pattern::kRandom:
      return (rng.Next() % (geo.capacity_bytes / kBlockBytes)) * kBlockBytes;
    case Pattern::kSameRow:
      // Blocks that map to one channel's single row.
      return (i % geo.BlocksPerRow()) * geo.channels * kBlockBytes;
    case Pattern::kSameBankConflict: {
      const Addr row_stride = geo.row_bytes * geo.banks_per_rank *
                              geo.ranks_per_channel * geo.channels;
      return (i % 8) * row_stride;
    }
    case Pattern::kReadWriteMix:
      return (i % 4096) * kBlockBytes;
  }
  return 0;
}

TEST_P(DramProperty, AllTransactionsCompleteAndCountersConsistent) {
  const Param param = GetParam();
  const DramConfig cfg =
      param.hbm ? HbmCacheConfig(4_MiB) : MainMemoryConfig(64_MiB);
  DramSystem sys(cfg);
  Rng rng(1234);

  constexpr std::uint64_t kTotal = 1500;
  std::uint64_t submitted = 0, completed = 0;
  Cycle now = 0;
  while (completed < kTotal) {
    if (submitted < kTotal) {
      const Addr addr = NextAddr(param.pattern, submitted, rng,
                                 cfg.geometry);
      if (sys.CanAccept(addr)) {
        const bool write = param.pattern == Pattern::kReadWriteMix
                               ? (submitted % 2 == 0)
                               : (submitted % 5 == 0);
        sys.Enqueue(addr, write, now);
        submitted++;
      }
    }
    sys.Tick(now);
    completed += sys.completions().size();
    for (const auto& c : sys.completions()) {
      EXPECT_LE(c.done, now) << "completion delivered before its data ended";
    }
    sys.completions().clear();
    ++now;
    ASSERT_LT(now, 100000000u)
        << ToString(param.pattern) << " failed to drain: " << completed
        << "/" << kTotal;
  }
  EXPECT_EQ(sys.inflight(), 0u);

  const ChannelCounters t = sys.TotalCounters();
  EXPECT_EQ(t.transactions, kTotal);
  EXPECT_EQ(t.read_bursts + t.write_bursts, kTotal);
  EXPECT_EQ(t.data_busy_cycles, (t.read_bursts + t.write_bursts) *
                                    cfg.timing.tBL);
  EXPECT_EQ(t.bytes_transferred,
            (t.read_bursts + t.write_bursts) *
                (cfg.geometry.burst_bytes + cfg.geometry.sideband_bytes));
  // Every activate eventually needs a precharge (some rows may still be
  // open at the end) and activates can't exceed column commands... except
  // under refresh-forced closures, which re-open rows.
  EXPECT_LE(t.precharges, t.activates);
  EXPECT_GE(t.activates, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DramProperty,
    ::testing::Values(Param{true, Pattern::kSequential},
                      Param{true, Pattern::kRandom},
                      Param{true, Pattern::kSameRow},
                      Param{true, Pattern::kSameBankConflict},
                      Param{true, Pattern::kReadWriteMix},
                      Param{false, Pattern::kSequential},
                      Param{false, Pattern::kRandom},
                      Param{false, Pattern::kSameRow},
                      Param{false, Pattern::kSameBankConflict},
                      Param{false, Pattern::kReadWriteMix}),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(info.param.hbm ? "hbm_" : "ddr4_") +
             ToString(info.param.pattern);
    });

TEST(DramProperty, SameRowTrafficNeedsOneActivatePerRefreshWindow) {
  DramSystem sys(HbmCacheConfig(4_MiB));
  Cycle now = 0;
  std::uint64_t completed = 0;
  std::uint64_t submitted = 0;
  while (completed < 500) {
    if (submitted < 500 && sys.CanAccept(0)) {
      sys.Enqueue((submitted % 32) * 4 * kBlockBytes, false, now);
      submitted++;
    }
    sys.Tick(now);
    completed += sys.completions().size();
    sys.completions().clear();
    ++now;
    ASSERT_LT(now, 10000000u);
  }
  const ChannelCounters t = sys.TotalCounters();
  // Row-friendly traffic: far fewer activates than column commands.
  EXPECT_LT(t.activates * 10, t.read_bursts);
}

}  // namespace
}  // namespace redcache
