#include "dram/timing.hpp"

#include <gtest/gtest.h>

namespace redcache {
namespace {

TEST(Timing, HbmPresetMatchesTableOne) {
  const DramConfig cfg = HbmCacheConfig();
  EXPECT_EQ(cfg.timing.tRCD, 44u);
  EXPECT_EQ(cfg.timing.tCAS, 44u);
  EXPECT_EQ(cfg.timing.tCCD, 16u);
  EXPECT_EQ(cfg.timing.tWTR, 31u);
  EXPECT_EQ(cfg.timing.tWR, 4u);
  EXPECT_EQ(cfg.timing.tRTP, 46u);
  EXPECT_EQ(cfg.timing.tBL, 10u);
  EXPECT_EQ(cfg.timing.tCWD, 61u);
  EXPECT_EQ(cfg.timing.tRP, 44u);
  EXPECT_EQ(cfg.timing.tRRD, 16u);
  EXPECT_EQ(cfg.timing.tRAS, 112u);
  EXPECT_EQ(cfg.timing.tRC, 271u);
  EXPECT_EQ(cfg.timing.tFAW, 181u);
  EXPECT_EQ(cfg.geometry.channels, 4u);
  EXPECT_EQ(cfg.geometry.bus_bits, 128u);
  EXPECT_EQ(cfg.geometry.sideband_bytes, kTagEccBytes);
}

TEST(Timing, MainMemoryPresetMatchesTableOne) {
  const DramConfig cfg = MainMemoryConfig();
  EXPECT_EQ(cfg.timing.tCCD, 61u);  // the main-memory column differs here
  EXPECT_EQ(cfg.timing.tCWD, 44u);
  EXPECT_EQ(cfg.geometry.channels, 2u);
  EXPECT_EQ(cfg.geometry.ranks_per_channel, 2u);
  EXPECT_EQ(cfg.geometry.banks_per_rank, 8u);
  EXPECT_EQ(cfg.geometry.bus_bits, 64u);
  EXPECT_EQ(cfg.geometry.sideband_bytes, 0u);
}

TEST(Timing, RcuLatencyReductionFactorFromPaper) {
  // Paper III-C: tCCD / (tBurst + tCWD + tWTR) = 6.375 with the Table I
  // values — sanity-check our presets give exactly the paper's arithmetic.
  const DramTimingParams t = HbmCacheConfig().timing;
  const double factor = static_cast<double>(t.tBL + t.tCWD + t.tWTR) /
                        static_cast<double>(t.tCCD);
  EXPECT_DOUBLE_EQ(factor, 6.375);
}

TEST(Timing, GeometryDerivations) {
  DramGeometry g;
  g.channels = 4;
  g.ranks_per_channel = 2;
  g.banks_per_rank = 16;
  g.row_bytes = 2048;
  g.capacity_bytes = 32_MiB;
  EXPECT_EQ(g.RowsPerBank(), 32_MiB / (4 * 2 * 16 * 2048));
  EXPECT_EQ(g.BlocksPerRow(), 32u);
}

TEST(Timing, CapacityScalesRows) {
  const DramConfig small = HbmCacheConfig(8_MiB);
  const DramConfig big = HbmCacheConfig(32_MiB);
  EXPECT_EQ(big.geometry.RowsPerBank(), 4 * small.geometry.RowsPerBank());
}

}  // namespace
}  // namespace redcache
