// Wake conservativeness property (DESIGN.md section 10).
//
// A component's advertised wake (Tick return / NextEventHint) promises that
// ticking it strictly earlier, with no new input, changes nothing
// observable. The test drives two identical instances with the same
// adversarial fuzz-trace-derived schedule: the reference is ticked every
// cycle, the subject only at its advertised wakes. Any wake that lands too
// late shows up as diverging completions, acceptance, or final counters;
// the reference's off-wake ticks prove spurious ticks are harmless.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "dram/dram_system.hpp"
#include "dramcache/policy_registry.hpp"
#include "sim/presets.hpp"
#include "verify/fuzz_trace.hpp"

namespace redcache {
namespace {

struct ScheduledRef {
  Cycle at = 0;
  Addr addr = 0;
  bool is_write = false;
};

/// Merge the fuzz trace's per-core streams into one time-ordered schedule
/// (each core's clock advances by its own gaps).
std::vector<ScheduledRef> BuildSchedule(std::uint64_t seed, Addr addr_mod) {
  FuzzTraceParams params;
  params.seed = seed;
  params.cores = 2;
  params.refs_per_core = 1200;
  FuzzTraceSource trace(params);

  std::vector<ScheduledRef> refs;
  for (std::uint32_t core = 0; core < trace.num_cores(); ++core) {
    Cycle t = 0;
    MemRef r;
    while (trace.Next(core, r)) {
      t += r.gap;
      refs.push_back({t, (r.addr % addr_mod) & ~Addr{63}, r.is_write});
    }
  }
  std::stable_sort(refs.begin(), refs.end(),
                   [](const ScheduledRef& a, const ScheduledRef& b) {
                     return a.at < b.at;
                   });
  return refs;
}

TEST(WakeConservative, DramSystemMatchesPerCycleReference) {
  const auto refs = BuildSchedule(/*seed=*/7, /*addr_mod=*/4_MiB);

  DramSystem ref(HbmCacheConfig(4_MiB));
  DramSystem sub(HbmCacheConfig(4_MiB));
  std::vector<DramCompletion> done_ref, done_sub;
  Cycle sub_wake = 0;
  std::uint64_t sub_ticks = 0;
  std::size_t cursor = 0;
  Cycle now = 0;

  const auto drain = [](DramSystem& sys, std::vector<DramCompletion>& out) {
    auto& c = sys.completions();
    out.insert(out.end(), c.begin(), c.end());
    c.clear();
  };

  while (cursor < refs.size() || !ref.TransactionQueuesEmpty() ||
         !sub.TransactionQueuesEmpty() || ref.inflight() != 0 ||
         sub.inflight() != 0) {
    ASSERT_LT(now, Cycle{50'000'000}) << "drain did not converge";
    if (cursor < refs.size() && now >= refs[cursor].at) {
      const ScheduledRef& r = refs[cursor];
      const bool can_ref = ref.CanAccept(r.addr);
      ASSERT_EQ(can_ref, sub.CanAccept(r.addr)) << "cycle " << now;
      if (can_ref) {
        ref.Enqueue(r.addr, r.is_write, now);
        sub.Enqueue(r.addr, r.is_write, now);
        sub_wake = std::min(sub_wake, sub.NextEventHint(now));
        ++cursor;
      }
    }
    ref.Tick(now);
    drain(ref, done_ref);
    if (now >= sub_wake) {
      sub.Tick(now);
      sub_wake = sub.NextEventHint(now);
      ++sub_ticks;
      drain(sub, done_sub);
    }
    ++now;
  }

  ASSERT_EQ(done_ref.size(), done_sub.size());
  for (std::size_t i = 0; i < done_ref.size(); ++i) {
    EXPECT_EQ(done_ref[i].addr, done_sub[i].addr) << "completion " << i;
    EXPECT_EQ(done_ref[i].done, done_sub[i].done) << "completion " << i;
    EXPECT_EQ(done_ref[i].is_write, done_sub[i].is_write) << "completion " << i;
  }

  // Under load the channel is due almost every DRAM cycle, so the busy
  // phase only proves some skipping happened; the idle window below is
  // where the wake list must earn its keep (refresh wakes only).
  EXPECT_LT(sub_ticks, now) << "wake gating never skipped a cycle";

  const Cycle idle_end = now + 30000;
  std::uint64_t idle_ticks = 0;
  while (now < idle_end) {
    ref.Tick(now);
    drain(ref, done_ref);
    if (now >= sub_wake) {
      sub.Tick(now);
      sub_wake = sub.NextEventHint(now);
      ++idle_ticks;
      drain(sub, done_sub);
    }
    ++now;
  }
  EXPECT_LT(idle_ticks, 30000 / 10)
      << "idle channels must sleep between refresh wakes";

  StatSet stats_ref, stats_sub;
  ref.ExportStats(stats_ref);
  sub.ExportStats(stats_sub);
  EXPECT_EQ(stats_ref.counters(), stats_sub.counters());
}

class ControllerWakeConservative
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ControllerWakeConservative, MatchesPerCycleReference) {
  MemControllerConfig cfg;
  cfg.hbm = HbmCacheConfig(1_MiB);
  cfg.mainmem = MainMemoryConfig(64_MiB);
  const auto refs = BuildSchedule(/*seed=*/11, /*addr_mod=*/32_MiB);

  auto ref = MakePolicy(GetParam(), cfg);
  auto sub = MakePolicy(GetParam(), cfg);
  std::vector<ReadCompletion> done_ref, done_sub;
  Cycle sub_wake = 0;
  std::uint64_t sub_ticks = 0;
  std::uint64_t next_tag = 1;
  std::size_t cursor = 0;
  Cycle now = 0;

  const auto drain = [](MemController& c, std::vector<ReadCompletion>& out) {
    auto& done = c.read_completions();
    out.insert(out.end(), done.begin(), done.end());
    done.clear();
  };

  while (cursor < refs.size() || !ref->Idle() || !sub->Idle()) {
    ASSERT_LT(now, Cycle{50'000'000}) << "drain did not converge";
    bool submitted = false;
    if (cursor < refs.size() && now >= refs[cursor].at) {
      const ScheduledRef& r = refs[cursor];
      const bool can_ref =
          r.is_write ? ref->CanAcceptWriteback() : ref->CanAcceptRead();
      const bool can_sub =
          r.is_write ? sub->CanAcceptWriteback() : sub->CanAcceptRead();
      ASSERT_EQ(can_ref, can_sub) << "cycle " << now;
      if (can_ref) {
        if (r.is_write) {
          ref->SubmitWriteback(r.addr, now);
          sub->SubmitWriteback(r.addr, now);
        } else {
          ref->SubmitRead(r.addr, next_tag, now);
          sub->SubmitRead(r.addr, next_tag, now);
          ++next_tag;
        }
        submitted = true;
        ++cursor;
      }
    }
    ref->Tick(now);
    drain(*ref, done_ref);
    if (submitted || now >= sub_wake) {
      sub_wake = sub->Tick(now);
      ++sub_ticks;
      drain(*sub, done_sub);
    }
    ++now;
  }

  ASSERT_EQ(done_ref.size(), done_sub.size());
  for (std::size_t i = 0; i < done_ref.size(); ++i) {
    EXPECT_EQ(done_ref[i].tag, done_sub[i].tag) << "completion " << i;
    EXPECT_EQ(done_ref[i].addr, done_sub[i].addr) << "completion " << i;
    EXPECT_EQ(done_ref[i].done, done_sub[i].done) << "completion " << i;
  }

  StatSet stats_ref, stats_sub;
  ref->ExportStats(stats_ref);
  sub->ExportStats(stats_sub);
  EXPECT_EQ(stats_ref.counters(), stats_sub.counters());

  EXPECT_LT(sub_ticks, now / 2) << "wake gating never skipped a cycle";
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ControllerWakeConservative,
    ::testing::Values("Alloy", "Bear", "Red-Basic", "RedCache", "Banshee",
                      "TicToc"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      name.erase(std::remove_if(name.begin(), name.end(),
                                [](char c) {
                                  return !std::isalnum(
                                      static_cast<unsigned char>(c));
                                }),
                 name.end());
      return name;
    });

}  // namespace
}  // namespace redcache
