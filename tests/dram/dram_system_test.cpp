#include "dram/dram_system.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace redcache {
namespace {

class RecordingObserver : public ColumnCommandObserver {
 public:
  void OnColumnCommand(const IssuedColumnCommand& cmd) override {
    commands.push_back(cmd);
  }
  std::vector<IssuedColumnCommand> commands;
};

std::vector<DramCompletion> Drain(DramSystem& sys, std::size_t n,
                                  Cycle limit = 1000000) {
  std::vector<DramCompletion> out;
  for (Cycle t = 0; t <= limit && out.size() < n; ++t) {
    sys.Tick(t);
    for (const auto& c : sys.completions()) out.push_back(c);
    sys.completions().clear();
  }
  return out;
}

TEST(DramSystem, RequestsRouteToMappedChannel) {
  DramSystem sys(HbmCacheConfig(8_MiB));
  for (Addr block = 0; block < 8; ++block) {
    EXPECT_EQ(sys.ChannelOf(block * 64), block % 4);
  }
}

TEST(DramSystem, CompletionCarriesUserTag) {
  DramSystem sys(HbmCacheConfig(8_MiB));
  sys.Enqueue(0, false, 0, /*user_tag=*/0xdeadbeef);
  const auto done = Drain(sys, 1);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].user_tag, 0xdeadbeefu);
  EXPECT_EQ(done[0].addr, 0u);
  EXPECT_FALSE(done[0].is_write);
}

TEST(DramSystem, ParallelChannelsOverlap) {
  DramSystem sys(HbmCacheConfig(8_MiB));
  // One block per channel: all four should finish at (nearly) the same time.
  for (Addr block = 0; block < 4; ++block) {
    sys.Enqueue(block * 64, false, 0, block);
  }
  const auto done = Drain(sys, 4);
  ASSERT_EQ(done.size(), 4u);
  const Cycle spread = done.back().done - done.front().done;
  EXPECT_LE(spread, 4u);  // truly parallel service
}

TEST(DramSystem, InflightTracksOutstanding) {
  DramSystem sys(HbmCacheConfig(8_MiB));
  sys.Enqueue(0, false, 0);
  sys.Enqueue(64, true, 0);
  EXPECT_EQ(sys.inflight(), 2u);
  (void)Drain(sys, 2);
  EXPECT_EQ(sys.inflight(), 0u);
}

TEST(DramSystem, ObserverSeesColumnCommands) {
  DramSystem sys(HbmCacheConfig(8_MiB));
  RecordingObserver obs;
  sys.SetObserver(&obs);
  sys.Enqueue(0, true, 0);
  sys.Enqueue(64, false, 0);
  (void)Drain(sys, 2);
  ASSERT_EQ(obs.commands.size(), 2u);
  EXPECT_TRUE(obs.commands[0].is_write || obs.commands[1].is_write);
}

TEST(DramSystem, ExportStatsUsesConfigName) {
  DramSystem sys(MainMemoryConfig(64_MiB));
  sys.Enqueue(0, false, 0);
  (void)Drain(sys, 1);
  StatSet stats;
  sys.ExportStats(stats);
  EXPECT_EQ(stats.GetCounter("ddr4.read_bursts"), 1u);
  EXPECT_EQ(stats.GetCounter("ddr4.transactions"), 1u);
  EXPECT_GT(stats.GetCounter("ddr4.activates"), 0u);
}

TEST(DramSystem, TransactionQueueEmptyChecks) {
  DramSystem sys(HbmCacheConfig(8_MiB));
  EXPECT_TRUE(sys.TransactionQueuesEmpty());
  sys.Enqueue(0, false, 0);
  EXPECT_FALSE(sys.TransactionQueuesEmpty());
  EXPECT_FALSE(sys.ChannelTransactionQueueEmpty(0));
  EXPECT_TRUE(sys.ChannelTransactionQueueEmpty(1));
  (void)Drain(sys, 1);
  EXPECT_TRUE(sys.TransactionQueuesEmpty());
}

TEST(DramSystem, HighLoadDrainsCompletely) {
  DramSystem sys(MainMemoryConfig(64_MiB));
  std::uint64_t submitted = 0;
  Cycle t = 0;
  std::uint64_t done_count = 0;
  std::uint64_t state = 7;
  while (submitted < 2000 || done_count < submitted) {
    if (submitted < 2000) {
      const Addr addr = (SplitMix64(state) % (16_MiB / 64)) * 64;
      if (sys.CanAccept(addr)) {
        sys.Enqueue(addr, (submitted & 3) == 0, t);
        submitted++;
      }
    }
    sys.Tick(t);
    done_count += sys.completions().size();
    sys.completions().clear();
    ++t;
    ASSERT_LT(t, 50000000u) << "DRAM system failed to drain";
  }
  EXPECT_EQ(done_count, 2000u);
}

TEST(DramSystem, RefreshingQueryReflectsRankState) {
  DramSystem sys(HbmCacheConfig(8_MiB));
  // Drive the clock past several refresh intervals; at some point the
  // addressed rank must report refreshing.
  bool saw_refresh = false;
  for (Cycle t = 0; t < 3 * HbmCacheConfig().timing.tREFI && !saw_refresh;
       ++t) {
    sys.Tick(t);
    saw_refresh = sys.Refreshing(0, t);
  }
  EXPECT_TRUE(saw_refresh);
}

}  // namespace
}  // namespace redcache
