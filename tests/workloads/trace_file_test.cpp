#include "workloads/trace_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "workloads/benchmarks.hpp"

namespace redcache {
namespace {

class TraceFileTest : public ::testing::Test {
 protected:
  std::string Path(const char* name) {
    return testing::TempDir() + "/" + name;
  }
};

TEST_F(TraceFileTest, RoundTripsRecords) {
  const std::string path = Path("roundtrip.rctr");
  {
    TraceFileWriter w(path, 2);
    w.Append(0, {.addr = 0x1000, .is_write = false, .gap = 3});
    w.Append(1, {.addr = 0x2000, .is_write = true, .gap = 7});
    w.Append(0, {.addr = 0x1040, .is_write = false, .gap = 1});
    EXPECT_EQ(w.records_written(), 3u);
  }
  FileTraceSource src(path);
  EXPECT_EQ(src.num_cores(), 2u);
  EXPECT_EQ(src.total_records(), 3u);
  MemRef r;
  ASSERT_TRUE(src.Next(0, r));
  EXPECT_EQ(r.addr, 0x1000u);
  EXPECT_FALSE(r.is_write);
  EXPECT_EQ(r.gap, 3u);
  ASSERT_TRUE(src.Next(0, r));
  EXPECT_EQ(r.addr, 0x1040u);
  ASSERT_FALSE(src.Next(0, r));
  ASSERT_TRUE(src.Next(1, r));
  EXPECT_TRUE(r.is_write);
  EXPECT_EQ(r.gap, 7u);
}

TEST_F(TraceFileTest, CapturesSyntheticWorkloadExactly) {
  const std::string path = Path("capture.rctr");
  WorkloadBuildParams p;
  p.num_cores = 2;
  p.scale = 0.02;
  {
    auto source = MakeWorkload("LREG", p);
    TraceFileWriter w(path, source->num_cores());
    w.CaptureAll(*source);
    EXPECT_GT(w.records_written(), 100u);
  }
  // Replay must match a freshly generated copy record for record.
  auto fresh = MakeWorkload("LREG", p);
  FileTraceSource replay(path);
  MemRef a, b;
  for (std::uint32_t c = 0; c < 2; ++c) {
    while (fresh->Next(c, a)) {
      ASSERT_TRUE(replay.Next(c, b));
      EXPECT_EQ(a.addr, b.addr);
      EXPECT_EQ(a.is_write, b.is_write);
    }
    EXPECT_FALSE(replay.Next(c, b));
  }
}

TEST_F(TraceFileTest, FootprintCoversAddressRange) {
  const std::string path = Path("footprint.rctr");
  {
    TraceFileWriter w(path, 1);
    w.Append(0, {.addr = 0x1000, .is_write = false, .gap = 1});
    w.Append(0, {.addr = 0x9000, .is_write = false, .gap = 1});
  }
  FileTraceSource src(path);
  EXPECT_EQ(src.footprint_bytes(), 0x9000u + kBlockBytes - 0x1000u);
}

TEST_F(TraceFileTest, GapsClampToAtLeastOne) {
  const std::string path = Path("gap.rctr");
  {
    TraceFileWriter w(path, 1);
    w.Append(0, {.addr = 0x0, .is_write = false, .gap = 0});
  }
  FileTraceSource src(path);
  MemRef r;
  ASSERT_TRUE(src.Next(0, r));
  EXPECT_GE(r.gap, 1u);
}

TEST_F(TraceFileTest, RejectsGarbageFile) {
  const std::string path = Path("garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a trace";
  }
  EXPECT_THROW(FileTraceSource src(path), std::runtime_error);
}

TEST_F(TraceFileTest, RejectsMissingFile) {
  EXPECT_THROW(FileTraceSource src(Path("does_not_exist.rctr")),
               std::runtime_error);
}

TEST_F(TraceFileTest, WriterRefusesUnwritablePath) {
  EXPECT_THROW(TraceFileWriter w("/nonexistent_dir/x.rctr", 1),
               std::runtime_error);
}

}  // namespace
}  // namespace redcache
