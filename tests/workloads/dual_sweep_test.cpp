#include <gtest/gtest.h>

#include <map>

#include "workloads/kernel_trace.hpp"

namespace redcache {
namespace {

Kernel DualSweepKernel() {
  Kernel k;
  k.kind = Kernel::Kind::kDualSweep;
  k.base = 0;
  k.size = 64 * 1024;       // 1024 cold blocks
  k.passes = 1;
  k.hot_base = 8_MiB;
  k.hot_size = 64 * 128;    // 128 hot blocks
  k.p_hot = 0.5;
  k.write_frac = 0.0;
  k.pause_every = 0;
  return k;
}

TEST(DualSweep, ColdBlocksTouchedOncePerPass) {
  KernelTrace t("t", {{DualSweepKernel()}}, 3);
  std::map<Addr, int> cold;
  MemRef r;
  while (t.Next(0, r)) {
    if (r.addr < 8_MiB) cold[BlockAlign(r.addr)]++;
  }
  for (const auto& [addr, n] : cold) {
    EXPECT_EQ(n, 1) << addr;
  }
}

TEST(DualSweep, HotBlocksGetUniformReuse) {
  KernelTrace t("t", {{DualSweepKernel()}}, 3);
  std::map<Addr, int> hot;
  MemRef r;
  while (t.Next(0, r)) {
    if (r.addr >= 8_MiB) hot[BlockAlign(r.addr)]++;
  }
  // Expected touches per hot block ~ p/(1-p) * cold/hot = 8.
  ASSERT_FALSE(hot.empty());
  int min_n = 1 << 30, max_n = 0;
  for (const auto& [addr, n] : hot) {
    min_n = std::min(min_n, n);
    max_n = std::max(max_n, n);
  }
  EXPECT_GE(min_n, 6);   // homo-reuse: a tight band, not a Zipf smear
  EXPECT_LE(max_n, 10);
}

TEST(DualSweep, HotShareMatchesProbability) {
  KernelTrace t("t", {{DualSweepKernel()}}, 7);
  std::uint64_t hot = 0, total = 0;
  MemRef r;
  while (t.Next(0, r)) {
    total++;
    if (r.addr >= 8_MiB) hot++;
  }
  EXPECT_NEAR(static_cast<double>(hot) / static_cast<double>(total), 0.5,
              0.05);
}

TEST(DualSweep, SeparateHotWriteFraction) {
  Kernel k = DualSweepKernel();
  k.write_frac = 0.9;      // cold scatter output: write heavy
  k.hot_write_frac = 0.1;  // hot keys: read mostly
  KernelTrace t("t", {{k}}, 9);
  std::uint64_t hot_w = 0, hot_n = 0, cold_w = 0, cold_n = 0;
  MemRef r;
  while (t.Next(0, r)) {
    if (r.addr >= 8_MiB) {
      hot_n++;
      hot_w += r.is_write;
    } else {
      cold_n++;
      cold_w += r.is_write;
    }
  }
  EXPECT_NEAR(static_cast<double>(hot_w) / hot_n, 0.1, 0.05);
  EXPECT_NEAR(static_cast<double>(cold_w) / cold_n, 0.9, 0.05);
}

TEST(DualSweep, PausesInsertLongGaps) {
  Kernel k = DualSweepKernel();
  k.pause_every = 64;
  k.pause_cycles = 5000;
  KernelTrace t("t", {{k}}, 11);
  MemRef r;
  std::uint64_t long_gaps = 0, total = 0;
  while (t.Next(0, r)) {
    total++;
    if (r.gap > 1000) long_gaps++;
  }
  EXPECT_NEAR(static_cast<double>(long_gaps),
              static_cast<double>(total) / 64.0,
              static_cast<double>(total) / 64.0 * 0.5);
}

}  // namespace
}  // namespace redcache
